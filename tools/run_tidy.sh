#!/usr/bin/env bash
# Run clang-tidy over the library, bench, and test sources using the
# compilation database exported by CMake (CMAKE_EXPORT_COMPILE_COMMANDS
# is always on). Exits 0 when clean, 1 on any diagnostic (the committed
# .clang-tidy promotes warnings to errors), 77 ("skipped") when
# clang-tidy or the compilation database is unavailable — ctest and
# tools/check.sh treat 77 as a skip, not a failure.
#
# Usage: tools/run_tidy.sh [file...]
#   LPP_BUILD_DIR   build directory holding compile_commands.json
#                   (default: build; configured automatically if absent)
#   LPP_TIDY_JOBS   parallel clang-tidy processes (default: nproc)

set -euo pipefail
cd "$(dirname "$0")/.."

SKIP=77
BUILD_DIR=${LPP_BUILD_DIR:-build}
JOBS=${LPP_TIDY_JOBS:-$(nproc)}

if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "run_tidy: clang-tidy not found; skipping static analysis" >&2
    exit "$SKIP"
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    echo "run_tidy: configuring $BUILD_DIR for compile_commands.json" >&2
    cmake -B "$BUILD_DIR" -S . >/dev/null
fi
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    echo "run_tidy: no compile_commands.json in $BUILD_DIR; skipping" >&2
    exit "$SKIP"
fi

if [ "$#" -gt 0 ]; then
    files=("$@")
else
    # Library, bench, and test translation units; headers are covered
    # through HeaderFilterRegex in .clang-tidy.
    mapfile -t files < <(git ls-files 'src/**/*.cpp' 'bench/*.cpp' \
                                      'tests/**/*.cpp')
fi

echo "run_tidy: checking ${#files[@]} files with $JOBS jobs"
status=0
printf '%s\n' "${files[@]}" |
    xargs -P "$JOBS" -n 4 clang-tidy -p "$BUILD_DIR" --quiet || status=1

if [ "$status" -ne 0 ]; then
    echo "run_tidy: clang-tidy reported diagnostics" >&2
    exit 1
fi
echo "run_tidy: clean"
