#!/usr/bin/env bash
# Verify that every tracked C++ source conforms to the committed
# .clang-format. Exits 0 when clean, 1 on formatting differences, 77
# ("skipped") when clang-format is unavailable — ctest and
# tools/check.sh treat 77 as a skip, not a failure.
#
# Usage: tools/format_check.sh [--fix] [file...]

set -euo pipefail
cd "$(dirname "$0")/.."

SKIP=77
FIX=0
if [ "${1:-}" = "--fix" ]; then
    FIX=1
    shift
fi

if ! command -v clang-format >/dev/null 2>&1; then
    echo "format_check: clang-format not found; skipping" >&2
    exit "$SKIP"
fi

if [ "$#" -gt 0 ]; then
    files=("$@")
else
    mapfile -t files < <(git ls-files '*.cpp' '*.hpp' '*.h')
fi

if [ "$FIX" -eq 1 ]; then
    clang-format -i "${files[@]}"
    echo "format_check: reformatted ${#files[@]} files"
    exit 0
fi

if ! clang-format --dry-run -Werror "${files[@]}"; then
    echo "format_check: formatting differences found" >&2
    echo "format_check: run tools/format_check.sh --fix" >&2
    exit 1
fi
echo "format_check: ${#files[@]} files clean"
