/**
 * @file
 * staticloc_report — the static locality oracle from the command line.
 *
 * For every statically described workload (or an explicit subset) the
 * tool predicts the training run's reuse histogram, working-set curve,
 * and phase schedule from the affine IR alone, runs the dynamic
 * analysis pipeline once, and prints the static-vs-dynamic divergence
 * report. Exit status 0 means every checked bound held.
 *
 * Usage:
 *   staticloc_report [--method=auto|symbolic|periodic|counting]
 *                    [--predict-only] [--wss] [workload...]
 *
 * With --predict-only nothing is executed or replayed at all: the tool
 * prints the pure zero-execution prediction (histogram, schedule, WSS
 * curve) for each workload. --wss adds the predicted working-set-size
 * curve to the report.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/evaluation.hpp"
#include "staticloc/predict.hpp"
#include "support/histogram.hpp"
#include "support/logging.hpp"
#include "workloads/registry.hpp"
#include "workloads/static_workload.hpp"

using namespace lpp;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--method=auto|symbolic|periodic|counting] "
                 "[--predict-only] [--wss] [workload...]\n",
                 argv0);
    return 2;
}

bool
parseMethod(const std::string &name, staticloc::Method &out)
{
    if (name == "auto")
        out = staticloc::Method::Auto;
    else if (name == "symbolic")
        out = staticloc::Method::Symbolic;
    else if (name == "periodic")
        out = staticloc::Method::Periodic;
    else if (name == "counting")
        out = staticloc::Method::Counting;
    else
        return false;
    return true;
}

void
printHistogram(const LogHistogram &h)
{
    std::printf("  reuse histogram (%llu accesses, %llu cold):\n",
                static_cast<unsigned long long>(h.total()),
                static_cast<unsigned long long>(h.infiniteCount()));
    for (size_t b = 0; b < h.binCount(); ++b) {
        if (h.binValue(b) == 0)
            continue;
        std::printf("    [%8llu, %8llu)  %llu\n",
                    static_cast<unsigned long long>(
                        LogHistogram::binLow(b)),
                    static_cast<unsigned long long>(
                        LogHistogram::binHigh(b)),
                    static_cast<unsigned long long>(h.binValue(b)));
    }
}

void
printPrediction(const staticloc::StaticPrediction &p, bool wss)
{
    std::printf("  method %s (%s), %llu accesses, %llu distinct "
                "elements, %zu phase executions\n",
                staticloc::methodName(p.method),
                p.exact ? "exact" : "approximate",
                static_cast<unsigned long long>(p.totalAccesses),
                static_cast<unsigned long long>(p.distinctElements),
                p.schedule.size());
    printHistogram(p.histogram);
    if (wss) {
        std::printf("  predicted WSS curve (clock -> distinct "
                    "elements touched so far):\n");
        for (const auto &[clock, size] : p.wssCurve())
            std::printf("    %10llu  %llu\n",
                        static_cast<unsigned long long>(clock),
                        static_cast<unsigned long long>(size));
    }
}

void
printReport(const core::StaticOracleReport &r)
{
    std::printf("  method %s (%s)\n", staticloc::methodName(r.method),
                r.exact ? "exact" : "approximate");
    std::printf("  accesses   predicted %llu, measured %llu\n",
                static_cast<unsigned long long>(r.predictedAccesses),
                static_cast<unsigned long long>(r.measuredAccesses));
    std::printf("  footprint  predicted %llu, measured %llu\n",
                static_cast<unsigned long long>(r.predictedFootprint),
                static_cast<unsigned long long>(r.measuredFootprint));
    std::printf("  histogram  divergence %.6f (%s)\n",
                r.histogramDivergence,
                r.histogramIdentical ? "identical" : "diverged");
    std::printf("  miss curve max error %.6f\n", r.maxMissRateError);
    std::printf("  markers    %llu predicted, %llu measured, max clock "
                "error %llu (%s)\n",
                static_cast<unsigned long long>(
                    r.predictedPhaseExecutions),
                static_cast<unsigned long long>(r.measuredMarkers),
                static_cast<unsigned long long>(r.markerMaxError),
                r.markersIdentical ? "identical" : "diverged");
    std::printf("  detector   %llu boundaries, %.0f%% within slack, "
                "max distance %llu\n",
                static_cast<unsigned long long>(r.detectedBoundaries),
                r.detectedBoundaryPrecision * 100.0,
                static_cast<unsigned long long>(
                    r.detectedBoundaryMaxError));
    for (const auto &f : r.failures)
        std::printf("  FAIL: %s\n", f.c_str());
    std::printf("  => %s\n", r.ok ? "ok" : "FAILED");
}

} // namespace

int
main(int argc, char **argv)
{
    staticloc::Method method = staticloc::Method::Auto;
    bool predict_only = false;
    bool wss = false;
    std::vector<std::string> names;

    for (int i = 1; i < argc; ++i) {
        std::string arg(argv[i]);
        if (arg.rfind("--method=", 0) == 0) {
            if (!parseMethod(arg.substr(9), method))
                return usage(argv[0]);
        } else if (arg == "--predict-only") {
            predict_only = true;
        } else if (arg == "--wss") {
            wss = true;
        } else if (arg == "--verbose") {
            setVerbose(true);
        } else if (arg.rfind("--", 0) == 0) {
            return usage(argv[0]);
        } else {
            names.push_back(arg);
        }
    }
    if (names.empty())
        names = workloads::staticNames();

    int failures = 0;
    for (const auto &name : names) {
        auto w = workloads::create(name);
        if (!w) {
            std::fprintf(stderr, "error: unknown workload '%s'\n",
                         name.c_str());
            return 2;
        }
        auto *sd =
            dynamic_cast<const workloads::StaticallyDescribed *>(
                w.get());
        if (!sd) {
            std::fprintf(stderr,
                         "error: workload '%s' carries no affine IR "
                         "(statically described: ",
                         name.c_str());
            for (const auto &s : workloads::staticNames())
                std::fprintf(stderr, "%s ", s.c_str());
            std::fprintf(stderr, ")\n");
            return 2;
        }

        std::printf("%s\n", name.c_str());
        if (predict_only) {
            auto pred = staticloc::predict(
                sd->loopProgram(w->trainInput()), method);
            printPrediction(pred, wss);
            continue;
        }

        core::AnalysisConfig cfg;
        cfg.staticOracle.enabled = true;
        cfg.staticOracle.method = method;
        auto run = core::analyzeWorkload(*w, cfg);
        if (wss)
            printPrediction(staticloc::predict(
                                sd->loopProgram(w->trainInput()), method),
                            wss);
        printReport(run.staticOracle);
        std::printf("  live program executions: %llu (oracle itself: "
                    "0)\n",
                    static_cast<unsigned long long>(
                        run.programExecutions));
        failures += !run.staticOracle.ok;
    }
    return failures == 0 ? 0 : 1;
}
