#!/usr/bin/env bash
# The correctness gate. Runs, in order:
#
#   1. format      clang-format conformance            (skips w/o tool)
#   2. build       -Werror build of the default preset
#   3. tidy        clang-tidy over src/bench/tests     (skips w/o tool)
#   4. tsa         clang -Wthread-safety -Werror build (skips w/o clang)
#   5. tier1       tier-1 ctest suite, default preset
#   6. asan-ubsan  build + tier-1 under Address+UBSan
#   7. tsan        build + tier-1 under ThreadSanitizer
#
# Every step must pass (or be skipped for a missing optional tool) for
# the gate to exit 0. Steps 6-7 build with LPP_DCHECKS=ON, so debug
# invariants are exercised under the sanitizers.
#
#   LPP_CHECK_FAST=1   skip the sanitizer matrix (steps 6-7)
#   LPP_CHECK_JOBS=N   build parallelism (default: nproc)

set -uo pipefail
cd "$(dirname "$0")/.."

JOBS=${LPP_CHECK_JOBS:-$(nproc)}
FAST=${LPP_CHECK_FAST:-0}
leg_names=()
leg_results=() # pass | SKIP | FAIL, parallel to leg_names
leg_notes=()
failures=()

note() { printf '\n=== check: %s ===\n' "$1"; }

run_step() { # run_step <name> <command...>
    local name=$1
    shift
    note "$name"
    "$@"
    local status=$?
    leg_names+=("$name")
    if [ "$status" -eq 77 ]; then
        leg_results+=("SKIP")
        leg_notes+=("missing optional tooling")
    elif [ "$status" -ne 0 ]; then
        leg_results+=("FAIL")
        leg_notes+=("exit $status")
        failures+=("$name")
    else
        leg_results+=("pass")
        leg_notes+=("")
    fi
    return 0
}

skip_step() { # skip_step <name> <reason>
    leg_names+=("$1")
    leg_results+=("SKIP")
    leg_notes+=("$2")
}

step_format() { tools/format_check.sh; }

step_build() {
    cmake --preset default -DLPP_WERROR=ON >/dev/null &&
        cmake --build build -j "$JOBS"
}

step_tidy() { LPP_BUILD_DIR=build tools/run_tidy.sh; }

step_tsa() {
    # Thread-safety annotations are enforced by clang only; gcc parses
    # them to nothing (see src/support/thread_annotations.hpp).
    if ! command -v clang++ >/dev/null 2>&1; then
        echo "check: clang++ not found; skipping -Wthread-safety build" >&2
        return 77
    fi
    cmake -B build-tsa -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_COMPILER=clang++ -DLPP_WERROR=ON \
        -DCMAKE_CXX_FLAGS=-Wthread-safety >/dev/null &&
        cmake --build build-tsa -j "$JOBS"
}

step_tier1() { ctest --preset tier1 -j "$JOBS"; }

step_sanitizer() { # step_sanitizer <preset>
    local preset=$1
    cmake --preset "$preset" >/dev/null &&
        cmake --build --preset "$preset" -j "$JOBS" &&
        ctest --preset "$preset" -j "$JOBS"
}

run_step format step_format
run_step build step_build
run_step tidy step_tidy
run_step tsa step_tsa
run_step tier1 step_tier1
if [ "$FAST" != "1" ]; then
    run_step asan-ubsan step_sanitizer asan-ubsan
    run_step tsan step_sanitizer tsan
else
    skip_step asan-ubsan "LPP_CHECK_FAST=1"
    skip_step tsan "LPP_CHECK_FAST=1"
fi

# End-of-run summary: one row per leg, so a skipped leg (exit 77 or
# LPP_CHECK_FAST) is visible instead of silently absent from the log.
note "summary"
printf '%-12s %-6s %s\n' "leg" "result" "note"
printf '%-12s %-6s %s\n' "---" "------" "----"
for i in "${!leg_names[@]}"; do
    printf '%-12s %-6s %s\n' "${leg_names[$i]}" "${leg_results[$i]}" \
        "${leg_notes[$i]}"
done
if [ "${#failures[@]}" -gt 0 ]; then
    echo
    echo "FAILED: ${failures[*]}"
    exit 1
fi
echo
echo "all checks passed"
