/**
 * @file
 * stratified_report — the stratified sampled evaluator from the
 * command line.
 *
 * For every workload (or an explicit subset) the tool runs the
 * evaluation pipeline with phase-stratified sampling enabled, prints
 * the stratum plan (which executions were measured, which strata ran
 * exhaustively) and the estimated miss-rate curve with its confidence
 * half-widths, and — unless --no-verify is given — replays the
 * exhaustive pass too and reports the sampled-vs-exact divergence.
 * Exit status 0 means every verified workload held the error bound.
 *
 * Usage:
 *   stratified_report [--fraction=F] [--per-stratum=K] [--seed=S]
 *                     [--selection=balanced|seeded] [--no-verify]
 *                     [workload...]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/evaluation.hpp"
#include "support/logging.hpp"
#include "workloads/registry.hpp"

using namespace lpp;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--fraction=F] [--per-stratum=K] "
                 "[--seed=S] [--selection=balanced|seeded] "
                 "[--no-verify] [workload...]\n",
                 argv0);
    return 2;
}

void
printReport(const core::StratifiedEvalReport &r)
{
    std::printf("  strata (%zu), %llu of %llu accesses measured "
                "(%.1f%%):\n",
                r.strata.size(),
                static_cast<unsigned long long>(
                    r.estimate.measuredAccesses),
                static_cast<unsigned long long>(r.estimate.totalAccesses),
                100.0 * r.sampledFraction());
    for (const auto &s : r.strata)
        std::printf("    phase %3u%s%s  %4llu exec, %4llu measured "
                    "(%llu of %llu accesses)%s\n",
                    s.phase, s.sizeClass ? "/" : "",
                    s.sizeClass
                        ? ("2^" + std::to_string(s.sizeClass)).c_str()
                        : "",
                    static_cast<unsigned long long>(s.executions),
                    static_cast<unsigned long long>(s.sampled),
                    static_cast<unsigned long long>(s.sampledAccesses),
                    static_cast<unsigned long long>(s.accesses),
                    s.certainty ? "  [certainty]"
                                : (s.exact ? "  [exact]" : ""));
    std::printf("  estimated miss rates (95%% half-width):\n");
    for (uint32_t w = 1; w <= cache::simWays; ++w)
        std::printf("    %2u-way  %.6f +- %.6f\n", w,
                    r.estimate.missRate(w),
                    r.estimate.missRateHalfWidth(w));
    if (r.verified) {
        std::printf("  vs exact: max rel miss-rate error %.6f, abs "
                    "%.6f, histogram divergence %.6f, CI covered "
                    "%u/%u ways\n",
                    r.comparison.maxRelMissRateError,
                    r.comparison.maxAbsMissRateError,
                    r.comparison.histogramDivergence,
                    r.comparison.ciCoveredWays,
                    static_cast<unsigned>(cache::simWays));
        std::printf("  evaluate: sampled %.1f ms, exact %.1f ms "
                    "(%.2fx)\n",
                    r.sampledMs, r.exactMs, r.speedup());
        for (const auto &f : r.comparison.failures)
            std::printf("  FAIL: %s\n", f.c_str());
        std::printf("  => %s\n", r.comparison.ok ? "ok" : "FAILED");
    } else {
        std::printf("  evaluate: sampled %.1f ms (not verified)\n",
                    r.sampledMs);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    core::AnalysisConfig cfg;
    cfg.stratifiedSampling.enabled = true;
    cfg.stratifiedSampling.verifyAgainstExact = true;
    std::vector<std::string> names;

    for (int i = 1; i < argc; ++i) {
        std::string arg(argv[i]);
        if (arg.rfind("--fraction=", 0) == 0) {
            cfg.stratifiedSampling.sampleFraction =
                std::atof(arg.c_str() + 11);
        } else if (arg.rfind("--per-stratum=", 0) == 0) {
            cfg.stratifiedSampling.samplesPerStratum =
                std::strtoull(arg.c_str() + 14, nullptr, 10);
        } else if (arg.rfind("--seed=", 0) == 0) {
            cfg.stratifiedSampling.seed =
                std::strtoull(arg.c_str() + 7, nullptr, 0);
        } else if (arg == "--selection=balanced") {
            cfg.stratifiedSampling.selection =
                core::StratifiedSelection::BalancedOnSize;
        } else if (arg == "--selection=seeded") {
            cfg.stratifiedSampling.selection =
                core::StratifiedSelection::SeededRandom;
        } else if (arg == "--no-verify") {
            cfg.stratifiedSampling.verifyAgainstExact = false;
        } else if (arg == "--verbose") {
            setVerbose(true);
        } else if (arg.rfind("--", 0) == 0) {
            return usage(argv[0]);
        } else {
            names.push_back(arg);
        }
    }
    if (names.empty())
        names = workloads::allNames();

    int failures = 0;
    for (const auto &name : names) {
        auto w = workloads::create(name);
        if (!w) {
            std::fprintf(stderr, "error: unknown workload '%s'\n",
                         name.c_str());
            return 2;
        }
        std::printf("%s\n", name.c_str());
        auto run = core::evaluateWorkload(*w, cfg);
        printReport(run.stratified);
        failures += run.stratified.verified &&
                    !run.stratified.comparison.ok;
    }
    return failures == 0 ? 0 : 1;
}
