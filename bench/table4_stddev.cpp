/**
 * @file
 * Reproduces paper Table 4: the standard deviation of the 8-point
 * locality vector (miss rates for 32KB..256KB caches) across executions
 * of the same locality phase, compared with BBV clustering and BBV
 * RLE-Markov prediction over fixed intervals.
 */

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "bbv/clustering.hpp"
#include "bbv/markov.hpp"
#include "bench/common.hpp"
#include "core/evaluation.hpp"
#include "support/csv.hpp"
#include "support/stats.hpp"
#include "workloads/registry.hpp"

using namespace lpp;
using namespace lppbench;

namespace {

/**
 * Size-weighted average locality stddev over groups of units. As for
 * locality phases, the first member of each group (the one carrying
 * cold-cache effects and the one a predictor would learn from) is
 * excluded.
 */
double
groupedStddev(const std::vector<cache::SegmentLocality> &units,
              const std::vector<uint32_t> &group_of)
{
    std::map<uint32_t, VectorStats> groups;
    std::map<uint32_t, bool> seen;
    for (size_t i = 0; i < units.size(); ++i) {
        if (!seen[group_of[i]]) {
            seen[group_of[i]] = true;
            continue;
        }
        auto it = groups.find(group_of[i]);
        if (it == groups.end())
            it = groups.emplace(group_of[i], VectorStats(cache::simWays))
                     .first;
        it->second.push(units[i].missRateVector());
    }
    double weighted = 0.0;
    size_t total = 0;
    for (const auto &kv : groups) {
        weighted += kv.second.averageStddev() *
                    static_cast<double>(kv.second.count());
        total += kv.second.count();
    }
    return total == 0 ? 0.0 : weighted / static_cast<double>(total);
}

} // namespace

int
main()
{
    title("Table 4: standard deviation of locality phases and BBV "
          "phases");
    row("Benchmark", {"LocalityPhase", "BBVcluster", "BBVMarkov"}, 10,
        14);
    rule();

    CsvWriter csv(outPath("table4.csv"),
                  {"benchmark", "locality_phase", "bbv_clustering",
                   "bbv_markov_prediction"});

    // One shared plan: each workload's evaluation plus the BBV interval
    // baseline over the same prediction run (~50K accesses per
    // interval, the scaled-down 10M-instruction window). The interval
    // pass shares the evaluation's reference execution, so each
    // workload costs three live runs instead of five.
    auto names = workloads::predictableNames();
    core::ExecutionPlan plan;
    std::vector<core::WorkloadEvaluation> evals(names.size());
    std::vector<core::IntervalProfile> profs(names.size());
    for (size_t i = 0; i < names.size(); ++i) {
        std::shared_ptr<workloads::Workload> w =
            workloads::create(names[i]);
        auto nodes =
            core::registerWorkloadEvaluation(plan, *w, {}, &evals[i]);
        auto ref_in = w->refInput();
        core::registerIntervalProfile(
            plan, core::workloadKey(*w, ref_in),
            [wp = w.get(), ref_in](trace::TraceSink &s) {
                wp->run(ref_in, s);
            },
            50000, 32, &profs[i], {nodes.analysisReady});
        plan.retain(std::move(w));
    }
    plan.run();

    for (size_t i = 0; i < names.size(); ++i) {
        evals[i].programExecutions =
            plan.programExecutions(names[i] + "@");

        bbv::BbvClustering clustering(0.2);
        auto clusters = clustering.assignAll(profs[i].bbvs);
        double cluster_sd = groupedStddev(profs[i].units, clusters);

        bbv::RleMarkovPredictor markov;
        auto predicted = markov.predictSequence(clusters);
        double markov_sd = groupedStddev(profs[i].units, predicted);

        row(names[i],
            {sci(evals[i].localityStddev), sci(cluster_sd),
             sci(markov_sd)},
            10, 14);
        csv.row({names[i], sci(evals[i].localityStddev), sci(cluster_sd),
                 sci(markov_sd)});
    }
    rule();
    uint64_t live = plan.stats().programExecutions;
    std::printf("\n%zu workloads in %llu live program executions "
                "(%llu passes coalesced)\n",
                names.size(),
                static_cast<unsigned long long>(live),
                static_cast<unsigned long long>(
                    plan.stats().coalescedPasses));
    std::printf("\nPaper shape: locality-phase std-dev is orders of "
                "magnitude below both BBV\ncolumns; Markov prediction "
                "is worse than clustering.\n");
    std::printf("Series written to %s\n", csv.path().c_str());
    return 0;
}
