/**
 * @file
 * Reproduces paper Table 4: the standard deviation of the 8-point
 * locality vector (miss rates for 32KB..256KB caches) across executions
 * of the same locality phase, compared with BBV clustering and BBV
 * RLE-Markov prediction over fixed intervals.
 */

#include <cstdio>
#include <map>
#include <vector>

#include "bbv/clustering.hpp"
#include "bbv/markov.hpp"
#include "bench/common.hpp"
#include "core/evaluation.hpp"
#include "support/csv.hpp"
#include "support/stats.hpp"
#include "workloads/registry.hpp"

using namespace lpp;
using namespace lppbench;

namespace {

/**
 * Size-weighted average locality stddev over groups of units. As for
 * locality phases, the first member of each group (the one carrying
 * cold-cache effects and the one a predictor would learn from) is
 * excluded.
 */
double
groupedStddev(const std::vector<cache::SegmentLocality> &units,
              const std::vector<uint32_t> &group_of)
{
    std::map<uint32_t, VectorStats> groups;
    std::map<uint32_t, bool> seen;
    for (size_t i = 0; i < units.size(); ++i) {
        if (!seen[group_of[i]]) {
            seen[group_of[i]] = true;
            continue;
        }
        auto it = groups.find(group_of[i]);
        if (it == groups.end())
            it = groups.emplace(group_of[i], VectorStats(cache::simWays))
                     .first;
        it->second.push(units[i].missRateVector());
    }
    double weighted = 0.0;
    size_t total = 0;
    for (const auto &kv : groups) {
        weighted += kv.second.averageStddev() *
                    static_cast<double>(kv.second.count());
        total += kv.second.count();
    }
    return total == 0 ? 0.0 : weighted / static_cast<double>(total);
}

} // namespace

int
main()
{
    title("Table 4: standard deviation of locality phases and BBV "
          "phases");
    row("Benchmark", {"LocalityPhase", "BBVcluster", "BBVMarkov"}, 10,
        14);
    rule();

    CsvWriter csv(outPath("table4.csv"),
                  {"benchmark", "locality_phase", "bbv_clustering",
                   "bbv_markov_prediction"});

    for (const auto &name : workloads::predictableNames()) {
        auto w = workloads::create(name);
        auto ev = core::evaluateWorkload(*w);

        // BBV baseline over fixed intervals of the same prediction run
        // (~50K accesses per interval, the scaled-down 10M-instruction
        // window).
        auto ref_in = w->refInput();
        auto prof = core::collectIntervals(
            [&](trace::TraceSink &s) { w->run(ref_in, s); }, 50000);

        bbv::BbvClustering clustering(0.2);
        auto clusters = clustering.assignAll(prof.bbvs);
        double cluster_sd = groupedStddev(prof.units, clusters);

        bbv::RleMarkovPredictor markov;
        auto predicted = markov.predictSequence(clusters);
        double markov_sd = groupedStddev(prof.units, predicted);

        row(name,
            {sci(ev.localityStddev), sci(cluster_sd), sci(markov_sd)},
            10, 14);
        csv.row({name, sci(ev.localityStddev), sci(cluster_sd),
                 sci(markov_sd)});
    }
    rule();
    std::printf("\nPaper shape: locality-phase std-dev is orders of "
                "magnitude below both BBV\ncolumns; Markov prediction "
                "is worse than clustering.\n");
    std::printf("Series written to %s\n", csv.path().c_str());
    return 0;
}
