/**
 * @file
 * Reproduces paper Table 3: the number and size of leaf and composite
 * phases in detection and prediction runs.
 */

#include <cstdio>

#include "bench/common.hpp"
#include "core/evaluation.hpp"
#include "support/csv.hpp"
#include "workloads/registry.hpp"

using namespace lpp;
using namespace lppbench;

int
main()
{
    title("Table 3: number and size of phases in detection and "
          "prediction runs");
    row("Benchmark",
        {"d.leaves", "d.len(M)", "d.leaf(M)", "d.comp(M)", "p.leaves",
         "p.len(M)", "p.leaf(M)", "p.comp(M)"},
        10, 9);
    rule('-', 92);

    CsvWriter csv(outPath("table3.csv"),
                  {"benchmark", "det_leaves", "det_length_m",
                   "det_leaf_m", "det_composite_m", "pred_leaves",
                   "pred_length_m", "pred_leaf_m", "pred_composite_m"});

    core::GranularityRow dsum, psum;
    int n = 0;
    // Evaluations run in parallel; results arrive in name order.
    auto evals = core::evaluateWorkloads(workloads::predictableNames());
    for (const auto &ev : evals) {
        const auto &name = ev.name;
        const auto &d = ev.detectionRow;
        const auto &p = ev.predictionRow;
        row(name,
            {std::to_string(d.leafExecutions), num(d.execLengthM, 1),
             num(d.avgLeafSizeM, 3), num(d.avgLargestCompositeM, 3),
             std::to_string(p.leafExecutions), num(p.execLengthM, 1),
             num(p.avgLeafSizeM, 3), num(p.avgLargestCompositeM, 3)},
            10, 9);
        csv.row({name, std::to_string(d.leafExecutions),
                 num(d.execLengthM, 3), num(d.avgLeafSizeM, 4),
                 num(d.avgLargestCompositeM, 4),
                 std::to_string(p.leafExecutions), num(p.execLengthM, 3),
                 num(p.avgLeafSizeM, 4), num(p.avgLargestCompositeM, 4)});

        dsum.leafExecutions += d.leafExecutions;
        dsum.execLengthM += d.execLengthM;
        dsum.avgLeafSizeM += d.avgLeafSizeM;
        dsum.avgLargestCompositeM += d.avgLargestCompositeM;
        psum.leafExecutions += p.leafExecutions;
        psum.execLengthM += p.execLengthM;
        psum.avgLeafSizeM += p.avgLeafSizeM;
        psum.avgLargestCompositeM += p.avgLargestCompositeM;
        ++n;
    }
    rule('-', 92);
    row("Average",
        {std::to_string(dsum.leafExecutions / n),
         num(dsum.execLengthM / n, 1), num(dsum.avgLeafSizeM / n, 3),
         num(dsum.avgLargestCompositeM / n, 3),
         std::to_string(psum.leafExecutions / n),
         num(psum.execLengthM / n, 1), num(psum.avgLeafSizeM / n, 3),
         num(psum.avgLargestCompositeM / n, 3)},
        10, 9);

    std::printf("\nPaper shape: prediction runs are several times "
                "longer with more leaf executions\n(except Mesh, whose "
                "two inputs have the same length); composite phases "
                "are\nmultiples of the leaf size.\n");
    std::printf("Series written to %s\n", csv.path().c_str());
    return 0;
}
