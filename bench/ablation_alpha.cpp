/**
 * @file
 * Ablation: sensitivity of optimal phase partitioning to the reuse
 * penalty alpha. The paper reports that partitions are similar for
 * alpha in [0.2, 0.8] and uses 0.5; this driver reruns the detection
 * front end (sampling + wavelet filtering held fixed) under a sweep of
 * alphas and reports the phase count and how much the boundary sets
 * move relative to alpha = 0.5.
 */

#include <algorithm>
#include <cstdio>
#include <unordered_set>
#include <vector>

#include "bench/common.hpp"
#include "phase/partition.hpp"
#include "reuse/sampler.hpp"
#include "support/csv.hpp"
#include "trace/sink.hpp"
#include "wavelet/filtering.hpp"
#include "workloads/registry.hpp"

using namespace lpp;
using namespace lppbench;

namespace {

/** Boundary-time overlap fraction (within 2000 accesses). */
double
overlap(const std::vector<uint64_t> &a, const std::vector<uint64_t> &b)
{
    if (a.empty())
        return b.empty() ? 1.0 : 0.0;
    uint64_t hit = 0;
    for (uint64_t t : a) {
        for (uint64_t u : b) {
            if (t + 2000 >= u && u + 2000 >= t) {
                ++hit;
                break;
            }
        }
    }
    return static_cast<double>(hit) / static_cast<double>(a.size());
}

std::vector<reuse::SamplePoint>
filteredTrace(const workloads::Workload &w)
{
    auto in = w.trainInput();
    trace::ClockSink clock;
    std::unordered_set<uint64_t> elements;
    class Pre : public trace::TraceSink
    {
      public:
        Pre(trace::ClockSink &c, std::unordered_set<uint64_t> &e)
            : clock(c), elems(e)
        {}
        void
        onAccess(trace::Addr a) override
        {
            clock.onAccess(a);
            elems.insert(trace::toElement(a));
        }
        trace::ClockSink &clock;
        std::unordered_set<uint64_t> &elems;
    } pre(clock, elements);
    w.run(in, pre);

    reuse::SamplerConfig cfg;
    cfg.expectedAccesses = clock.accesses();
    uint64_t threshold = std::max<uint64_t>(
        16, static_cast<uint64_t>(0.05 * elements.size()));
    cfg.initialQualification = cfg.floorQualification =
        cfg.ceilQualification = threshold;
    cfg.initialTemporal = cfg.floorTemporal = cfg.ceilTemporal =
        threshold;
    reuse::VariableDistanceSampler sampler(cfg);
    w.run(in, sampler);

    wavelet::FilterConfig fcfg;
    fcfg.family = wavelet::Family::Haar;
    wavelet::SubTraceFilter filter(fcfg);
    return filter.apply(sampler.samples());
}

} // namespace

int
main()
{
    title("Ablation: optimal-partition sensitivity to alpha "
          "(paper: stable in [0.2, 0.8])");

    const double alphas[] = {0.05, 0.2, 0.35, 0.5, 0.65, 0.8, 0.95};
    CsvWriter csv(outPath("ablation_alpha.csv"),
                  {"benchmark", "alpha", "phases",
                   "boundary_overlap_vs_0.5"});

    for (const char *name : {"tomcatv", "compress", "applu"}) {
        auto w = workloads::create(name);
        auto filtered = filteredTrace(*w);

        // Reference partition at the paper's alpha = 0.5.
        phase::OptimalPartitioner ref(
            phase::PartitionConfig{0.5, 6000});
        auto ref_times = ref.boundaryTimes(filtered);

        std::printf("\n%s (%zu filtered points, %zu boundaries at "
                    "alpha=0.5):\n",
                    name, filtered.size(), ref_times.size());
        std::printf("  alpha   phases   overlap-with-0.5\n");
        for (double a : alphas) {
            phase::OptimalPartitioner part(
                phase::PartitionConfig{a, 6000});
            auto p = part.partition(filtered);
            std::vector<uint64_t> times;
            for (size_t b : p.boundaries)
                times.push_back(filtered[b].time);
            double ov = overlap(times, ref_times);
            std::printf("  %5.2f   %6zu   %.2f\n", a, p.phaseCount(),
                        ov);
            csv.rowNumeric({0, a, static_cast<double>(p.phaseCount()),
                            ov});
        }
    }
    std::printf("\nExpected: mid-range alphas give near-identical "
                "partitions; extremes diverge.\n");
    return 0;
}
