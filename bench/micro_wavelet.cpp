/**
 * @file
 * Microbenchmarks for the wavelet substrate.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "support/random.hpp"
#include "wavelet/dwt.hpp"
#include "wavelet/filtering.hpp"

namespace {

std::vector<double>
signal(size_t n)
{
    lpp::Rng rng(3);
    std::vector<double> x(n);
    for (auto &v : x)
        v = rng.gaussian() * 100.0;
    return x;
}

void
BM_DecomposeD6(benchmark::State &state)
{
    auto x = signal(static_cast<size_t>(state.range(0)));
    lpp::wavelet::Dwt dwt(lpp::wavelet::Family::Daubechies6);
    for (auto _ : state)
        benchmark::DoNotOptimize(dwt.decompose(x, 4));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecomposeD6)->Arg(256)->Arg(4096)->Arg(65536);

void
BM_StationaryDetailHaar(benchmark::State &state)
{
    auto x = signal(static_cast<size_t>(state.range(0)));
    lpp::wavelet::Dwt dwt(lpp::wavelet::Family::Haar);
    for (auto _ : state)
        benchmark::DoNotOptimize(dwt.stationaryDetail(x));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StationaryDetailHaar)->Arg(256)->Arg(4096)->Arg(65536);

void
BM_SubTraceFilter(benchmark::State &state)
{
    // Flat signal with one step: the common case per datum.
    std::vector<double> x(static_cast<size_t>(state.range(0)), 1000.0);
    for (size_t i = x.size() / 2; i < x.size(); ++i)
        x[i] = 50000.0;
    lpp::wavelet::SubTraceFilter filter;
    for (auto _ : state)
        benchmark::DoNotOptimize(filter.filterSignal(x));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SubTraceFilter)->Arg(32)->Arg(1024);

} // namespace

BENCHMARK_MAIN();
