/**
 * @file
 * Reproduces paper Figure 3 for Tomcatv and Compress:
 *  (a,b) phase boundaries found by off-line detection in the sampled
 *        reuse trace;
 *  (c,d) the locality of run-time-predicted phases — every execution of
 *        a phase plotted by its 32KB and 256KB miss rates (the paper's
 *        perfectly stacked crosses);
 *  (e,f) fixed 50K-access intervals of the same execution (scattered
 *        dots) and the bounding boxes of their BBV clusters.
 */

#include <algorithm>
#include <cstdio>
#include <map>

#include "bbv/clustering.hpp"
#include "bench/common.hpp"
#include "core/evaluation.hpp"
#include "support/csv.hpp"
#include "workloads/registry.hpp"

using namespace lpp;
using namespace lppbench;

namespace {

void
analyzeOne(const std::string &name)
{
    auto w = workloads::create(name);
    auto ev = core::evaluateWorkload(*w);

    std::printf("\n--- %s ---\n", name.c_str());

    // (a) detected boundaries in the training run's sampled trace.
    CsvWriter bcsv(outPath("fig3a_" + name + "_boundaries.csv"),
                   {"boundary_time"});
    for (uint64_t t : ev.analysis.detection.boundaryTimes)
        bcsv.row({std::to_string(t)});
    std::printf("(a) off-line detection: %zu boundaries in %llu "
                "training accesses\n",
                ev.analysis.detection.boundaryTimes.size(),
                static_cast<unsigned long long>(
                    ev.analysis.detection.trainAccesses));
    std::printf("    markers inserted at blocks:");
    for (const auto &p : ev.analysis.detection.selection.phases)
        std::printf(" %u", p.marker);
    std::printf("\n");

    // (c) locality of predicted phases in the reference run.
    const auto &execs = ev.ref.replay.executions;
    CsvWriter pcsv(outPath("fig3c_" + name + "_phases.csv"),
                   {"phase", "miss_32k", "miss_256k", "instructions"});
    struct Box
    {
        double lo32 = 1e9, hi32 = -1e9, lo256 = 1e9, hi256 = -1e9;
        uint64_t count = 0;
        uint64_t min_len = ~0ULL, max_len = 0;
    };
    std::map<trace::PhaseId, Box> boxes;
    for (const auto &e : execs) {
        double m32 = e.locality.missRate(1);
        double m256 = e.locality.missRate(8);
        pcsv.rowNumeric({static_cast<double>(e.phase), m32, m256,
                         static_cast<double>(e.instructions)});
        Box &b = boxes[e.phase];
        b.lo32 = std::min(b.lo32, m32);
        b.hi32 = std::max(b.hi32, m32);
        b.lo256 = std::min(b.lo256, m256);
        b.hi256 = std::max(b.hi256, m256);
        b.min_len = std::min(b.min_len, e.instructions);
        b.max_len = std::max(b.max_len, e.instructions);
        ++b.count;
    }
    std::printf("(c) %zu executions of %zu phases; per-phase locality "
                "spread:\n",
                execs.size(), boxes.size());
    std::printf("    phase   freq%%   miss32 spread    miss256 spread   "
                "len range (K inst)\n");
    for (const auto &kv : boxes) {
        const Box &b = kv.second;
        std::printf("    %5u  %5.1f   %.4f..%.4f   %.4f..%.4f   "
                    "%llu..%llu\n",
                    kv.first,
                    100.0 * static_cast<double>(b.count) /
                        static_cast<double>(execs.size()),
                    b.lo32, b.hi32, b.lo256, b.hi256,
                    static_cast<unsigned long long>(b.min_len / 1000),
                    static_cast<unsigned long long>(b.max_len / 1000));
    }

    // (e) fixed intervals + BBV cluster bounding boxes.
    auto ref_in = w->refInput();
    auto prof = core::collectIntervals(
        [&](trace::TraceSink &s) { w->run(ref_in, s); }, 50000);
    bbv::BbvClustering clustering(0.2);
    auto clusters = clustering.assignAll(prof.bbvs);

    CsvWriter icsv(outPath("fig3e_" + name + "_intervals.csv"),
                   {"interval", "miss_32k", "miss_256k", "bbv_cluster"});
    std::map<uint32_t, Box> cboxes;
    for (size_t i = 0; i < prof.units.size(); ++i) {
        double m32 = prof.units[i].missRate(1);
        double m256 = prof.units[i].missRate(8);
        icsv.rowNumeric({static_cast<double>(i), m32, m256,
                         static_cast<double>(clusters[i])});
        Box &b = cboxes[clusters[i]];
        b.lo32 = std::min(b.lo32, m32);
        b.hi32 = std::max(b.hi32, m32);
        b.lo256 = std::min(b.lo256, m256);
        b.hi256 = std::max(b.hi256, m256);
        ++b.count;
    }
    std::printf("(e) %zu intervals, %zu BBV clusters; largest cluster "
                "boxes:\n",
                prof.units.size(), cboxes.size());
    std::vector<std::pair<uint64_t, uint32_t>> by_size;
    for (const auto &kv : cboxes)
        by_size.emplace_back(kv.second.count, kv.first);
    std::sort(by_size.rbegin(), by_size.rend());
    for (size_t i = 0; i < std::min<size_t>(6, by_size.size()); ++i) {
        const Box &b = cboxes[by_size[i].second];
        std::printf("    cluster %2u  %5.1f%%  miss32 %.4f..%.4f  "
                    "miss256 %.4f..%.4f\n",
                    by_size[i].second,
                    100.0 * static_cast<double>(b.count) /
                        static_cast<double>(prof.units.size()),
                    b.lo32, b.hi32, b.lo256, b.hi256);
    }
}

} // namespace

int
main()
{
    title("Figure 3: phases vs intervals vs BBV clusters "
          "(Tomcatv, Compress)");
    analyzeOne("tomcatv");
    analyzeOne("compress");
    std::printf("\nPaper shape: phase executions stack onto a handful "
                "of points; interval dots\nscatter; BBV boxes are tight "
                "but never point-like.\n");
    return 0;
}
