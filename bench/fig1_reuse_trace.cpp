/**
 * @file
 * Reproduces paper Figure 1: the (sampled) reuse-distance trace of
 * Tomcatv. Each point is one recorded long reuse: x = logical time
 * (access index), y = reuse distance. The phase structure is visible as
 * abrupt changes in the distance levels.
 */

#include <algorithm>
#include <cstdio>
#include <unordered_set>

#include "bench/common.hpp"
#include "reuse/sampler.hpp"
#include "support/csv.hpp"
#include "trace/sink.hpp"
#include "workloads/registry.hpp"

using namespace lpp;
using namespace lppbench;

int
main()
{
    title("Figure 1: reuse-distance trace of Tomcatv "
          "(variable-distance sampled)");

    auto w = workloads::create("tomcatv");
    auto in = w->trainInput();

    // Precount pass: trace length and working-set size, exactly as
    // the detector derives its pinned thresholds.
    trace::ClockSink clock;
    std::unordered_set<uint64_t> elements;
    class Pre : public trace::TraceSink
    {
      public:
        Pre(trace::ClockSink &c, std::unordered_set<uint64_t> &e)
            : clock(c), elems(e)
        {}
        void
        onAccess(trace::Addr a) override
        {
            clock.onAccess(a);
            elems.insert(trace::toElement(a));
        }
        trace::ClockSink &clock;
        std::unordered_set<uint64_t> &elems;
    } pre(clock, elements);
    w->run(in, pre);

    reuse::SamplerConfig cfg;
    cfg.expectedAccesses = clock.accesses();
    uint64_t threshold = std::max<uint64_t>(
        16, static_cast<uint64_t>(0.05 * elements.size()));
    cfg.initialQualification = cfg.floorQualification =
        cfg.ceilQualification = threshold;
    cfg.initialTemporal = cfg.floorTemporal = cfg.ceilTemporal =
        threshold;
    cfg.targetSamples = 30000;
    reuse::VariableDistanceSampler sampler(cfg);
    w->run(in, sampler);

    auto merged = sampler.mergedTrace();
    CsvWriter csv(outPath("fig1_tomcatv_trace.csv"),
                  {"logical_time", "reuse_distance", "datum"});
    uint64_t dmin = ~0ULL, dmax = 0;
    for (const auto &p : merged) {
        csv.row({std::to_string(p.time), std::to_string(p.distance),
                 std::to_string(p.datum)});
        dmin = std::min(dmin, p.distance);
        dmax = std::max(dmax, p.distance);
    }

    std::printf("run length         : %llu accesses\n",
                static_cast<unsigned long long>(clock.accesses()));
    std::printf("data samples       : %zu\n", sampler.samples().size());
    std::printf("access samples     : %llu\n",
                static_cast<unsigned long long>(sampler.sampleCount()));
    std::printf("threshold adjusts  : %u\n", sampler.adjustments());
    std::printf("distance range     : [%llu, %llu]\n",
                static_cast<unsigned long long>(dmin),
                static_cast<unsigned long long>(dmax));

    // Coarse ASCII rendering: mean sampled distance per time bucket.
    const int buckets = 72;
    std::vector<double> sum(buckets, 0.0);
    std::vector<uint64_t> cnt(buckets, 0);
    for (const auto &p : merged) {
        auto b = static_cast<int>(p.time * buckets / clock.accesses());
        b = std::min(b, buckets - 1);
        sum[b] += static_cast<double>(p.distance);
        ++cnt[b];
    }
    std::printf("\nmean sampled distance over time (. low, # high):\n");
    for (int r = 4; r >= 1; --r) {
        for (int b = 0; b < buckets; ++b) {
            double m = cnt[b] ? sum[b] / cnt[b] : 0.0;
            double level = m / static_cast<double>(dmax) * 4.0;
            std::putchar(level >= r ? '#' : (r == 1 ? '.' : ' '));
        }
        std::putchar('\n');
    }
    std::printf("\nSeries written to %s\n", csv.path().c_str());
    return 0;
}
