/**
 * @file
 * Extension study: sub-phase detection (paper Section 2.3: "We can use
 * a smaller threshold to find sub-phases after we find large phases").
 * Re-runs marker selection with the region threshold divided by 8 and
 * reports the sub-phases nested under each top-level phase.
 */

#include <cstdio>

#include "bench/common.hpp"
#include "phase/detector.hpp"
#include "support/csv.hpp"
#include "trace/recorder.hpp"
#include "workloads/registry.hpp"

using namespace lpp;
using namespace lppbench;

int
main()
{
    title("Extension: sub-phase detection (threshold / 8)");

    CsvWriter csv(outPath("ablation_subphase.csv"),
                  {"benchmark", "coarse_phases", "fine_phases",
                   "fine_with_parent"});

    for (const char *name :
         {"fft", "compress", "tomcatv", "moldyn"}) {
        auto w = workloads::create(name);
        auto in = w->trainInput();

        trace::BlockRecorder blocks;
        w->run(in, blocks);

        phase::MarkerSelector selector{phase::MarkerConfig{}};
        auto sub = selector.selectSubPhases(
            blocks.events(), blocks.totalInstructions(),
            /*detected=*/64, /*refinement=*/8.0);

        size_t with_parent = 0;
        for (uint32_t p : sub.parentOf)
            with_parent += p != phase::SubPhaseSelection::noParent;

        std::printf("\n%s: %zu coarse phases, %zu fine phases "
                    "(%zu attributed to a parent)\n",
                    name, sub.coarse.phases.size(),
                    sub.fine.phases.size(), with_parent);
        for (size_t f = 0; f < sub.fine.phases.size(); ++f) {
            const auto &info = sub.fine.phases[f];
            uint32_t parent = sub.parentOf[f];
            std::printf("  fine phase %zu (block %u, %llu execs, "
                        "~%.0fK inst) -> coarse %s\n",
                        f, info.marker,
                        static_cast<unsigned long long>(
                            info.executions),
                        info.meanInstructions / 1000.0,
                        parent == phase::SubPhaseSelection::noParent
                            ? "(none)"
                            : std::to_string(parent).c_str());
        }
        csv.row({name, std::to_string(sub.coarse.phases.size()),
                 std::to_string(sub.fine.phases.size()),
                 std::to_string(with_parent)});
    }
    std::printf("\nExpected: fine level splits composite work (FFT "
                "butterfly chunks, compress\nsetup) into sub-phases "
                "properly nested under the coarse phases.\n");
    return 0;
}
