/**
 * @file
 * Performance harness for the analysis pipeline: times the full
 * nine-workload evaluation sweep serially and in parallel and writes
 * BENCH_pipeline.json so the perf trajectory is machine-readable
 * across PRs.
 *
 * Stage timings are measured on a separate serial pass: `analysis` is
 * the off-line detection pipeline (sampling → wavelet → partition →
 * markers → Sequitur), `instrument` is the two instrumented replays
 * (train + ref), and `evaluate` is the remainder of evaluateWorkload
 * (prediction metrics, granularity, overlap). The serial/parallel
 * comparison then times evaluateWorkload end-to-end both ways and
 * checks the parallel results bit-identical to serial.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/analysis.hpp"
#include "core/evaluation.hpp"
#include "core/parallel.hpp"
#include "support/thread_pool.hpp"
#include "workloads/registry.hpp"

using namespace lpp;
using namespace lppbench;

namespace {

double
msSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** One workload's serial timing decomposition. */
struct StageTimes
{
    std::string name;
    double analysisMs = 0.0;
    double instrumentMs = 0.0;
    double evaluateMs = 0.0;
    double totalMs = 0.0;
    uint64_t programExecutions = 0; //!< live runs the plan scheduled
};

/** Field-by-field equality of the evaluation outputs that benches print. */
bool
sameEvaluation(const core::WorkloadEvaluation &a,
               const core::WorkloadEvaluation &b)
{
    auto sameRow = [](const core::GranularityRow &x,
                      const core::GranularityRow &y) {
        return x.leafExecutions == y.leafExecutions &&
               x.execLengthM == y.execLengthM &&
               x.avgLeafSizeM == y.avgLeafSizeM &&
               x.avgLargestCompositeM == y.avgLargestCompositeM;
    };
    return a.name == b.name &&
           a.metrics.strictAccuracy == b.metrics.strictAccuracy &&
           a.metrics.strictCoverage == b.metrics.strictCoverage &&
           a.metrics.relaxedAccuracy == b.metrics.relaxedAccuracy &&
           a.metrics.relaxedCoverage == b.metrics.relaxedCoverage &&
           sameRow(a.detectionRow, b.detectionRow) &&
           sameRow(a.predictionRow, b.predictionRow) &&
           a.localityStddev == b.localityStddev &&
           a.trainOverlap.recall == b.trainOverlap.recall &&
           a.trainOverlap.precision == b.trainOverlap.precision &&
           a.refOverlap.recall == b.refOverlap.recall &&
           a.refOverlap.precision == b.refOverlap.precision &&
           a.programExecutions == b.programExecutions &&
           a.train.replay.sequence() == b.train.replay.sequence() &&
           a.ref.replay.sequence() == b.ref.replay.sequence();
}

} // namespace

int
main()
{
    title("Pipeline performance: serial vs parallel evaluation sweep");

    auto names = workloads::allNames();
    size_t threads = support::ThreadPool::shared().threadCount();

    // Pass 1: serial, with stage decomposition.
    std::vector<StageTimes> stages;
    double serialStagesMs = 0.0;
    for (const auto &name : names) {
        auto w = workloads::create(name);
        StageTimes st;
        st.name = name;

        auto t0 = std::chrono::steady_clock::now();
        auto analysis = core::PhaseAnalysis::analyzeWorkload(*w);
        st.analysisMs = msSince(t0);

        const auto &table = analysis.detection.selection.table;
        auto train_in = w->trainInput();
        auto ref_in = w->refInput();
        t0 = std::chrono::steady_clock::now();
        auto train = core::runInstrumented(
            table, [&](trace::TraceSink &s) { w->run(train_in, s); });
        auto ref = core::runInstrumented(
            table, [&](trace::TraceSink &s) { w->run(ref_in, s); });
        st.instrumentMs = msSince(t0);

        t0 = std::chrono::steady_clock::now();
        auto full = core::evaluateWorkload(*w);
        st.programExecutions = full.programExecutions;
        st.totalMs = st.analysisMs + st.instrumentMs;
        st.evaluateMs = msSince(t0) - st.totalMs;
        if (st.evaluateMs < 0.0)
            st.evaluateMs = 0.0;
        st.totalMs += st.evaluateMs;
        serialStagesMs += st.totalMs;
        stages.push_back(st);
    }

    // Pass 2: serial end-to-end sweep (the baseline being reported).
    auto t0 = std::chrono::steady_clock::now();
    std::vector<core::WorkloadEvaluation> serial;
    for (const auto &name : names) {
        auto w = workloads::create(name);
        serial.push_back(core::evaluateWorkload(*w));
    }
    double serialMs = msSince(t0);

    // Pass 3: parallel sweep over the shared pool.
    t0 = std::chrono::steady_clock::now();
    auto parallel = core::evaluateWorkloads(names);
    double parallelMs = msSince(t0);

    bool identical = serial.size() == parallel.size();
    for (size_t i = 0; identical && i < serial.size(); ++i)
        identical = sameEvaluation(serial[i], parallel[i]);

    double speedup = parallelMs > 0.0 ? serialMs / parallelMs : 0.0;

    row("Workload",
        {"analysis", "instrum.", "evaluate", "total(ms)", "execs"}, 10,
        10);
    rule();
    for (const auto &st : stages)
        row(st.name,
            {num(st.analysisMs, 1), num(st.instrumentMs, 1),
             num(st.evaluateMs, 1), num(st.totalMs, 1),
             std::to_string(st.programExecutions)},
            10, 10);
    rule();
    std::printf("serial sweep   %10.1f ms\n", serialMs);
    std::printf("parallel sweep %10.1f ms  (%zu threads)\n", parallelMs,
                threads);
    std::printf("speedup        %10.2fx\n", speedup);
    std::printf("deterministic  %10s\n", identical ? "yes" : "NO");

    // Machine-readable series, one JSON object per run.
    std::ofstream json("BENCH_pipeline.json");
    json << "{\n"
         << "  \"threads\": " << threads << ",\n"
         << "  \"workloads\": [\n";
    for (size_t i = 0; i < stages.size(); ++i) {
        const auto &st = stages[i];
        json << "    {\"name\": \"" << st.name << "\", "
             << "\"analysis_ms\": " << num(st.analysisMs, 3) << ", "
             << "\"instrument_ms\": " << num(st.instrumentMs, 3) << ", "
             << "\"evaluate_ms\": " << num(st.evaluateMs, 3) << ", "
             << "\"total_ms\": " << num(st.totalMs, 3) << ", "
             << "\"program_executions\": " << st.programExecutions
             << "}"
             << (i + 1 < stages.size() ? "," : "") << "\n";
    }
    json << "  ],\n"
         << "  \"serial_ms\": " << num(serialMs, 3) << ",\n"
         << "  \"parallel_ms\": " << num(parallelMs, 3) << ",\n"
         << "  \"speedup\": " << num(speedup, 4) << ",\n"
         << "  \"parallel_identical_to_serial\": "
         << (identical ? "true" : "false") << "\n"
         << "}\n";
    json.close();
    std::printf("\nSeries written to BENCH_pipeline.json\n");

    return identical ? 0 : 1;
}
