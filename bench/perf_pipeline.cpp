/**
 * @file
 * Performance harness for the analysis pipeline: times the full
 * evaluation sweep serially and across a thread-count scaling curve
 * (dedicated pools at 1/2/4/8/hw threads, workload-level parallelism
 * plus the sharded intra-workload sweeps), then cold and warm against
 * the on-disk trace store, and writes BENCH_pipeline.json so the perf
 * trajectory is machine-readable across PRs.
 *
 * Every scaling point reports per-worker utilization (tasks and
 * busy-ms from the pool's counters) and fails the bench if a pool
 * with two or more threads was never exercised. The scaling
 * assertions (parallel >= serial at 2 threads, >= 1.5x at 4) only
 * arm when the host actually has that many cores —
 * `scaling_checked` in the JSON says whether they ran.
 *
 * Stage timings are measured directly, one stage per timer — the old
 * harness derived `evaluate` by subtracting the other stages from an
 * end-to-end run, which underflowed to 0.000 on workloads whose
 * repeat run was faster than the first (vortex). Each stage is the
 * real consumer path against the shared trace cache:
 *   `analysis`   — core::analyzeWorkload, records the training run
 *                  once and publishes it to the store,
 *   `instrument` — the two instrumented replays (train + ref),
 *   `evaluate`   — core::evaluateWorkload, reusing the training
 *                  recording (one live reference execution cold).
 * A zero-cost stage is a measurement bug, not a fast stage: the
 * harness fails loudly if any stage measures below MIN_STAGE_MS.
 *
 * The harness also exercises the streaming trace substrate directly:
 * synthetic streams of 1M/4M/16M accesses are recorded through the
 * predictive frame codec and replayed through a TraceCursor, reporting
 * raw vs encoded bytes, compression ratio, and replay MB/s per size —
 * and it FAILS if a warm replay's peak-RSS delta grows with trace
 * length (a replay must decode one frame at a time, never materialize
 * the stream). Each evaluated workload additionally reports its
 * recordings' raw/encoded byte sizes and compression ratio in the
 * JSON; a ratio below MIN_COMPRESSION_RATIO fails the bench.
 *
 * The stratified pass evaluates every workload with sampled strata
 * against the exhaustive replay (`verifyAgainstExact`) and fails the
 * bench unless the sampled pass is at least MIN_STRATIFIED_SPEEDUP
 * faster while holding the configured relative miss-rate error bound
 * — the `stratified_eval` section of BENCH_pipeline.json carries the
 * per-workload numbers.
 *
 * Environment knobs:
 *   LPP_PERF_WORKLOADS  comma-separated subset of registry names
 *                       (default: every workload),
 *   LPP_PERF_KEEP_CACHE keep bench_out/trace_cache from a previous
 *                       run, so the staged pass starts warm.
 */

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "core/analysis.hpp"
#include "core/evaluation.hpp"
#include "core/parallel.hpp"
#include "staticloc/predict.hpp"
#include "support/thread_pool.hpp"
#include "trace/memory_trace.hpp"
#include "workloads/registry.hpp"

using namespace lpp;
using namespace lppbench;

namespace {

/** Below this, a stage "timing" is a harness bug (nothing ran). */
constexpr double MIN_STAGE_MS = 0.0005;

/** Every workload's recording must compress at least this much. */
constexpr double MIN_COMPRESSION_RATIO = 4.0;

/** Sampled stratified evaluation must beat the exhaustive pass by at
 *  least this factor on every workload (while holding the configured
 *  relative miss-rate error bound). */
constexpr double MIN_STRATIFIED_SPEEDUP = 3.0;

/**
 * A warm replay may grow the process high-water mark by at most this
 * much, at EVERY trace length. A replay that materializes the decoded
 * stream would bump peak RSS by 8 bytes per access (128 MiB at 16M
 * accesses); a streaming replay's working set is one frame plus a
 * batch scratch, far below this budget.
 */
constexpr long REPLAY_RSS_BUDGET_KB = 32 * 1024;

double
msSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** One workload's serial timing decomposition. */
struct StageTimes
{
    std::string name;
    double analysisMs = 0.0;
    double instrumentMs = 0.0;
    double evaluateMs = 0.0;
    double totalMs = 0.0;
    uint64_t programExecutions = 0;     //!< live runs, staged cold pass
    uint64_t programExecutionsWarm = 0; //!< live runs, warm sweep
    uint64_t cacheHits = 0;             //!< staged pass, both stages
    uint64_t cacheMisses = 0;
    uint64_t traceBytes = 0; //!< bytes read from / written to store
    uint64_t rawTraceBytes = 0;     //!< decoded size of the recordings
    uint64_t encodedTraceBytes = 0; //!< compressed frames in memory
    double compressionRatio = 0.0;  //!< raw / encoded
};

/**
 * Field-by-field equality of the evaluation outputs that benches
 * print. With `compare_cost` the execution/cache counters must match
 * too (serial vs parallel, same config); without it only the analysis
 * results are compared (cached vs uncached runs differ in cost by
 * design but must agree bit-exactly on every output).
 */
bool
sameEvaluation(const core::WorkloadEvaluation &a,
               const core::WorkloadEvaluation &b, bool compare_cost)
{
    auto sameRow = [](const core::GranularityRow &x,
                      const core::GranularityRow &y) {
        return x.leafExecutions == y.leafExecutions &&
               x.execLengthM == y.execLengthM &&
               x.avgLeafSizeM == y.avgLeafSizeM &&
               x.avgLargestCompositeM == y.avgLargestCompositeM;
    };
    if (compare_cost &&
        (a.programExecutions != b.programExecutions ||
         a.traceCacheHits != b.traceCacheHits ||
         a.traceCacheMisses != b.traceCacheMisses))
        return false;
    return a.name == b.name &&
           a.metrics.strictAccuracy == b.metrics.strictAccuracy &&
           a.metrics.strictCoverage == b.metrics.strictCoverage &&
           a.metrics.relaxedAccuracy == b.metrics.relaxedAccuracy &&
           a.metrics.relaxedCoverage == b.metrics.relaxedCoverage &&
           sameRow(a.detectionRow, b.detectionRow) &&
           sameRow(a.predictionRow, b.predictionRow) &&
           a.localityStddev == b.localityStddev &&
           a.trainOverlap.recall == b.trainOverlap.recall &&
           a.trainOverlap.precision == b.trainOverlap.precision &&
           a.refOverlap.recall == b.refOverlap.recall &&
           a.refOverlap.precision == b.refOverlap.precision &&
           a.train.replay.sequence() == b.train.replay.sequence() &&
           a.ref.replay.sequence() == b.ref.replay.sequence();
}

/** Workload subset from LPP_PERF_WORKLOADS, or the full registry. */
std::vector<std::string>
selectedWorkloads()
{
    auto all = workloads::allNames();
    const char *env = std::getenv("LPP_PERF_WORKLOADS");
    if (!env || !*env)
        return all;
    std::vector<std::string> picked;
    std::string spec(env);
    size_t pos = 0;
    while (pos <= spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string name = spec.substr(pos, comma - pos);
        if (!name.empty()) {
            bool known = false;
            for (const auto &n : all)
                known = known || n == name;
            if (!known) {
                std::fprintf(stderr,
                             "error: LPP_PERF_WORKLOADS names unknown "
                             "workload '%s'\n",
                             name.c_str());
                std::exit(1);
            }
            picked.push_back(name);
        }
        pos = comma + 1;
    }
    if (picked.empty()) {
        std::fprintf(stderr, "error: LPP_PERF_WORKLOADS is empty\n");
        std::exit(1);
    }
    return picked;
}

/** Peak resident set size of this process, in KiB. */
long
peakRssKb()
{
    struct rusage ru = {};
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
    return ru.ru_maxrss; // Linux reports KiB
}

/** One point of the thread-count scaling curve. */
struct ScalingPoint
{
    size_t threads = 0;   //!< actual pool size
    double ms = 0.0;      //!< full-sweep wall time at this pool size
    double speedup = 0.0; //!< serial_ms / ms
    bool identical = false; //!< bit-identical to the serial sweep
    std::vector<uint64_t> workerTasks; //!< per worker
    std::vector<double> workerBusyMs;  //!< per worker
};

/** Thread counts to sweep: 1, 2, 4, 8, plus the machine width. */
std::vector<size_t>
scalingThreadCounts()
{
    std::vector<size_t> counts{1, 2, 4, 8};
    size_t hw = std::max(1u, std::thread::hardware_concurrency());
    if (std::find(counts.begin(), counts.end(), hw) == counts.end())
        counts.push_back(hw);
    std::sort(counts.begin(), counts.end());
    return counts;
}

/**
 * Deterministic synthetic stream for the replay-RSS harness: three
 * interleaved strided array sweeps with block events and occasional
 * phase jumps, batched like the workload emitter, `accesses` data
 * accesses long. Strided-but-not-constant-delta, so the predictive
 * codec has real work to do without a workload execution.
 */
void
emitSynthetic(trace::TraceSink &sink, uint64_t accesses)
{
    constexpr size_t batchN = 256;
    trace::Addr batch[batchN];
    constexpr trace::Addr baseA = 0x10000000;
    constexpr trace::Addr baseB = 0x20000000;
    constexpr trace::Addr baseC = 0x30000000;
    uint64_t emitted = 0;
    uint64_t i = 0;
    while (emitted < accesses) {
        sink.onBlock(static_cast<trace::BlockId>((i / 16) % 97), 12);
        size_t n = static_cast<size_t>(
            std::min<uint64_t>(batchN, accesses - emitted));
        for (size_t k = 0; k < n; k += 4) {
            uint64_t idx = i * batchN + k;
            batch[k] = baseA + 8 * idx;
            if (k + 1 < n)
                batch[k + 1] = baseB + 16 * (idx / 2);
            if (k + 2 < n)
                batch[k + 2] = baseC + 8 * (idx % 4096);
            if (k + 3 < n)
                batch[k + 3] = baseA + 8 * idx + ((idx >> 10) & 1);
        }
        sink.onAccessBatch(batch, n);
        emitted += n;
        ++i;
    }
    sink.onEnd();
}

/** Consumes a replayed stream, counting and folding the addresses so
 *  the delivery cannot be optimized away. */
class FoldSink : public trace::TraceSink
{
  public:
    void onAccess(trace::Addr addr) override
    {
        ++accesses;
        fold ^= addr;
    }

    void onAccessBatch(const trace::Addr *addrs, size_t n) override
    {
        accesses += n;
        for (size_t k = 0; k < n; ++k)
            fold ^= addrs[k];
    }

    uint64_t accesses = 0;
    trace::Addr fold = 0;
};

/** One trace length of the replay-RSS scaling harness. */
struct ReplayRssPoint
{
    uint64_t accesses = 0;
    uint64_t rawBytes = 0;
    uint64_t encodedBytes = 0;
    double ratio = 0.0;
    double replayMs = 0.0;   //!< one warm whole-trace replay
    double replayMBps = 0.0; //!< raw bytes / replay time
    long replayDeltaKb = 0;  //!< peak-RSS growth across the replay
};

/**
 * Record synthetic streams of growing length and measure what a warm
 * whole-trace replay does to the process peak RSS. The recording
 * itself (and the first replay, which warms the cursor) may allocate;
 * the measured second replay must not move the high-water mark by more
 * than REPLAY_RSS_BUDGET_KB at ANY length — that is the bounded-memory
 * replay contract, checked at 16x the smallest trace so linear growth
 * cannot hide.
 */
std::vector<ReplayRssPoint>
replayRssCurve(bool &ok)
{
    std::vector<ReplayRssPoint> points;
    for (uint64_t accesses :
         {1ull << 20, 4ull << 20, 16ull << 20}) {
        trace::StreamingTrace t;
        emitSynthetic(t, accesses);

        ReplayRssPoint pt;
        pt.accesses = accesses;
        pt.rawBytes = t.rawBytes();
        pt.encodedBytes = t.encodedBytes();
        pt.ratio = pt.encodedBytes
                       ? static_cast<double>(pt.rawBytes) /
                             static_cast<double>(pt.encodedBytes)
                       : 0.0;

        FoldSink warmup;
        t.replay(warmup); // first replay: allocators warm up

        long before = peakRssKb();
        FoldSink sink;
        auto t0 = std::chrono::steady_clock::now();
        t.replay(sink);
        pt.replayMs = msSince(t0);
        pt.replayDeltaKb = peakRssKb() - before;
        pt.replayMBps = pt.replayMs > 0.0
                            ? static_cast<double>(pt.rawBytes) / 1e6 /
                                  (pt.replayMs / 1e3)
                            : 0.0;

        if (sink.accesses != accesses) {
            std::fprintf(stderr,
                         "error: replay delivered %llu of %llu "
                         "accesses\n",
                         static_cast<unsigned long long>(sink.accesses),
                         static_cast<unsigned long long>(accesses));
            ok = false;
        }
        if (pt.replayDeltaKb > REPLAY_RSS_BUDGET_KB) {
            std::fprintf(stderr,
                         "error: warm replay of %lluM accesses grew "
                         "peak RSS by %ld KiB (budget %ld) — the "
                         "replay is not streaming\n",
                         static_cast<unsigned long long>(accesses >>
                                                         20),
                         pt.replayDeltaKb, REPLAY_RSS_BUDGET_KB);
            ok = false;
        }
        points.push_back(pt);
    }
    return points;
}

} // namespace

int
main()
{
    title("Pipeline performance: record-once/replay-many evaluation");

    auto names = selectedWorkloads();

    core::AnalysisConfig cached;
    cached.traceCache.enabled = true;
    const std::string cache_dir = cached.traceCache.dir;

    bool keep_cache = std::getenv("LPP_PERF_KEEP_CACHE") != nullptr;
    if (!keep_cache)
        std::filesystem::remove_all(cache_dir);

    // Pass 0: the streaming substrate in isolation — synthetic
    // recordings of growing length, warm whole-trace replays, and the
    // bounded-memory contract (a replay must never materialize the
    // decoded stream).
    bool replay_rss_ok = true;
    auto replayRss = replayRssCurve(replay_rss_ok);
    long rssAfterReplayHarness = peakRssKb();

    // Pass 1: staged decomposition against the shared cache. The
    // analysis stage records the one training execution; the evaluate
    // stage reuses it (train hit) and records the reference run —
    // one live execution per workload on a cold cache, zero warm.
    std::vector<StageTimes> stages;
    bool stage_cost_ok = true;
    for (const auto &name : names) {
        auto w = workloads::create(name);
        StageTimes st;
        st.name = name;

        auto t0 = std::chrono::steady_clock::now();
        auto analysis = core::analyzeWorkload(*w, cached);
        st.analysisMs = msSince(t0);

        const auto &table =
            analysis.analysis.detection.selection.table;
        auto train_in = w->trainInput();
        auto ref_in = w->refInput();
        t0 = std::chrono::steady_clock::now();
        auto train = core::runInstrumented(
            table, [&](trace::TraceSink &s) { w->run(train_in, s); });
        auto ref = core::runInstrumented(
            table, [&](trace::TraceSink &s) { w->run(ref_in, s); });
        st.instrumentMs = msSince(t0);

        t0 = std::chrono::steady_clock::now();
        auto full = core::evaluateWorkload(*w, cached);
        st.evaluateMs = msSince(t0);

        st.totalMs = st.analysisMs + st.instrumentMs + st.evaluateMs;
        // Same metric the pre-store harness reported: live executions
        // the evaluate stage scheduled (was 3; now 1 — the analysis
        // stage's recording covers the training run, leaving only the
        // live reference execution on a cold cache).
        st.programExecutions = full.programExecutions;
        st.cacheHits = analysis.traceCacheHits + full.traceCacheHits;
        st.cacheMisses =
            analysis.traceCacheMisses + full.traceCacheMisses;
        st.traceBytes = analysis.traceBytes + full.traceBytes;
        // The evaluate stage holds both recordings (train + ref), so
        // its byte counters describe the workload's full footprint.
        st.rawTraceBytes = full.rawTraceBytes;
        st.encodedTraceBytes = full.encodedTraceBytes;
        st.compressionRatio =
            st.encodedTraceBytes
                ? static_cast<double>(st.rawTraceBytes) /
                      static_cast<double>(st.encodedTraceBytes)
                : 0.0;

        for (double ms :
             {st.analysisMs, st.instrumentMs, st.evaluateMs}) {
            if (ms < MIN_STAGE_MS) {
                std::fprintf(stderr,
                             "error: %s: stage measured %.6f ms — a "
                             "stage that costs nothing was not "
                             "measured at all\n",
                             name.c_str(), ms);
                stage_cost_ok = false;
            }
        }
        stages.push_back(st);
    }
    long rssAfterStaged = peakRssKb();

    bool compression_ok = true;
    for (const auto &st : stages) {
        if (st.compressionRatio < MIN_COMPRESSION_RATIO) {
            std::fprintf(stderr,
                         "error: %s compresses %.2fx (< %.1fx): "
                         "%llu raw -> %llu encoded bytes\n",
                         st.name.c_str(), st.compressionRatio,
                         MIN_COMPRESSION_RATIO,
                         static_cast<unsigned long long>(
                             st.rawTraceBytes),
                         static_cast<unsigned long long>(
                             st.encodedTraceBytes));
            compression_ok = false;
        }
    }

    // Pass 2: serial end-to-end sweep, no cache (the live baseline).
    auto t0 = std::chrono::steady_clock::now();
    std::vector<core::WorkloadEvaluation> serial;
    for (const auto &name : names) {
        auto w = workloads::create(name);
        serial.push_back(core::evaluateWorkload(*w));
    }
    double serialMs = msSince(t0);
    long rssAfterSerial = peakRssKb();

    // Pass 3: the scaling curve — the same sweep on dedicated pools
    // of 1/2/4/8/hw threads. Workload-level units and the sharded
    // intra-workload sweeps share each point's pool; per-worker
    // counters show where the time went.
    size_t hw = std::max(1u, std::thread::hardware_concurrency());
    std::vector<ScalingPoint> curve;
    bool identical = true;
    bool pool_exercised_ok = true;
    for (size_t threads : scalingThreadCounts()) {
        support::ThreadPool pool(threads);
        pool.resetWorkerStats();
        t0 = std::chrono::steady_clock::now();
        auto parallel = core::evaluateWorkloads(names, {}, pool);
        ScalingPoint pt;
        pt.ms = msSince(t0);
        pt.threads = pool.threadCount();
        pt.speedup = pt.ms > 0.0 ? serialMs / pt.ms : 0.0;
        pt.identical = parallel.size() == serial.size();
        for (size_t i = 0; pt.identical && i < serial.size(); ++i)
            pt.identical = sameEvaluation(serial[i], parallel[i], true);
        identical = identical && pt.identical;

        uint64_t poolTasks = 0;
        for (const auto &ws : pool.workerStats()) {
            pt.workerTasks.push_back(ws.tasks);
            pt.workerBusyMs.push_back(static_cast<double>(ws.busyNs) /
                                      1e6);
            poolTasks += ws.tasks;
        }
        if (threads >= 2 && poolTasks == 0) {
            std::fprintf(stderr,
                         "error: %zu-thread sweep never handed the "
                         "pool a task — the parallel path did not "
                         "run\n",
                         threads);
            pool_exercised_ok = false;
        }
        curve.push_back(std::move(pt));
    }
    long rssAfterScaling = peakRssKb();

    // Scaling self-checks arm only when the machine can express the
    // parallelism; a 1-core container cannot beat serial with
    // threads.
    bool scaling_checked = false;
    bool scaling_ok = true;
    for (const auto &pt : curve) {
        if (pt.threads == 2 && hw >= 2) {
            scaling_checked = true;
            if (pt.speedup < 1.0) {
                scaling_ok = false;
                std::fprintf(stderr,
                             "error: 2-thread sweep slower than "
                             "serial (%.2fx)\n",
                             pt.speedup);
            }
        }
        if (pt.threads == 4 && hw >= 4) {
            scaling_checked = true;
            if (pt.speedup < 1.5) {
                scaling_ok = false;
                std::fprintf(stderr,
                             "error: 4-thread sweep below 1.5x "
                             "(%.2fx)\n",
                             pt.speedup);
            }
        }
    }

    // Headline parallel numbers: the fastest multi-thread point.
    const ScalingPoint *best = nullptr;
    for (const auto &pt : curve)
        if (pt.threads > 1 && (!best || pt.ms < best->ms))
            best = &pt;
    double parallelMs = best ? best->ms : serialMs;
    size_t bestThreads = best ? best->threads : 1;

    // Pass 4: cold cached sweep — cleared store, every workload
    // records and publishes its two executions.
    std::filesystem::remove_all(cache_dir);
    t0 = std::chrono::steady_clock::now();
    std::vector<core::WorkloadEvaluation> cold;
    for (const auto &name : names) {
        auto w = workloads::create(name);
        cold.push_back(core::evaluateWorkload(*w, cached));
    }
    double coldMs = msSince(t0);
    long rssAfterCold = peakRssKb();

    // Pass 5: warm cached sweep — zero live executions, replay only.
    t0 = std::chrono::steady_clock::now();
    std::vector<core::WorkloadEvaluation> warm;
    for (const auto &name : names) {
        auto w = workloads::create(name);
        warm.push_back(core::evaluateWorkload(*w, cached));
    }
    double warmMs = msSince(t0);
    long rssAfterWarm = peakRssKb();

    bool warm_identical = warm.size() == serial.size();
    bool warm_no_live = true;
    for (size_t i = 0; i < warm.size(); ++i) {
        if (warm_identical)
            warm_identical =
                sameEvaluation(serial[i], warm[i], false) &&
                sameEvaluation(cold[i], warm[i], false);
        warm_no_live = warm_no_live && warm[i].programExecutions == 0;
        if (i < stages.size())
            stages[i].programExecutionsWarm =
                warm[i].programExecutions;
    }

    // Pass 6: static-vs-dynamic divergence — the zero-execution oracle
    // predicts each statically described workload's training run and
    // the pipeline checks itself against it. One live execution per
    // workload (the training recording); the oracle itself adds none.
    struct OracleRow
    {
        std::string name;
        core::StaticOracleReport report;
        uint64_t executions = 0;
    };
    std::vector<OracleRow> oracleRows;
    bool oracle_ok = true;
    {
        core::AnalysisConfig ocfg;
        ocfg.staticOracle.enabled = true;
        for (const auto &name : workloads::staticNames()) {
            auto w = workloads::create(name);
            auto run = core::analyzeWorkload(*w, ocfg);
            OracleRow r{name, run.staticOracle, run.programExecutions};
            if (!r.report.checked || !r.report.ok) {
                oracle_ok = false;
                std::fprintf(stderr,
                             "error: static oracle failed on %s\n",
                             name.c_str());
                for (const auto &f : r.report.failures)
                    std::fprintf(stderr, "  %s\n", f.c_str());
            }
            oracleRows.push_back(std::move(r));
        }
    }

    // Pass 7: stratified sampled evaluation — every workload evaluated
    // twice through the same replay machinery (sampled strata vs the
    // exhaustive pass) on the warm store, asserting the headline
    // contract: >= MIN_STRATIFIED_SPEEDUP on evaluate time at a max
    // relative miss-rate error under the configured bound.
    struct StratRow
    {
        std::string name;
        core::StratifiedEvalReport rep;
    };
    std::vector<StratRow> stratRows;
    bool stratified_ok = true;
    {
        core::AnalysisConfig scfg = cached;
        scfg.stratifiedSampling.enabled = true;
        scfg.stratifiedSampling.verifyAgainstExact = true;
        // A private store: the sampled path's replay cost depends on
        // the recording's frame geometry, so the recordings must be
        // made under the stratified config (fine frames), not adopted
        // from the coarse-framed store the cached sweeps populated.
        scfg.traceCache.dir = cache_dir + "_stratified";
        std::filesystem::remove_all(scfg.traceCache.dir);
        for (const auto &name : names) {
            auto w = workloads::create(name);
            auto run = core::evaluateWorkload(*w, scfg);
            StratRow r{name, run.stratified};
            if (!r.rep.ran || !r.rep.sampled || !r.rep.verified ||
                !r.rep.comparison.ok) {
                stratified_ok = false;
                std::fprintf(stderr,
                             "error: stratified evaluation failed on "
                             "%s\n",
                             name.c_str());
                for (const auto &f : r.rep.comparison.failures)
                    std::fprintf(stderr, "  %s\n", f.c_str());
            }
            if (r.rep.speedup() < MIN_STRATIFIED_SPEEDUP) {
                stratified_ok = false;
                std::fprintf(stderr,
                             "error: %s stratified evaluate speedup "
                             "%.2fx below %.1fx (%.1f ms sampled vs "
                             "%.1f ms exact)\n",
                             name.c_str(), r.rep.speedup(),
                             MIN_STRATIFIED_SPEEDUP, r.rep.sampledMs,
                             r.rep.exactMs);
            }
            stratRows.push_back(std::move(r));
        }
    }

    double speedup = parallelMs > 0.0 ? serialMs / parallelMs : 0.0;
    double warmSpeedup = warmMs > 0.0 ? coldMs / warmMs : 0.0;

    row("Workload",
        {"analysis", "instrum.", "evaluate", "total(ms)", "execs",
         "hit/miss", "KiB", "ratio"},
        10, 9);
    rule();
    for (const auto &st : stages)
        row(st.name,
            {num(st.analysisMs, 1), num(st.instrumentMs, 1),
             num(st.evaluateMs, 1), num(st.totalMs, 1),
             std::to_string(st.programExecutions),
             std::to_string(st.cacheHits) + "/" +
                 std::to_string(st.cacheMisses),
             std::to_string(st.traceBytes / 1024),
             num(st.compressionRatio, 1) + "x"},
            10, 9);
    rule();
    std::printf("Streaming replay (synthetic, warm whole-trace)\n");
    for (const auto &pt : replayRss)
        std::printf("  %3lluM accesses  %8.1f MiB raw -> %7.1f MiB "
                    "(%5.1fx)  %8.1f MB/s  rss +%ld KiB\n",
                    static_cast<unsigned long long>(pt.accesses >> 20),
                    static_cast<double>(pt.rawBytes) / (1 << 20),
                    static_cast<double>(pt.encodedBytes) / (1 << 20),
                    pt.ratio, pt.replayMBps, pt.replayDeltaKb);
    std::printf("  replay rss     %10s  (budget %ld KiB per replay)\n",
                replay_rss_ok ? "flat" : "GROWING",
                REPLAY_RSS_BUDGET_KB);
    std::printf("  compression    %10s  (every workload >= %.1fx)\n",
                compression_ok ? "pass" : "FAIL",
                MIN_COMPRESSION_RATIO);
    rule();
    std::printf("serial sweep   %10.1f ms  (no cache)\n", serialMs);
    for (const auto &pt : curve) {
        double busy = 0.0;
        uint64_t tasks = 0;
        for (size_t i = 0; i < pt.workerTasks.size(); ++i) {
            busy += pt.workerBusyMs[i];
            tasks += pt.workerTasks[i];
        }
        std::printf("  %zu thread%-2s  %10.1f ms  %5.2fx  "
                    "(pool: %llu tasks, %.1f busy-ms)%s\n",
                    pt.threads, pt.threads == 1 ? " " : "s", pt.ms,
                    pt.speedup, static_cast<unsigned long long>(tasks),
                    busy, pt.identical ? "" : "  NOT IDENTICAL");
    }
    std::printf("parallel sweep %10.1f ms  (best, %zu threads; "
                "%zu hardware cores)\n",
                parallelMs, bestThreads, hw);
    std::printf("speedup        %10.2fx\n", speedup);
    std::printf("scaling checks %10s\n",
                scaling_checked ? (scaling_ok ? "pass" : "FAIL")
                                : "skipped (too few cores)");
    std::printf("cold cached    %10.1f ms  (record + publish)\n",
                coldMs);
    std::printf("warm cached    %10.1f ms  (replay only)\n", warmMs);
    std::printf("warm speedup   %10.2fx\n", warmSpeedup);
    std::printf("deterministic  %10s\n",
                identical && warm_identical ? "yes" : "NO");
    std::printf("warm live runs %10s\n", warm_no_live ? "0" : "NONZERO");
    std::printf("peak rss       %10ld KiB\n", peakRssKb());

    std::printf("\nStatic oracle (zero-execution prediction vs "
                "measured training run)\n");
    row("Workload",
        {"method", "divergence", "missrate", "markers", "execs", "ok"},
        12, 10);
    rule();
    for (const auto &orow : oracleRows)
        row(orow.name,
            {staticloc::methodName(orow.report.method),
             num(orow.report.histogramDivergence, 6),
             num(orow.report.maxMissRateError, 6),
             orow.report.markersIdentical ? "exact" : "diverged",
             std::to_string(orow.executions),
             orow.report.ok ? "yes" : "NO"},
            12, 10);

    std::printf("\nStratified sampled evaluation (sampled vs exact "
                "replay)\n");
    row("Workload",
        {"exact", "sampled", "speedup", "frac", "maxrel", "ci", "ok"},
        10, 9);
    rule();
    for (const auto &sr : stratRows)
        row(sr.name,
            {num(sr.rep.exactMs, 1), num(sr.rep.sampledMs, 1),
             num(sr.rep.speedup(), 2) + "x",
             num(sr.rep.sampledFraction(), 3),
             num(sr.rep.comparison.maxRelMissRateError, 5),
             std::to_string(sr.rep.comparison.ciCoveredWays) + "/8",
             sr.rep.comparison.ok &&
                     sr.rep.speedup() >= MIN_STRATIFIED_SPEEDUP
                 ? "yes"
                 : "NO"},
            10, 9);
    std::printf("stratified     %10s  (every workload >= %.1fx at "
                "<%.0f%% error)\n",
                stratified_ok ? "pass" : "FAIL", MIN_STRATIFIED_SPEEDUP,
                100.0 * cached.stratifiedSampling.errorBound);

    // Machine-readable series, one JSON object per run.
    std::ofstream json("BENCH_pipeline.json");
    json << "{\n"
         << "  \"threads\": " << bestThreads << ",\n"
         << "  \"shared_pool_threads\": "
         << support::ThreadPool::shared().threadCount() << ",\n"
         << "  \"hardware_concurrency\": " << hw << ",\n"
         << "  \"workloads\": [\n";
    for (size_t i = 0; i < stages.size(); ++i) {
        const auto &st = stages[i];
        json << "    {\"name\": \"" << st.name << "\", "
             << "\"analysis_ms\": " << num(st.analysisMs, 3) << ", "
             << "\"instrument_ms\": " << num(st.instrumentMs, 3) << ", "
             << "\"evaluate_ms\": " << num(st.evaluateMs, 3) << ", "
             << "\"total_ms\": " << num(st.totalMs, 3) << ", "
             << "\"program_executions\": " << st.programExecutions
             << ", "
             << "\"program_executions_warm\": "
             << st.programExecutionsWarm << ", "
             << "\"trace_cache\": {\"hits\": " << st.cacheHits
             << ", \"misses\": " << st.cacheMisses << "}, "
             << "\"trace_bytes\": " << st.traceBytes << ", "
             << "\"raw_trace_bytes\": " << st.rawTraceBytes << ", "
             << "\"encoded_trace_bytes\": " << st.encodedTraceBytes
             << ", "
             << "\"compression_ratio\": " << num(st.compressionRatio, 4)
             << "}" << (i + 1 < stages.size() ? "," : "") << "\n";
    }
    json << "  ],\n"
         << "  \"replay_rss\": [\n";
    for (size_t i = 0; i < replayRss.size(); ++i) {
        const auto &pt = replayRss[i];
        json << "    {\"accesses\": " << pt.accesses << ", "
             << "\"raw_bytes\": " << pt.rawBytes << ", "
             << "\"encoded_bytes\": " << pt.encodedBytes << ", "
             << "\"compression_ratio\": " << num(pt.ratio, 4) << ", "
             << "\"replay_ms\": " << num(pt.replayMs, 3) << ", "
             << "\"replay_mb_per_s\": " << num(pt.replayMBps, 1) << ", "
             << "\"replay_rss_delta_kb\": " << pt.replayDeltaKb << "}"
             << (i + 1 < replayRss.size() ? "," : "") << "\n";
    }
    json << "  ],\n"
         << "  \"replay_rss_budget_kb\": " << REPLAY_RSS_BUDGET_KB
         << ",\n"
         << "  \"replay_rss_ok\": "
         << (replay_rss_ok ? "true" : "false") << ",\n"
         << "  \"compression_ok\": "
         << (compression_ok ? "true" : "false") << ",\n"
         << "  \"serial_ms\": " << num(serialMs, 3) << ",\n"
         << "  \"scaling\": [\n";
    for (size_t i = 0; i < curve.size(); ++i) {
        const auto &pt = curve[i];
        json << "    {\"threads\": " << pt.threads << ", "
             << "\"ms\": " << num(pt.ms, 3) << ", "
             << "\"speedup\": " << num(pt.speedup, 4) << ", "
             << "\"identical_to_serial\": "
             << (pt.identical ? "true" : "false") << ", "
             << "\"worker_tasks\": [";
        for (size_t wkr = 0; wkr < pt.workerTasks.size(); ++wkr)
            json << (wkr ? ", " : "") << pt.workerTasks[wkr];
        json << "], \"worker_busy_ms\": [";
        for (size_t wkr = 0; wkr < pt.workerBusyMs.size(); ++wkr)
            json << (wkr ? ", " : "") << num(pt.workerBusyMs[wkr], 3);
        json << "]}" << (i + 1 < curve.size() ? "," : "") << "\n";
    }
    json << "  ],\n"
         << "  \"static_oracle\": [\n";
    for (size_t i = 0; i < oracleRows.size(); ++i) {
        const auto &r = oracleRows[i].report;
        json << "    {\"name\": \"" << oracleRows[i].name << "\", "
             << "\"method\": \"" << staticloc::methodName(r.method)
             << "\", "
             << "\"exact\": " << (r.exact ? "true" : "false") << ", "
             << "\"histogram_divergence\": "
             << num(r.histogramDivergence, 6) << ", "
             << "\"histogram_identical\": "
             << (r.histogramIdentical ? "true" : "false") << ", "
             << "\"miss_rate_max_error\": " << num(r.maxMissRateError, 6)
             << ", "
             << "\"marker_max_error\": " << r.markerMaxError << ", "
             << "\"markers_identical\": "
             << (r.markersIdentical ? "true" : "false") << ", "
             << "\"detected_boundary_precision\": "
             << num(r.detectedBoundaryPrecision, 4) << ", "
             << "\"program_executions\": " << oracleRows[i].executions
             << ", "
             << "\"ok\": " << (r.ok ? "true" : "false") << "}"
             << (i + 1 < oracleRows.size() ? "," : "") << "\n";
    }
    json << "  ],\n"
         << "  \"stratified_eval\": [\n";
    for (size_t i = 0; i < stratRows.size(); ++i) {
        const auto &r = stratRows[i].rep;
        uint64_t measuredExecs = 0, totalExecs = 0;
        size_t exactStrata = 0;
        for (const auto &s : r.strata) {
            measuredExecs += s.sampled;
            totalExecs += s.executions;
            exactStrata += s.exact ? 1 : 0;
        }
        double ciHalf = 0.0;
        for (uint32_t wy = 1; wy <= cache::simWays; ++wy)
            ciHalf = std::max(ciHalf, r.estimate.missRateHalfWidth(wy));
        json << "    {\"name\": \"" << stratRows[i].name << "\", "
             << "\"exact_ms\": " << num(r.exactMs, 3) << ", "
             << "\"sampled_ms\": " << num(r.sampledMs, 3) << ", "
             << "\"speedup\": " << num(r.speedup(), 4) << ", "
             << "\"sampled_fraction\": " << num(r.sampledFraction(), 6)
             << ", "
             << "\"strata\": " << r.strata.size() << ", "
             << "\"exact_strata\": " << exactStrata << ", "
             << "\"measured_executions\": " << measuredExecs << ", "
             << "\"total_executions\": " << totalExecs << ", "
             << "\"max_rel_miss_rate_error\": "
             << num(r.comparison.maxRelMissRateError, 6) << ", "
             << "\"max_abs_miss_rate_error\": "
             << num(r.comparison.maxAbsMissRateError, 6) << ", "
             << "\"histogram_divergence\": "
             << num(r.comparison.histogramDivergence, 6) << ", "
             << "\"ci_half_width\": " << num(ciHalf, 6) << ", "
             << "\"ci_covered_ways\": " << r.comparison.ciCoveredWays
             << ", "
             << "\"ok\": "
             << (r.comparison.ok &&
                         r.speedup() >= MIN_STRATIFIED_SPEEDUP
                     ? "true"
                     : "false")
             << "}" << (i + 1 < stratRows.size() ? "," : "") << "\n";
    }
    json << "  ],\n"
         << "  \"stratified_min_speedup\": "
         << num(MIN_STRATIFIED_SPEEDUP, 1) << ",\n"
         << "  \"stratified_error_bound\": "
         << num(cached.stratifiedSampling.errorBound, 4) << ",\n"
         << "  \"stratified_ok\": "
         << (stratified_ok ? "true" : "false") << ",\n"
         << "  \"scaling_checked\": "
         << (scaling_checked ? "true" : "false") << ",\n"
         << "  \"scaling_ok\": " << (scaling_ok ? "true" : "false")
         << ",\n"
         << "  \"parallel_ms\": " << num(parallelMs, 3) << ",\n"
         << "  \"speedup\": " << num(speedup, 4) << ",\n"
         << "  \"parallel_identical_to_serial\": "
         << (identical ? "true" : "false") << ",\n"
         << "  \"pipeline_cold_ms\": " << num(coldMs, 3) << ",\n"
         << "  \"pipeline_warm_ms\": " << num(warmMs, 3) << ",\n"
         << "  \"warm_speedup\": " << num(warmSpeedup, 4) << ",\n"
         << "  \"warm_identical_to_serial\": "
         << (warm_identical ? "true" : "false") << ",\n"
         << "  \"warm_live_executions\": "
         << (warm_no_live ? 0 : 1) << ",\n"
         << "  \"stage_peak_rss_kb\": {"
         << "\"replay_harness\": " << rssAfterReplayHarness << ", "
         << "\"staged\": " << rssAfterStaged << ", "
         << "\"serial\": " << rssAfterSerial << ", "
         << "\"scaling\": " << rssAfterScaling << ", "
         << "\"cold\": " << rssAfterCold << ", "
         << "\"warm\": " << rssAfterWarm << "},\n"
         << "  \"peak_rss_kb\": " << peakRssKb() << "\n"
         << "}\n";
    json.close();
    std::printf("\nSeries written to BENCH_pipeline.json\n");

    bool ok = identical && warm_identical && warm_no_live &&
              stage_cost_ok && pool_exercised_ok && scaling_ok &&
              oracle_ok && replay_rss_ok && compression_ok &&
              stratified_ok;
    return ok ? 0 : 1;
}
