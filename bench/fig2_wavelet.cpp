/**
 * @file
 * Reproduces paper Figure 2: wavelet filtering of one data sample's
 * access trace in MolDyn. Gradual changes and local peaks are filtered
 * out; the few accesses with significant level-1 coefficients mark
 * global phase changes.
 */

#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "phase/detector.hpp"
#include "reuse/sampler.hpp"
#include "support/csv.hpp"
#include "wavelet/filtering.hpp"
#include "workloads/registry.hpp"

using namespace lpp;
using namespace lppbench;

int
main()
{
    title("Figure 2: wavelet filtering of one MolDyn data sample");

    auto w = workloads::create("moldyn");
    auto in = w->trainInput();

    trace::ClockSink clock;
    w->run(in, clock);

    reuse::SamplerConfig cfg;
    cfg.expectedAccesses = clock.accesses();
    cfg.targetSamples = 30000;
    reuse::VariableDistanceSampler sampler(cfg);
    w->run(in, sampler);

    wavelet::FilterConfig fcfg;
    fcfg.family = wavelet::Family::Haar;
    wavelet::SubTraceFilter filter(fcfg);

    // Pick the datum whose filtered sub-trace best shows the effect:
    // a long signal with a small, non-zero number of kept accesses.
    const reuse::DataSample *best = nullptr;
    std::vector<size_t> best_kept;
    for (const auto &d : sampler.samples()) {
        std::vector<double> sig;
        sig.reserve(d.accesses.size());
        for (const auto &a : d.accesses)
            sig.push_back(static_cast<double>(a.distance));
        auto kept = filter.filterSignal(sig);
        if (kept.empty() || kept.size() > 6)
            continue;
        if (!best || d.accesses.size() > best->accesses.size()) {
            best = &d;
            best_kept = kept;
        }
    }

    if (!best) {
        std::printf("no suitable datum found\n");
        return 1;
    }

    CsvWriter csv(outPath("fig2_moldyn_wavelet.csv"),
                  {"index", "logical_time", "reuse_distance", "kept"});
    std::printf("datum element      : %llu\n",
                static_cast<unsigned long long>(best->element));
    std::printf("accesses in signal : %zu\n", best->accesses.size());
    std::printf("kept after filter  : %zu\n", best_kept.size());
    std::printf("\n index  time            distance  kept\n");
    for (size_t i = 0; i < best->accesses.size(); ++i) {
        bool kept = std::find(best_kept.begin(), best_kept.end(), i) !=
                    best_kept.end();
        std::printf("%6zu  %-14llu %9llu  %s\n", i,
                    static_cast<unsigned long long>(
                        best->accesses[i].time),
                    static_cast<unsigned long long>(
                        best->accesses[i].distance),
                    kept ? "<== phase change" : "");
        csv.row({std::to_string(i),
                 std::to_string(best->accesses[i].time),
                 std::to_string(best->accesses[i].distance),
                 kept ? "1" : "0"});
    }
    std::printf("\nSeries written to %s\n", csv.path().c_str());
    return 0;
}
