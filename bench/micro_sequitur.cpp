/**
 * @file
 * Microbenchmarks for Sequitur grammar compression.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "grammar/hierarchy.hpp"
#include "grammar/sequitur.hpp"
#include "support/random.hpp"

namespace {

std::vector<uint32_t>
periodic(size_t n, uint32_t period)
{
    std::vector<uint32_t> seq(n);
    for (size_t i = 0; i < n; ++i)
        seq[i] = static_cast<uint32_t>(i % period);
    return seq;
}

std::vector<uint32_t>
random_seq(size_t n, uint64_t alphabet)
{
    lpp::Rng rng(11);
    std::vector<uint32_t> seq(n);
    for (auto &s : seq)
        s = static_cast<uint32_t>(rng.below(alphabet));
    return seq;
}

void
BM_SequiturPeriodic(benchmark::State &state)
{
    auto seq = periodic(static_cast<size_t>(state.range(0)), 5);
    for (auto _ : state) {
        lpp::grammar::Sequitur s;
        s.append(seq);
        benchmark::DoNotOptimize(s.ruleCount());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SequiturPeriodic)->Arg(1000)->Arg(100000);

void
BM_SequiturRandom(benchmark::State &state)
{
    auto seq = random_seq(static_cast<size_t>(state.range(0)), 8);
    for (auto _ : state) {
        lpp::grammar::Sequitur s;
        s.append(seq);
        benchmark::DoNotOptimize(s.ruleCount());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SequiturRandom)->Arg(1000)->Arg(100000);

void
BM_HierarchyFromSequence(benchmark::State &state)
{
    auto seq = periodic(static_cast<size_t>(state.range(0)), 5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            lpp::grammar::PhaseHierarchy::fromSequence(seq));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HierarchyFromSequence)->Arg(1000)->Arg(20000);

} // namespace

BENCHMARK_MAIN();
