/**
 * @file
 * Microbenchmarks for the cache simulators.
 */

#include <benchmark/benchmark.h>

#include "cache/lru_cache.hpp"
#include "cache/stack_sim.hpp"
#include "support/random.hpp"

namespace {

void
BM_LruCacheRandom(benchmark::State &state)
{
    lpp::cache::LruCache cache(
        lpp::cache::CacheConfig{512, static_cast<uint32_t>(
                                         state.range(0)),
                                64});
    lpp::Rng rng(5);
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.access(rng.below(1 << 22)));
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_LruCacheRandom)->Arg(1)->Arg(2)->Arg(8);

void
BM_StackSimulatorRandom(benchmark::State &state)
{
    lpp::cache::StackSimulator sim;
    lpp::Rng rng(6);
    for (auto _ : state)
        sim.onAccess(rng.below(1 << 22));
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_StackSimulatorRandom);

void
BM_StackSimulatorSweep(benchmark::State &state)
{
    lpp::cache::StackSimulator sim;
    uint64_t i = 0;
    for (auto _ : state) {
        sim.onAccess((i % (1 << 20)) * 8);
        ++i;
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_StackSimulatorSweep);

} // namespace

BENCHMARK_MAIN();
