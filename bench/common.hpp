/**
 * @file
 * Shared helpers for the experiment drivers: fixed-width table printing
 * and CSV output under bench_out/.
 */

#ifndef LPP_BENCH_COMMON_HPP
#define LPP_BENCH_COMMON_HPP

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "support/csv.hpp"

namespace lppbench {

/** Print a rule line. */
inline void
rule(char c = '-', int n = 76)
{
    for (int i = 0; i < n; ++i)
        std::putchar(c);
    std::putchar('\n');
}

/** Print a table title with rules. */
inline void
title(const std::string &text)
{
    rule('=');
    std::printf("%s\n", text.c_str());
    rule('=');
}

/** Percentage with two decimals. */
inline std::string
pct(double fraction)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", fraction * 100.0);
    return buf;
}

/** Fixed precision number. */
inline std::string
num(double v, int digits = 2)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

/** Scientific notation. */
inline std::string
sci(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.2e", v);
    return buf;
}

/**
 * The benchmark output directory for CSV series. Creates bench_out/ on
 * first use so drivers work from a clean checkout (opening a CSV in a
 * missing directory would silently fail).
 */
inline std::string
outPath(const std::string &file)
{
    std::error_code ec;
    std::filesystem::create_directories("bench_out", ec);
    if (ec)
        std::fprintf(stderr, "warn: cannot create bench_out/: %s\n",
                     ec.message().c_str());
    return "bench_out/" + file;
}

/** Print one row with a fixed first column width. */
inline void
row(const std::string &name, const std::vector<std::string> &cells,
    int name_width = 10, int cell_width = 12)
{
    std::printf("%-*s", name_width, name.c_str());
    for (const auto &c : cells)
        std::printf(" %*s", cell_width, c.c_str());
    std::printf("\n");
}

} // namespace lppbench

#endif // LPP_BENCH_COMMON_HPP
