/**
 * @file
 * Extension study: statistics-based prediction for programs with
 * input-dependent phase lengths (the future work the paper sketches
 * for Gcc and Vortex in Section 3.1.2). Exact-match prediction is
 * compared with 10-90% quantile-band prediction on the unpredictable
 * programs, with a consistent program as control.
 */

#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "core/analysis.hpp"
#include "core/parallel.hpp"
#include "core/runtime.hpp"
#include "core/statistical.hpp"
#include "support/csv.hpp"
#include "workloads/registry.hpp"

using namespace lpp;
using namespace lppbench;

int
main()
{
    title("Extension: exact vs statistical (quantile-band) phase "
          "prediction");
    row("Benchmark",
        {"exactAcc%", "bandHit%", "bandCov%", "bandWidth"}, 10, 11);
    rule();

    CsvWriter csv(outPath("ablation_statistical.csv"),
                  {"benchmark", "exact_accuracy", "band_hit_rate",
                   "band_coverage", "band_relative_width"});

    const std::vector<const char *> names = {"gcc", "vortex", "moldyn",
                                             "compress"};

    // Analysis + instrumented replay per workload, fanned across the
    // pool; rows print in name order, identical to the serial loop.
    struct Result
    {
        core::PredictionMetrics exact;
        core::BandMetrics bands;
    };
    core::ParallelRunner runner;
    auto results = runner.mapIndexed(names.size(), [&](size_t i) {
        auto w = workloads::create(names[i]);
        auto analysis = core::PhaseAnalysis::analyzeWorkload(*w);
        auto ref = w->refInput();
        auto replay = core::replayInstrumented(
            analysis.detection.selection.table,
            [&](trace::TraceSink &s) { w->run(ref, s); });
        return Result{core::evaluatePrediction(
                          replay, analysis.consistentPhases()),
                      core::evaluateStatisticalPrediction(replay)};
    });

    for (size_t i = 0; i < names.size(); ++i) {
        const auto &exact = results[i].exact;
        const auto &bands = results[i].bands;
        row(names[i],
            {pct(exact.relaxedAccuracy), pct(bands.hitRate),
             pct(bands.coverage), num(bands.meanRelativeWidth, 3)},
            10, 11);
        csv.row({names[i], num(exact.relaxedAccuracy, 4),
                 num(bands.hitRate, 4), num(bands.coverage, 4),
                 num(bands.meanRelativeWidth, 4)});
    }
    rule();
    std::printf("\nExpected: gcc/vortex exact accuracy ~0 but band hit "
                "rate ~80%% (the band is\nwide — that is the honest "
                "price); moldyn benefits similarly; compress is the\n"
                "control where exact prediction already works and "
                "bands are points.\n");
    return 0;
}
