/**
 * @file
 * Microbenchmarks for the reuse-distance substrate: exact stack
 * distance tracking and variable-distance sampling throughput.
 */

#include <benchmark/benchmark.h>

#include "reuse/sampler.hpp"
#include "reuse/stack.hpp"
#include "support/random.hpp"

namespace {

void
BM_ReuseStackRandom(benchmark::State &state)
{
    uint64_t working_set = static_cast<uint64_t>(state.range(0));
    lpp::Rng rng(7);
    lpp::reuse::ReuseStack stack;
    for (auto _ : state) {
        benchmark::DoNotOptimize(stack.access(rng.below(working_set)));
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ReuseStackRandom)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void
BM_ReuseStackSweep(benchmark::State &state)
{
    uint64_t working_set = static_cast<uint64_t>(state.range(0));
    lpp::reuse::ReuseStack stack;
    uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(stack.access(i));
        if (++i == working_set)
            i = 0;
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ReuseStackSweep)->Arg(1 << 12)->Arg(1 << 18);

void
BM_VariableDistanceSampler(benchmark::State &state)
{
    lpp::reuse::SamplerConfig cfg;
    cfg.targetSamples = 20000;
    lpp::reuse::VariableDistanceSampler sampler(cfg);
    uint64_t i = 0;
    uint64_t n = 1 << 16;
    for (auto _ : state) {
        sampler.onAccess((i % n) * 8);
        ++i;
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_VariableDistanceSampler);

} // namespace

BENCHMARK_MAIN();
