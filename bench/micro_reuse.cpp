/**
 * @file
 * Microbenchmarks for the reuse-distance substrate: exact stack
 * distance tracking and variable-distance sampling throughput.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "core/parallel.hpp"
#include "reuse/analyzer.hpp"
#include "reuse/sampler.hpp"
#include "reuse/stack.hpp"
#include "support/flat_map.hpp"
#include "support/random.hpp"

namespace {

void
BM_ReuseStackRandom(benchmark::State &state)
{
    uint64_t working_set = static_cast<uint64_t>(state.range(0));
    lpp::Rng rng(7);
    lpp::reuse::ReuseStack stack;
    for (auto _ : state) {
        benchmark::DoNotOptimize(stack.access(rng.below(working_set)));
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ReuseStackRandom)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void
BM_ReuseStackSweep(benchmark::State &state)
{
    uint64_t working_set = static_cast<uint64_t>(state.range(0));
    lpp::reuse::ReuseStack stack;
    uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(stack.access(i));
        if (++i == working_set)
            i = 0;
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ReuseStackSweep)->Arg(1 << 12)->Arg(1 << 18);

void
BM_VariableDistanceSampler(benchmark::State &state)
{
    lpp::reuse::SamplerConfig cfg;
    cfg.targetSamples = 20000;
    lpp::reuse::VariableDistanceSampler sampler(cfg);
    uint64_t i = 0;
    uint64_t n = 1 << 16;
    for (auto _ : state) {
        sampler.onAccess((i % n) * 8);
        ++i;
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_VariableDistanceSampler);

// --- Hot-path substrate: flat robin-hood map vs std::unordered_map ---

void
BM_FlatMapProbe(benchmark::State &state)
{
    uint64_t keys = static_cast<uint64_t>(state.range(0));
    lpp::support::FlatMap<uint64_t> map(keys);
    for (uint64_t k = 0; k < keys; ++k)
        map.insert(k * 3, k);
    lpp::Rng rng(11);
    for (auto _ : state) {
        benchmark::DoNotOptimize(map.find(rng.below(keys * 3)));
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FlatMapProbe)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void
BM_UnorderedMapProbe(benchmark::State &state)
{
    uint64_t keys = static_cast<uint64_t>(state.range(0));
    std::unordered_map<uint64_t, uint64_t> map;
    map.reserve(keys);
    for (uint64_t k = 0; k < keys; ++k)
        map.emplace(k * 3, k);
    lpp::Rng rng(11);
    for (auto _ : state) {
        benchmark::DoNotOptimize(map.find(rng.below(keys * 3)));
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_UnorderedMapProbe)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

// --- Batched vs per-access delivery into a ReuseAnalyzer ---

void
BM_AnalyzerPerAccess(benchmark::State &state)
{
    lpp::Rng rng(5);
    std::vector<lpp::trace::Addr> addrs(1 << 16);
    for (auto &a : addrs)
        a = rng.below(1 << 20) * 8;
    lpp::reuse::ReuseAnalyzer analyzer(1 << 20);
    lpp::trace::TraceSink &sink = analyzer;
    for (auto _ : state) {
        for (auto a : addrs)
            sink.onAccess(a);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * addrs.size()));
}
BENCHMARK(BM_AnalyzerPerAccess);

void
BM_AnalyzerBatched(benchmark::State &state)
{
    lpp::Rng rng(5);
    std::vector<lpp::trace::Addr> addrs(1 << 16);
    for (auto &a : addrs)
        a = rng.below(1 << 20) * 8;
    lpp::reuse::ReuseAnalyzer analyzer(1 << 20);
    lpp::trace::TraceSink &sink = analyzer;
    constexpr size_t batch = 4096;
    for (auto _ : state) {
        for (size_t i = 0; i < addrs.size(); i += batch)
            sink.onAccessBatch(addrs.data() + i,
                               std::min(batch, addrs.size() - i));
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * addrs.size()));
}
BENCHMARK(BM_AnalyzerBatched);

// --- Parallel fan-out of independent reuse analyses (trace shards) ---

void
BM_ParallelReuseShards(benchmark::State &state)
{
    size_t shards = static_cast<size_t>(state.range(0));
    std::vector<std::vector<lpp::trace::Addr>> traces(shards);
    for (size_t s = 0; s < shards; ++s) {
        lpp::Rng rng(100 + s);
        traces[s].resize(1 << 15);
        for (auto &a : traces[s])
            a = rng.below(1 << 16) * 8;
    }
    lpp::core::ParallelRunner runner;
    for (auto _ : state) {
        auto counts = runner.mapIndexed(shards, [&](size_t s) {
            lpp::reuse::ReuseAnalyzer analyzer(1 << 16);
            analyzer.onAccessBatch(traces[s].data(), traces[s].size());
            analyzer.onEnd();
            return analyzer.histogram().total();
        });
        benchmark::DoNotOptimize(counts);
    }
    state.SetItemsProcessed(static_cast<int64_t>(
        state.iterations() * shards * (1 << 15)));
}
BENCHMARK(BM_ParallelReuseShards)->Arg(1)->Arg(4)->Arg(8);

} // namespace

BENCHMARK_MAIN();
