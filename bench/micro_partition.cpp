/**
 * @file
 * Microbenchmarks for optimal phase partitioning (the O(n^2) DP).
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "phase/partition.hpp"
#include "support/random.hpp"

namespace {

std::vector<lpp::reuse::SamplePoint>
clusteredTrace(size_t clusters, size_t per_cluster)
{
    std::vector<lpp::reuse::SamplePoint> pts;
    uint64_t t = 0;
    for (size_t c = 0; c < clusters; ++c) {
        for (uint32_t i = 0; i < per_cluster; ++i) {
            pts.push_back(lpp::reuse::SamplePoint{t, 1000, i});
            t += 10;
        }
    }
    return pts;
}

void
BM_PartitionClustered(benchmark::State &state)
{
    auto pts =
        clusteredTrace(static_cast<size_t>(state.range(0)), 20);
    lpp::phase::OptimalPartitioner part;
    for (auto _ : state)
        benchmark::DoNotOptimize(part.partition(pts));
    state.SetItemsProcessed(
        state.iterations() *
        static_cast<int64_t>(pts.size()));
}
BENCHMARK(BM_PartitionClustered)->Arg(10)->Arg(50)->Arg(200);

void
BM_PartitionRandom(benchmark::State &state)
{
    lpp::Rng rng(13);
    std::vector<lpp::reuse::SamplePoint> pts;
    for (int64_t i = 0; i < state.range(0); ++i) {
        pts.push_back(lpp::reuse::SamplePoint{
            static_cast<uint64_t>(i) * 10, 1000,
            static_cast<uint32_t>(rng.below(64))});
    }
    lpp::phase::OptimalPartitioner part;
    for (auto _ : state)
        benchmark::DoNotOptimize(part.partition(pts));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PartitionRandom)->Arg(500)->Arg(2000);

} // namespace

BENCHMARK_MAIN();
