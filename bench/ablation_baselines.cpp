/**
 * @file
 * Baseline study: (1) how far LRU sits from optimal replacement on the
 * suite (Cheetah, which the paper used, simulates both; OPT bounds how
 * much any replacement-side cleverness could add to cache resizing);
 * (2) how the Dhodapkar-Smith working-set-signature phase detector —
 * the third interval technique in the paper's related work — fragments
 * the same executions that locality phases describe exactly.
 */

#include <cstdio>
#include <vector>

#include "bbv/working_set.hpp"
#include "bench/common.hpp"
#include "cache/lru_cache.hpp"
#include "cache/opt_sim.hpp"
#include "core/analysis.hpp"
#include "support/csv.hpp"
#include "trace/recorder.hpp"
#include "workloads/registry.hpp"

using namespace lpp;
using namespace lppbench;

int
main()
{
    title("Baselines: LRU vs OPT replacement; working-set-signature "
          "phases");

    CsvWriter csv(outPath("ablation_baselines.csv"),
                  {"benchmark", "lru32_missrate", "opt32_missrate",
                   "lru256_missrate", "opt256_missrate",
                   "ws_phases", "ws_transitions", "locality_phases"});

    std::printf("%-10s %9s %9s %10s %10s %6s %7s %7s\n", "bench",
                "LRU-32K", "OPT-32K", "LRU-256K", "OPT-256K", "WSsig",
                "transit", "phases");
    rule('-', 84);

    for (const char *name : {"tomcatv", "compress", "mesh"}) {
        auto w = workloads::create(name);
        auto in = w->trainInput();

        // Record the training access trace once (training runs are
        // small enough to hold).
        trace::AccessRecorder rec;
        bbv::WorkingSetPhases ws(100000, 0.5, 512);
        trace::FanoutSink fan;
        fan.attach(&rec);
        fan.attach(&ws);
        w->run(in, fan);

        auto lru_rate = [&](cache::CacheConfig cfg) {
            cache::LruCache c(cfg);
            for (trace::Addr a : rec.accesses())
                c.access(a);
            return c.missRate();
        };
        auto opt_rate = [&](cache::CacheConfig cfg) {
            cache::OptSimulator sim(cfg);
            for (trace::Addr a : rec.accesses())
                sim.record(a);
            sim.simulate();
            return sim.missRate();
        };

        // 8-way at both sizes: a direct-mapped cache leaves OPT no
        // choice, so associativity is held at 8 and capacity varies.
        cache::CacheConfig small{64, 8, 64};   // 32KB 8-way
        cache::CacheConfig large{512, 8, 64};  // 256KB 8-way
        double l32 = lru_rate(small), o32 = opt_rate(small);
        double l256 = lru_rate(large), o256 = opt_rate(large);

        auto analysis = core::PhaseAnalysis::analyzeWorkload(*w);
        size_t phases = analysis.detection.selection.phases.size();

        std::printf("%-10s %9.4f %9.4f %10.4f %10.4f %6zu %7llu "
                    "%7zu\n",
                    name, l32, o32, l256, o256, ws.phaseCount(),
                    static_cast<unsigned long long>(ws.transitions()),
                    phases);
        csv.row({name, num(l32, 4), num(o32, 4), num(l256, 4),
                 num(o256, 4), std::to_string(ws.phaseCount()),
                 std::to_string(ws.transitions()),
                 std::to_string(phases)});
    }
    rule('-', 84);
    std::printf("\nExpected: OPT <= LRU at every size (the gap bounds "
                "replacement-side headroom);\nworking-set signatures "
                "find phase *changes* but cannot say when a phase\n"
                "recurs with what length — the locality-phase markers "
                "can.\n");
    return 0;
}
