/**
 * @file
 * Reproduces paper Table 5: execution-time effect of phase-based array
 * regrouping (Impulse-style remapping at phase markers) versus the best
 * whole-program layout, for Mesh and Swim. Like the paper, the cost of
 * performing the remapping itself is excluded; times come from a simple
 * miss-penalty model over the simulated cache.
 */

#include <cstdio>

#include "bench/common.hpp"
#include "core/analysis.hpp"
#include "remap/regroup.hpp"
#include "support/csv.hpp"
#include "workloads/registry.hpp"

using namespace lpp;
using namespace lppbench;

int
main()
{
    title("Table 5: phase-based array regrouping (modelled seconds, "
          "32KB 2-way L1)");
    row("Benchmark",
        {"Original", "Phase", "ph.speedup", "Global", "gl.speedup"},
        10, 11);
    rule();

    CsvWriter csv(outPath("table5.csv"),
                  {"benchmark", "original_s", "phase_s",
                   "phase_speedup", "global_s", "global_speedup",
                   "original_misses", "phase_misses", "global_misses"});

    cache::CacheConfig l1{256, 2, 64}; // 32KB 2-way, 64B lines

    for (const char *name : {"mesh", "swim"}) {
        auto w = workloads::create(name);
        auto analysis = core::PhaseAnalysis::analyzeWorkload(*w);
        auto ex = remap::runRemapExperiment(
            *w, analysis.detection.selection.table, l1);

        row(name,
            {num(ex.originalTime, 3), num(ex.phaseTime, 3),
             pct(ex.phaseSpeedup()) + "%", num(ex.globalTime, 3),
             pct(ex.globalSpeedup()) + "%"},
            10, 11);
        csv.row({name, num(ex.originalTime, 4), num(ex.phaseTime, 4),
                 num(ex.phaseSpeedup(), 4), num(ex.globalTime, 4),
                 num(ex.globalSpeedup(), 4),
                 std::to_string(ex.originalMisses),
                 std::to_string(ex.phaseMisses),
                 std::to_string(ex.globalMisses)});
    }
    rule();
    std::printf("\nPaper shape: phase-based regrouping beats both the "
                "original layout and the\nbest whole-program layout; "
                "the Swim gain is large, the Mesh gain small.\n");
    std::printf("Series written to %s\n", csv.path().c_str());
    return 0;
}
