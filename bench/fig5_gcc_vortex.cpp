/**
 * @file
 * Reproduces paper Figure 5: the sampled reuse-distance traces of Gcc
 * and Vortex. Both show clear phase structure — per-function peaks in
 * Gcc, the construction-to-query transition in Vortex — but the phase
 * lengths are input dependent and not predictable.
 */

#include <algorithm>
#include <cstdio>
#include <unordered_set>
#include <vector>

#include "bench/common.hpp"
#include "reuse/sampler.hpp"
#include "support/csv.hpp"
#include "trace/sink.hpp"
#include "workloads/registry.hpp"

using namespace lpp;
using namespace lppbench;

namespace {

void
traceOne(const std::string &name)
{
    auto w = workloads::create(name);
    auto in = w->trainInput();

    // Precount pass: trace length and working-set size, exactly as
    // the detector derives its pinned thresholds.
    trace::ClockSink clock;
    std::unordered_set<uint64_t> elements;
    class Pre : public trace::TraceSink
    {
      public:
        Pre(trace::ClockSink &c, std::unordered_set<uint64_t> &e)
            : clock(c), elems(e)
        {}
        void
        onAccess(trace::Addr a) override
        {
            clock.onAccess(a);
            elems.insert(trace::toElement(a));
        }
        trace::ClockSink &clock;
        std::unordered_set<uint64_t> &elems;
    } pre(clock, elements);
    w->run(in, pre);

    reuse::SamplerConfig cfg;
    cfg.expectedAccesses = clock.accesses();
    uint64_t threshold = std::max<uint64_t>(
        16, static_cast<uint64_t>(0.05 * elements.size()));
    cfg.initialQualification = cfg.floorQualification =
        cfg.ceilQualification = threshold;
    cfg.initialTemporal = cfg.floorTemporal = cfg.ceilTemporal =
        threshold;
    cfg.targetSamples = 20000;
    reuse::VariableDistanceSampler sampler(cfg);
    w->run(in, sampler);

    auto merged = sampler.mergedTrace();
    CsvWriter csv(outPath("fig5_" + name + "_trace.csv"),
                  {"logical_time", "reuse_distance"});
    uint64_t dmax = 0;
    for (const auto &p : merged) {
        csv.row({std::to_string(p.time), std::to_string(p.distance)});
        dmax = std::max(dmax, p.distance);
    }

    std::printf("\n--- %s: %llu accesses, %llu samples ---\n",
                name.c_str(),
                static_cast<unsigned long long>(clock.accesses()),
                static_cast<unsigned long long>(sampler.sampleCount()));

    // ASCII profile of the sampled distances over time.
    const int buckets = 72;
    std::vector<double> peak(buckets, 0.0);
    for (const auto &p : merged) {
        auto b = static_cast<int>(p.time * buckets / clock.accesses());
        b = std::min(b, buckets - 1);
        peak[b] = std::max(peak[b],
                           static_cast<double>(p.distance));
    }
    for (int r = 5; r >= 1; --r) {
        for (int b = 0; b < buckets; ++b) {
            double level = peak[b] / static_cast<double>(dmax) * 5.0;
            std::putchar(level >= r ? '#' : (r == 1 ? '.' : ' '));
        }
        std::putchar('\n');
    }
    std::printf("Series written to %s\n", csv.path().c_str());
}

} // namespace

int
main()
{
    title("Figure 5: sampled reuse traces of Gcc and Vortex "
          "(unpredictable lengths)");
    traceOne("gcc");
    traceOne("vortex");
    std::printf("\nPaper shape: Gcc shows per-function peaks whose "
                "size and position depend on\nthe input; Vortex shows "
                "the transition from construction to queries.\n");
    return 0;
}
