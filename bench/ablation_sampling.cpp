/**
 * @file
 * Ablation: sampling budget and distance-threshold fraction. The
 * paper's feedback targets 15-30K samples; this driver sweeps the
 * sample target and the working-set fraction that defines a
 * "long-distance" reuse, and reports whether marker selection still
 * lands on the same phases.
 */

#include <cstdio>

#include "bench/common.hpp"
#include "phase/detector.hpp"
#include "support/csv.hpp"
#include "workloads/registry.hpp"

using namespace lpp;
using namespace lppbench;

int
main()
{
    title("Ablation: sampling budget and threshold fraction");

    CsvWriter csv(outPath("ablation_sampling.csv"),
                  {"benchmark", "target_samples", "threshold_fraction",
                   "data_samples", "access_samples", "boundaries",
                   "marker_phases"});

    auto run_one = [&](const char *name, uint64_t target,
                       double fraction) {
        auto w = workloads::create(name);
        phase::DetectorConfig cfg;
        cfg.filter.family = wavelet::Family::Haar;
        cfg.sampler.targetSamples = target;
        cfg.thresholdFraction = fraction;
        phase::PhaseDetector det(cfg);
        auto in = w->trainInput();
        auto result = det.analyze(
            [&](trace::TraceSink &s) { w->run(in, s); });
        std::printf("  %8llu %9.2f %9llu %10llu %11zu %14zu\n",
                    static_cast<unsigned long long>(target), fraction,
                    static_cast<unsigned long long>(
                        result.dataSamples),
                    static_cast<unsigned long long>(
                        result.accessSamples),
                    result.boundaryTimes.size(),
                    result.selection.phases.size());
        csv.row({name, std::to_string(target), num(fraction, 2),
                 std::to_string(result.dataSamples),
                 std::to_string(result.accessSamples),
                 std::to_string(result.boundaryTimes.size()),
                 std::to_string(result.selection.phases.size())});
    };

    for (const char *name : {"tomcatv", "swim"}) {
        std::printf("\n%s:\n", name);
        std::printf("    target  fraction   datums    samples  "
                    "boundaries  marker phases\n");
        for (uint64_t target : {2000ULL, 10000ULL, 50000ULL})
            run_one(name, target, 0.05);
        for (double fraction : {0.02, 0.10, 0.20})
            run_one(name, 20000, fraction);
    }
    std::printf("\nExpected: marker phases stay constant across the "
                "sweep (the block-trace\nside is robust); boundary "
                "counts grow with the sample budget.\n");
    return 0;
}
