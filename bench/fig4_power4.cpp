/**
 * @file
 * Reproduces paper Figure 4: per-execution miss rates of the two
 * frequent Compress phases on a 32KB 2-way L1. The paper measured an
 * IBM Power4; here the same cache geometry is simulated and an
 * OS-interference model perturbs each execution — shorter executions
 * see more relative noise, reproducing the paper's observation that
 * phase 2 (shorter, lower miss rate) varies more than phase 1.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "bench/common.hpp"
#include "core/analysis.hpp"
#include "core/runtime.hpp"
#include "support/csv.hpp"
#include "support/random.hpp"
#include "workloads/registry.hpp"

using namespace lpp;
using namespace lppbench;

int
main()
{
    title("Figure 4: Compress phase miss rates on a 32KB 2-way L1 "
          "with OS noise");

    auto w = workloads::create("compress");
    auto analysis = core::PhaseAnalysis::analyzeWorkload(*w);
    auto ref_in = w->refInput();
    auto replay = core::replayInstrumented(
        analysis.detection.selection.table,
        [&](trace::TraceSink &s) { w->run(ref_in, s); });

    // The paper plots the two dominant phases (compress and
    // decompress): pick by total instructions executed.
    std::map<trace::PhaseId, uint64_t> weight;
    for (const auto &e : replay.executions)
        weight[e.phase] += e.instructions;
    std::vector<std::pair<uint64_t, trace::PhaseId>> by_freq;
    for (const auto &kv : weight)
        by_freq.emplace_back(kv.second, kv.first);
    std::sort(by_freq.rbegin(), by_freq.rend());

    // OS-interference model: cache pollution events add misses with a
    // fixed per-instruction rate, so the *relative* effect shrinks with
    // execution length (sqrt scaling mimics averaging over events).
    Rng rng(2026);
    const double noise_per_million = 0.004;

    CsvWriter csv(outPath("fig4_compress_power4.csv"),
                  {"phase", "occurrence", "clean_miss_rate",
                   "measured_miss_rate"});

    for (size_t rank = 0; rank < std::min<size_t>(2, by_freq.size());
         ++rank) {
        trace::PhaseId phase = by_freq[rank].second;
        uint64_t execs = 0;
        for (const auto &e : replay.executions)
            execs += e.phase == phase;
        std::printf("\nPhase %zu (id %u, %llu executions):\n", rank + 1,
                    phase, static_cast<unsigned long long>(execs));
        std::printf("  occ   clean mr   measured mr\n");
        int occ = 0;
        for (const auto &e : replay.executions) {
            if (e.phase != phase)
                continue;
            ++occ;
            // 32KB 2-way = the ways-2 column of the 512-set stack sim
            // (same capacity; associativity effects are second order).
            double clean =
                e.locality.missRate(1); // 32KB point of the sweep
            double len_m =
                static_cast<double>(e.instructions) / 1e6;
            double noise = rng.gaussian() * noise_per_million /
                           std::sqrt(std::max(len_m, 1e-3));
            double measured = std::clamp(clean + noise, 0.0, 1.0);
            // The very first execution warms the cache: visibly higher.
            std::printf("  %3d   %.5f    %.5f%s\n", occ, clean,
                        measured,
                        occ == 1 ? "   (cold start)" : "");
            csv.rowNumeric({static_cast<double>(rank + 1),
                            static_cast<double>(occ), clean, measured});
            if (occ >= 26)
                break;
        }
    }
    std::printf("\nPaper shape: phase 1 executions have nearly "
                "identical miss rates after the\nfirst; the shorter "
                "phase 2 shows more environmental variation.\n");
    std::printf("Series written to %s\n", csv.path().c_str());
    return 0;
}
