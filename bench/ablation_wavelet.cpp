/**
 * @file
 * Ablation: wavelet family. The paper used Daubechies-6 and reports
 * that other families produce similar results; this repository's
 * training signals are ~30 points per datum (vs the paper's
 * thousands), where filter support matters more. The driver runs the
 * full detection pipeline under Haar, Daubechies-4, and Daubechies-6
 * and compares what survives filtering and which markers come out.
 */

#include <cstdio>

#include "bench/common.hpp"
#include "phase/detector.hpp"
#include "support/csv.hpp"
#include "workloads/registry.hpp"

using namespace lpp;
using namespace lppbench;

int
main()
{
    title("Ablation: wavelet family in sub-trace filtering");

    CsvWriter csv(outPath("ablation_wavelet.csv"),
                  {"benchmark", "family", "kept_points", "boundaries",
                   "marker_phases"});

    const wavelet::Family families[] = {wavelet::Family::Haar,
                                        wavelet::Family::Daubechies4,
                                        wavelet::Family::Daubechies6};

    for (const char *name : {"tomcatv", "compress", "moldyn"}) {
        std::printf("\n%s:\n", name);
        std::printf("  %-14s %10s %12s %14s\n", "family", "kept",
                    "boundaries", "marker phases");
        for (auto family : families) {
            auto w = workloads::create(name);
            phase::DetectorConfig cfg;
            cfg.filter.family = family;
            cfg.sampler.targetSamples = 20000;
            phase::PhaseDetector det(cfg);
            auto in = w->trainInput();
            auto result = det.analyze([&](trace::TraceSink &s) {
                w->run(in, s);
            });
            std::string fam = wavelet::FilterBank::name(family);
            std::printf("  %-14s %10llu %12zu %14zu\n", fam.c_str(),
                        static_cast<unsigned long long>(
                            result.filterStats.accessesKept),
                        result.boundaryTimes.size(),
                        result.selection.phases.size());
            csv.row({name, fam,
                     std::to_string(result.filterStats.accessesKept),
                     std::to_string(result.boundaryTimes.size()),
                     std::to_string(result.selection.phases.size())});
        }
    }
    std::printf("\nExpected: all families find the same markers; the "
                "short-signal regime makes\nHaar keep the most "
                "boundary indicators (the paper's signals were long "
                "enough\nthat the choice did not matter).\n");
    return 0;
}
