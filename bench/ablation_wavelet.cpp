/**
 * @file
 * Ablation: wavelet family. The paper used Daubechies-6 and reports
 * that other families produce similar results; this repository's
 * training signals are ~30 points per datum (vs the paper's
 * thousands), where filter support matters more. The driver runs the
 * full detection pipeline under Haar, Daubechies-4, and Daubechies-6
 * and compares what survives filtering and which markers come out.
 */

#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "core/parallel.hpp"
#include "phase/detector.hpp"
#include "support/csv.hpp"
#include "workloads/registry.hpp"

using namespace lpp;
using namespace lppbench;

int
main()
{
    title("Ablation: wavelet family in sub-trace filtering");

    CsvWriter csv(outPath("ablation_wavelet.csv"),
                  {"benchmark", "family", "kept_points", "boundaries",
                   "marker_phases"});

    const wavelet::Family families[] = {wavelet::Family::Haar,
                                        wavelet::Family::Daubechies4,
                                        wavelet::Family::Daubechies6};
    const std::vector<const char *> names = {"tomcatv", "compress",
                                             "moldyn"};

    // The (workload x family) grid cells are independent: fan the full
    // detection pipelines across the pool and print in grid order.
    struct Cell
    {
        uint64_t kept;
        size_t boundaries;
        size_t phases;
    };
    core::ParallelRunner runner;
    auto cells = runner.mapIndexed(names.size() * 3, [&](size_t idx) {
        auto w = workloads::create(names[idx / 3]);
        phase::DetectorConfig cfg;
        cfg.filter.family = families[idx % 3];
        cfg.sampler.targetSamples = 20000;
        phase::PhaseDetector det(cfg);
        auto in = w->trainInput();
        auto result =
            det.analyze([&](trace::TraceSink &s) { w->run(in, s); });
        return Cell{result.filterStats.accessesKept,
                    result.boundaryTimes.size(),
                    result.selection.phases.size()};
    });

    for (size_t ni = 0; ni < names.size(); ++ni) {
        std::printf("\n%s:\n", names[ni]);
        std::printf("  %-14s %10s %12s %14s\n", "family", "kept",
                    "boundaries", "marker phases");
        for (size_t fi = 0; fi < 3; ++fi) {
            const Cell &c = cells[ni * 3 + fi];
            std::string fam = wavelet::FilterBank::name(families[fi]);
            std::printf("  %-14s %10llu %12zu %14zu\n", fam.c_str(),
                        static_cast<unsigned long long>(c.kept),
                        c.boundaries, c.phases);
            csv.row({names[ni], fam, std::to_string(c.kept),
                     std::to_string(c.boundaries),
                     std::to_string(c.phases)});
        }
    }
    std::printf("\nExpected: all families find the same markers; the "
                "short-signal regime makes\nHaar keep the most "
                "boundary indicators (the paper's signals were long "
                "enough\nthat the choice did not matter).\n");
    return 0;
}
