/**
 * @file
 * Reproduces paper Table 1 (benchmark suite) and Table 2 (accuracy and
 * coverage of strict and relaxed phase prediction) over the seven
 * prediction-amenable workloads.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/common.hpp"
#include "core/evaluation.hpp"
#include "support/csv.hpp"
#include "workloads/registry.hpp"

using namespace lpp;
using namespace lppbench;

int
main()
{
    title("Table 1: benchmarks");
    row("Benchmark", {"Source"}, 12, 12);
    for (const auto &name : workloads::allNames()) {
        auto w = workloads::create(name);
        std::printf("%-12s %-12s %s\n", w->name().c_str(),
                    w->source().c_str(), w->description().c_str());
    }
    std::printf("\n");

    title("Table 2: accuracy and coverage of phase prediction (%)");
    row("Benchmark",
        {"StrictAcc", "StrictCov", "RelaxAcc", "RelaxCov", "Execs"});
    rule();

    CsvWriter csv(outPath("table2.csv"),
                  {"benchmark", "strict_accuracy", "strict_coverage",
                   "relaxed_accuracy", "relaxed_coverage",
                   "ref_executions"});

    double sa = 0, sc = 0, ra = 0, rc = 0;
    int n = 0;
    // Per-workload evaluations fan out across the thread pool; the
    // results come back in name order, so rows and CSV lines are
    // identical to the serial loop this replaced.
    auto evals = core::evaluateWorkloads(workloads::predictableNames());
    for (const auto &ev : evals) {
        const auto &m = ev.metrics;
        row(ev.name,
            {pct(m.strictAccuracy), pct(m.strictCoverage),
             pct(m.relaxedAccuracy), pct(m.relaxedCoverage),
             std::to_string(ev.ref.replay.executions.size())});
        csv.row({ev.name, pct(m.strictAccuracy), pct(m.strictCoverage),
                 pct(m.relaxedAccuracy), pct(m.relaxedCoverage),
                 std::to_string(ev.ref.replay.executions.size())});
        sa += m.strictAccuracy;
        sc += m.strictCoverage;
        ra += m.relaxedAccuracy;
        rc += m.relaxedCoverage;
        ++n;
    }
    rule();
    row("Average",
        {pct(sa / n), pct(sc / n), pct(ra / n), pct(rc / n), ""});
    std::printf("\nPaper shape: strict accuracy ~100%% with reduced "
                "coverage (Tomcatv/Swim/MolDyn);\nrelaxed coverage "
                "~99%% with accuracy collapsing only for MolDyn.\n");
    std::printf("Series written to %s\n", csv.path().c_str());
    return 0;
}
