/**
 * @file
 * Reproduces paper Figure 6: average cache size under adaptive
 * resizing (32KB..256KB, 512 sets x 64B lines x 1..8 ways) by the
 * locality-phase method, fixed-interval methods of five lengths, and
 * the BBV method, under a 0% and a 5% miss-increase bound.
 *
 * Scaling note: the paper's runs are 25-62G instructions with interval
 * lengths 10K..100M accesses; these runs are ~1000x shorter, so the
 * interval sweep is 10K..10M accesses. Interval and BBV methods get
 * the paper's idealized treatment (perfect change detection, two-trial
 * exploration); the phase method explores the first two executions of
 * every (phase, interval) key — its numbers are achievable by the real
 * mechanism.
 */

#include <cstdio>
#include <vector>

#include "bbv/clustering.hpp"
#include "bbv/markov.hpp"
#include "bench/common.hpp"
#include "cache/resizing.hpp"
#include "core/analysis.hpp"
#include "core/evaluation.hpp"
#include "support/csv.hpp"
#include "workloads/registry.hpp"

using namespace lpp;
using namespace lppbench;

namespace {

/** Merge every `k` consecutive units into one (exact for counts). */
std::vector<cache::SegmentLocality>
mergeUnits(const std::vector<cache::SegmentLocality> &units, size_t k)
{
    std::vector<cache::SegmentLocality> out;
    for (size_t i = 0; i < units.size(); i += k) {
        cache::SegmentLocality m;
        for (size_t j = i; j < std::min(i + k, units.size()); ++j)
            m.merge(units[j]);
        out.push_back(m);
    }
    return out;
}

struct WorkloadData
{
    core::PhaseIntervalProfile phaseProf;
    std::vector<cache::SegmentLocality> baseUnits; //!< 10K-access units
    core::IntervalProfile bbvProf;                 //!< 100K + BBV
    std::vector<uint32_t> bbvPredicted;
};

WorkloadData
collect(const workloads::Workload &w)
{
    WorkloadData d;
    auto analysis = core::PhaseAnalysis::analyzeWorkload(w);
    auto ref = w.refInput();
    auto runner = [&](trace::TraceSink &s) { w.run(ref, s); };

    d.phaseProf = core::collectPhaseIntervals(
        analysis.detection.selection.table, runner, 10000);
    auto base = core::collectIntervals(runner, 10000, 1);
    d.baseUnits = std::move(base.units);
    d.bbvProf = core::collectIntervals(runner, 100000);

    bbv::BbvClustering clustering(0.2);
    auto clusters = clustering.assignAll(d.bbvProf.bbvs);
    bbv::RleMarkovPredictor markov;
    d.bbvPredicted = markov.predictSequence(clusters);
    return d;
}

const size_t kIntervalMerges[] = {1, 10, 100, 400, 1000};

void
runBound(const std::vector<std::string> &names,
         const std::vector<WorkloadData> &data, double bound,
         CsvWriter &csv)
{
    std::printf("\nMiss-increase bound: %.0f%%  (normalized average "
                "cache size, phase = 1.00)\n", bound * 100.0);
    row("Benchmark",
        {"Phase(KB)", "Phase", "I-10k", "I-100k", "I-1M", "I-4M",
         "I-10M", "BBV", "Full"},
        10, 9);
    rule('-', 102);

    std::vector<double> sums(8, 0.0);
    for (size_t i = 0; i < names.size(); ++i) {
        const auto &d = data[i];
        auto phase = cache::resizePhase(d.phaseProf.units,
                                        d.phaseProf.keys, bound);
        std::vector<double> normalized;
        normalized.push_back(1.0);

        std::vector<std::string> cells = {num(phase.avgKB(), 1),
                                          num(1.0, 2)};
        for (size_t m = 0; m < 5; ++m) {
            auto merged = mergeUnits(d.baseUnits, kIntervalMerges[m]);
            auto r = cache::resizeInterval(merged, bound);
            normalized.push_back(r.avgWays / phase.avgWays);
            cells.push_back(num(r.avgWays / phase.avgWays, 2));
        }
        auto bbvr = cache::resizeBbv(d.bbvProf.units, d.bbvPredicted,
                                     bound);
        normalized.push_back(bbvr.avgWays / phase.avgWays);
        cells.push_back(num(bbvr.avgWays / phase.avgWays, 2));
        normalized.push_back(8.0 / phase.avgWays);
        cells.push_back(num(8.0 / phase.avgWays, 2));

        row(names[i], cells, 10, 9);
        csv.row({names[i], num(bound, 2), num(phase.avgKB(), 2),
                 num(normalized[1], 4), num(normalized[2], 4),
                 num(normalized[3], 4), num(normalized[4], 4),
                 num(normalized[5], 4), num(normalized[6], 4),
                 num(normalized[7], 4)});
        for (size_t k = 0; k < normalized.size(); ++k)
            sums[k] += normalized[k];
    }
    rule('-', 102);
    std::vector<std::string> avg_cells = {""};
    for (size_t k = 0; k < 8; ++k)
        avg_cells.push_back(
            num(sums[k] / static_cast<double>(names.size()), 2));
    row("Average", avg_cells, 10, 9);
}

} // namespace

int
main()
{
    title("Figure 6: adaptive cache resizing — phase vs interval vs "
          "BBV methods");

    auto names = workloads::predictableNames();
    std::vector<WorkloadData> data;
    for (const auto &name : names) {
        auto w = workloads::create(name);
        std::printf("collecting %s...\n", name.c_str());
        data.push_back(collect(*w));
    }

    CsvWriter csv(outPath("fig6_resizing.csv"),
                  {"benchmark", "bound", "phase_kb", "phase_norm",
                   "i10k_norm", "i100k_norm", "i1m_norm", "i4m_norm",
                   "i10m_norm", "bbv_norm", "full_norm"});

    runBound(names, data, 0.0, csv);
    runBound(names, data, 0.05, csv);

    std::printf("\nPaper shape: the phase method shrinks the cache "
                "most (values > 1 mean the\nother method needed a "
                "larger cache); FFT is the adversarial case.\n");
    std::printf("Series written to %s\n", csv.path().c_str());
    return 0;
}
