/**
 * @file
 * Reproduces paper Table 6: the overlap between automatically inserted
 * phase markers and manually inserted ones, as recall and precision
 * over marker times (two times match within 400 accesses).
 */

#include <cstdio>

#include "bench/common.hpp"
#include "core/evaluation.hpp"
#include "support/csv.hpp"
#include "workloads/registry.hpp"

using namespace lpp;
using namespace lppbench;

int
main()
{
    title("Table 6: overlap with manual phase markers");
    row("Benchmark",
        {"det.Recall", "det.Prec", "pred.Recall", "pred.Prec"}, 10, 12);
    rule();

    CsvWriter csv(outPath("table6.csv"),
                  {"benchmark", "detection_recall",
                   "detection_precision", "prediction_recall",
                   "prediction_precision"});

    double tr = 0, tp = 0, rr = 0, rp = 0;
    int n = 0;
    for (const auto &name : workloads::predictableNames()) {
        auto w = workloads::create(name);
        auto ev = core::evaluateWorkload(*w);
        row(name,
            {num(ev.trainOverlap.recall, 3),
             num(ev.trainOverlap.precision, 3),
             num(ev.refOverlap.recall, 3),
             num(ev.refOverlap.precision, 3)},
            10, 12);
        csv.row({name, num(ev.trainOverlap.recall, 4),
                 num(ev.trainOverlap.precision, 4),
                 num(ev.refOverlap.recall, 4),
                 num(ev.refOverlap.precision, 4)});
        tr += ev.trainOverlap.recall;
        tp += ev.trainOverlap.precision;
        rr += ev.refOverlap.recall;
        rp += ev.refOverlap.precision;
        ++n;
    }
    rule();
    row("Average",
        {num(tr / n, 3), num(tp / n, 3), num(rr / n, 3),
         num(rp / n, 3)},
        10, 12);

    std::printf("\nPaper shape: recall near 1.0 everywhere (automatic "
                "markers catch the\nprogrammer's phases); precision "
                "below 1.0 where the automatic analysis is\nfiner than "
                "the manual one (MolDyn's per-group neighbor search, "
                "Swim/Tomcatv\nsubsteps the programmer did not mark).\n");
    std::printf("Series written to %s\n", csv.path().c_str());
    return 0;
}
