/**
 * @file
 * Analyzing your own program: the analysis consumes any event stream,
 * not just the built-in suite. This example writes a small two-kernel
 * simulation directly against the TraceSink interface, detects its
 * phases, and checks the automaton's on-line predictions.
 *
 * In a real deployment the same events would come from a binary
 * instrumentation front end (the paper used ATOM); everything after
 * the TraceSink boundary is identical.
 *
 * Build: cmake --build build --target custom_program
 * Run:   build/examples/custom_program
 */

#include <cstdio>

#include "core/analysis.hpp"
#include "core/runtime.hpp"
#include "grammar/automaton.hpp"
#include "trace/sink.hpp"

namespace {

/** A hand-written program: N-body-ish force + integrate kernels. */
void
myProgram(lpp::trace::TraceSink &sink, int steps)
{
    constexpr uint64_t bodies = 3000;
    constexpr uint64_t pos = 0x100000, vel = 0x200000,
                       acc = 0x300000;
    uint64_t window = 64;

    for (int t = 0; t < steps; ++t) {
        sink.onBlock(1, 20); // force kernel entry
        // Boundary pass over the velocities the integrator just wrote
        // (a rotating window: the rare per-datum change detection
        // needs).
        uint64_t base =
            (static_cast<uint64_t>(t) * window) % (bodies - window);
        for (uint64_t i = 0; i < window; ++i) {
            sink.onBlock(11, 8);
            sink.onAccess(vel + (base + i) * 8);
        }
        for (uint64_t i = 0; i < bodies; ++i) {
            sink.onBlock(12, 16);
            sink.onAccess(pos + i * 8);
            sink.onAccess(pos + ((i * 37) % bodies) * 8);
            sink.onAccess(acc + i * 8);
        }

        sink.onBlock(2, 20); // integrate kernel entry
        for (uint64_t i = 0; i < window; ++i) {
            sink.onBlock(21, 8);
            sink.onAccess(acc + ((base + i) % bodies) * 8);
        }
        for (uint64_t i = 0; i < bodies; ++i) {
            sink.onBlock(22, 12);
            sink.onAccess(vel + i * 8);
            sink.onAccess(pos + i * 8);
        }
    }
    sink.onEnd();
}

} // namespace

int
main()
{
    using namespace lpp;

    // Detect phases on a short training run.
    auto analysis = core::PhaseAnalysis::analyze(
        [](trace::TraceSink &sink) { myProgram(sink, 40); });

    std::printf("phases detected: %zu\n",
                analysis.detection.selection.phases.size());
    for (const auto &p : analysis.detection.selection.phases) {
        std::printf("  phase %u: marker block %u, %llu executions, "
                    "%llu..%llu instructions\n",
                    p.id, p.marker,
                    static_cast<unsigned long long>(p.executions),
                    static_cast<unsigned long long>(p.minInstructions),
                    static_cast<unsigned long long>(p.maxInstructions));
    }
    std::printf("hierarchy: %s\n",
                analysis.hierarchy.root()->toString().c_str());

    // Drive the automaton with a longer run and watch it predict.
    grammar::PhaseAutomaton automaton(analysis.hierarchy.root());
    auto replay = core::replayInstrumented(
        analysis.detection.selection.table,
        [](trace::TraceSink &sink) { myProgram(sink, 400); });

    uint64_t deterministic = 0, fed = 0;
    for (const auto &e : replay.executions) {
        automaton.feed(e.phase);
        ++fed;
        if (automaton.deterministicNext(nullptr))
            ++deterministic;
    }
    std::printf("\n400-step run: %llu phase executions, next phase "
                "known deterministically after %.1f%% of them "
                "(%llu resyncs)\n",
                static_cast<unsigned long long>(fed),
                100.0 * static_cast<double>(deterministic) /
                    static_cast<double>(fed),
                static_cast<unsigned long long>(
                    automaton.resyncCount()));
    return 0;
}
