/**
 * @file
 * Phase-based memory remapping (paper Section 3.3): learn per-phase
 * array affinity on the training run, then interleave each phase's
 * affinity groups Impulse-style on the reference run and compare cache
 * misses against the original and the best whole-program layout.
 *
 * Build: cmake --build build --target memory_remap
 * Run:   build/examples/memory_remap [workload]
 */

#include <cstdio>
#include <string>

#include "core/analysis.hpp"
#include "remap/regroup.hpp"
#include "reuse/spatial.hpp"
#include "workloads/registry.hpp"

int
main(int argc, char **argv)
{
    using namespace lpp;

    std::string name = argc > 1 ? argv[1] : "swim";
    auto program = workloads::create(name);
    if (!program) {
        std::fprintf(stderr, "unknown workload '%s'\n", name.c_str());
        return 1;
    }

    auto analysis = core::PhaseAnalysis::analyzeWorkload(*program);

    // Show what affinity analysis finds per phase.
    auto train = program->trainInput();
    remap::AffinityAnalyzer affinity(program->arrays(train));
    {
        trace::Instrumenter inst(analysis.detection.selection.table,
                                 affinity);
        program->run(train, inst);
    }
    auto arrays = program->arrays(train);
    auto show = [&](const remap::AffinityGroups &groups) {
        if (groups.empty())
            std::printf("  (none)\n");
        for (const auto &g : groups) {
            std::printf("  {");
            for (size_t i = 0; i < g.size(); ++i)
                std::printf("%s%s", i ? ", " : "",
                            arrays[g[i]].name.c_str());
            std::printf("}\n");
        }
    };
    std::printf("whole-program affinity groups:\n");
    show(affinity.globalGroups());
    for (trace::PhaseId p : affinity.phasesSeen()) {
        std::printf("phase %u affinity groups:\n", p);
        show(affinity.groupsForPhase(p));
    }

    // Spatial profiles tell which phases leave cache blocks underused
    // (the regrouping opportunity) — the spatial-locality extension the
    // paper lists as future work.
    reuse::SpatialAnalyzer spatial;
    {
        trace::Instrumenter inst(analysis.detection.selection.table,
                                 spatial);
        program->run(train, inst);
    }
    std::printf("\nper-phase spatial profile:\n");
    for (trace::PhaseId p : spatial.phasesSeen()) {
        auto prof = spatial.profile(p);
        std::printf("  phase %u: block utilization %.2f, dominant "
                    "stride %+lld B (%.0f%%)%s\n",
                    p, prof.blockUtilization(),
                    static_cast<long long>(prof.dominantStride),
                    prof.dominantStrideShare * 100.0,
                    prof.isStreaming() ? " [streaming]" : "");
    }

    // Full Table 5-style experiment on a 32KB 2-way L1.
    auto ex = remap::runRemapExperiment(
        *program, analysis.detection.selection.table,
        cache::CacheConfig{256, 2, 64});
    std::printf("\nreference-run L1 misses:\n");
    std::printf("  original layout : %llu\n",
                static_cast<unsigned long long>(ex.originalMisses));
    std::printf("  global regroup  : %llu  (%.1f%% speedup)\n",
                static_cast<unsigned long long>(ex.globalMisses),
                ex.globalSpeedup() * 100.0);
    std::printf("  phase regroup   : %llu  (%.1f%% speedup)\n",
                static_cast<unsigned long long>(ex.phaseMisses),
                ex.phaseSpeedup() * 100.0);
    return 0;
}
