/**
 * @file
 * Quickstart: the whole locality-phase-prediction flow in ~60 lines.
 *
 *   1. off-line analysis of a training run (sampling -> wavelet
 *      filtering -> optimal partitioning -> marker selection ->
 *      Sequitur hierarchy);
 *   2. instrument the program with the resulting marker table;
 *   3. run a much larger input and predict each phase execution's
 *      length and locality from its first occurrence.
 *
 * Build: cmake --build build --target quickstart
 * Run:   build/examples/quickstart
 */

#include <cstdio>

#include "core/analysis.hpp"
#include "core/runtime.hpp"
#include "workloads/registry.hpp"

int
main()
{
    using namespace lpp;

    // 1. Off-line analysis of the training input.
    auto program = workloads::create("tomcatv");
    core::AnalysisResult analysis =
        core::PhaseAnalysis::analyzeWorkload(*program);

    std::printf("detected %zu leaf phases, markers at blocks:",
                analysis.detection.selection.phases.size());
    for (const auto &p : analysis.detection.selection.phases)
        std::printf(" %u", p.marker);
    std::printf("\nphase hierarchy: %s\n",
                analysis.hierarchy.root()
                    ? analysis.hierarchy.root()->toString().c_str()
                    : "(none)");

    // 2 + 3. Instrumented run of the reference input; the predictor
    // learns each phase from its first execution.
    auto ref = program->refInput();
    core::Replay replay = core::replayInstrumented(
        analysis.detection.selection.table,
        [&](trace::TraceSink &sink) { program->run(ref, sink); });

    auto metrics = core::evaluatePrediction(
        replay, analysis.consistentPhases());

    std::printf("\nreference run: %zu phase executions, %.1fM "
                "instructions\n",
                replay.executions.size(),
                static_cast<double>(replay.totalInstructions) / 1e6);
    std::printf("strict prediction : %.2f%% accuracy at %.2f%% "
                "coverage\n",
                metrics.strictAccuracy * 100.0,
                metrics.strictCoverage * 100.0);
    std::printf("relaxed prediction: %.2f%% accuracy at %.2f%% "
                "coverage\n",
                metrics.relaxedAccuracy * 100.0,
                metrics.relaxedCoverage * 100.0);

    // Show what the predictor knows the moment a marker fires.
    const auto &first = replay.executions.front();
    std::printf("\ne.g. when marker of phase %u fires, the program "
                "will run %llu instructions\nat %.2f%% / %.2f%% miss "
                "rate (32KB / 256KB) before the next marker.\n",
                first.phase,
                static_cast<unsigned long long>(first.instructions),
                first.locality.missRate(1) * 100.0,
                first.locality.missRate(8) * 100.0);
    return 0;
}
