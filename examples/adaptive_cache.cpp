/**
 * @file
 * Adaptive cache resizing driven by locality phases (paper Section
 * 3.2): detect phases on the training input, then shrink the cache
 * per (phase, interval) on the reference run while keeping the miss
 * count at the full-size level.
 *
 * Build: cmake --build build --target adaptive_cache
 * Run:   build/examples/adaptive_cache [workload]
 */

#include <cstdio>
#include <string>

#include "cache/resizing.hpp"
#include "core/analysis.hpp"
#include "core/evaluation.hpp"
#include "workloads/registry.hpp"

int
main(int argc, char **argv)
{
    using namespace lpp;

    std::string name = argc > 1 ? argv[1] : "compress";
    auto program = workloads::create(name);
    if (!program) {
        std::fprintf(stderr, "unknown workload '%s'\n", name.c_str());
        return 1;
    }

    // Off-line phase detection on the training input.
    auto analysis = core::PhaseAnalysis::analyzeWorkload(*program);
    std::printf("%s: %zu phases detected\n", name.c_str(),
                analysis.detection.selection.phases.size());

    // Cut the reference run into 10K-access phase intervals, measuring
    // the miss count of all eight cache sizes in one pass.
    auto ref = program->refInput();
    auto prof = core::collectPhaseIntervals(
        analysis.detection.selection.table,
        [&](trace::TraceSink &sink) { program->run(ref, sink); },
        10000);
    std::printf("reference run: %zu phase intervals\n",
                prof.units.size());

    for (double bound : {0.0, 0.05}) {
        auto r = cache::resizePhase(prof.units, prof.keys, bound);
        auto oracle = cache::resizeOracle(prof.units, bound);
        std::printf("\nmiss-increase bound %.0f%%:\n", bound * 100.0);
        std::printf("  average cache size : %.1f KB (full: 256 KB)\n",
                    r.avgKB());
        std::printf("  size reduction     : %.1f%%\n",
                    (1.0 - r.normalizedSize()) * 100.0);
        std::printf("  miss increase      : %.2f%%\n",
                    r.missIncrease() * 100.0);
        std::printf("  exploration trials : %llu\n",
                    static_cast<unsigned long long>(r.explorations));
        std::printf("  oracle lower bound : %.1f KB\n", oracle.avgKB());
    }
    return 0;
}
