#include "reuse/stack.hpp"

#include <algorithm>
#include <utility>

#include "support/logging.hpp"

namespace lpp::reuse {

ReuseStack::ReuseStack(size_t capacity_hint)
    : tree(std::max<size_t>(capacity_hint, 64))
{
}

void
ReuseStack::reserveElements(size_t elements)
{
    lastTime.reserve(elements);
    size_t want = 2 * elements + 64;
    if (now == 0 && liveMarks == 0 && want > tree.size())
        tree = FenwickTree(want);
}

uint64_t
ReuseStack::access(uint64_t element)
{
    if (now >= tree.size())
        compact();

    ++accesses;
    LPP_DCHECK(now < tree.size(),
               "time %llu outside tree of %zu after compaction",
               static_cast<unsigned long long>(now), tree.size());
    uint64_t dist = infinite;
    uint64_t *slot = lastTime.find(element);
    if (slot) {
        uint64_t prev = *slot;
        LPP_DCHECK(prev < now, "last-access time %llu not before now %llu",
                   static_cast<unsigned long long>(prev),
                   static_cast<unsigned long long>(now));
        // Distinct elements touched strictly after prev: marks in
        // (prev, now). The mark at prev is this element's own.
        LPP_DCHECK(tree.prefix(prev) <= liveMarks,
                   "mark count underflow at time %llu",
                   static_cast<unsigned long long>(prev));
        dist = liveMarks - tree.prefix(prev);
        tree.add(prev, -1);
        --liveMarks;
        *slot = now;
    } else {
        lastTime.insert(element, now);
    }
    tree.add(now, +1);
    ++liveMarks;
    ++now;
    return dist;
}

void
ReuseStack::compact()
{
    // Reassign times 0..D-1 in increasing last-access order; size the new
    // tree at >= 2D so the next compaction is at least D accesses away.
    std::vector<std::pair<uint64_t, uint64_t>> order; // (time, element)
    order.reserve(lastTime.size());
    lastTime.forEach([&order](uint64_t element, uint64_t time) {
        order.emplace_back(time, element);
    });
    std::sort(order.begin(), order.end());

    size_t want = std::max<size_t>(64, 2 * order.size() + 64);
    tree = FenwickTree(std::max(want, tree.size()));
    liveMarks = 0;
    now = 0;
    for (auto &te : order) {
        *lastTime.find(te.second) = now;
        tree.add(now, +1);
        ++liveMarks;
        ++now;
    }
}

void
ReuseStack::reset()
{
    tree = FenwickTree(tree.size());
    lastTime.clear();
    now = 0;
    accesses = 0;
    liveMarks = 0;
}

} // namespace lpp::reuse
