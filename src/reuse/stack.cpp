#include "reuse/stack.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace lpp::reuse {

ReuseStack::ReuseStack(size_t capacity_hint)
    : tree(std::max<size_t>(capacity_hint, 64))
{
}

uint64_t
ReuseStack::access(uint64_t element)
{
    if (now >= tree.size())
        compact();

    ++accesses;
    uint64_t dist = infinite;
    auto it = lastTime.find(element);
    if (it != lastTime.end()) {
        uint64_t prev = it->second;
        // Distinct elements touched strictly after prev: marks in
        // (prev, now). The mark at prev is this element's own.
        dist = liveMarks - tree.prefix(prev);
        tree.add(prev, -1);
        --liveMarks;
        it->second = now;
    } else {
        lastTime.emplace(element, now);
    }
    tree.add(now, +1);
    ++liveMarks;
    ++now;
    return dist;
}

void
ReuseStack::compact()
{
    // Reassign times 0..D-1 in increasing last-access order; size the new
    // tree at >= 2D so the next compaction is at least D accesses away.
    std::vector<std::pair<uint64_t, uint64_t>> order; // (time, element)
    order.reserve(lastTime.size());
    for (const auto &kv : lastTime)
        order.emplace_back(kv.second, kv.first);
    std::sort(order.begin(), order.end());

    size_t want = std::max<size_t>(64, 2 * order.size() + 64);
    tree = FenwickTree(std::max(want, tree.size()));
    liveMarks = 0;
    now = 0;
    for (auto &te : order) {
        lastTime[te.second] = now;
        tree.add(now, +1);
        ++liveMarks;
        ++now;
    }
}

void
ReuseStack::reset()
{
    tree = FenwickTree(tree.size());
    lastTime.clear();
    now = 0;
    accesses = 0;
    liveMarks = 0;
}

} // namespace lpp::reuse
