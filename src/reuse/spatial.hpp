/**
 * @file
 * Per-phase spatial-locality analysis — the paper's closing future-work
 * item ("the current analysis considers only temporal locality. The
 * future work will consider spatial locality in conjunction with
 * temporal locality").
 *
 * Two quantities summarize a phase's spatial behaviour:
 *  - cache-block utilization: the fraction of each fetched 64-byte
 *    block's elements the phase actually touches. Utilization near 1
 *    means streaming; far below 1 means sparse or strided access —
 *    the accesses that benefit from Impulse-style regrouping;
 *  - the dominant stride between consecutive accesses, which separates
 *    unit-stride sweeps, fixed-stride (column) walks, and irregular
 *    (indirect) access.
 */

#ifndef LPP_REUSE_SPATIAL_HPP
#define LPP_REUSE_SPATIAL_HPP

#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "trace/sink.hpp"
#include "trace/types.hpp"

namespace lpp::reuse {

/** Spatial profile of one phase (or of the whole run). */
struct SpatialProfile
{
    uint64_t accesses = 0;        //!< accesses observed
    uint64_t blocksTouched = 0;   //!< distinct cache blocks
    uint64_t elementsTouched = 0; //!< distinct 8-byte elements
    int64_t dominantStride = 0;   //!< most frequent access delta, bytes
    double dominantStrideShare = 0.0; //!< its fraction of all deltas

    /**
     * @return average fraction of each touched block's elements the
     * phase used (1.0 = every fetched byte useful).
     */
    double
    blockUtilization() const
    {
        if (blocksTouched == 0)
            return 0.0;
        double per_block = trace::cacheBlockBytes / trace::elementBytes;
        return static_cast<double>(elementsTouched) /
               (static_cast<double>(blocksTouched) * per_block);
    }

    /** @return whether access is dominantly sequential (64B stride
     *  within a block or less). */
    bool
    isStreaming() const
    {
        return dominantStrideShare > 0.5 &&
               dominantStride >= 0 &&
               dominantStride <=
                   static_cast<int64_t>(trace::cacheBlockBytes);
    }
};

/**
 * Sink accumulating a spatial profile per phase (phase boundaries come
 * from onPhaseMarker; everything before the first marker goes to the
 * pseudo-phase 0xFFFFFFFF).
 */
class SpatialAnalyzer : public trace::TraceSink
{
  public:
    SpatialAnalyzer() = default;

    void onAccess(trace::Addr addr) override;
    void onAccessBatch(const trace::Addr *addrs, size_t n) override;
    void onPhaseMarker(trace::PhaseId phase) override;
    void onEnd() override;

    /** @return the profile of one phase (empty profile if unseen). */
    SpatialProfile profile(trace::PhaseId phase) const;

    /** @return the whole-run profile. */
    SpatialProfile wholeRun() const;

    /** @return the phases observed (excluding the prologue). */
    std::vector<trace::PhaseId> phasesSeen() const;

  private:
    struct Accum
    {
        uint64_t accesses = 0;
        std::unordered_set<uint64_t> blocks;
        std::unordered_set<uint64_t> elements;
        std::map<int64_t, uint64_t> strides;
        trace::Addr lastAddr = 0;
        bool haveLast = false;
    };

    static SpatialProfile finalize(const Accum &a);
    void record(Accum &a, trace::Addr addr);

    std::unordered_map<trace::PhaseId, Accum> perPhase;
    Accum whole;
    trace::PhaseId current = 0xFFFFFFFFu;
};

} // namespace lpp::reuse

#endif // LPP_REUSE_SPATIAL_HPP
