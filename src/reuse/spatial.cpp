#include "reuse/spatial.hpp"

namespace lpp::reuse {

void
SpatialAnalyzer::record(Accum &a, trace::Addr addr)
{
    ++a.accesses;
    a.blocks.insert(trace::toCacheBlock(addr));
    a.elements.insert(trace::toElement(addr));
    if (a.haveLast) {
        auto delta = static_cast<int64_t>(addr) -
                     static_cast<int64_t>(a.lastAddr);
        ++a.strides[delta];
    }
    a.lastAddr = addr;
    a.haveLast = true;
}

void
SpatialAnalyzer::onAccess(trace::Addr addr)
{
    record(perPhase[current], addr);
    record(whole, addr);
}

void
SpatialAnalyzer::onAccessBatch(const trace::Addr *addrs, size_t n)
{
    // The phase cannot change inside a batch; look the accumulator up
    // once (unordered_map references are stable across later inserts).
    Accum &phase_accum = perPhase[current];
    for (size_t i = 0; i < n; ++i) {
        record(phase_accum, addrs[i]);
        record(whole, addrs[i]);
    }
}

void
SpatialAnalyzer::onPhaseMarker(trace::PhaseId phase)
{
    current = phase;
    // Strides do not bridge phase boundaries.
    perPhase[current].haveLast = false;
}

void
SpatialAnalyzer::onEnd()
{
}

SpatialProfile
SpatialAnalyzer::finalize(const Accum &a)
{
    SpatialProfile p;
    p.accesses = a.accesses;
    p.blocksTouched = a.blocks.size();
    p.elementsTouched = a.elements.size();
    uint64_t total = 0, best = 0;
    for (const auto &kv : a.strides) {
        total += kv.second;
        if (kv.second > best) {
            best = kv.second;
            p.dominantStride = kv.first;
        }
    }
    if (total > 0) {
        p.dominantStrideShare = static_cast<double>(best) /
                                static_cast<double>(total);
    }
    return p;
}

SpatialProfile
SpatialAnalyzer::profile(trace::PhaseId phase) const
{
    auto it = perPhase.find(phase);
    return it == perPhase.end() ? SpatialProfile{}
                                : finalize(it->second);
}

SpatialProfile
SpatialAnalyzer::wholeRun() const
{
    return finalize(whole);
}

std::vector<trace::PhaseId>
SpatialAnalyzer::phasesSeen() const
{
    std::vector<trace::PhaseId> out;
    for (const auto &kv : perPhase) {
        if (kv.first != 0xFFFFFFFFu)
            out.push_back(kv.first);
    }
    return out;
}

} // namespace lpp::reuse
