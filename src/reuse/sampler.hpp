/**
 * @file
 * Variable-distance sampling (paper Section 2.2.1).
 *
 * Instead of analyzing all accesses to all data, the detector samples a
 * small set of representative data elements and, for each, records only
 * long-distance reuses — the ones that reveal global pattern changes.
 * Ding & Zhong's distance-based sampling used three fixed thresholds
 * (qualification, temporal, spatial) that are hard to pick; the paper's
 * contribution here is dynamic feedback: the sampler periodically compares
 * its collection rate against a target sample budget and scales the
 * thresholds so the final sample count lands near the target.
 */

#ifndef LPP_REUSE_SAMPLER_HPP
#define LPP_REUSE_SAMPLER_HPP

#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "reuse/stack.hpp"
#include "trace/sink.hpp"
#include "trace/types.hpp"

namespace lpp::reuse {

/** Tuning knobs for VariableDistanceSampler. */
struct SamplerConfig
{
    /** Desired total number of access samples across all data samples. */
    uint64_t targetSamples = 20000;

    /**
     * Expected trace length in accesses (a hint; 0 means unknown). With a
     * hint, feedback projects the final sample count; without, it holds
     * the recent collection rate near target/checkInterval.
     */
    uint64_t expectedAccesses = 0;

    /** Initial reuse distance for promoting a location to data sample. */
    uint64_t initialQualification = 2048;

    /** Initial reuse distance for recording an access sample. */
    uint64_t initialTemporal = 1024;

    /** Initial minimum element gap between data samples (spatial). */
    uint64_t initialSpatial = 64;

    /** Accesses between feedback checks. */
    uint64_t checkInterval = 65536;

    /** Hard cap on the number of data samples. */
    uint64_t maxDataSamples = 4096;

    /**
     * Expected distinct-element count (the workload's address-space
     * size; 0 means unknown). Pre-sizes the internal reuse stack so
     * the hot path never rehashes or compacts during warm-up.
     */
    uint64_t addressSpaceElements = 0;

    /**
     * Feedback never lowers the thresholds below these floors. The
     * detector sets them to the workload-derived initial values so
     * count-driven feedback cannot push the thresholds into the range
     * of within-phase reuses.
     */
    uint64_t floorQualification = 16;
    uint64_t floorTemporal = 8;

    /** Feedback never raises the thresholds above these ceilings. */
    uint64_t ceilQualification = 1ULL << 40;
    uint64_t ceilTemporal = 1ULL << 40;
};

/** One recorded long-distance reuse of a data sample. */
struct AccessSample
{
    uint64_t time;     //!< logical time (access index) of the reuse
    uint64_t distance; //!< its reuse distance
};

/** A sampled data element and its recorded accesses. */
struct DataSample
{
    uint64_t element;                   //!< element index (addr/8)
    std::vector<AccessSample> accesses; //!< recorded reuses, in time order
};

/** One point of the merged (all-datum) sample trace. */
struct SamplePoint
{
    uint64_t time;     //!< logical time of the access
    uint64_t distance; //!< reuse distance
    uint32_t datum;    //!< index into samples()
};

/**
 * Streams a trace, monitors every access's reuse distance, and collects
 * per-datum access samples under feedback-controlled thresholds.
 */
class VariableDistanceSampler : public trace::TraceSink
{
  public:
    explicit VariableDistanceSampler(SamplerConfig cfg = {});

    /**
     * A sampler whose reuse distances are supplied externally through
     * observe() (the sharded oracle computes them); the internal stack
     * stays empty and its address-space reservation is skipped. Don't
     * stream accesses (onAccess) into a sampler built this way.
     */
    static VariableDistanceSampler externalDistances(SamplerConfig cfg);

    void onAccess(trace::Addr addr) override;
    void onAccessBatch(const trace::Addr *addrs, size_t n) override;

    /**
     * The decision half of onAccess: given one access's element, its
     * logical time (accesses before it) and its exact reuse distance
     * (ReuseStack::infinite when cold), apply the sampling decision
     * and threshold feedback. Calls must come in time order, one per
     * access. onAccess itself reduces to a stack query plus observe(),
     * so feeding externally computed (element, now, dist) triples
     * produces bit-identical samples, thresholds, and adjustments.
     */
    void observe(uint64_t element, uint64_t now, uint64_t dist);

    /** @return the per-datum samples, in promotion order. */
    const std::vector<DataSample> &samples() const { return data; }

    /** @return all access samples of all data, merged in time order. */
    std::vector<SamplePoint> mergedTrace() const;

    /** @return the total number of access samples collected. */
    uint64_t sampleCount() const { return collected; }

    /** @return how many threshold adjustments feedback made. */
    uint32_t adjustments() const { return adjustCount; }

    /** @return current qualification threshold. */
    uint64_t qualificationThreshold() const { return qualification; }

    /** @return current temporal threshold. */
    uint64_t temporalThreshold() const { return temporal; }

    /** @return current spatial threshold (in elements). */
    uint64_t spatialThreshold() const { return spatial; }

    /** @return logical time (accesses processed). */
    uint64_t accessCount() const { return accessesSeen; }

  private:
    struct ExternalTag
    {
    };
    VariableDistanceSampler(SamplerConfig cfg, ExternalTag);

    void feedback();
    bool spatiallyIsolated(uint64_t element) const;

    SamplerConfig config;
    ReuseStack stack;
    std::vector<DataSample> data;
    std::unordered_map<uint64_t, uint32_t> datumIndex;
    std::set<uint64_t> sampledElements;

    uint64_t qualification;
    uint64_t temporal;
    uint64_t spatial;

    uint64_t collected = 0;
    uint64_t collectedAtLastCheck = 0;
    uint64_t nextCheck;
    uint32_t adjustCount = 0;
    // Accesses observed; equals stack.accessCount() when the stack is
    // internal, and is the only clock in externalDistances mode.
    uint64_t accessesSeen = 0;
};

} // namespace lpp::reuse

#endif // LPP_REUSE_SAMPLER_HPP
