/**
 * @file
 * Whole-trace and per-segment reuse-distance analysis sinks.
 */

#ifndef LPP_REUSE_ANALYZER_HPP
#define LPP_REUSE_ANALYZER_HPP

#include <cstdint>
#include <vector>

#include "reuse/stack.hpp"
#include "support/histogram.hpp"
#include "trace/sink.hpp"
#include "trace/types.hpp"

namespace lpp::reuse {

/**
 * Streams a trace through a ReuseStack at element granularity and
 * accumulates the reuse-distance histogram — the classic whole-program
 * locality signature of Ding & Zhong.
 *
 * Segment support: markSegment() closes the current segment histogram and
 * starts a new one, so callers can obtain one locality signature per
 * phase execution while reuse distances remain measured against the full
 * history (the stack is NOT reset at segment boundaries, matching the
 * paper's measurement of phases in context).
 */
class ReuseAnalyzer : public trace::TraceSink
{
  public:
    ReuseAnalyzer() = default;

    /**
     * @param element_hint expected distinct element count (a workload's
     *        address-space size); pre-sizes the reuse stack
     */
    explicit ReuseAnalyzer(uint64_t element_hint)
    {
        if (element_hint > 0)
            stack.reserveElements(element_hint);
    }

    void
    onAccess(trace::Addr addr) override
    {
        step(addr);
    }

    void
    onAccessBatch(const trace::Addr *addrs, size_t n) override
    {
        for (size_t i = 0; i < n; ++i)
            step(addrs[i]);
    }

    /** Close the current segment and start the next. */
    void
    markSegment()
    {
        segmentHists.push_back(current);
        current.clear();
    }

    void
    onEnd() override
    {
        if (current.total() > 0)
            markSegment();
    }

    /** @return the whole-trace reuse histogram. */
    const LogHistogram &histogram() const { return whole; }

    /** @return per-segment histograms, in order. */
    const std::vector<LogHistogram> &segments() const
    {
        return segmentHists;
    }

    /** @return distinct elements touched so far. */
    uint64_t distinctElements() const { return stack.distinctCount(); }

    /** @return total accesses analyzed. */
    uint64_t accessCount() const { return stack.accessCount(); }

  private:
    void
    step(trace::Addr addr)
    {
        uint64_t d = stack.access(trace::toElement(addr));
        whole.add(d);
        current.add(d);
    }

    ReuseStack stack;
    LogHistogram whole;
    LogHistogram current;
    std::vector<LogHistogram> segmentHists;
};

} // namespace lpp::reuse

#endif // LPP_REUSE_ANALYZER_HPP
