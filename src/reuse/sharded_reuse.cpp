#include "reuse/sharded_reuse.hpp"

#include <algorithm>
#include <utility>

#include "reuse/stack.hpp"
#include "support/flat_map.hpp"
#include "support/logging.hpp"
#include "support/parallel_for.hpp"
#include "trace/types.hpp"

namespace lpp::reuse {

namespace {

/**
 * Global last-access structure for the sequential boundary resolve:
 * ReuseStack's (FlatMap, Fenwick) core on an internal compacted time
 * axis, with the query/remove and ordered-insert split the resolve
 * needs. Mark counts and prefix queries mirror ReuseStack::access
 * exactly, so resolved distances match the serial stack bit for bit.
 */
class BoundaryResolver
{
  public:
    explicit BoundaryResolver(size_t reserve_elements)
        : tree(std::max<size_t>(2 * reserve_elements + 64, 1u << 16))
    {
        if (reserve_elements > 0)
            lastG.reserve(reserve_elements);
    }

    /**
     * Number of elements whose last access falls after `element`'s,
     * removing the element's mark (it now lives in the chunk being
     * resolved). ReuseStack::infinite if the element was never seen.
     */
    uint64_t
    queryRemove(uint64_t element)
    {
        uint64_t *slot = lastG.find(element);
        if (!slot)
            return ReuseStack::infinite;
        uint64_t count = live - tree.prefix(*slot);
        tree.add(*slot, -1);
        --live;
        lastG.erase(element);
        return count;
    }

    /**
     * Record `element`'s new last access. Calls must come in
     * increasing global-time order; the element must not currently
     * hold a mark (boundary processing removed it).
     */
    void
    note(uint64_t element)
    {
        if (next >= tree.size())
            compact();
        LPP_DCHECK(lastG.find(element) == nullptr,
                   "element %llu still marked at end-of-chunk insert",
                   static_cast<unsigned long long>(element));
        lastG.insert(element, next);
        tree.add(next, +1);
        ++live;
        ++next;
    }

    /** @return distinct elements currently tracked. */
    uint64_t size() const { return lastG.size(); }

  private:
    void
    compact()
    {
        std::vector<std::pair<uint64_t, uint64_t>> order; // (time, elem)
        order.reserve(lastG.size());
        lastG.forEach([&order](uint64_t element, uint64_t time) {
            order.emplace_back(time, element);
        });
        std::sort(order.begin(), order.end());
        size_t want = std::max<size_t>(64, 2 * order.size() + 64);
        tree = FenwickTree(std::max(want, tree.size()));
        live = 0;
        next = 0;
        for (auto &te : order) {
            *lastG.find(te.second) = next;
            tree.add(next, +1);
            ++live;
            ++next;
        }
    }

    FenwickTree tree;
    support::FlatMap<uint64_t> lastG;
    uint64_t live = 0;
    uint64_t next = 0;
};

/** Per-chunk state of the full sweep's parallel local pass. */
struct ChunkState
{
    ShardChunk chunk;
    ReuseStack stack{64};
    std::vector<size_t> firstTouch; //!< local indices of boundary accesses
};

/**
 * Chunk-local pass: exact intra-chunk distances via a private stack
 * sized so it never compacts (its last-access times must stay on the
 * raw local access axis for the end-of-chunk correction), plus the
 * chunk-local block recording.
 */
class LocalSink : public trace::TraceSink
{
  public:
    explicit LocalSink(ChunkState &st_) : st(st_) {}

    void
    onBlock(trace::BlockId block, uint32_t instructions) override
    {
        st.chunk.blocks.onBlock(block, instructions);
    }

    void
    onAccess(trace::Addr addr) override
    {
        handle(addr);
        st.chunk.blocks.onAccess(addr);
    }

    void
    onAccessBatch(const trace::Addr *addrs, size_t n) override
    {
        for (size_t i = 0; i < n; ++i)
            handle(addrs[i]);
        st.chunk.blocks.onAccessBatch(addrs, n);
    }

  private:
    void
    handle(trace::Addr addr)
    {
        uint64_t element = trace::toElement(addr);
        uint64_t dist = st.stack.access(element);
        if (dist == ReuseStack::infinite)
            st.firstTouch.push_back(st.chunk.elements.size());
        st.chunk.elements.push_back(element);
        st.chunk.distances.push_back(dist);
    }

    ChunkState &st;
};

void
localPass(trace::TraceCursor &cursor,
          const trace::MemoryTrace::ChunkRange &range, ChunkState &st)
{
    st.chunk.range = range;
    st.chunk.elements.reserve(range.accessCount);
    st.chunk.distances.reserve(range.accessCount);
    st.stack = ReuseStack(range.accessCount + 64);
    LocalSink sink(st);
    cursor.replayRange(sink, range);
}

/**
 * Sequential part: resolve the chunk's boundary distances against the
 * global structure, then move every locally-touched element's global
 * mark to its final in-chunk position (in increasing time order, so
 * the resolver's internal axis stays sorted).
 */
void
resolveChunk(ChunkState &st, BoundaryResolver &resolver)
{
    uint64_t k = 0;
    for (size_t pos : st.firstTouch) {
        uint64_t count = resolver.queryRemove(st.chunk.elements[pos]);
        if (count != ReuseStack::infinite)
            st.chunk.distances[pos] = k + count;
        ++k;
    }
    std::vector<std::pair<uint64_t, uint64_t>> order; // (local time, elem)
    order.reserve(st.firstTouch.size());
    st.stack.forEachLastAccess([&order](uint64_t element, uint64_t time) {
        order.emplace_back(time, element);
    });
    std::sort(order.begin(), order.end());
    for (auto &te : order)
        resolver.note(te.second);
}

size_t
waveSize(support::ThreadPool &pool)
{
    return pool.threadCount() + 1; // the caller participates
}

/**
 * One streaming cursor per wave slot, reused across waves: a wave of
 * parallel chunk replays decodes one frame-sized window per worker
 * instead of touching a materialized trace, and slot i's cursor keeps
 * its decoder and batch scratch warm from wave to wave.
 */
std::vector<trace::TraceCursor>
cursorsFor(const trace::MemoryTrace &trace, size_t wave)
{
    std::vector<trace::TraceCursor> cursors;
    cursors.reserve(wave);
    for (size_t i = 0; i < wave; ++i)
        cursors.emplace_back(trace);
    return cursors;
}

/** Applies a callback to every data access delivered to it. */
template <typename Fn>
class AccessVisitor : public trace::TraceSink
{
  public:
    explicit AccessVisitor(Fn &fn_) : fn(fn_) {}

    void onAccess(trace::Addr addr) override { fn(addr); }

    void
    onAccessBatch(const trace::Addr *addrs, size_t n) override
    {
        for (size_t i = 0; i < n; ++i)
            fn(addrs[i]);
    }

  private:
    Fn &fn;
};

} // namespace

TraceCounts
shardedPrecount(const trace::MemoryTrace &trace,
                const ShardedSweepConfig &cfg, support::ThreadPool &pool)
{
    TraceCounts counts;
    counts.accesses = trace.accessCount();
    auto ranges = trace.chunks(cfg.chunkAccesses);

    support::FlatMap<uint8_t> seen;
    if (cfg.reserveElements > 0)
        seen.reserve(cfg.reserveElements);

    const size_t wave = waveSize(pool);
    auto cursors = cursorsFor(trace, wave);
    for (size_t base = 0; base < ranges.size(); base += wave) {
        const size_t n = std::min(wave, ranges.size() - base);
        // Per-chunk distinct-element lists, computed in parallel.
        std::vector<std::vector<uint64_t>> locals(n);
        support::parallelFor(pool, n, [&](size_t i) {
            support::FlatMap<uint8_t> localSeen;
            std::vector<uint64_t> &distinct = locals[i];
            auto visit = [&](trace::Addr addr) {
                uint64_t element = trace::toElement(addr);
                if (!localSeen.find(element)) {
                    localSeen.insert(element, 1);
                    distinct.push_back(element);
                }
            };
            AccessVisitor sink(visit);
            cursors[i].replayRange(sink, ranges[base + i]);
        });
        for (size_t i = 0; i < n; ++i)
            for (uint64_t element : locals[i])
                if (!seen.find(element))
                    seen.insert(element, 1);
    }
    counts.distinctElements = seen.size();
    return counts;
}

TraceCounts
shardedReuseSweep(const trace::MemoryTrace &trace,
                  const ShardedSweepConfig &cfg, support::ThreadPool &pool,
                  const std::function<void(const ShardChunk &)> &consume)
{
    TraceCounts counts;
    counts.accesses = trace.accessCount();
    auto ranges = trace.chunks(cfg.chunkAccesses);
    BoundaryResolver resolver(cfg.reserveElements);

    const size_t wave = waveSize(pool);
    auto cursors = cursorsFor(trace, wave);
    for (size_t base = 0; base < ranges.size(); base += wave) {
        const size_t n = std::min(wave, ranges.size() - base);
        std::vector<ChunkState> states(n);
        support::parallelFor(pool, n, [&](size_t i) {
            localPass(cursors[i], ranges[base + i], states[i]);
        });
        for (size_t i = 0; i < n; ++i) {
            resolveChunk(states[i], resolver);
            consume(states[i].chunk);
            states[i] = ChunkState{}; // free before the next wave
        }
    }
    counts.distinctElements = resolver.size();
    return counts;
}

} // namespace lpp::reuse
