/**
 * @file
 * Exact LRU stack (reuse) distance in near-linear time.
 *
 * The reuse distance of an access is the number of distinct data elements
 * touched since the previous access to the same element (Mattson et al.,
 * 1970). The classic near-linear algorithm keeps, for every element, the
 * time of its most recent access, and counts how many "most recent" times
 * fall after a given time — an order-statistics query served here by a
 * Fenwick tree over time slots, with periodic slot compaction so memory
 * stays proportional to the number of distinct elements rather than the
 * trace length.
 *
 * The last-access table is the per-access hot probe; it uses the flat
 * robin-hood map (support/flat_map.hpp) instead of std::unordered_map so
 * a lookup is one array walk instead of a bucket pointer chase, and it
 * can be reserved ahead from a workload's address-space size.
 */

#ifndef LPP_REUSE_STACK_HPP
#define LPP_REUSE_STACK_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/flat_map.hpp"

namespace lpp::reuse {

/**
 * Fenwick (binary indexed) tree over {0,1} slot occupancy supporting
 * point update and prefix-sum query in O(log n).
 *
 * Nodes are 64-bit: a node's count is bounded by the number of live
 * marks, which equals the number of distinct elements seen — a
 * billion-access trace over a wide address space would overflow 32-bit
 * node counts near the root.
 */
class FenwickTree
{
  public:
    /** @param n number of slots. */
    explicit FenwickTree(size_t n) : tree(n + 1, 0) {}

    /** Add `delta` (+1/-1) at slot `i`. */
    void
    add(size_t i, int delta)
    {
        for (size_t k = i + 1; k < tree.size(); k += k & (~k + 1))
            tree[k] += static_cast<uint64_t>(static_cast<int64_t>(delta));
    }

    /** @return sum of slots [0, i]. */
    uint64_t
    prefix(size_t i) const
    {
        uint64_t s = 0;
        for (size_t k = i + 1; k > 0; k -= k & (~k + 1))
            s += tree[k];
        return s;
    }

    /** @return number of slots. */
    size_t size() const { return tree.size() - 1; }

  private:
    std::vector<uint64_t> tree;
};

/**
 * Exact reuse-distance tracker.
 *
 * access(e) returns the LRU stack distance of the access, or
 * ReuseStack::infinite for the first access to e. The tracker compacts
 * its time axis whenever the running time counter fills the Fenwick
 * capacity; compaction is amortized O(1) per access because capacity is
 * kept at least twice the number of live elements.
 */
class ReuseStack
{
  public:
    /** Distance reported for cold (first) accesses. */
    static constexpr uint64_t infinite = ~0ULL;

    /** @param capacity_hint initial number of time slots. */
    explicit ReuseStack(size_t capacity_hint = 1u << 16);

    /**
     * Pre-size for a trace touching about `elements` distinct elements
     * (typically a workload's address-space size). Reserves the
     * last-access table and, while no history exists yet, widens the
     * time axis so the first compactions are pushed past the warm-up.
     */
    void reserveElements(size_t elements);

    /**
     * Record an access to `element`.
     * @return its reuse distance, or `infinite` if never seen before.
     */
    uint64_t access(uint64_t element);

    /** @return number of distinct elements seen. */
    uint64_t distinctCount() const { return lastTime.size(); }

    /**
     * Visit (element, last-access time) for every element seen, in
     * unspecified order. Times are on the stack's internal (compacted)
     * axis; they equal access indices only while no compaction has
     * happened — guaranteed when the stack was constructed with a
     * capacity hint covering the whole access sequence, which is how
     * the sharded oracle's per-chunk stacks use this.
     */
    template <typename Fn>
    void
    forEachLastAccess(Fn &&fn) const
    {
        lastTime.forEach(fn);
    }

    /** @return total accesses processed. */
    uint64_t accessCount() const { return accesses; }

    /** Forget all history. */
    void reset();

  private:
    void compact();

    FenwickTree tree;
    support::FlatMap<uint64_t> lastTime;
    uint64_t now = 0;
    uint64_t accesses = 0;
    uint64_t liveMarks = 0;
};

} // namespace lpp::reuse

#endif // LPP_REUSE_STACK_HPP
