/**
 * @file
 * Sharded exact reuse-distance sweep over a recorded trace.
 *
 * The serial reuse-distance pass (ReuseStack) is the dominant cost of
 * the training analysis, and it looks inherently sequential — every
 * distance depends on all history. The PARDA observation (Niu et al.,
 * PPoPP'12) splits it: chop the access stream into chunks, and an
 * access whose previous access to the same element lies *within* its
 * chunk has a reuse window entirely inside the chunk, so a chunk-local
 * ReuseStack computes its exact distance with no global knowledge.
 * Only each chunk's *first* access to an element (a "boundary" access)
 * reaches across chunks; those are resolved sequentially against a
 * global last-access structure:
 *
 *   distance(k-th boundary access, element e)
 *     = k                      — distinct elements already touched in
 *                                this chunk (each was an earlier
 *                                boundary access, by definition)
 *     + |{x untouched in this chunk : lastAccess(x) > lastAccess(e)}|
 *                              — served by a Fenwick-over-last-access
 *                                query, with already-resolved boundary
 *                                elements' marks removed so the two
 *                                terms never double-count
 *
 * or infinite if e was never seen. After a chunk's boundaries resolve,
 * every element the chunk touched gets its global last-access mark
 * moved to its final in-chunk position, and the next chunk proceeds.
 * Every quantity is an exact integer equal to what the serial stack
 * computes, so the sharded sweep is bit-identical to the serial pass
 * by construction — the property tests assert this per consumer.
 *
 * The parallel part (chunk-local stacks) is the expensive part; the
 * sequential resolve touches only distinct-elements-per-chunk entries.
 * Chunks are processed in waves of about the pool's parallelism so
 * peak memory stays at wave × chunk size, not the whole trace. Each
 * wave slot owns one trace::TraceCursor, so the chunk replays stream
 * straight out of the compressed frame list — no stage of the sweep
 * ever holds a decoded copy of the recording.
 */

#ifndef LPP_REUSE_SHARDED_REUSE_HPP
#define LPP_REUSE_SHARDED_REUSE_HPP

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "support/thread_pool.hpp"
#include "trace/memory_trace.hpp"
#include "trace/recorder.hpp"

namespace lpp::reuse {

/** Knobs for the sharded sweeps. */
struct ShardedSweepConfig
{
    /** Target data accesses per chunk (0 is treated as 1). */
    uint64_t chunkAccesses = 1u << 20;

    /**
     * Expected distinct-element count (address-space hint; 0 unknown).
     * Pre-sizes the global last-access table.
     */
    size_t reserveElements = 0;
};

/** Whole-trace totals produced by a sweep. */
struct TraceCounts
{
    uint64_t accesses = 0;         //!< data accesses in the trace
    uint64_t distinctElements = 0; //!< distinct elements touched
};

/**
 * One resolved chunk, handed to the sweep consumer in chunk order.
 * elements[i] / distances[i] describe the chunk's i-th data access;
 * global logical time of that access is range.firstAccess + i. The
 * distance is exact (ReuseStack::infinite for cold accesses). blocks
 * holds the chunk-local basic-block recording on chunk-local clocks;
 * absorbing the chunks' recorders in order rebuilds the global one.
 */
struct ShardChunk
{
    trace::MemoryTrace::ChunkRange range;
    std::vector<uint64_t> elements;
    std::vector<uint64_t> distances;
    trace::BlockRecorder blocks;
};

/**
 * Count accesses and distinct elements: the cheap sweep that replaces
 * the serial precount replay. Chunk-local distinct sets run on the
 * pool in parallel; the merge is a serial set union in chunk order.
 */
TraceCounts shardedPrecount(const trace::MemoryTrace &trace,
                            const ShardedSweepConfig &cfg,
                            support::ThreadPool &pool);

/**
 * The full sweep: replays the trace in parallel chunk-local passes,
 * resolves boundary distances sequentially, and calls `consume` once
 * per chunk, in chunk order, with exact per-access distances. The
 * chunk is owned by the sweep and freed after `consume` returns.
 */
TraceCounts
shardedReuseSweep(const trace::MemoryTrace &trace,
                  const ShardedSweepConfig &cfg, support::ThreadPool &pool,
                  const std::function<void(const ShardChunk &)> &consume);

} // namespace lpp::reuse

#endif // LPP_REUSE_SHARDED_REUSE_HPP
