#include "reuse/sampler.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace lpp::reuse {

VariableDistanceSampler::VariableDistanceSampler(SamplerConfig cfg)
    : VariableDistanceSampler(cfg, ExternalTag{})
{
    if (cfg.addressSpaceElements > 0)
        stack.reserveElements(cfg.addressSpaceElements);
}

VariableDistanceSampler::VariableDistanceSampler(SamplerConfig cfg,
                                                 ExternalTag)
    : config(cfg),
      qualification(cfg.initialQualification),
      temporal(cfg.initialTemporal),
      spatial(cfg.initialSpatial),
      nextCheck(cfg.checkInterval)
{
}

VariableDistanceSampler
VariableDistanceSampler::externalDistances(SamplerConfig cfg)
{
    // No stack reservation: distances arrive via observe(), so the
    // address-space-sized last-access table is never needed.
    return VariableDistanceSampler(cfg, ExternalTag{});
}

void
VariableDistanceSampler::onAccessBatch(const trace::Addr *addrs, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        VariableDistanceSampler::onAccess(addrs[i]);
}

bool
VariableDistanceSampler::spatiallyIsolated(uint64_t element) const
{
    if (spatial == 0)
        return true;
    auto it = sampledElements.lower_bound(element);
    if (it != sampledElements.end() && *it - element < spatial)
        return false;
    if (it != sampledElements.begin()) {
        --it;
        if (element - *it < spatial)
            return false;
    }
    return true;
}

void
VariableDistanceSampler::onAccess(trace::Addr addr)
{
    uint64_t element = trace::toElement(addr);
    uint64_t now = stack.accessCount();
    uint64_t dist = stack.access(element);
    observe(element, now, dist);
}

void
VariableDistanceSampler::observe(uint64_t element, uint64_t now,
                                 uint64_t dist)
{
    ++accessesSeen;
    // Every caller — onAccess and the sharded sweep's funnel — feeds
    // accesses in stream order with `now` = accesses before this one,
    // and the sub-trace monotonicity below depends on it.
    LPP_DCHECK(now + 1 == accessesSeen,
               "sampler clock out of order: access %llu observed as "
               "number %llu",
               static_cast<unsigned long long>(now),
               static_cast<unsigned long long>(accessesSeen - 1));

    // Below both thresholds no decision can fire, whatever the datum
    // table says — skip the lookup. This keeps the sequential part of
    // the sharded path (which funnels every access through here) to a
    // couple of compares for the typical short-distance reuse.
    if (dist != ReuseStack::infinite &&
        dist >= std::min(temporal, qualification)) {
        auto it = datumIndex.find(element);
        if (it != datumIndex.end()) {
            if (dist >= temporal) {
                auto &accesses = data[it->second].accesses;
                // Downstream wavelet filtering assumes each datum's
                // sub-trace is strictly time-ordered (merge sorts only
                // across data, not within).
                LPP_DCHECK(accesses.empty() ||
                               accesses.back().time < now,
                           "datum sub-trace not monotone: time %llu "
                           "after %llu",
                           static_cast<unsigned long long>(now),
                           static_cast<unsigned long long>(
                               accesses.back().time));
                accesses.push_back(AccessSample{now, dist});
                ++collected;
            }
        } else if (dist >= qualification &&
                   data.size() < config.maxDataSamples &&
                   spatiallyIsolated(element)) {
            datumIndex.emplace(element,
                               static_cast<uint32_t>(data.size()));
            sampledElements.insert(element);
            data.push_back(DataSample{element, {}});
            data.back().accesses.push_back(AccessSample{now, dist});
            ++collected;
        }
    }

    if (accessesSeen >= nextCheck) {
        feedback();
        nextCheck = accessesSeen + config.checkInterval;
    }
}

void
VariableDistanceSampler::feedback()
{
    uint64_t recent = collected - collectedAtLastCheck;
    collectedAtLastCheck = collected;

    double projected;
    uint64_t now = accessesSeen;
    if (config.expectedAccesses > now) {
        double remaining =
            static_cast<double>(config.expectedAccesses - now);
        double rate = static_cast<double>(recent) /
                      static_cast<double>(config.checkInterval);
        projected = static_cast<double>(collected) + rate * remaining;
    } else {
        // No length hint (or already past it): steer the recent rate
        // toward one target's worth per expected run of 32 checks.
        projected = static_cast<double>(recent) * 32.0;
    }

    // Scale thresholds by how far off target the projection is; the
    // factor is clamped so one noisy interval cannot swing them wildly,
    // and floor/ceiling bounds keep them inside the configured range
    // (no overflow to 0, no drift into within-phase reuse distances).
    auto scale = [](uint64_t value, double factor, uint64_t lo,
                    uint64_t hi) {
        double scaled = static_cast<double>(std::max<uint64_t>(value, 1)) *
                        factor;
        scaled = std::min(scaled, static_cast<double>(hi));
        scaled = std::max(scaled, static_cast<double>(lo));
        return static_cast<uint64_t>(scaled);
    };

    double target = static_cast<double>(config.targetSamples);
    double ratio = projected / target;
    // Raising thresholds cannot undo past over-collection, so only raise
    // while samples are actually still flowing; otherwise a permanently
    // exceeded target would ratchet the thresholds to the cap.
    if (ratio > 1.4 && recent > 0) {
        double f = std::min(ratio, 8.0);
        qualification = scale(qualification, f,
                              config.floorQualification,
                              config.ceilQualification);
        temporal = scale(temporal, f, config.floorTemporal,
                         config.ceilTemporal);
        spatial = scale(spatial, f, 0, 1ULL << 40);
        ++adjustCount;
    } else if (ratio < 0.6 &&
               static_cast<double>(collected) < target) {
        double f = std::max(ratio / 0.9, 1.0 / 8.0);
        qualification = scale(qualification, f,
                              config.floorQualification,
                              config.ceilQualification);
        temporal = scale(temporal, f, config.floorTemporal,
                         config.ceilTemporal);
        spatial = spatial / 2;
        ++adjustCount;
    }

    // The clamp above must keep both distance thresholds inside their
    // configured band; drifting below the floor would reclassify
    // within-phase reuse as cross-phase samples.
    LPP_DCHECK(qualification >= config.floorQualification &&
                   qualification <= config.ceilQualification,
               "qualification threshold %llu outside [%llu, %llu]",
               static_cast<unsigned long long>(qualification),
               static_cast<unsigned long long>(config.floorQualification),
               static_cast<unsigned long long>(config.ceilQualification));
    LPP_DCHECK(temporal >= config.floorTemporal &&
                   temporal <= config.ceilTemporal,
               "temporal threshold %llu outside [%llu, %llu]",
               static_cast<unsigned long long>(temporal),
               static_cast<unsigned long long>(config.floorTemporal),
               static_cast<unsigned long long>(config.ceilTemporal));
}

std::vector<SamplePoint>
VariableDistanceSampler::mergedTrace() const
{
    std::vector<SamplePoint> merged;
    merged.reserve(collected);
    for (uint32_t di = 0; di < data.size(); ++di) {
        for (const auto &a : data[di].accesses)
            merged.push_back(SamplePoint{a.time, a.distance, di});
    }
    std::sort(merged.begin(), merged.end(),
              [](const SamplePoint &a, const SamplePoint &b) {
                  return a.time < b.time;
              });
    return merged;
}

} // namespace lpp::reuse
