#include "reuse/analyzer.hpp"

// ReuseAnalyzer is header-only today; this translation unit anchors the
// library target and leaves room for out-of-line growth.
