#include "phase/marker_selection.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "support/logging.hpp"

namespace lpp::phase {

std::vector<trace::PhaseId>
MarkerSelection::sequence() const
{
    std::vector<trace::PhaseId> seq;
    seq.reserve(executions.size());
    for (const auto &e : executions)
        seq.push_back(e.phase);
    return seq;
}

MarkerSelection
intersectSelections(const std::vector<MarkerSelection> &selections)
{
    MarkerSelection out;
    if (selections.empty())
        return out;

    // Keep first-run phases whose marker every other run also chose.
    trace::PhaseId next_id = 0;
    for (const auto &info : selections.front().phases) {
        bool everywhere = true;
        for (size_t r = 1; r < selections.size() && everywhere; ++r)
            everywhere = selections[r].table.find(info.marker) !=
                         nullptr;
        if (!everywhere)
            continue;
        PhaseInfo renumbered = info;
        renumbered.id = next_id;
        out.phases.push_back(renumbered);
        out.table.set(info.marker, next_id);
        ++next_id;
    }
    out.detectedExecutions = selections.front().detectedExecutions;
    out.candidateBlocks = out.table.size();
    return out;
}

MarkerSelector::MarkerSelector(MarkerConfig cfg_) : cfg(cfg_)
{
    LPP_REQUIRE(cfg.frequencySlack > 0.0, "slack must be positive");
}

MarkerSelection
MarkerSelector::select(const std::vector<trace::BlockEvent> &events,
                       uint64_t total_instructions,
                       uint64_t detected_executions) const
{
    MarkerSelection out;
    out.detectedExecutions = detected_executions;
    if (events.empty())
        return out;

    // 1. Frequency filter: a block can mark a phase only if it executes
    //    no more often than phases do.
    std::unordered_map<trace::BlockId, uint64_t> freq;
    for (const auto &e : events)
        ++freq[e.block];

    // Primary rule (the paper's): a block can appear at most as often
    // as phases execute. Locality detection can undercount phases on
    // short training runs, so the cap is floored by a bound that is
    // sound regardless: no phase of >= minPhaseInstructions can execute
    // more than total/minPhaseInstructions times, hence no marker block
    // may either. Both bounds sit far below body-block frequencies.
    uint64_t cap = std::max<uint64_t>(
        1, static_cast<uint64_t>(std::llround(
               static_cast<double>(std::max<uint64_t>(
                   detected_executions, 1)) *
               cfg.frequencySlack)));
    if (cfg.minPhaseInstructions > 0) {
        cap = std::max(cap,
                       total_instructions / cfg.minPhaseInstructions);
    }

    std::unordered_map<trace::BlockId, bool> candidate;
    for (const auto &kv : freq) {
        if (kv.second <= cap) {
            candidate[kv.first] = true;
            ++out.candidateBlocks;
        }
    }
    if (candidate.empty())
        return out;

    // 2. Blank regions between candidate events; the candidate block
    //    executing immediately before a long region marks that phase.
    struct Cand
    {
        trace::BlockId block;
        uint64_t instrStart;
        uint64_t instrEnd;
    };
    std::vector<Cand> cands;
    for (const auto &e : events) {
        if (candidate.count(e.block)) {
            cands.push_back(Cand{e.block, e.instrTime,
                                 e.instrTime + e.instructions});
        }
    }

    std::unordered_map<trace::BlockId, uint64_t> regionCount;
    for (size_t k = 0; k < cands.size(); ++k) {
        uint64_t region_end = (k + 1 < cands.size())
                                  ? cands[k + 1].instrStart
                                  : total_instructions;
        uint64_t gap = region_end > cands[k].instrEnd
                           ? region_end - cands[k].instrEnd
                           : 0;
        if (gap >= cfg.minPhaseInstructions) {
            ++out.regions;
            ++regionCount[cands[k].block];
        }
    }
    if (regionCount.empty())
        return out;

    // 3. Assign dense phase ids in first-occurrence order and build the
    //    marker table.
    std::unordered_map<trace::BlockId, trace::PhaseId> phaseOf;
    for (const auto &c : cands) {
        if (regionCount.count(c.block) && !phaseOf.count(c.block)) {
            auto id = static_cast<trace::PhaseId>(phaseOf.size());
            phaseOf[c.block] = id;
            out.table.set(c.block, id);
        }
    }

    // 4. Reconstruct exactly what the instrumented run will observe:
    //    every execution of a marker block fires; executions span
    //    consecutive firings.
    struct Firing
    {
        trace::PhaseId phase;
        uint64_t instr;
        uint64_t access;
    };
    std::vector<Firing> firings;
    std::unordered_map<trace::BlockId, uint64_t> fireCount;
    for (const auto &e : events) {
        auto it = phaseOf.find(e.block);
        if (it != phaseOf.end()) {
            firings.push_back(Firing{it->second, e.instrTime,
                                     e.accessTime});
            ++fireCount[e.block];
        }
    }

    uint64_t total_accesses = events.back().accessTime;
    for (size_t k = 0; k < firings.size(); ++k) {
        PhaseExecution pe;
        pe.phase = firings[k].phase;
        pe.startInstr = firings[k].instr;
        pe.startAccess = firings[k].access;
        pe.endInstr = (k + 1 < firings.size()) ? firings[k + 1].instr
                                               : total_instructions;
        pe.endAccess = (k + 1 < firings.size()) ? firings[k + 1].access
                                                : total_accesses;
        out.executions.push_back(pe);
    }

    // 5. Per-phase summary.
    out.phases.resize(phaseOf.size());
    for (const auto &kv : phaseOf) {
        PhaseInfo &info = out.phases[kv.second];
        info.id = kv.second;
        info.marker = kv.first;
        uint64_t fires = fireCount[kv.first];
        info.markerQuality =
            fires == 0 ? 0.0
                       : static_cast<double>(regionCount[kv.first]) /
                             static_cast<double>(fires);
    }
    for (const auto &pe : out.executions) {
        PhaseInfo &info = out.phases[pe.phase];
        uint64_t len = pe.endInstr - pe.startInstr;
        if (info.executions == 0) {
            info.minInstructions = len;
            info.maxInstructions = len;
        } else {
            info.minInstructions = std::min(info.minInstructions, len);
            info.maxInstructions = std::max(info.maxInstructions, len);
        }
        info.meanInstructions += static_cast<double>(len);
        ++info.executions;
    }
    for (auto &info : out.phases) {
        if (info.executions > 0)
            info.meanInstructions /= static_cast<double>(info.executions);
    }

    return out;
}


SubPhaseSelection
MarkerSelector::selectSubPhases(
    const std::vector<trace::BlockEvent> &events,
    uint64_t total_instructions, uint64_t detected_executions,
    double refinement) const
{
    LPP_REQUIRE(refinement > 1.0, "refinement must exceed 1, got %f",
                refinement);
    SubPhaseSelection out;
    out.coarse = select(events, total_instructions,
                        detected_executions);

    MarkerConfig fine_cfg = cfg;
    fine_cfg.minPhaseInstructions = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               static_cast<double>(cfg.minPhaseInstructions) /
               refinement));
    MarkerSelector fine_selector(fine_cfg);
    out.fine = fine_selector.select(events, total_instructions,
                                    detected_executions);

    // Attribute each fine phase to the coarse phase whose executions
    // enclose the majority of its executions. Coarse executions are in
    // start order, so a binary search locates the enclosing one.
    std::vector<uint64_t> coarse_starts;
    coarse_starts.reserve(out.coarse.executions.size());
    for (const auto &e : out.coarse.executions)
        coarse_starts.push_back(e.startInstr);

    out.parentOf.assign(out.fine.phases.size(),
                        SubPhaseSelection::noParent);
    std::vector<std::unordered_map<uint32_t, uint32_t>> votes(
        out.fine.phases.size());
    for (const auto &fe : out.fine.executions) {
        auto it = std::upper_bound(coarse_starts.begin(),
                                   coarse_starts.end(), fe.startInstr);
        if (it == coarse_starts.begin())
            continue; // before the first coarse marker
        size_t idx =
            static_cast<size_t>(it - coarse_starts.begin()) - 1;
        const PhaseExecution &ce = out.coarse.executions[idx];
        if (fe.startInstr < ce.endInstr)
            ++votes[fe.phase][ce.phase];
    }
    for (size_t f = 0; f < votes.size(); ++f) {
        uint32_t best = SubPhaseSelection::noParent;
        uint32_t best_votes = 0;
        for (const auto &kv : votes[f]) {
            if (kv.second > best_votes) {
                best = kv.first;
                best_votes = kv.second;
            }
        }
        out.parentOf[f] = best;
    }
    return out;
}

} // namespace lpp::phase
