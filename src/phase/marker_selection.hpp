/**
 * @file
 * Phase marker selection (paper Section 2.3).
 *
 * Locality analysis yields the number of phase executions but only fuzzy
 * transition times (the wavelet loses exact positions and transitions may
 * be gradual). Marker selection therefore works from frequency instead of
 * time: a block can mark a phase only if it executes no more often than
 * phases do. Filtering the basic-block trace down to such infrequent
 * blocks leaves long "blank regions" of removed blocks — each sufficiently
 * long region is one phase execution, and the candidate block executing
 * immediately before a region marks that phase's beginning. Two regions
 * belong to the same phase when they follow the same code block.
 */

#ifndef LPP_PHASE_MARKER_SELECTION_HPP
#define LPP_PHASE_MARKER_SELECTION_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/instrument.hpp"
#include "trace/recorder.hpp"
#include "trace/types.hpp"

namespace lpp::phase {

/** Tuning for MarkerSelector. */
struct MarkerConfig
{
    /**
     * Minimum instructions in a blank region for it to count as a phase
     * execution. The paper uses 10K instructions against training runs
     * of >= 3.5M accesses (~0.3% of the execution).
     */
    uint64_t minPhaseInstructions = 10000;

    /**
     * Slack multiplier on the frequency cap: blocks executing at most
     * slack * (detected phase executions) times remain candidates.
     * 1.0 reproduces the paper's rule exactly; a little slack tolerates
     * noise in the detected count.
     */
    double frequencySlack = 1.0;
};

/** One selected leaf phase. */
struct PhaseInfo
{
    trace::PhaseId id = 0;      //!< dense phase identifier
    trace::BlockId marker = 0;  //!< block whose execution starts the phase
    uint64_t executions = 0;    //!< executions observed in training
    uint64_t minInstructions = 0; //!< shortest observed execution
    uint64_t maxInstructions = 0; //!< longest observed execution
    double meanInstructions = 0.0; //!< mean execution length

    /**
     * Fraction of the marker block's executions that actually started an
     * observed phase execution (1.0 = the marker is exact).
     */
    double markerQuality = 1.0;
};

/** One phase execution recovered from the training block trace. */
struct PhaseExecution
{
    trace::PhaseId phase = 0;
    uint64_t startInstr = 0;  //!< instruction clock at the marker firing
    uint64_t endInstr = 0;    //!< instruction clock at the next boundary
    uint64_t startAccess = 0; //!< access clock at the marker firing
    uint64_t endAccess = 0;   //!< access clock at the next boundary
};

/** Full result of marker selection on a training run. */
struct MarkerSelection
{
    trace::MarkerTable table;          //!< blocks to instrument
    std::vector<PhaseInfo> phases;     //!< per-phase summary
    std::vector<PhaseExecution> executions; //!< training executions
    uint64_t detectedExecutions = 0;   //!< phase executions from locality
    uint64_t candidateBlocks = 0;      //!< blocks passing the freq filter
    uint64_t regions = 0;              //!< blank regions found

    /** @return phase ids of the training execution, in order. */
    std::vector<trace::PhaseId> sequence() const;
};

/**
 * Two-level (sub-phase) selection result. The paper notes that after
 * finding large phases "we can use a smaller threshold to find
 * sub-phases"; here the block trace is re-filtered with the region
 * threshold divided by a refinement factor, and every fine phase is
 * attributed to the coarse phase whose executions enclose it.
 */
struct SubPhaseSelection
{
    /** Fine phases with no enclosing coarse execution (prologue). */
    static constexpr uint32_t noParent = 0xFFFFFFFFu;

    MarkerSelection coarse; //!< top-level phases
    MarkerSelection fine;   //!< sub-phase-level phases

    /** parentOf[fine phase id] = enclosing coarse phase id. */
    std::vector<uint32_t> parentOf;
};

/**
 * Correlate marker selection across several training runs (an
 * improvement the paper mentions): a block survives only if every run
 * selected it, which discards markers that owed their region to one
 * input's control flow. Phase ids are renumbered in the first
 * selection's order; execution lists are not carried over (re-derive
 * them by replaying a run under the returned table).
 */
MarkerSelection
intersectSelections(const std::vector<MarkerSelection> &selections);

/**
 * Selects marker blocks from a training block trace given the phase
 * execution count detected by locality analysis.
 */
class MarkerSelector
{
  public:
    explicit MarkerSelector(MarkerConfig cfg = {});

    /**
     * Run marker selection.
     * @param events training basic-block trace
     * @param total_instructions instruction count of the training run
     * @param detected_executions number of phase executions found by
     *        optimal phase partitioning (boundaries + 1)
     */
    MarkerSelection select(const std::vector<trace::BlockEvent> &events,
                           uint64_t total_instructions,
                           uint64_t detected_executions) const;

    /**
     * Hierarchical selection: top-level phases with this selector's
     * threshold, sub-phases with the threshold divided by `refinement`.
     */
    SubPhaseSelection
    selectSubPhases(const std::vector<trace::BlockEvent> &events,
                    uint64_t total_instructions,
                    uint64_t detected_executions,
                    double refinement = 8.0) const;

    /** @return the configuration in use. */
    const MarkerConfig &config() const { return cfg; }

  private:
    MarkerConfig cfg;
};

} // namespace lpp::phase

#endif // LPP_PHASE_MARKER_SELECTION_HPP
