#include "phase/detector.hpp"

#include <algorithm>

#include "support/logging.hpp"
#include "trace/memory_trace.hpp"

namespace lpp::phase {

PhaseDetector::PhaseDetector(DetectorConfig cfg_) : cfg(cfg_)
{
}

bool
PhaseDetector::needsPrecount() const
{
    return cfg.precountAccesses && cfg.sampler.expectedAccesses == 0;
}

reuse::SamplerConfig
PhaseDetector::samplingConfig(const PrecountStats *pre) const
{
    reuse::SamplerConfig scfg = cfg.sampler;
    if (pre == nullptr)
        return scfg;
    scfg.expectedAccesses = pre->accesses;
    if (scfg.addressSpaceElements == 0)
        scfg.addressSpaceElements = pre->distinctElements;
    if (cfg.autoThresholds && pre->distinctElements > 0) {
        auto threshold = std::max<uint64_t>(
            16, static_cast<uint64_t>(
                    cfg.thresholdFraction *
                    static_cast<double>(pre->distinctElements)));
        scfg.initialQualification = threshold;
        scfg.initialTemporal = threshold;
        // Pin feedback: count control may only use the spatial
        // threshold; the distance thresholds define what a
        // cross-phase reuse is and must not drift.
        scfg.floorQualification = threshold;
        scfg.floorTemporal = threshold;
        scfg.ceilQualification = threshold;
        scfg.ceilTemporal = threshold;
    }
    return scfg;
}

PrecountStats
PhaseDetector::precountFromTrace(const trace::MemoryTrace &t)
{
    PrecountSink sink;
    t.replay(sink);
    return sink.stats();
}

std::vector<reuse::SamplePoint>
PhaseDetector::filterSamples(const std::vector<reuse::DataSample> &samples,
                             wavelet::FilterStats *stats) const
{
    wavelet::SubTraceFilter filter(cfg.filter);
    return filter.apply(samples, stats);
}

Partition
PhaseDetector::partitionFiltered(
    const std::vector<reuse::SamplePoint> &filtered) const
{
    OptimalPartitioner partitioner(cfg.partition);
    return partitioner.partition(filtered);
}

MarkerSelection
PhaseDetector::selectMarkers(const trace::BlockRecorder &blocks,
                             uint64_t detected_executions) const
{
    MarkerSelector selector(cfg.marker);
    return selector.select(blocks.events(), blocks.totalInstructions(),
                           detected_executions);
}

DetectionResult
PhaseDetector::finish(const reuse::VariableDistanceSampler &sampler,
                      const trace::BlockRecorder &blocks) const
{
    DetectionResult result;
    result.dataSamples = sampler.samples().size();
    result.accessSamples = sampler.sampleCount();
    result.samplerAdjustments = sampler.adjustments();
    result.trainAccesses = blocks.totalAccesses();
    result.trainInstructions = blocks.totalInstructions();

    // Wavelet filtering of each datum's sub-trace.
    auto filtered = filterSamples(sampler.samples(), &result.filterStats);

    // Optimal phase partitioning of the filtered trace.
    result.partitionResult = partitionFiltered(filtered);
    for (size_t b : result.partitionResult.boundaries)
        result.boundaryTimes.push_back(filtered[b].time);

    inform("detector: %zu data samples, %llu access samples, "
           "%zu filtered points, %zu boundaries",
           static_cast<size_t>(result.dataSamples),
           static_cast<unsigned long long>(result.accessSamples),
           filtered.size(), result.boundaryTimes.size());

    // Marker selection against the block trace, driven by the detected
    // phase-execution count.
    result.selection =
        selectMarkers(blocks, result.partitionResult.phaseCount());
    return result;
}

DetectionResult
PhaseDetector::analyze(const Runner &run) const
{
    // Stage 0: learn the trace length (and working-set size, for the
    // automatic thresholds) so sampling feedback can project its final
    // sample count.
    PrecountStats pre;
    bool have_pre = needsPrecount();
    if (have_pre) {
        PrecountSink sink;
        run(sink);
        pre = sink.stats();
    }

    // Stage 1: variable-distance sampling + block trace, in one pass.
    reuse::VariableDistanceSampler sampler(
        samplingConfig(have_pre ? &pre : nullptr));
    trace::BlockRecorder blocks;
    trace::FanoutSink fan;
    fan.attach(&sampler);
    fan.attach(&blocks);
    run(fan);

    // Stages 2-4: filtering, partitioning, marker selection.
    return finish(sampler, blocks);
}

} // namespace lpp::phase
