#include "phase/detector.hpp"

#include <algorithm>

#include "support/flat_map.hpp"
#include "support/logging.hpp"
#include "trace/recorder.hpp"

namespace lpp::phase {

namespace {

/** Counts accesses and distinct elements in one precount pass. */
class PrecountSink : public trace::TraceSink
{
  public:
    void
    onAccess(trace::Addr addr) override
    {
        ++accesses;
        elements.insert(trace::toElement(addr), 0);
    }

    void
    onAccessBatch(const trace::Addr *addrs, size_t n) override
    {
        accesses += n;
        for (size_t i = 0; i < n; ++i)
            elements.insert(trace::toElement(addrs[i]), 0);
    }

    uint64_t accesses = 0;
    support::FlatMap<uint8_t> elements; //!< used as a set
};

} // namespace

PhaseDetector::PhaseDetector(DetectorConfig cfg_) : cfg(cfg_)
{
}

DetectionResult
PhaseDetector::analyze(const Runner &run) const
{
    DetectionResult result;

    // Step 0: learn the trace length (and working-set size, for the
    // automatic thresholds) so sampling feedback can project its final
    // sample count.
    reuse::SamplerConfig scfg = cfg.sampler;
    if (cfg.precountAccesses && scfg.expectedAccesses == 0) {
        PrecountSink pre;
        run(pre);
        scfg.expectedAccesses = pre.accesses;
        if (scfg.addressSpaceElements == 0)
            scfg.addressSpaceElements = pre.elements.size();
        if (cfg.autoThresholds && !pre.elements.empty()) {
            auto threshold = std::max<uint64_t>(
                16, static_cast<uint64_t>(
                        cfg.thresholdFraction *
                        static_cast<double>(pre.elements.size())));
            scfg.initialQualification = threshold;
            scfg.initialTemporal = threshold;
            // Pin feedback: count control may only use the spatial
            // threshold; the distance thresholds define what a
            // cross-phase reuse is and must not drift.
            scfg.floorQualification = threshold;
            scfg.floorTemporal = threshold;
            scfg.ceilQualification = threshold;
            scfg.ceilTemporal = threshold;
        }
    }

    // Step 1: variable-distance sampling + block trace, in one pass.
    reuse::VariableDistanceSampler sampler(scfg);
    trace::BlockRecorder blocks;
    trace::FanoutSink fan;
    fan.attach(&sampler);
    fan.attach(&blocks);
    run(fan);

    result.dataSamples = sampler.samples().size();
    result.accessSamples = sampler.sampleCount();
    result.samplerAdjustments = sampler.adjustments();
    result.trainAccesses = blocks.totalAccesses();
    result.trainInstructions = blocks.totalInstructions();

    // Step 2: wavelet filtering of each datum's sub-trace.
    wavelet::SubTraceFilter filter(cfg.filter);
    auto filtered = filter.apply(sampler.samples(), &result.filterStats);

    // Step 3: optimal phase partitioning of the filtered trace.
    OptimalPartitioner partitioner(cfg.partition);
    result.partitionResult = partitioner.partition(filtered);
    for (size_t b : result.partitionResult.boundaries)
        result.boundaryTimes.push_back(filtered[b].time);

    inform("detector: %zu data samples, %llu access samples, "
           "%zu filtered points, %zu boundaries",
           static_cast<size_t>(result.dataSamples),
           static_cast<unsigned long long>(result.accessSamples),
           filtered.size(), result.boundaryTimes.size());

    // Step 4: marker selection against the block trace, driven by the
    // detected phase-execution count.
    MarkerSelector selector(cfg.marker);
    result.selection =
        selector.select(blocks.events(), blocks.totalInstructions(),
                        result.partitionResult.phaseCount());

    return result;
}

} // namespace lpp::phase
