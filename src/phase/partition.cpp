#include "phase/partition.hpp"

#include <algorithm>
#include <limits>

#include "support/logging.hpp"

namespace lpp::phase {

OptimalPartitioner::OptimalPartitioner(PartitionConfig cfg_) : cfg(cfg_)
{
    LPP_REQUIRE(cfg.maxNodes >= 2, "maxNodes too small: %zu",
                cfg.maxNodes);
}

Partition
OptimalPartitioner::solve(const std::vector<uint32_t> &ids) const
{
    const size_t n = ids.size();
    Partition result;
    result.nodes = n;
    if (n == 0)
        return result;

    double alpha = std::max(0.0, cfg.alpha);

    // dp[j] for j in [0, n]: minimal path weight from the source to node
    // j (j < n) or to the sink (j == n). parent[j] records the previous
    // path node (n+1 marks the source).
    const double inf = std::numeric_limits<double>::infinity();
    std::vector<double> dp(n + 1, inf);
    std::vector<size_t> parent(n + 1, n + 1);

    uint32_t max_id = *std::max_element(ids.begin(), ids.end());
    std::vector<uint32_t> count(max_id + 1, 0);
    std::vector<uint32_t> stamp(max_id + 1, 0);
    uint32_t epoch = 0;

    // Relax edges out of `a` (node index, or `source` = n+1) by growing
    // the open interval (a, b) one element at a time; r accumulates
    // datum recurrences inside the interval.
    auto relax_from = [&](size_t a, double base) {
        ++epoch;
        double r = 0.0;
        size_t first_b = (a == n + 1) ? 0 : a + 1;
        for (size_t b = first_b; b <= n; ++b) {
            if (b > first_b) {
                // Element at position b-1 joins the interval.
                uint32_t id = ids[b - 1];
                if (stamp[id] != epoch) {
                    stamp[id] = epoch;
                    count[id] = 1;
                } else {
                    ++count[id];
                    r += 1.0;
                }
            }
            double w = base + alpha * r + 1.0;
            if (w < dp[b]) {
                dp[b] = w;
                parent[b] = a;
            }
        }
    };

    relax_from(n + 1, 0.0);
    for (size_t a = 0; a < n; ++a) {
        if (dp[a] < inf)
            relax_from(a, dp[a]);
    }

    result.cost = dp[n];

    // Walk parents back from the sink; interior nodes are boundaries.
    size_t cur = n;
    while (parent[cur] != n + 1) {
        cur = parent[cur];
        result.boundaries.push_back(cur);
    }
    std::reverse(result.boundaries.begin(), result.boundaries.end());
    return result;
}

Partition
OptimalPartitioner::partition(
    const std::vector<reuse::SamplePoint> &filtered) const
{
    if (filtered.empty())
        return Partition{};

    // Subsample long traces so the O(n^2) DP stays tractable.
    size_t stride = (filtered.size() + cfg.maxNodes - 1) / cfg.maxNodes;
    std::vector<uint32_t> ids;
    std::vector<size_t> origin;
    ids.reserve(filtered.size() / stride + 1);
    for (size_t i = 0; i < filtered.size(); i += stride) {
        ids.push_back(filtered[i].datum);
        origin.push_back(i);
    }

    Partition p = solve(ids);
    for (auto &b : p.boundaries)
        b = origin[b];
    return p;
}

std::vector<uint64_t>
OptimalPartitioner::boundaryTimes(
    const std::vector<reuse::SamplePoint> &filtered) const
{
    Partition p = partition(filtered);
    std::vector<uint64_t> times;
    times.reserve(p.boundaries.size());
    for (size_t b : p.boundaries)
        times.push_back(filtered[b].time);
    return times;
}

} // namespace lpp::phase
