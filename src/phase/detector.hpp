/**
 * @file
 * Off-line phase detection driver: variable-distance sampling, wavelet
 * filtering, optimal phase partitioning, and marker selection chained
 * over a training execution (paper Sections 2.2-2.3).
 */

#ifndef LPP_PHASE_DETECTOR_HPP
#define LPP_PHASE_DETECTOR_HPP

#include <cstdint>
#include <functional>
#include <vector>

#include "phase/marker_selection.hpp"
#include "phase/partition.hpp"
#include "reuse/sampler.hpp"
#include "trace/sink.hpp"
#include "wavelet/filtering.hpp"

namespace lpp::phase {

/** Configuration of the whole detection pipeline. */
struct DetectorConfig
{
    reuse::SamplerConfig sampler;   //!< variable-distance sampling
    wavelet::FilterConfig filter;   //!< per-datum wavelet filtering
    PartitionConfig partition;      //!< optimal phase partitioning
    MarkerConfig marker;            //!< marker selection

    /**
     * Run the program once up front to learn the trace length, giving
     * the sampler's feedback an accurate projection target. Cheap for
     * simulated workloads; a real deployment would pass an estimate in
     * sampler.expectedAccesses instead.
     */
    bool precountAccesses = true;

    /**
     * Derive the qualification/temporal thresholds from the training
     * run's working set: threshold = thresholdFraction * distinct
     * elements. A reuse longer than a tenth of the working set is a
     * cross-phase reuse for every program in the suite, while
     * within-phase reuses stay below it; the derived value also floors
     * and ceils feedback so count control cannot push the thresholds
     * into either regime. Requires precountAccesses.
     */
    bool autoThresholds = true;

    /** Fraction of the distinct-element count used as threshold. */
    double thresholdFraction = 0.05;
};

/** Everything the off-line analysis learned from the training run. */
struct DetectionResult
{
    /** Marker table, per-phase info, and training executions. */
    MarkerSelection selection;

    /** Phase boundaries (access clock) from the locality analysis. */
    std::vector<uint64_t> boundaryTimes;

    /** The raw optimal partition (indices refer to the merged trace). */
    Partition partitionResult;

    /** Wavelet filtering statistics. */
    wavelet::FilterStats filterStats;

    uint64_t dataSamples = 0;       //!< data elements sampled
    uint64_t accessSamples = 0;     //!< access samples collected
    uint32_t samplerAdjustments = 0; //!< feedback threshold changes
    uint64_t trainAccesses = 0;     //!< training run length (accesses)
    uint64_t trainInstructions = 0; //!< training run length (instrs)
};

/**
 * Drives the three off-line steps over a training execution provided as
 * a runner callback (the callback streams one full execution into the
 * sink it is given; it must be repeatable).
 */
class PhaseDetector
{
  public:
    /** Streams one complete training execution into the given sink. */
    using Runner = std::function<void(trace::TraceSink &)>;

    explicit PhaseDetector(DetectorConfig cfg = {});

    /** Run the full detection pipeline. */
    DetectionResult analyze(const Runner &run) const;

    /** @return the configuration in use. */
    const DetectorConfig &config() const { return cfg; }

  private:
    DetectorConfig cfg;
};

} // namespace lpp::phase

#endif // LPP_PHASE_DETECTOR_HPP
