/**
 * @file
 * Off-line phase detection driver: variable-distance sampling, wavelet
 * filtering, optimal phase partitioning, and marker selection chained
 * over a training execution (paper Sections 2.2-2.3).
 *
 * The pipeline is exposed as named stages with explicit data handoffs
 * so callers that manage program executions themselves (the execution
 * plan in core/) can drive each stage against a shared execution:
 *
 *   precount          PrecountSink            -> PrecountStats
 *   sampling planning samplingConfig()        -> reuse::SamplerConfig
 *   sampling pass     VariableDistanceSampler + trace::BlockRecorder
 *   wavelet filtering filterSamples()         -> filtered trace
 *   partitioning      partitionFiltered()     -> Partition
 *   marker selection  selectMarkers()         -> MarkerSelection
 *
 * analyze() composes the stages over a runner callback and is the
 * serial reference: one precount execution (when configured) plus one
 * sampling execution.
 */

#ifndef LPP_PHASE_DETECTOR_HPP
#define LPP_PHASE_DETECTOR_HPP

#include <cstdint>
#include <functional>
#include <vector>

#include "phase/marker_selection.hpp"
#include "phase/partition.hpp"
#include "reuse/sampler.hpp"
#include "support/flat_map.hpp"
#include "trace/recorder.hpp"
#include "trace/sink.hpp"
#include "wavelet/filtering.hpp"

namespace lpp::trace {
class StreamingTrace;
using MemoryTrace = StreamingTrace;
}

namespace lpp::phase {

/** Configuration of the whole detection pipeline. */
struct DetectorConfig
{
    reuse::SamplerConfig sampler;   //!< variable-distance sampling
    wavelet::FilterConfig filter;   //!< per-datum wavelet filtering
    PartitionConfig partition;      //!< optimal phase partitioning
    MarkerConfig marker;            //!< marker selection

    /**
     * Run the program once up front to learn the trace length, giving
     * the sampler's feedback an accurate projection target. Cheap for
     * simulated workloads; a real deployment would pass an estimate in
     * sampler.expectedAccesses instead.
     */
    bool precountAccesses = true;

    /**
     * Derive the qualification/temporal thresholds from the training
     * run's working set: threshold = thresholdFraction * distinct
     * elements. A reuse longer than a tenth of the working set is a
     * cross-phase reuse for every program in the suite, while
     * within-phase reuses stay below it; the derived value also floors
     * and ceils feedback so count control cannot push the thresholds
     * into either regime. Requires precountAccesses.
     */
    bool autoThresholds = true;

    /** Fraction of the distinct-element count used as threshold. */
    double thresholdFraction = 0.05;
};

/** What one precount pass learns (stage handoff to sampling). */
struct PrecountStats
{
    uint64_t accesses = 0;         //!< trace length in accesses
    uint64_t distinctElements = 0; //!< working-set size in elements
};

/** Precount stage sink: counts accesses and distinct elements. */
class PrecountSink : public trace::TraceSink
{
  public:
    void
    onAccess(trace::Addr addr) override
    {
        ++accesses;
        elements.insert(trace::toElement(addr), 0);
    }

    void
    onAccessBatch(const trace::Addr *addrs, size_t n) override
    {
        accesses += n;
        for (size_t i = 0; i < n; ++i)
            elements.insert(trace::toElement(addrs[i]), 0);
    }

    /** @return the stage output (valid any time). */
    PrecountStats
    stats() const
    {
        return PrecountStats{accesses, elements.size()};
    }

  private:
    uint64_t accesses = 0;
    support::FlatMap<uint8_t> elements; //!< used as a set
};

/** Everything the off-line analysis learned from the training run. */
struct DetectionResult
{
    /** Marker table, per-phase info, and training executions. */
    MarkerSelection selection;

    /** Phase boundaries (access clock) from the locality analysis. */
    std::vector<uint64_t> boundaryTimes;

    /** The raw optimal partition (indices refer to the merged trace). */
    Partition partitionResult;

    /** Wavelet filtering statistics. */
    wavelet::FilterStats filterStats;

    uint64_t dataSamples = 0;       //!< data elements sampled
    uint64_t accessSamples = 0;     //!< access samples collected
    uint32_t samplerAdjustments = 0; //!< feedback threshold changes
    uint64_t trainAccesses = 0;     //!< training run length (accesses)
    uint64_t trainInstructions = 0; //!< training run length (instrs)
};

/**
 * Drives the off-line stages over a training execution provided as a
 * runner callback (the callback streams one full execution into the
 * sink it is given; it must be repeatable).
 */
class PhaseDetector
{
  public:
    /** Streams one complete training execution into the given sink. */
    using Runner = std::function<void(trace::TraceSink &)>;

    explicit PhaseDetector(DetectorConfig cfg = {});

    /** Run the full detection pipeline (composes every stage). */
    DetectionResult analyze(const Runner &run) const;

    // Named stages ---------------------------------------------------

    /** @return whether the configuration calls for a precount pass. */
    bool needsPrecount() const;

    /**
     * Precount stage over a recording instead of a live execution:
     * replays the recorded stream into a PrecountSink. With a recorded
     * (or cached) training trace this replaces the dedicated precount
     * program execution — the trace-derived-counts handoff of the
     * single-execution pipeline.
     */
    static PrecountStats precountFromTrace(const trace::MemoryTrace &t);

    /**
     * Stage handoff precount -> sampling: the effective sampler
     * configuration. Pass the precount output, or nullptr when no
     * precount ran (the configured sampler settings are used as-is).
     */
    reuse::SamplerConfig samplingConfig(const PrecountStats *pre) const;

    /** Wavelet-filtering stage over the sampling pass's output. */
    std::vector<reuse::SamplePoint>
    filterSamples(const std::vector<reuse::DataSample> &samples,
                  wavelet::FilterStats *stats) const;

    /** Partitioning stage over the filtered merged trace. */
    Partition
    partitionFiltered(const std::vector<reuse::SamplePoint> &filtered) const;

    /** Marker-selection stage against the recorded block trace. */
    MarkerSelection
    selectMarkers(const trace::BlockRecorder &blocks,
                  uint64_t detected_executions) const;

    /**
     * Compose the post-execution stages (filtering, partitioning,
     * marker selection) over a completed sampling pass, producing the
     * same DetectionResult analyze() would.
     */
    DetectionResult finish(const reuse::VariableDistanceSampler &sampler,
                           const trace::BlockRecorder &blocks) const;

    /** @return the configuration in use. */
    const DetectorConfig &config() const { return cfg; }

  private:
    DetectorConfig cfg;
};

} // namespace lpp::phase

#endif // LPP_PHASE_DETECTOR_HPP
