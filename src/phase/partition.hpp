/**
 * @file
 * Optimal phase partitioning (paper Section 2.2.3).
 *
 * After wavelet filtering, the surviving accesses cluster at phase
 * boundaries: within a phase each data sample should appear at most once
 * (reuses of the same sample signal a phase change), and a good phase
 * gathers accesses to as many distinct samples as possible. The filtered
 * trace is modelled as a DAG — every access is a node, every forward pair
 * an edge of weight alpha * r + 1, where r counts datum recurrences
 * strictly between the two accesses. A path from source to sink is a
 * partition; the shortest path is the optimal one. alpha trades off
 * too-large phases (reuses included, first term) against too-many phases
 * (one per edge, second term).
 */

#ifndef LPP_PHASE_PARTITION_HPP
#define LPP_PHASE_PARTITION_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "reuse/sampler.hpp"

namespace lpp::phase {

/** Tuning for OptimalPartitioner. */
struct PartitionConfig
{
    /**
     * Reuse penalty weight in [0, 1]. 1 forbids reuses inside a phase;
     * 0 merges everything into one phase. The paper found partitions
     * stable for 0.2..0.8 and used 0.5.
     */
    double alpha = 0.5;

    /**
     * Largest node count solved exactly (the DP is O(n^2)). Longer
     * filtered traces are uniformly subsampled to this size first.
     */
    size_t maxNodes = 6000;
};

/** Result of partitioning a filtered trace. */
struct Partition
{
    /**
     * Indices into the filtered trace whose accesses start a new phase,
     * ascending. k boundaries split the execution into k+1 phases.
     */
    std::vector<size_t> boundaries;

    /** Total path weight of the optimal partition. */
    double cost = 0.0;

    /** Nodes actually solved (after any subsampling). */
    size_t nodes = 0;

    /** @return the number of phases (boundaries + 1). */
    size_t phaseCount() const { return boundaries.size() + 1; }
};

/**
 * Exact shortest-path phase partitioner over the filtered-trace DAG.
 */
class OptimalPartitioner
{
  public:
    explicit OptimalPartitioner(PartitionConfig cfg = {});

    /**
     * Partition a filtered trace (time-ordered sample points).
     * @return boundary indices into `filtered`
     */
    Partition partition(
        const std::vector<reuse::SamplePoint> &filtered) const;

    /**
     * Convenience: logical times (access clock) of the boundaries of a
     * partition of `filtered`.
     */
    std::vector<uint64_t>
    boundaryTimes(const std::vector<reuse::SamplePoint> &filtered) const;

    /** @return the configuration in use. */
    const PartitionConfig &config() const { return cfg; }

  private:
    Partition solve(const std::vector<uint32_t> &ids) const;

    PartitionConfig cfg;
};

} // namespace lpp::phase

#endif // LPP_PHASE_PARTITION_HPP
