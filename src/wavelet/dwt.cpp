#include "wavelet/dwt.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace lpp::wavelet {

namespace {

/** Periodic index into a signal of length n. */
inline size_t
wrap(size_t i, size_t n)
{
    return i % n;
}

/** Whole-sample symmetric (reflected) index into a signal of length n. */
inline size_t
reflect(long i, long n)
{
    if (n == 1)
        return 0;
    long period = 2 * (n - 1);
    long k = i % period;
    if (k < 0)
        k += period;
    return static_cast<size_t>(k < n ? k : period - k);
}

} // namespace

LevelCoefficients
Dwt::analyzeLevel(const std::vector<double> &signal) const
{
    std::vector<double> padded = signal;
    if (padded.size() % 2 != 0)
        padded.push_back(padded.empty() ? 0.0 : padded.back());

    size_t n = padded.size();
    size_t half = n / 2;
    const auto &h = bank.lowpass();
    const auto &g = bank.highpass();
    size_t taps = bank.length();

    LevelCoefficients out;
    out.approx.resize(half);
    out.detail.resize(half);
    for (size_t i = 0; i < half; ++i) {
        double a = 0.0;
        double d = 0.0;
        for (size_t k = 0; k < taps; ++k) {
            double x = padded[wrap(2 * i + k, n)];
            a += h[k] * x;
            d += g[k] * x;
        }
        out.approx[i] = a;
        out.detail[i] = d;
    }
    return out;
}

std::vector<double>
Dwt::synthesizeLevel(const LevelCoefficients &level, size_t size) const
{
    size_t half = level.approx.size();
    LPP_REQUIRE(level.detail.size() == half,
                "approx/detail size mismatch: %zu vs %zu",
                half, level.detail.size());
    size_t n = 2 * half;
    const auto &h = bank.lowpass();
    const auto &g = bank.highpass();
    size_t taps = bank.length();

    std::vector<double> signal(n, 0.0);
    for (size_t i = 0; i < half; ++i) {
        for (size_t k = 0; k < taps; ++k) {
            size_t j = wrap(2 * i + k, n);
            signal[j] += h[k] * level.approx[i] + g[k] * level.detail[i];
        }
    }
    signal.resize(std::min(size, n));
    return signal;
}

Decomposition
Dwt::decompose(const std::vector<double> &signal, size_t levels) const
{
    Decomposition dec;
    dec.originalSize = signal.size();
    std::vector<double> current = signal;
    for (size_t lvl = 0; lvl < levels; ++lvl) {
        if (current.size() < bank.length())
            break;
        LevelCoefficients lc = analyzeLevel(current);
        dec.detail.push_back(std::move(lc.detail));
        current = std::move(lc.approx);
    }
    dec.finalApprox = std::move(current);
    return dec;
}

std::vector<double>
Dwt::reconstruct(const Decomposition &dec) const
{
    std::vector<double> current = dec.finalApprox;
    for (size_t lvl = dec.detail.size(); lvl-- > 0;) {
        LevelCoefficients lc;
        lc.approx = std::move(current);
        lc.detail = dec.detail[lvl];
        // The signal at level lvl had length originalSize at the top and
        // detail[lvl-1].size() below (it was the previous level's approx).
        size_t target = lvl == 0 ? dec.originalSize
                                 : dec.detail[lvl - 1].size();
        current = synthesizeLevel(lc, target);
    }
    return current;
}

std::vector<double>
Dwt::stationaryDetail(const std::vector<double> &signal) const
{
    long n = static_cast<long>(signal.size());
    const auto &g = bank.highpass();
    long taps = static_cast<long>(bank.length());
    long center = (taps - 1) / 2;

    std::vector<double> detail(signal.size(), 0.0);
    for (long i = 0; i < n; ++i) {
        double d = 0.0;
        for (long k = 0; k < taps; ++k)
            d += g[static_cast<size_t>(k)] *
                 signal[reflect(i + k - center, n)];
        detail[static_cast<size_t>(i)] = d;
    }
    return detail;
}

} // namespace lpp::wavelet
