/**
 * @file
 * Wavelet filtering of per-datum sub-traces (paper Section 2.2.2).
 *
 * Each sampled data element's sequence of reuse distances is treated as a
 * signal. The level-1 wavelet coefficient of each access measures how
 * abruptly the datum's reuse behaviour changes there; accesses whose
 * coefficient magnitude exceeds mean + 3 sigma are kept as candidate
 * phase-change indicators, everything else (gradual change, local peaks)
 * is discarded. Filtering each datum separately is essential: a gradual
 * change in one datum's sub-trace can look abrupt in the merged trace and
 * would cause false positives (paper Fig. 3b discussion).
 */

#ifndef LPP_WAVELET_FILTERING_HPP
#define LPP_WAVELET_FILTERING_HPP

#include <cstdint>
#include <vector>

#include "reuse/sampler.hpp"
#include "wavelet/dwt.hpp"

namespace lpp::wavelet {

/** Configuration of the sub-trace filter. */
struct FilterConfig
{
    /** Wavelet family (the paper uses Daubechies-6). */
    Family family = Family::Daubechies6;

    /** Keep accesses with |w| > mean + sigmas * stddev. */
    double sigmas = 3.0;

    /**
     * Data samples with fewer recorded accesses than this are dropped as
     * noise (too few points to carry a pattern).
     */
    size_t minAccesses = 4;
};

/** Filtering statistics for reporting and tests. */
struct FilterStats
{
    size_t dataSamples = 0;    //!< data samples examined
    size_t dropped = 0;        //!< data samples dropped as noise
    uint64_t accessesIn = 0;   //!< access samples examined
    uint64_t accessesKept = 0; //!< access samples surviving the filter
};

/**
 * Applies wavelet filtering to every datum's sub-trace and recompiles the
 * survivors into a single time-ordered filtered trace.
 */
class SubTraceFilter
{
  public:
    explicit SubTraceFilter(FilterConfig cfg = {});

    /**
     * Filter one datum's sub-trace.
     * @param distances the datum's reuse-distance signal
     * @return indices into `distances` that survive; empty when the
     *         signal is too short or has no significant coefficient
     */
    std::vector<size_t>
    filterSignal(const std::vector<double> &distances) const;

    /**
     * Filter all data samples and merge survivors by logical time.
     * @param samples per-datum access samples from the sampler
     * @param stats optional out-param for filtering statistics
     */
    std::vector<reuse::SamplePoint>
    apply(const std::vector<reuse::DataSample> &samples,
          FilterStats *stats = nullptr) const;

    /** @return the configuration in use. */
    const FilterConfig &config() const { return cfg; }

  private:
    FilterConfig cfg;
    Dwt dwt;
};

} // namespace lpp::wavelet

#endif // LPP_WAVELET_FILTERING_HPP
