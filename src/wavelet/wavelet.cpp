#include "wavelet/wavelet.hpp"

#include <cmath>

#include "support/logging.hpp"

namespace lpp::wavelet {

namespace {

std::vector<double>
lowpassTaps(Family family)
{
    const double s2 = std::sqrt(2.0);
    const double s3 = std::sqrt(3.0);
    switch (family) {
      case Family::Haar:
        return {1.0 / s2, 1.0 / s2};
      case Family::Daubechies4:
        return {
            (1.0 + s3) / (4.0 * s2),
            (3.0 + s3) / (4.0 * s2),
            (3.0 - s3) / (4.0 * s2),
            (1.0 - s3) / (4.0 * s2),
        };
      case Family::Daubechies6:
        // Derived by spectral factorization of 1 + 3y + 6y^2; consistent
        // (orthonormal, sum sqrt(2)) to machine precision.
        return {
            0.3326705529500826,
            0.8068915093110924,
            0.45987750211849154,
            -0.13501102001025447,
            -0.0854412738820266,
            0.03522629188570955,
        };
    }
    panic("unknown wavelet family %d", static_cast<int>(family));
}

} // namespace

FilterBank::FilterBank(Family family)
    : fam(family), h(lowpassTaps(family))
{
    g.resize(h.size());
    for (size_t k = 0; k < h.size(); ++k) {
        double sign = (k % 2 == 0) ? 1.0 : -1.0;
        g[k] = sign * h[h.size() - 1 - k];
    }
}

std::string
FilterBank::name(Family family)
{
    switch (family) {
      case Family::Haar:
        return "Haar";
      case Family::Daubechies4:
        return "Daubechies-4";
      case Family::Daubechies6:
        return "Daubechies-6";
    }
    return "unknown";
}

} // namespace lpp::wavelet
