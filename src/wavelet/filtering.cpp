#include "wavelet/filtering.hpp"

#include <algorithm>
#include <cmath>

#include "support/stats.hpp"

namespace lpp::wavelet {

SubTraceFilter::SubTraceFilter(FilterConfig cfg_)
    : cfg(cfg_), dwt(cfg_.family)
{
}

std::vector<size_t>
SubTraceFilter::filterSignal(const std::vector<double> &distances) const
{
    std::vector<size_t> kept;
    if (distances.size() < cfg.minAccesses)
        return kept;

    std::vector<double> detail = dwt.stationaryDetail(distances);

    RunningStats stats;
    for (double d : detail)
        stats.push(std::abs(d));
    double threshold = stats.mean() + cfg.sigmas * stats.stddev();
    if (threshold <= 0.0)
        return kept; // constant signal: nothing abrupt anywhere

    for (size_t i = 0; i < detail.size(); ++i) {
        if (std::abs(detail[i]) > threshold)
            kept.push_back(i);
    }
    return kept;
}

std::vector<reuse::SamplePoint>
SubTraceFilter::apply(const std::vector<reuse::DataSample> &samples,
                      FilterStats *stats) const
{
    FilterStats local;
    std::vector<reuse::SamplePoint> merged;

    for (uint32_t di = 0; di < samples.size(); ++di) {
        const auto &datum = samples[di];
        ++local.dataSamples;
        local.accessesIn += datum.accesses.size();
        if (datum.accesses.size() < cfg.minAccesses) {
            ++local.dropped;
            continue;
        }

        std::vector<double> signal;
        signal.reserve(datum.accesses.size());
        for (const auto &a : datum.accesses)
            signal.push_back(static_cast<double>(a.distance));

        for (size_t idx : filterSignal(signal)) {
            const auto &a = datum.accesses[idx];
            merged.push_back(
                reuse::SamplePoint{a.time, a.distance, di});
            ++local.accessesKept;
        }
    }

    std::sort(merged.begin(), merged.end(),
              [](const reuse::SamplePoint &a,
                 const reuse::SamplePoint &b) {
                  return a.time < b.time;
              });

    if (stats)
        *stats = local;
    return merged;
}

} // namespace lpp::wavelet
