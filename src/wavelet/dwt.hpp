/**
 * @file
 * Discrete Wavelet Transform: decimated multi-level analysis/synthesis
 * with periodic extension, and the undecimated single-level detail
 * transform used by the phase-detection filter.
 */

#ifndef LPP_WAVELET_DWT_HPP
#define LPP_WAVELET_DWT_HPP

#include <cstddef>
#include <vector>

#include "wavelet/wavelet.hpp"

namespace lpp::wavelet {

/** Result of one decimated analysis level. */
struct LevelCoefficients
{
    std::vector<double> approx; //!< scaling coefficients c_j(k)
    std::vector<double> detail; //!< wavelet coefficients w_j(k)
};

/** A full multi-level decomposition. */
struct Decomposition
{
    /** detail[j] holds level j+1 wavelet coefficients. */
    std::vector<std::vector<double>> detail;
    /** Scaling coefficients of the deepest level. */
    std::vector<double> finalApprox;
    /** Original signal length (needed for reconstruction of odd sizes). */
    size_t originalSize = 0;
};

/**
 * Discrete wavelet transform engine for a fixed filter bank.
 *
 * The decimated transform uses periodic signal extension, which makes
 * analysis/synthesis a perfect-reconstruction pair for even-length
 * signals (odd lengths are zero-padded by one).
 */
class Dwt
{
  public:
    /** @param family wavelet family to use. */
    explicit Dwt(Family family = Family::Daubechies6) : bank(family) {}

    /** One decimated analysis level with periodic extension. */
    LevelCoefficients analyzeLevel(const std::vector<double> &signal) const;

    /** Invert one analysis level; `size` is the original length. */
    std::vector<double> synthesizeLevel(const LevelCoefficients &level,
                                        size_t size) const;

    /**
     * Multi-level decomposition.
     * @param signal input signal
     * @param levels number of levels (clamped so each level has >= taps
     *               samples)
     */
    Decomposition decompose(const std::vector<double> &signal,
                            size_t levels) const;

    /** Reconstruct a signal from its decomposition. */
    std::vector<double> reconstruct(const Decomposition &dec) const;

    /**
     * Undecimated (stationary) level-1 detail coefficients with
     * whole-sample symmetric extension: one coefficient per input
     * sample, so every access of a sub-trace gets a change magnitude.
     */
    std::vector<double>
    stationaryDetail(const std::vector<double> &signal) const;

    /** @return the filter bank in use. */
    const FilterBank &filters() const { return bank; }

  private:
    FilterBank bank;
};

} // namespace lpp::wavelet

#endif // LPP_WAVELET_DWT_HPP
