/**
 * @file
 * Orthonormal wavelet filter banks.
 *
 * The paper uses Daubechies-6 for its off-line filtering and notes that
 * other families produce similar results; Haar (Daubechies-2) and
 * Daubechies-4 are provided for the same sensitivity study.
 */

#ifndef LPP_WAVELET_WAVELET_HPP
#define LPP_WAVELET_WAVELET_HPP

#include <cstddef>
#include <string>
#include <vector>

namespace lpp::wavelet {

/** Supported wavelet families. */
enum class Family
{
    Haar,        //!< Daubechies-2 (2 taps)
    Daubechies4, //!< 4 taps
    Daubechies6, //!< 6 taps — the paper's choice
};

/**
 * An orthonormal two-channel filter bank: the scaling (low-pass) filter h
 * and the wavelet (high-pass) filter g with g[k] = (-1)^k h[L-1-k].
 */
class FilterBank
{
  public:
    /** Construct the bank for a family. */
    explicit FilterBank(Family family);

    /** @return the low-pass (scaling) taps. */
    const std::vector<double> &lowpass() const { return h; }

    /** @return the high-pass (wavelet) taps. */
    const std::vector<double> &highpass() const { return g; }

    /** @return number of taps. */
    size_t length() const { return h.size(); }

    /** @return the family this bank implements. */
    Family family() const { return fam; }

    /** @return a human-readable family name. */
    static std::string name(Family family);

  private:
    Family fam;
    std::vector<double> h;
    std::vector<double> g;
};

} // namespace lpp::wavelet

#endif // LPP_WAVELET_WAVELET_HPP
