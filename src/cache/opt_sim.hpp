/**
 * @file
 * Cache simulation under optimal (Belady/MIN) replacement.
 *
 * The paper measures miss rates with Cheetah (Sugumar & Abraham), whose
 * headline capability is efficient simulation under optimal replacement
 * as well as LRU. This is the OPT half: a two-pass simulator — the
 * first pass records each access's next-use time per set, the second
 * evicts the line whose next use is farthest away. OPT is the lower
 * bound against which the LRU policies of the resizing experiment can
 * be sanity-checked.
 */

#ifndef LPP_CACHE_OPT_SIM_HPP
#define LPP_CACHE_OPT_SIM_HPP

#include <cstdint>
#include <vector>

#include "cache/lru_cache.hpp"
#include "trace/types.hpp"

namespace lpp::cache {

/**
 * Offline OPT simulator. Collect the trace with onAccess()/record(),
 * then call simulate() to obtain the miss count for the configured
 * geometry under optimal replacement.
 */
class OptSimulator : public trace::TraceSink
{
  public:
    explicit OptSimulator(CacheConfig cfg = {});

    /** Record one access (sink interface). */
    void onAccess(trace::Addr addr) override { record(addr); }

    /** Record a batch of accesses in one call. */
    void onAccessBatch(const trace::Addr *addrs, size_t n) override;

    /** Record one access. */
    void record(trace::Addr addr);

    /**
     * Run the optimal-replacement simulation over the recorded trace.
     * May be called repeatedly (e.g. after recording more accesses);
     * each call simulates the whole trace from a cold cache.
     * @return the number of misses
     */
    uint64_t simulate() const;

    /** @return recorded accesses. */
    uint64_t accesses() const { return blocks.size(); }

    /** @return misses / accesses for the last simulate() call. */
    double
    missRate() const
    {
        return blocks.empty() ? 0.0
                              : static_cast<double>(lastMisses) /
                                    static_cast<double>(blocks.size());
    }

    /** @return the configuration. */
    const CacheConfig &config() const { return cfg; }

  private:
    CacheConfig cfg;
    std::vector<uint64_t> blocks; //!< block ids in access order
    mutable uint64_t lastMisses = 0;
};

/**
 * Convenience: misses of `trace` (byte addresses) under OPT for `cfg`.
 */
uint64_t optMisses(const std::vector<trace::Addr> &trace,
                   CacheConfig cfg = {});

} // namespace lpp::cache

#endif // LPP_CACHE_OPT_SIM_HPP
