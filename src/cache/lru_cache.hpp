/**
 * @file
 * Set-associative LRU cache simulator.
 *
 * The concrete single-configuration simulator, used for the Fig 4
 * "measured" miss rates (32 KB 2-way) and anywhere one fixed cache is
 * enough; the multi-configuration Mattson stack simulator lives in
 * stack_sim.hpp.
 */

#ifndef LPP_CACHE_LRU_CACHE_HPP
#define LPP_CACHE_LRU_CACHE_HPP

#include <cstdint>
#include <vector>

#include "trace/sink.hpp"
#include "trace/types.hpp"

namespace lpp::cache {

/** Geometry of a set-associative cache. */
struct CacheConfig
{
    uint32_t sets = 512;       //!< number of sets (power of two)
    uint32_t ways = 8;         //!< associativity
    uint32_t blockBytes = 64;  //!< line size

    /** @return total capacity in bytes. */
    uint64_t
    capacityBytes() const
    {
        return static_cast<uint64_t>(sets) * ways * blockBytes;
    }

    /** @return total capacity in KiB. */
    double
    capacityKB() const
    {
        return static_cast<double>(capacityBytes()) / 1024.0;
    }
};

/** LRU set-associative cache fed by data-access events. */
class LruCache : public trace::TraceSink
{
  public:
    explicit LruCache(CacheConfig cfg = {});

    void onAccess(trace::Addr addr) override;

    void
    onAccessBatch(const trace::Addr *addrs, size_t n) override
    {
        for (size_t i = 0; i < n; ++i)
            access(addrs[i]);
    }

    /**
     * Access the cache directly.
     * @return true on hit
     */
    bool access(trace::Addr addr);

    /** @return accesses so far. */
    uint64_t accesses() const { return accessCount; }

    /** @return misses so far. */
    uint64_t misses() const { return missCount; }

    /** @return hit count. */
    uint64_t hits() const { return accessCount - missCount; }

    /** @return miss ratio (0 when empty). */
    double missRate() const;

    /** @return the configuration. */
    const CacheConfig &config() const { return cfg; }

    /** Invalidate all contents and reset counters. */
    void reset();

    /** Reset counters only (contents stay warm). */
    void resetCounters();

  private:
    CacheConfig cfg;
    // tags[set * ways + i]: most-recently-used first; emptyTag = invalid.
    static constexpr uint64_t emptyTag = ~0ULL;
    std::vector<uint64_t> tags;
    uint64_t accessCount = 0;
    uint64_t missCount = 0;
    uint32_t setShift = 0;
    uint64_t setMask = 0;
};

} // namespace lpp::cache

#endif // LPP_CACHE_LRU_CACHE_HPP
