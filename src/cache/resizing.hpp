/**
 * @file
 * Adaptive cache resizing policies (paper Section 3.2 / Fig 6).
 *
 * The cache can shrink from 8-way/256 KB to 1-way/32 KB in 32 KB steps.
 * The goal is the smallest average cache size whose miss count stays
 * within a bound of the full-size miss count. Three policies are
 * modelled over a common unit sequence (each unit carries its own
 * all-associativity miss counts from the stack simulator):
 *
 *  - interval: fixed-length units with the paper's idealized "perfect
 *    phase-change detection" and a minimal two-trial exploration
 *    (full size, then half size) after each detected change;
 *  - phase: units keyed by (phase, intra-phase interval index); the
 *    first two executions of a key explore, later executions reuse the
 *    learned best size — the real (non-idealized) policy;
 *  - BBV: units keyed by the cluster a BBV predictor assigns; the
 *    current best size per cluster is reused, with the same two-trial
 *    exploration when a cluster first appears.
 */

#ifndef LPP_CACHE_RESIZING_HPP
#define LPP_CACHE_RESIZING_HPP

#include <cstdint>
#include <vector>

#include "cache/stack_sim.hpp"

namespace lpp::cache {

/**
 * @return the smallest associativity whose misses stay within
 * (1 + bound) of the full-size misses for this unit.
 */
uint32_t bestWays(const SegmentLocality &unit, double bound);

/** Outcome of running one resizing policy over a unit sequence. */
struct ResizingResult
{
    double avgWays = 0.0;        //!< access-weighted average ways
    uint64_t totalMisses = 0;    //!< misses incurred at chosen sizes
    uint64_t fullSizeMisses = 0; //!< misses at the full 8-way cache
    uint64_t explorations = 0;   //!< exploration trials charged

    /** @return average cache size in KB (512 sets x 64 B per way). */
    double avgKB() const { return avgWays * 32.0; }

    /** @return avgWays normalized to the full size (1.0 = no shrink). */
    double normalizedSize() const { return avgWays / 8.0; }

    /** @return relative miss increase vs the full-size cache. */
    double missIncrease() const;
};

/** Oracle lower bound: every unit runs at its own best size. */
ResizingResult resizeOracle(const std::vector<SegmentLocality> &units,
                            double bound);

/**
 * Fixed-interval policy with perfect change detection: a phase change is
 * flagged whenever the next unit's best size differs from the current
 * one; each change costs one full-size and one half-size trial unit.
 */
ResizingResult resizeInterval(const std::vector<SegmentLocality> &units,
                              double bound);

/**
 * Phase policy: `keys[i]` identifies the recurring behaviour of unit i
 * (phase id and intra-phase interval index). The first occurrence of a
 * key runs at full size, the second at half, and later occurrences use
 * the best size learned from the first.
 */
ResizingResult resizePhase(const std::vector<SegmentLocality> &units,
                           const std::vector<uint64_t> &keys,
                           double bound);

/**
 * BBV policy: `clusters[i]` is the BBV cluster the predictor assigns to
 * unit i. Same exploration as the phase policy, but the learned best
 * size of a cluster is updated continuously ("current best"), because
 * BBV clusters do not guarantee identical locality.
 */
ResizingResult resizeBbv(const std::vector<SegmentLocality> &units,
                         const std::vector<uint32_t> &clusters,
                         double bound);

} // namespace lpp::cache

#endif // LPP_CACHE_RESIZING_HPP
