#include "cache/resizing.hpp"

#include <unordered_map>

#include "support/logging.hpp"

namespace lpp::cache {

uint32_t
bestWays(const SegmentLocality &unit, double bound)
{
    uint64_t full = unit.misses[simWays - 1];
    double budget = static_cast<double>(full) * (1.0 + bound);
    for (uint32_t w = 1; w <= simWays; ++w) {
        if (static_cast<double>(unit.misses[w - 1]) <= budget)
            return w;
    }
    return simWays;
}

double
ResizingResult::missIncrease() const
{
    if (fullSizeMisses == 0)
        return 0.0;
    return (static_cast<double>(totalMisses) -
            static_cast<double>(fullSizeMisses)) /
           static_cast<double>(fullSizeMisses);
}

namespace {

/** Shared accumulator: charge unit i at `ways`. */
class Account
{
  public:
    void
    charge(const SegmentLocality &unit, uint32_t ways)
    {
        weightedWays += static_cast<double>(ways) *
                        static_cast<double>(unit.accesses);
        totalAccesses += unit.accesses;
        result.totalMisses += unit.misses[ways - 1];
        result.fullSizeMisses += unit.misses[simWays - 1];
    }

    ResizingResult
    finish()
    {
        result.avgWays = totalAccesses == 0
                             ? static_cast<double>(simWays)
                             : weightedWays /
                                   static_cast<double>(totalAccesses);
        return result;
    }

    ResizingResult result;

  private:
    double weightedWays = 0.0;
    uint64_t totalAccesses = 0;
};

} // namespace

ResizingResult
resizeOracle(const std::vector<SegmentLocality> &units, double bound)
{
    Account acc;
    for (const auto &u : units)
        acc.charge(u, bestWays(u, bound));
    return acc.finish();
}

ResizingResult
resizeInterval(const std::vector<SegmentLocality> &units, double bound)
{
    Account acc;
    // Exploration state: 0 = stable, 1 = next unit at full size,
    // 2 = next unit at half size (then adopt the following unit's best).
    int exploring = 1; // the very first unit starts an exploration
    uint32_t known = simWays;
    uint32_t prev_best = simWays;

    for (size_t i = 0; i < units.size(); ++i) {
        uint32_t best = bestWays(units[i], bound);
        uint32_t choice;
        if (exploring == 1) {
            choice = simWays;
            exploring = 2;
            ++acc.result.explorations;
        } else if (exploring == 2) {
            choice = simWays / 2;
            exploring = 0;
            known = best; // settle on the phase's best size
            ++acc.result.explorations;
        } else if (best != prev_best) {
            // Perfect detection: a change is flagged the moment the best
            // size differs; re-exploration starts immediately.
            choice = simWays;
            exploring = 2;
            ++acc.result.explorations;
        } else {
            choice = known;
        }
        acc.charge(units[i], choice);
        prev_best = best;
    }
    return acc.finish();
}

ResizingResult
resizePhase(const std::vector<SegmentLocality> &units,
            const std::vector<uint64_t> &keys, double bound)
{
    LPP_REQUIRE(units.size() == keys.size(),
                "units/keys mismatch: %zu vs %zu", units.size(),
                keys.size());
    Account acc;
    struct Learned
    {
        uint32_t occurrences = 0;
        uint32_t ways = simWays;
    };
    std::unordered_map<uint64_t, Learned> table;

    for (size_t i = 0; i < units.size(); ++i) {
        Learned &l = table[keys[i]];
        uint32_t choice;
        if (l.occurrences == 0) {
            choice = simWays;
            l.ways = bestWays(units[i], bound);
            ++acc.result.explorations;
        } else if (l.occurrences == 1) {
            choice = simWays / 2;
            ++acc.result.explorations;
        } else {
            choice = l.ways;
        }
        ++l.occurrences;
        acc.charge(units[i], choice);
    }
    return acc.finish();
}

ResizingResult
resizeBbv(const std::vector<SegmentLocality> &units,
          const std::vector<uint32_t> &clusters, double bound)
{
    LPP_REQUIRE(units.size() == clusters.size(),
                "units/clusters mismatch: %zu vs %zu", units.size(),
                clusters.size());
    Account acc;
    struct Learned
    {
        uint32_t occurrences = 0;
        uint32_t ways = simWays;
    };
    std::unordered_map<uint32_t, Learned> table;

    for (size_t i = 0; i < units.size(); ++i) {
        Learned &l = table[clusters[i]];
        uint32_t choice;
        if (l.occurrences == 0) {
            choice = simWays;
            ++acc.result.explorations;
        } else if (l.occurrences == 1) {
            choice = simWays / 2;
            ++acc.result.explorations;
        } else {
            choice = l.ways;
        }
        ++l.occurrences;
        acc.charge(units[i], choice);
        // "Current best": clusters do not guarantee identical locality,
        // so the learned size tracks the most recent member.
        l.ways = bestWays(units[i], bound);
    }
    return acc.finish();
}

} // namespace lpp::cache
