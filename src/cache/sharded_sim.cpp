#include "cache/sharded_sim.hpp"

#include <algorithm>
#include <bit>

#include "support/logging.hpp"

namespace lpp::cache {

namespace {

/** Empty-way sentinel; matches StackSimulator's initial fill. */
constexpr uint64_t emptyTag = ~0ULL;

} // namespace

ShardedSimChunk::ShardedSimChunk(const ShardedSimConfig &cfg,
                                 uint64_t first_access)
    : config(cfg), firstAccess(first_access)
{
    LPP_REQUIRE(cfg.sets > 0 && std::has_single_bit(cfg.sets),
                "sets must be a power of two, got %u", cfg.sets);
    LPP_REQUIRE(std::has_single_bit(cfg.blockBytes),
                "blockBytes must be a power of two, got %u",
                cfg.blockBytes);
    LPP_REQUIRE(cfg.unitAccesses > 0, "unit size must be positive");
    setShift = static_cast<uint32_t>(std::countr_zero(cfg.blockBytes));
    setMask = cfg.sets - 1;
    setIndexBits = static_cast<uint32_t>(std::countr_zero(cfg.sets));
    firstUnitIndex = first_access / cfg.unitAccesses;
    stacks.assign(static_cast<size_t>(cfg.sets) * simWays, emptyTag);
    distinctInSet.assign(cfg.sets, 0);
}

SegmentLocality &
ShardedSimChunk::unitFor(uint64_t global_access)
{
    size_t rel = static_cast<size_t>(global_access / config.unitAccesses -
                                     firstUnitIndex);
    if (rel >= partials.size())
        partials.resize(rel + 1);
    return partials[rel];
}

void
ShardedSimChunk::onAccess(trace::Addr addr)
{
    uint64_t block = addr >> setShift;
    size_t set = static_cast<size_t>(block & setMask);
    uint64_t tag = block >> setIndexBits;

    SegmentLocality &unit = unitFor(firstAccess + clock);
    ++clock;
    ++unit.accesses;

    uint64_t *stack = &stacks[set * simWays];
    uint32_t depth = simWays;
    for (uint32_t i = 0; i < simWays; ++i) {
        if (stack[i] == tag) {
            depth = i;
            break;
        }
    }

    if (depth == simWays) {
        uint32_t *rank = touchedRank.find(block);
        if (!rank) {
            // Chunk-first touch: misses are resolved in absorb(); the
            // access is counted here, into its exact unit.
            uint32_t r = distinctInSet[set];
            if (r == 0)
                touchedSets.push_back(static_cast<uint32_t>(set));
            touchedRank.insert(block, r);
            ++distinctInSet[set];
            boundaries.push_back(Boundary{
                block, r,
                static_cast<uint32_t>((firstAccess + clock - 1) /
                                          config.unitAccesses -
                                      firstUnitIndex)});
        } else {
            // Touched earlier in the chunk and fell past way 8: at
            // least 8 distinct same-set tags since, all local — an
            // exact miss at every associativity.
            for (uint32_t w = 0; w < simWays; ++w)
                ++unit.misses[w];
        }
    } else {
        // Intra-chunk reuse: the local depth is the true depth (every
        // distinct same-set tag since the last touch is local).
        for (uint32_t w = 0; w < depth; ++w)
            ++unit.misses[w];
    }

    uint32_t move = depth == simWays ? simWays - 1 : depth;
    for (uint32_t j = move; j > 0; --j)
        stack[j] = stack[j - 1];
    stack[0] = tag;
}

ShardedStackSim::ShardedStackSim(const ShardedSimConfig &cfg)
    : config(cfg)
{
    LPP_REQUIRE(cfg.sets > 0 && std::has_single_bit(cfg.sets),
                "sets must be a power of two, got %u", cfg.sets);
    setIndexBits = static_cast<uint32_t>(std::countr_zero(cfg.sets));
    stacks.assign(static_cast<size_t>(cfg.sets) * simWays, emptyTag);
}

void
ShardedStackSim::absorb(ShardedSimChunk &chunk)
{
    // Resolve boundary accesses against the prior per-set state. The
    // per-set rank order equals chunk access order, so walking the
    // boundary list in order is consistent within every set.
    for (const auto &b : chunk.boundaries) {
        size_t set = static_cast<size_t>(b.block & chunk.setMask);
        uint64_t tag = b.block >> setIndexBits;
        const uint64_t *prior = &stacks[set * simWays];

        uint32_t depth = simWays;
        if (b.rank < simWays) {
            uint32_t above = 0;
            for (uint32_t i = 0; i < simWays; ++i) {
                uint64_t q = prior[i];
                if (q == tag) {
                    depth = b.rank + above;
                    break;
                }
                if (q == emptyTag)
                    break;
                // A prior tag counts if it sat above this one and was
                // still untouched when this access ran (tags touched
                // at an earlier rank are already inside b.rank).
                uint64_t qBlock = (q << setIndexBits) |
                                  static_cast<uint64_t>(set);
                uint32_t *qr = chunk.touchedRank.find(qBlock);
                if (!qr || *qr > b.rank)
                    ++above;
            }
        }
        SegmentLocality &unit = chunk.partials[b.unitRel];
        uint32_t missWays = std::min(depth, simWays);
        for (uint32_t w = 0; w < missWays; ++w)
            ++unit.misses[w];
    }

    // Advance each touched set to its merged end state: the chunk's
    // local MRU order first, then the surviving untouched prior tags.
    for (uint32_t set : chunk.touchedSets) {
        const uint64_t *local = &chunk.stacks[set * simWays];
        uint64_t *prior = &stacks[static_cast<size_t>(set) * simWays];
        uint64_t merged[simWays];
        uint32_t filled = 0;
        for (uint32_t i = 0; i < simWays && filled < simWays; ++i) {
            if (local[i] == emptyTag)
                break;
            merged[filled++] = local[i];
        }
        for (uint32_t i = 0; i < simWays && filled < simWays; ++i) {
            uint64_t q = prior[i];
            if (q == emptyTag)
                break;
            uint64_t qBlock = (q << setIndexBits) |
                              static_cast<uint64_t>(set);
            if (!chunk.touchedRank.find(qBlock))
                merged[filled++] = q;
        }
        for (uint32_t i = 0; i < simWays; ++i)
            prior[i] = i < filled ? merged[i] : emptyTag;
    }

    // Fold the chunk's per-unit counters into the totals.
    size_t needed =
        static_cast<size_t>(chunk.firstUnitIndex) + chunk.partials.size();
    if (needed > unitTotals.size())
        unitTotals.resize(needed);
    for (size_t r = 0; r < chunk.partials.size(); ++r)
        unitTotals[chunk.firstUnitIndex + r].merge(chunk.partials[r]);
}

} // namespace lpp::cache
