#include "cache/opt_sim.hpp"

#include <bit>
#include <limits>
#include <unordered_map>

#include "support/logging.hpp"

namespace lpp::cache {

OptSimulator::OptSimulator(CacheConfig cfg_) : cfg(cfg_)
{
    LPP_REQUIRE(cfg.sets > 0 && std::has_single_bit(cfg.sets),
                "sets must be a power of two, got %u", cfg.sets);
    LPP_REQUIRE(cfg.blockBytes > 0 && std::has_single_bit(cfg.blockBytes),
                "blockBytes must be a power of two, got %u",
                cfg.blockBytes);
    LPP_REQUIRE(cfg.ways > 0, "ways must be positive");
}

void
OptSimulator::record(trace::Addr addr)
{
    blocks.push_back(addr / cfg.blockBytes);
}

void
OptSimulator::onAccessBatch(const trace::Addr *addrs, size_t n)
{
    blocks.reserve(blocks.size() + n);
    for (size_t i = 0; i < n; ++i)
        blocks.push_back(addrs[i] / cfg.blockBytes);
}

uint64_t
OptSimulator::simulate() const
{
    constexpr uint64_t never = std::numeric_limits<uint64_t>::max();

    // Pass 1 (backward): next-use index of every access.
    std::vector<uint64_t> next_use(blocks.size());
    std::unordered_map<uint64_t, uint64_t> last_seen;
    for (size_t i = blocks.size(); i-- > 0;) {
        auto it = last_seen.find(blocks[i]);
        next_use[i] = it == last_seen.end() ? never : it->second;
        last_seen[blocks[i]] = i;
    }

    // Pass 2 (forward): per set, evict the line used farthest in the
    // future. Ways are small (<= 8 here), so linear scans suffice.
    struct Line
    {
        uint64_t block = 0;
        uint64_t nextUse = never;
        bool valid = false;
    };
    uint64_t set_mask = cfg.sets - 1;
    std::vector<Line> lines(static_cast<size_t>(cfg.sets) * cfg.ways);

    uint64_t misses = 0;
    for (size_t i = 0; i < blocks.size(); ++i) {
        uint64_t block = blocks[i];
        size_t set = static_cast<size_t>(block & set_mask);
        Line *line = &lines[set * cfg.ways];

        Line *hit = nullptr;
        Line *victim = &line[0];
        for (uint32_t w = 0; w < cfg.ways; ++w) {
            if (line[w].valid && line[w].block == block) {
                hit = &line[w];
                break;
            }
            // Prefer invalid lines; otherwise farthest next use.
            if (!line[w].valid) {
                if (victim->valid)
                    victim = &line[w];
            } else if (victim->valid &&
                       line[w].nextUse > victim->nextUse) {
                victim = &line[w];
            }
        }

        if (hit) {
            hit->nextUse = next_use[i];
        } else {
            ++misses;
            victim->valid = true;
            victim->block = block;
            victim->nextUse = next_use[i];
        }
    }
    lastMisses = misses;
    return misses;
}

uint64_t
optMisses(const std::vector<trace::Addr> &trace, CacheConfig cfg)
{
    OptSimulator sim(cfg);
    for (trace::Addr a : trace)
        sim.record(a);
    return sim.simulate();
}

} // namespace lpp::cache
