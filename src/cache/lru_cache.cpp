#include "cache/lru_cache.hpp"

#include <bit>

#include "support/logging.hpp"

namespace lpp::cache {

LruCache::LruCache(CacheConfig cfg_) : cfg(cfg_)
{
    LPP_REQUIRE(cfg.sets > 0 && std::has_single_bit(cfg.sets),
                "sets must be a power of two, got %u", cfg.sets);
    LPP_REQUIRE(cfg.blockBytes > 0 && std::has_single_bit(cfg.blockBytes),
                "blockBytes must be a power of two, got %u",
                cfg.blockBytes);
    LPP_REQUIRE(cfg.ways > 0, "ways must be positive");
    tags.assign(static_cast<size_t>(cfg.sets) * cfg.ways, emptyTag);
    setShift = static_cast<uint32_t>(std::countr_zero(cfg.blockBytes));
    setMask = cfg.sets - 1;
}

bool
LruCache::access(trace::Addr addr)
{
    ++accessCount;
    uint64_t block = addr >> setShift;
    size_t set = static_cast<size_t>(block & setMask);
    uint64_t tag = block >> std::countr_zero(cfg.sets);

    LPP_DCHECK((set + 1) * cfg.ways <= tags.size(),
               "set %zu outside tag store of %zu lines", set, tags.size());
    uint64_t *line = &tags[set * cfg.ways];
    for (uint32_t i = 0; i < cfg.ways; ++i) {
        if (line[i] == tag) {
            // Move to MRU position.
            for (uint32_t j = i; j > 0; --j)
                line[j] = line[j - 1];
            line[0] = tag;
            return true;
        }
    }

    // Miss: evict LRU, insert at MRU.
    ++missCount;
    for (uint32_t j = cfg.ways - 1; j > 0; --j)
        line[j] = line[j - 1];
    line[0] = tag;
    return false;
}

void
LruCache::onAccess(trace::Addr addr)
{
    access(addr);
}

double
LruCache::missRate() const
{
    return accessCount == 0
               ? 0.0
               : static_cast<double>(missCount) /
                     static_cast<double>(accessCount);
}

void
LruCache::reset()
{
    tags.assign(tags.size(), emptyTag);
    resetCounters();
}

void
LruCache::resetCounters()
{
    accessCount = 0;
    missCount = 0;
}

} // namespace lpp::cache
