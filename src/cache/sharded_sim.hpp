/**
 * @file
 * Sharded Mattson stack simulation: chunk-local passes plus an exact
 * sequential reduction.
 *
 * LRU state splits cleanly at a chunk boundary. For an access whose
 * tag was already touched earlier in the chunk, every distinct
 * same-set block accessed since lies inside the chunk too, so a
 * chunk-local depth-8 stack yields the exact stack depth (or the exact
 * "fell past way 8, miss everywhere" verdict — a local touched-set
 * distinguishes "evicted locally" from "never seen locally"). Only a
 * chunk's first access to a (set, tag) needs cross-chunk state: its
 * true depth is
 *
 *   rank                      — distinct same-set tags already touched
 *                               in this chunk (they are all more recent)
 *   + |{prior-state tags above it, in LRU order, not yet touched in
 *       this chunk}|          — untouched tags keep their prior order
 *
 * or a full miss if the tag is absent from the prior top-simWays
 * state. The reduction applies chunks in order: it resolves each
 * chunk's boundary accesses against the running per-set stacks, folds
 * the chunk's per-unit counters in, and advances each touched set to
 * its merged end state (chunk-local MRU order first, then surviving
 * untouched prior tags). Every count is an exact integer equal to the
 * serial StackSimulator's, so per-unit miss counters are bit-identical
 * by construction.
 *
 * Unit attribution (fixed-length intervals of the profile) is by
 * global access index, which each chunk knows from its range — no
 * global coordination needed during the parallel pass.
 */

#ifndef LPP_CACHE_SHARDED_SIM_HPP
#define LPP_CACHE_SHARDED_SIM_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cache/stack_sim.hpp"
#include "support/flat_map.hpp"
#include "trace/types.hpp"

namespace lpp::cache {

/** Geometry and interval length shared by every chunk of one sweep. */
struct ShardedSimConfig
{
    uint32_t sets = 512;      //!< power of two (paper geometry)
    uint32_t blockBytes = 64; //!< power of two (paper geometry)
    uint64_t unitAccesses = 0; //!< interval length in accesses (> 0)
};

/**
 * Chunk-local pass. Feed it the chunk's accesses in order (parallel
 * across chunks), then hand it to ShardedStackSim::absorb in chunk
 * order.
 */
class ShardedSimChunk
{
  public:
    /** @param first_access global index of the chunk's first access. */
    ShardedSimChunk(const ShardedSimConfig &cfg, uint64_t first_access);

    void onAccess(trace::Addr addr);

    void
    onAccessBatch(const trace::Addr *addrs, size_t n)
    {
        for (size_t i = 0; i < n; ++i)
            onAccess(addrs[i]);
    }

    /** @return accesses processed so far (chunk-local clock). */
    uint64_t accessCount() const { return clock; }

    /** @return global unit index of the chunk's first unit. */
    uint64_t firstUnit() const { return firstUnitIndex; }

  private:
    friend class ShardedStackSim;

    /** One unresolved chunk-first access to a (set, tag). */
    struct Boundary
    {
        uint64_t block;   //!< set and tag, recoverable from geometry
        uint32_t rank;    //!< distinct same-set tags touched before it
        uint32_t unitRel; //!< unit index relative to firstUnit()
    };

    SegmentLocality &unitFor(uint64_t global_access);

    ShardedSimConfig config;
    uint32_t setShift = 0;
    uint64_t setMask = 0;
    uint32_t setIndexBits = 0;

    uint64_t firstAccess = 0;
    uint64_t firstUnitIndex = 0;
    uint64_t clock = 0;

    std::vector<uint64_t> stacks;            //!< sets × simWays, MRU first
    support::FlatMap<uint32_t> touchedRank;  //!< block -> first-touch rank
    std::vector<uint32_t> distinctInSet;     //!< per-set rank counters
    std::vector<uint32_t> touchedSets;       //!< sets with any access
    std::vector<Boundary> boundaries;        //!< in chunk access order
    std::vector<SegmentLocality> partials;   //!< per unit, from firstUnit
};

/**
 * The sequential reduction: owns the running per-set stacks and the
 * per-unit totals. absorb() chunks strictly in trace order; units()
 * afterwards equals the serial IntervalDriver's segment list.
 */
class ShardedStackSim
{
  public:
    explicit ShardedStackSim(const ShardedSimConfig &cfg);

    /** Resolve and fold one chunk; chunks must arrive in order. */
    void absorb(ShardedSimChunk &chunk);

    /** @return per-unit locality, in unit order. */
    const std::vector<SegmentLocality> &units() const
    {
        return unitTotals;
    }

  private:
    ShardedSimConfig config;
    uint32_t setIndexBits = 0;
    std::vector<uint64_t> stacks; //!< sets × simWays, MRU first
    std::vector<SegmentLocality> unitTotals;
};

} // namespace lpp::cache

#endif // LPP_CACHE_SHARDED_SIM_HPP
