/**
 * @file
 * Mattson stack simulation of all associativities at once.
 *
 * LRU satisfies the stack inclusion property per set: the content of an
 * a-way set is a prefix of the content of an (a+1)-way set. Keeping one
 * LRU stack of depth maxWays per set therefore yields, in a single pass,
 * the miss count of every associativity 1..maxWays — the role Cheetah
 * played in the paper (Sugumar & Abraham). With 512 sets and 64-byte
 * blocks, ways 1..8 correspond to the paper's 32 KB..256 KB cache sweep.
 */

#ifndef LPP_CACHE_STACK_SIM_HPP
#define LPP_CACHE_STACK_SIM_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "trace/sink.hpp"
#include "trace/types.hpp"

namespace lpp::cache {

/** Number of associativities (and cache sizes) simulated together. */
constexpr uint32_t simWays = 8;

/** Locality of one execution segment: misses for every associativity. */
struct SegmentLocality
{
    uint64_t accesses = 0;              //!< accesses in the segment
    std::array<uint64_t, simWays> misses{}; //!< misses at ways 1..8

    /** @return miss rate at associativity `ways` (1-based). */
    double
    missRate(uint32_t ways) const
    {
        return accesses == 0
                   ? 0.0
                   : static_cast<double>(misses[ways - 1]) /
                         static_cast<double>(accesses);
    }

    /** @return the 8-point locality vector (miss rates, 32KB..256KB). */
    std::vector<double> missRateVector() const;

    /** Accumulate another segment. */
    void merge(const SegmentLocality &other);
};

/**
 * One-pass multi-associativity LRU simulator with segment support.
 * markSegment() closes the running segment (cache state stays warm, as
 * a real machine's cache would across a phase boundary).
 */
class StackSimulator : public trace::TraceSink
{
  public:
    /**
     * @param sets number of sets (power of two; 512 = paper geometry)
     * @param block_bytes line size (64 = paper geometry)
     */
    explicit StackSimulator(uint32_t sets = 512,
                            uint32_t block_bytes = 64);

    void onAccess(trace::Addr addr) override;
    void onAccessBatch(const trace::Addr *addrs, size_t n) override;

    /** Close the current segment and start the next. */
    void markSegment();

    void
    onEnd() override
    {
        if (current.accesses > 0)
            markSegment();
    }

    /** @return per-segment locality, in execution order. */
    const std::vector<SegmentLocality> &segments() const
    {
        return segmentList;
    }

    /** @return whole-run locality (all segments + the open one). */
    SegmentLocality total() const;

    /** @return cache capacity in KiB at associativity `ways`. */
    double
    capacityKB(uint32_t ways) const
    {
        return static_cast<double>(sets) * blockBytes * ways / 1024.0;
    }

  private:
    uint32_t sets;
    uint32_t blockBytes;
    uint32_t setShift;
    uint64_t setMask;
    uint32_t setIndexBits;
    std::vector<uint64_t> stacks; //!< sets x simWays, MRU first

    SegmentLocality current;
    SegmentLocality running;
    std::vector<SegmentLocality> segmentList;
};

} // namespace lpp::cache

#endif // LPP_CACHE_STACK_SIM_HPP
