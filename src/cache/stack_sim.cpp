#include "cache/stack_sim.hpp"

#include <bit>

#include "support/logging.hpp"

namespace lpp::cache {

std::vector<double>
SegmentLocality::missRateVector() const
{
    std::vector<double> v(simWays);
    for (uint32_t w = 1; w <= simWays; ++w)
        v[w - 1] = missRate(w);
    return v;
}

void
SegmentLocality::merge(const SegmentLocality &other)
{
    accesses += other.accesses;
    for (uint32_t i = 0; i < simWays; ++i)
        misses[i] += other.misses[i];
}

StackSimulator::StackSimulator(uint32_t sets_, uint32_t block_bytes)
    : sets(sets_), blockBytes(block_bytes)
{
    LPP_REQUIRE(sets > 0 && std::has_single_bit(sets),
                "sets must be a power of two, got %u", sets);
    LPP_REQUIRE(std::has_single_bit(blockBytes),
                "blockBytes must be a power of two, got %u", blockBytes);
    setShift = static_cast<uint32_t>(std::countr_zero(blockBytes));
    setMask = sets - 1;
    setIndexBits = static_cast<uint32_t>(std::countr_zero(sets));
    stacks.assign(static_cast<size_t>(sets) * simWays, ~0ULL);
}

void
StackSimulator::onAccessBatch(const trace::Addr *addrs, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        StackSimulator::onAccess(addrs[i]);
}

void
StackSimulator::onAccess(trace::Addr addr)
{
    uint64_t block = addr >> setShift;
    size_t set = static_cast<size_t>(block & setMask);
    uint64_t tag = block >> setIndexBits;

    LPP_DCHECK((set + 1) * simWays <= stacks.size(),
               "set %zu outside stack store of %zu entries", set,
               stacks.size());
    uint64_t *stack = &stacks[set * simWays];
    uint32_t depth = simWays; // not found: miss at every associativity
    for (uint32_t i = 0; i < simWays; ++i) {
        if (stack[i] == tag) {
            depth = i;
            break;
        }
    }

    // Stack inclusion: an access at depth d hits caches with ways > d
    // and misses all ways <= d.
    ++current.accesses;
    for (uint32_t w = 0; w < depth && w < simWays; ++w)
        ++current.misses[w];

    // Move to MRU.
    uint32_t move = depth == simWays ? simWays - 1 : depth;
    for (uint32_t j = move; j > 0; --j)
        stack[j] = stack[j - 1];
    stack[0] = tag;
}

void
StackSimulator::markSegment()
{
    running.merge(current);
    segmentList.push_back(current);
    current = SegmentLocality{};
}

SegmentLocality
StackSimulator::total() const
{
    SegmentLocality t = running;
    t.merge(current);
    return t;
}

} // namespace lpp::cache
