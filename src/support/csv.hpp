/**
 * @file
 * Minimal CSV emission for benchmark/figure data series.
 */

#ifndef LPP_SUPPORT_CSV_HPP
#define LPP_SUPPORT_CSV_HPP

#include <fstream>
#include <string>
#include <vector>

namespace lpp {

/**
 * Writes one CSV file. Values are escaped per RFC 4180 when they contain
 * commas, quotes, or newlines. The destination directory is created on
 * demand so benches can write to bench_out/ unconditionally.
 */
class CsvWriter
{
  public:
    /**
     * Open `path` for writing, creating parent directories.
     * @param path destination file
     * @param header column names written as the first row (may be empty)
     */
    CsvWriter(const std::string &path,
              const std::vector<std::string> &header);

    /** Append one row of string cells. */
    void row(const std::vector<std::string> &cells);

    /** Append one row of doubles (formatted with %.6g). */
    void rowNumeric(const std::vector<double> &cells);

    /** @return whether the file opened successfully. */
    bool ok() const { return static_cast<bool>(out); }

    /** @return the path the writer was opened with. */
    const std::string &path() const { return filePath; }

  private:
    static std::string escape(const std::string &cell);

    std::string filePath;
    std::ofstream out;
};

} // namespace lpp

#endif // LPP_SUPPORT_CSV_HPP
