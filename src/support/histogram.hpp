/**
 * @file
 * Logarithmically binned histogram for reuse distances.
 *
 * Reuse distances span many orders of magnitude, so the paper and its
 * predecessors (Ding & Zhong, PLDI'03) summarize them in log-scale bins.
 * The histogram doubles as a locality signature: two phase executions with
 * close histograms have close miss-rate curves on fully-associative LRU
 * caches of every size (Mattson et al., 1970).
 */

#ifndef LPP_SUPPORT_HISTOGRAM_HPP
#define LPP_SUPPORT_HISTOGRAM_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lpp {

/**
 * Log2-binned histogram over unsigned 64-bit values with a dedicated bin
 * for "infinite" entries (cold misses / first accesses).
 *
 * Bin b (b >= 1) holds values in [2^(b-1), 2^b); bin 0 holds value 0.
 */
class LogHistogram
{
  public:
    /** Sentinel recorded for first accesses (no finite reuse distance). */
    static constexpr uint64_t infinite = ~0ULL;

    /** Add one value (may be `infinite`). */
    void add(uint64_t value);

    /** Add `count` occurrences of a value. */
    void add(uint64_t value, uint64_t count);

    /** Merge another histogram into this one. */
    void merge(const LogHistogram &other);

    /** @return total number of recorded values, including infinite. */
    uint64_t total() const { return finiteCount + infCount; }

    /** @return the number of infinite (cold) entries. */
    uint64_t infiniteCount() const { return infCount; }

    /** @return the number of finite entries. */
    uint64_t totalFinite() const { return finiteCount; }

    /** @return count of values >= threshold, counting infinite entries. */
    uint64_t countAtLeast(uint64_t threshold) const;

    /**
     * Miss rate of a fully-associative LRU cache holding `capacity`
     * elements: the fraction of accesses whose reuse distance is >=
     * capacity (cold accesses always miss).
     *
     * Bin granularity makes this approximate within one power of two;
     * exact per-access counting is available via countAtLeast on
     * unbinned data recorded elsewhere.
     */
    double missRate(uint64_t capacity) const;

    /** @return mean of finite values using bin geometric midpoints. */
    double meanFinite() const;

    /** @return number of bins currently in use. */
    size_t binCount() const { return bins.size(); }

    /** @return raw count in bin index b (0 when out of range). */
    uint64_t binValue(size_t b) const;

    /** @return lower bound of bin b. */
    static uint64_t binLow(size_t b);

    /** @return exclusive upper bound of bin b. */
    static uint64_t binHigh(size_t b);

    /** @return the bin index a value falls into. */
    static size_t binIndex(uint64_t value);

    /**
     * Normalized Manhattan distance between two histograms viewed as
     * probability distributions over (bins + infinite); in [0, 2].
     * Used as the phase-signature similarity metric.
     */
    double distance(const LogHistogram &other) const;

    /** Reset to empty. */
    void clear();

  private:
    std::vector<uint64_t> bins;
    uint64_t finiteCount = 0;
    uint64_t infCount = 0;
};

} // namespace lpp

#endif // LPP_SUPPORT_HISTOGRAM_HPP
