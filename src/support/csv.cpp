#include "support/csv.hpp"

#include <cstdio>
#include <filesystem>

#include "support/logging.hpp"

namespace lpp {

CsvWriter::CsvWriter(const std::string &path,
                     const std::vector<std::string> &header)
    : filePath(path)
{
    std::filesystem::path p(path);
    if (p.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(p.parent_path(), ec);
        if (ec)
            warn("cannot create directory %s: %s",
                 p.parent_path().c_str(), ec.message().c_str());
    }
    out.open(path);
    if (!out) {
        warn("cannot open %s for writing", path.c_str());
        return;
    }
    if (!header.empty())
        row(header);
}

void
CsvWriter::row(const std::vector<std::string> &cells)
{
    if (!out)
        return;
    for (size_t i = 0; i < cells.size(); ++i) {
        if (i)
            out << ',';
        out << escape(cells[i]);
    }
    out << '\n';
}

void
CsvWriter::rowNumeric(const std::vector<double> &cells)
{
    std::vector<std::string> strs;
    strs.reserve(cells.size());
    char buf[64];
    for (double v : cells) {
        std::snprintf(buf, sizeof(buf), "%.6g", v);
        strs.emplace_back(buf);
    }
    row(strs);
}

std::string
CsvWriter::escape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string quoted = "\"";
    for (char c : cell) {
        if (c == '"')
            quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

} // namespace lpp
