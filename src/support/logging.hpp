/**
 * @file
 * Error reporting and status messages.
 *
 * Follows the gem5 convention: panic() for internal invariant violations
 * (library bugs), fatal() for unrecoverable user errors (bad configuration,
 * invalid arguments), warn()/inform() for non-fatal status.
 */

#ifndef LPP_SUPPORT_LOGGING_HPP
#define LPP_SUPPORT_LOGGING_HPP

#include <cstdarg>
#include <string>

namespace lpp {

/**
 * Print a formatted message and abort. Call when an internal invariant is
 * violated — something that should never happen regardless of user input.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Print a formatted message and exit(1). Call when the library cannot
 * continue because of a user error (bad configuration, invalid argument).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning about questionable but survivable conditions. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Enable or disable inform() output (warnings are always printed). */
void setVerbose(bool verbose);

/** @return whether inform() output is currently enabled. */
bool isVerbose();

} // namespace lpp

/**
 * Assert-like macro that survives NDEBUG builds. Use for invariants whose
 * violation means the analysis result would be silently wrong: validating
 * user-supplied configuration and inputs, and cross-module contracts that
 * are cheap relative to the work they guard. Not for per-access/per-element
 * hot loops — use LPP_DCHECK there.
 */
#define LPP_REQUIRE(cond, fmt, ...)                                         \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::lpp::panic("requirement (%s) failed at %s:%d: " fmt, #cond,   \
                         __FILE__, __LINE__, ##__VA_ARGS__);                \
        }                                                                   \
    } while (0)

/**
 * Debug-only invariant check, compiled out under NDEBUG. Use on per-access
 * and per-element hot paths (reuse stack, cache simulators, flat map) where
 * an always-on LPP_REQUIRE would tax release throughput. The condition is
 * not evaluated in release builds; it must be side-effect free. Defining
 * LPP_FORCE_DCHECKS (CMake option LPP_DCHECKS, on in the sanitizer
 * presets) re-enables the checks in NDEBUG builds so the sanitizer matrix
 * exercises them.
 */
#if defined(NDEBUG) && !defined(LPP_FORCE_DCHECKS)
#define LPP_DCHECK(cond, fmt, ...)                                          \
    do {                                                                    \
        (void)sizeof(!(cond));                                              \
    } while (0)
#else
#define LPP_DCHECK(cond, fmt, ...) LPP_REQUIRE(cond, fmt, ##__VA_ARGS__)
#endif

#endif // LPP_SUPPORT_LOGGING_HPP
