#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/logging.hpp"

namespace lpp {

void
RunningStats::push(double x)
{
    ++n;
    total += x;
    double delta = x - m;
    m += delta / static_cast<double>(n);
    m2 += delta * (x - m);
    minVal = std::min(minVal, x);
    maxVal = std::max(maxVal, x);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        *this = other;
        return;
    }
    double delta = other.m - m;
    size_t total_n = n + other.n;
    double na = static_cast<double>(n);
    double nb = static_cast<double>(other.n);
    m += delta * nb / (na + nb);
    m2 += other.m2 + delta * delta * na * nb / (na + nb);
    n = total_n;
    total += other.total;
    minVal = std::min(minVal, other.minVal);
    maxVal = std::max(maxVal, other.maxVal);
}

double
RunningStats::mean() const
{
    return n == 0 ? 0.0 : m;
}

double
RunningStats::variance() const
{
    return n < 2 ? 0.0 : m2 / static_cast<double>(n);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

void
VectorStats::push(const std::vector<double> &v)
{
    LPP_REQUIRE(v.size() == comps.size(),
                "vector dimension mismatch: %zu vs %zu",
                v.size(), comps.size());
    for (size_t i = 0; i < v.size(); ++i)
        comps[i].push(v[i]);
}

size_t
VectorStats::count() const
{
    return comps.empty() ? 0 : comps.front().count();
}

std::vector<double>
VectorStats::mean() const
{
    std::vector<double> out(comps.size());
    for (size_t i = 0; i < comps.size(); ++i)
        out[i] = comps[i].mean();
    return out;
}

std::vector<double>
VectorStats::stddev() const
{
    std::vector<double> out(comps.size());
    for (size_t i = 0; i < comps.size(); ++i)
        out[i] = comps[i].stddev();
    return out;
}

double
VectorStats::averageStddev() const
{
    if (comps.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &c : comps)
        sum += c.stddev();
    return sum / static_cast<double>(comps.size());
}

double
quantile(std::vector<double> values, double p)
{
    if (values.empty())
        return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    std::sort(values.begin(), values.end());
    double idx = p * static_cast<double>(values.size() - 1);
    size_t lo = static_cast<size_t>(idx);
    size_t hi = std::min(lo + 1, values.size() - 1);
    double frac = idx - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

} // namespace lpp
