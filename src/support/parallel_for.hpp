/**
 * @file
 * Caller-participating parallel index loop over a ThreadPool.
 *
 * parallelFor(pool, n, fn) runs fn(0..n-1) with the caller claiming
 * iterations alongside the pool's workers from a shared atomic index.
 * Because the caller is itself a claimant, the loop makes progress even
 * when every pool worker is busy with other work — in particular it is
 * safe (deadlock-free) to call from inside a pool worker, which is what
 * lets workload-level parallelism (one job per workload) nest chunk-level
 * parallelism (one iteration per trace shard) over the same pool.
 *
 * Helper jobs left in the queue after the loop completes are benign:
 * they find the index exhausted and return without touching caller
 * state beyond the shared control block they co-own.
 *
 * Iterations must be independent; merging results in a deterministic
 * (index) order is the caller's job. If iterations throw, the exception
 * from the lowest-numbered failing iteration is rethrown in the caller
 * after all claimed iterations finish — deterministic regardless of
 * which thread observed the failure first. Iterations not yet claimed
 * when a failure is recorded are skipped (claimed but not executed).
 */

#ifndef LPP_SUPPORT_PARALLEL_FOR_HPP
#define LPP_SUPPORT_PARALLEL_FOR_HPP

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <type_traits>
#include <vector>

#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"
#include "support/thread_pool.hpp"

namespace lpp::support {

namespace detail {

/** Shared control block co-owned by the caller and its helper jobs. */
struct ParallelForState
{
    std::atomic<size_t> next{0}; //!< next unclaimed iteration
    std::atomic<size_t> done{0}; //!< finished (or skipped) iterations
    std::atomic<bool> failed{false};
    size_t n = 0;
    void (*invoke)(void *, size_t) = nullptr;
    void *ctx = nullptr; //!< caller-owned fn; valid while done < n

    Mutex mtx;
    std::condition_variable_any cv;
    std::exception_ptr error LPP_GUARDED_BY(mtx);
    size_t errorIndex LPP_GUARDED_BY(mtx) = 0;
};

/** Claim-and-run loop shared by the caller and every helper job. */
inline void
parallelForDrain(ParallelForState &s)
{
    for (;;) {
        size_t i = s.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= s.n)
            return;
        if (!s.failed.load(std::memory_order_acquire)) {
            try {
                s.invoke(s.ctx, i);
            } catch (...) {
                MutexLock lock(s.mtx);
                if (!s.error || i < s.errorIndex) {
                    s.error = std::current_exception();
                    s.errorIndex = i;
                }
                s.failed.store(true, std::memory_order_release);
            }
        }
        if (s.done.fetch_add(1, std::memory_order_acq_rel) + 1 == s.n) {
            // Taking the lock orders the notify after the caller's
            // done-check, so the wakeup cannot be lost.
            MutexLock lock(s.mtx);
            s.cv.notify_all();
        }
    }
}

} // namespace detail

/**
 * Run fn(i) for i in [0, n) using the pool's workers plus the calling
 * thread. Blocks until every iteration has finished. See the file
 * comment for the nesting, exception, and determinism contract.
 */
template <typename Fn>
void
parallelFor(ThreadPool &pool, size_t n, Fn &&fn)
{
    if (n == 0)
        return;
    // With no helper available (single-thread pool) or a single
    // iteration, the caller alone is the whole loop: run in place with
    // no shared state, no atomics, no queue traffic.
    size_t helpers = std::min(pool.threadCount(), n - 1);
    if (helpers == 0 || pool.threadCount() <= 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    auto state = std::make_shared<detail::ParallelForState>();
    state->n = n;
    state->ctx = const_cast<void *>(static_cast<const void *>(&fn));
    state->invoke = [](void *ctx, size_t i) {
        (*static_cast<std::remove_reference_t<Fn> *>(ctx))(i);
    };

    std::vector<std::function<void()>> jobs;
    jobs.reserve(helpers);
    for (size_t h = 0; h < helpers; ++h)
        jobs.emplace_back([state] { detail::parallelForDrain(*state); });
    pool.submitBatch(std::move(jobs));

    detail::parallelForDrain(*state);

    std::exception_ptr error;
    {
        MutexLock lock(state->mtx);
        while (state->done.load(std::memory_order_acquire) < n)
            state->cv.wait(state->mtx);
        error = state->error;
    }
    if (error)
        std::rethrow_exception(error);
}

} // namespace lpp::support

#endif // LPP_SUPPORT_PARALLEL_FOR_HPP
