/**
 * @file
 * Streaming statistics helpers.
 */

#ifndef LPP_SUPPORT_STATS_HPP
#define LPP_SUPPORT_STATS_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lpp {

/**
 * Welford's online algorithm for mean and variance. Numerically stable for
 * long streams; supports merging partial results.
 */
class RunningStats
{
  public:
    /** Add one observation. */
    void push(double x);

    /** Merge another accumulator into this one. */
    void merge(const RunningStats &other);

    /** @return the number of observations. */
    size_t count() const { return n; }

    /** @return the sample mean (0 when empty). */
    double mean() const;

    /** @return the population variance (0 with fewer than 2 samples). */
    double variance() const;

    /** @return the population standard deviation. */
    double stddev() const;

    /** @return the smallest observation (+inf when empty). */
    double min() const { return minVal; }

    /** @return the largest observation (-inf when empty). */
    double max() const { return maxVal; }

    /** @return the sum of all observations. */
    double sum() const { return total; }

  private:
    size_t n = 0;
    double m = 0.0;
    double m2 = 0.0;
    double total = 0.0;
    double minVal = 1.0 / 0.0;
    double maxVal = -1.0 / 0.0;
};

/**
 * Statistics over a fixed-dimension vector stream: per-component mean and
 * standard deviation, plus the averaged component std-dev that Table 4 of
 * the paper reports for 8-point locality vectors.
 */
class VectorStats
{
  public:
    /** @param dim number of vector components. */
    explicit VectorStats(size_t dim) : comps(dim) {}

    /** Add one observation vector; v.size() must equal dim. */
    void push(const std::vector<double> &v);

    /** @return number of vectors observed. */
    size_t count() const;

    /** @return dimensionality. */
    size_t dim() const { return comps.size(); }

    /** @return the per-component means. */
    std::vector<double> mean() const;

    /** @return the per-component standard deviations. */
    std::vector<double> stddev() const;

    /**
     * @return the mean of the per-component standard deviations — the
     * scalar "standard deviation of the locality vector" used in Table 4.
     */
    double averageStddev() const;

  private:
    std::vector<RunningStats> comps;
};

/** @return the p-quantile (0 <= p <= 1) of values; empty input returns 0. */
double quantile(std::vector<double> values, double p);

} // namespace lpp

#endif // LPP_SUPPORT_STATS_HPP
