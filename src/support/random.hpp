/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component in the library (workload generators, the BBV
 * random projection, the OS-noise model) draws from these generators so
 * that runs are reproducible from a single seed. std::mt19937 is avoided
 * because its state is large and its distributions are not guaranteed to be
 * identical across standard-library implementations.
 */

#ifndef LPP_SUPPORT_RANDOM_HPP
#define LPP_SUPPORT_RANDOM_HPP

#include <cmath>
#include <cstdint>

namespace lpp {

/**
 * SplitMix64: tiny, statistically solid generator, used both directly and
 * to seed Xoshiro256StarStar.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(uint64_t seed) : state(seed) {}

    /** @return the next 64 pseudo-random bits. */
    uint64_t
    next()
    {
        uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    uint64_t state;
};

/**
 * Xoshiro256** by Blackman and Vigna: the library's general-purpose
 * generator. Passes BigCrush; 2^256 - 1 period.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed)
    {
        SplitMix64 sm(seed);
        for (auto &word : s)
            word = sm.next();
    }

    /** @return the next 64 pseudo-random bits. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(s[1] * 5, 7) * 9;
        const uint64_t t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        return result;
    }

    /** @return a uniform integer in [0, bound); bound must be non-zero. */
    uint64_t
    below(uint64_t bound)
    {
        // Lemire's nearly-divisionless rejection method.
        uint64_t x = next();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        auto lo = static_cast<uint64_t>(m);
        if (lo < bound) {
            uint64_t threshold = (0 - bound) % bound;
            while (lo < threshold) {
                x = next();
                m = static_cast<__uint128_t>(x) * bound;
                lo = static_cast<uint64_t>(m);
            }
        }
        return static_cast<uint64_t>(m >> 64);
    }

    /** @return a uniform integer in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(
            below(static_cast<uint64_t>(hi - lo + 1)));
    }

    /** @return a uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** @return a standard normal deviate (Marsaglia polar method). */
    double
    gaussian()
    {
        if (hasSpare) {
            hasSpare = false;
            return spare;
        }
        double u, v, r2;
        do {
            u = 2.0 * uniform() - 1.0;
            v = 2.0 * uniform() - 1.0;
            r2 = u * u + v * v;
        } while (r2 >= 1.0 || r2 == 0.0);
        double scale = std::sqrt(-2.0 * std::log(r2) / r2);
        spare = v * scale;
        hasSpare = true;
        return u * scale;
    }

    /** @return true with probability p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t s[4];
    bool hasSpare = false;
    double spare = 0.0;
};

} // namespace lpp

#endif // LPP_SUPPORT_RANDOM_HPP
