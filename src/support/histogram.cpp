#include "support/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace lpp {

size_t
LogHistogram::binIndex(uint64_t value)
{
    if (value == 0)
        return 0;
    return static_cast<size_t>(64 - std::countl_zero(value));
}

uint64_t
LogHistogram::binLow(size_t b)
{
    return b == 0 ? 0 : (1ULL << (b - 1));
}

uint64_t
LogHistogram::binHigh(size_t b)
{
    return b == 0 ? 1 : (1ULL << b);
}

void
LogHistogram::add(uint64_t value)
{
    add(value, 1);
}

void
LogHistogram::add(uint64_t value, uint64_t count)
{
    if (count == 0)
        return;
    if (value == infinite) {
        infCount += count;
        return;
    }
    size_t b = binIndex(value);
    if (b >= bins.size())
        bins.resize(b + 1, 0);
    bins[b] += count;
    finiteCount += count;
}

void
LogHistogram::merge(const LogHistogram &other)
{
    if (other.bins.size() > bins.size())
        bins.resize(other.bins.size(), 0);
    for (size_t i = 0; i < other.bins.size(); ++i)
        bins[i] += other.bins[i];
    finiteCount += other.finiteCount;
    infCount += other.infCount;
}

uint64_t
LogHistogram::countAtLeast(uint64_t threshold) const
{
    uint64_t count = infCount;
    size_t first_full = binIndex(threshold);
    for (size_t b = first_full; b < bins.size(); ++b) {
        if (binLow(b) >= threshold) {
            count += bins[b];
        } else {
            // Straddling bin: assume uniform occupancy inside the bin.
            uint64_t lo = binLow(b);
            uint64_t hi = binHigh(b);
            double frac = static_cast<double>(hi - threshold) /
                          static_cast<double>(hi - lo);
            count += static_cast<uint64_t>(
                std::llround(frac * static_cast<double>(bins[b])));
        }
    }
    return count;
}

double
LogHistogram::missRate(uint64_t capacity) const
{
    uint64_t all = total();
    if (all == 0)
        return 0.0;
    return static_cast<double>(countAtLeast(capacity)) /
           static_cast<double>(all);
}

double
LogHistogram::meanFinite() const
{
    if (finiteCount == 0)
        return 0.0;
    double sum = 0.0;
    for (size_t b = 0; b < bins.size(); ++b) {
        if (bins[b] == 0)
            continue;
        double mid = b == 0
            ? 0.0
            : std::sqrt(static_cast<double>(binLow(b)) *
                        static_cast<double>(binHigh(b) - 1));
        sum += mid * static_cast<double>(bins[b]);
    }
    return sum / static_cast<double>(finiteCount);
}

uint64_t
LogHistogram::binValue(size_t b) const
{
    return b < bins.size() ? bins[b] : 0;
}

double
LogHistogram::distance(const LogHistogram &other) const
{
    uint64_t ta = total();
    uint64_t tb = other.total();
    if (ta == 0 && tb == 0)
        return 0.0;
    if (ta == 0 || tb == 0)
        return 2.0;
    double da = static_cast<double>(ta);
    double db = static_cast<double>(tb);
    size_t nb = std::max(bins.size(), other.bins.size());
    double dist = 0.0;
    for (size_t b = 0; b < nb; ++b) {
        double pa = static_cast<double>(binValue(b)) / da;
        double pb = static_cast<double>(other.binValue(b)) / db;
        dist += std::abs(pa - pb);
    }
    dist += std::abs(static_cast<double>(infCount) / da -
                     static_cast<double>(other.infCount) / db);
    return dist;
}

void
LogHistogram::clear()
{
    bins.clear();
    finiteCount = 0;
    infCount = 0;
}

} // namespace lpp
