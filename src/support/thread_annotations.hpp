/**
 * @file
 * Clang thread-safety-analysis capability macros.
 *
 * These wrap the clang `-Wthread-safety` attributes so shared state can
 * declare, in the type system, which lock protects it and which lock a
 * function needs. Under clang the annotations are enforced at compile
 * time (tools/check.sh builds with -Wthread-safety -Werror when clang
 * is available); under other compilers they expand to nothing, so they
 * are pure documentation with zero cost. Use them with the annotated
 * support::Mutex (mutex.hpp) — a raw std::mutex carries no capability,
 * so the analysis cannot see it being locked.
 */

#ifndef LPP_SUPPORT_THREAD_ANNOTATIONS_HPP
#define LPP_SUPPORT_THREAD_ANNOTATIONS_HPP

#if defined(__clang__)
#define LPP_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define LPP_THREAD_ANNOTATION(x)
#endif

/** Marks a type as a lockable capability (e.g. a mutex class). */
#define LPP_CAPABILITY(x) LPP_THREAD_ANNOTATION(capability(x))

/** Marks an RAII type that acquires in its ctor, releases in its dtor. */
#define LPP_SCOPED_CAPABILITY LPP_THREAD_ANNOTATION(scoped_lockable)

/** Data member readable/writable only while holding `x`. */
#define LPP_GUARDED_BY(x) LPP_THREAD_ANNOTATION(guarded_by(x))

/** Pointer member whose pointee is protected by `x`. */
#define LPP_PT_GUARDED_BY(x) LPP_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function callable only while holding the listed capabilities. */
#define LPP_REQUIRES(...) \
    LPP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function callable only while NOT holding the listed capabilities. */
#define LPP_EXCLUDES(...) LPP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Function acquires the listed capabilities and does not release them. */
#define LPP_ACQUIRE(...) \
    LPP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function releases the listed capabilities. */
#define LPP_RELEASE(...) \
    LPP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function conditionally acquires; `b` is the success return value. */
#define LPP_TRY_ACQUIRE(b, ...) \
    LPP_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))

/** Function returns a reference to the capability guarding it. */
#define LPP_RETURN_CAPABILITY(x) LPP_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch: suppress the analysis for one function. */
#define LPP_NO_THREAD_SAFETY_ANALYSIS \
    LPP_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif // LPP_SUPPORT_THREAD_ANNOTATIONS_HPP
