#include "support/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <utility>

namespace lpp::support {

namespace {

uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

ThreadPool::ThreadPool(size_t threads)
{
    if (threads == 0)
        threads = configuredThreads();
    slots = std::make_unique<WorkerSlot[]>(threads);
    workers.reserve(threads);
    for (size_t i = 0; i < threads; ++i)
        workers.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mtx);
        stopping = true;
    }
    cv.notify_all();
    for (auto &w : workers)
        w.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        MutexLock lock(mtx);
        queue.push_back(std::move(job));
    }
    cv.notify_one();
}

void
ThreadPool::submitBatch(std::vector<std::function<void()>> jobs)
{
    if (jobs.empty())
        return;
    {
        MutexLock lock(mtx);
        for (auto &job : jobs)
            queue.push_back(std::move(job));
    }
    cv.notify_all();
}

bool
ThreadPool::onWorkerThread() const
{
    auto self = std::this_thread::get_id();
    return std::any_of(workers.begin(), workers.end(),
                       [self](const std::thread &w) {
                           return w.get_id() == self;
                       });
}

std::vector<ThreadPool::WorkerStats>
ThreadPool::workerStats() const
{
    std::vector<WorkerStats> out(workers.size());
    for (size_t i = 0; i < workers.size(); ++i) {
        out[i].tasks = slots[i].tasks.load(std::memory_order_relaxed);
        out[i].busyNs = slots[i].busyNs.load(std::memory_order_relaxed);
    }
    return out;
}

void
ThreadPool::resetWorkerStats()
{
    for (size_t i = 0; i < workers.size(); ++i) {
        slots[i].tasks.store(0, std::memory_order_relaxed);
        slots[i].busyNs.store(0, std::memory_order_relaxed);
    }
}

void
ThreadPool::workerLoop(size_t index)
{
    WorkerSlot &slot = slots[index];
    for (;;) {
        std::function<void()> job;
        {
            MutexLock lock(mtx);
            while (!stopping && queue.empty())
                cv.wait(mtx);
            if (queue.empty())
                return; // stopping and drained
            job = std::move(queue.front());
            queue.pop_front();
        }
        uint64_t start = nowNs();
        job();
        slot.busyNs.fetch_add(nowNs() - start, std::memory_order_relaxed);
        slot.tasks.fetch_add(1, std::memory_order_relaxed);
    }
}

size_t
ThreadPool::configuredThreads()
{
    if (const char *env = std::getenv("LPP_THREADS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return std::min(static_cast<size_t>(v), maxConfiguredThreads);
    }
    // Unset, empty, "0", negative, or unparsable: size to the machine.
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool &
ThreadPool::shared()
{
    static ThreadPool pool;
    return pool;
}

} // namespace lpp::support
