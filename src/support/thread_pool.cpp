#include "support/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <utility>

namespace lpp::support {

ThreadPool::ThreadPool(size_t threads)
{
    if (threads == 0)
        threads = configuredThreads();
    workers.reserve(threads);
    for (size_t i = 0; i < threads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mtx);
        stopping = true;
    }
    cv.notify_all();
    for (auto &w : workers)
        w.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        MutexLock lock(mtx);
        queue.push_back(std::move(job));
    }
    cv.notify_one();
}

bool
ThreadPool::onWorkerThread() const
{
    auto self = std::this_thread::get_id();
    return std::any_of(workers.begin(), workers.end(),
                       [self](const std::thread &w) {
                           return w.get_id() == self;
                       });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            MutexLock lock(mtx);
            while (!stopping && queue.empty())
                cv.wait(mtx);
            if (queue.empty())
                return; // stopping and drained
            job = std::move(queue.front());
            queue.pop_front();
        }
        job();
    }
}

size_t
ThreadPool::configuredThreads()
{
    if (const char *env = std::getenv("LPP_THREADS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return static_cast<size_t>(v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool &
ThreadPool::shared()
{
    static ThreadPool pool;
    return pool;
}

} // namespace lpp::support
