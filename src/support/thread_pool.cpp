#include "support/thread_pool.hpp"

#include <cstdlib>
#include <utility>

namespace lpp::support {

ThreadPool::ThreadPool(size_t threads)
{
    if (threads == 0)
        threads = configuredThreads();
    workers.reserve(threads);
    for (size_t i = 0; i < threads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        stopping = true;
    }
    cv.notify_all();
    for (auto &w : workers)
        w.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        queue.push_back(std::move(job));
    }
    cv.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mtx);
            cv.wait(lock, [this] { return stopping || !queue.empty(); });
            if (queue.empty())
                return; // stopping and drained
            job = std::move(queue.front());
            queue.pop_front();
        }
        job();
    }
}

size_t
ThreadPool::configuredThreads()
{
    if (const char *env = std::getenv("LPP_THREADS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return static_cast<size_t>(v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool &
ThreadPool::shared()
{
    static ThreadPool pool;
    return pool;
}

} // namespace lpp::support
