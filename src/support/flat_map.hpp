/**
 * @file
 * Open-addressing robin-hood hash map with 64-bit integer keys.
 *
 * The reuse-distance hot loop performs one last-access-table probe per
 * memory access; std::unordered_map pays a pointer chase and an
 * allocation per node there. This map stores entries in one flat array
 * with robin-hood displacement (an inserting entry evicts any resident
 * entry that is closer to its home slot), which bounds probe-length
 * variance and keeps lookups inside one or two cache lines. Deletion
 * uses backward shifting, so no tombstones accumulate.
 */

#ifndef LPP_SUPPORT_FLAT_MAP_HPP
#define LPP_SUPPORT_FLAT_MAP_HPP

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "support/logging.hpp"

namespace lpp::support {

/** Avalanching finalizer (splitmix64) — spreads sequential keys. */
constexpr uint64_t
mixHash(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * Flat robin-hood map from uint64_t keys to `Value`.
 *
 * Capacity is a power of two; the table grows at 7/8 load or when a
 * probe sequence exceeds the displacement limit. Iteration order is
 * unspecified (use forEach); all references are invalidated by any
 * mutation.
 */
template <typename Value>
class FlatMap
{
  public:
    FlatMap() = default;

    /** @param expected number of keys to pre-size for. */
    explicit FlatMap(size_t expected) { reserve(expected); }

    /** @return number of stored keys. */
    size_t size() const { return count; }

    /** @return whether the map is empty. */
    bool empty() const { return count == 0; }

    /** Pre-size so `expected` keys insert without rehashing. */
    void
    reserve(size_t expected)
    {
        size_t needed = tableFor(expected);
        if (needed > slots.size())
            rehash(needed);
    }

    /** Remove every key; capacity is retained. */
    void
    clear()
    {
        for (auto &d : dist)
            d = kEmpty;
        count = 0;
    }

    /** @return pointer to the value of `key`, or nullptr. */
    Value *
    find(uint64_t key)
    {
        size_t i = findIndex(key);
        return i == kNotFound ? nullptr : &slots[i].second;
    }

    const Value *
    find(uint64_t key) const
    {
        size_t i = findIndex(key);
        return i == kNotFound ? nullptr : &slots[i].second;
    }

    /** @return whether `key` is present. */
    bool contains(uint64_t key) const { return findIndex(key) != kNotFound; }

    /**
     * Insert `(key, value)` if absent.
     * @return pointer to the stored value (new or pre-existing)
     */
    Value *
    insert(uint64_t key, Value value)
    {
        if (slots.empty() || (count + 1) * 8 > slots.size() * 7)
            rehash(tableFor(count + 1));
        return place(key, std::move(value), false);
    }

    /** Insert or overwrite. @return pointer to the stored value. */
    Value *
    assign(uint64_t key, Value value)
    {
        if (slots.empty() || (count + 1) * 8 > slots.size() * 7)
            rehash(tableFor(count + 1));
        return place(key, std::move(value), true);
    }

    /** @return reference to the value of `key`, default-inserting it. */
    Value &operator[](uint64_t key) { return *insert(key, Value{}); }

    /**
     * Remove `key` (backward-shift deletion).
     * @return whether the key was present
     */
    bool
    erase(uint64_t key)
    {
        size_t i = findIndex(key);
        if (i == kNotFound)
            return false;
        LPP_DCHECK(count > 0, "erase from an empty table");
        size_t mask = slots.size() - 1;
        size_t next = (i + 1) & mask;
        // Shift the displaced run left by one until a home slot (or an
        // empty slot) terminates it.
        while (dist[next] > 0 && dist[next] != kEmpty) {
            slots[i] = std::move(slots[next]);
            dist[i] = static_cast<uint8_t>(dist[next] - 1);
            i = next;
            next = (next + 1) & mask;
        }
        dist[i] = kEmpty;
        --count;
        return true;
    }

    /** Apply `f(key, value)` to every entry, in unspecified order. */
    template <typename F>
    void
    forEach(F &&f) const
    {
        for (size_t i = 0; i < slots.size(); ++i)
            if (dist[i] != kEmpty)
                f(slots[i].first, slots[i].second);
    }

    /** @return current slot count (capacity). */
    size_t capacity() const { return slots.size(); }

  private:
    // dist[i]: probe distance of the entry in slot i (0 = home slot);
    // kEmpty marks a free slot. Probe distances are bounded by growth:
    // the table rehashes before any distance can reach kEmpty.
    static constexpr uint8_t kEmpty = 0xFF;
    static constexpr size_t kNotFound = ~size_t{0};
    static constexpr size_t kMinCapacity = 16;

    static size_t
    tableFor(size_t expected)
    {
        // Smallest power of two holding `expected` at <= 7/8 load.
        size_t cap = kMinCapacity;
        while (expected * 8 > cap * 7)
            cap <<= 1;
        return cap;
    }

    size_t
    findIndex(uint64_t key) const
    {
        if (slots.empty())
            return kNotFound;
        size_t mask = slots.size() - 1;
        size_t i = mixHash(key) & mask;
        uint8_t d = 0;
        for (;;) {
            if (dist[i] == kEmpty || dist[i] < d)
                return kNotFound; // robin hood: key would sit here
            if (slots[i].first == key)
                return i;
            i = (i + 1) & mask;
            ++d;
        }
    }

    Value *
    place(uint64_t key, Value value, bool overwrite)
    {
        LPP_DCHECK(!slots.empty() && (slots.size() & (slots.size() - 1)) == 0,
                   "table size %zu not a power of two", slots.size());
        LPP_DCHECK(count < slots.size(),
                   "placing into a full table of %zu", slots.size());
        size_t mask = slots.size() - 1;
        size_t i = mixHash(key) & mask;
        uint8_t d = 0;
        std::pair<uint64_t, Value> carry(key, std::move(value));
        Value *result = nullptr;
        for (;;) {
            if (dist[i] == kEmpty) {
                slots[i] = std::move(carry);
                dist[i] = d;
                ++count;
                return result ? result : &slots[i].second;
            }
            if (!result && slots[i].first == carry.first) {
                if (overwrite)
                    slots[i].second = std::move(carry.second);
                return &slots[i].second;
            }
            if (dist[i] < d) {
                // Rich entry found: displace it and keep probing with
                // the evicted entry (its key can never equal a later
                // resident key, so equality checks stop mattering).
                std::swap(carry, slots[i]);
                std::swap(d, dist[i]);
                if (!result)
                    result = &slots[i].second;
            }
            i = (i + 1) & mask;
            ++d;
            if (d == kEmpty) {
                // Pathological clustering: grow and restart with the
                // carried entry.
                size_t grown = slots.size() * 2;
                rehashWithCarry(grown, carry.first,
                                std::move(carry.second));
                return find(key);
            }
        }
    }

    void
    rehash(size_t new_capacity)
    {
        std::vector<std::pair<uint64_t, Value>> old_slots;
        std::vector<uint8_t> old_dist;
        old_slots.swap(slots);
        old_dist.swap(dist);
        slots.resize(new_capacity);
        dist.assign(new_capacity, kEmpty);
        count = 0;
        for (size_t i = 0; i < old_slots.size(); ++i)
            if (old_dist[i] != kEmpty)
                place(old_slots[i].first,
                      std::move(old_slots[i].second), false);
    }

    void
    rehashWithCarry(size_t new_capacity, uint64_t key, Value value)
    {
        rehash(new_capacity);
        place(key, std::move(value), false);
    }

    std::vector<std::pair<uint64_t, Value>> slots;
    std::vector<uint8_t> dist;
    size_t count = 0;
};

} // namespace lpp::support

#endif // LPP_SUPPORT_FLAT_MAP_HPP
