/**
 * @file
 * Shared-queue thread pool for fanning independent analysis jobs across
 * cores.
 *
 * The pool is deliberately simple: one mutex-protected FIFO feeding N
 * worker threads. Analysis jobs (one full workload evaluation, one
 * detector configuration, one trace shard) run for milliseconds to
 * seconds, so queue contention is irrelevant next to job cost and a
 * work-stealing deque would buy nothing. Determinism is the caller's
 * contract: jobs must not share mutable state, and callers collect
 * results by submission index (see core::ParallelRunner), so the output
 * is bit-identical to running the same jobs serially.
 *
 * Each worker keeps utilization counters (tasks executed, busy
 * nanoseconds) so benches can report load balance per worker instead of
 * only end-to-end speedup; see workerStats().
 *
 * All queue state is annotated for clang's thread-safety analysis
 * (support/thread_annotations.hpp); tools/check.sh compiles with
 * -Wthread-safety -Werror when clang is available.
 */

#ifndef LPP_SUPPORT_THREAD_POOL_HPP
#define LPP_SUPPORT_THREAD_POOL_HPP

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace lpp::support {

/** Fixed-size worker pool over one shared FIFO queue. */
class ThreadPool
{
  public:
    /** Utilization of one worker thread since the last reset. */
    struct WorkerStats
    {
        uint64_t tasks = 0;  //!< jobs this worker executed
        uint64_t busyNs = 0; //!< wall time spent inside jobs
    };

    /**
     * @param threads worker count; 0 means configuredThreads()
     */
    explicit ThreadPool(size_t threads = 0);

    /** Drains every queued job, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one job. Thread-safe. */
    void submit(std::function<void()> job) LPP_EXCLUDES(mtx);

    /**
     * Enqueue many jobs under one lock acquisition (wakes every
     * worker once instead of once per job). Thread-safe; `jobs` is
     * consumed.
     */
    void submitBatch(std::vector<std::function<void()>> jobs)
        LPP_EXCLUDES(mtx);

    /** @return number of worker threads. */
    size_t threadCount() const { return workers.size(); }

    /**
     * @return whether the calling thread is one of this pool's workers.
     * Blocking on pool results from a worker of the same pool deadlocks;
     * ParallelRunner rejects that with this predicate.
     */
    bool onWorkerThread() const;

    /**
     * Per-worker utilization since construction or the last
     * resetWorkerStats(). Counters are maintained with relaxed atomics:
     * totals are exact once the pool is quiescent (no job in flight),
     * which is when benches read them.
     */
    std::vector<WorkerStats> workerStats() const;

    /** Zero every worker's utilization counters. */
    void resetWorkerStats();

    /**
     * The configured parallelism: the LPP_THREADS environment variable
     * when set to a positive integer (clamped to maxConfiguredThreads),
     * otherwise — unset, empty, "0", or unparsable — the hardware
     * concurrency (at least 1).
     */
    static size_t configuredThreads();

    /** Upper clamp applied to LPP_THREADS (absurd values cost RAM). */
    static constexpr size_t maxConfiguredThreads = 256;

    /** Process-wide pool shared by all analysis fan-outs. */
    static ThreadPool &shared();

  private:
    /** One worker's counters, cache-line padded against false sharing. */
    struct alignas(64) WorkerSlot
    {
        std::atomic<uint64_t> tasks{0};
        std::atomic<uint64_t> busyNs{0};
    };

    void workerLoop(size_t index);

    Mutex mtx;
    std::condition_variable_any cv;
    std::deque<std::function<void()>> queue LPP_GUARDED_BY(mtx);
    bool stopping LPP_GUARDED_BY(mtx) = false;
    // Immutable after construction; readable without the lock.
    std::vector<std::thread> workers;
    std::unique_ptr<WorkerSlot[]> slots;
};

} // namespace lpp::support

#endif // LPP_SUPPORT_THREAD_POOL_HPP
