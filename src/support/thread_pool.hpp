/**
 * @file
 * Shared-queue thread pool for fanning independent analysis jobs across
 * cores.
 *
 * The pool is deliberately simple: one mutex-protected FIFO feeding N
 * worker threads. Analysis jobs (one full workload evaluation, one
 * detector configuration, one trace shard) run for milliseconds to
 * seconds, so queue contention is irrelevant next to job cost and a
 * work-stealing deque would buy nothing. Determinism is the caller's
 * contract: jobs must not share mutable state, and callers collect
 * results by submission index (see core::ParallelRunner), so the output
 * is bit-identical to running the same jobs serially.
 *
 * All queue state is annotated for clang's thread-safety analysis
 * (support/thread_annotations.hpp); tools/check.sh compiles with
 * -Wthread-safety -Werror when clang is available.
 */

#ifndef LPP_SUPPORT_THREAD_POOL_HPP
#define LPP_SUPPORT_THREAD_POOL_HPP

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace lpp::support {

/** Fixed-size worker pool over one shared FIFO queue. */
class ThreadPool
{
  public:
    /**
     * @param threads worker count; 0 means configuredThreads()
     */
    explicit ThreadPool(size_t threads = 0);

    /** Drains every queued job, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one job. Thread-safe. */
    void submit(std::function<void()> job) LPP_EXCLUDES(mtx);

    /** @return number of worker threads. */
    size_t threadCount() const { return workers.size(); }

    /**
     * @return whether the calling thread is one of this pool's workers.
     * Blocking on pool results from a worker of the same pool deadlocks;
     * ParallelRunner rejects that with this predicate.
     */
    bool onWorkerThread() const;

    /**
     * The configured parallelism: the LPP_THREADS environment variable
     * when set to a positive integer, otherwise the hardware
     * concurrency (at least 1).
     */
    static size_t configuredThreads();

    /** Process-wide pool shared by all analysis fan-outs. */
    static ThreadPool &shared();

  private:
    void workerLoop();

    Mutex mtx;
    std::condition_variable_any cv;
    std::deque<std::function<void()>> queue LPP_GUARDED_BY(mtx);
    bool stopping LPP_GUARDED_BY(mtx) = false;
    // Immutable after construction; readable without the lock.
    std::vector<std::thread> workers;
};

} // namespace lpp::support

#endif // LPP_SUPPORT_THREAD_POOL_HPP
