/**
 * @file
 * Annotated mutex wrapper for the thread-safety analysis.
 *
 * std::mutex from libstdc++ carries no capability attribute, so clang's
 * -Wthread-safety cannot see it being locked and would flag every
 * access to a LPP_GUARDED_BY member as unprotected. Mutex wraps a
 * std::mutex and declares the capability; MutexLock is the annotated
 * scoped lock. Waiting uses std::condition_variable_any, which accepts
 * any BasicLockable — pass the Mutex itself.
 */

#ifndef LPP_SUPPORT_MUTEX_HPP
#define LPP_SUPPORT_MUTEX_HPP

#include <mutex>

#include "support/thread_annotations.hpp"

namespace lpp::support {

/** std::mutex with a declared thread-safety capability. */
class LPP_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() LPP_ACQUIRE() { m.lock(); }
    void unlock() LPP_RELEASE() { m.unlock(); }
    bool try_lock() LPP_TRY_ACQUIRE(true) { return m.try_lock(); }

  private:
    std::mutex m;
};

/** Scoped lock over Mutex, visible to the thread-safety analysis. */
class LPP_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &m) LPP_ACQUIRE(m) : mu(m) { mu.lock(); }
    ~MutexLock() LPP_RELEASE() { mu.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mu;
};

} // namespace lpp::support

#endif // LPP_SUPPORT_MUTEX_HPP
