/**
 * @file
 * Static locality prediction: reuse histograms, working-set curves and
 * phase boundaries from a LoopProgram, with zero program executions.
 *
 * Three engines, strongest applicable first:
 *
 *  - Symbolic: closed-form histogram for programs whose nests are
 *    lockstep unit-stride sweeps over disjoint ranges (coefficients
 *    equal the nest's mixed-radix weights). Every access of the e-th
 *    execution of a sweep signature with footprint W has distance
 *    W - 1 + F, where F sums the footprints of the distinct other
 *    signatures executed since the previous execution — cost is
 *    O(executions x signatures), independent of iteration counts.
 *  - Periodic: for any program with repeats >= 2, rounds replay an
 *    identical element sequence, so every round r >= 1 has the same
 *    per-round histogram; simulate the prologue plus at most three
 *    rounds through a ReuseStack and extrapolate — cost independent
 *    of the repeat count.
 *  - Counting: walk the whole program through a ReuseStack. Always
 *    applicable, always exact, cost linear in total accesses.
 *
 * All three are exact (the histogram equals what a dynamic
 * reuse::ReuseAnalyzer measures over the generated trace, bin for bin),
 * because the engines and the workload generator walk the same IR
 * (staticloc/walk.hpp).
 */

#ifndef LPP_STATICLOC_PREDICT_HPP
#define LPP_STATICLOC_PREDICT_HPP

#include <cstdint>
#include <utility>
#include <vector>

#include "staticloc/ir.hpp"
#include "support/histogram.hpp"

namespace lpp::staticloc {

/** Prediction engine selector. */
enum class Method
{
    Auto,     //!< strongest applicable engine
    Symbolic, //!< closed form; requires symbolicApplicable()
    Periodic, //!< steady-state extrapolation over body rounds
    Counting  //!< full walk through a ReuseStack
};

/** @return a short stable name ("auto", "symbolic", ...). */
const char *methodName(Method m);

/** One phase execution in the predicted schedule. */
struct PhaseExecution
{
    uint32_t marker = 0;      //!< manual marker fired at entry
    size_t phaseIndex = 0;    //!< index into (prologue ++ body)
    uint64_t startAccess = 0; //!< access clock at entry
    uint64_t accesses = 0;    //!< accesses this execution issues
    uint64_t wssBefore = 0;   //!< distinct elements touched before it
};

/** Everything the static analysis predicts about one run. */
struct StaticPrediction
{
    Method method = Method::Counting; //!< engine that produced this
    bool exact = true;                //!< engines are all exact today

    /** Whole-run reuse-distance histogram, element granularity —
     *  bin-identical to a dynamic ReuseAnalyzer over the trace. */
    LogHistogram histogram;

    uint64_t totalAccesses = 0;
    uint64_t distinctElements = 0; //!< whole-run footprint

    /** Every phase execution, in schedule order. */
    std::vector<PhaseExecution> schedule;

    /** @return predicted phase-transition clocks: the entry clock of
     *  every execution after the first (the static counterpart of the
     *  measured manual-marker times past the run's start). */
    std::vector<uint64_t> boundaryClocks() const;

    /** @return the working-set-size curve: (access clock, distinct
     *  elements) at every phase entry plus the final point. */
    std::vector<std::pair<uint64_t, uint64_t>> wssCurve() const;
};

/** @return whether the closed-form symbolic engine covers `p`. */
bool symbolicApplicable(const LoopProgram &p);

/**
 * Predict `p`'s locality. Validates the program, then runs the chosen
 * engine; Method::Auto picks symbolic when applicable, periodic when
 * the body repeats at least 4 times, counting otherwise. Explicitly
 * requesting Method::Symbolic on a program it does not cover panics.
 * No program execution and no TraceSink is involved on any path.
 */
StaticPrediction predict(const LoopProgram &p,
                         Method method = Method::Auto);

} // namespace lpp::staticloc

#endif // LPP_STATICLOC_PREDICT_HPP
