#include "staticloc/predict.hpp"

#include <algorithm>
#include <cstddef>

#include "reuse/stack.hpp"
#include "staticloc/walk.hpp"
#include "support/logging.hpp"

namespace lpp::staticloc {

const char *
methodName(Method m)
{
    switch (m) {
    case Method::Auto:
        return "auto";
    case Method::Symbolic:
        return "symbolic";
    case Method::Periodic:
        return "periodic";
    case Method::Counting:
        return "counting";
    }
    return "?";
}

std::vector<uint64_t>
StaticPrediction::boundaryClocks() const
{
    std::vector<uint64_t> clocks;
    for (size_t i = 1; i < schedule.size(); ++i)
        clocks.push_back(schedule[i].startAccess);
    return clocks;
}

std::vector<std::pair<uint64_t, uint64_t>>
StaticPrediction::wssCurve() const
{
    std::vector<std::pair<uint64_t, uint64_t>> curve;
    curve.reserve(schedule.size() + 1);
    for (const PhaseExecution &e : schedule)
        curve.emplace_back(e.startAccess, e.wssBefore);
    curve.emplace_back(totalAccesses, distinctElements);
    return curve;
}

namespace {

/** @return an upper bound on distinct elements: the allocated total. */
uint64_t
footprintBound(const LoopProgram &p)
{
    uint64_t n = 0;
    for (const StaticArray &a : p.arrays)
        n += a.elements;
    return n;
}

/** @return whether two histograms are bin-for-bin identical. */
bool
sameHistogram(const LogHistogram &a, const LogHistogram &b)
{
    if (a.infiniteCount() != b.infiniteCount() ||
        a.totalFinite() != b.totalFinite())
        return false;
    size_t bins = std::max(a.binCount(), b.binCount());
    for (size_t i = 0; i < bins; ++i)
        if (a.binValue(i) != b.binValue(i))
            return false;
    return true;
}

/**
 * dst += times * src, exactly at bin granularity: each bin's count is
 * re-added at the bin's lower bound, which falls back into the same
 * bin, so the scaled merge changes no bin boundaries.
 */
void
addScaled(LogHistogram &dst, const LogHistogram &src, uint64_t times)
{
    if (times == 0)
        return;
    for (size_t b = 0; b < src.binCount(); ++b)
        dst.add(LogHistogram::binLow(b), src.binValue(b) * times);
    dst.add(LogHistogram::infinite, src.infiniteCount() * times);
}

/** One phase's shape under the symbolic engine. */
struct SymbolicPhase
{
    size_t sig = 0;        //!< signature id
    uint64_t accesses = 0; //!< k * N == the signature's footprint
};

/** Symbolic view of a program: phases mapped to sweep signatures. */
struct SymbolicInfo
{
    bool ok = false;
    std::vector<uint64_t> footprint; //!< per signature
    std::vector<SymbolicPhase> phases; //!< aligned with prologue++body
};

/**
 * A phase qualifies when every reference's coefficients equal the
 * nest's mixed-radix weights (so its element index is start + t at
 * lexicographic iteration t — a unit-stride sweep) and the per-phase
 * ranges are pairwise disjoint. Two phases share a signature iff their
 * ordered (global start) lists and iteration counts match; distinct
 * signatures must be disjoint in element space.
 */
SymbolicInfo
analyzeSymbolic(const LoopProgram &p)
{
    SymbolicInfo info;
    // Signature key: ordered global ref starts + iteration count.
    std::vector<std::pair<std::vector<uint64_t>, uint64_t>> keys;

    auto add_phase = [&](const PhaseNest &ph) -> bool {
        const Nest &n = ph.nest;
        uint64_t iterations = n.iterations();

        std::vector<int64_t> weights(n.extents.size());
        int64_t w = 1;
        for (size_t d = n.extents.size(); d-- > 0;) {
            weights[d] = w;
            w *= static_cast<int64_t>(n.extents[d]);
        }

        std::vector<uint64_t> starts;
        starts.reserve(n.refs.size());
        for (const ArrayRef &r : n.refs) {
            if (r.index.offset < 0)
                return false;
            for (size_t d = 0; d < n.extents.size(); ++d) {
                int64_t c = d < r.index.coeffs.size()
                                ? r.index.coeffs[d]
                                : 0;
                if (c != weights[d])
                    return false;
            }
            starts.push_back(p.arrays[r.array].baseElement +
                             static_cast<uint64_t>(r.index.offset));
        }

        // In-phase ranges pairwise disjoint: each element is visited
        // exactly once per execution.
        std::vector<uint64_t> sorted = starts;
        std::sort(sorted.begin(), sorted.end());
        for (size_t i = 1; i < sorted.size(); ++i)
            if (sorted[i] - sorted[i - 1] < iterations)
                return false;

        std::pair<std::vector<uint64_t>, uint64_t> key{starts,
                                                       iterations};
        size_t sig = 0;
        for (; sig < keys.size(); ++sig)
            if (keys[sig] == key)
                break;
        if (sig == keys.size()) {
            keys.push_back(std::move(key));
            info.footprint.push_back(iterations * starts.size());
        }
        info.phases.push_back({sig, iterations * starts.size()});
        return true;
    };

    for (const PhaseNest &ph : p.prologue)
        if (!add_phase(ph))
            return info;
    for (const PhaseNest &ph : p.body)
        if (!add_phase(ph))
            return info;

    // Distinct signatures must not overlap in element space, or the
    // closed form's "footprints in between" term would double count.
    std::vector<std::pair<uint64_t, std::pair<uint64_t, size_t>>> spans;
    for (size_t s = 0; s < keys.size(); ++s)
        for (uint64_t start : keys[s].first)
            spans.push_back({start, {start + keys[s].second, s}});
    std::sort(spans.begin(), spans.end());
    for (size_t i = 1; i < spans.size(); ++i) {
        bool same_sig = spans[i].second.second ==
                        spans[i - 1].second.second;
        if (spans[i].first < spans[i - 1].second.first && !same_sig)
            return info;
    }

    info.ok = true;
    return info;
}

/** The phase list in schedule order, as (phase, phaseIndex) pairs. */
std::vector<std::pair<const PhaseNest *, size_t>>
scheduleOrder(const LoopProgram &p)
{
    std::vector<std::pair<const PhaseNest *, size_t>> order;
    order.reserve(p.phaseExecutions());
    for (size_t i = 0; i < p.prologue.size(); ++i)
        order.emplace_back(&p.prologue[i], i);
    for (uint64_t r = 0; r < p.repeats; ++r)
        for (size_t i = 0; i < p.body.size(); ++i)
            order.emplace_back(&p.body[i], p.prologue.size() + i);
    return order;
}

StaticPrediction
predictSymbolic(const LoopProgram &p, const SymbolicInfo &info)
{
    StaticPrediction out;
    out.method = Method::Symbolic;

    const size_t sig_count = info.footprint.size();
    constexpr size_t npos = static_cast<size_t>(-1);
    std::vector<size_t> last_exec(sig_count, npos);
    std::vector<size_t> exec_sig; //!< signature of each past execution
    uint64_t clock = 0;
    uint64_t wss = 0;

    auto order = scheduleOrder(p);
    out.schedule.reserve(order.size());
    for (size_t e = 0; e < order.size(); ++e) {
        size_t list_index = order[e].second;
        const SymbolicPhase &sp = info.phases[list_index];
        out.schedule.push_back({order[e].first->marker, list_index,
                                clock, sp.accesses, wss});
        if (last_exec[sp.sig] == npos) {
            // First execution of the signature: every access cold.
            out.histogram.add(LogHistogram::infinite, sp.accesses);
            wss += info.footprint[sp.sig];
        } else {
            // Every access reuses the previous execution's touch of
            // the same element: own footprint minus the element
            // itself, plus the footprints of the distinct other
            // signatures executed in between.
            uint64_t between = 0;
            std::vector<bool> seen(sig_count, false);
            for (size_t q = last_exec[sp.sig] + 1; q < e; ++q) {
                size_t u = exec_sig[q];
                if (u != sp.sig && !seen[u]) {
                    seen[u] = true;
                    between += info.footprint[u];
                }
            }
            out.histogram.add(info.footprint[sp.sig] - 1 + between,
                              sp.accesses);
        }
        last_exec[sp.sig] = e;
        exec_sig.push_back(sp.sig);
        clock += sp.accesses;
    }

    out.totalAccesses = clock;
    out.distinctElements = wss;
    return out;
}

StaticPrediction
predictCounting(const LoopProgram &p)
{
    StaticPrediction out;
    out.method = Method::Counting;

    reuse::ReuseStack stack;
    stack.reserveElements(static_cast<size_t>(footprintBound(p)));
    uint64_t clock = 0;
    out.schedule.reserve(p.phaseExecutions());
    walkProgram(
        p,
        [&](const PhaseNest &ph, size_t phase_index) {
            out.schedule.push_back({ph.marker, phase_index, clock,
                                    ph.nest.accesses(),
                                    stack.distinctCount()});
        },
        [](const PhaseNest &) {},
        [&](const PhaseNest &, const ArrayRef &r, uint64_t idx) {
            out.histogram.add(
                stack.access(p.arrays[r.array].baseElement + idx));
            ++clock;
        });

    out.totalAccesses = clock;
    out.distinctElements = stack.distinctCount();
    return out;
}

StaticPrediction
predictPeriodic(const LoopProgram &p)
{
    StaticPrediction out;
    out.method = Method::Periodic;

    reuse::ReuseStack stack;
    stack.reserveElements(static_cast<size_t>(footprintBound(p)));
    uint64_t clock = 0;

    auto run_phase = [&](const PhaseNest &ph, size_t phase_index,
                         LogHistogram &hist,
                         std::vector<PhaseExecution> &sched) {
        sched.push_back({ph.marker, phase_index, clock,
                         ph.nest.accesses(), stack.distinctCount()});
        walkNest(
            ph.nest, [] {},
            [&](const ArrayRef &r, uint64_t idx) {
                hist.add(stack.access(p.arrays[r.array].baseElement +
                                      idx));
                ++clock;
            });
    };

    LogHistogram pro_hist;
    std::vector<PhaseExecution> pro_sched;
    for (size_t i = 0; i < p.prologue.size(); ++i)
        run_phase(p.prologue[i], i, pro_hist, pro_sched);

    // Every round r >= 1 replays the identical element sequence of
    // round r-1, so its per-round histogram equals round 1's. Simulate
    // up to three rounds: round 0 (cold transitions), round 1 (the
    // steady state), round 2 only to verify the steady-state claim.
    const uint64_t sim_rounds = std::min<uint64_t>(p.repeats, 3);
    LogHistogram round_hist[3];
    std::vector<PhaseExecution> round_sched[3];
    for (uint64_t r = 0; r < sim_rounds; ++r)
        for (size_t i = 0; i < p.body.size(); ++i)
            run_phase(p.body[i], p.prologue.size() + i, round_hist[r],
                      round_sched[r]);

    if (sim_rounds == 3) {
        LPP_REQUIRE(sameHistogram(round_hist[1], round_hist[2]),
                    "program '%s': body rounds are not periodic",
                    p.name.c_str());
        for (size_t i = 0; i < round_sched[1].size(); ++i)
            LPP_REQUIRE(round_sched[1][i].wssBefore ==
                            round_sched[2][i].wssBefore,
                        "program '%s': footprint grew after round 1",
                        p.name.c_str());
    }

    out.histogram = pro_hist;
    out.histogram.merge(round_hist[0]);
    if (p.repeats >= 2)
        addScaled(out.histogram, round_hist[1], p.repeats - 1);

    out.schedule = std::move(pro_sched);
    for (uint64_t r = 0; r < sim_rounds; ++r)
        out.schedule.insert(out.schedule.end(), round_sched[r].begin(),
                            round_sched[r].end());
    const uint64_t round_accesses = p.roundAccesses();
    for (uint64_t r = sim_rounds; r < p.repeats; ++r)
        for (const PhaseExecution &e : round_sched[1]) {
            PhaseExecution x = e;
            x.startAccess += (r - 1) * round_accesses;
            out.schedule.push_back(x);
        }

    out.totalAccesses = p.totalAccesses();
    out.distinctElements = stack.distinctCount();
    return out;
}

} // namespace

bool
symbolicApplicable(const LoopProgram &p)
{
    return analyzeSymbolic(p).ok;
}

StaticPrediction
predict(const LoopProgram &p, Method method)
{
    p.validate();
    if (method == Method::Auto || method == Method::Symbolic) {
        SymbolicInfo info = analyzeSymbolic(p);
        if (info.ok)
            return predictSymbolic(p, info);
        LPP_REQUIRE(method != Method::Symbolic,
                    "program '%s' is outside the symbolic class",
                    p.name.c_str());
    }
    if (method == Method::Periodic ||
        (method == Method::Auto && p.repeats >= 4 && !p.body.empty()))
        return predictPeriodic(p);
    return predictCounting(p);
}

} // namespace lpp::staticloc
