/**
 * @file
 * The single iteration-space walker behind both sides of the oracle.
 *
 * walkProgram() enumerates a LoopProgram's dynamic event order — phase
 * entries, innermost iterations, array accesses — exactly once, in the
 * order a run emits them. The workload generator walks it through an
 * Emitter to produce the trace; the counting engines walk it through a
 * ReuseStack to predict the trace's locality. Because both consume the
 * same enumeration, "prediction matches measurement bit for bit" never
 * depends on two loops staying accidentally in sync.
 */

#ifndef LPP_STATICLOC_WALK_HPP
#define LPP_STATICLOC_WALK_HPP

#include <cstdint>
#include <vector>

#include "staticloc/ir.hpp"

namespace lpp::staticloc {

/**
 * Enumerate one execution of a nest in lexicographic iteration order.
 * @param on_iter  called once per innermost iteration, before its refs
 * @param on_access called per reference with the array-local element
 *        index its affine expression evaluates to
 */
template <typename IterFn, typename AccessFn>
inline void
walkNest(const Nest &nest, IterFn &&on_iter, AccessFn &&on_access)
{
    std::vector<uint64_t> iv(nest.extents.size(), 0);
    const uint64_t iterations = nest.iterations();
    for (uint64_t it = 0; it < iterations; ++it) {
        on_iter();
        for (const ArrayRef &r : nest.refs)
            on_access(r, static_cast<uint64_t>(r.index.at(iv)));
        for (size_t d = iv.size(); d-- > 0;) {
            if (++iv[d] < nest.extents[d])
                break;
            iv[d] = 0;
        }
    }
}

/**
 * Enumerate a whole program: prologue phases once, then the body
 * `repeats` times, in program order.
 *
 * @param on_phase  called at each phase execution's entry with the
 *        phase and its index into (prologue ++ body) — the index (and
 *        thus the marker id) is stable across repeats
 * @param on_iter   called per innermost iteration with the phase
 * @param on_access called per reference with the phase, the reference,
 *        and the array-local element index
 */
template <typename PhaseFn, typename IterFn, typename AccessFn>
inline void
walkProgram(const LoopProgram &p, PhaseFn &&on_phase, IterFn &&on_iter,
            AccessFn &&on_access)
{
    auto run_phase = [&](const PhaseNest &ph, size_t phase_index) {
        on_phase(ph, phase_index);
        walkNest(
            ph.nest, [&] { on_iter(ph); },
            [&](const ArrayRef &r, uint64_t idx) {
                on_access(ph, r, idx);
            });
    };
    for (size_t i = 0; i < p.prologue.size(); ++i)
        run_phase(p.prologue[i], i);
    for (uint64_t round = 0; round < p.repeats; ++round)
        for (size_t i = 0; i < p.body.size(); ++i)
            run_phase(p.body[i], p.prologue.size() + i);
}

} // namespace lpp::staticloc

#endif // LPP_STATICLOC_WALK_HPP
