#include "staticloc/ir.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace lpp::staticloc {

int64_t
AffineExpr::at(const std::vector<uint64_t> &iv) const
{
    int64_t v = offset;
    size_t n = std::min(coeffs.size(), iv.size());
    for (size_t d = 0; d < n; ++d)
        v += coeffs[d] * static_cast<int64_t>(iv[d]);
    return v;
}

int64_t
AffineExpr::minOver(const std::vector<uint64_t> &extents) const
{
    int64_t v = offset;
    size_t n = std::min(coeffs.size(), extents.size());
    for (size_t d = 0; d < n; ++d)
        if (coeffs[d] < 0)
            v += coeffs[d] * static_cast<int64_t>(extents[d] - 1);
    return v;
}

int64_t
AffineExpr::maxOver(const std::vector<uint64_t> &extents) const
{
    int64_t v = offset;
    size_t n = std::min(coeffs.size(), extents.size());
    for (size_t d = 0; d < n; ++d)
        if (coeffs[d] > 0)
            v += coeffs[d] * static_cast<int64_t>(extents[d] - 1);
    return v;
}

uint64_t
Nest::iterations() const
{
    uint64_t n = 1;
    for (uint64_t e : extents)
        n *= e;
    return n;
}

namespace {

void
validateNest(const LoopProgram &p, const PhaseNest &ph)
{
    const Nest &n = ph.nest;
    LPP_REQUIRE(!n.extents.empty(), "phase '%s': empty nest",
                ph.name.c_str());
    for (uint64_t e : n.extents)
        LPP_REQUIRE(e >= 1, "phase '%s': zero-trip loop",
                    ph.name.c_str());
    LPP_REQUIRE(!n.refs.empty(), "phase '%s': no array references",
                ph.name.c_str());
    for (const ArrayRef &r : n.refs) {
        LPP_REQUIRE(r.array < p.arrays.size(),
                    "phase '%s': array index %u out of range",
                    ph.name.c_str(), r.array);
        LPP_REQUIRE(r.index.coeffs.size() <= n.extents.size(),
                    "phase '%s': reference uses more loop variables "
                    "than the nest has",
                    ph.name.c_str());
        const StaticArray &a = p.arrays[r.array];
        int64_t lo = r.index.minOver(n.extents);
        int64_t hi = r.index.maxOver(n.extents);
        LPP_REQUIRE(lo >= 0 &&
                        hi < static_cast<int64_t>(a.elements),
                    "phase '%s': reference to '%s' ranges [%lld, %lld] "
                    "outside [0, %llu)",
                    ph.name.c_str(), a.name.c_str(),
                    static_cast<long long>(lo),
                    static_cast<long long>(hi),
                    static_cast<unsigned long long>(a.elements));
    }
}

} // namespace

void
LoopProgram::validate() const
{
    LPP_REQUIRE(repeats >= 1, "program '%s': repeats must be >= 1",
                name.c_str());
    LPP_REQUIRE(!prologue.empty() || !body.empty(),
                "program '%s': no phases", name.c_str());
    for (const StaticArray &a : arrays)
        LPP_REQUIRE(a.elements >= 1, "array '%s': empty",
                    a.name.c_str());

    // Distinct arrays must not alias in element space, or static and
    // measured element identities would diverge.
    std::vector<std::pair<uint64_t, uint64_t>> spans;
    spans.reserve(arrays.size());
    for (const StaticArray &a : arrays)
        spans.emplace_back(a.baseElement, a.baseElement + a.elements);
    std::sort(spans.begin(), spans.end());
    for (size_t i = 1; i < spans.size(); ++i)
        LPP_REQUIRE(spans[i].first >= spans[i - 1].second,
                    "program '%s': arrays overlap in element space",
                    name.c_str());

    for (const PhaseNest &ph : prologue)
        validateNest(*this, ph);
    for (const PhaseNest &ph : body)
        validateNest(*this, ph);
}

uint64_t
LoopProgram::prologueAccesses() const
{
    uint64_t n = 0;
    for (const PhaseNest &ph : prologue)
        n += ph.nest.accesses();
    return n;
}

uint64_t
LoopProgram::roundAccesses() const
{
    uint64_t n = 0;
    for (const PhaseNest &ph : body)
        n += ph.nest.accesses();
    return n;
}

} // namespace lpp::staticloc
