/**
 * @file
 * Affine loop-nest IR for the static locality analyzer.
 *
 * A LoopProgram is a compile-time description of a regular program: a
 * prologue of loop nests executed once, then a body of nests executed
 * `repeats` times, every nest a rectangular iteration space whose array
 * references are affine functions of the loop variables. The IR is
 * deliberately small — it covers exactly the programs whose dynamic
 * event stream is a pure function of structure (no data-dependent
 * control flow), which is the class the static reuse-profile literature
 * analyzes (Static Reuse Profile Estimation for Array Applications;
 * Fully Symbolic Analysis of Loop Locality).
 *
 * The same IR drives both sides of the oracle: workloads *generate*
 * their event stream by walking it (workloads/static_workload.hpp), and
 * the prediction engines (staticloc/predict.hpp) analyze it without any
 * execution — so an exact match between predicted and measured locality
 * is a property of the pipeline, not a coincidence of two generators.
 */

#ifndef LPP_STATICLOC_IR_HPP
#define LPP_STATICLOC_IR_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "trace/types.hpp"

namespace lpp::staticloc {

/**
 * An affine function of a nest's loop variables:
 * offset + sum(coeffs[d] * iv[d]), loop variables outermost first.
 */
struct AffineExpr
{
    int64_t offset = 0;
    std::vector<int64_t> coeffs; //!< one per loop, outermost first

    /** @return the constant expression `c`. */
    static AffineExpr
    constant(int64_t c)
    {
        AffineExpr e;
        e.offset = c;
        return e;
    }

    /** @return coeffs·iv + offset. */
    static AffineExpr
    linear(std::vector<int64_t> coefficients, int64_t offset = 0)
    {
        AffineExpr e;
        e.offset = offset;
        e.coeffs = std::move(coefficients);
        return e;
    }

    /** Evaluate at an iteration vector (missing coefficients are 0). */
    int64_t at(const std::vector<uint64_t> &iv) const;

    /** Minimum over the box [0,extents[0]) x ... (extents all >= 1). */
    int64_t minOver(const std::vector<uint64_t> &extents) const;

    /** Maximum over the same box. */
    int64_t maxOver(const std::vector<uint64_t> &extents) const;
};

/** One array reference inside a nest. */
struct ArrayRef
{
    uint32_t array = 0; //!< index into LoopProgram::arrays
    AffineExpr index;   //!< element index, affine in the loop vars
};

/** A rectangular loop nest issuing `refs` per innermost iteration. */
struct Nest
{
    std::vector<uint64_t> extents; //!< trip counts, outermost first
    std::vector<ArrayRef> refs;    //!< program order within an iteration

    /** @return total innermost iterations (product of extents). */
    uint64_t iterations() const;

    /** @return data accesses one execution of the nest issues. */
    uint64_t
    accesses() const
    {
        return iterations() * refs.size();
    }
};

/**
 * A named phase: one loop nest plus the events that frame it in the
 * trace — a manual marker at entry (the Table 6 ground truth) and one
 * basic-block execution per innermost iteration.
 */
struct PhaseNest
{
    std::string name;
    uint32_t marker = 0;        //!< manual marker fired at entry
    trace::BlockId block = 0;   //!< block per innermost iteration
    uint32_t instructions = 10; //!< instructions that block retires
    Nest nest;
};

/** One statically sized array, tied to the run-time address space. */
struct StaticArray
{
    std::string name;
    uint64_t elements = 0;
    /** Global element id of index 0: ArrayInfo.base / elementBytes, so
     *  static element ids equal trace::toElement() of real addresses. */
    uint64_t baseElement = 0;
};

/** A whole program: prologue once, then the body `repeats` times. */
struct LoopProgram
{
    std::string name;
    std::vector<StaticArray> arrays;
    std::vector<PhaseNest> prologue;
    std::vector<PhaseNest> body;
    uint64_t repeats = 1;

    /**
     * Check structural validity: nonempty extents and refs per nest,
     * every reference in bounds over its full iteration box (affine
     * min/max), and array element ranges disjoint in element space.
     * Panics (LPP_REQUIRE) on violation — an invalid IR is a workload
     * authoring bug, not an input condition.
     */
    void validate() const;

    /** @return data accesses the prologue issues. */
    uint64_t prologueAccesses() const;

    /** @return data accesses one body round issues. */
    uint64_t roundAccesses() const;

    /** @return data accesses a full run issues. */
    uint64_t
    totalAccesses() const
    {
        return prologueAccesses() + repeats * roundAccesses();
    }

    /** @return phase executions a full run performs. */
    uint64_t
    phaseExecutions() const
    {
        return prologue.size() + repeats * body.size();
    }
};

} // namespace lpp::staticloc

#endif // LPP_STATICLOC_IR_HPP
