/**
 * @file
 * Affinity-based array regrouping via address remapping — the Impulse
 * memory controller stand-in (paper Section 3.3 / Table 5).
 *
 * Impulse creates shadow regions that present a remapped view of
 * physical memory without copying. Here a Remapper sink rewrites the
 * address stream the same way: arrays of an affinity group are
 * interleaved element-wise in a shadow region, so elements accessed
 * together share cache blocks. Phase-based remapping installs a
 * different interleaving at every phase marker; the paper's comparison
 * point is a single whole-program ("global") layout, and the paper
 * excludes the cost of performing the remapping itself (their Table 5
 * does the same).
 */

#ifndef LPP_REMAP_REGROUP_HPP
#define LPP_REMAP_REGROUP_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cache/lru_cache.hpp"
#include "remap/affinity.hpp"
#include "trace/instrument.hpp"
#include "trace/sink.hpp"
#include "workloads/workload.hpp"

namespace lpp::remap {

/**
 * Address-remapping sink. With only a global mapping installed, every
 * access is translated through it; with per-phase mappings, each phase
 * marker switches the active mapping (identity for unknown phases).
 */
class Remapper : public trace::TraceSink
{
  public:
    Remapper(std::vector<workloads::ArrayInfo> arrays,
             trace::TraceSink &downstream);

    /** Install the mapping used outside any known phase. */
    void setGlobalGroups(const AffinityGroups &groups);

    /** Install a phase-specific mapping. */
    void setPhaseGroups(trace::PhaseId phase,
                        const AffinityGroups &groups);

    void onAccess(trace::Addr addr) override;
    void onAccessBatch(const trace::Addr *addrs, size_t n) override;
    void onPhaseMarker(trace::PhaseId phase) override;

    void
    onBlock(trace::BlockId block, uint32_t instructions) override
    {
        out.onBlock(block, instructions);
    }

    void
    onManualMarker(uint32_t id) override
    {
        out.onManualMarker(id);
    }

    void onEnd() override { out.onEnd(); }

    /** @return how many accesses were remapped (vs passed through). */
    uint64_t remappedCount() const { return remapped; }

  private:
    struct Slot
    {
        bool mapped = false;
        trace::Addr shadowBase = 0;
        uint32_t groupSize = 1;
        uint32_t offset = 0;
    };
    /** One mapping: a Slot per array. */
    using Mapping = std::vector<Slot>;

    Mapping buildMapping(const AffinityGroups &groups);
    int32_t arrayOf(trace::Addr addr) const;
    trace::Addr translate(trace::Addr addr);

    std::vector<workloads::ArrayInfo> arrays;
    trace::TraceSink &out;
    Mapping globalMapping;
    std::map<trace::PhaseId, Mapping> phaseMappings;
    const Mapping *active;
    trace::Addr nextShadow = 1ULL << 40;
    uint64_t remapped = 0;
    std::vector<trace::Addr> scratch; //!< translated batch buffer
};

/** Simple timing model: time = (instr * cpi + misses * penalty) / f. */
struct TimingModel
{
    double cpi = 1.0;          //!< cycles per instruction, cache apart
    double missPenalty = 60.0; //!< cycles per L1 miss
    double ghz = 2.0;          //!< clock frequency

    /** @return modelled seconds. */
    double
    seconds(uint64_t instructions, uint64_t misses) const
    {
        return (static_cast<double>(instructions) * cpi +
                static_cast<double>(misses) * missPenalty) /
               (ghz * 1e9);
    }
};

/** Table 5: one workload's remapping comparison. */
struct RemapExperiment
{
    std::string workload;
    uint64_t instructions = 0;
    uint64_t originalMisses = 0;
    uint64_t globalMisses = 0;
    uint64_t phaseMisses = 0;
    double originalTime = 0.0;
    double globalTime = 0.0;
    double phaseTime = 0.0;

    double
    phaseSpeedup() const
    {
        return phaseTime > 0.0 ? originalTime / phaseTime - 1.0 : 0.0;
    }

    double
    globalSpeedup() const
    {
        return globalTime > 0.0 ? originalTime / globalTime - 1.0 : 0.0;
    }
};

/**
 * Run the full Table 5 experiment for one workload: learn affinity on
 * the instrumented training run, then measure the reference run's cache
 * misses under no remapping, the best whole-program layout, and
 * phase-based remapping.
 */
RemapExperiment
runRemapExperiment(const workloads::Workload &workload,
                   const trace::MarkerTable &table,
                   const cache::CacheConfig &cache_cfg = {},
                   const TimingModel &model = {},
                   const AffinityConfig &affinity_cfg = {});

} // namespace lpp::remap

#endif // LPP_REMAP_REGROUP_HPP
