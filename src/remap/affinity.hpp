/**
 * @file
 * Reference-affinity analysis of arrays, per phase and whole-program
 * (Zhong et al., the paper's Section 3.3 substrate).
 *
 * Two arrays are affine when accesses to one are regularly accompanied
 * by accesses to the other within a short window — then interleaving
 * them puts co-accessed elements into the same cache block. The paper's
 * point is that affinity differs per phase: Swim's third substep groups
 * {u, uold, unew} while the first groups {u, v, p}, so one static
 * layout cannot serve both.
 */

#ifndef LPP_REMAP_AFFINITY_HPP
#define LPP_REMAP_AFFINITY_HPP

#include <cstdint>
#include <map>
#include <vector>

#include "trace/sink.hpp"
#include "trace/types.hpp"
#include "workloads/address_space.hpp"

namespace lpp::remap {

/** A partition of array indices into affinity groups (size >= 2). */
using AffinityGroups = std::vector<std::vector<uint32_t>>;

/** Tuning for AffinityAnalyzer. */
struct AffinityConfig
{
    /** Co-access window, in accesses. */
    uint32_t window = 16;

    /**
     * Fraction of an array's accesses that must see the partner in
     * window for the pair to be affine.
     */
    double threshold = 0.5;

    /** Arrays with fewer accesses in a phase are ignored there. */
    uint64_t minAccesses = 512;
};

/**
 * Streams an instrumented (or plain) execution and accumulates per-phase
 * and whole-program co-access statistics between arrays. Accesses before
 * the first marker count toward phase id 0xFFFFFFFF and the global
 * statistics.
 */
class AffinityAnalyzer : public trace::TraceSink
{
  public:
    AffinityAnalyzer(std::vector<workloads::ArrayInfo> arrays,
                     AffinityConfig cfg = {});

    void onAccess(trace::Addr addr) override;
    void onAccessBatch(const trace::Addr *addrs, size_t n) override;
    void onPhaseMarker(trace::PhaseId phase) override;

    /** @return affinity groups for one phase. */
    AffinityGroups groupsForPhase(trace::PhaseId phase) const;

    /** @return whole-program affinity groups. */
    AffinityGroups globalGroups() const;

    /** @return the phases observed. */
    std::vector<trace::PhaseId> phasesSeen() const;

  private:
    struct Stats
    {
        std::vector<uint64_t> count;   //!< per-array access counts
        std::vector<uint64_t> coCount; //!< K x K co-access counts
    };

    int32_t arrayOf(trace::Addr addr) const;
    void record(Stats &stats, uint32_t array);
    AffinityGroups groupsFrom(const Stats &stats) const;

    std::vector<workloads::ArrayInfo> arrays;
    AffinityConfig cfg;
    size_t k;

    std::map<trace::PhaseId, Stats> perPhase;
    Stats global;
    trace::PhaseId current = 0xFFFFFFFFu;

    // Ring buffer of the last `window` array ids.
    std::vector<int32_t> ring;
    size_t ringPos = 0;
};

} // namespace lpp::remap

#endif // LPP_REMAP_AFFINITY_HPP
