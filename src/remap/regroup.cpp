#include "remap/regroup.hpp"

#include "support/logging.hpp"
#include "trace/sink.hpp"

namespace lpp::remap {

Remapper::Remapper(std::vector<workloads::ArrayInfo> arrays_,
                   trace::TraceSink &downstream)
    : arrays(std::move(arrays_)), out(downstream)
{
    globalMapping.assign(arrays.size(), Slot{});
    active = &globalMapping;
}

Remapper::Mapping
Remapper::buildMapping(const AffinityGroups &groups)
{
    Mapping m(arrays.size());
    for (const auto &group : groups) {
        trace::Addr base = nextShadow;
        nextShadow += 1ULL << 30; // 1 GiB shadow region per group
        auto size = static_cast<uint32_t>(group.size());
        for (uint32_t slot = 0; slot < size; ++slot) {
            uint32_t a = group[slot];
            LPP_REQUIRE(a < arrays.size(), "bad array index %u", a);
            m[a].mapped = true;
            m[a].shadowBase = base;
            m[a].groupSize = size;
            m[a].offset = slot;
        }
    }
    return m;
}

void
Remapper::setGlobalGroups(const AffinityGroups &groups)
{
    bool was_active = active == &globalMapping;
    globalMapping = buildMapping(groups);
    if (was_active)
        active = &globalMapping;
}

void
Remapper::setPhaseGroups(trace::PhaseId phase,
                         const AffinityGroups &groups)
{
    phaseMappings[phase] = buildMapping(groups);
}

int32_t
Remapper::arrayOf(trace::Addr addr) const
{
    for (size_t i = 0; i < arrays.size(); ++i) {
        if (arrays[i].contains(addr))
            return static_cast<int32_t>(i);
    }
    return -1;
}

trace::Addr
Remapper::translate(trace::Addr addr)
{
    int32_t a = arrayOf(addr);
    if (a >= 0) {
        const Slot &slot = (*active)[static_cast<size_t>(a)];
        if (slot.mapped) {
            const auto &info = arrays[static_cast<size_t>(a)];
            uint64_t elem = (addr - info.base) / info.elemBytes;
            addr = slot.shadowBase +
                   (elem * slot.groupSize + slot.offset) *
                       info.elemBytes;
            ++remapped;
        }
    }
    return addr;
}

void
Remapper::onAccess(trace::Addr addr)
{
    out.onAccess(translate(addr));
}

void
Remapper::onAccessBatch(const trace::Addr *addrs, size_t n)
{
    scratch.resize(n);
    for (size_t i = 0; i < n; ++i)
        scratch[i] = translate(addrs[i]);
    out.onAccessBatch(scratch.data(), n);
}

void
Remapper::onPhaseMarker(trace::PhaseId phase)
{
    auto it = phaseMappings.find(phase);
    active = it == phaseMappings.end() ? &globalMapping : &it->second;
    out.onPhaseMarker(phase);
}

RemapExperiment
runRemapExperiment(const workloads::Workload &workload,
                   const trace::MarkerTable &table,
                   const cache::CacheConfig &cache_cfg,
                   const TimingModel &model,
                   const AffinityConfig &affinity_cfg)
{
    RemapExperiment ex;
    ex.workload = workload.name();

    auto train_in = workload.trainInput();
    auto ref_in = workload.refInput();
    auto ref_arrays = workload.arrays(ref_in);

    // 1. Learn per-phase and global affinity from the instrumented
    //    training run (the training and reference runs allocate the
    //    same arrays, possibly with different sizes; affinity is by
    //    array identity, so training groups carry over).
    AffinityAnalyzer analyzer(workload.arrays(train_in), affinity_cfg);
    {
        trace::Instrumenter inst(table, analyzer);
        workload.run(train_in, inst);
    }

    // 2. Original layout.
    {
        cache::LruCache cache(cache_cfg);
        trace::ClockSink clock;
        trace::FanoutSink fan;
        fan.attach(&cache);
        fan.attach(&clock);
        workload.run(ref_in, fan);
        ex.originalMisses = cache.misses();
        ex.instructions = clock.instructions();
    }

    // 3. Best whole-program layout.
    {
        cache::LruCache cache(cache_cfg);
        Remapper remap(ref_arrays, cache);
        remap.setGlobalGroups(analyzer.globalGroups());
        workload.run(ref_in, remap);
        ex.globalMisses = cache.misses();
    }

    // 4. Phase-based remapping: markers switch the interleaving.
    {
        cache::LruCache cache(cache_cfg);
        Remapper remap(ref_arrays, cache);
        remap.setGlobalGroups(analyzer.globalGroups());
        for (trace::PhaseId p : analyzer.phasesSeen())
            remap.setPhaseGroups(p, analyzer.groupsForPhase(p));
        trace::Instrumenter inst(table, remap);
        workload.run(ref_in, inst);
        ex.phaseMisses = cache.misses();
    }

    ex.originalTime = model.seconds(ex.instructions, ex.originalMisses);
    ex.globalTime = model.seconds(ex.instructions, ex.globalMisses);
    ex.phaseTime = model.seconds(ex.instructions, ex.phaseMisses);
    return ex;
}

} // namespace lpp::remap
