#include "remap/affinity.hpp"

#include <numeric>

#include "support/logging.hpp"

namespace lpp::remap {

AffinityAnalyzer::AffinityAnalyzer(
    std::vector<workloads::ArrayInfo> arrays_, AffinityConfig cfg_)
    : arrays(std::move(arrays_)), cfg(cfg_), k(arrays.size()),
      ring(cfg_.window, -1)
{
    LPP_REQUIRE(k > 0, "no arrays to analyze");
    LPP_REQUIRE(k <= 64, "co-access mask supports at most 64 arrays");
    global.count.assign(k, 0);
    global.coCount.assign(k * k, 0);
}

int32_t
AffinityAnalyzer::arrayOf(trace::Addr addr) const
{
    for (size_t i = 0; i < arrays.size(); ++i) {
        if (arrays[i].contains(addr))
            return static_cast<int32_t>(i);
    }
    return -1;
}

void
AffinityAnalyzer::record(Stats &stats, uint32_t array)
{
    if (stats.count.empty()) {
        stats.count.assign(k, 0);
        stats.coCount.assign(k * k, 0);
    }
    ++stats.count[array];
    // Count each partner array at most once per window position scan.
    uint64_t seen_mask = 0;
    for (int32_t b : ring) {
        if (b < 0 || static_cast<uint32_t>(b) == array)
            continue;
        uint64_t bit = 1ULL << b;
        if (seen_mask & bit)
            continue;
        seen_mask |= bit;
        ++stats.coCount[array * k + static_cast<size_t>(b)];
    }
}

void
AffinityAnalyzer::onAccess(trace::Addr addr)
{
    int32_t a = arrayOf(addr);
    if (a < 0)
        return;
    record(perPhase[current], static_cast<uint32_t>(a));
    record(global, static_cast<uint32_t>(a));
    ring[ringPos] = a;
    ringPos = (ringPos + 1) % ring.size();
}

void
AffinityAnalyzer::onAccessBatch(const trace::Addr *addrs, size_t n)
{
    // No marker can land inside a batch, so the per-phase stats slot
    // is fixed for the whole loop (perPhase is a node-based map, the
    // reference stays valid while `global` grows).
    Stats &phase_stats = perPhase[current];
    for (size_t i = 0; i < n; ++i) {
        int32_t a = arrayOf(addrs[i]);
        if (a < 0)
            continue;
        record(phase_stats, static_cast<uint32_t>(a));
        record(global, static_cast<uint32_t>(a));
        ring[ringPos] = a;
        ringPos = (ringPos + 1) % ring.size();
    }
}

void
AffinityAnalyzer::onPhaseMarker(trace::PhaseId phase)
{
    current = phase;
}

AffinityGroups
AffinityAnalyzer::groupsFrom(const Stats &stats) const
{
    AffinityGroups groups;
    if (stats.count.empty())
        return groups;

    // Union-find over affine pairs.
    std::vector<uint32_t> parent(k);
    std::iota(parent.begin(), parent.end(), 0);
    auto find = [&](uint32_t x) {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    };

    for (uint32_t a = 0; a < k; ++a) {
        for (uint32_t b = a + 1; b < k; ++b) {
            if (stats.count[a] < cfg.minAccesses ||
                stats.count[b] < cfg.minAccesses)
                continue;
            double ab = static_cast<double>(stats.coCount[a * k + b]) /
                        static_cast<double>(stats.count[a]);
            double ba = static_cast<double>(stats.coCount[b * k + a]) /
                        static_cast<double>(stats.count[b]);
            if (ab >= cfg.threshold && ba >= cfg.threshold)
                parent[find(a)] = find(b);
        }
    }

    std::vector<std::vector<uint32_t>> buckets(k);
    for (uint32_t a = 0; a < k; ++a)
        buckets[find(a)].push_back(a);
    for (auto &bucket : buckets) {
        if (bucket.size() >= 2)
            groups.push_back(std::move(bucket));
    }
    return groups;
}

AffinityGroups
AffinityAnalyzer::groupsForPhase(trace::PhaseId phase) const
{
    auto it = perPhase.find(phase);
    return it == perPhase.end() ? AffinityGroups{}
                                : groupsFrom(it->second);
}

AffinityGroups
AffinityAnalyzer::globalGroups() const
{
    return groupsFrom(global);
}

std::vector<trace::PhaseId>
AffinityAnalyzer::phasesSeen() const
{
    std::vector<trace::PhaseId> out;
    for (const auto &kv : perPhase) {
        if (kv.first != 0xFFFFFFFFu)
            out.push_back(kv.first);
    }
    return out;
}

} // namespace lpp::remap
