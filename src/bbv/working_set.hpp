/**
 * @file
 * Working-set signatures (Dhodapkar & Smith) — the third interval-based
 * phase-detection technique the paper's related work compares against
 * (code working sets [9] in the paper's numbering).
 *
 * Each interval is summarized by a hashed bit vector of the code blocks
 * it touched; the relative signature distance (symmetric difference
 * over union) between consecutive intervals detects phase changes, and
 * signatures double as phase identifiers by nearest-match lookup.
 */

#ifndef LPP_BBV_WORKING_SET_HPP
#define LPP_BBV_WORKING_SET_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/sink.hpp"
#include "trace/types.hpp"

namespace lpp::bbv {

/** Hashed bit-vector signature of one interval's working set. */
class WorkingSetSignature
{
  public:
    /** @param bits signature width (Dhodapkar-Smith used 32-1024). */
    explicit WorkingSetSignature(size_t bits = 256);

    /** Add a code block (or data block) to the signature. */
    void add(uint64_t id);

    /** @return fraction of signature bits set. */
    double fillRatio() const;

    /**
     * Relative signature distance: |A xor B| / |A or B| (0 identical,
     * 1 disjoint; 0 when both empty).
     */
    double distance(const WorkingSetSignature &other) const;

    /** Reset to empty. */
    void clear();

    /** @return signature width in bits. */
    size_t bits() const { return width; }

  private:
    size_t width;
    std::vector<uint64_t> words;
};

/**
 * Interval driver: collects one signature per fixed instruction window
 * and classifies intervals into working-set phases by nearest-signature
 * match (new phase when the closest known signature is farther than the
 * threshold) — Dhodapkar & Smith's detection scheme.
 */
class WorkingSetPhases : public trace::TraceSink
{
  public:
    /**
     * @param interval_instructions window length
     * @param threshold relative distance above which a new phase starts
     * @param bits signature width
     */
    explicit WorkingSetPhases(uint64_t interval_instructions = 100000,
                              double threshold = 0.5,
                              size_t bits = 256);

    void onBlock(trace::BlockId block, uint32_t instructions) override;
    void onEnd() override;

    /** Data accesses carry no signal here; skip the per-access loop. */
    void onAccessBatch(const trace::Addr *, size_t) override {}

    /** Force the current interval closed (for aligned comparisons). */
    void finalizeInterval();

    /** @return the phase id assigned to each interval. */
    const std::vector<uint32_t> &intervalPhases() const
    {
        return phases;
    }

    /** @return number of distinct working-set phases found. */
    size_t phaseCount() const { return signatures.size(); }

    /** @return number of phase *changes* (consecutive differing ids). */
    uint64_t transitions() const;

  private:
    uint64_t intervalInstructions;
    double threshold;
    WorkingSetSignature current;
    uint64_t instrInInterval = 0;
    std::vector<WorkingSetSignature> signatures; //!< phase exemplars
    std::vector<uint32_t> phases;
};

} // namespace lpp::bbv

#endif // LPP_BBV_WORKING_SET_HPP
