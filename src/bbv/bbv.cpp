#include "bbv/bbv.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "support/logging.hpp"
#include "support/random.hpp"

namespace lpp::bbv {

BbvCollector::BbvCollector(size_t dims, uint64_t seed_)
    : dim(dims), seed(seed_)
{
    LPP_REQUIRE(dims > 0, "dims must be positive");
}

void
BbvCollector::onBlock(trace::BlockId block, uint32_t instructions)
{
    counts[block] += instructions;
    weight += instructions;
}

void
BbvCollector::addBlockWeight(trace::BlockId block, uint64_t instructions)
{
    counts[block] += instructions;
    weight += instructions;
}

double
projectionCoefficient(trace::BlockId block, size_t d, uint64_t seed)
{
    // One deterministic uniform [0,1) coefficient per (block, dim),
    // derived from a SplitMix64 stream — a fixed random projection
    // matrix generated on demand.
    SplitMix64 sm(seed ^
                  (static_cast<uint64_t>(block) * 0x9e3779b97f4a7c15ULL) ^
                  (static_cast<uint64_t>(d) << 32));
    return static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
}

double
BbvCollector::projection(trace::BlockId block, size_t d) const
{
    return projectionCoefficient(block, d, seed);
}

void
BbvCollector::finalizeInterval()
{
    std::vector<double> v(dim, 0.0);
    if (weight > 0) {
        // Accumulate in sorted block order: float addition is not
        // associative, and the map's iteration order is unspecified.
        // A fixed order makes the vector a pure function of the
        // (block, count) multiset, so any path that produces the same
        // per-interval counts — serial or sharded-and-merged — yields
        // bit-identical vectors.
        std::vector<std::pair<trace::BlockId, uint64_t>> ordered(
            counts.begin(), counts.end());
        std::sort(ordered.begin(), ordered.end());
        for (const auto &kv : ordered) {
            double share = static_cast<double>(kv.second) /
                           static_cast<double>(weight);
            for (size_t d = 0; d < dim; ++d)
                v[d] += share * projection(kv.first, d);
        }
        // Normalize to unit L1 so interval length does not matter.
        double sum = 0.0;
        for (double x : v)
            sum += x;
        if (sum > 0.0) {
            for (double &x : v)
                x /= sum;
        }
        // Consumers (clustering, markov) assume a unit-L1 probability
        // vector: coordinates in [0, 1] summing to 1 (within float
        // rounding) whenever the interval had any weight.
#if !defined(NDEBUG) || defined(LPP_FORCE_DCHECKS)
        double norm = 0.0;
        for (double x : v) {
            LPP_DCHECK(x >= 0.0 && x <= 1.0,
                       "BBV coordinate %f outside [0, 1]", x);
            norm += x;
        }
        LPP_DCHECK(norm == 0.0 || std::abs(norm - 1.0) < 1e-9,
                   "BBV not L1-normalized: sum %f", norm);
#endif
    }
    intervalVectors.push_back(std::move(v));
    counts.clear();
    weight = 0;
}

double
manhattan(const std::vector<double> &a, const std::vector<double> &b)
{
    LPP_REQUIRE(a.size() == b.size(), "dimension mismatch: %zu vs %zu",
                a.size(), b.size());
    double d = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        d += std::abs(a[i] - b[i]);
    return d;
}

} // namespace lpp::bbv
