/**
 * @file
 * Run-length-encoded Markov predictor (Sherwood et al.), the best BBV
 * predictor in the paper's comparison. The predictor state is the pair
 * (current cluster, current run length); the table remembers the cluster
 * that followed that state last time, with last-value fallback.
 */

#ifndef LPP_BBV_MARKOV_HPP
#define LPP_BBV_MARKOV_HPP

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace lpp::bbv {

/** RLE Markov predictor over cluster ids. */
class RleMarkovPredictor
{
  public:
    /** @param max_run run lengths are capped at this value. */
    explicit RleMarkovPredictor(uint32_t max_run = 64);

    /**
     * Predict the cluster of the next interval given everything observed
     * so far (last-value before any table hit).
     */
    uint32_t predict() const;

    /** Observe the actual cluster of the next interval. */
    void observe(uint32_t cluster);

    /** Convenience: predictions for a whole sequence, one per element.
     *  prediction[i] is made after observing elements [0, i). */
    std::vector<uint32_t>
    predictSequence(const std::vector<uint32_t> &clusters);

    /** @return fraction of correct predictions over predictSequence. */
    static double accuracy(const std::vector<uint32_t> &predicted,
                           const std::vector<uint32_t> &actual);

    /** @return table size (for inspection). */
    size_t tableSize() const { return table.size(); }

  private:
    uint64_t
    stateKey() const
    {
        return (static_cast<uint64_t>(lastCluster) << 32) | runLength;
    }

    uint32_t maxRun;
    uint32_t lastCluster = 0;
    uint32_t runLength = 0;
    bool primed = false;
    std::unordered_map<uint64_t, uint32_t> table;
};

} // namespace lpp::bbv

#endif // LPP_BBV_MARKOV_HPP
