#include "bbv/clustering.hpp"

#include <limits>

#include "bbv/bbv.hpp"
#include "support/logging.hpp"

namespace lpp::bbv {

BbvClustering::BbvClustering(double threshold_) : threshold(threshold_)
{
    LPP_REQUIRE(threshold > 0.0, "threshold must be positive");
}

uint32_t
BbvClustering::assign(const std::vector<double> &v)
{
    double best = std::numeric_limits<double>::infinity();
    size_t best_c = 0;
    for (size_t c = 0; c < centroids.size(); ++c) {
        double d = manhattan(v, centroids[c]);
        if (d < best) {
            best = d;
            best_c = c;
        }
    }

    if (best <= threshold) {
        // Update the running-mean centroid.
        auto &cen = centroids[best_c];
        double n = static_cast<double>(++members[best_c]);
        for (size_t i = 0; i < cen.size(); ++i)
            cen[i] += (v[i] - cen[i]) / n;
        return static_cast<uint32_t>(best_c);
    }

    centroids.push_back(v);
    members.push_back(1);
    return static_cast<uint32_t>(centroids.size() - 1);
}

std::vector<uint32_t>
BbvClustering::assignAll(const std::vector<std::vector<double>> &vectors)
{
    std::vector<uint32_t> ids;
    ids.reserve(vectors.size());
    for (const auto &v : vectors)
        ids.push_back(assign(v));
    return ids;
}

} // namespace lpp::bbv
