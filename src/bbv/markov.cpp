#include "bbv/markov.hpp"

#include "support/logging.hpp"

namespace lpp::bbv {

RleMarkovPredictor::RleMarkovPredictor(uint32_t max_run) : maxRun(max_run)
{
    LPP_REQUIRE(max_run >= 1, "max_run must be >= 1");
}

uint32_t
RleMarkovPredictor::predict() const
{
    if (!primed)
        return 0;
    auto it = table.find(stateKey());
    if (it != table.end())
        return it->second;
    return lastCluster; // last-value fallback
}

void
RleMarkovPredictor::observe(uint32_t cluster)
{
    if (primed)
        table[stateKey()] = cluster;

    if (primed && cluster == lastCluster) {
        if (runLength < maxRun)
            ++runLength;
    } else {
        lastCluster = cluster;
        runLength = 1;
        primed = true;
    }
}

std::vector<uint32_t>
RleMarkovPredictor::predictSequence(const std::vector<uint32_t> &clusters)
{
    std::vector<uint32_t> out;
    out.reserve(clusters.size());
    for (uint32_t c : clusters) {
        out.push_back(predict());
        observe(c);
    }
    return out;
}

double
RleMarkovPredictor::accuracy(const std::vector<uint32_t> &predicted,
                             const std::vector<uint32_t> &actual)
{
    LPP_REQUIRE(predicted.size() == actual.size(),
                "size mismatch: %zu vs %zu", predicted.size(),
                actual.size());
    if (predicted.empty())
        return 0.0;
    uint64_t hit = 0;
    for (size_t i = 0; i < predicted.size(); ++i)
        hit += predicted[i] == actual[i];
    return static_cast<double>(hit) /
           static_cast<double>(predicted.size());
}

} // namespace lpp::bbv
