/**
 * @file
 * On-line leader-follower clustering of BBVs (Sherwood et al.'s phase
 * tracker): a vector joins the nearest existing cluster if its Manhattan
 * distance to the centroid is under a threshold, otherwise it founds a
 * new cluster. Centroids track the running mean of their members.
 */

#ifndef LPP_BBV_CLUSTERING_HPP
#define LPP_BBV_CLUSTERING_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lpp::bbv {

/** On-line BBV clusterer. */
class BbvClustering
{
  public:
    /**
     * @param threshold Manhattan-distance threshold for joining an
     *        existing cluster (on unit-L1 vectors)
     */
    explicit BbvClustering(double threshold = 0.2);

    /**
     * Assign a vector to a cluster (possibly new).
     * @return the cluster id
     */
    uint32_t assign(const std::vector<double> &v);

    /** Assign a whole sequence; @return one cluster id per vector. */
    std::vector<uint32_t>
    assignAll(const std::vector<std::vector<double>> &vectors);

    /** @return number of clusters formed so far. */
    size_t clusterCount() const { return centroids.size(); }

    /** @return members assigned to cluster `c`. */
    uint64_t memberCount(uint32_t c) const { return members[c]; }

    /** @return the current centroid of cluster `c`. */
    const std::vector<double> &centroid(uint32_t c) const
    {
        return centroids[c];
    }

  private:
    double threshold;
    std::vector<std::vector<double>> centroids;
    std::vector<uint64_t> members;
};

} // namespace lpp::bbv

#endif // LPP_BBV_CLUSTERING_HPP
