/**
 * @file
 * Basic-block vectors (Sherwood et al., the paper's strongest baseline).
 *
 * An execution is cut into fixed-length intervals; each interval is
 * summarized by the frequency of every basic block weighted by its
 * instruction count, randomly projected to a small dimension (32 in the
 * paper) and normalized. Similar intervals then cluster together.
 */

#ifndef LPP_BBV_BBV_HPP
#define LPP_BBV_BBV_HPP

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trace/sink.hpp"
#include "trace/types.hpp"

namespace lpp::bbv {

/**
 * Collects one randomly projected basic-block vector per interval.
 *
 * Interval boundaries are driven externally through finalizeInterval()
 * so that locality measurement (a StackSimulator) and BBV collection can
 * be cut at exactly the same points by one driver.
 */
class BbvCollector : public trace::TraceSink
{
  public:
    /**
     * @param dims projected dimensionality (the paper uses 32)
     * @param seed seed of the random projection matrix
     */
    explicit BbvCollector(size_t dims = 32, uint64_t seed = 12345);

    void onBlock(trace::BlockId block, uint32_t instructions) override;

    /**
     * Bulk form of onBlock for merged per-interval counts (the sharded
     * profile accumulates integer block counts per chunk and feeds the
     * merged map here). Same accumulation, 64-bit count.
     */
    void addBlockWeight(trace::BlockId block, uint64_t instructions);

    /** BBVs ignore data accesses; skip the per-access default loop. */
    void onAccessBatch(const trace::Addr *, size_t) override {}

    /** Close the current interval and append its projected vector. */
    void finalizeInterval();

    void
    onEnd() override
    {
        if (weight > 0)
            finalizeInterval();
    }

    /** @return one normalized projected vector per interval. */
    const std::vector<std::vector<double>> &vectors() const
    {
        return intervalVectors;
    }

    /** @return projected dimensionality. */
    size_t dims() const { return dim; }

  private:
    /** Deterministic projection coefficient for (block, dim). */
    double projection(trace::BlockId block, size_t d) const;

    size_t dim;
    uint64_t seed;
    std::unordered_map<trace::BlockId, uint64_t> counts;
    uint64_t weight = 0;
    std::vector<std::vector<double>> intervalVectors;
};

/**
 * Deterministic uniform [0,1) projection coefficient for (block, dim):
 * the random projection matrix, generated on demand. BbvCollector uses
 * this internally; external aggregators (e.g. the stratified
 * evaluator's extrapolated whole-run BBV) share the same matrix so
 * their vectors are comparable with the collector's.
 */
double projectionCoefficient(trace::BlockId block, size_t d,
                             uint64_t seed);

/** Manhattan (L1) distance between two vectors of equal size. */
double manhattan(const std::vector<double> &a,
                 const std::vector<double> &b);

} // namespace lpp::bbv

#endif // LPP_BBV_BBV_HPP
