#include "bbv/working_set.hpp"

#include <bit>

#include "support/logging.hpp"
#include "support/random.hpp"

namespace lpp::bbv {

WorkingSetSignature::WorkingSetSignature(size_t bits) : width(bits)
{
    LPP_REQUIRE(bits >= 8 && bits % 64 == 0,
                "signature bits must be a multiple of 64, got %zu",
                bits);
    words.assign(bits / 64, 0);
}

void
WorkingSetSignature::add(uint64_t id)
{
    SplitMix64 sm(id * 0x9e3779b97f4a7c15ULL + 1);
    uint64_t h = sm.next();
    size_t bit = static_cast<size_t>(h % width);
    words[bit / 64] |= 1ULL << (bit % 64);
}

double
WorkingSetSignature::fillRatio() const
{
    uint64_t set = 0;
    for (uint64_t w : words)
        set += static_cast<uint64_t>(std::popcount(w));
    return static_cast<double>(set) / static_cast<double>(width);
}

double
WorkingSetSignature::distance(const WorkingSetSignature &other) const
{
    LPP_REQUIRE(width == other.width, "signature width mismatch");
    uint64_t sym = 0, uni = 0;
    for (size_t i = 0; i < words.size(); ++i) {
        sym += static_cast<uint64_t>(
            std::popcount(words[i] ^ other.words[i]));
        uni += static_cast<uint64_t>(
            std::popcount(words[i] | other.words[i]));
    }
    return uni == 0 ? 0.0
                    : static_cast<double>(sym) /
                          static_cast<double>(uni);
}

void
WorkingSetSignature::clear()
{
    words.assign(words.size(), 0);
}

WorkingSetPhases::WorkingSetPhases(uint64_t interval_instructions,
                                   double threshold_, size_t bits)
    : intervalInstructions(interval_instructions),
      threshold(threshold_), current(bits)
{
    LPP_REQUIRE(interval_instructions > 0, "empty interval");
    LPP_REQUIRE(threshold > 0.0 && threshold <= 1.0,
                "threshold must be in (0, 1], got %f", threshold_);
}

void
WorkingSetPhases::onBlock(trace::BlockId block, uint32_t instructions)
{
    current.add(block);
    instrInInterval += instructions;
    if (instrInInterval >= intervalInstructions)
        finalizeInterval();
}

void
WorkingSetPhases::finalizeInterval()
{
    // Nearest-exemplar classification.
    double best = 2.0;
    size_t best_idx = 0;
    for (size_t i = 0; i < signatures.size(); ++i) {
        double d = current.distance(signatures[i]);
        if (d < best) {
            best = d;
            best_idx = i;
        }
    }
    if (best <= threshold) {
        phases.push_back(static_cast<uint32_t>(best_idx));
    } else {
        signatures.push_back(current);
        phases.push_back(static_cast<uint32_t>(signatures.size() - 1));
    }
    current.clear();
    instrInInterval = 0;
}

void
WorkingSetPhases::onEnd()
{
    if (instrInInterval > 0)
        finalizeInterval();
}

uint64_t
WorkingSetPhases::transitions() const
{
    uint64_t t = 0;
    for (size_t i = 1; i < phases.size(); ++i)
        t += phases[i] != phases[i - 1];
    return t;
}

} // namespace lpp::bbv
