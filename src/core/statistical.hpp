/**
 * @file
 * Statistics-based phase prediction — the extension the paper sketches
 * for Gcc and Vortex (Section 3.1.2): their phase *structure* is
 * recognizable but the exact length of an execution depends on the
 * input (the function being compiled, the query being served), so
 * point prediction fails. Ding & Zhong observed that the *overall*
 * behaviour is stable; accordingly this predictor maintains the
 * empirical distribution of each phase's past lengths and predicts a
 * quantile band instead of a point. Exact-match accuracy stays ~0 on
 * such programs while band predictions become usefully reliable.
 */

#ifndef LPP_CORE_STATISTICAL_HPP
#define LPP_CORE_STATISTICAL_HPP

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/runtime.hpp"
#include "trace/types.hpp"

namespace lpp::core {

/** Tuning of the statistical predictor. */
struct StatisticalConfig
{
    /** Observations of a phase before it becomes predictable. */
    size_t minObservations = 5;

    /** Lower quantile of the predicted band. */
    double lowQuantile = 0.1;

    /** Upper quantile of the predicted band. */
    double highQuantile = 0.9;
};

/** On-line quantile-band predictor over phase execution lengths. */
class StatisticalPredictor
{
  public:
    using Config = StatisticalConfig;

    /** A predicted range of instruction counts. */
    struct Band
    {
        uint64_t low = 0;     //!< lowQuantile of past lengths
        uint64_t high = 0;    //!< highQuantile of past lengths
        double mean = 0.0;    //!< mean past length
        size_t observations = 0;

        /** @return whether `length` falls inside the band. */
        bool
        contains(uint64_t length) const
        {
            return length >= low && length <= high;
        }

        /** @return band width relative to its mean (0 = point). */
        double
        relativeWidth() const
        {
            return mean > 0.0
                       ? static_cast<double>(high - low) / mean
                       : 0.0;
        }
    };

    explicit StatisticalPredictor(Config cfg = {});

    /** Record one completed execution of `phase`. */
    void observe(trace::PhaseId phase, uint64_t instructions);

    /**
     * Predict the next execution's length band.
     * @return false while the phase has too few observations
     */
    bool predict(trace::PhaseId phase, Band *band) const;

    /** @return observations recorded for `phase`. */
    size_t observationCount(trace::PhaseId phase) const;

  private:
    Config cfg;
    std::unordered_map<trace::PhaseId, std::vector<uint64_t>> history;
};

/** Outcome of running the band predictor over a whole replay. */
struct BandMetrics
{
    uint64_t predictions = 0; //!< band predictions issued
    double hitRate = 0.0;     //!< fraction of bands containing actual
    double coverage = 0.0;    //!< instr share under issued predictions
    double meanRelativeWidth = 0.0; //!< avg band width / mean length
};

/** Replay-driven evaluation of statistical prediction. */
BandMetrics
evaluateStatisticalPrediction(const Replay &replay,
                              StatisticalPredictor::Config cfg = {});

/**
 * Evaluate many predictor configurations against the same replay,
 * fanning the independent replays across the shared thread pool.
 * Results are indexed like `configs`; each entry is bit-identical to
 * evaluateStatisticalPrediction(replay, configs[i]) run serially.
 */
std::vector<BandMetrics>
evaluateStatisticalSweep(
    const Replay &replay,
    const std::vector<StatisticalPredictor::Config> &configs);

} // namespace lpp::core

#endif // LPP_CORE_STATISTICAL_HPP
