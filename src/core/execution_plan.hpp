/**
 * @file
 * Execution plan: one program run, many consumers.
 *
 * The analysis stack is a set of consumers of trace event streams, and
 * program executions are the scarce resource: re-running a workload to
 * feed each consumer separately multiplies simulation time. The plan
 * inverts that. Consumers register *passes* keyed by the execution they
 * need — same key, same event stream, bit for bit — plus *steps*, plain
 * computations over earlier results. At run() the planner coalesces
 * passes that share a key into one execution through a batch-preserving
 * trace::FanoutSink, orders units by their declared dependencies, and
 * schedules independent units across the shared support::ThreadPool.
 *
 * Contracts:
 *
 *  - Same key, same stream: every pass registered under one key must be
 *    satisfied by one execution of that key's program. The runner of
 *    the unit's first pass (lowest node id) drives the merged run.
 *  - Dependencies reference earlier nodes only (ids already returned),
 *    so the node graph is acyclic by construction. Passes whose key
 *    matches but that transitively depend on one another — or whose
 *    merge would create a cycle between merged units — are split into
 *    separate executions instead.
 *  - Sink factories run lazily on the executing thread, after the
 *    unit's dependencies completed, so a factory can read results an
 *    earlier node produced (e.g. size a sampler from a precount).
 *  - Merged results are bit-identical to running each pass's execution
 *    serially on its own: FanoutSink re-delivers every event, including
 *    access-batch boundaries, unmodified to each member sink in node-id
 *    order.
 *
 * In debug builds (and sanitizer builds with LPP_DCHECKS) every
 * execution streams through a trace::ValidatingSink placed between the
 * producer and the fanout, and the plan asserts the stream honoured the
 * sink protocol.
 */

#ifndef LPP_CORE_EXECUTION_PLAN_HPP
#define LPP_CORE_EXECUTION_PLAN_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "support/thread_pool.hpp"
#include "trace/sink.hpp"
#include "workloads/workload.hpp"

namespace lpp::core {

/** @return the canonical execution key for a workload input. */
std::string workloadKey(const workloads::Workload &workload,
                        const workloads::WorkloadInput &input);

/** Per-pass options (namespace scope so it can default-initialize in
 *  ExecutionPlan's own signatures). */
struct PassOptions
{
    /**
     * The runner re-delivers a recorded stream (trace::MemoryTrace)
     * instead of executing the program. Replays are counted separately
     * and never coalesce with live executions of the same key.
     */
    bool replay = false;
};

/** Coalescing pass manager over program executions. */
class ExecutionPlan
{
  public:
    /** Handle of a registered node; also its registration order. */
    using NodeId = size_t;

    /** Streams one complete execution into the sink it is given. */
    using Runner = std::function<void(trace::TraceSink &)>;

    /**
     * Builds the pass's consumer sink on the executing thread, after
     * the pass's dependencies completed. The returned sink is borrowed:
     * the factory (or state it captures, see retain()) owns it, and it
     * must stay alive until the plan is destroyed.
     */
    using SinkFactory = std::function<trace::TraceSink *()>;

    /** Plan-wide accounting, final once run() returns. */
    struct Stats
    {
        uint64_t passes = 0;            //!< pass nodes registered
        uint64_t steps = 0;             //!< step nodes registered
        uint64_t programExecutions = 0; //!< live executions scheduled
        uint64_t replayExecutions = 0;  //!< replay executions scheduled
        uint64_t coalescedPasses = 0;   //!< passes that shared a run
    };

    ExecutionPlan() = default;
    ExecutionPlan(const ExecutionPlan &) = delete;
    ExecutionPlan &operator=(const ExecutionPlan &) = delete;

    /**
     * Register a consumer of one execution of `key`.
     *
     * @param key    execution identity; equal keys promise identical
     *               event streams (see workloadKey())
     * @param runner drives the execution when this pass's unit runs;
     *               used only if this pass is the unit's first member
     * @param sink   factory for the consumer sink (see SinkFactory)
     * @param after  node ids that must complete before this pass runs;
     *               every id must have been returned already
     * @param opts   see PassOptions
     * @return this pass's node id
     */
    NodeId addPass(std::string key, Runner runner, SinkFactory sink,
                   std::vector<NodeId> after = {}, PassOptions opts = {});

    /**
     * Register a computation over earlier results (no execution).
     *
     * @param fn    runs on the executing thread once `after` completed
     * @param after node ids that must complete first
     * @return this step's node id
     */
    NodeId addStep(std::function<void()> fn,
                   std::vector<NodeId> after = {});

    /** Keep `keepalive` alive until the plan is destroyed. */
    void retain(std::shared_ptr<void> keepalive);

    /**
     * Coalesce, schedule, and run every node. Independent units run
     * concurrently on `pool` unless the pool is single-threaded, in
     * which case units run serially in deterministic order. The calling
     * thread participates in the parallel schedule (it claims ready
     * units alongside the pool's workers), so running a plan from
     * inside a pool worker is safe — the caller drains the whole plan
     * itself if every worker is busy. One-shot. If a node throws, its
     * dependents are abandoned, every unaffected unit still runs, and
     * the first failing node's exception (lowest unit) is rethrown.
     */
    void run(support::ThreadPool &pool = support::ThreadPool::shared());

    /** @return plan accounting (execution counts final after run()). */
    const Stats &stats() const { return counters; }

    /**
     * @return live program executions whose key starts with
     *         `key_prefix` (replays excluded). Valid after run().
     */
    uint64_t programExecutions(std::string_view key_prefix) const;

  private:
    struct Node
    {
        bool isPass = false;
        std::string key;                //!< passes only
        Runner runner;                  //!< passes only
        SinkFactory sinkFactory;        //!< passes only
        bool replay = false;            //!< passes only
        std::function<void()> step;     //!< steps only
        std::vector<NodeId> deps;
    };

    /** One schedulable piece: a merged execution or a single step. */
    struct Unit
    {
        std::vector<NodeId> members;    //!< ascending node ids
        std::vector<size_t> deps;       //!< unit indices
        std::vector<size_t> dependents; //!< unit indices
    };

    struct ParallelSched; // shared scheduler state, defined in the .cpp

    void buildUnits();
    void runUnit(const Unit &unit) const;
    void runSerial();
    void runParallel(support::ThreadPool &pool);
    static void drainParallel(const std::shared_ptr<ParallelSched> &sched);

    std::vector<Node> nodes;
    std::vector<Unit> units;
    std::vector<std::shared_ptr<void>> keepalives;
    Stats counters;
    bool ran = false;
};

} // namespace lpp::core

#endif // LPP_CORE_EXECUTION_PLAN_HPP
