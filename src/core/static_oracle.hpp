/**
 * @file
 * The static oracle: cross-checking the dynamic pipeline against a
 * zero-execution prediction.
 *
 * For workloads that carry an affine IR (workloads::StaticallyDescribed)
 * the staticloc engines predict the training run's reuse histogram,
 * miss curve, footprint, and phase schedule without running anything.
 * The oracle measures the same quantities from a *replay* of the
 * already-recorded training stream and compares within configurable
 * bounds — exact (bit/count identical) by default, because every
 * staticloc engine is exact for the programs it accepts. A divergence
 * means the dynamic pipeline (recorder, replay, reuse stack, sharded
 * sweep) perturbed the stream or the measurement: an independent
 * correctness tripwire that costs zero live program executions.
 *
 * Error-bound contract (see DESIGN.md "Static locality oracle"):
 *  - histogram: relative L1 divergence <= histogramTolerance (0 means
 *    bin-for-bin identical, the default);
 *  - miss curve: |predicted - measured| miss rate <= missRateTolerance
 *    at every power-of-two capacity;
 *  - phase boundaries: predicted phase-entry clocks must equal the
 *    measured manual-marker clocks within markerTolerance accesses
 *    (0 = exact), ids included; the *detected* boundaries (sparse
 *    sampling, so never clock-exact) must each fall within
 *    boundarySlack accesses of a predicted phase transition.
 */

#ifndef LPP_CORE_STATIC_ORACLE_HPP
#define LPP_CORE_STATIC_ORACLE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "reuse/analyzer.hpp"
#include "staticloc/predict.hpp"
#include "support/histogram.hpp"
#include "trace/sink.hpp"

namespace lpp::core {

/** Oracle verification settings (AnalysisConfig::staticOracle). */
struct StaticOracleConfig
{
    bool enabled = false; //!< opt-in verification mode

    /** Engine choice; Auto = strongest applicable (always exact). */
    staticloc::Method method = staticloc::Method::Auto;

    /** Histogram relative-L1 bound; 0 demands bin-identity. */
    double histogramTolerance = 0.0;

    /** Miss-rate bound over power-of-two capacities; 0 = exact. */
    double missRateTolerance = 0.0;

    /** Manual-marker clock bound, in accesses; 0 = exact. */
    uint64_t markerTolerance = 0;

    /** Detected boundaries must land this close to a predicted phase
     *  transition (sampling spacing makes them inherently inexact). */
    uint64_t boundarySlack = 1024;

    /**
     * Fail when the detector finds no boundaries although the
     * prediction says the run has phase transitions. Off by default:
     * a strictly periodic program reaches a steady state where every
     * datum's qualifying reuse distances are constant, the wavelet
     * filter keeps nothing (no rare events), and the detector
     * legitimately reports no boundaries — the paper's detection keys
     * on *changing* locality. When the detector does report
     * boundaries, the boundarySlack check above always applies.
     */
    bool requireDetection = false;
};

/** What the measured side of the comparison observed. */
struct MeasuredLocality
{
    LogHistogram histogram; //!< whole-run reuse-distance histogram
    uint64_t accesses = 0;
    uint64_t distinctElements = 0;
    std::vector<uint64_t> markerTimes; //!< manual markers, access clock
    std::vector<uint32_t> markerIds;
};

/** Outcome of one static-vs-dynamic comparison. */
struct StaticOracleReport
{
    bool applicable = false; //!< workload carries an affine IR
    bool checked = false;    //!< a comparison ran
    bool ok = false;         //!< every enabled bound held

    staticloc::Method method = staticloc::Method::Counting;
    bool exact = false; //!< the engine claims exactness

    uint64_t predictedAccesses = 0;
    uint64_t measuredAccesses = 0;
    uint64_t predictedFootprint = 0;
    uint64_t measuredFootprint = 0;

    double histogramDivergence = 0.0; //!< relative L1, 0 = identical
    bool histogramIdentical = false;
    double maxMissRateError = 0.0;

    bool markersIdentical = false; //!< counts, ids and exact clocks
    uint64_t markerMaxError = 0;   //!< max |predicted - measured| clock
    uint64_t predictedPhaseExecutions = 0;
    uint64_t measuredMarkers = 0;

    uint64_t detectedBoundaries = 0;
    uint64_t detectedBoundaryMaxError = 0; //!< to nearest prediction
    double detectedBoundaryPrecision = 0.0; //!< within boundarySlack

    std::vector<std::string> failures; //!< violated bounds, readable
};

/** @return bin-for-bin equality, totals included. */
bool histogramsIdentical(const LogHistogram &a, const LogHistogram &b);

/**
 * @return relative L1 divergence: sum over bins (and the infinite bin)
 *         of |a - b|, over max(total(a), total(b), 1). 0 iff identical
 *         at bin granularity.
 */
double histogramDivergence(const LogHistogram &a, const LogHistogram &b);

/**
 * Compare a static prediction against the measured training run and
 * the detector's boundary times under `config`'s bounds. Pure
 * computation; `config.enabled` is not consulted.
 */
StaticOracleReport
compareStaticOracle(const staticloc::StaticPrediction &prediction,
                    const MeasuredLocality &measured,
                    const std::vector<uint64_t> &detected_boundaries,
                    const StaticOracleConfig &config);

/**
 * The measured side, as a sink: an element-granularity ReuseAnalyzer
 * plus manual-marker clocks, fed from a replay of the recorded
 * training stream.
 */
class MeasuredLocalitySink : public trace::TraceSink
{
  public:
    /** @param element_hint expected footprint; pre-sizes the stack. */
    explicit MeasuredLocalitySink(uint64_t element_hint = 0)
        : analyzer(element_hint)
    {
    }

    void onAccess(trace::Addr addr) override { analyzer.onAccess(addr); }

    void
    onAccessBatch(const trace::Addr *addrs, size_t n) override
    {
        analyzer.onAccessBatch(addrs, n);
    }

    void
    onManualMarker(uint32_t marker_id) override
    {
        out.markerTimes.push_back(analyzer.accessCount());
        out.markerIds.push_back(marker_id);
    }

    /** @return the measurement (valid once the stream ended). */
    MeasuredLocality
    take()
    {
        out.histogram = analyzer.histogram();
        out.accesses = analyzer.accessCount();
        out.distinctElements = analyzer.distinctElements();
        return std::move(out);
    }

  private:
    reuse::ReuseAnalyzer analyzer;
    MeasuredLocality out;
};

} // namespace lpp::core

#endif // LPP_CORE_STATIC_ORACLE_HPP
