#include "core/runtime.hpp"

#include <unordered_map>

#include "support/stats.hpp"

namespace lpp::core {

std::vector<trace::PhaseId>
Replay::sequence() const
{
    std::vector<trace::PhaseId> seq;
    seq.reserve(executions.size());
    for (const auto &e : executions)
        seq.push_back(e.phase);
    return seq;
}

void
ExecutionCollector::onBlock(trace::BlockId, uint32_t instructions)
{
    instrClock += instructions;
}

void
ExecutionCollector::onAccess(trace::Addr addr)
{
    ++accessClock;
    sim.onAccess(addr);
}

void
ExecutionCollector::onAccessBatch(const trace::Addr *addrs, size_t n)
{
    accessClock += n;
    sim.onAccessBatch(addrs, n);
}

void
ExecutionCollector::closeExecution(uint64_t end_instr,
                                   uint64_t end_access)
{
    sim.markSegment();
    ExecutionRecord rec;
    rec.phase = currentPhase;
    rec.startInstr = phaseStartInstr;
    rec.startAccess = phaseStartAccess;
    rec.instructions = end_instr - phaseStartInstr;
    rec.accesses = end_access - phaseStartAccess;
    rec.locality = sim.segments().back();
    result.executions.push_back(rec);
}

void
ExecutionCollector::onPhaseMarker(trace::PhaseId phase)
{
    if (inPhase) {
        closeExecution(instrClock, accessClock);
    } else {
        result.prologueInstructions = instrClock;
        sim.markSegment(); // discard prologue segment locality
    }
    inPhase = true;
    currentPhase = phase;
    phaseStartInstr = instrClock;
    phaseStartAccess = accessClock;
}

void
ExecutionCollector::onEnd()
{
    if (inPhase)
        closeExecution(instrClock, accessClock);
    inPhase = false;
    result.totalInstructions = instrClock;
    result.totalAccesses = accessClock;
}

Replay
replayInstrumented(const trace::MarkerTable &table,
                   const std::function<void(trace::TraceSink &)> &runner)
{
    ExecutionCollector collector;
    trace::Instrumenter inst(table, collector);
    runner(inst);
    return collector.replay();
}

PredictionMetrics
evaluatePrediction(const Replay &replay,
                   const std::vector<bool> &training_consistent)
{
    PredictionMetrics m;
    if (replay.totalInstructions == 0)
        return m;

    struct History
    {
        uint64_t lastLength = 0;
        uint64_t count = 0;
        bool stillExact = true; //!< all executions so far identical
    };
    std::unordered_map<trace::PhaseId, History> hist;

    uint64_t strict_correct = 0, relaxed_correct = 0;
    uint64_t strict_instr = 0, relaxed_instr = 0;

    for (const auto &e : replay.executions) {
        History &h = hist[e.phase];
        bool train_ok = e.phase < training_consistent.size() &&
                        training_consistent[e.phase];

        if (h.count >= 1) {
            // Relaxed: always predict from the previous execution.
            ++m.relaxedPredictions;
            relaxed_instr += e.instructions;
            if (e.instructions == h.lastLength)
                ++relaxed_correct;

            // Strict: only while the profile and the run agree the
            // phase repeats exactly.
            if (train_ok && h.stillExact) {
                ++m.strictPredictions;
                strict_instr += e.instructions;
                if (e.instructions == h.lastLength)
                    ++strict_correct;
            }
        }

        if (h.count >= 1 && e.instructions != h.lastLength)
            h.stillExact = false;
        h.lastLength = e.instructions;
        ++h.count;
    }

    double total = static_cast<double>(replay.totalInstructions);
    m.strictCoverage = static_cast<double>(strict_instr) / total;
    m.relaxedCoverage = static_cast<double>(relaxed_instr) / total;
    m.strictAccuracy =
        m.strictPredictions == 0
            ? 0.0
            : static_cast<double>(strict_correct) /
                  static_cast<double>(m.strictPredictions);
    m.relaxedAccuracy =
        m.relaxedPredictions == 0
            ? 0.0
            : static_cast<double>(relaxed_correct) /
                  static_cast<double>(m.relaxedPredictions);
    return m;
}

double
phaseLocalityStddev(const Replay &replay)
{
    // The first execution of a phase is the one the predictor learns
    // from (and the only one with cold-cache effects); the statistic
    // describes how well the *predicted* executions repeat, so the
    // first occurrence of each phase is excluded.
    std::unordered_map<trace::PhaseId, VectorStats> stats;
    std::unordered_map<trace::PhaseId, bool> seen;
    for (const auto &e : replay.executions) {
        if (!seen[e.phase]) {
            seen[e.phase] = true;
            continue;
        }
        auto it = stats.find(e.phase);
        if (it == stats.end())
            it = stats.emplace(e.phase, VectorStats(cache::simWays))
                     .first;
        it->second.push(e.locality.missRateVector());
    }

    double weighted = 0.0;
    size_t total = 0;
    for (const auto &kv : stats) {
        weighted += kv.second.averageStddev() *
                    static_cast<double>(kv.second.count());
        total += kv.second.count();
    }
    return total == 0 ? 0.0 : weighted / static_cast<double>(total);
}

} // namespace lpp::core
