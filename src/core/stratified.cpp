#include "core/stratified.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>

#include "bbv/bbv.hpp"
#include "support/logging.hpp"
#include "support/parallel_for.hpp"
#include "support/random.hpp"
#include "support/thread_pool.hpp"

namespace lpp::core {

namespace {

/**
 * Standard normal quantile (Acklam's rational approximation, |error| <
 * 1.15e-9 over (0, 1)) — the z in the Cornish-Fisher t expansion and
 * the infinite-dof limit.
 */
double
normalQuantile(double p)
{
    LPP_REQUIRE(p > 0.0 && p < 1.0, "quantile probability %f out of (0,1)",
                p);
    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00,  2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};
    constexpr double plow = 0.02425;
    double q, r;
    if (p < plow) {
        q = std::sqrt(-2.0 * std::log(p));
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
                c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    if (p > 1.0 - plow) {
        q = std::sqrt(-2.0 * std::log(1.0 - p));
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
                 c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
            1.0);
}

/** Two-sided t quantile at upper-tail probability `p` and dof `nu`,
 *  exact for nu 1 and 2, Cornish-Fisher beyond. */
double
tQuantileAt(double p, double nu)
{
    if (nu <= 1.0)
        return std::tan(M_PI * (p - 0.5)); // Cauchy, exact
    if (nu == 2.0) {
        double x = 2.0 * p - 1.0;
        return x * std::sqrt(2.0 / (1.0 - x * x)); // exact
    }
    // Cornish-Fisher expansion of the t quantile around the normal
    // one; relative error < 0.2% at nu = 3 and shrinking with nu.
    double z = normalQuantile(p);
    double z2 = z * z, z3 = z2 * z, z5 = z3 * z2, z7 = z5 * z2,
           z9 = z7 * z2;
    double g1 = (z3 + z) / 4.0;
    double g2 = (5.0 * z5 + 16.0 * z3 + 3.0 * z) / 96.0;
    double g3 = (3.0 * z7 + 19.0 * z5 + 17.0 * z3 - 15.0 * z) / 384.0;
    double g4 = (79.0 * z9 + 776.0 * z7 + 1482.0 * z5 - 1920.0 * z3 -
                 945.0 * z) /
                92160.0;
    return z + g1 / nu + g2 / (nu * nu) + g3 / (nu * nu * nu) +
           g4 / (nu * nu * nu * nu);
}

} // namespace

double
studentTQuantile(double confidence, double dof)
{
    LPP_REQUIRE(confidence > 0.0 && confidence < 1.0,
                "confidence %f out of (0,1)", confidence);
    double p = 0.5 + confidence / 2.0;
    if (!std::isfinite(dof))
        return normalQuantile(p);
    LPP_REQUIRE(dof >= 1.0, "t quantile needs dof >= 1, got %f", dof);
    if (dof >= 3.0 || dof == 1.0 || dof == 2.0)
        return tQuantileAt(p, dof);
    // Fractional dof below 3 (Welch–Satterthwaite): interpolate in
    // 1/nu between the bracketing formulas — t is close to linear in
    // 1/nu, and both endpoints are exact or near-exact.
    double lo = std::floor(dof), hi = lo + 1.0;
    double tlo = tQuantileAt(p, lo), thi = tQuantileAt(p, hi);
    double w = (1.0 / lo - 1.0 / dof) / (1.0 / lo - 1.0 / hi);
    return tlo + w * (thi - tlo);
}

std::vector<uint64_t>
sampleWithoutReplacement(uint64_t seed, uint64_t population, uint64_t k)
{
    if (k > population)
        k = population;
    std::vector<uint64_t> idx(population);
    std::iota(idx.begin(), idx.end(), 0);
    Rng rng(seed);
    for (uint64_t i = 0; i < k; ++i) {
        uint64_t j = i + rng.below(population - i);
        std::swap(idx[i], idx[j]);
    }
    idx.resize(k);
    std::sort(idx.begin(), idx.end());
    return idx;
}

std::vector<uint64_t>
selectBalancedOnSize(const std::vector<double> &sizes, uint64_t k)
{
    const uint64_t n = sizes.size();
    if (k > n)
        k = n;
    double mean = 0.0;
    for (double x : sizes)
        mean += x;
    if (n > 0)
        mean /= static_cast<double>(n);
    std::vector<uint64_t> pos(n);
    std::iota(pos.begin(), pos.end(), 0);
    std::stable_sort(pos.begin(), pos.end(),
                     [&](uint64_t a, uint64_t b) {
                         double da = std::abs(sizes[a] - mean);
                         double db = std::abs(sizes[b] - mean);
                         if (da != db)
                             return da < db;
                         if (sizes[a] != sizes[b])
                             return sizes[a] < sizes[b];
                         return a < b;
                     });
    pos.resize(k);
    std::sort(pos.begin(), pos.end());
    return pos;
}

void
StratifiedAccumulator::addExact(double total)
{
    sum += total;
}

void
StratifiedAccumulator::addSampled(uint64_t population,
                                  const std::vector<double> &sample)
{
    const size_t k = sample.size();
    LPP_REQUIRE(k >= 2, "a subsampled stratum needs >= 2 draws, got %zu",
                k);
    LPP_REQUIRE(k < population,
                "sample %zu must be smaller than the population %llu "
                "(use addExact for exhaustive strata)",
                k, static_cast<unsigned long long>(population));
    const double n = static_cast<double>(population);
    const double kd = static_cast<double>(k);
    double mean = 0.0;
    for (double x : sample)
        mean += x;
    mean /= kd;
    double s2 = 0.0;
    for (double x : sample)
        s2 += (x - mean) * (x - mean);
    s2 /= (kd - 1.0); // sample variance
    sum += n * mean;
    // Finite-population-corrected variance of the stratum total.
    double var = n * n * (1.0 - kd / n) * s2 / kd;
    varSum += var;
    dofDenom += var * var / (kd - 1.0);
}

void
StratifiedAccumulator::addRatio(
    uint64_t population, double covariateTotal,
    const std::vector<std::pair<double, double>> &sample)
{
    const size_t k = sample.size();
    LPP_REQUIRE(k >= 2, "a subsampled stratum needs >= 2 draws, got %zu",
                k);
    LPP_REQUIRE(k < population,
                "sample %zu must be smaller than the population %llu "
                "(use addExact for exhaustive strata)",
                k, static_cast<unsigned long long>(population));
    LPP_REQUIRE(covariateTotal > 0.0,
                "ratio estimation needs a positive covariate total");
    double sy = 0.0, sx = 0.0;
    for (const auto &p : sample) {
        sy += p.first;
        sx += p.second;
    }
    LPP_REQUIRE(sx > 0.0,
                "ratio estimation needs a positive sampled covariate "
                "sum (fall back to addSampled)");
    const double n = static_cast<double>(population);
    const double kd = static_cast<double>(k);
    const double r = sy / sx;
    sum += covariateTotal * r;
    // Residual sample variance about the fitted ratio.
    double s2 = 0.0;
    for (const auto &p : sample) {
        double e = p.first - r * p.second;
        s2 += e * e;
    }
    s2 /= (kd - 1.0);
    double var = n * n * (1.0 - kd / n) * s2 / kd;
    varSum += var;
    dofDenom += var * var / (kd - 1.0);
}

void
StratifiedAccumulator::addEstimate(double total, double var, double varDof)
{
    LPP_REQUIRE(var >= 0.0, "negative variance %f", var);
    LPP_REQUIRE(varDof >= 1.0, "variance dof must be >= 1, got %f",
                varDof);
    sum += total;
    varSum += var;
    dofDenom += var * var / varDof;
}

double
StratifiedAccumulator::dof() const
{
    if (varSum <= 0.0 || dofDenom <= 0.0)
        return std::numeric_limits<double>::infinity();
    return varSum * varSum / dofDenom; // Welch–Satterthwaite
}

double
StratifiedAccumulator::halfWidth(double confidence) const
{
    if (varSum <= 0.0)
        return 0.0;
    double nu = std::max(1.0, dof());
    return studentTQuantile(confidence, nu) * std::sqrt(varSum);
}

// Per-range measurement ---------------------------------------------

void
RangeLocalitySink::onBlock(trace::BlockId block, uint32_t instructions)
{
    weights[block] += instructions;
}

void
RangeLocalitySink::onAccess(trace::Addr addr)
{
    reuse.onAccess(addr);
    sim.onAccess(addr);
}

void
RangeLocalitySink::onAccessBatch(const trace::Addr *addrs, size_t n)
{
    reuse.onAccessBatch(addrs, n);
    sim.onAccessBatch(addrs, n);
}

RangeLocality
RangeLocalitySink::take()
{
    RangeLocality out;
    out.accesses = reuse.accessCount();
    out.distinctElements = reuse.distinctElements();
    out.histogram = reuse.histogram();
    out.cache = sim.total();
    out.blockWeights.assign(weights.begin(), weights.end());
    std::sort(out.blockWeights.begin(), out.blockWeights.end());
    weights.clear();
    return out;
}

std::vector<Stratum>
stratify(const Replay &replay)
{
    std::map<trace::PhaseId, std::vector<size_t>> groups;
    for (size_t i = 0; i < replay.executions.size(); ++i)
        groups[replay.executions[i].phase].push_back(i);
    std::vector<Stratum> out;
    out.reserve(groups.size());
    for (auto &kv : groups) {
        Stratum st;
        st.phase = kv.first;
        st.executions = std::move(kv.second);
        out.push_back(std::move(st));
    }
    return out;
}

namespace {

/** log2 size class of one access count (0 stays 0). */
uint32_t
sizeClassOf(uint64_t accesses)
{
    uint32_t c = 0;
    while (accesses >>= 1)
        ++c;
    return c;
}

} // namespace

std::vector<Stratum>
planStrata(const Replay &replay, const StratifiedSamplingConfig &config)
{
    std::vector<Stratum> base = stratify(replay);
    std::vector<Stratum> out;
    if (!replay.executions.empty()) {
        Stratum c;
        c.phase = replay.executions.front().phase;
        c.certainty = true;
        c.executions = {0};
        out.push_back(std::move(c));
        for (Stratum &st : base)
            std::erase(st.executions, size_t{0});
    }
    for (Stratum &st : base) {
        if (st.executions.empty())
            continue;
        if (config.sizeStratifyMin == 0 ||
            st.executions.size() < config.sizeStratifyMin) {
            out.push_back(std::move(st));
            continue;
        }
        std::map<uint32_t, Stratum> classes;
        for (size_t e : st.executions) {
            uint32_t c = sizeClassOf(replay.executions[e].accesses);
            Stratum &sub = classes[c];
            sub.phase = st.phase;
            sub.sizeClass = c;
            sub.executions.push_back(e);
        }
        for (auto &kv : classes)
            out.push_back(std::move(kv.second));
    }
    return out;
}

// Reports -----------------------------------------------------------

double
StratifiedEstimate::missRate(uint32_t ways) const
{
    LPP_REQUIRE(ways >= 1 && ways <= cache::simWays,
                "associativity %u out of range", ways);
    return totalAccesses == 0 ? 0.0
                              : missTotal[ways - 1] /
                                    static_cast<double>(totalAccesses);
}

double
StratifiedEstimate::missRateHalfWidth(uint32_t ways) const
{
    LPP_REQUIRE(ways >= 1 && ways <= cache::simWays,
                "associativity %u out of range", ways);
    return totalAccesses == 0 ? 0.0
                              : missHalfWidth[ways - 1] /
                                    static_cast<double>(totalAccesses);
}

double
StratifiedEvalReport::speedup() const
{
    return verified && sampledMs > 0.0 ? exactMs / sampledMs : 0.0;
}

double
StratifiedEvalReport::sampledFraction() const
{
    return estimate.totalAccesses == 0
               ? 0.0
               : static_cast<double>(estimate.measuredAccesses) /
                     static_cast<double>(estimate.totalAccesses);
}

StratifiedComparison
compareToExact(const StratifiedEstimate &sampled,
               const StratifiedEstimate &exact,
               const StratifiedSamplingConfig &config)
{
    LPP_REQUIRE(sampled.totalAccesses == exact.totalAccesses,
                "comparing estimates of different runs: %llu vs %llu "
                "accesses",
                static_cast<unsigned long long>(sampled.totalAccesses),
                static_cast<unsigned long long>(exact.totalAccesses));
    StratifiedComparison c;
    c.checked = true;
    for (uint32_t w = 1; w <= cache::simWays; ++w) {
        double rs = sampled.missRate(w);
        double re = exact.missRate(w);
        double abs = std::abs(rs - re);
        c.maxAbsMissRateError = std::max(c.maxAbsMissRateError, abs);
        double rel;
        if (re > 0.0)
            rel = abs / re;
        else
            rel = rs > 0.0 ? std::numeric_limits<double>::infinity()
                           : 0.0;
        c.maxRelMissRateError = std::max(c.maxRelMissRateError, rel);
        if (abs <= sampled.missRateHalfWidth(w))
            ++c.ciCoveredWays;
    }

    // Relative L1 over the extrapolated log2 bins plus the cold bin.
    double l1 = 0.0, totS = sampled.histogramInfinite,
           totE = exact.histogramInfinite;
    size_t bins = std::max(sampled.histogramBins.size(),
                           exact.histogramBins.size());
    for (size_t b = 0; b < bins; ++b) {
        double s = b < sampled.histogramBins.size()
                       ? sampled.histogramBins[b]
                       : 0.0;
        double e =
            b < exact.histogramBins.size() ? exact.histogramBins[b] : 0.0;
        l1 += std::abs(s - e);
        totS += s;
        totE += e;
    }
    l1 += std::abs(sampled.histogramInfinite - exact.histogramInfinite);
    c.histogramDivergence = l1 / std::max({totS, totE, 1.0});

    c.footprintRelError =
        std::abs(sampled.footprintSum - exact.footprintSum) /
        std::max(exact.footprintSum, 1.0);
    if (!sampled.bbv.empty() && sampled.bbv.size() == exact.bbv.size())
        c.bbvDistance = bbv::manhattan(sampled.bbv, exact.bbv);

    c.ok = c.maxRelMissRateError <= config.errorBound;
    if (!c.ok)
        c.failures.push_back(
            "max relative miss-rate error " +
            std::to_string(c.maxRelMissRateError) + " exceeds bound " +
            std::to_string(config.errorBound));
    return c;
}

// Evaluator ---------------------------------------------------------

namespace {

/** BBV geometry of the aggregate vector (BbvCollector defaults). */
constexpr size_t aggregateBbvDims = 32;
constexpr uint64_t aggregateBbvSeed = 12345;

/** Deterministic per-stratum selection seed. */
uint64_t
stratumSeed(uint64_t seed, trace::PhaseId phase, uint32_t size_class)
{
    SplitMix64 sm(seed ^ (static_cast<uint64_t>(phase) *
                              0x9e3779b97f4a7c15ULL +
                          0x632be59bd9b4e019ULL));
    SplitMix64 sub(sm.next() + size_class);
    return sub.next();
}

/**
 * Measure the planned ranges (waves of per-worker cursors, like the
 * sharded sweeps) and aggregate them into an extrapolated estimate.
 * picks[h] lists the positions within strata[h].executions to measure;
 * a full pick list means the stratum is exact (scale 1, no variance).
 * The reduction is strictly in (prologue, stratum, execution) order,
 * so the result is bit-identical at every thread count.
 */
StratifiedEstimate
measureAndAggregate(
    const trace::MemoryTrace &trace, const Replay &replay,
    const std::vector<trace::StreamingTrace::ChunkRange> &ranges,
    const std::vector<Stratum> &strata,
    const std::vector<std::vector<uint64_t>> &picks, double confidence,
    support::ThreadPool &pool, std::vector<StratumReport> *strata_out)
{
    StratifiedEstimate est;
    est.totalAccesses = trace.accessCount();
    est.totalExecutions = replay.executions.size();

    // Ranges to replay, ascending for cursor locality: range 0 is the
    // prologue, range i+1 is execution i.
    std::vector<size_t> jobs;
    const bool prologue = ranges[0].eventCount > 0;
    if (prologue)
        jobs.push_back(0);
    for (size_t h = 0; h < strata.size(); ++h)
        for (uint64_t pos : picks[h])
            jobs.push_back(1 + strata[h].executions[pos]);
    std::sort(jobs.begin(), jobs.end());

    std::vector<RangeLocality> results(jobs.size());
    const size_t waveSize = pool.threadCount() + 1;
    std::vector<trace::TraceCursor> cursors;
    cursors.reserve(waveSize);
    for (size_t i = 0; i < waveSize; ++i)
        cursors.emplace_back(trace);
    for (size_t begin = 0; begin < jobs.size(); begin += waveSize) {
        size_t count = std::min(waveSize, jobs.size() - begin);
        support::parallelFor(pool, count, [&](size_t i) {
            RangeLocalitySink sink;
            cursors[i].replayRange(sink, ranges[jobs[begin + i]]);
            results[begin + i] = sink.take();
        });
    }

    auto resultOf = [&](size_t range_idx) -> const RangeLocality & {
        auto it = std::lower_bound(jobs.begin(), jobs.end(), range_idx);
        LPP_DCHECK(it != jobs.end() && *it == range_idx,
                   "range %zu was not measured", range_idx);
        return results[static_cast<size_t>(it - jobs.begin())];
    };

    // Fixed-order reduction: per-way accumulators carry the CI math,
    // histogram/footprint/BBV are extrapolated point estimates.
    std::array<StratifiedAccumulator, cache::simWays> acc;
    std::vector<double> bins;
    double infinite = 0.0, footprint = 0.0;
    std::map<trace::BlockId, double> blocks;
    auto addScaled = [&](const RangeLocality &r, double scale) {
        if (r.histogram.binCount() > bins.size())
            bins.resize(r.histogram.binCount(), 0.0);
        for (size_t b = 0; b < r.histogram.binCount(); ++b)
            bins[b] += scale *
                       static_cast<double>(r.histogram.binValue(b));
        infinite +=
            scale * static_cast<double>(r.histogram.infiniteCount());
        footprint +=
            scale * static_cast<double>(r.distinctElements);
        for (const auto &kv : r.blockWeights)
            blocks[kv.first] += scale * static_cast<double>(kv.second);
        ++est.measuredRanges;
        est.measuredAccesses += r.accesses;
    };

    if (prologue) {
        const RangeLocality &r = resultOf(0);
        for (uint32_t w = 0; w < cache::simWays; ++w)
            acc[w].addExact(static_cast<double>(r.cache.misses[w]));
        addScaled(r, 1.0);
    }

    // Pass 1: gather each stratum's measured units and fit the pooled
    // residual model Var(e) = φ_w·x from every stratum that measured
    // at least two units — single-draw strata borrow φ̂_w below.
    struct StratumData
    {
        double A = 0.0;  //!< exact stratum access total (records)
        double sx = 0.0; //!< measured access sum
        std::vector<const RangeLocality *> rs;
        uint64_t sampledAccesses = 0;
    };
    std::vector<StratumData> data(strata.size());
    std::array<double, cache::simWays> phiNum{};
    double phiDof = 0.0;
    for (size_t h = 0; h < strata.size(); ++h) {
        const Stratum &st = strata[h];
        StratumData &d = data[h];
        for (size_t e : st.executions)
            d.A += static_cast<double>(replay.executions[e].accesses);
        d.rs.reserve(picks[h].size());
        for (uint64_t pos : picks[h]) {
            d.rs.push_back(&resultOf(1 + st.executions[pos]));
            d.sx += static_cast<double>(d.rs.back()->accesses);
            d.sampledAccesses += d.rs.back()->accesses;
        }
        if (d.rs.size() >= 2 && d.sx > 0.0) {
            for (uint32_t w = 0; w < cache::simWays; ++w) {
                double sy = 0.0;
                for (const RangeLocality *r : d.rs)
                    sy += static_cast<double>(r->cache.misses[w]);
                double rate = sy / d.sx;
                for (const RangeLocality *r : d.rs) {
                    double x = static_cast<double>(r->accesses);
                    if (x <= 0.0)
                        continue;
                    double e =
                        static_cast<double>(r->cache.misses[w]) -
                        rate * x;
                    phiNum[w] += e * e / x;
                }
            }
            phiDof += static_cast<double>(d.rs.size() - 1);
        }
    }

    // Pass 2: fixed-order accumulation.
    for (size_t h = 0; h < strata.size(); ++h) {
        const Stratum &st = strata[h];
        const std::vector<uint64_t> &pk = picks[h];
        const StratumData &d = data[h];
        const uint64_t n = st.executions.size();
        const bool exact = pk.size() == n;
        if (exact) {
            std::array<double, cache::simWays> sums{};
            for (const RangeLocality *r : d.rs) {
                for (uint32_t w = 0; w < cache::simWays; ++w)
                    sums[w] += static_cast<double>(r->cache.misses[w]);
                addScaled(*r, 1.0);
            }
            for (uint32_t w = 0; w < cache::simWays; ++w)
                acc[w].addExact(sums[w]);
        } else if (pk.size() == 1) {
            // Single draw: ratio point estimate, variance borrowed
            // from the pooled residual model. The selection logic
            // guarantees pooled dof exists whenever a single-draw
            // stratum does.
            LPP_REQUIRE(phiDof > 0.0,
                        "single-draw stratum without pooled residual "
                        "dof — selection should have bumped a stratum "
                        "to two draws");
            const RangeLocality &r = *d.rs[0];
            const double x = static_cast<double>(r.accesses);
            const bool ratio = d.A > 0.0 && x > 0.0;
            const double nd = static_cast<double>(n);
            addScaled(r, ratio ? d.A / x : nd);
            const double fpc = 1.0 - 1.0 / nd;
            for (uint32_t w = 0; w < cache::simWays; ++w) {
                double y = static_cast<double>(r.cache.misses[w]);
                double phi = phiNum[w] / phiDof;
                double t, var;
                if (ratio) {
                    t = d.A * y / x;
                    var = fpc * d.A * d.A * phi / x;
                } else {
                    t = nd * y;
                    // x̄ = A/N as the model's size for zero-access
                    // draws (A == 0 makes this vanish entirely).
                    var = fpc * nd * nd * phi * (d.A / nd);
                }
                acc[w].addEstimate(t, var, std::max(phiDof, 1.0));
            }
        } else {
            // Ratio estimation whenever the covariate is usable;
            // plain mean expansion when the stratum (or the sample)
            // carries no accesses at all.
            const bool ratio = d.A > 0.0 && d.sx > 0.0;
            const double scale =
                ratio ? d.A / d.sx
                      : static_cast<double>(n) /
                            static_cast<double>(pk.size());
            for (const RangeLocality *r : d.rs)
                addScaled(*r, scale);
            if (ratio) {
                std::vector<std::pair<double, double>> pairs(
                    d.rs.size());
                for (uint32_t w = 0; w < cache::simWays; ++w) {
                    for (size_t i = 0; i < d.rs.size(); ++i)
                        pairs[i] = {static_cast<double>(
                                        d.rs[i]->cache.misses[w]),
                                    static_cast<double>(
                                        d.rs[i]->accesses)};
                    acc[w].addRatio(n, d.A, pairs);
                }
            } else {
                std::vector<double> samples(d.rs.size());
                for (uint32_t w = 0; w < cache::simWays; ++w) {
                    for (size_t i = 0; i < d.rs.size(); ++i)
                        samples[i] = static_cast<double>(
                            d.rs[i]->cache.misses[w]);
                    acc[w].addSampled(n, samples);
                }
            }
        }
        if (strata_out) {
            StratumReport sr;
            sr.phase = st.phase;
            sr.sizeClass = st.sizeClass;
            sr.certainty = st.certainty;
            sr.executions = n;
            sr.sampled = pk.size();
            sr.exact = exact;
            for (size_t e : st.executions)
                sr.accesses += replay.executions[e].accesses;
            sr.sampledAccesses = d.sampledAccesses;
            strata_out->push_back(sr);
        }
    }

    for (uint32_t w = 0; w < cache::simWays; ++w) {
        est.missTotal[w] = acc[w].total();
        est.missHalfWidth[w] = acc[w].halfWidth(confidence);
    }
    est.histogramBins = std::move(bins);
    est.histogramInfinite = infinite;
    est.footprintSum = footprint;

    // Aggregate BBV: extrapolated block weights, projected and
    // L1-normalized exactly like BbvCollector does per interval.
    if (!blocks.empty()) {
        double total = 0.0;
        for (const auto &kv : blocks)
            total += kv.second;
        if (total > 0.0) {
            std::vector<double> v(aggregateBbvDims, 0.0);
            for (const auto &kv : blocks) {
                double share = kv.second / total;
                for (size_t d = 0; d < aggregateBbvDims; ++d)
                    v[d] += share * bbv::projectionCoefficient(
                                        kv.first, d, aggregateBbvSeed);
            }
            double norm = 0.0;
            for (double x : v)
                norm += x;
            if (norm > 0.0)
                for (double &x : v)
                    x /= norm;
            est.bbv = std::move(v);
        }
    }
    return est;
}

} // namespace

StratifiedEvaluator::StratifiedEvaluator(
    const StratifiedSamplingConfig &config, support::ThreadPool *pool_)
    : cfg(config), pool(pool_)
{
}

StratifiedEvalReport
StratifiedEvaluator::evaluate(const trace::MemoryTrace &trace,
                              const Replay &replay) const
{
    using clock = std::chrono::steady_clock;
    support::ThreadPool &tp =
        pool ? *pool : support::ThreadPool::shared();

    StratifiedEvalReport rep;
    rep.ran = true;
    LPP_REQUIRE(replay.totalAccesses == trace.accessCount(),
                "stratified evaluation needs the instrumented replay "
                "of this exact recording: %llu vs %llu accesses",
                static_cast<unsigned long long>(replay.totalAccesses),
                static_cast<unsigned long long>(trace.accessCount()));
    if (trace.empty()) {
        if (cfg.verifyAgainstExact) {
            rep.verified = true;
            rep.exact = rep.estimate;
            rep.comparison = compareToExact(rep.estimate, rep.exact, cfg);
        }
        return rep;
    }

    std::vector<Stratum> strata = planStrata(replay, cfg);
    std::vector<uint64_t> cuts;
    cuts.reserve(replay.executions.size());
    for (const ExecutionRecord &e : replay.executions)
        cuts.push_back(e.startAccess);
    rep.prologueAccesses = replay.executions.empty()
                               ? replay.totalAccesses
                               : replay.executions.front().startAccess;

    // Selection: deterministic per-stratum draws, k_h = max(floor,
    // ceil(fraction·N_h)); tiny strata (and any stratum k would
    // exhaust) fall back to exact measurement.
    const uint64_t kmin = std::max<uint64_t>(cfg.samplesPerStratum, 1);
    std::vector<std::vector<uint64_t>> picks(strata.size());
    std::vector<std::vector<uint64_t>> full(strata.size());
    auto selectK = [&](size_t h, uint64_t k) {
        const Stratum &st = strata[h];
        const uint64_t n = st.executions.size();
        if (cfg.selection == StratifiedSelection::BalancedOnSize) {
            std::vector<double> xs(n);
            for (uint64_t i = 0; i < n; ++i)
                xs[i] = static_cast<double>(
                    replay.executions[st.executions[i]].accesses);
            return selectBalancedOnSize(xs, k);
        }
        return sampleWithoutReplacement(
            stratumSeed(cfg.seed, st.phase, st.sizeClass), n, k);
    };
    for (size_t h = 0; h < strata.size(); ++h) {
        const uint64_t n = strata[h].executions.size();
        full[h].resize(n);
        std::iota(full[h].begin(), full[h].end(), 0);
        uint64_t accesses = 0;
        for (size_t e : strata[h].executions)
            accesses += replay.executions[e].accesses;
        const uint64_t floor_h =
            accesses / n >= cfg.singleDrawMinAccesses ? 1 : kmin;
        const uint64_t k = std::max(
            floor_h, static_cast<uint64_t>(std::ceil(
                         cfg.sampleFraction * static_cast<double>(n))));
        if (n < 2 || k >= n) {
            picks[h] = full[h];
        } else {
            picks[h] = selectK(h, k);
            rep.sampled = true;
        }
    }
    // Bump rule: the pooled residual model needs at least one stratum
    // with two measured units. If every sampled stratum took a single
    // draw and no exhaustive stratum has >= 2 executions, widen the
    // largest sampled stratum to two draws rather than fabricate a
    // variance out of nothing.
    {
        bool needPhi = false, havePhi = false;
        for (size_t h = 0; h < strata.size(); ++h) {
            const bool exhaustive =
                picks[h].size() == strata[h].executions.size();
            if (!exhaustive && picks[h].size() == 1)
                needPhi = true;
            if (picks[h].size() >= 2)
                havePhi = true;
        }
        if (needPhi && !havePhi) {
            size_t best = strata.size();
            for (size_t h = 0; h < strata.size(); ++h) {
                if (picks[h].size() != 1 ||
                    picks[h].size() == strata[h].executions.size())
                    continue;
                if (best == strata.size() ||
                    strata[h].executions.size() >
                        strata[best].executions.size())
                    best = h;
            }
            LPP_REQUIRE(best < strata.size(),
                        "bump rule found no single-draw stratum");
            const uint64_t n = strata[best].executions.size();
            picks[best] = n <= 2 ? full[best] : selectK(best, 2);
        }
    }

    auto timedRun = [&](const trace::MemoryTrace &tr,
                        const std::vector<std::vector<uint64_t>> &p,
                        std::vector<StratumReport> *sout, double &ms) {
        auto t0 = clock::now();
        std::vector<trace::StreamingTrace::ChunkRange> ranges =
            tr.sliceAt(cuts);
        LPP_REQUIRE(ranges.size() == replay.executions.size() + 1,
                    "slice count %zu does not match %zu executions",
                    ranges.size(), replay.executions.size());
        for (size_t i = 0; i < replay.executions.size(); ++i)
            LPP_REQUIRE(
                ranges[i + 1].accessCount ==
                    replay.executions[i].accesses,
                "phase boundary %zu does not land on an event "
                "boundary: range has %llu accesses, execution %llu",
                i,
                static_cast<unsigned long long>(
                    ranges[i + 1].accessCount),
                static_cast<unsigned long long>(
                    replay.executions[i].accesses));
        StratifiedEstimate est = measureAndAggregate(
            tr, replay, ranges, strata, p, cfg.confidence, tp, sout);
        ms = std::chrono::duration<double, std::milli>(clock::now() - t0)
                 .count();
        return est;
    };

    rep.estimate = timedRun(trace, picks, &rep.strata, rep.sampledMs);
    if (cfg.verifyAgainstExact) {
        rep.exact = timedRun(trace, full, nullptr, rep.exactMs);
        rep.verified = true;
        rep.comparison = compareToExact(rep.estimate, rep.exact, cfg);
    }
    return rep;
}

} // namespace lpp::core
