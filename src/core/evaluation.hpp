/**
 * @file
 * Evaluation engine shared by the table/figure benches: per-workload
 * analysis + prediction (Tables 2, 3, 4, 6) and interval profiling for
 * the baselines (Table 4, Fig 6).
 */

#ifndef LPP_CORE_EVALUATION_HPP
#define LPP_CORE_EVALUATION_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "bbv/bbv.hpp"
#include "cache/stack_sim.hpp"
#include "core/analysis.hpp"
#include "core/execution_plan.hpp"
#include "core/runtime.hpp"
#include "support/thread_pool.hpp"
#include "trace/memory_trace.hpp"
#include "workloads/workload.hpp"

namespace lpp::core {

/** One side (detection or prediction) of a Table 3 row. */
struct GranularityRow
{
    uint64_t leafExecutions = 0;   //!< leaf phase executions
    double execLengthM = 0.0;      //!< run length, M instructions
    double avgLeafSizeM = 0.0;     //!< avg leaf size, M instructions
    double avgLargestCompositeM = 0.0; //!< largest composite phase size
};

/** Recall/precision of auto markers against manual markers (Table 6). */
struct OverlapResult
{
    double recall = 0.0;
    double precision = 0.0;
};

/** A replay together with the manual marker times of the same run. */
struct InstrumentedRun
{
    Replay replay;
    std::vector<uint64_t> manualTimes; //!< access clock
};

/** Full evaluation of one workload (everything except baselines). */
struct WorkloadEvaluation
{
    std::string name;
    AnalysisResult analysis;
    InstrumentedRun train; //!< instrumented detection run
    InstrumentedRun ref;   //!< instrumented prediction run
    PredictionMetrics metrics;       //!< Table 2 row
    GranularityRow detectionRow;     //!< Table 3, left half
    GranularityRow predictionRow;    //!< Table 3, right half
    double localityStddev = 0.0;     //!< Table 4, first column
    OverlapResult trainOverlap;      //!< Table 6, detection
    OverlapResult refOverlap;        //!< Table 6, prediction

    /** Static-vs-dynamic verification (config.staticOracle). Default
     *  (unchecked) unless the oracle is enabled and the workload
     *  carries an affine IR. */
    StaticOracleReport staticOracle;

    /** Sampled evaluation of the reference recording
     *  (config.stratifiedSampling); default (ran = false) when off. */
    StratifiedEvalReport stratified;

    /** Live program executions this evaluation cost (replays free). */
    uint64_t programExecutions = 0;

    /** Executions served from the trace cache (0 when caching is off). */
    uint64_t traceCacheHits = 0;

    /** Cache probes that missed and ran (and recorded) live. */
    uint64_t traceCacheMisses = 0;

    /** Compressed trace bytes written to or reused from the cache. */
    uint64_t traceBytes = 0;

    /** Raw address bytes the recorded streams would occupy decoded
     *  (train + ref, 8 bytes per access). */
    uint64_t rawTraceBytes = 0;

    /** In-memory compressed frame bytes of the same recordings; the
     *  rawTraceBytes / encodedTraceBytes quotient is the predictive
     *  codec's compression ratio on this workload. */
    uint64_t encodedTraceBytes = 0;
};

/**
 * Marker-time overlap with the paper's matching rule: two times are the
 * same if they differ by at most `tolerance` accesses.
 */
OverlapResult markerOverlap(const std::vector<uint64_t> &manual_times,
                            const std::vector<uint64_t> &auto_times,
                            uint64_t tolerance = 400);

/** Run `runner` under `table`, collecting replay + manual times. */
InstrumentedRun
runInstrumented(const trace::MarkerTable &table,
                const std::function<void(trace::TraceSink &)> &runner);

/** Table 3 row for a replay and the hierarchy of its sequence. */
GranularityRow granularity(const Replay &replay,
                           const grammar::PhaseHierarchy &hierarchy);

/**
 * The full per-workload evaluation pipeline, driven through an
 * execution plan: at most two live program executions (one recording
 * training run, one reference run) — every other consumer replays the
 * recorded streams, and precount statistics are derived from the
 * training recording instead of a dedicated precount execution. With
 * config.traceCache enabled, each live execution first probes the
 * on-disk trace store: a hit replaces it with a replay of the stored
 * stream (0 live executions on a fully warm cache) and a miss records
 * and publishes the stream for the next process. Results are
 * bit-identical to the serial one-sink-per-run pipeline on every path
 * (cold-live, cold-recorded, warm-cache); programExecutions reports
 * the live cost.
 */
WorkloadEvaluation
evaluateWorkload(const workloads::Workload &workload,
                 const AnalysisConfig &config = {});

/** Analysis-only result of analyzeWorkload(), with its cache costs. */
struct WorkloadAnalysisRun
{
    AnalysisResult analysis;
    uint64_t programExecutions = 0; //!< live executions (0 or 1)
    uint64_t traceCacheHits = 0;
    uint64_t traceCacheMisses = 0;
    uint64_t traceBytes = 0;
    uint64_t rawTraceBytes = 0;     //!< decoded size of the recording
    uint64_t encodedTraceBytes = 0; //!< compressed frames in memory

    /** Static-vs-dynamic verification (config.staticOracle). */
    StaticOracleReport staticOracle;

    /** Sampled evaluation of the training recording
     *  (config.stratifiedSampling); default (ran = false) when off. */
    StratifiedEvalReport stratified;
};

/**
 * The training-side analysis alone (detection, markers, hierarchy),
 * driven through an execution plan with the same trace-cache semantics
 * as evaluateWorkload: at most one live training execution, 0 on a
 * warm cache. Bit-identical to PhaseAnalysis::analyzeWorkload.
 */
WorkloadAnalysisRun
analyzeWorkload(const workloads::Workload &workload,
                const AnalysisConfig &config = {});

/**
 * Evaluate many workloads (by registry name) with the same config on
 * ONE shared execution plan, scheduling independent stages of every
 * workload across the shared thread pool. Results come back in the
 * order of `names`, and every field is bit-identical to calling
 * evaluateWorkload serially on each name: the stages share no state
 * and results land in per-call slots.
 */
std::vector<WorkloadEvaluation>
evaluateWorkloads(const std::vector<std::string> &names,
                  const AnalysisConfig &config = {});

/**
 * Same, but on an explicit pool: the plan schedules its units on
 * `pool` and the sharded intra-workload sweeps reuse it (the config's
 * sharding.pool is overridden). Lets benches sweep thread counts with
 * dedicated pools instead of the process-wide shared one.
 */
std::vector<WorkloadEvaluation>
evaluateWorkloads(const std::vector<std::string> &names,
                  const AnalysisConfig &config, support::ThreadPool &pool);

/** Node handles of one registered workload evaluation. */
struct WorkloadEvaluationNodes
{
    /**
     * Completed once the marker table and hierarchy in out->analysis
     * are final. Chain interval/phase-interval passes after this node
     * (not after `done`) so they can still coalesce with the
     * evaluation's own reference execution.
     */
    ExecutionPlan::NodeId analysisReady;

    /** Completed once every field of *out (except the execution
     *  counts, filled post-run) is final. */
    ExecutionPlan::NodeId done;
};

/**
 * Register the full per-workload evaluation pipeline on `plan`:
 *
 *   acquire train stream (ONE live recording execution, or a trace-
 *   cache load)  ->  precount from the recording (step)  ->  sampling
 *   + block trace as one coalesced REPLAY of the recording  ->
 *   detection finish (step)  ->  instrumented train REPLAY +
 *   instrumented ref execution (live or cache replay)  ->  metrics
 *   assembly (step)
 *
 * At most two live program executions per workload (training,
 * reference); precount statistics come from the recorded stream, and
 * every other consumer replays a recording. With config.traceCache
 * enabled each live execution is replaced by a store replay on a hit
 * and recorded + published on a miss. Every field of *out is
 * bit-identical to the serial one-sink-per-run pipeline. `workload`
 * and `out` must outlive plan.run(); the caller fills
 * out->programExecutions from plan.programExecutions(name + "@")
 * after the run.
 */
WorkloadEvaluationNodes
registerWorkloadEvaluation(ExecutionPlan &plan,
                           const workloads::Workload &workload,
                           const AnalysisConfig &config,
                           WorkloadEvaluation *out);

/** Aligned per-interval locality and BBV profile of one run. */
struct IntervalProfile
{
    std::vector<cache::SegmentLocality> units;
    std::vector<std::vector<double>> bbvs;
};

/**
 * Cut a run into fixed `unit_accesses`-sized units, measuring each
 * unit's all-associativity locality and BBV at the same boundaries.
 */
IntervalProfile
collectIntervals(const std::function<void(trace::TraceSink &)> &runner,
                 uint64_t unit_accesses, size_t bbv_dims = 32);

/**
 * Sharded collectIntervals over a recorded trace: the recording is cut
 * into chunks of ~`chunk_accesses` accesses, each chunk runs a local
 * stack-simulation pass on a pool thread (cache::ShardedSimChunk) while
 * bucketing block weights by global unit index, and a sequential
 * reduction in chunk order resolves cross-chunk LRU depths and merges
 * the integer per-unit block counts before projecting each unit's BBV.
 * Every per-unit miss counter and BBV coordinate is bit-identical to
 * collectIntervals over a full replay of the same recording, at every
 * chunk size and thread count. `pool` defaults to the shared pool.
 */
IntervalProfile
collectIntervalsSharded(const trace::MemoryTrace &trace,
                        uint64_t unit_accesses, size_t bbv_dims = 32,
                        uint64_t chunk_accesses = 1ULL << 20,
                        support::ThreadPool *pool = nullptr);

/**
 * Register an interval-profile pass under `key` on `plan`. A pass with
 * an equal key (e.g. a workload evaluation's reference execution) and
 * no dependency path to this one shares its program execution. `out`
 * must outlive plan.run(); its fields are final once the returned node
 * completed.
 */
ExecutionPlan::NodeId registerIntervalProfile(
    ExecutionPlan &plan, std::string key,
    std::function<void(trace::TraceSink &)> runner,
    uint64_t unit_accesses, size_t bbv_dims, IntervalProfile *out,
    std::vector<ExecutionPlan::NodeId> after = {});

/** Per-unit locality plus (phase, intra-phase index) keys (Fig 6). */
struct PhaseIntervalProfile
{
    std::vector<cache::SegmentLocality> units;
    std::vector<uint64_t> keys; //!< (phase << 32) | interval index
};

/**
 * Cut an instrumented run into `unit_accesses`-sized units that restart
 * at every phase marker, keyed by (phase, index) — the paper's "phase
 * intervals" for resizing inside long phases.
 */
PhaseIntervalProfile collectPhaseIntervals(
    const trace::MarkerTable &table,
    const std::function<void(trace::TraceSink &)> &runner,
    uint64_t unit_accesses);

/**
 * Register a phase-interval pass under `key` on `plan`. The pass wraps
 * its own instrumenter over the shared raw stream, so it coalesces
 * with plain passes of the same key. `*table` is read when the pass
 * starts (pass `after` = the node that finalizes it, e.g.
 * WorkloadEvaluationNodes::analysisReady); `table` and `out` must
 * outlive plan.run().
 */
ExecutionPlan::NodeId registerPhaseIntervalProfile(
    ExecutionPlan &plan, std::string key, const trace::MarkerTable *table,
    std::function<void(trace::TraceSink &)> runner,
    uint64_t unit_accesses, PhaseIntervalProfile *out,
    std::vector<ExecutionPlan::NodeId> after = {});

} // namespace lpp::core

#endif // LPP_CORE_EVALUATION_HPP
