/**
 * @file
 * Evaluation engine shared by the table/figure benches: per-workload
 * analysis + prediction (Tables 2, 3, 4, 6) and interval profiling for
 * the baselines (Table 4, Fig 6).
 */

#ifndef LPP_CORE_EVALUATION_HPP
#define LPP_CORE_EVALUATION_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "bbv/bbv.hpp"
#include "cache/stack_sim.hpp"
#include "core/analysis.hpp"
#include "core/runtime.hpp"
#include "workloads/workload.hpp"

namespace lpp::core {

/** One side (detection or prediction) of a Table 3 row. */
struct GranularityRow
{
    uint64_t leafExecutions = 0;   //!< leaf phase executions
    double execLengthM = 0.0;      //!< run length, M instructions
    double avgLeafSizeM = 0.0;     //!< avg leaf size, M instructions
    double avgLargestCompositeM = 0.0; //!< largest composite phase size
};

/** Recall/precision of auto markers against manual markers (Table 6). */
struct OverlapResult
{
    double recall = 0.0;
    double precision = 0.0;
};

/** A replay together with the manual marker times of the same run. */
struct InstrumentedRun
{
    Replay replay;
    std::vector<uint64_t> manualTimes; //!< access clock
};

/** Full evaluation of one workload (everything except baselines). */
struct WorkloadEvaluation
{
    std::string name;
    AnalysisResult analysis;
    InstrumentedRun train; //!< instrumented detection run
    InstrumentedRun ref;   //!< instrumented prediction run
    PredictionMetrics metrics;       //!< Table 2 row
    GranularityRow detectionRow;     //!< Table 3, left half
    GranularityRow predictionRow;    //!< Table 3, right half
    double localityStddev = 0.0;     //!< Table 4, first column
    OverlapResult trainOverlap;      //!< Table 6, detection
    OverlapResult refOverlap;        //!< Table 6, prediction
};

/**
 * Marker-time overlap with the paper's matching rule: two times are the
 * same if they differ by at most `tolerance` accesses.
 */
OverlapResult markerOverlap(const std::vector<uint64_t> &manual_times,
                            const std::vector<uint64_t> &auto_times,
                            uint64_t tolerance = 400);

/** Run `runner` under `table`, collecting replay + manual times. */
InstrumentedRun
runInstrumented(const trace::MarkerTable &table,
                const std::function<void(trace::TraceSink &)> &runner);

/** Table 3 row for a replay and the hierarchy of its sequence. */
GranularityRow granularity(const Replay &replay,
                           const grammar::PhaseHierarchy &hierarchy);

/** The full per-workload evaluation pipeline. */
WorkloadEvaluation
evaluateWorkload(const workloads::Workload &workload,
                 const AnalysisConfig &config = {});

/**
 * Evaluate many workloads (by registry name) with the same config,
 * fanning the per-workload pipelines across the shared thread pool.
 * Results come back in the order of `names`, and every field is
 * bit-identical to calling evaluateWorkload serially on each name:
 * the jobs share no state and are merged by submission index.
 */
std::vector<WorkloadEvaluation>
evaluateWorkloads(const std::vector<std::string> &names,
                  const AnalysisConfig &config = {});

/** Aligned per-interval locality and BBV profile of one run. */
struct IntervalProfile
{
    std::vector<cache::SegmentLocality> units;
    std::vector<std::vector<double>> bbvs;
};

/**
 * Cut a run into fixed `unit_accesses`-sized units, measuring each
 * unit's all-associativity locality and BBV at the same boundaries.
 */
IntervalProfile
collectIntervals(const std::function<void(trace::TraceSink &)> &runner,
                 uint64_t unit_accesses, size_t bbv_dims = 32);

/** Per-unit locality plus (phase, intra-phase index) keys (Fig 6). */
struct PhaseIntervalProfile
{
    std::vector<cache::SegmentLocality> units;
    std::vector<uint64_t> keys; //!< (phase << 32) | interval index
};

/**
 * Cut an instrumented run into `unit_accesses`-sized units that restart
 * at every phase marker, keyed by (phase, index) — the paper's "phase
 * intervals" for resizing inside long phases.
 */
PhaseIntervalProfile collectPhaseIntervals(
    const trace::MarkerTable &table,
    const std::function<void(trace::TraceSink &)> &runner,
    uint64_t unit_accesses);

} // namespace lpp::core

#endif // LPP_CORE_EVALUATION_HPP
