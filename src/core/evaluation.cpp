#include "core/evaluation.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>

#include <bit>

#include "cache/sharded_sim.hpp"
#include "reuse/sharded_reuse.hpp"
#include "support/logging.hpp"
#include "support/parallel_for.hpp"
#include "support/stats.hpp"
#include "trace/instrument.hpp"
#include "trace/codec.hpp"
#include "trace/memory_trace.hpp"
#include "trace/recorder.hpp"
#include "trace/trace_store.hpp"
#include "workloads/registry.hpp"
#include "workloads/static_workload.hpp"

namespace lpp::core {

OverlapResult
markerOverlap(const std::vector<uint64_t> &manual_times,
              const std::vector<uint64_t> &auto_times,
              uint64_t tolerance)
{
    auto matched = [tolerance](const std::vector<uint64_t> &sorted,
                               uint64_t t) {
        auto it = std::lower_bound(sorted.begin(), sorted.end(),
                                   t >= tolerance ? t - tolerance : 0);
        return it != sorted.end() && *it <= t + tolerance;
    };

    std::vector<uint64_t> manual_sorted = manual_times;
    std::vector<uint64_t> auto_sorted = auto_times;
    std::sort(manual_sorted.begin(), manual_sorted.end());
    std::sort(auto_sorted.begin(), auto_sorted.end());

    OverlapResult r;
    if (!manual_sorted.empty()) {
        uint64_t hit = 0;
        for (uint64_t t : manual_sorted)
            hit += matched(auto_sorted, t);
        r.recall = static_cast<double>(hit) /
                   static_cast<double>(manual_sorted.size());
    }
    if (!auto_sorted.empty()) {
        uint64_t hit = 0;
        for (uint64_t t : auto_sorted)
            hit += matched(manual_sorted, t);
        r.precision = static_cast<double>(hit) /
                      static_cast<double>(auto_sorted.size());
    }
    return r;
}

InstrumentedRun
runInstrumented(const trace::MarkerTable &table,
                const std::function<void(trace::TraceSink &)> &runner)
{
    ExecutionCollector collector;
    trace::ManualMarkerRecorder manual;
    trace::FanoutSink fan;
    fan.attach(&collector);
    fan.attach(&manual);
    trace::Instrumenter inst(table, fan);
    runner(inst);

    InstrumentedRun out;
    out.replay = collector.replay();
    out.manualTimes = manual.times();
    return out;
}

GranularityRow
granularity(const Replay &replay,
            const grammar::PhaseHierarchy &hierarchy)
{
    GranularityRow row;
    row.leafExecutions = replay.executions.size();
    row.execLengthM =
        static_cast<double>(replay.totalInstructions) / 1e6;
    if (replay.executions.empty())
        return row;

    double leaf_sum = 0.0;
    std::unordered_map<trace::PhaseId, RunningStats> per_phase;
    for (const auto &e : replay.executions) {
        leaf_sum += static_cast<double>(e.instructions);
        per_phase[e.phase].push(static_cast<double>(e.instructions));
    }
    row.avgLeafSizeM =
        leaf_sum / static_cast<double>(replay.executions.size()) / 1e6;

    const grammar::CompositePhase *big = hierarchy.largestComposite();
    if (big) {
        // Composite size = sum of the mean length of each leaf phase in
        // one iteration of the repeat body.
        double size = 0.0;
        for (uint32_t leaf : big->node->body()->expand()) {
            auto it = per_phase.find(leaf);
            if (it != per_phase.end())
                size += it->second.mean();
        }
        row.avgLargestCompositeM = size / 1e6;
    } else {
        // No repetition: the whole run is the largest composite.
        row.avgLargestCompositeM = row.execLengthM;
    }
    return row;
}

namespace {

/**
 * Content hash of everything that determines a workload input's event
 * stream: the codec format, the workload's identity, the input, and
 * the array layout a run with that input allocates. Any change to the
 * generator invalidates that workload's cache entries.
 */
uint64_t
workloadParamsHash(const workloads::Workload &workload,
                   const workloads::WorkloadInput &input)
{
    std::vector<uint8_t> buf;
    auto put64 = [&buf](uint64_t v) {
        for (int b = 0; b < 8; ++b)
            buf.push_back(static_cast<uint8_t>(v >> (8 * b)));
    };
    auto putStr = [&buf, &put64](const std::string &s) {
        put64(s.size());
        buf.insert(buf.end(), s.begin(), s.end());
    };
    put64(1); // hash layout version
    putStr(workload.name());
    putStr(workload.description());
    put64(input.seed);
    put64(std::bit_cast<uint64_t>(input.scale));
    for (const auto &a : workload.arrays(input)) {
        putStr(a.name);
        put64(a.base);
        put64(a.elements);
        put64(a.elemBytes);
    }
    return trace::contentHash64(buf.data(), buf.size());
}

/**
 * Mutable state of the training-side analysis (shared by
 * analyzeWorkload and registerWorkloadEvaluation): the stage sinks
 * live here so sink factories can build them lazily (after their
 * dependencies completed) and steps can read them afterwards. Owned by
 * the plan via retain().
 */
struct AnalysisJob
{
    const workloads::Workload *workload = nullptr;
    phase::PhaseDetector detector;
    workloads::WorkloadInput trainIn;

    std::shared_ptr<trace::TraceStore> store; //!< null: caching off
    uint64_t trainHash = 0;
    bool trainHit = false;
    bool headerStatsValid = false;
    phase::PrecountStats headerPre; //!< from the stored header, on hit

    trace::MemoryTrace trainLog;
    phase::PrecountStats pre;
    bool usedPrecount = false;
    std::optional<reuse::VariableDistanceSampler> sampler;
    trace::BlockRecorder blocks;

    ShardingConfig sharding;

    /** @return the pool the sharded sweeps run on. */
    support::ThreadPool &
    shardPool() const
    {
        return sharding.pool ? *sharding.pool
                             : support::ThreadPool::shared();
    }

    /** @return whether the sharded replay path is active. */
    bool
    sharded() const
    {
        return sharding.enabled && shardPool().threadCount() > 1;
    }

    AnalysisResult *analysisOut = nullptr;
    uint64_t cacheHits = 0, cacheMisses = 0, traceBytes = 0;
    uint64_t rawBytes = 0, encodedBytes = 0; //!< trainLog sizes

    /** Static-oracle verification (config.staticOracle.enabled). */
    StaticOracleConfig oracleCfg;
    const workloads::StaticallyDescribed *staticDesc = nullptr;
    StaticOracleReport *oracleOut = nullptr;
    std::optional<MeasuredLocalitySink> measured;

    /** Train-side stratified evaluation (analyzeWorkload only; the
     *  workload evaluation samples the reference stream instead). */
    StratifiedSamplingConfig stratCfg;
    StratifiedEvalReport *stratOut = nullptr;
    ExecutionCollector stratCollector;
    std::optional<trace::Instrumenter> stratInst;
};

/** Node handles of one registered training-side analysis. */
struct AnalysisNodes
{
    ExecutionPlan::NodeId acquired; //!< trainLog holds the stream
    ExecutionPlan::NodeId ready;    //!< *analysisOut final

    /** Oracle comparison done (== ready when the oracle is off). */
    ExecutionPlan::NodeId oracle;
};

std::shared_ptr<AnalysisJob>
makeAnalysisJob(const workloads::Workload &workload,
                const AnalysisConfig &config, AnalysisResult *out,
                StaticOracleReport *oracle_out,
                StratifiedEvalReport *stratified_out)
{
    auto job = std::make_shared<AnalysisJob>();
    job->workload = &workload;
    job->trainIn = workload.trainInput();
    job->analysisOut = out;
    job->sharding = config.sharding;
    job->oracleCfg = config.staticOracle;
    job->oracleOut = oracle_out;
    job->stratCfg = config.stratifiedSampling;
    job->stratOut = stratified_out;
    if (config.stratifiedSampling.enabled)
        // Finer frames keep the sampled path's seek/decode cost
        // proportional to the sampled fraction (a seek decodes from
        // the start of the containing frame).
        job->trainLog.setFrameTargetAccesses(
            config.stratifiedSampling.frameTargetAccesses);
    if (config.staticOracle.enabled && oracle_out)
        job->staticDesc =
            dynamic_cast<const workloads::StaticallyDescribed *>(
                &workload);

    // Same configuration adjustment the serial path applies: the
    // addressed footprint bounds the sampler's distinct-element count.
    AnalysisConfig cfg = config;
    if (cfg.detector.sampler.addressSpaceElements == 0) {
        uint64_t elements = 0;
        for (const auto &a : workload.arrays(job->trainIn))
            elements += a.elements;
        cfg.detector.sampler.addressSpaceElements = elements;
    }
    job->detector = phase::PhaseDetector(cfg.detector);

    if (config.traceCache.enabled) {
        job->store =
            std::make_shared<trace::TraceStore>(config.traceCache.dir);
        job->trainHash = workloadParamsHash(workload, job->trainIn);
        auto info = job->store->lookup(
            workloadKey(workload, job->trainIn), job->trainHash);
        if (info) {
            job->trainHit = true;
            job->cacheHits = 1;
            job->traceBytes += info->fileBytes;
            if (info->stats.valid) {
                job->headerStatsValid = true;
                job->headerPre = phase::PrecountStats{
                    info->accesses, info->stats.distinctElements};
            }
        } else {
            job->cacheMisses = 1;
        }
    }
    return job;
}

/**
 * Register the training-side analysis:
 *
 *   acquire the training stream (ONE live recording execution, or a
 *   trace-store load on a hit)  ->  precount from the recording (step;
 *   skipped entirely when the stored header carries the stats)  ->
 *   sampling + block trace as one coalesced replay of the recording
 *   ->  publish to the store (miss only)  ->  detection finish.
 */
AnalysisNodes
registerTrainAnalysis(ExecutionPlan &plan,
                      const std::shared_ptr<AnalysisJob> &job)
{
    plan.retain(job);
    AnalysisJob *j = job.get();
    const std::string train_key = workloadKey(*j->workload, j->trainIn);

    // Acquire: the one (at most) live training execution records its
    // raw stream; a cache hit decodes the stored stream instead. A
    // corrupt entry falls back to a live run inside the step (not
    // plan-counted — rare, and the result is still exact).
    ExecutionPlan::NodeId acquired;
    if (j->trainHit) {
        acquired = plan.addStep([j, train_key] {
            if (!j->store->load(train_key, j->trainHash, j->trainLog)) {
                j->headerStatsValid = false;
                j->workload->run(j->trainIn, j->trainLog);
            }
        });
    } else {
        acquired = plan.addPass(
            train_key,
            [j](trace::TraceSink &sink) {
                j->workload->run(j->trainIn, sink);
            },
            [j] { return &j->trainLog; });
    }

    // Precount from the recording: same statistics a dedicated
    // precount execution would produce (the replay is exact), without
    // the execution. A stored header supplies them for free; with
    // sharding active, chunk-local distinct sets run on the pool.
    auto precounted = plan.addStep(
        [j] {
            if (!j->detector.needsPrecount())
                return;
            j->usedPrecount = true;
            if (j->headerStatsValid) {
                j->pre = j->headerPre;
            } else if (j->sharded()) {
                reuse::ShardedSweepConfig scfg;
                scfg.chunkAccesses = j->sharding.chunkAccesses;
                reuse::TraceCounts counts = reuse::shardedPrecount(
                    j->trainLog, scfg, j->shardPool());
                j->pre = phase::PrecountStats{counts.accesses,
                                              counts.distinctElements};
            } else {
                j->pre =
                    phase::PhaseDetector::precountFromTrace(j->trainLog);
            }
        },
        {acquired});

    std::vector<ExecutionPlan::NodeId> ready_deps;
    if (j->sharded()) {
        // Sampling + block trace as one sharded sweep: the chunk-local
        // reuse stacks run on the pool, and the sequential part is one
        // observe() call per access plus a per-chunk block-recorder
        // absorb — bit-identical to the serial replay below.
        ready_deps.push_back(plan.addStep(
            [j] {
                j->sampler.emplace(
                    reuse::VariableDistanceSampler::externalDistances(
                        j->detector.samplingConfig(
                            j->usedPrecount ? &j->pre : nullptr)));
                reuse::ShardedSweepConfig scfg;
                scfg.chunkAccesses = j->sharding.chunkAccesses;
                scfg.reserveElements =
                    j->usedPrecount
                        ? static_cast<size_t>(j->pre.distinctElements)
                        : 0;
                reuse::shardedReuseSweep(
                    j->trainLog, scfg, j->shardPool(),
                    [j](const reuse::ShardChunk &c) {
                        for (size_t i = 0; i < c.elements.size(); ++i)
                            j->sampler->observe(
                                c.elements[i],
                                c.range.firstAccess + i,
                                c.distances[i]);
                        j->blocks.absorb(c.blocks);
                    });
            },
            {precounted}));
    } else {
        // Sampling + block trace: one coalesced replay of the recording.
        auto replay_runner = [j](trace::TraceSink &sink) {
            j->trainLog.replay(sink);
        };
        auto sampler_pass = plan.addPass(
            train_key, replay_runner,
            [j]() -> trace::TraceSink * {
                j->sampler.emplace(j->detector.samplingConfig(
                    j->usedPrecount ? &j->pre : nullptr));
                return &*j->sampler;
            },
            {precounted}, {.replay = true});
        auto blocks_pass = plan.addPass(
            train_key, replay_runner, [j] { return &j->blocks; },
            {precounted}, {.replay = true});
        ready_deps.push_back(sampler_pass);
        ready_deps.push_back(blocks_pass);
    }

    // Publish the recording for the next process (cache miss only).
    // Best-effort: a failed store leaves the pipeline untouched.
    if (j->store && !j->trainHit) {
        ready_deps.push_back(plan.addStep(
            [j, train_key] {
                trace::StoredTraceStats stats;
                if (j->usedPrecount) {
                    stats.valid = true;
                    stats.distinctElements = j->pre.distinctElements;
                }
                j->traceBytes += j->store->store(train_key, j->trainHash,
                                                 j->trainLog, stats);
            },
            {precounted}));
    }

    // Detection finish + hierarchy (pure computation).
    auto ready = plan.addStep(
        [j] {
            j->rawBytes = j->trainLog.rawBytes();
            j->encodedBytes = j->trainLog.encodedBytes();
            j->analysisOut->detection =
                j->detector.finish(*j->sampler, j->blocks);
            j->analysisOut->hierarchy =
                grammar::PhaseHierarchy::fromSequence(
                    j->analysisOut->detection.selection.sequence());
            // The sampler and the block trace can dominate a large
            // run's footprint, and the detection result owns
            // everything downstream consumers read — release them as
            // soon as finish() returns rather than at plan teardown.
            j->sampler.reset();
            j->blocks = trace::BlockRecorder();
        },
        std::move(ready_deps));

    // Static-oracle verification: measure the recorded stream with one
    // more coalescable replay (never a live execution), predict the
    // same run from the workload's affine IR, and compare once the
    // detector's boundaries are final.
    auto oracle = ready;
    if (j->staticDesc && j->oracleOut) {
        auto measured_pass = plan.addPass(
            train_key,
            [j](trace::TraceSink &sink) { j->trainLog.replay(sink); },
            [j]() -> trace::TraceSink * {
                uint64_t elements = 0;
                for (const auto &a : j->workload->arrays(j->trainIn))
                    elements += a.elements;
                j->measured.emplace(elements);
                return &*j->measured;
            },
            {acquired}, {.replay = true});
        oracle = plan.addStep(
            [j] {
                staticloc::StaticPrediction pred = staticloc::predict(
                    j->staticDesc->loopProgram(j->trainIn),
                    j->oracleCfg.method);
                *j->oracleOut = compareStaticOracle(
                    pred, j->measured->take(),
                    j->analysisOut->detection.boundaryTimes,
                    j->oracleCfg);
                j->measured.reset();
            },
            {measured_pass, ready});
    }

    // Train-side stratified sampled evaluation (analyzeWorkload only):
    // one instrumented replay of the recording cuts it into phase
    // executions, then the sampled evaluator seeks back into the same
    // recording for the chosen ranges. Never a live execution.
    if (j->stratCfg.enabled && j->stratOut) {
        auto instrumented = plan.addPass(
            train_key,
            [j](trace::TraceSink &sink) { j->trainLog.replay(sink); },
            [j]() -> trace::TraceSink * {
                j->stratInst.emplace(
                    j->analysisOut->detection.selection.table,
                    j->stratCollector);
                return &*j->stratInst;
            },
            {ready}, {.replay = true});
        plan.addStep(
            [j] {
                StratifiedEvaluator ev(j->stratCfg, &j->shardPool());
                *j->stratOut = ev.evaluate(j->trainLog,
                                           j->stratCollector.replay());
            },
            {instrumented});
    }

    return AnalysisNodes{acquired, ready, oracle};
}

/**
 * Reference-side and instrumented-run state of one registered workload
 * evaluation. Owned by the plan via retain().
 */
struct EvalJob
{
    const workloads::Workload *workload = nullptr;
    workloads::WorkloadInput refIn;

    std::shared_ptr<trace::TraceStore> store; //!< null: caching off
    uint64_t refHash = 0;
    bool refHit = false;
    trace::MemoryTrace refLog; //!< decoded on a hit, recorded on a miss

    ExecutionCollector trainCollector, refCollector;
    trace::ManualMarkerRecorder trainManual, refManual;
    trace::FanoutSink trainFan, refFan;
    std::optional<trace::Instrumenter> trainInst, refInst;

    uint64_t cacheHits = 0, cacheMisses = 0, traceBytes = 0;
    WorkloadEvaluation *out = nullptr;

    /** Ref-side stratified sampled evaluation. */
    StratifiedSamplingConfig stratCfg;
};

} // namespace

WorkloadEvaluationNodes
registerWorkloadEvaluation(ExecutionPlan &plan,
                           const workloads::Workload &workload,
                           const AnalysisConfig &config,
                           WorkloadEvaluation *out)
{
    AnalysisConfig train_config = config;
    // The workload evaluation samples the *reference* stream (far more
    // phase executions than the training run); keep the training side
    // exact rather than paying for a second instrumented replay.
    train_config.stratifiedSampling.enabled = false;
    auto ajob = makeAnalysisJob(workload, train_config, &out->analysis,
                                &out->staticOracle, nullptr);
    auto anodes = registerTrainAnalysis(plan, ajob);
    AnalysisJob *a = ajob.get();

    auto job = std::make_shared<EvalJob>();
    plan.retain(job);
    EvalJob *j = job.get();

    j->workload = &workload;
    j->refIn = workload.refInput();
    j->out = out;
    j->stratCfg = config.stratifiedSampling;
    if (j->stratCfg.enabled)
        j->refLog.setFrameTargetAccesses(
            j->stratCfg.frameTargetAccesses);
    out->name = workload.name();

    const std::string train_key = workloadKey(workload, a->trainIn);
    const std::string ref_key = workloadKey(workload, j->refIn);

    if (a->store) {
        j->store = a->store;
        j->refHash = workloadParamsHash(workload, j->refIn);
        if (j->store->lookup(ref_key, j->refHash)) {
            j->refHit = true;
            j->cacheHits = 1;
        } else {
            j->cacheMisses = 1;
        }
    }

    auto analysis_ready = anodes.ready;

    // Instrumented training run: a replay of the training recording
    // (never a live execution). Wraps its own instrumenter so the raw
    // stream stays shareable.
    auto train_replay = plan.addPass(
        train_key,
        [a](trace::TraceSink &sink) { a->trainLog.replay(sink); },
        [j]() -> trace::TraceSink * {
            j->trainFan.attach(&j->trainCollector);
            j->trainFan.attach(&j->trainManual);
            j->trainInst.emplace(j->out->analysis.detection.selection.table,
                                 j->trainFan);
            return &*j->trainInst;
        },
        {analysis_ready}, {.replay = true});

    // Instrumented reference run: live on a cold cache (recording the
    // raw stream for the store when caching), a replay of the stored
    // stream on a hit.
    auto ref_sink_factory = [j]() -> trace::TraceSink * {
        j->refFan.attach(&j->refCollector);
        j->refFan.attach(&j->refManual);
        j->refInst.emplace(j->out->analysis.detection.selection.table,
                           j->refFan);
        return &*j->refInst;
    };
    // The assemble step clears the training recording, so the oracle's
    // measured replay (if any) must have finished by then.
    std::vector<ExecutionPlan::NodeId> done_deps{train_replay,
                                                 anodes.oracle};
    // Dependencies of the stratified step: the instrumented ref run
    // (phase executions) and the recorded reference stream.
    std::vector<ExecutionPlan::NodeId> strat_deps;
    if (j->refHit) {
        auto acquired = plan.addStep([j, ref_key] {
            if (!j->store->load(ref_key, j->refHash, j->refLog))
                j->workload->run(j->refIn, j->refLog);
        });
        auto ref_replay = plan.addPass(
            ref_key,
            [j](trace::TraceSink &sink) { j->refLog.replay(sink); },
            ref_sink_factory, {analysis_ready, acquired},
            {.replay = true});
        done_deps.push_back(ref_replay);
        strat_deps = {ref_replay};
    } else {
        auto live_runner = [j](trace::TraceSink &sink) {
            j->workload->run(j->refIn, sink);
        };
        auto ref_run = plan.addPass(ref_key, live_runner,
                                    ref_sink_factory, {analysis_ready});
        done_deps.push_back(ref_run);
        if (j->store || j->stratCfg.enabled) {
            // Record the raw reference stream in the same coalesced
            // execution (for the store, the stratified evaluator, or
            // both); no precount stats — the reference side never
            // sizes a sampler.
            auto record = plan.addPass(ref_key, live_runner,
                                       [j] { return &j->refLog; },
                                       {analysis_ready});
            strat_deps = {ref_run, record};
            if (j->store)
                done_deps.push_back(plan.addStep(
                    [j, ref_key] {
                        j->traceBytes += j->store->store(
                            ref_key, j->refHash, j->refLog,
                            trace::StoredTraceStats{});
                    },
                    {record}));
        }
    }

    if (j->stratCfg.enabled) {
        // Sampled evaluation of the reference recording. Must complete
        // before the assemble step releases refLog.
        done_deps.push_back(plan.addStep(
            [j, a] {
                StratifiedEvaluator ev(j->stratCfg, &a->shardPool());
                j->out->stratified =
                    ev.evaluate(j->refLog, j->refCollector.replay());
            },
            std::move(strat_deps)));
    }

    // Assemble the evaluation; the recordings are no longer needed, so
    // release their memory.
    auto done = plan.addStep(
        [j, a] {
            WorkloadEvaluation &ev = *j->out;
            ev.train.replay = j->trainCollector.replay();
            ev.train.manualTimes = j->trainManual.times();
            ev.ref.replay = j->refCollector.replay();
            ev.ref.manualTimes = j->refManual.times();

            ev.metrics = evaluatePrediction(ev.ref.replay,
                                            ev.analysis.consistentPhases());

            auto train_hier = grammar::PhaseHierarchy::fromSequence(
                ev.train.replay.sequence());
            auto ref_hier = grammar::PhaseHierarchy::fromSequence(
                ev.ref.replay.sequence());
            ev.detectionRow = granularity(ev.train.replay, train_hier);
            ev.predictionRow = granularity(ev.ref.replay, ref_hier);

            ev.localityStddev = phaseLocalityStddev(ev.ref.replay);

            auto auto_times = [](const Replay &r) {
                std::vector<uint64_t> t;
                t.reserve(r.executions.size());
                for (const auto &e : r.executions)
                    t.push_back(e.startAccess);
                return t;
            };
            ev.trainOverlap = markerOverlap(ev.train.manualTimes,
                                            auto_times(ev.train.replay));
            ev.refOverlap = markerOverlap(ev.ref.manualTimes,
                                          auto_times(ev.ref.replay));

            ev.traceCacheHits = a->cacheHits + j->cacheHits;
            ev.traceCacheMisses = a->cacheMisses + j->cacheMisses;
            ev.traceBytes = a->traceBytes + j->traceBytes;
            ev.rawTraceBytes = a->rawBytes + j->refLog.rawBytes();
            ev.encodedTraceBytes =
                a->encodedBytes + j->refLog.encodedBytes();

            a->trainLog.clear();
            j->refLog.clear();
        },
        std::move(done_deps));

    return WorkloadEvaluationNodes{analysis_ready, done};
}

WorkloadAnalysisRun
analyzeWorkload(const workloads::Workload &workload,
                const AnalysisConfig &config)
{
    WorkloadAnalysisRun out;
    ExecutionPlan plan;
    auto job = makeAnalysisJob(workload, config, &out.analysis,
                               &out.staticOracle, &out.stratified);
    registerTrainAnalysis(plan, job);
    plan.run();
    out.programExecutions =
        plan.programExecutions(workload.name() + "@");
    out.traceCacheHits = job->cacheHits;
    out.traceCacheMisses = job->cacheMisses;
    out.traceBytes = job->traceBytes;
    out.rawTraceBytes = job->rawBytes;
    out.encodedTraceBytes = job->encodedBytes;
    return out;
}

WorkloadEvaluation
evaluateWorkload(const workloads::Workload &workload,
                 const AnalysisConfig &config)
{
    WorkloadEvaluation ev;
    ExecutionPlan plan;
    registerWorkloadEvaluation(plan, workload, config, &ev);
    plan.run();
    ev.programExecutions =
        plan.programExecutions(workload.name() + "@");
    return ev;
}

std::vector<WorkloadEvaluation>
evaluateWorkloads(const std::vector<std::string> &names,
                  const AnalysisConfig &config)
{
    AnalysisConfig cfg = config;
    support::ThreadPool &pool = cfg.sharding.pool
                                    ? *cfg.sharding.pool
                                    : support::ThreadPool::shared();
    return evaluateWorkloads(names, cfg, pool);
}

std::vector<WorkloadEvaluation>
evaluateWorkloads(const std::vector<std::string> &names,
                  const AnalysisConfig &config, support::ThreadPool &pool)
{
    std::vector<WorkloadEvaluation> results(names.size());
    AnalysisConfig cfg = config;
    cfg.sharding.pool = &pool; // sharded sweeps share the plan's pool
    ExecutionPlan plan;
    for (size_t i = 0; i < names.size(); ++i) {
        std::shared_ptr<workloads::Workload> w =
            workloads::create(names[i]);
        LPP_REQUIRE(w != nullptr, "unknown workload '%s'",
                    names[i].c_str());
        plan.retain(w);
        registerWorkloadEvaluation(plan, *w, cfg, &results[i]);
    }
    plan.run(pool);
    for (size_t i = 0; i < names.size(); ++i)
        results[i].programExecutions =
            plan.programExecutions(results[i].name + "@");
    return results;
}

namespace {

/** Cuts fixed-size units, driving a stack simulator and a BBV. */
class IntervalDriver : public trace::TraceSink
{
  public:
    IntervalDriver(uint64_t unit_accesses, size_t bbv_dims)
        : bbv(bbv_dims), unitAccesses(unit_accesses)
    {
        LPP_REQUIRE(unit_accesses > 0, "unit size must be positive");
    }

    void
    onBlock(trace::BlockId block, uint32_t instructions) override
    {
        bbv.onBlock(block, instructions);
    }

    void
    onAccess(trace::Addr addr) override
    {
        sim.onAccess(addr);
        if (++inUnit >= unitAccesses) {
            sim.markSegment();
            bbv.finalizeInterval();
            inUnit = 0;
        }
    }

    void
    onAccessBatch(const trace::Addr *addrs, size_t n) override
    {
        // Feed the simulator whole sub-batches up to each unit
        // boundary; boundary handling is identical to per-access
        // delivery because unit cuts depend only on access counts.
        while (n > 0) {
            uint64_t room = unitAccesses - inUnit;
            size_t take = n < room ? n : static_cast<size_t>(room);
            sim.onAccessBatch(addrs, take);
            inUnit += take;
            addrs += take;
            n -= take;
            if (inUnit >= unitAccesses) {
                sim.markSegment();
                bbv.finalizeInterval();
                inUnit = 0;
            }
        }
    }

    void
    onEnd() override
    {
        if (inUnit > 0) {
            sim.markSegment();
            bbv.finalizeInterval();
        }
    }

    cache::StackSimulator sim;
    bbv::BbvCollector bbv;

  private:
    uint64_t unitAccesses;
    uint64_t inUnit = 0;
};

/** Units restarting at phase markers, keyed (phase, index). */
class PhaseIntervalDriver : public trace::TraceSink
{
  public:
    explicit PhaseIntervalDriver(uint64_t unit_accesses)
        : unitAccesses(unit_accesses)
    {
        LPP_REQUIRE(unit_accesses > 0, "unit size must be positive");
    }

    void
    onAccess(trace::Addr addr) override
    {
        sim.onAccess(addr);
        if (++inUnit >= unitAccesses)
            closeUnit();
    }

    void
    onAccessBatch(const trace::Addr *addrs, size_t n) override
    {
        while (n > 0) {
            uint64_t room = unitAccesses - inUnit;
            size_t take = n < room ? n : static_cast<size_t>(room);
            sim.onAccessBatch(addrs, take);
            inUnit += take;
            addrs += take;
            n -= take;
            if (inUnit >= unitAccesses)
                closeUnit();
        }
    }

    void
    onPhaseMarker(trace::PhaseId phase) override
    {
        if (inUnit > 0)
            closeUnit();
        currentPhase = phase;
        unitIndex = 0;
    }

    void
    onEnd() override
    {
        if (inUnit > 0)
            closeUnit();
    }

    cache::StackSimulator sim;
    std::vector<uint64_t> keys;

  private:
    void
    closeUnit()
    {
        sim.markSegment();
        keys.push_back((static_cast<uint64_t>(currentPhase) << 32) |
                       unitIndex);
        ++unitIndex;
        inUnit = 0;
    }

    uint64_t unitAccesses;
    uint64_t inUnit = 0;
    trace::PhaseId currentPhase = 0xFFFFFFFFu;
    uint64_t unitIndex = 0;
};

} // namespace

ExecutionPlan::NodeId
registerIntervalProfile(ExecutionPlan &plan, std::string key,
                        std::function<void(trace::TraceSink &)> runner,
                        uint64_t unit_accesses, size_t bbv_dims,
                        IntervalProfile *out,
                        std::vector<ExecutionPlan::NodeId> after)
{
    auto driver =
        std::make_shared<IntervalDriver>(unit_accesses, bbv_dims);
    plan.retain(driver);
    IntervalDriver *d = driver.get();
    auto pass = plan.addPass(std::move(key), std::move(runner),
                             [d] { return d; }, std::move(after));
    return plan.addStep(
        [d, out] {
            out->units = d->sim.segments();
            out->bbvs = d->bbv.vectors();
            // Block events after the last access can add a trailing
            // BBV with no matching locality unit; align conservatively.
            size_t n = std::min(out->units.size(), out->bbvs.size());
            out->units.resize(n);
            out->bbvs.resize(n);
        },
        {pass});
}

IntervalProfile
collectIntervals(const std::function<void(trace::TraceSink &)> &runner,
                 uint64_t unit_accesses, size_t bbv_dims)
{
    IntervalProfile out;
    ExecutionPlan plan;
    registerIntervalProfile(plan, "run@local", runner, unit_accesses,
                            bbv_dims, &out);
    plan.run();
    return out;
}

namespace {

/**
 * Chunk-local pass of the sharded interval profile: a chunk-local
 * stack simulation plus block weights bucketed by global unit index
 * (the serial driver cuts after the access completing a unit, so a
 * block event at access clock c belongs to unit c / unitAccesses).
 */
class ChunkIntervalSink : public trace::TraceSink
{
  public:
    ChunkIntervalSink(const cache::ShardedSimConfig &cfg,
                      const trace::MemoryTrace::ChunkRange &range)
        : sim(cfg, range.firstAccess), unitAccesses(cfg.unitAccesses),
          firstAccess(range.firstAccess)
    {
    }

    void
    onBlock(trace::BlockId block, uint32_t instructions) override
    {
        uint64_t clock = firstAccess + sim.accessCount();
        size_t rel = static_cast<size_t>(clock / unitAccesses -
                                         sim.firstUnit());
        if (rel >= blockCounts.size())
            blockCounts.resize(rel + 1);
        blockCounts[rel][block] += instructions;
    }

    void onAccess(trace::Addr addr) override { sim.onAccess(addr); }

    void
    onAccessBatch(const trace::Addr *addrs, size_t n) override
    {
        sim.onAccessBatch(addrs, n);
    }

    void onEnd() override { sawEnd = true; }

    cache::ShardedSimChunk sim;
    /** Per chunk-relative unit: merged integer block weights. */
    std::vector<std::unordered_map<trace::BlockId, uint64_t>> blockCounts;
    bool sawEnd = false;

  private:
    uint64_t unitAccesses;
    uint64_t firstAccess;
};

} // namespace

IntervalProfile
collectIntervalsSharded(const trace::MemoryTrace &trace,
                        uint64_t unit_accesses, size_t bbv_dims,
                        uint64_t chunk_accesses, support::ThreadPool *pool)
{
    LPP_REQUIRE(unit_accesses > 0, "unit size must be positive");
    support::ThreadPool &tp =
        pool ? *pool : support::ThreadPool::shared();

    cache::ShardedSimConfig cfg;
    cfg.unitAccesses = unit_accesses;

    std::vector<trace::MemoryTrace::ChunkRange> ranges =
        trace.chunks(chunk_accesses);
    cache::ShardedStackSim sim(cfg);
    std::vector<std::unordered_map<trace::BlockId, uint64_t>> unitBlocks;
    bool sawEnd = false;

    // Waves bound peak memory to (pool size + 1) chunk states while
    // keeping every pool thread and the caller busy during the local
    // passes; the reduction between waves is strictly in chunk order.
    size_t waveSize = tp.threadCount() + 1;
    std::vector<trace::TraceCursor> cursors;
    cursors.reserve(waveSize);
    for (size_t i = 0; i < waveSize; ++i)
        cursors.emplace_back(trace);
    for (size_t begin = 0; begin < ranges.size(); begin += waveSize) {
        size_t count = std::min(waveSize, ranges.size() - begin);
        std::vector<std::unique_ptr<ChunkIntervalSink>> sinks(count);
        support::parallelFor(tp, count, [&](size_t i) {
            sinks[i] = std::make_unique<ChunkIntervalSink>(
                cfg, ranges[begin + i]);
            cursors[i].replayRange(*sinks[i], ranges[begin + i]);
        });
        for (size_t i = 0; i < count; ++i) {
            ChunkIntervalSink &s = *sinks[i];
            sim.absorb(s.sim);
            size_t base = static_cast<size_t>(s.sim.firstUnit());
            if (base + s.blockCounts.size() > unitBlocks.size())
                unitBlocks.resize(base + s.blockCounts.size());
            for (size_t r = 0; r < s.blockCounts.size(); ++r)
                for (const auto &kv : s.blockCounts[r])
                    unitBlocks[base + r][kv.first] += kv.second;
            sawEnd = sawEnd || s.sawEnd;
            sinks[i].reset();
        }
    }

    // The serial driver closes a trailing partial unit only when the
    // stream delivers its end event; chunk partials always count, so
    // mirror the serial cut here. Block events past the last closed
    // unit are dropped on both paths.
    size_t n = sim.units().size();
    if (!sawEnd && n > 0 && trace.accessCount() % unit_accesses != 0)
        --n;

    IntervalProfile out;
    out.units.assign(sim.units().begin(), sim.units().begin() + n);
    bbv::BbvCollector bbv(bbv_dims);
    for (size_t u = 0; u < n; ++u) {
        if (u < unitBlocks.size())
            for (const auto &kv : unitBlocks[u])
                bbv.addBlockWeight(kv.first, kv.second);
        bbv.finalizeInterval();
    }
    out.bbvs = bbv.vectors();
    return out;
}

ExecutionPlan::NodeId
registerPhaseIntervalProfile(ExecutionPlan &plan, std::string key,
                             const trace::MarkerTable *table,
                             std::function<void(trace::TraceSink &)> runner,
                             uint64_t unit_accesses,
                             PhaseIntervalProfile *out,
                             std::vector<ExecutionPlan::NodeId> after)
{
    LPP_REQUIRE(table != nullptr, "marker table must be non-null");
    struct Job
    {
        explicit Job(uint64_t unit) : driver(unit) {}
        PhaseIntervalDriver driver;
        std::optional<trace::Instrumenter> inst;
    };
    auto job = std::make_shared<Job>(unit_accesses);
    plan.retain(job);
    Job *jp = job.get();
    auto pass = plan.addPass(
        std::move(key), std::move(runner),
        [jp, table]() -> trace::TraceSink * {
            jp->inst.emplace(*table, jp->driver);
            return &*jp->inst;
        },
        std::move(after));
    return plan.addStep(
        [jp, out] {
            out->units = jp->driver.sim.segments();
            out->keys = jp->driver.keys;
            LPP_REQUIRE(out->units.size() == out->keys.size(),
                        "unit/key mismatch: %zu vs %zu",
                        out->units.size(), out->keys.size());
        },
        {pass});
}

PhaseIntervalProfile
collectPhaseIntervals(
    const trace::MarkerTable &table,
    const std::function<void(trace::TraceSink &)> &runner,
    uint64_t unit_accesses)
{
    PhaseIntervalProfile out;
    ExecutionPlan plan;
    registerPhaseIntervalProfile(plan, "run@local", &table, runner,
                                 unit_accesses, &out);
    plan.run();
    return out;
}

} // namespace lpp::core
