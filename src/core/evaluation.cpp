#include "core/evaluation.hpp"

#include <algorithm>
#include <unordered_map>

#include "core/parallel.hpp"
#include "support/logging.hpp"
#include "support/stats.hpp"
#include "trace/recorder.hpp"
#include "workloads/registry.hpp"

namespace lpp::core {

OverlapResult
markerOverlap(const std::vector<uint64_t> &manual_times,
              const std::vector<uint64_t> &auto_times,
              uint64_t tolerance)
{
    auto matched = [tolerance](const std::vector<uint64_t> &sorted,
                               uint64_t t) {
        auto it = std::lower_bound(sorted.begin(), sorted.end(),
                                   t >= tolerance ? t - tolerance : 0);
        return it != sorted.end() && *it <= t + tolerance;
    };

    std::vector<uint64_t> manual_sorted = manual_times;
    std::vector<uint64_t> auto_sorted = auto_times;
    std::sort(manual_sorted.begin(), manual_sorted.end());
    std::sort(auto_sorted.begin(), auto_sorted.end());

    OverlapResult r;
    if (!manual_sorted.empty()) {
        uint64_t hit = 0;
        for (uint64_t t : manual_sorted)
            hit += matched(auto_sorted, t);
        r.recall = static_cast<double>(hit) /
                   static_cast<double>(manual_sorted.size());
    }
    if (!auto_sorted.empty()) {
        uint64_t hit = 0;
        for (uint64_t t : auto_sorted)
            hit += matched(manual_sorted, t);
        r.precision = static_cast<double>(hit) /
                      static_cast<double>(auto_sorted.size());
    }
    return r;
}

InstrumentedRun
runInstrumented(const trace::MarkerTable &table,
                const std::function<void(trace::TraceSink &)> &runner)
{
    ExecutionCollector collector;
    trace::ManualMarkerRecorder manual;
    trace::FanoutSink fan;
    fan.attach(&collector);
    fan.attach(&manual);
    trace::Instrumenter inst(table, fan);
    runner(inst);

    InstrumentedRun out;
    out.replay = collector.replay();
    out.manualTimes = manual.times();
    return out;
}

GranularityRow
granularity(const Replay &replay,
            const grammar::PhaseHierarchy &hierarchy)
{
    GranularityRow row;
    row.leafExecutions = replay.executions.size();
    row.execLengthM =
        static_cast<double>(replay.totalInstructions) / 1e6;
    if (replay.executions.empty())
        return row;

    double leaf_sum = 0.0;
    std::unordered_map<trace::PhaseId, RunningStats> per_phase;
    for (const auto &e : replay.executions) {
        leaf_sum += static_cast<double>(e.instructions);
        per_phase[e.phase].push(static_cast<double>(e.instructions));
    }
    row.avgLeafSizeM =
        leaf_sum / static_cast<double>(replay.executions.size()) / 1e6;

    const grammar::CompositePhase *big = hierarchy.largestComposite();
    if (big) {
        // Composite size = sum of the mean length of each leaf phase in
        // one iteration of the repeat body.
        double size = 0.0;
        for (uint32_t leaf : big->node->body()->expand()) {
            auto it = per_phase.find(leaf);
            if (it != per_phase.end())
                size += it->second.mean();
        }
        row.avgLargestCompositeM = size / 1e6;
    } else {
        // No repetition: the whole run is the largest composite.
        row.avgLargestCompositeM = row.execLengthM;
    }
    return row;
}

WorkloadEvaluation
evaluateWorkload(const workloads::Workload &workload,
                 const AnalysisConfig &config)
{
    WorkloadEvaluation ev;
    ev.name = workload.name();
    ev.analysis = PhaseAnalysis::analyzeWorkload(workload, config);

    const trace::MarkerTable &table =
        ev.analysis.detection.selection.table;
    auto train_in = workload.trainInput();
    auto ref_in = workload.refInput();

    ev.train = runInstrumented(table, [&](trace::TraceSink &s) {
        workload.run(train_in, s);
    });
    ev.ref = runInstrumented(table, [&](trace::TraceSink &s) {
        workload.run(ref_in, s);
    });

    ev.metrics = evaluatePrediction(ev.ref.replay,
                                    ev.analysis.consistentPhases());

    auto train_hier = grammar::PhaseHierarchy::fromSequence(
        ev.train.replay.sequence());
    auto ref_hier = grammar::PhaseHierarchy::fromSequence(
        ev.ref.replay.sequence());
    ev.detectionRow = granularity(ev.train.replay, train_hier);
    ev.predictionRow = granularity(ev.ref.replay, ref_hier);

    ev.localityStddev = phaseLocalityStddev(ev.ref.replay);

    auto auto_times = [](const Replay &r) {
        std::vector<uint64_t> t;
        t.reserve(r.executions.size());
        for (const auto &e : r.executions)
            t.push_back(e.startAccess);
        return t;
    };
    ev.trainOverlap =
        markerOverlap(ev.train.manualTimes, auto_times(ev.train.replay));
    ev.refOverlap =
        markerOverlap(ev.ref.manualTimes, auto_times(ev.ref.replay));
    return ev;
}

std::vector<WorkloadEvaluation>
evaluateWorkloads(const std::vector<std::string> &names,
                  const AnalysisConfig &config)
{
    ParallelRunner runner;
    return runner.mapIndexed(names.size(), [&](size_t i) {
        auto w = workloads::create(names[i]);
        LPP_REQUIRE(w != nullptr, "unknown workload '%s'",
                    names[i].c_str());
        return evaluateWorkload(*w, config);
    });
}

namespace {

/** Cuts fixed-size units, driving a stack simulator and a BBV. */
class IntervalDriver : public trace::TraceSink
{
  public:
    IntervalDriver(uint64_t unit_accesses, size_t bbv_dims)
        : bbv(bbv_dims), unitAccesses(unit_accesses)
    {
        LPP_REQUIRE(unit_accesses > 0, "unit size must be positive");
    }

    void
    onBlock(trace::BlockId block, uint32_t instructions) override
    {
        bbv.onBlock(block, instructions);
    }

    void
    onAccess(trace::Addr addr) override
    {
        sim.onAccess(addr);
        if (++inUnit >= unitAccesses) {
            sim.markSegment();
            bbv.finalizeInterval();
            inUnit = 0;
        }
    }

    void
    onAccessBatch(const trace::Addr *addrs, size_t n) override
    {
        // Feed the simulator whole sub-batches up to each unit
        // boundary; boundary handling is identical to per-access
        // delivery because unit cuts depend only on access counts.
        while (n > 0) {
            uint64_t room = unitAccesses - inUnit;
            size_t take = n < room ? n : static_cast<size_t>(room);
            sim.onAccessBatch(addrs, take);
            inUnit += take;
            addrs += take;
            n -= take;
            if (inUnit >= unitAccesses) {
                sim.markSegment();
                bbv.finalizeInterval();
                inUnit = 0;
            }
        }
    }

    void
    onEnd() override
    {
        if (inUnit > 0) {
            sim.markSegment();
            bbv.finalizeInterval();
        }
    }

    cache::StackSimulator sim;
    bbv::BbvCollector bbv;

  private:
    uint64_t unitAccesses;
    uint64_t inUnit = 0;
};

/** Units restarting at phase markers, keyed (phase, index). */
class PhaseIntervalDriver : public trace::TraceSink
{
  public:
    explicit PhaseIntervalDriver(uint64_t unit_accesses)
        : unitAccesses(unit_accesses)
    {
        LPP_REQUIRE(unit_accesses > 0, "unit size must be positive");
    }

    void
    onAccess(trace::Addr addr) override
    {
        sim.onAccess(addr);
        if (++inUnit >= unitAccesses)
            closeUnit();
    }

    void
    onAccessBatch(const trace::Addr *addrs, size_t n) override
    {
        while (n > 0) {
            uint64_t room = unitAccesses - inUnit;
            size_t take = n < room ? n : static_cast<size_t>(room);
            sim.onAccessBatch(addrs, take);
            inUnit += take;
            addrs += take;
            n -= take;
            if (inUnit >= unitAccesses)
                closeUnit();
        }
    }

    void
    onPhaseMarker(trace::PhaseId phase) override
    {
        if (inUnit > 0)
            closeUnit();
        currentPhase = phase;
        unitIndex = 0;
    }

    void
    onEnd() override
    {
        if (inUnit > 0)
            closeUnit();
    }

    cache::StackSimulator sim;
    std::vector<uint64_t> keys;

  private:
    void
    closeUnit()
    {
        sim.markSegment();
        keys.push_back((static_cast<uint64_t>(currentPhase) << 32) |
                       unitIndex);
        ++unitIndex;
        inUnit = 0;
    }

    uint64_t unitAccesses;
    uint64_t inUnit = 0;
    trace::PhaseId currentPhase = 0xFFFFFFFFu;
    uint64_t unitIndex = 0;
};

} // namespace

IntervalProfile
collectIntervals(const std::function<void(trace::TraceSink &)> &runner,
                 uint64_t unit_accesses, size_t bbv_dims)
{
    IntervalDriver driver(unit_accesses, bbv_dims);
    runner(driver);
    IntervalProfile out;
    out.units = driver.sim.segments();
    out.bbvs = driver.bbv.vectors();
    // Block events after the last access can add a trailing BBV with no
    // matching locality unit; align conservatively.
    size_t n = std::min(out.units.size(), out.bbvs.size());
    out.units.resize(n);
    out.bbvs.resize(n);
    return out;
}

PhaseIntervalProfile
collectPhaseIntervals(
    const trace::MarkerTable &table,
    const std::function<void(trace::TraceSink &)> &runner,
    uint64_t unit_accesses)
{
    PhaseIntervalDriver driver(unit_accesses);
    trace::Instrumenter inst(table, driver);
    runner(inst);
    PhaseIntervalProfile out;
    out.units = driver.sim.segments();
    out.keys = driver.keys;
    LPP_REQUIRE(out.units.size() == out.keys.size(),
                "unit/key mismatch: %zu vs %zu", out.units.size(),
                out.keys.size());
    return out;
}

} // namespace lpp::core
