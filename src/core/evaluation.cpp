#include "core/evaluation.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>

#include "support/logging.hpp"
#include "support/stats.hpp"
#include "trace/instrument.hpp"
#include "trace/memory_trace.hpp"
#include "trace/recorder.hpp"
#include "workloads/registry.hpp"

namespace lpp::core {

OverlapResult
markerOverlap(const std::vector<uint64_t> &manual_times,
              const std::vector<uint64_t> &auto_times,
              uint64_t tolerance)
{
    auto matched = [tolerance](const std::vector<uint64_t> &sorted,
                               uint64_t t) {
        auto it = std::lower_bound(sorted.begin(), sorted.end(),
                                   t >= tolerance ? t - tolerance : 0);
        return it != sorted.end() && *it <= t + tolerance;
    };

    std::vector<uint64_t> manual_sorted = manual_times;
    std::vector<uint64_t> auto_sorted = auto_times;
    std::sort(manual_sorted.begin(), manual_sorted.end());
    std::sort(auto_sorted.begin(), auto_sorted.end());

    OverlapResult r;
    if (!manual_sorted.empty()) {
        uint64_t hit = 0;
        for (uint64_t t : manual_sorted)
            hit += matched(auto_sorted, t);
        r.recall = static_cast<double>(hit) /
                   static_cast<double>(manual_sorted.size());
    }
    if (!auto_sorted.empty()) {
        uint64_t hit = 0;
        for (uint64_t t : auto_sorted)
            hit += matched(manual_sorted, t);
        r.precision = static_cast<double>(hit) /
                      static_cast<double>(auto_sorted.size());
    }
    return r;
}

InstrumentedRun
runInstrumented(const trace::MarkerTable &table,
                const std::function<void(trace::TraceSink &)> &runner)
{
    ExecutionCollector collector;
    trace::ManualMarkerRecorder manual;
    trace::FanoutSink fan;
    fan.attach(&collector);
    fan.attach(&manual);
    trace::Instrumenter inst(table, fan);
    runner(inst);

    InstrumentedRun out;
    out.replay = collector.replay();
    out.manualTimes = manual.times();
    return out;
}

GranularityRow
granularity(const Replay &replay,
            const grammar::PhaseHierarchy &hierarchy)
{
    GranularityRow row;
    row.leafExecutions = replay.executions.size();
    row.execLengthM =
        static_cast<double>(replay.totalInstructions) / 1e6;
    if (replay.executions.empty())
        return row;

    double leaf_sum = 0.0;
    std::unordered_map<trace::PhaseId, RunningStats> per_phase;
    for (const auto &e : replay.executions) {
        leaf_sum += static_cast<double>(e.instructions);
        per_phase[e.phase].push(static_cast<double>(e.instructions));
    }
    row.avgLeafSizeM =
        leaf_sum / static_cast<double>(replay.executions.size()) / 1e6;

    const grammar::CompositePhase *big = hierarchy.largestComposite();
    if (big) {
        // Composite size = sum of the mean length of each leaf phase in
        // one iteration of the repeat body.
        double size = 0.0;
        for (uint32_t leaf : big->node->body()->expand()) {
            auto it = per_phase.find(leaf);
            if (it != per_phase.end())
                size += it->second.mean();
        }
        row.avgLargestCompositeM = size / 1e6;
    } else {
        // No repetition: the whole run is the largest composite.
        row.avgLargestCompositeM = row.execLengthM;
    }
    return row;
}

namespace {

/**
 * Mutable state of one registered workload evaluation: the stage sinks
 * live here so sink factories can build them lazily (after their
 * dependencies completed) and steps can read them afterwards. Owned by
 * the plan via retain().
 */
struct EvalJob
{
    const workloads::Workload *workload = nullptr;
    phase::PhaseDetector detector;
    workloads::WorkloadInput trainIn, refIn;

    phase::PrecountSink precount;
    bool usedPrecount = false;
    std::optional<reuse::VariableDistanceSampler> sampler;
    trace::BlockRecorder blocks;
    trace::MemoryTrace trainLog;

    ExecutionCollector trainCollector, refCollector;
    trace::ManualMarkerRecorder trainManual, refManual;
    trace::FanoutSink trainFan, refFan;
    std::optional<trace::Instrumenter> trainInst, refInst;

    WorkloadEvaluation *out = nullptr;
};

} // namespace

WorkloadEvaluationNodes
registerWorkloadEvaluation(ExecutionPlan &plan,
                           const workloads::Workload &workload,
                           const AnalysisConfig &config,
                           WorkloadEvaluation *out)
{
    auto job = std::make_shared<EvalJob>();
    plan.retain(job);
    EvalJob *j = job.get();

    j->workload = &workload;
    j->trainIn = workload.trainInput();
    j->refIn = workload.refInput();
    j->out = out;
    out->name = workload.name();

    // Same configuration adjustment the serial path applies: the
    // addressed footprint bounds the sampler's distinct-element count.
    AnalysisConfig cfg = config;
    if (cfg.detector.sampler.addressSpaceElements == 0) {
        uint64_t elements = 0;
        for (const auto &a : workload.arrays(j->trainIn))
            elements += a.elements;
        cfg.detector.sampler.addressSpaceElements = elements;
    }
    j->detector = phase::PhaseDetector(cfg.detector);

    const std::string train_key = workloadKey(workload, j->trainIn);
    const std::string ref_key = workloadKey(workload, j->refIn);
    auto train_runner = [j](trace::TraceSink &sink) {
        j->workload->run(j->trainIn, sink);
    };

    // Stage 0: precount execution (train), when configured.
    std::vector<ExecutionPlan::NodeId> after_precount;
    if (j->detector.needsPrecount()) {
        j->usedPrecount = true;
        after_precount.push_back(plan.addPass(
            train_key, train_runner, [j] { return &j->precount; }));
    }

    // Stage 1: one coalesced training execution feeding the sampler,
    // the block recorder, and the stream recording for the later
    // instrumented replay.
    auto sampler_pass = plan.addPass(
        train_key, train_runner,
        [j]() -> trace::TraceSink * {
            auto stats = j->precount.stats();
            j->sampler.emplace(j->detector.samplingConfig(
                j->usedPrecount ? &stats : nullptr));
            return &*j->sampler;
        },
        after_precount);
    auto blocks_pass = plan.addPass(
        train_key, train_runner, [j] { return &j->blocks; },
        after_precount);
    auto record_pass = plan.addPass(
        train_key, train_runner, [j] { return &j->trainLog; },
        after_precount);

    // Stage 2: detection finish + hierarchy (pure computation).
    auto analysis_ready = plan.addStep(
        [j] {
            j->out->analysis.detection =
                j->detector.finish(*j->sampler, j->blocks);
            j->out->analysis.hierarchy =
                grammar::PhaseHierarchy::fromSequence(
                    j->out->analysis.detection.selection.sequence());
        },
        {sampler_pass, blocks_pass, record_pass});

    // Stage 3: instrumented runs. The training side replays the
    // recorded sampling stream (no live execution); the reference side
    // is a live run. Each wraps its own instrumenter so the raw
    // streams stay shareable.
    auto train_replay = plan.addPass(
        train_key, [j](trace::TraceSink &sink) { j->trainLog.replay(sink); },
        [j]() -> trace::TraceSink * {
            j->trainFan.attach(&j->trainCollector);
            j->trainFan.attach(&j->trainManual);
            j->trainInst.emplace(j->out->analysis.detection.selection.table,
                                 j->trainFan);
            return &*j->trainInst;
        },
        {analysis_ready}, {.replay = true});
    auto ref_run = plan.addPass(
        ref_key, [j](trace::TraceSink &sink) {
            j->workload->run(j->refIn, sink);
        },
        [j]() -> trace::TraceSink * {
            j->refFan.attach(&j->refCollector);
            j->refFan.attach(&j->refManual);
            j->refInst.emplace(j->out->analysis.detection.selection.table,
                               j->refFan);
            return &*j->refInst;
        },
        {analysis_ready});

    // Stage 4: assemble the evaluation; the recording is no longer
    // needed, so release its memory.
    auto done = plan.addStep(
        [j] {
            WorkloadEvaluation &ev = *j->out;
            ev.train.replay = j->trainCollector.replay();
            ev.train.manualTimes = j->trainManual.times();
            ev.ref.replay = j->refCollector.replay();
            ev.ref.manualTimes = j->refManual.times();

            ev.metrics = evaluatePrediction(ev.ref.replay,
                                            ev.analysis.consistentPhases());

            auto train_hier = grammar::PhaseHierarchy::fromSequence(
                ev.train.replay.sequence());
            auto ref_hier = grammar::PhaseHierarchy::fromSequence(
                ev.ref.replay.sequence());
            ev.detectionRow = granularity(ev.train.replay, train_hier);
            ev.predictionRow = granularity(ev.ref.replay, ref_hier);

            ev.localityStddev = phaseLocalityStddev(ev.ref.replay);

            auto auto_times = [](const Replay &r) {
                std::vector<uint64_t> t;
                t.reserve(r.executions.size());
                for (const auto &e : r.executions)
                    t.push_back(e.startAccess);
                return t;
            };
            ev.trainOverlap = markerOverlap(ev.train.manualTimes,
                                            auto_times(ev.train.replay));
            ev.refOverlap = markerOverlap(ev.ref.manualTimes,
                                          auto_times(ev.ref.replay));
            j->trainLog.clear();
        },
        {train_replay, ref_run});

    return WorkloadEvaluationNodes{analysis_ready, done};
}

WorkloadEvaluation
evaluateWorkload(const workloads::Workload &workload,
                 const AnalysisConfig &config)
{
    WorkloadEvaluation ev;
    ExecutionPlan plan;
    registerWorkloadEvaluation(plan, workload, config, &ev);
    plan.run();
    ev.programExecutions =
        plan.programExecutions(workload.name() + "@");
    return ev;
}

std::vector<WorkloadEvaluation>
evaluateWorkloads(const std::vector<std::string> &names,
                  const AnalysisConfig &config)
{
    std::vector<WorkloadEvaluation> results(names.size());
    ExecutionPlan plan;
    for (size_t i = 0; i < names.size(); ++i) {
        std::shared_ptr<workloads::Workload> w =
            workloads::create(names[i]);
        LPP_REQUIRE(w != nullptr, "unknown workload '%s'",
                    names[i].c_str());
        plan.retain(w);
        registerWorkloadEvaluation(plan, *w, config, &results[i]);
    }
    plan.run();
    for (size_t i = 0; i < names.size(); ++i)
        results[i].programExecutions =
            plan.programExecutions(results[i].name + "@");
    return results;
}

namespace {

/** Cuts fixed-size units, driving a stack simulator and a BBV. */
class IntervalDriver : public trace::TraceSink
{
  public:
    IntervalDriver(uint64_t unit_accesses, size_t bbv_dims)
        : bbv(bbv_dims), unitAccesses(unit_accesses)
    {
        LPP_REQUIRE(unit_accesses > 0, "unit size must be positive");
    }

    void
    onBlock(trace::BlockId block, uint32_t instructions) override
    {
        bbv.onBlock(block, instructions);
    }

    void
    onAccess(trace::Addr addr) override
    {
        sim.onAccess(addr);
        if (++inUnit >= unitAccesses) {
            sim.markSegment();
            bbv.finalizeInterval();
            inUnit = 0;
        }
    }

    void
    onAccessBatch(const trace::Addr *addrs, size_t n) override
    {
        // Feed the simulator whole sub-batches up to each unit
        // boundary; boundary handling is identical to per-access
        // delivery because unit cuts depend only on access counts.
        while (n > 0) {
            uint64_t room = unitAccesses - inUnit;
            size_t take = n < room ? n : static_cast<size_t>(room);
            sim.onAccessBatch(addrs, take);
            inUnit += take;
            addrs += take;
            n -= take;
            if (inUnit >= unitAccesses) {
                sim.markSegment();
                bbv.finalizeInterval();
                inUnit = 0;
            }
        }
    }

    void
    onEnd() override
    {
        if (inUnit > 0) {
            sim.markSegment();
            bbv.finalizeInterval();
        }
    }

    cache::StackSimulator sim;
    bbv::BbvCollector bbv;

  private:
    uint64_t unitAccesses;
    uint64_t inUnit = 0;
};

/** Units restarting at phase markers, keyed (phase, index). */
class PhaseIntervalDriver : public trace::TraceSink
{
  public:
    explicit PhaseIntervalDriver(uint64_t unit_accesses)
        : unitAccesses(unit_accesses)
    {
        LPP_REQUIRE(unit_accesses > 0, "unit size must be positive");
    }

    void
    onAccess(trace::Addr addr) override
    {
        sim.onAccess(addr);
        if (++inUnit >= unitAccesses)
            closeUnit();
    }

    void
    onAccessBatch(const trace::Addr *addrs, size_t n) override
    {
        while (n > 0) {
            uint64_t room = unitAccesses - inUnit;
            size_t take = n < room ? n : static_cast<size_t>(room);
            sim.onAccessBatch(addrs, take);
            inUnit += take;
            addrs += take;
            n -= take;
            if (inUnit >= unitAccesses)
                closeUnit();
        }
    }

    void
    onPhaseMarker(trace::PhaseId phase) override
    {
        if (inUnit > 0)
            closeUnit();
        currentPhase = phase;
        unitIndex = 0;
    }

    void
    onEnd() override
    {
        if (inUnit > 0)
            closeUnit();
    }

    cache::StackSimulator sim;
    std::vector<uint64_t> keys;

  private:
    void
    closeUnit()
    {
        sim.markSegment();
        keys.push_back((static_cast<uint64_t>(currentPhase) << 32) |
                       unitIndex);
        ++unitIndex;
        inUnit = 0;
    }

    uint64_t unitAccesses;
    uint64_t inUnit = 0;
    trace::PhaseId currentPhase = 0xFFFFFFFFu;
    uint64_t unitIndex = 0;
};

} // namespace

ExecutionPlan::NodeId
registerIntervalProfile(ExecutionPlan &plan, std::string key,
                        std::function<void(trace::TraceSink &)> runner,
                        uint64_t unit_accesses, size_t bbv_dims,
                        IntervalProfile *out,
                        std::vector<ExecutionPlan::NodeId> after)
{
    auto driver =
        std::make_shared<IntervalDriver>(unit_accesses, bbv_dims);
    plan.retain(driver);
    IntervalDriver *d = driver.get();
    auto pass = plan.addPass(std::move(key), std::move(runner),
                             [d] { return d; }, std::move(after));
    return plan.addStep(
        [d, out] {
            out->units = d->sim.segments();
            out->bbvs = d->bbv.vectors();
            // Block events after the last access can add a trailing
            // BBV with no matching locality unit; align conservatively.
            size_t n = std::min(out->units.size(), out->bbvs.size());
            out->units.resize(n);
            out->bbvs.resize(n);
        },
        {pass});
}

IntervalProfile
collectIntervals(const std::function<void(trace::TraceSink &)> &runner,
                 uint64_t unit_accesses, size_t bbv_dims)
{
    IntervalProfile out;
    ExecutionPlan plan;
    registerIntervalProfile(plan, "run@local", runner, unit_accesses,
                            bbv_dims, &out);
    plan.run();
    return out;
}

ExecutionPlan::NodeId
registerPhaseIntervalProfile(ExecutionPlan &plan, std::string key,
                             const trace::MarkerTable *table,
                             std::function<void(trace::TraceSink &)> runner,
                             uint64_t unit_accesses,
                             PhaseIntervalProfile *out,
                             std::vector<ExecutionPlan::NodeId> after)
{
    LPP_REQUIRE(table != nullptr, "marker table must be non-null");
    struct Job
    {
        explicit Job(uint64_t unit) : driver(unit) {}
        PhaseIntervalDriver driver;
        std::optional<trace::Instrumenter> inst;
    };
    auto job = std::make_shared<Job>(unit_accesses);
    plan.retain(job);
    Job *jp = job.get();
    auto pass = plan.addPass(
        std::move(key), std::move(runner),
        [jp, table]() -> trace::TraceSink * {
            jp->inst.emplace(*table, jp->driver);
            return &*jp->inst;
        },
        std::move(after));
    return plan.addStep(
        [jp, out] {
            out->units = jp->driver.sim.segments();
            out->keys = jp->driver.keys;
            LPP_REQUIRE(out->units.size() == out->keys.size(),
                        "unit/key mismatch: %zu vs %zu",
                        out->units.size(), out->keys.size());
        },
        {pass});
}

PhaseIntervalProfile
collectPhaseIntervals(
    const trace::MarkerTable &table,
    const std::function<void(trace::TraceSink &)> &runner,
    uint64_t unit_accesses)
{
    PhaseIntervalProfile out;
    ExecutionPlan plan;
    registerPhaseIntervalProfile(plan, "run@local", &table, runner,
                                 unit_accesses, &out);
    plan.run();
    return out;
}

} // namespace lpp::core
