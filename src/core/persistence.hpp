/**
 * @file
 * Persistence of analysis results.
 *
 * The paper's deployment model is one-shot: analyze a training run
 * off-line, rewrite the binary, ship it. The equivalent here is saving
 * what the instrumented program needs at run time — the marker table,
 * per-phase training statistics (with the consistency flag the strict
 * predictor uses), and the phase-hierarchy regular expression — to a
 * small text file, and loading it back in a later process.
 */

#ifndef LPP_CORE_PERSISTENCE_HPP
#define LPP_CORE_PERSISTENCE_HPP

#include <string>
#include <vector>

#include "core/analysis.hpp"
#include "grammar/regex.hpp"
#include "phase/marker_selection.hpp"
#include "trace/instrument.hpp"

namespace lpp::core {

/** The run-time-relevant subset of an AnalysisResult. */
struct PersistedAnalysis
{
    trace::MarkerTable table;
    std::vector<phase::PhaseInfo> phases;
    grammar::RegexPtr hierarchy; //!< may be null (no repetition found)
};

/**
 * Write the run-time subset of `analysis` to `path`.
 * @return true on success
 */
bool saveAnalysis(const AnalysisResult &analysis,
                  const std::string &path);

/**
 * Read an analysis saved by saveAnalysis().
 * @return true on success (out is fully populated)
 */
bool loadAnalysis(const std::string &path, PersistedAnalysis *out);

} // namespace lpp::core

#endif // LPP_CORE_PERSISTENCE_HPP
