#include "core/static_oracle.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace lpp::core {

namespace {

/** printf-style append to a report's failure list. */
template <typename... Args>
void
fail(StaticOracleReport &r, const char *fmt, Args... args)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf), fmt, args...);
    r.failures.emplace_back(buf);
}

} // namespace

bool
histogramsIdentical(const LogHistogram &a, const LogHistogram &b)
{
    if (a.infiniteCount() != b.infiniteCount() ||
        a.totalFinite() != b.totalFinite())
        return false;
    size_t bins = std::max(a.binCount(), b.binCount());
    for (size_t i = 0; i < bins; ++i)
        if (a.binValue(i) != b.binValue(i))
            return false;
    return true;
}

double
histogramDivergence(const LogHistogram &a, const LogHistogram &b)
{
    auto diff = [](uint64_t x, uint64_t y) {
        return static_cast<double>(x > y ? x - y : y - x);
    };
    double l1 = diff(a.infiniteCount(), b.infiniteCount());
    size_t bins = std::max(a.binCount(), b.binCount());
    for (size_t i = 0; i < bins; ++i)
        l1 += diff(a.binValue(i), b.binValue(i));
    uint64_t scale = std::max<uint64_t>({a.total(), b.total(), 1});
    return l1 / static_cast<double>(scale);
}

StaticOracleReport
compareStaticOracle(const staticloc::StaticPrediction &prediction,
                    const MeasuredLocality &measured,
                    const std::vector<uint64_t> &detected_boundaries,
                    const StaticOracleConfig &config)
{
    StaticOracleReport r;
    r.applicable = true;
    r.checked = true;
    r.method = prediction.method;
    r.exact = prediction.exact;

    // Volume and footprint: always exact — a mismatch means the walker
    // and the generator disagree about the program itself.
    r.predictedAccesses = prediction.totalAccesses;
    r.measuredAccesses = measured.accesses;
    if (r.predictedAccesses != r.measuredAccesses)
        fail(r, "accesses: predicted %llu, measured %llu",
             static_cast<unsigned long long>(r.predictedAccesses),
             static_cast<unsigned long long>(r.measuredAccesses));
    r.predictedFootprint = prediction.distinctElements;
    r.measuredFootprint = measured.distinctElements;
    if (r.predictedFootprint != r.measuredFootprint)
        fail(r, "footprint: predicted %llu, measured %llu",
             static_cast<unsigned long long>(r.predictedFootprint),
             static_cast<unsigned long long>(r.measuredFootprint));

    // Reuse histogram and the miss curve it induces.
    r.histogramIdentical =
        histogramsIdentical(prediction.histogram, measured.histogram);
    r.histogramDivergence =
        histogramDivergence(prediction.histogram, measured.histogram);
    if (r.histogramDivergence > config.histogramTolerance)
        fail(r, "histogram divergence %.6f > %.6f",
             r.histogramDivergence, config.histogramTolerance);

    size_t max_bin = std::max(prediction.histogram.binCount(),
                              measured.histogram.binCount());
    for (size_t b = 0; b <= max_bin; ++b) {
        uint64_t capacity = LogHistogram::binHigh(b);
        double err =
            std::fabs(prediction.histogram.missRate(capacity) -
                      measured.histogram.missRate(capacity));
        r.maxMissRateError = std::max(r.maxMissRateError, err);
    }
    if (r.maxMissRateError > config.missRateTolerance)
        fail(r, "miss-rate error %.6f > %.6f", r.maxMissRateError,
             config.missRateTolerance);

    // Phase boundaries, ground-truth side: the predicted schedule's
    // entry clocks against the measured manual-marker clocks.
    r.predictedPhaseExecutions = prediction.schedule.size();
    r.measuredMarkers = measured.markerTimes.size();
    if (r.predictedPhaseExecutions != r.measuredMarkers) {
        fail(r, "phase executions: predicted %llu, measured %llu",
             static_cast<unsigned long long>(r.predictedPhaseExecutions),
             static_cast<unsigned long long>(r.measuredMarkers));
    } else {
        bool ids_ok = true;
        for (size_t i = 0; i < prediction.schedule.size(); ++i) {
            const staticloc::PhaseExecution &e = prediction.schedule[i];
            uint64_t t = measured.markerTimes[i];
            uint64_t err = e.startAccess > t ? e.startAccess - t
                                             : t - e.startAccess;
            r.markerMaxError = std::max(r.markerMaxError, err);
            ids_ok = ids_ok && e.marker == measured.markerIds[i];
        }
        if (!ids_ok)
            fail(r, "marker ids diverge from the predicted schedule");
        if (r.markerMaxError > config.markerTolerance)
            fail(r, "marker clock error %llu > %llu",
                 static_cast<unsigned long long>(r.markerMaxError),
                 static_cast<unsigned long long>(config.markerTolerance));
        r.markersIdentical = ids_ok && r.markerMaxError == 0;
    }

    // Phase boundaries, detector side: sampling makes detected times
    // sparse, so demand only that each one lands near a predicted
    // transition.
    std::vector<uint64_t> transitions = prediction.boundaryClocks();
    std::sort(transitions.begin(), transitions.end());
    r.detectedBoundaries = detected_boundaries.size();
    if (!transitions.empty() && !detected_boundaries.empty()) {
        uint64_t within = 0;
        for (uint64_t t : detected_boundaries) {
            auto it = std::lower_bound(transitions.begin(),
                                       transitions.end(), t);
            uint64_t err = ~0ULL;
            if (it != transitions.end())
                err = *it - t;
            if (it != transitions.begin())
                err = std::min(err, t - *(it - 1));
            r.detectedBoundaryMaxError =
                std::max(r.detectedBoundaryMaxError, err);
            within += err <= config.boundarySlack;
        }
        r.detectedBoundaryPrecision =
            static_cast<double>(within) /
            static_cast<double>(detected_boundaries.size());
        if (within != detected_boundaries.size())
            fail(r,
                 "%llu of %llu detected boundaries farther than %llu "
                 "accesses from any predicted transition",
                 static_cast<unsigned long long>(
                     detected_boundaries.size() - within),
                 static_cast<unsigned long long>(
                     detected_boundaries.size()),
                 static_cast<unsigned long long>(config.boundarySlack));
    }
    if (config.requireDetection && !transitions.empty() &&
        detected_boundaries.empty())
        fail(r, "detector found no boundaries; prediction has %llu "
                "transitions",
             static_cast<unsigned long long>(transitions.size()));

    r.ok = r.failures.empty();
    return r;
}

} // namespace lpp::core
