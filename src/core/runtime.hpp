/**
 * @file
 * Run-time phase prediction over an instrumented execution.
 *
 * When the instrumented program runs, every marker firing announces a
 * leaf phase. The predictor uses the first execution(s) of each phase
 * to predict all its later executions (paper Section 1): the length in
 * instructions is announced the moment the marker fires, and the
 * locality (miss rate at every cache size) comes along with it.
 *
 * Two prediction disciplines mirror Table 2:
 *  - strict: a phase is predicted only while its behaviour has repeated
 *    exactly — it must be flagged consistent by the training profile
 *    and must keep repeating exactly at run time; a correct prediction
 *    matches the instruction count exactly;
 *  - relaxed: every phase is predicted from its previous execution
 *    (last value); correctness is still exact-match, so programs whose
 *    phases drift (MolDyn) lose accuracy instead of coverage.
 */

#ifndef LPP_CORE_RUNTIME_HPP
#define LPP_CORE_RUNTIME_HPP

#include <cstdint>
#include <functional>
#include <vector>

#include "cache/stack_sim.hpp"
#include "trace/instrument.hpp"
#include "trace/types.hpp"

namespace lpp::core {

/** One phase execution observed in an instrumented run. */
struct ExecutionRecord
{
    trace::PhaseId phase = 0;
    uint64_t startInstr = 0;   //!< instruction clock at the marker
    uint64_t startAccess = 0;  //!< access clock at the marker
    uint64_t instructions = 0; //!< length in instructions
    uint64_t accesses = 0;     //!< length in accesses
    cache::SegmentLocality locality; //!< misses at every cache size
};

/** Result of replaying an instrumented execution. */
struct Replay
{
    std::vector<ExecutionRecord> executions;
    uint64_t totalInstructions = 0;
    uint64_t totalAccesses = 0;
    uint64_t prologueInstructions = 0; //!< before the first marker

    /** @return the leaf-phase sequence of the run. */
    std::vector<trace::PhaseId> sequence() const;
};

/**
 * Sink that observes an instrumented execution and cuts it into phase
 * executions with per-execution locality (stack-simulated).
 */
class ExecutionCollector : public trace::TraceSink
{
  public:
    ExecutionCollector() = default;

    void onBlock(trace::BlockId block, uint32_t instructions) override;
    void onAccess(trace::Addr addr) override;
    void onAccessBatch(const trace::Addr *addrs, size_t n) override;
    void onPhaseMarker(trace::PhaseId phase) override;
    void onEnd() override;

    /** @return the replay (valid after onEnd). */
    const Replay &replay() const { return result; }

  private:
    void closeExecution(uint64_t end_instr, uint64_t end_access);

    Replay result;
    cache::StackSimulator sim;
    uint64_t instrClock = 0;
    uint64_t accessClock = 0;
    bool inPhase = false;
    trace::PhaseId currentPhase = 0;
    uint64_t phaseStartInstr = 0;
    uint64_t phaseStartAccess = 0;
};

/** Replay an instrumented run of `runner` under `table`. */
Replay replayInstrumented(
    const trace::MarkerTable &table,
    const std::function<void(trace::TraceSink &)> &runner);

/** Table 2 metrics of one prediction run. */
struct PredictionMetrics
{
    double strictAccuracy = 0.0;  //!< exact-length fraction, strict
    double strictCoverage = 0.0;  //!< predicted instr share, strict
    double relaxedAccuracy = 0.0; //!< exact-length fraction, relaxed
    double relaxedCoverage = 0.0; //!< predicted instr share, relaxed
    uint64_t strictPredictions = 0;
    uint64_t relaxedPredictions = 0;
};

/**
 * Evaluate prediction over a replay.
 * @param replay the instrumented run
 * @param training_consistent per-phase consistency flags from training
 *        (phases beyond the vector are treated as inconsistent)
 */
PredictionMetrics
evaluatePrediction(const Replay &replay,
                   const std::vector<bool> &training_consistent);

/**
 * Size-weighted average standard deviation of the 8-point locality
 * vector across executions of the same phase (Table 4, first column).
 */
double phaseLocalityStddev(const Replay &replay);

} // namespace lpp::core

#endif // LPP_CORE_RUNTIME_HPP
