/**
 * @file
 * Off-line phase analysis — the library's primary entry point.
 *
 * Chains the paper's pipeline over a training run: variable-distance
 * sampling, wavelet filtering, optimal phase partitioning, marker
 * selection, and phase-hierarchy construction via Sequitur. The result
 * carries everything needed to instrument and predict a production run:
 * the marker table (which basic blocks announce which phase), per-phase
 * training statistics with a consistency flag, and the hierarchy regex.
 */

#ifndef LPP_CORE_ANALYSIS_HPP
#define LPP_CORE_ANALYSIS_HPP

#include <cstdint>
#include <functional>
#include <vector>

#include "core/static_oracle.hpp"
#include "core/stratified.hpp"
#include "grammar/hierarchy.hpp"
#include "phase/detector.hpp"
#include "workloads/workload.hpp"

namespace lpp::support {
class ThreadPool;
}

namespace lpp::core {

/**
 * On-disk trace-cache settings (trace::TraceStore). Disabled by
 * default: benches and sweeps that want record-once/replay-many opt in
 * explicitly, and one-shot consumers keep the live pipeline.
 */
struct TraceCacheConfig
{
    bool enabled = false;                     //!< opt-in
    std::string dir = "bench_out/trace_cache"; //!< cache directory
};

/**
 * Intra-workload sharding of the replay-fed training stages. When the
 * executing pool has more than one thread, the precount and the
 * sampling/block passes run as chunked parallel sweeps over the
 * recorded training stream (reuse::shardedReuseSweep) instead of one
 * serial replay. Results are bit-identical to the serial path at every
 * chunk size and thread count; on a single-threaded pool the serial
 * path runs unchanged.
 */
struct ShardingConfig
{
    bool enabled = true;                  //!< opt-out switch
    uint64_t chunkAccesses = 1ULL << 20;  //!< target accesses per chunk

    /** Pool for the sharded sweeps; null means the shared pool. Use
     *  the same pool the plan runs on. */
    support::ThreadPool *pool = nullptr;
};

/** Configuration of the full off-line analysis. */
struct AnalysisConfig
{
    phase::DetectorConfig detector;

    /** Cross-process reuse of recorded executions (evaluation only). */
    TraceCacheConfig traceCache;

    /** Intra-workload parallelism over the recorded training stream. */
    ShardingConfig sharding;

    /**
     * Zero-execution verification: for workloads carrying an affine IR
     * (workloads::StaticallyDescribed), predict the training run's
     * locality statically and compare against the measured stream
     * within the configured bounds. Honoured by core::analyzeWorkload
     * and core::evaluateWorkload(s); adds one replay of the recorded
     * training stream and no live executions.
     */
    StaticOracleConfig staticOracle;

    /**
     * Phase-stratified sampled evaluation (core::StratifiedEvaluator):
     * instead of replaying the whole recorded stream through the
     * locality consumers, sample k executions per detected phase and
     * extrapolate with per-stratum variance and confidence intervals.
     * core::analyzeWorkload applies it to the training recording;
     * core::evaluateWorkload(s) to the reference recording (which is
     * then recorded even with the trace cache off). With
     * verifyAgainstExact the exhaustive path also runs and the report
     * carries the sampled-vs-exact comparison.
     */
    StratifiedSamplingConfig stratifiedSampling;

    AnalysisConfig()
    {
        // Defaults tuned for the synthetic suite's scale: training
        // sub-traces are tens of accesses per datum (the paper's were
        // thousands), so the narrow Haar filter localizes changes
        // better than Daubechies-6 at this length.
        detector.filter.family = wavelet::Family::Haar;
        detector.sampler.targetSamples = 20000;
        detector.marker.frequencySlack = 1.5;
    }
};

/** Everything the off-line analysis learned. */
struct AnalysisResult
{
    /** Detection pipeline output (markers, executions, boundaries). */
    phase::DetectionResult detection;

    /** Phase hierarchy of the training run's leaf sequence. */
    grammar::PhaseHierarchy hierarchy;

    /** @return per-phase training consistency (exact length repeats). */
    std::vector<bool> consistentPhases() const;
};

/** Off-line analyzer. */
class PhaseAnalysis
{
  public:
    /** Streams one training execution into the sink; repeatable. */
    using Runner = std::function<void(trace::TraceSink &)>;

    /** Analyze an arbitrary program given as a runner callback. */
    static AnalysisResult analyze(const Runner &run,
                                  const AnalysisConfig &config = {});

    /** Analyze a workload's training input. */
    static AnalysisResult
    analyzeWorkload(const workloads::Workload &workload,
                    const AnalysisConfig &config = {});
};

} // namespace lpp::core

#endif // LPP_CORE_ANALYSIS_HPP
