#include "core/persistence.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "support/logging.hpp"

namespace lpp::core {

namespace {
constexpr const char *magic = "lpp-analysis";
constexpr int version = 1;
} // namespace

bool
saveAnalysis(const AnalysisResult &analysis, const std::string &path)
{
    std::ofstream out(path);
    if (!out) {
        warn("cannot open %s for writing", path.c_str());
        return false;
    }

    out << magic << " " << version << "\n";

    auto entries = analysis.detection.selection.table.entries();
    out << "markers " << entries.size() << "\n";
    for (const auto &e : entries)
        out << e.first << " " << e.second << "\n";

    const auto &phases = analysis.detection.selection.phases;
    out << "phases " << phases.size() << "\n";
    for (const auto &p : phases) {
        out << p.id << " " << p.marker << " " << p.executions << " "
            << p.minInstructions << " " << p.maxInstructions << " "
            << p.markerQuality << "\n";
    }

    if (analysis.hierarchy.root())
        out << "hierarchy " << analysis.hierarchy.root()->toString()
            << "\n";
    else
        out << "hierarchy -\n";
    return static_cast<bool>(out);
}

bool
loadAnalysis(const std::string &path, PersistedAnalysis *out)
{
    LPP_REQUIRE(out != nullptr, "null output");
    std::ifstream in(path);
    if (!in)
        return false;

    std::string word;
    int ver = 0;
    if (!(in >> word >> ver) || word != magic || ver != version)
        return false;

    // Parse into a scratch result so a malformed file can never leave
    // *out partially populated.
    PersistedAnalysis parsed;

    size_t count = 0;
    if (!(in >> word >> count) || word != "markers")
        return false;
    for (size_t i = 0; i < count; ++i) {
        trace::BlockId block;
        trace::PhaseId phase;
        if (!(in >> block >> phase))
            return false;
        parsed.table.set(block, phase);
    }

    if (!(in >> word >> count) || word != "phases")
        return false;
    parsed.phases.resize(count);
    for (size_t i = 0; i < count; ++i) {
        phase::PhaseInfo p;
        if (!(in >> p.id >> p.marker >> p.executions >>
              p.minInstructions >> p.maxInstructions >>
              p.markerQuality))
            return false;
        if (p.id >= count)
            return false;
        parsed.phases[p.id] = p;
    }

    if (!(in >> word) || word != "hierarchy")
        return false;
    std::string rest;
    std::getline(in, rest);
    // Trim the leading separator space.
    if (!rest.empty() && rest.front() == ' ')
        rest.erase(rest.begin());
    if (rest != "-") {
        parsed.hierarchy = grammar::Regex::parse(rest);
        if (!parsed.hierarchy)
            return false;
    }

    *out = std::move(parsed);
    return true;
}

} // namespace lpp::core
