#include "core/analysis.hpp"

namespace lpp::core {

std::vector<bool>
AnalysisResult::consistentPhases() const
{
    std::vector<bool> consistent(detection.selection.phases.size(),
                                 false);
    for (const auto &info : detection.selection.phases) {
        consistent[info.id] = info.executions > 0 &&
                              info.minInstructions ==
                                  info.maxInstructions;
    }
    return consistent;
}

AnalysisResult
PhaseAnalysis::analyze(const Runner &run, const AnalysisConfig &config)
{
    AnalysisResult result;
    phase::PhaseDetector detector(config.detector);
    result.detection = detector.analyze(run);
    result.hierarchy = grammar::PhaseHierarchy::fromSequence(
        result.detection.selection.sequence());
    return result;
}

AnalysisResult
PhaseAnalysis::analyzeWorkload(const workloads::Workload &workload,
                               const AnalysisConfig &config)
{
    auto input = workload.trainInput();
    AnalysisConfig cfg = config;
    if (cfg.detector.sampler.addressSpaceElements == 0) {
        // Reserve-ahead hint: the addressed footprint bounds the
        // distinct-element count the sampler's reuse stack will see.
        uint64_t elements = 0;
        for (const auto &a : workload.arrays(input))
            elements += a.elements;
        cfg.detector.sampler.addressSpaceElements = elements;
    }
    return analyze(
        [&workload, input](trace::TraceSink &sink) {
            workload.run(input, sink);
        },
        cfg);
}

} // namespace lpp::core
