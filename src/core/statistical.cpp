#include "core/statistical.hpp"

#include <algorithm>
#include <cmath>

#include "core/parallel.hpp"
#include "support/logging.hpp"

namespace lpp::core {

StatisticalPredictor::StatisticalPredictor(Config cfg_) : cfg(cfg_)
{
    LPP_REQUIRE(cfg.lowQuantile >= 0.0 &&
                    cfg.highQuantile <= 1.0 &&
                    cfg.lowQuantile <= cfg.highQuantile,
                "bad quantiles [%f, %f]", cfg.lowQuantile,
                cfg.highQuantile);
    LPP_REQUIRE(cfg.minObservations >= 2, "need at least 2 samples");
}

void
StatisticalPredictor::observe(trace::PhaseId phase,
                              uint64_t instructions)
{
    auto &lengths = history[phase];
    // Keep the history sorted (insertion keeps predict O(1)-ish; phase
    // histories are at most a few thousand entries).
    lengths.insert(std::upper_bound(lengths.begin(), lengths.end(),
                                    instructions),
                   instructions);
}

bool
StatisticalPredictor::predict(trace::PhaseId phase, Band *band) const
{
    auto it = history.find(phase);
    if (it == history.end() || it->second.size() < cfg.minObservations)
        return false;

    const auto &sorted = it->second;
    auto at = [&sorted](double q) {
        double idx =
            q * static_cast<double>(sorted.size() - 1);
        auto lo = static_cast<size_t>(idx);
        size_t hi = std::min(lo + 1, sorted.size() - 1);
        double frac = idx - static_cast<double>(lo);
        return static_cast<uint64_t>(std::llround(
            static_cast<double>(sorted[lo]) * (1.0 - frac) +
            static_cast<double>(sorted[hi]) * frac));
    };

    if (band) {
        band->low = at(cfg.lowQuantile);
        band->high = at(cfg.highQuantile);
        double sum = 0.0;
        for (uint64_t v : sorted)
            sum += static_cast<double>(v);
        band->mean = sum / static_cast<double>(sorted.size());
        band->observations = sorted.size();
    }
    return true;
}

size_t
StatisticalPredictor::observationCount(trace::PhaseId phase) const
{
    auto it = history.find(phase);
    return it == history.end() ? 0 : it->second.size();
}

BandMetrics
evaluateStatisticalPrediction(const Replay &replay,
                              StatisticalPredictor::Config cfg)
{
    StatisticalPredictor predictor(cfg);
    BandMetrics m;
    uint64_t covered_instr = 0;
    uint64_t hits = 0;
    double width_sum = 0.0;

    for (const auto &e : replay.executions) {
        StatisticalPredictor::Band band;
        if (predictor.predict(e.phase, &band)) {
            ++m.predictions;
            covered_instr += e.instructions;
            hits += band.contains(e.instructions);
            width_sum += band.relativeWidth();
        }
        predictor.observe(e.phase, e.instructions);
    }

    if (m.predictions > 0) {
        m.hitRate = static_cast<double>(hits) /
                    static_cast<double>(m.predictions);
        m.meanRelativeWidth =
            width_sum / static_cast<double>(m.predictions);
    }
    if (replay.totalInstructions > 0) {
        m.coverage = static_cast<double>(covered_instr) /
                     static_cast<double>(replay.totalInstructions);
    }
    return m;
}

std::vector<BandMetrics>
evaluateStatisticalSweep(
    const Replay &replay,
    const std::vector<StatisticalPredictor::Config> &configs)
{
    ParallelRunner runner;
    return runner.mapIndexed(configs.size(), [&](size_t i) {
        return evaluateStatisticalPrediction(replay, configs[i]);
    });
}

} // namespace lpp::core
