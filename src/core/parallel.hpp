/**
 * @file
 * Deterministic fan-out of independent analysis jobs.
 *
 * Every experiment driver evaluates a grid of (workload × configuration)
 * cells whose cells share nothing; ParallelRunner runs such grids over
 * the shared thread pool and returns results indexed by submission
 * order. Because each job is a pure function of its inputs and merging
 * is by index, the output is bit-identical to running the jobs serially
 * — the determinism tests assert exactly this.
 *
 * The execution engine is support::parallelFor: the calling thread
 * claims jobs alongside the pool's workers, so a one-thread run has no
 * handoff at all (the caller just executes the jobs in index order),
 * and calling from inside a pool worker is safe — the caller can drain
 * the whole batch itself if every worker is busy. Result slots are
 * preallocated and each job owns exactly one, so completion needs no
 * per-job allocation and no lock around the slots; the parallelFor
 * barrier orders slot writes before the caller's reads.
 */

#ifndef LPP_CORE_PARALLEL_HPP
#define LPP_CORE_PARALLEL_HPP

#include <cstddef>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "support/parallel_for.hpp"
#include "support/thread_pool.hpp"

namespace lpp::core {

/** Runs batches of independent jobs, merging in submission order. */
class ParallelRunner
{
  public:
    /** @param pool_ worker pool; defaults to the process-wide pool. */
    explicit ParallelRunner(
        support::ThreadPool &pool_ = support::ThreadPool::shared())
        : pool(pool_)
    {
    }

    /** @return the parallelism of the underlying pool. */
    size_t threadCount() const { return pool.threadCount(); }

    /** @return the underlying worker pool. */
    support::ThreadPool &threadPool() { return pool; }

    /**
     * Run every job, caller participating, and collect the results in
     * submission order. Jobs must be independent (no shared mutable
     * state). If jobs throw, the exception of the first failing job in
     * submission order is rethrown here.
     */
    template <typename Job>
    auto
    run(std::vector<Job> jobs)
        -> std::vector<std::invoke_result_t<Job &>>
    {
        return mapIndexed(jobs.size(),
                          [&jobs](size_t i) { return jobs[i](); });
    }

    /**
     * Map `fn` over index range [0, n), in parallel, results in index
     * order. Same contract as run().
     */
    template <typename Fn>
    auto
    mapIndexed(size_t n, Fn fn)
        -> std::vector<std::invoke_result_t<Fn &, size_t>>
    {
        using Result = std::invoke_result_t<Fn &, size_t>;
        std::vector<std::optional<Result>> slots(n);
        support::parallelFor(pool, n,
                             [&](size_t i) { slots[i].emplace(fn(i)); });
        std::vector<Result> results;
        results.reserve(n);
        for (auto &slot : slots)
            results.push_back(std::move(*slot));
        return results;
    }

  private:
    support::ThreadPool &pool;
};

} // namespace lpp::core

#endif // LPP_CORE_PARALLEL_HPP
