/**
 * @file
 * Deterministic fan-out of independent analysis jobs.
 *
 * Every experiment driver evaluates a grid of (workload × configuration)
 * cells whose cells share nothing; ParallelRunner runs such grids on the
 * shared thread pool and returns results indexed by submission order.
 * Because each job is a pure function of its inputs and merging is by
 * index, the output is bit-identical to running the jobs serially — the
 * determinism tests assert exactly this.
 */

#ifndef LPP_CORE_PARALLEL_HPP
#define LPP_CORE_PARALLEL_HPP

#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "support/thread_pool.hpp"

namespace lpp::core {

/** Runs batches of independent jobs, merging in submission order. */
class ParallelRunner
{
  public:
    /** @param pool_ worker pool; defaults to the process-wide pool. */
    explicit ParallelRunner(
        support::ThreadPool &pool_ = support::ThreadPool::shared())
        : pool(pool_)
    {
    }

    /** @return the parallelism of the underlying pool. */
    size_t threadCount() const { return pool.threadCount(); }

    /**
     * Run every job on the pool and collect the results in submission
     * order. Jobs must be independent (no shared mutable state) and
     * must not fan out onto the same pool and wait (the workers would
     * deadlock waiting on themselves). An exception thrown by a job is
     * rethrown from here.
     */
    template <typename Job>
    auto
    run(std::vector<Job> jobs)
        -> std::vector<std::invoke_result_t<Job &>>
    {
        using Result = std::invoke_result_t<Job &>;
        std::vector<std::future<Result>> futures;
        futures.reserve(jobs.size());
        for (auto &job : jobs) {
            auto task = std::make_shared<std::packaged_task<Result()>>(
                std::move(job));
            futures.push_back(task->get_future());
            pool.submit([task] { (*task)(); });
        }
        std::vector<Result> results;
        results.reserve(futures.size());
        for (auto &f : futures)
            results.push_back(f.get());
        return results;
    }

    /**
     * Map `fn` over index range [0, n), in parallel, results in index
     * order.
     */
    template <typename Fn>
    auto
    mapIndexed(size_t n, Fn fn)
        -> std::vector<std::invoke_result_t<Fn &, size_t>>
    {
        using Result = std::invoke_result_t<Fn &, size_t>;
        std::vector<std::function<Result()>> jobs;
        jobs.reserve(n);
        for (size_t i = 0; i < n; ++i)
            jobs.emplace_back([fn, i] { return fn(i); });
        return run(std::move(jobs));
    }

  private:
    support::ThreadPool &pool;
};

} // namespace lpp::core

#endif // LPP_CORE_PARALLEL_HPP
