/**
 * @file
 * Deterministic fan-out of independent analysis jobs.
 *
 * Every experiment driver evaluates a grid of (workload × configuration)
 * cells whose cells share nothing; ParallelRunner runs such grids on the
 * shared thread pool and returns results indexed by submission order.
 * Because each job is a pure function of its inputs and merging is by
 * index, the output is bit-identical to running the jobs serially — the
 * determinism tests assert exactly this.
 *
 * Completion tracking is a mutex-guarded counter annotated for clang's
 * thread-safety analysis; result and error slots need no lock because
 * each job owns exactly one slot and the completion barrier orders the
 * slot writes before the caller's reads.
 */

#ifndef LPP_CORE_PARALLEL_HPP
#define LPP_CORE_PARALLEL_HPP

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "support/logging.hpp"
#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"
#include "support/thread_pool.hpp"

namespace lpp::core {

/** Runs batches of independent jobs, merging in submission order. */
class ParallelRunner
{
  public:
    /** @param pool_ worker pool; defaults to the process-wide pool. */
    explicit ParallelRunner(
        support::ThreadPool &pool_ = support::ThreadPool::shared())
        : pool(pool_)
    {
    }

    /** @return the parallelism of the underlying pool. */
    size_t threadCount() const { return pool.threadCount(); }

    /**
     * Run every job on the pool and collect the results in submission
     * order. Jobs must be independent (no shared mutable state). An
     * exception thrown by a job is rethrown here (first failing job in
     * submission order). Calling from a worker of the same pool would
     * deadlock waiting on itself and is rejected.
     */
    template <typename Job>
    auto
    run(std::vector<Job> jobs)
        -> std::vector<std::invoke_result_t<Job &>>
    {
        using Result = std::invoke_result_t<Job &>;
        const size_t n = jobs.size();
        std::vector<Result> results;
        if (n == 0)
            return results;
        LPP_REQUIRE(!pool.onWorkerThread(),
                    "ParallelRunner::run called from a worker of its own "
                    "pool; the wait below would deadlock");

        struct Slot
        {
            std::optional<Result> value;
            std::exception_ptr error;
        };
        struct Sync
        {
            support::Mutex mtx;
            std::condition_variable_any cv;
            size_t remaining LPP_GUARDED_BY(mtx) = 0;
        };
        std::vector<Slot> slots(n);
        Sync sync;
        {
            support::MutexLock lock(sync.mtx);
            sync.remaining = n;
        }
        for (size_t i = 0; i < n; ++i) {
            // The job list and slots outlive the barrier below, so the
            // submitted closures borrow rather than own.
            Job *job = &jobs[i];
            Slot *slot = &slots[i];
            Sync *sy = &sync;
            pool.submit([job, slot, sy] {
                try {
                    slot->value.emplace((*job)());
                } catch (...) {
                    slot->error = std::current_exception();
                }
                support::MutexLock lock(sy->mtx);
                --sy->remaining;
                // Notify while holding the lock: the caller may destroy
                // Sync the instant it observes remaining == 0, so the
                // cv must not be touched after the unlock.
                if (sy->remaining == 0)
                    sy->cv.notify_one();
            });
        }
        {
            support::MutexLock lock(sync.mtx);
            while (sync.remaining > 0)
                sync.cv.wait(sync.mtx);
        }
        for (auto &slot : slots)
            if (slot.error)
                std::rethrow_exception(slot.error);
        results.reserve(n);
        for (auto &slot : slots)
            results.push_back(std::move(*slot.value));
        return results;
    }

    /**
     * Map `fn` over index range [0, n), in parallel, results in index
     * order.
     */
    template <typename Fn>
    auto
    mapIndexed(size_t n, Fn fn)
        -> std::vector<std::invoke_result_t<Fn &, size_t>>
    {
        using Result = std::invoke_result_t<Fn &, size_t>;
        std::vector<std::function<Result()>> jobs;
        jobs.reserve(n);
        for (size_t i = 0; i < n; ++i)
            jobs.emplace_back([fn, i] { return fn(i); });
        return run(std::move(jobs));
    }

  private:
    support::ThreadPool &pool;
};

} // namespace lpp::core

#endif // LPP_CORE_PARALLEL_HPP
