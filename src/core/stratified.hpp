/**
 * @file
 * Phase-stratified sampled evaluation with confidence intervals.
 *
 * The paper's core claim — executions of the same phase recur with
 * near-identical locality — makes full-trace evaluation redundant:
 * measuring every phase execution re-measures the same behaviour over
 * and over. Following "CPU Simulation Using Two-Phase Stratified
 * Sampling" (Ekman, PAPERS.md), detected phase executions are treated
 * as strata: the recorded stream is sliced at execution boundaries, a
 * deterministic seeded sample of k executions per stratum is replayed
 * through the reuse/cache/BBV consumers via TraceCursor seeks, and the
 * per-stratum means are extrapolated to stratum totals with
 * finite-population variance and Student-t confidence intervals.
 *
 * Estimator: every execution's access count is known exactly from the
 * instrumented replay, so each stratum uses the classical ratio
 * estimator with accesses as the auxiliary variable (Cochran §6.3).
 * Per stratum h with N_h executions, known access total A_h, and k_h
 * sampled executions with miss counts y_i and access counts x_i:
 *
 *   R̂_h   = Σ y_i / Σ x_i                  (sample miss rate)
 *   T̂_h   = A_h · R̂_h
 *   Var_h = N_h² · (1 − k_h/N_h) · s²_e / k_h
 *           with residuals e_i = y_i − R̂_h·x_i, s²_e their sample
 *           variance (k_h − 1 denominator)
 *
 * and overall T̂ = Σ T̂_h, Var = Σ Var_h, with a two-sided CI of
 * T̂ ± t(confidence, ν)·√Var where ν is the Welch–Satterthwaite
 * effective degrees of freedom. When every execution of a stratum has
 * the same length the ratio estimator degenerates to plain mean
 * expansion N_h·ȳ_h with the textbook variance — but when lengths are
 * skewed (gcc's leaf phases span a 16x range) conditioning on the
 * known sizes removes the dominant variance component. Miss counts at
 * each of the simWays associativities carry a CI; histograms,
 * footprint, and BBV weights are extrapolated point estimates (scaled
 * by A_h / Σ x_i per stratum, no interval).
 *
 * Single-draw strata: a phase with a handful of huge executions
 * (vortex: 6 and 18 executions of ~100K accesses each) cannot afford
 * two draws per stratum — the replay cost would exceed a third of the
 * exhaustive pass. Such strata may sample k_h = 1; their variance is
 * borrowed through a pooled residual model Var(e_i) = φ_w·x_i
 * (quasi-Poisson in the access count), with φ̂_w estimated from the
 * residuals of every stratum that measured >= 2 units (subsampled or
 * exhaustive), giving Var_h = (1 − 1/N_h)·A_h²·φ̂_w / x_1 with the
 * pooled residual dof. If no stratum would provide residual dof, the
 * largest subsampled stratum is bumped to two draws first — a CI is
 * never fabricated from nothing.
 *
 * Selection: the default is deterministic *balanced* sampling on the
 * known size covariate — the k executions whose access counts lie
 * closest to the stratum mean. Under the working model y = R·x + e
 * any x-based selection is model-unbiased, and balancing x̄_sample
 * toward X̄ minimizes the model variance (Royall-style model-based
 * sampling) while making both the estimate and the replay cost
 * deterministic. Seeded uniform draws (classical design-based SRS)
 * remain available as StratifiedSelection::SeededRandom.
 *
 * Measurement semantics: each execution range is measured in isolation
 * — cold reuse stack, cold cache — so per-execution values are
 * independent draws and the estimator is unbiased for the sum of
 * per-execution (in-isolation) measurements. The exact path
 * (verifyAgainstExact) measures *every* range with the identical
 * per-range semantics, which makes the comparison apples-to-apples and
 * makes 100%-sampling bit-identical to exact by construction. This is
 * a deliberate deviation from the whole-trace in-context histogram
 * (which cannot be sampled without replaying the skipped prefix); see
 * DESIGN.md "Stratified sampled evaluation".
 *
 * Stratum keying: strata start as one per leaf phase (marker id). The
 * run's first phase execution is split off as a *certainty unit* —
 * program initialization (first-touch, allocation) lands inside it, so
 * it recurs with nothing and would otherwise skew its stratum; it is
 * always measured exactly. Phases with at least sizeStratifyMin
 * executions are further split by the log2 size class of their access
 * counts: within a <2x size band the miss/access relation is close to
 * proportional even when it is visibly nonlinear across a 16x size
 * range (gcc), which is exactly where the ratio model must hold.
 * Small phases (few, large executions — vortex) stay phase-level so
 * the per-stratum k floor cannot force a near-exhaustive replay.
 *
 * Fallback rules (never a silent wrong answer):
 *  - a stratum with fewer than 2 executions, or where k would reach
 *    its population, is measured exhaustively (scale 1, zero variance);
 *  - the prologue before the first marker and the certainty unit are
 *    always measured exactly;
 *  - a stratum whose accesses (or sampled accesses) are all zero falls
 *    back from ratio estimation to plain mean expansion;
 *  - heterogeneous ("drifting") strata are still unbiased — the drift
 *    lands in the residual variance and widens the CI instead of
 *    skewing the estimate.
 */

#ifndef LPP_CORE_STRATIFIED_HPP
#define LPP_CORE_STRATIFIED_HPP

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cache/stack_sim.hpp"
#include "core/runtime.hpp"
#include "reuse/analyzer.hpp"
#include "support/histogram.hpp"
#include "trace/memory_trace.hpp"
#include "trace/sink.hpp"
#include "trace/types.hpp"

namespace lpp::support {
class ThreadPool;
}

namespace lpp::core {

/** How executions are picked within a stratum. */
enum class StratifiedSelection
{
    /** The k executions whose access counts are nearest the stratum
     *  mean (deterministic, model-based; the default). */
    BalancedOnSize,
    /** Seeded uniform draws without replacement (design-based SRS). */
    SeededRandom,
};

/** Sampled-evaluation settings (AnalysisConfig::stratifiedSampling). */
struct StratifiedSamplingConfig
{
    bool enabled = false; //!< opt-in sampled evaluation

    /** Minimum executions sampled per stratum. Two draws give every
     *  stratum its own residual variance; a floor of one is supported
     *  (single draws borrow variance through the pooled residual
     *  model) for tighter replay budgets. */
    uint64_t samplesPerStratum = 2;

    /** Within-stratum selection rule. */
    StratifiedSelection selection = StratifiedSelection::BalancedOnSize;

    /** Large strata sample max(samplesPerStratum,
     *  ceil(sampleFraction·N_h)) executions: the floor keeps tiny
     *  strata (few huge executions) from dominating the replay cost,
     *  the fraction keeps many-execution strata from being starved. */
    double sampleFraction = 0.05;

    /** Phases with at least this many executions are substratified by
     *  the log2 size class of their access counts (0 disables). */
    uint64_t sizeStratifyMin = 32;

    /**
     * Strata whose mean execution size reaches this many accesses
     * relax the samplesPerStratum floor to a single balanced draw
     * (variance then comes from the pooled residual model). Replay
     * cost is proportional to execution size while the within-stratum
     * miss/access ratios of such long executions are tight, so the
     * second draw buys little accuracy at a large cost there; spend
     * it on the cheap many-execution strata instead. UINT64_MAX
     * disables the relaxation.
     */
    uint64_t singleDrawMinAccesses = 1ULL << 16;

    /** Seed of the deterministic per-stratum selection. */
    uint64_t seed = 0x51a7151edULL;

    /** Two-sided CI confidence level. */
    double confidence = 0.95;

    /** Also run the exhaustive path and fill comparison/exact. */
    bool verifyAgainstExact = false;

    /** Relative miss-rate error bound comparison.ok asserts. */
    double errorBound = 0.01;

    /**
     * Frame-seal target applied to recordings made for sampled replay.
     * Seeks skip whole frames but must decode from the start of the
     * frame containing the target, so the sampled path's decode cost
     * has a floor of ~half a frame per seek; finer frames (default
     * 2^16 vs the recorder's 2^20) keep it proportional to the
     * sampled fraction.
     */
    uint64_t frameTargetAccesses = 1ULL << 16;
};

// Pure estimator ----------------------------------------------------

/**
 * @return the two-sided Student-t quantile: the half-width multiplier
 *         for a CI at `confidence` with `dof` degrees of freedom.
 *         Exact at dof 1 and 2, Cornish-Fisher expansion beyond;
 *         dof = +inf yields the normal quantile. dof must be >= 1.
 */
double studentTQuantile(double confidence, double dof);

/**
 * @return `k` distinct indices drawn uniformly from [0, population),
 *         sorted ascending — a deterministic partial Fisher-Yates over
 *         Xoshiro256**(seed). k >= population returns all indices.
 */
std::vector<uint64_t> sampleWithoutReplacement(uint64_t seed,
                                               uint64_t population,
                                               uint64_t k);

/**
 * @return the `k` positions whose `sizes` lie nearest the mean size
 *         (ties: smaller size, then smaller position), sorted
 *         ascending — deterministic balanced selection. k >=
 *         sizes.size() returns all positions.
 */
std::vector<uint64_t> selectBalancedOnSize(const std::vector<double> &sizes,
                                           uint64_t k);

/**
 * Stratified estimator of one scalar total (e.g. misses at one
 * associativity). Feed every stratum exactly once — addExact for
 * exhaustively measured strata, addSampled for subsampled ones — then
 * read the extrapolated total, its variance, and the CI half-width.
 */
class StratifiedAccumulator
{
  public:
    /** Stratum measured exhaustively: contributes `total`, no variance. */
    void addExact(double total);

    /**
     * Subsampled stratum, plain mean expansion: `population`
     * executions, of which `sample` were measured. Requires
     * 2 <= sample.size() < population.
     */
    void addSampled(uint64_t population, const std::vector<double> &sample);

    /**
     * Subsampled stratum, ratio estimation on a known auxiliary
     * variable: `sample` holds (value, covariate) pairs and
     * `covariateTotal` is the stratum's exact covariate sum (> 0, with
     * a positive sampled covariate sum). Contributes
     * covariateTotal·(Σvalue/Σcovariate) with the residual variance.
     * Degenerates to addSampled when the covariate is constant.
     */
    void addRatio(uint64_t population, double covariateTotal,
                  const std::vector<std::pair<double, double>> &sample);

    /**
     * Stratum with an externally computed estimate: contributes
     * `total` with variance `var` whose estimate carries `varDof`
     * degrees of freedom (e.g. a single-draw stratum under the pooled
     * residual model). var must be >= 0 and varDof >= 1.
     */
    void addEstimate(double total, double var, double varDof);

    /** @return the extrapolated overall total Σ T̂_h. */
    double total() const { return sum; }

    /** @return the estimator variance Σ Var_h. */
    double variance() const { return varSum; }

    /** @return Welch–Satterthwaite effective dof (+inf at 0 variance). */
    double dof() const;

    /** @return t(confidence, dof)·√variance, 0 when variance is 0. */
    double halfWidth(double confidence) const;

  private:
    double sum = 0.0;
    double varSum = 0.0;
    double dofDenom = 0.0; //!< Σ Var_h² / (k_h − 1)
};

// Per-range measurement ---------------------------------------------

/** In-isolation locality of one execution range (cold consumers). */
struct RangeLocality
{
    uint64_t accesses = 0;
    uint64_t distinctElements = 0;  //!< range footprint
    LogHistogram histogram;         //!< element-granular reuse, cold
    cache::SegmentLocality cache;   //!< misses at ways 1..simWays
    /** Instruction weight per basic block, sorted by block id. */
    std::vector<std::pair<trace::BlockId, uint64_t>> blockWeights;
};

/** Sink measuring one range: cold reuse stack + cold stack sim. */
class RangeLocalitySink : public trace::TraceSink
{
  public:
    RangeLocalitySink() = default;

    void onBlock(trace::BlockId block, uint32_t instructions) override;
    void onAccess(trace::Addr addr) override;
    void onAccessBatch(const trace::Addr *addrs, size_t n) override;

    /** @return the measurement (call once, after the range replayed). */
    RangeLocality take();

  private:
    reuse::ReuseAnalyzer reuse;
    cache::StackSimulator sim;
    std::unordered_map<trace::BlockId, uint64_t> weights;
};

// Stratification ----------------------------------------------------

/** One stratum: executions of one leaf phase (and one size class). */
struct Stratum
{
    trace::PhaseId phase = 0;
    uint32_t sizeClass = 0; //!< log2 access-count band (0: unsplit)
    bool certainty = false; //!< the run's first execution, always exact
    std::vector<size_t> executions; //!< indices into replay.executions
};

/** Group a replay's executions into strata, ordered by phase id. */
std::vector<Stratum> stratify(const Replay &replay);

/**
 * The full sampling frame: stratify by phase, split off the certainty
 * unit (the run's first execution), and substratify phases with at
 * least config.sizeStratifyMin executions by log2 size class.
 * Deterministic order: certainty first, then ascending (phase, class).
 */
std::vector<Stratum> planStrata(const Replay &replay,
                                const StratifiedSamplingConfig &config);

// Reports -----------------------------------------------------------

/** Extrapolated whole-run locality estimate. */
struct StratifiedEstimate
{
    uint64_t totalAccesses = 0;    //!< exact (from the recording)
    uint64_t totalExecutions = 0;  //!< phase executions in the replay
    uint64_t measuredRanges = 0;   //!< ranges actually replayed
    uint64_t measuredAccesses = 0; //!< accesses actually replayed

    /** Extrapolated miss totals and CI half-widths, ways 1..simWays. */
    std::array<double, cache::simWays> missTotal{};
    std::array<double, cache::simWays> missHalfWidth{};

    std::vector<double> histogramBins; //!< extrapolated log2-bin counts
    double histogramInfinite = 0.0;    //!< extrapolated cold accesses
    double footprintSum = 0.0; //!< extrapolated Σ per-range footprints
    std::vector<double> bbv;   //!< unit-L1 aggregate BBV (may be empty)

    /** @return estimated miss rate at associativity `ways` (1-based). */
    double missRate(uint32_t ways) const;

    /** @return CI half-width of missRate(ways). */
    double missRateHalfWidth(uint32_t ways) const;
};

/** How one stratum was handled. */
struct StratumReport
{
    trace::PhaseId phase = 0;
    uint32_t sizeClass = 0;  //!< log2 access-count band (0: unsplit)
    bool certainty = false;  //!< the run's first execution
    uint64_t executions = 0; //!< N_h
    uint64_t sampled = 0;    //!< k_h (== N_h when exact)
    bool exact = false;      //!< measured exhaustively
    uint64_t accesses = 0;   //!< exact stratum accesses (records)
    uint64_t sampledAccesses = 0; //!< accesses actually replayed
};

/** Sampled-vs-exact comparison (verifyAgainstExact). */
struct StratifiedComparison
{
    bool checked = false;
    bool ok = false; //!< maxRelMissRateError <= errorBound

    double maxAbsMissRateError = 0.0; //!< max over ways
    double maxRelMissRateError = 0.0; //!< max over ways, vs exact
    double histogramDivergence = 0.0; //!< relative L1 over bins
    double footprintRelError = 0.0;
    double bbvDistance = 0.0;   //!< manhattan, 0 when either empty
    uint32_t ciCoveredWays = 0; //!< ways whose CI contains the truth

    std::vector<std::string> failures; //!< violated bounds, readable
};

/** Everything one stratified evaluation produced. */
struct StratifiedEvalReport
{
    bool ran = false;     //!< the evaluator executed
    bool sampled = false; //!< at least one stratum was subsampled
    bool verified = false; //!< the exhaustive cross-check ran

    std::vector<StratumReport> strata;
    uint64_t prologueAccesses = 0; //!< always measured exactly

    StratifiedEstimate estimate;
    StratifiedEstimate exact; //!< valid when verified
    StratifiedComparison comparison;

    double sampledMs = 0.0; //!< wall time of the sampled path
    double exactMs = 0.0;   //!< wall time of the exhaustive path

    /** @return exactMs / sampledMs (0 until verified). */
    double speedup() const;

    /** @return measured fraction of the recording, in accesses. */
    double sampledFraction() const;
};

/**
 * Compare a sampled estimate against the exhaustive one measured with
 * identical per-range semantics. Pure computation; `ok` asserts the
 * relative miss-rate bound, everything else is reported as observed.
 */
StratifiedComparison compareToExact(const StratifiedEstimate &sampled,
                                    const StratifiedEstimate &exact,
                                    const StratifiedSamplingConfig &config);

// Evaluator ---------------------------------------------------------

/**
 * Drives the sampled evaluation over one recorded stream and the
 * phase executions an instrumented replay of that stream produced.
 * Ranges are measured through per-worker TraceCursors on the pool
 * (waves, like the sharded sweeps) and reduced in a fixed order, so
 * the result is bit-identical at every thread count.
 */
class StratifiedEvaluator
{
  public:
    explicit StratifiedEvaluator(const StratifiedSamplingConfig &config,
                                 support::ThreadPool *pool = nullptr);

    /**
     * Evaluate `trace` (the raw recorded stream) against `replay` (the
     * phase executions of its instrumented replay). The two must
     * describe the same run: replay.totalAccesses must equal the
     * recording's access count.
     */
    StratifiedEvalReport evaluate(const trace::MemoryTrace &trace,
                                  const Replay &replay) const;

  private:
    StratifiedSamplingConfig cfg;
    support::ThreadPool *pool;
};

} // namespace lpp::core

#endif // LPP_CORE_STRATIFIED_HPP
