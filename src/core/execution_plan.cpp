#include "core/execution_plan.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <exception>
#include <utility>

#include "support/logging.hpp"
#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"
#include "trace/validator.hpp"

namespace lpp::core {

std::string
workloadKey(const workloads::Workload &workload,
            const workloads::WorkloadInput &input)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "@s%llu:x%.17g",
                  static_cast<unsigned long long>(input.seed), input.scale);
    return workload.name() + buf;
}

ExecutionPlan::NodeId
ExecutionPlan::addPass(std::string key, Runner runner, SinkFactory sink,
                       std::vector<NodeId> after, PassOptions opts)
{
    LPP_REQUIRE(!ran, "pass added to an execution plan that already ran");
    LPP_REQUIRE(!key.empty(), "pass key must be non-empty");
    LPP_REQUIRE(runner != nullptr, "pass runner must be non-null");
    LPP_REQUIRE(sink != nullptr, "pass sink factory must be non-null");
    for (NodeId d : after)
        LPP_REQUIRE(d < nodes.size(),
                    "pass dependency %zu not registered yet", d);
    Node node;
    node.isPass = true;
    node.key = std::move(key);
    node.runner = std::move(runner);
    node.sinkFactory = std::move(sink);
    node.replay = opts.replay;
    node.deps = std::move(after);
    nodes.push_back(std::move(node));
    ++counters.passes;
    return nodes.size() - 1;
}

ExecutionPlan::NodeId
ExecutionPlan::addStep(std::function<void()> fn, std::vector<NodeId> after)
{
    LPP_REQUIRE(!ran, "step added to an execution plan that already ran");
    LPP_REQUIRE(fn != nullptr, "step function must be non-null");
    for (NodeId d : after)
        LPP_REQUIRE(d < nodes.size(),
                    "step dependency %zu not registered yet", d);
    Node node;
    node.step = std::move(fn);
    node.deps = std::move(after);
    nodes.push_back(std::move(node));
    ++counters.steps;
    return nodes.size() - 1;
}

void
ExecutionPlan::retain(std::shared_ptr<void> keepalive)
{
    keepalives.push_back(std::move(keepalive));
}

void
ExecutionPlan::buildUnits()
{
    const size_t n = nodes.size();

    // Start from one unit per node; merging pulls a pass into an
    // earlier unit of the same (key, replay) group.
    std::vector<size_t> unit_of(n);
    std::vector<std::vector<NodeId>> work(n);
    for (size_t i = 0; i < n; ++i) {
        unit_of[i] = i;
        work[i] = {i};
    }

    // Passes grouped by (key, replay), groups and members in node-id
    // order so coalescing is deterministic.
    std::vector<std::vector<NodeId>> groups;
    std::vector<std::pair<std::string, bool>> group_ids;
    for (size_t i = 0; i < n; ++i) {
        if (!nodes[i].isPass)
            continue;
        std::pair<std::string, bool> id{nodes[i].key, nodes[i].replay};
        size_t g = 0;
        while (g < group_ids.size() && group_ids[g] != id)
            ++g;
        if (g == group_ids.size()) {
            group_ids.push_back(std::move(id));
            groups.emplace_back();
        }
        groups[g].push_back(i);
    }

    // Does working unit `from` transitively depend on `to`?
    auto reaches = [&](size_t from, size_t to) {
        std::vector<char> visited(n, 0);
        std::vector<size_t> stack{from};
        visited[from] = 1;
        while (!stack.empty()) {
            size_t u = stack.back();
            stack.pop_back();
            for (NodeId m : work[u]) {
                for (NodeId d : nodes[m].deps) {
                    size_t v = unit_of[d];
                    if (v == u)
                        continue;
                    if (v == to)
                        return true;
                    if (!visited[v]) {
                        visited[v] = 1;
                        stack.push_back(v);
                    }
                }
            }
        }
        return false;
    };

    // Greedy coalescing: each pass joins the first same-key execution
    // it has no dependency path to or from (a path either way would
    // make the merged unit graph cyclic); otherwise it opens a new one.
    for (const auto &group : groups) {
        std::vector<size_t> hosts;
        for (NodeId m : group) {
            size_t um = unit_of[m];
            bool placed = false;
            for (size_t h : hosts) {
                if (reaches(h, um) || reaches(um, h))
                    continue;
                for (NodeId x : work[um]) {
                    unit_of[x] = h;
                    work[h].push_back(x);
                }
                work[um].clear();
                placed = true;
                break;
            }
            if (!placed)
                hosts.push_back(um);
        }
    }

    // Compact the surviving units (ordered by first member) and wire
    // unit-level dependency edges.
    units.clear();
    std::vector<size_t> final_of(n);
    for (size_t i = 0; i < n; ++i) {
        if (work[i].empty())
            continue;
        Unit unit;
        unit.members = std::move(work[i]);
        std::sort(unit.members.begin(), unit.members.end());
        for (NodeId m : unit.members)
            final_of[m] = units.size();
        units.push_back(std::move(unit));
    }
    for (size_t i = 0; i < units.size(); ++i) {
        std::vector<char> seen(units.size(), 0);
        for (NodeId m : units[i].members) {
            for (NodeId d : nodes[m].deps) {
                size_t v = final_of[d];
                if (v == i || seen[v])
                    continue;
                seen[v] = 1;
                units[i].deps.push_back(v);
                units[v].dependents.push_back(i);
            }
        }
    }

    for (const Unit &unit : units) {
        const Node &first = nodes[unit.members[0]];
        if (!first.isPass)
            continue;
        if (first.replay)
            ++counters.replayExecutions;
        else
            ++counters.programExecutions;
        counters.coalescedPasses += unit.members.size() - 1;
    }
}

void
ExecutionPlan::runUnit(const Unit &unit) const
{
    const Node &first = nodes[unit.members[0]];
    if (!first.isPass) {
        first.step();
        return;
    }
    // Consumer sinks are built here, on the executing thread, after
    // the unit's dependencies completed; attach order is node-id order.
    trace::FanoutSink fan;
    for (NodeId m : unit.members) {
        trace::TraceSink *sink = nodes[m].sinkFactory();
        LPP_REQUIRE(sink != nullptr,
                    "sink factory for execution '%s' returned null",
                    nodes[m].key.c_str());
        fan.attach(sink);
    }
#if !defined(NDEBUG) || defined(LPP_FORCE_DCHECKS)
    trace::ValidatingSink validator(&fan);
    first.runner(validator);
    LPP_DCHECK(validator.ok(),
               "execution '%s' violated the sink protocol:\n%s",
               first.key.c_str(), validator.reportText().c_str());
#else
    first.runner(fan);
#endif
}

void
ExecutionPlan::runSerial()
{
    enum State : char { Pending, Done, Failed, Aborted };
    const size_t n = units.size();
    std::vector<char> state(n, Pending);
    std::vector<std::exception_ptr> errors(n);
    size_t completed = 0;
    while (completed < n) {
        size_t pick = n;
        for (size_t i = 0; i < n && pick == n; ++i) {
            if (state[i] != Pending)
                continue;
            bool ready = true;
            for (size_t d : units[i].deps)
                ready = ready && state[d] != Pending;
            if (ready)
                pick = i;
        }
        LPP_REQUIRE(pick < n, "execution plan has no runnable unit "
                              "(dependency cycle?)");
        bool doomed = false;
        for (size_t d : units[pick].deps)
            doomed = doomed || state[d] == Failed || state[d] == Aborted;
        if (doomed) {
            state[pick] = Aborted;
        } else {
            try {
                runUnit(units[pick]);
                state[pick] = Done;
            } catch (...) {
                errors[pick] = std::current_exception();
                state[pick] = Failed;
            }
        }
        ++completed;
    }
    for (size_t i = 0; i < n; ++i)
        if (errors[i])
            std::rethrow_exception(errors[i]);
}

/**
 * Scheduler state shared by the caller and its helper jobs, co-owned
 * via shared_ptr so a helper that dequeues after the plan finished
 * (ready queue empty) touches only memory it keeps alive.
 */
struct ExecutionPlan::ParallelSched
{
    enum State : char { Pending, Done, Failed, Aborted };

    const ExecutionPlan *plan = nullptr;
    support::ThreadPool *pool = nullptr;
    support::Mutex mtx;
    std::condition_variable_any cv;
    size_t remaining LPP_GUARDED_BY(mtx) = 0;
    std::vector<char> state LPP_GUARDED_BY(mtx);
    std::vector<size_t> pendingDeps LPP_GUARDED_BY(mtx);
    std::deque<size_t> ready LPP_GUARDED_BY(mtx);
    // Each slot is written by its unit's executing thread before the
    // completion barrier and read by the caller after it; no lock.
    std::vector<std::exception_ptr> errors;
};

/**
 * Claim-and-run loop shared by the caller and helper jobs: pop a ready
 * unit, run it, release its dependents. Helpers return instead of
 * blocking when the queue is momentarily empty; a completion that
 * releases R dependents keeps one for this loop and submits fresh
 * helpers for the rest, so no ready unit is ever stranded.
 */
void
ExecutionPlan::drainParallel(const std::shared_ptr<ParallelSched> &sy)
{
    using State = ParallelSched::State;
    for (;;) {
        size_t i;
        {
            support::MutexLock lock(sy->mtx);
            if (sy->ready.empty())
                return;
            i = sy->ready.front();
            sy->ready.pop_front();
        }
        // A unit was claimed, so remaining > 0 and the caller (who owns
        // the plan) is still blocked in runParallel: plan access is safe.
        const ExecutionPlan &plan = *sy->plan;
        std::exception_ptr err;
        try {
            plan.runUnit(plan.units[i]);
        } catch (...) {
            err = std::current_exception();
        }
        size_t released = 0;
        {
            support::MutexLock lock(sy->mtx);
            sy->state[i] = err ? State::Failed : State::Done;
            sy->errors[i] = err;
            --sy->remaining;
            // Release dependents; a dependent of a failed or aborted
            // unit is abandoned, which cascades.
            std::vector<size_t> done{i};
            while (!done.empty()) {
                size_t u = done.back();
                done.pop_back();
                for (size_t d : plan.units[u].dependents) {
                    if (--sy->pendingDeps[d] > 0)
                        continue;
                    bool doomed = false;
                    for (size_t p : plan.units[d].deps)
                        doomed = doomed || sy->state[p] == State::Failed ||
                                 sy->state[p] == State::Aborted;
                    if (doomed) {
                        sy->state[d] = State::Aborted;
                        --sy->remaining;
                        done.push_back(d);
                    } else {
                        sy->ready.push_back(d);
                        ++released;
                    }
                }
            }
            // Notify while holding the lock: the caller may return
            // (releasing its reference) the instant remaining hits zero.
            if (sy->remaining == 0)
                sy->cv.notify_all();
        }
        // This loop continues and takes one released unit itself; the
        // rest get fresh helpers so independent branches overlap.
        for (size_t h = 1; h < released; ++h)
            sy->pool->submit([sy] { drainParallel(sy); });
    }
}

void
ExecutionPlan::runParallel(support::ThreadPool &pool)
{
    const size_t n = units.size();
    auto sy = std::make_shared<ParallelSched>();
    sy->plan = this;
    sy->pool = &pool;
    sy->errors.resize(n);
    size_t initial = 0;
    {
        support::MutexLock lock(sy->mtx);
        sy->remaining = n;
        sy->state.assign(n, ParallelSched::Pending);
        sy->pendingDeps.resize(n);
        for (size_t i = 0; i < n; ++i) {
            sy->pendingDeps[i] = units[i].deps.size();
            if (units[i].deps.empty()) {
                sy->ready.push_back(i);
                ++initial;
            }
        }
    }

    // One helper per initially-ready unit beyond the one the caller
    // takes, capped at the pool size (completions submit more as
    // dependents become ready).
    size_t helpers =
        std::min(pool.threadCount(), initial > 0 ? initial - 1 : 0);
    std::vector<std::function<void()>> jobs;
    jobs.reserve(helpers);
    for (size_t h = 0; h < helpers; ++h)
        jobs.emplace_back([sy] { drainParallel(sy); });
    pool.submitBatch(std::move(jobs));

    drainParallel(sy); // the caller participates

    {
        support::MutexLock lock(sy->mtx);
        while (sy->remaining > 0)
            sy->cv.wait(sy->mtx);
    }
    for (size_t i = 0; i < n; ++i)
        if (sy->errors[i])
            std::rethrow_exception(sy->errors[i]);
}

void
ExecutionPlan::run(support::ThreadPool &pool)
{
    LPP_REQUIRE(!ran, "execution plan already ran");
    ran = true;
    buildUnits();
    if (units.empty())
        return;
    // Caller participation makes the parallel path safe even from a
    // pool worker (nested plans); only a single-thread pool, where no
    // helper could ever run concurrently, takes the serial path.
    if (pool.threadCount() <= 1)
        runSerial();
    else
        runParallel(pool);
}

uint64_t
ExecutionPlan::programExecutions(std::string_view key_prefix) const
{
    LPP_REQUIRE(ran, "programExecutions() queried before run()");
    uint64_t count = 0;
    for (const Unit &unit : units) {
        const Node &first = nodes[unit.members[0]];
        if (first.isPass && !first.replay &&
            std::string_view(first.key).substr(0, key_prefix.size()) ==
                key_prefix)
            ++count;
    }
    return count;
}

} // namespace lpp::core
