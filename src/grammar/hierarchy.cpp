#include "grammar/hierarchy.hpp"

#include <functional>

#include "support/logging.hpp"

namespace lpp::grammar {

RegexPtr
PhaseHierarchy::regexFromGrammar(const Grammar &g)
{
    if (g.rules.empty() || g.rules[0].empty())
        return nullptr;

    // Memoized post-order conversion: each rule is converted once.
    std::vector<RegexPtr> memo(g.rules.size());
    std::function<RegexPtr(size_t)> convert = [&](size_t rule) {
        if (memo[rule])
            return memo[rule];
        std::vector<RegexPtr> parts;
        parts.reserve(g.rules[rule].size());
        for (Grammar::Sym s : g.rules[rule]) {
            if (Grammar::isRule(s))
                parts.push_back(convert(Grammar::ruleIndex(s)));
            else
                parts.push_back(
                    Regex::symbol(static_cast<uint32_t>(s)));
        }
        memo[rule] = Regex::concat(std::move(parts));
        return memo[rule];
    };
    return convert(0);
}

namespace {

void
collectComposites(const RegexPtr &node, size_t depth,
                  std::vector<CompositePhase> &out)
{
    if (!node)
        return;
    switch (node->kind()) {
      case Regex::Kind::Symbol:
        break;
      case Regex::Kind::Repeat: {
        CompositePhase c;
        c.node = node;
        c.iterations = node->count();
        c.leavesPerIteration = node->body()->expandedLength();
        c.depth = depth;
        out.push_back(c);
        collectComposites(node->body(), depth + 1, out);
        break;
      }
      case Regex::Kind::Concat:
        for (const auto &p : node->parts())
            collectComposites(p, depth, out);
        break;
    }
}

} // namespace

PhaseHierarchy
PhaseHierarchy::fromSequence(const std::vector<uint32_t> &leaf_sequence)
{
    PhaseHierarchy h;
    h.leaves = leaf_sequence.size();
    if (leaf_sequence.empty())
        return h;

    Sequitur seq;
    seq.append(leaf_sequence);
    h.compressed = seq.extract();
    h.rootNode = regexFromGrammar(h.compressed);
    collectComposites(h.rootNode, 0, h.compositeList);
    return h;
}

const CompositePhase *
PhaseHierarchy::largestComposite() const
{
    const CompositePhase *best = nullptr;
    for (const auto &c : compositeList) {
        uint64_t size = c.leavesPerIteration;
        if (!best || size > best->leavesPerIteration)
            best = &c;
    }
    return best;
}

} // namespace lpp::grammar
