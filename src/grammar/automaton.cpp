#include "grammar/automaton.hpp"

#include <algorithm>
#include <set>

#include "support/logging.hpp"

namespace lpp::grammar {

int
PhaseAutomaton::newState()
{
    symEdges.emplace_back();
    epsEdges.emplace_back();
    return static_cast<int>(epsEdges.size() - 1);
}

void
PhaseAutomaton::build(const RegexPtr &node, int in, int out)
{
    switch (node->kind()) {
      case Regex::Kind::Symbol:
        symEdges[in].push_back(SymEdge{node->symbolId(), out});
        break;
      case Regex::Kind::Concat: {
        int cur = in;
        const auto &parts = node->parts();
        for (size_t i = 0; i < parts.size(); ++i) {
            int next = (i + 1 == parts.size()) ? out : newState();
            build(parts[i], cur, next);
            cur = next;
        }
        break;
      }
      case Regex::Kind::Repeat: {
        // Loop with at least one iteration; the training count is
        // advisory, so the exit is available after every iteration.
        int head = newState();
        int tail = newState();
        epsEdges[in].push_back(head);
        build(node->body(), head, tail);
        epsEdges[tail].push_back(head); // loop again
        epsEdges[tail].push_back(out);  // or leave
        break;
      }
    }
}

PhaseAutomaton::PhaseAutomaton(const RegexPtr &root)
{
    startState = newState();
    acceptState = newState();
    if (root)
        build(root, startState, acceptState);
    current.assign(epsEdges.size(), 0);
    current[static_cast<size_t>(startState)] = 1;
    closure(current);
}

void
PhaseAutomaton::closure(std::vector<char> &states) const
{
    std::vector<int> work;
    for (size_t s = 0; s < states.size(); ++s) {
        if (states[s])
            work.push_back(static_cast<int>(s));
    }
    while (!work.empty()) {
        int s = work.back();
        work.pop_back();
        for (int t : epsEdges[static_cast<size_t>(s)]) {
            if (!states[static_cast<size_t>(t)]) {
                states[static_cast<size_t>(t)] = 1;
                work.push_back(t);
            }
        }
    }
}

void
PhaseAutomaton::restart(std::vector<char> &states) const
{
    std::fill(states.begin(), states.end(), 0);
    states[static_cast<size_t>(startState)] = 1;
    closure(states);
}

bool
PhaseAutomaton::feed(uint32_t leaf)
{
    ++feeds;
    std::vector<char> next(epsEdges.size(), 0);
    bool any = false;
    for (size_t s = 0; s < current.size(); ++s) {
        if (!current[s])
            continue;
        for (const auto &e : symEdges[s]) {
            if (e.sym == leaf) {
                next[static_cast<size_t>(e.to)] = 1;
                any = true;
            }
        }
    }

    if (any) {
        closure(next);
        current = std::move(next);
        lostFlag = false;
        return true;
    }

    // Resynchronize: restart from the beginning and take the symbol if
    // possible; otherwise remain at the start position.
    ++resyncs;
    lostFlag = true;
    restart(current);
    std::vector<char> retry(epsEdges.size(), 0);
    bool matched = false;
    for (size_t s = 0; s < current.size(); ++s) {
        if (!current[s])
            continue;
        for (const auto &e : symEdges[s]) {
            if (e.sym == leaf) {
                retry[static_cast<size_t>(e.to)] = 1;
                matched = true;
            }
        }
    }
    if (matched) {
        closure(retry);
        current = std::move(retry);
    }
    return false;
}

std::vector<uint32_t>
PhaseAutomaton::possibleNext() const
{
    std::set<uint32_t> next;
    for (size_t s = 0; s < current.size(); ++s) {
        if (!current[s])
            continue;
        for (const auto &e : symEdges[s])
            next.insert(e.sym);
    }
    return {next.begin(), next.end()};
}

bool
PhaseAutomaton::deterministicNext(uint32_t *next) const
{
    auto options = possibleNext();
    if (options.size() == 1) {
        if (next)
            *next = options.front();
        return true;
    }
    return false;
}

void
PhaseAutomaton::reset()
{
    restart(current);
    lostFlag = false;
}

} // namespace lpp::grammar
