/**
 * @file
 * SEQUITUR grammar compression (Nevill-Manning & Witten, 1997).
 *
 * Builds a context-free grammar from a symbol stream on-line in linear
 * time and space by maintaining two invariants: digram uniqueness (no
 * pair of adjacent symbols appears twice) and rule utility (every rule is
 * referenced at least twice). The paper uses it to compress the leaf
 * phase sequence of a training run; repeated sub-sequences become rules,
 * which the hierarchy step then turns into composite phases.
 */

#ifndef LPP_GRAMMAR_SEQUITUR_HPP
#define LPP_GRAMMAR_SEQUITUR_HPP

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "grammar/grammar.hpp"

namespace lpp::grammar {

/**
 * On-line Sequitur compressor. Feed terminals with append(); extract()
 * snapshots the current grammar. Terminals must be < 2^31.
 */
class Sequitur
{
  public:
    Sequitur();

    /** Append one terminal to the input string. */
    void append(uint32_t terminal);

    /** Append a whole sequence. */
    void append(const std::vector<uint32_t> &terminals);

    /** @return a plain-grammar snapshot (rule 0 = start). */
    Grammar extract() const;

    /** @return the number of live rules (including the start rule). */
    size_t ruleCount() const { return liveRules; }

    /** @return terminals appended so far. */
    uint64_t inputLength() const { return appended; }

  private:
    using SymIdx = uint32_t;
    static constexpr SymIdx nil = 0xFFFFFFFFu;
    static constexpr uint32_t ruleFlag = 0x80000000u;

    struct Node
    {
        SymIdx prev = nil;
        SymIdx next = nil;
        uint32_t value = 0; //!< terminal, or ruleFlag | rule slot
        bool guard = false;
        uint32_t rule = 0;  //!< for guards: owning rule slot
    };

    struct Rule
    {
        SymIdx guard = nil;
        uint32_t refCount = 0;
        bool live = false;
    };

    static bool isRuleValue(uint32_t v) { return (v & ruleFlag) != 0; }
    static uint32_t ruleOf(uint32_t v) { return v & ~ruleFlag; }

    static uint64_t
    key(uint32_t a, uint32_t b)
    {
        return (static_cast<uint64_t>(a) << 32) | b;
    }

    SymIdx allocNode();
    void freeNode(SymIdx s);
    SymIdx newSymbol(uint32_t value);
    uint32_t newRule();
    void destroyRule(uint32_t r);

    bool isGuard(SymIdx s) const { return pool[s].guard; }
    SymIdx first(uint32_t r) const { return pool[rules[r].guard].next; }
    SymIdx last(uint32_t r) const { return pool[rules[r].guard].prev; }

    void removeDigram(SymIdx s);
    void join(SymIdx left, SymIdx right);
    void insertAfter(SymIdx at, SymIdx sym);
    void destroySymbol(SymIdx s);
    bool check(SymIdx s);
    void match(SymIdx s, SymIdx m);
    void substitute(SymIdx s, uint32_t r);
    void expand(SymIdx s);

    std::vector<Node> pool;
    std::vector<SymIdx> freeNodes;
    std::vector<Rule> rules;
    std::vector<uint32_t> freeRules;
    std::unordered_map<uint64_t, SymIdx> digrams;
    size_t liveRules = 0;
    uint64_t appended = 0;
};

} // namespace lpp::grammar

#endif // LPP_GRAMMAR_SEQUITUR_HPP
