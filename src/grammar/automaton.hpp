/**
 * @file
 * Finite-automaton phase predictor over the hierarchy regex.
 *
 * The paper inserts a run-time predictor that recognizes the current
 * position inside the phase hierarchy with a finite automaton. Here the
 * regex is compiled into an epsilon-NFA whose Repeat nodes become loops
 * (training repeat counts are advisory: a longer input simply loops more
 * often), and the predictor runs an on-line subset simulation. After
 * each observed leaf phase it can report the set of possible next
 * phases; when exactly one is possible, the upcoming phase — and with
 * the learned per-phase behaviour, its length and locality — is known
 * the moment the current marker fires.
 */

#ifndef LPP_GRAMMAR_AUTOMATON_HPP
#define LPP_GRAMMAR_AUTOMATON_HPP

#include <cstdint>
#include <vector>

#include "grammar/regex.hpp"

namespace lpp::grammar {

/** On-line recognizer/predictor for a phase hierarchy. */
class PhaseAutomaton
{
  public:
    /** Compile the hierarchy regex (null root accepts nothing). */
    explicit PhaseAutomaton(const RegexPtr &root);

    /**
     * Consume one observed leaf phase.
     * @return true if the phase was among the expected next phases;
     *         false if the automaton had to resynchronize
     */
    bool feed(uint32_t leaf);

    /** @return the set of leaf phases that may come next (sorted). */
    std::vector<uint32_t> possibleNext() const;

    /**
     * @return true and set *next when exactly one leaf phase can follow
     * the current position.
     */
    bool deterministicNext(uint32_t *next) const;

    /** @return whether the last feed() failed to match. */
    bool lost() const { return lostFlag; }

    /** @return how many feeds required resynchronization. */
    uint64_t resyncCount() const { return resyncs; }

    /** @return total feeds processed. */
    uint64_t feedCount() const { return feeds; }

    /** Return to the initial position. */
    void reset();

    /** @return number of NFA states (for tests/inspection). */
    size_t stateCount() const { return epsEdges.size(); }

  private:
    struct SymEdge
    {
        uint32_t sym;
        int to;
    };

    int newState();
    /** Build NFA fragment for `node` between states `in` and `out`. */
    void build(const RegexPtr &node, int in, int out);
    void closure(std::vector<char> &states) const;
    void restart(std::vector<char> &states) const;

    std::vector<std::vector<SymEdge>> symEdges;
    std::vector<std::vector<int>> epsEdges;
    int startState = -1;
    int acceptState = -1;

    std::vector<char> current;
    bool lostFlag = false;
    uint64_t resyncs = 0;
    uint64_t feeds = 0;
};

} // namespace lpp::grammar

#endif // LPP_GRAMMAR_AUTOMATON_HPP
