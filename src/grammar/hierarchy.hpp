/**
 * @file
 * Phase hierarchy construction (paper Section 2.4).
 *
 * The leaf-phase sequence of the training run is compressed with
 * Sequitur; the resulting grammar is converted, rule by rule with
 * memoization, into a regular expression whose Repeat nodes are the
 * composite phases. The conversion merges adjacent equivalent
 * subexpressions (the paper cites the Hopcroft-Ullman equivalence test;
 * our regexes are concrete so structural equality is exact equivalence).
 */

#ifndef LPP_GRAMMAR_HIERARCHY_HPP
#define LPP_GRAMMAR_HIERARCHY_HPP

#include <cstdint>
#include <vector>

#include "grammar/grammar.hpp"
#include "grammar/regex.hpp"
#include "grammar/sequitur.hpp"

namespace lpp::grammar {

/** One composite phase (a Repeat node in the hierarchy). */
struct CompositePhase
{
    RegexPtr node;            //!< the Repeat node
    uint64_t iterations = 0;  //!< times the body repeated in training
    uint64_t leavesPerIteration = 0; //!< leaf executions per iteration
    size_t depth = 0;         //!< nesting depth (0 = outermost)
};

/**
 * The phase hierarchy of one training run: the Sequitur grammar, the
 * extracted regular expression, and the composite phases.
 */
class PhaseHierarchy
{
  public:
    /** Build the hierarchy from a leaf-phase sequence. */
    static PhaseHierarchy fromSequence(
        const std::vector<uint32_t> &leaf_sequence);

    /** Convert an existing grammar into a regular expression. */
    static RegexPtr regexFromGrammar(const Grammar &g);

    /** @return the hierarchy root (null for an empty sequence). */
    const RegexPtr &root() const { return rootNode; }

    /** @return the underlying Sequitur grammar. */
    const Grammar &grammar() const { return compressed; }

    /** @return every composite phase, outermost first. */
    const std::vector<CompositePhase> &composites() const
    {
        return compositeList;
    }

    /**
     * @return the composite phase with the most leaf executions per
     * iteration, or nullptr if the run never repeats.
     */
    const CompositePhase *largestComposite() const;

    /** @return number of leaf executions in the training sequence. */
    uint64_t leafCount() const { return leaves; }

  private:
    RegexPtr rootNode;
    Grammar compressed;
    std::vector<CompositePhase> compositeList;
    uint64_t leaves = 0;
};

} // namespace lpp::grammar

#endif // LPP_GRAMMAR_HIERARCHY_HPP
