#include "grammar/grammar.hpp"

#include "support/logging.hpp"

namespace lpp::grammar {

namespace {

void
expandInto(const Grammar &g, size_t rule, std::vector<uint32_t> &out,
           size_t depth)
{
    LPP_REQUIRE(depth < 10000, "grammar recursion too deep (cycle?)");
    for (Grammar::Sym s : g.rules[rule]) {
        if (Grammar::isRule(s))
            expandInto(g, Grammar::ruleIndex(s), out, depth + 1);
        else
            out.push_back(static_cast<uint32_t>(s));
    }
}

} // namespace

std::vector<uint32_t>
Grammar::expand(size_t rule) const
{
    std::vector<uint32_t> out;
    if (rule < rules.size())
        expandInto(*this, rule, out, 0);
    return out;
}

size_t
Grammar::totalSymbols() const
{
    size_t n = 0;
    for (const auto &r : rules)
        n += r.size();
    return n;
}

uint64_t
Grammar::expandedLength(size_t rule) const
{
    // Memoized bottom-up would be faster, but grammars here are small;
    // a simple memo vector suffices.
    std::vector<int64_t> memo(rules.size(), -1);
    struct Calc
    {
        const Grammar &g;
        std::vector<int64_t> &memo;

        uint64_t
        len(size_t r)
        {
            if (memo[r] >= 0)
                return static_cast<uint64_t>(memo[r]);
            memo[r] = 0; // break accidental cycles
            uint64_t total = 0;
            for (Sym s : g.rules[r])
                total += isRule(s) ? len(ruleIndex(s)) : 1;
            memo[r] = static_cast<int64_t>(total);
            return total;
        }
    } calc{*this, memo};
    if (rule >= rules.size())
        return 0;
    return calc.len(rule);
}

std::string
Grammar::toString() const
{
    std::string out;
    for (size_t r = 0; r < rules.size(); ++r) {
        out += "R" + std::to_string(r) + " ->";
        for (Sym s : rules[r]) {
            if (isRule(s))
                out += " R" + std::to_string(ruleIndex(s));
            else
                out += " " + std::to_string(s);
        }
        out += "\n";
    }
    return out;
}

} // namespace lpp::grammar
