#include "grammar/regex.hpp"

#include <cstdint>

#include "support/logging.hpp"

namespace lpp::grammar {

RegexPtr
Regex::symbol(uint32_t id)
{
    auto node = std::shared_ptr<Regex>(new Regex());
    node->nodeKind = Kind::Symbol;
    node->sym = id;
    return node;
}

RegexPtr
Regex::repeat(RegexPtr body, uint64_t count)
{
    LPP_REQUIRE(body != nullptr, "repeat of null body");
    LPP_REQUIRE(count >= 1, "repeat count must be >= 1");
    if (count == 1)
        return body;
    if (body->kind() == Kind::Repeat) {
        // (x^n)^m == x^(n*m)
        return repeat(body->body(), body->count() * count);
    }
    auto node = std::shared_ptr<Regex>(new Regex());
    node->nodeKind = Kind::Repeat;
    node->repeatBody = std::move(body);
    node->repeatCount = count;
    return node;
}

namespace {

/** @return the repeated unit of a node (the body for Repeats). */
const RegexPtr &
unitOf(const RegexPtr &r)
{
    return r->kind() == Regex::Kind::Repeat ? r->body() : r;
}

/** @return the repeat count of a node (1 for non-Repeats). */
uint64_t
countOf(const RegexPtr &r)
{
    return r->kind() == Regex::Kind::Repeat ? r->count() : 1;
}

/**
 * Language equivalence: concrete regexes denote a single string, so two
 * are equivalent iff they expand to the same string (cheap structural
 * check first).
 */
bool
equivalent(const RegexPtr &a, const RegexPtr &b)
{
    if (a->equals(*b))
        return true;
    if (a->expandedLength() != b->expandedLength())
        return false;
    return a->expand() == b->expand();
}

/**
 * If seq[at..j) expands to exactly `want`, return j; otherwise 0.
 * Element boundaries must align with the end of `want`.
 */
size_t
forwardSpan(const std::vector<RegexPtr> &seq, size_t at,
            const std::vector<uint32_t> &want)
{
    uint64_t have = 0;
    size_t j = at;
    std::vector<uint32_t> got;
    while (j < seq.size() && have < want.size()) {
        auto ex = seq[j]->expand();
        got.insert(got.end(), ex.begin(), ex.end());
        have += ex.size();
        ++j;
    }
    if (have == want.size() && got == want)
        return j;
    return 0;
}

/**
 * If some tail seq[j..end) expands to exactly `want`, return j;
 * otherwise SIZE_MAX.
 */
size_t
backwardSpan(const std::vector<RegexPtr> &seq,
             const std::vector<uint32_t> &want)
{
    uint64_t have = 0;
    size_t j = seq.size();
    while (j > 0 && have < want.size()) {
        --j;
        have += seq[j]->expandedLength();
    }
    if (have != want.size())
        return SIZE_MAX;
    std::vector<uint32_t> got;
    for (size_t k = j; k < seq.size(); ++k) {
        auto ex = seq[k]->expand();
        got.insert(got.end(), ex.begin(), ex.end());
    }
    return got == want ? j : SIZE_MAX;
}

/** If `parts` is k >= 2 repetitions of its own prefix, return that k. */
size_t
wholePeriodicity(const std::vector<RegexPtr> &parts)
{
    size_t n = parts.size();
    for (size_t period = 1; period <= n / 2; ++period) {
        if (n % period != 0)
            continue;
        bool ok = true;
        for (size_t i = period; i < n && ok; ++i)
            ok = parts[i]->equals(*parts[i % period]);
        if (ok)
            return n / period;
    }
    return 1;
}

} // namespace

RegexPtr
Regex::concat(std::vector<RegexPtr> parts)
{
    // Flatten nested concats.
    std::vector<RegexPtr> flat;
    for (const auto &p : parts) {
        LPP_REQUIRE(p != nullptr, "concat of null part");
        if (p->kind() == Kind::Concat) {
            for (const auto &q : p->parts())
                flat.push_back(q);
        } else {
            flat.push_back(p);
        }
    }

    // Merge pass. Beyond adjacent-equal folding, a Repeat absorbs a
    // spelled-out copy of its own body on either side — Sequitur's rule
    // utility often leaves one loop iteration unrolled as raw symbols
    // (e.g. R^24 followed by the five symbols of R must become R^25).
    std::vector<RegexPtr> out;

    // Push with cascading merges: fold equal adjacent units, and let a
    // Repeat absorb a spelled-out copy of its own body from the tail —
    // Sequitur's rule utility often leaves one loop iteration unrolled
    // (possibly split across several elements), and each absorption can
    // enable the next.
    auto push_merged = [&out](RegexPtr e) {
        for (;;) {
            if (!out.empty() &&
                equivalent(unitOf(out.back()), unitOf(e))) {
                uint64_t total = countOf(out.back()) + countOf(e);
                RegexPtr unit = unitOf(out.back());
                out.pop_back();
                e = repeat(std::move(unit), total);
                continue;
            }
            if (e->kind() == Kind::Repeat) {
                auto want = e->body()->expand();
                if (want.size() > 1) {
                    size_t j = backwardSpan(out, want);
                    if (j != SIZE_MAX) {
                        out.resize(j);
                        e = repeat(e->body(), e->count() + 1);
                        continue;
                    }
                }
            }
            break;
        }
        out.push_back(std::move(e));
    };

    size_t i = 0;
    while (i < flat.size()) {
        // A trailing Repeat absorbs a spelled-out body that follows it.
        if (!out.empty() && out.back()->kind() == Kind::Repeat) {
            auto want = out.back()->body()->expand();
            if (want.size() > 1) {
                size_t j = forwardSpan(flat, i, want);
                if (j != 0) {
                    RegexPtr grown = repeat(out.back()->body(),
                                            out.back()->count() + 1);
                    out.pop_back();
                    push_merged(std::move(grown));
                    i = j;
                    continue;
                }
            }
        }
        push_merged(flat[i]);
        ++i;
    }
    flat = std::move(out);

    if (flat.empty())
        return nullptr;
    if (flat.size() == 1)
        return flat.front();

    // Whole-sequence periodicity, e.g. (a b a b) -> (a b)^2, which the
    // adjacent merge alone cannot find.
    size_t k = wholePeriodicity(flat);
    if (k > 1) {
        std::vector<RegexPtr> unit(flat.begin(),
                                   flat.begin() +
                                       static_cast<long>(flat.size() / k));
        return repeat(concat(std::move(unit)), k);
    }

    auto node = std::shared_ptr<Regex>(new Regex());
    node->nodeKind = Kind::Concat;
    node->subParts = std::move(flat);
    return node;
}

bool
Regex::equals(const Regex &other) const
{
    if (nodeKind != other.nodeKind)
        return false;
    switch (nodeKind) {
      case Kind::Symbol:
        return sym == other.sym;
      case Kind::Repeat:
        return repeatCount == other.repeatCount &&
               repeatBody->equals(*other.repeatBody);
      case Kind::Concat:
        if (subParts.size() != other.subParts.size())
            return false;
        for (size_t i = 0; i < subParts.size(); ++i) {
            if (!subParts[i]->equals(*other.subParts[i]))
                return false;
        }
        return true;
    }
    return false;
}

uint64_t
Regex::expandedLength() const
{
    switch (nodeKind) {
      case Kind::Symbol:
        return 1;
      case Kind::Repeat:
        return repeatCount * repeatBody->expandedLength();
      case Kind::Concat: {
        uint64_t total = 0;
        for (const auto &p : subParts)
            total += p->expandedLength();
        return total;
      }
    }
    return 0;
}

namespace {

void
expandInto(const Regex &r, std::vector<uint32_t> &out)
{
    switch (r.kind()) {
      case Regex::Kind::Symbol:
        out.push_back(r.symbolId());
        break;
      case Regex::Kind::Repeat:
        for (uint64_t i = 0; i < r.count(); ++i)
            expandInto(*r.body(), out);
        break;
      case Regex::Kind::Concat:
        for (const auto &p : r.parts())
            expandInto(*p, out);
        break;
    }
}

} // namespace

std::vector<uint32_t>
Regex::expand() const
{
    std::vector<uint32_t> out;
    expandInto(*this, out);
    return out;
}

std::string
Regex::toString() const
{
    switch (nodeKind) {
      case Kind::Symbol:
        return std::to_string(sym);
      case Kind::Repeat: {
        std::string inner = repeatBody->toString();
        if (repeatBody->kind() != Kind::Symbol)
            inner = "(" + inner + ")";
        return inner + "^" + std::to_string(repeatCount);
      }
      case Kind::Concat: {
        std::string out;
        for (size_t i = 0; i < subParts.size(); ++i) {
            if (i)
                out += " ";
            const auto &p = subParts[i];
            if (p->kind() == Kind::Concat)
                out += "(" + p->toString() + ")";
            else
                out += p->toString();
        }
        return out;
      }
    }
    return "";
}

namespace {

/** Recursive-descent parser over the toString() syntax. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : s(text) {}

    RegexPtr
    parseAll()
    {
        RegexPtr r = expr();
        skipSpace();
        return (r && pos == s.size()) ? r : nullptr;
    }

  private:
    void
    skipSpace()
    {
        while (pos < s.size() && s[pos] == ' ')
            ++pos;
    }

    bool
    atAtomStart()
    {
        skipSpace();
        if (pos >= s.size())
            return false;
        char c = s[pos];
        return c == '(' || (c >= '0' && c <= '9');
    }

    RegexPtr
    expr()
    {
        std::vector<RegexPtr> parts;
        while (atAtomStart()) {
            RegexPtr t = term();
            if (!t)
                return nullptr;
            parts.push_back(std::move(t));
        }
        if (parts.empty())
            return nullptr;
        return Regex::concat(std::move(parts));
    }

    RegexPtr
    term()
    {
        RegexPtr a = atom();
        if (!a)
            return nullptr;
        if (pos < s.size() && s[pos] == '^') {
            ++pos;
            uint64_t count = 0;
            if (!number(&count) || count == 0)
                return nullptr;
            return Regex::repeat(std::move(a), count);
        }
        return a;
    }

    RegexPtr
    atom()
    {
        skipSpace();
        if (pos >= s.size())
            return nullptr;
        if (s[pos] == '(') {
            ++pos;
            RegexPtr inner = expr();
            skipSpace();
            if (!inner || pos >= s.size() || s[pos] != ')')
                return nullptr;
            ++pos;
            return inner;
        }
        uint64_t id = 0;
        if (!number(&id))
            return nullptr;
        return Regex::symbol(static_cast<uint32_t>(id));
    }

    bool
    number(uint64_t *out)
    {
        if (pos >= s.size() || s[pos] < '0' || s[pos] > '9')
            return false;
        uint64_t v = 0;
        while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') {
            v = v * 10 + static_cast<uint64_t>(s[pos] - '0');
            ++pos;
        }
        *out = v;
        return true;
    }

    const std::string &s;
    size_t pos = 0;
};

} // namespace

RegexPtr
Regex::parse(const std::string &text)
{
    return Parser(text).parseAll();
}

size_t
Regex::nodeCountRecursive() const
{
    size_t n = 1;
    if (nodeKind == Kind::Concat) {
        for (const auto &p : subParts)
            n += p->nodeCountRecursive();
    } else if (nodeKind == Kind::Repeat) {
        n += repeatBody->nodeCountRecursive();
    }
    return n;
}

} // namespace lpp::grammar
