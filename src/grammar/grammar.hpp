/**
 * @file
 * Plain context-free-grammar representation produced by Sequitur.
 */

#ifndef LPP_GRAMMAR_GRAMMAR_HPP
#define LPP_GRAMMAR_GRAMMAR_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace lpp::grammar {

/**
 * A straight-line context-free grammar: every non-terminal has exactly
 * one rule and rule 0 derives the whole input. Symbols are encoded as
 * int64: values >= 0 are terminals, values < 0 reference rule
 * ruleIndex(sym).
 */
struct Grammar
{
    /** Encoded symbol: terminal (>= 0) or rule reference (< 0). */
    using Sym = int64_t;

    /** @return whether a symbol references a rule. */
    static bool isRule(Sym s) { return s < 0; }

    /** @return the rule index a non-terminal references. */
    static size_t ruleIndex(Sym s) { return static_cast<size_t>(-1 - s); }

    /** @return the encoded non-terminal for a rule index. */
    static Sym
    ruleSym(size_t index)
    {
        return -1 - static_cast<Sym>(index);
    }

    /** Right-hand sides; rules[0] is the start rule. */
    std::vector<std::vector<Sym>> rules;

    /** @return the fully expanded terminal string of rule `rule`. */
    std::vector<uint32_t> expand(size_t rule = 0) const;

    /** @return total symbols across all right-hand sides. */
    size_t totalSymbols() const;

    /** @return expanded length of rule `rule` without materializing. */
    uint64_t expandedLength(size_t rule = 0) const;

    /** @return a debug rendering, one rule per line. */
    std::string toString() const;
};

} // namespace lpp::grammar

#endif // LPP_GRAMMAR_GRAMMAR_HPP
