/**
 * @file
 * Regular-expression trees over phase identifiers.
 *
 * The paper's hierarchy step converts the Sequitur grammar of a training
 * run's phase sequence into a regular expression whose Repeat nodes are
 * the composite phases (e.g. a Tomcatv time step = five leaf phases
 * repeated N times). Regexes here are concrete: Symbol, Concat, and
 * fixed-count Repeat (no alternation is needed because a training run is
 * a single string; at prediction time Repeat counts are treated as
 * unbounded loops).
 */

#ifndef LPP_GRAMMAR_REGEX_HPP
#define LPP_GRAMMAR_REGEX_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace lpp::grammar {

class Regex;

/** Shared immutable regex node. */
using RegexPtr = std::shared_ptr<const Regex>;

/**
 * Immutable regular-expression node. Construct through the static
 * factories, which canonicalize: concat flattens nested concats and
 * merges adjacent equivalent subexpressions into repetitions, and also
 * recognizes whole-sequence periodicity.
 */
class Regex
{
  public:
    enum class Kind
    {
        Symbol, //!< one leaf phase id
        Concat, //!< juxtaposition of parts
        Repeat, //!< body repeated `count` times (count >= 1)
    };

    /** @return a leaf-symbol node. */
    static RegexPtr symbol(uint32_t id);

    /**
     * @return the canonical concatenation of `parts`; single-element
     * concats collapse and adjacent equivalent parts merge into Repeats.
     */
    static RegexPtr concat(std::vector<RegexPtr> parts);

    /** @return `body` repeated `count` times (nested repeats merge). */
    static RegexPtr repeat(RegexPtr body, uint64_t count);

    /** @return the node kind. */
    Kind kind() const { return nodeKind; }

    /** @return the leaf id (Symbol nodes only). */
    uint32_t symbolId() const { return sym; }

    /** @return the sub-parts (Concat nodes only). */
    const std::vector<RegexPtr> &parts() const { return subParts; }

    /** @return the repeated body (Repeat nodes only). */
    const RegexPtr &body() const { return repeatBody; }

    /** @return the repeat count (Repeat nodes only). */
    uint64_t count() const { return repeatCount; }

    /** Structural equivalence (the paper's adjacent-merge test). */
    bool equals(const Regex &other) const;

    /** @return the number of leaf symbols after full expansion. */
    uint64_t expandedLength() const;

    /** @return the fully expanded symbol string. */
    std::vector<uint32_t> expand() const;

    /** @return rendering like "(0 1 2 3 4)^25". */
    std::string toString() const;

    /** @return number of nodes in this tree. */
    size_t nodeCountRecursive() const;

    /**
     * Parse the toString() format back into a regex:
     *   expr  := term+
     *   term  := atom ['^' count]
     *   atom  := symbol-id | '(' expr ')'
     * @return the parsed regex, or nullptr on malformed input
     */
    static RegexPtr parse(const std::string &text);

  private:
    Regex() = default;

    Kind nodeKind = Kind::Symbol;
    uint32_t sym = 0;
    std::vector<RegexPtr> subParts;
    RegexPtr repeatBody;
    uint64_t repeatCount = 0;
};

} // namespace lpp::grammar

#endif // LPP_GRAMMAR_REGEX_HPP
