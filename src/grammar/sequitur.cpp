#include "grammar/sequitur.hpp"

#include "support/logging.hpp"

namespace lpp::grammar {

Sequitur::Sequitur()
{
    // Rule slot 0 is the start rule.
    uint32_t start = newRule();
    LPP_REQUIRE(start == 0, "start rule must be slot 0, got %u", start);
}

Sequitur::SymIdx
Sequitur::allocNode()
{
    if (!freeNodes.empty()) {
        SymIdx s = freeNodes.back();
        freeNodes.pop_back();
        pool[s] = Node{};
        return s;
    }
    pool.push_back(Node{});
    return static_cast<SymIdx>(pool.size() - 1);
}

void
Sequitur::freeNode(SymIdx s)
{
    freeNodes.push_back(s);
}

Sequitur::SymIdx
Sequitur::newSymbol(uint32_t value)
{
    SymIdx s = allocNode();
    pool[s].value = value;
    if (isRuleValue(value))
        ++rules[ruleOf(value)].refCount;
    return s;
}

uint32_t
Sequitur::newRule()
{
    uint32_t r;
    if (!freeRules.empty()) {
        r = freeRules.back();
        freeRules.pop_back();
    } else {
        rules.push_back(Rule{});
        r = static_cast<uint32_t>(rules.size() - 1);
    }
    SymIdx g = allocNode();
    pool[g].guard = true;
    pool[g].rule = r;
    pool[g].prev = g;
    pool[g].next = g;
    rules[r] = Rule{g, 0, true};
    ++liveRules;
    return r;
}

void
Sequitur::destroyRule(uint32_t r)
{
    freeNode(rules[r].guard);
    rules[r].live = false;
    rules[r].guard = nil;
    freeRules.push_back(r);
    --liveRules;
}

void
Sequitur::removeDigram(SymIdx s)
{
    SymIdx n = pool[s].next;
    if (isGuard(s) || n == nil || isGuard(n))
        return;
    auto it = digrams.find(key(pool[s].value, pool[n].value));
    if (it != digrams.end() && it->second == s)
        digrams.erase(it);
}

void
Sequitur::join(SymIdx left, SymIdx right)
{
    if (pool[left].next != nil)
        removeDigram(left);
    pool[left].next = right;
    pool[right].prev = left;
}

void
Sequitur::insertAfter(SymIdx at, SymIdx sym)
{
    join(sym, pool[at].next);
    join(at, sym);
}

void
Sequitur::destroySymbol(SymIdx s)
{
    // Unlink, clean both adjacent digrams, release any rule reference.
    join(pool[s].prev, pool[s].next);
    removeDigram(s); // digram (s, old next) — pool[s].next is unchanged
    if (isRuleValue(pool[s].value))
        --rules[ruleOf(pool[s].value)].refCount;
    freeNode(s);
}

bool
Sequitur::check(SymIdx s)
{
    SymIdx n = pool[s].next;
    if (isGuard(s) || isGuard(n))
        return false;

    uint64_t k = key(pool[s].value, pool[n].value);
    auto it = digrams.find(k);
    if (it == digrams.end()) {
        digrams.emplace(k, s);
        return false;
    }
    SymIdx m = it->second;
    if (m == s)
        return false;
    // Overlapping occurrences (e.g. "aaa") share a node: do nothing.
    if (pool[m].next == s || pool[s].next == m)
        return true;
    match(s, m);
    return true;
}

void
Sequitur::match(SymIdx s, SymIdx m)
{
    uint32_t r;
    SymIdx m_next = pool[m].next;
    if (isGuard(pool[m].prev) && isGuard(pool[m_next].next)) {
        // The matched digram is exactly an existing rule's body.
        r = pool[pool[m].prev].rule;
        substitute(s, r);
    } else {
        // Create a new rule from the digram and substitute both
        // occurrences.
        r = newRule();
        insertAfter(last(r), newSymbol(pool[m].value));
        insertAfter(last(r), newSymbol(pool[m_next].value));
        substitute(m, r);
        substitute(s, r);
        digrams[key(pool[first(r)].value,
                    pool[pool[first(r)].next].value)] = first(r);
    }

    // Rule utility: if the rule's first symbol references a rule that is
    // now used only once, inline it.
    SymIdx f = first(r);
    if (isRuleValue(pool[f].value) &&
        rules[ruleOf(pool[f].value)].refCount == 1) {
        expand(f);
    }
}

void
Sequitur::substitute(SymIdx s, uint32_t r)
{
    SymIdx q = pool[s].prev;
    destroySymbol(pool[q].next); // s
    destroySymbol(pool[q].next); // old s.next
    insertAfter(q, newSymbol(ruleFlag | r));
    if (!check(q))
        check(pool[q].next);
}

void
Sequitur::expand(SymIdx s)
{
    uint32_t r = ruleOf(pool[s].value);
    SymIdx left = pool[s].prev;
    SymIdx right = pool[s].next;
    SymIdx f = first(r);
    SymIdx l = last(r);

    removeDigram(s); // (s, right)
    join(left, right); // also removes (left, s)
    freeNode(s); // rule reference is consumed by the inlining
    destroyRule(r);

    join(left, f);
    join(l, right);
    if (!isGuard(l) && !isGuard(right))
        digrams[key(pool[l].value, pool[right].value)] = l;
}

void
Sequitur::append(uint32_t terminal)
{
    // Per-symbol hot path: debug-only. Terminals come from internal
    // phase IDs, never from user input.
    LPP_DCHECK((terminal & ruleFlag) == 0, "terminal %u too large",
               terminal);
    SymIdx sym = newSymbol(terminal);
    insertAfter(last(0), sym);
    if (!isGuard(pool[sym].prev))
        check(pool[sym].prev);
    ++appended;
}

void
Sequitur::append(const std::vector<uint32_t> &terminals)
{
    for (uint32_t t : terminals)
        append(t);
}

Grammar
Sequitur::extract() const
{
    Grammar g;
    // Dense-renumber live rules, start rule first.
    std::vector<int64_t> dense(rules.size(), -1);
    std::vector<uint32_t> order;
    for (uint32_t r = 0; r < rules.size(); ++r) {
        if (rules[r].live) {
            dense[r] = static_cast<int64_t>(order.size());
            order.push_back(r);
        }
    }
    g.rules.resize(order.size());
    for (size_t i = 0; i < order.size(); ++i) {
        uint32_t r = order[i];
        for (SymIdx s = pool[rules[r].guard].next; !pool[s].guard;
             s = pool[s].next) {
            uint32_t v = pool[s].value;
            if (isRuleValue(v)) {
                int64_t d = dense[ruleOf(v)];
                LPP_REQUIRE(d >= 0, "dangling rule reference %u",
                            ruleOf(v));
                g.rules[i].push_back(Grammar::ruleSym(
                    static_cast<size_t>(d)));
            } else {
                g.rules[i].push_back(static_cast<Grammar::Sym>(v));
            }
        }
    }
    return g;
}

} // namespace lpp::grammar
