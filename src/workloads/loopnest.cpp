/**
 * @file
 * Loopnest workload: the ROADMAP's perfectly regular nested-loop
 * program, built for the symbolic engine's closed form.
 *
 * Every phase is a lockstep unit-stride sweep — A as a flat vector, B
 * as a row-major 2D grid, C and D in lockstep — over pairwise disjoint
 * ranges, so every reuse distance has the closed form W - 1 + F
 * (staticloc/predict.hpp) and the static oracle must match the
 * measured histogram bit for bit. The prologue re-executes the same
 * sweep signatures the body repeats, exercising the engine's
 * cross-prologue reuse accounting.
 */

#include <algorithm>
#include <cmath>
#include <utility>

#include "workloads/registry.hpp"
#include "workloads/static_workload.hpp"

namespace lpp::workloads {

namespace {

struct Params
{
    uint64_t n;      //!< elements per vector (multiple of `rows`)
    uint64_t rows;   //!< B's 2D row count
    uint32_t rounds; //!< body repeats
};

Params
paramsFor(const WorkloadInput &in)
{
    Params p;
    p.rows = 25;
    p.n = p.rows *
          static_cast<uint64_t>(
              std::lround(80.0 * std::min(1.6, 0.9 + 0.1 * in.scale)));
    p.rounds = std::max<uint32_t>(
        6, static_cast<uint32_t>(std::lround(10.0 * in.scale)));
    return p;
}

class Loopnest : public LoopProgramWorkload
{
  public:
    std::string name() const override { return "loopnest"; }

    std::string
    description() const override
    {
        return "perfectly regular affine loop nests with a closed-form "
               "reuse profile";
    }

    std::string source() const override { return "Affine"; }

    WorkloadInput trainInput() const override { return {31, 1.0}; }

    WorkloadInput refInput() const override { return {32, 4.0}; }

  protected:
    BuiltProgram
    build(const WorkloadInput &input) const override
    {
        using staticloc::AffineExpr;
        Params p = paramsFor(input);
        const uint64_t cols = p.n / p.rows;
        const uint64_t m = p.n * 3 / 2;

        staticloc::LoopProgram prog;
        prog.name = "loopnest";
        prog.arrays = {{"A", p.n, 0},
                       {"B", p.n, 0},
                       {"C", m, 0},
                       {"D", m, 0}};
        prog.repeats = p.rounds;

        auto sweep_a = [&](const char *nm, uint32_t marker,
                           trace::BlockId block, uint32_t instrs) {
            staticloc::PhaseNest ph{nm, marker, block, instrs, {}};
            ph.nest.extents = {p.n};
            ph.nest.refs = {{0, AffineExpr::linear({1})}};
            return ph;
        };
        auto sweep_b = [&](const char *nm, uint32_t marker,
                           trace::BlockId block, uint32_t instrs) {
            staticloc::PhaseNest ph{nm, marker, block, instrs, {}};
            ph.nest.extents = {p.rows, cols};
            ph.nest.refs = {
                {1, AffineExpr::linear({static_cast<int64_t>(cols), 1})}};
            return ph;
        };
        auto sweep_cd = [&](const char *nm, uint32_t marker,
                            trace::BlockId block, uint32_t instrs) {
            staticloc::PhaseNest ph{nm, marker, block, instrs, {}};
            ph.nest.extents = {m};
            ph.nest.refs = {{2, AffineExpr::linear({1})},
                            {3, AffineExpr::linear({1})}};
            return ph;
        };

        prog.prologue = {sweep_a("initA", 0, 310, 12),
                         sweep_b("initB", 1, 311, 12),
                         sweep_cd("initCD", 2, 312, 14)};
        prog.body = {sweep_a("streamA", 3, 313, 10),
                     sweep_b("gridB", 4, 314, 10),
                     sweep_cd("combineCD", 5, 315, 12)};
        return bindProgram(std::move(prog));
    }
};

} // namespace

std::unique_ptr<Workload>
makeLoopnest()
{
    return std::make_unique<Loopnest>();
}

} // namespace lpp::workloads
