/**
 * @file
 * Vortex-like workload: object-oriented database (SPEC95 Int).
 *
 * The run first builds a database (insertions into index and heap
 * regions) and then serves query batches over it. The paper's Fig 5
 * shows the transition from insertion to query processing in the
 * sampled reuse trace, and notes that the order and mix of operations
 * is input dependent — phases are recognizable but their lengths are
 * not predictable.
 */

#include <algorithm>
#include <cmath>

#include "support/random.hpp"
#include "workloads/emitter.hpp"
#include "workloads/registry.hpp"
#include "workloads/workload.hpp"

namespace lpp::workloads {

namespace {

struct Params
{
    uint64_t records;
    uint32_t batches;
    uint64_t queriesPerBatch;
};

Params
paramsFor(const WorkloadInput &in)
{
    Params p;
    p.records = static_cast<uint64_t>(60000.0 * std::min(in.scale, 4.0));
    p.batches = std::max<uint32_t>(
        3, static_cast<uint32_t>(std::lround(6.0 * in.scale)));
    p.queriesPerBatch = 30000;
    return p;
}

class Vortex : public Workload
{
  public:
    std::string name() const override { return "vortex"; }

    std::string
    description() const override
    {
        return "an object-oriented database";
    }

    std::string source() const override { return "Spec95Int"; }

    WorkloadInput trainInput() const override { return {91, 1.0}; }

    WorkloadInput refInput() const override { return {92, 3.0}; }

    bool predictable() const override { return false; }

    std::vector<ArrayInfo>
    arrays(const WorkloadInput &input) const override
    {
        AddressSpace as;
        std::vector<ArrayInfo> v;
        build(input, as, v);
        return v;
    }

    void
    run(const WorkloadInput &input, trace::TraceSink &sink) const override
    {
        AddressSpace as;
        std::vector<ArrayInfo> arr;
        Params p = build(input, as, arr);
        const ArrayInfo &heap = arr[0], &index = arr[1], &log = arr[2];

        Emitter e(sink);
        Rng rng(input.seed);

        // Build phase: insertions grow the heap; index writes hash.
        e.marker(0); // manual: database construction
        e.block(901, 14);
        for (uint64_t r = 0; r < p.records; ++r) {
            e.block(911, 14);
            e.touch(heap, r % heap.elements);
            e.touch(index, (r * 2654435761ULL) % index.elements);
            if (r % 64 == 0)
                e.touch(log, (r / 64) % log.elements);
        }

        // Query batches with input-dependent mixes; some batches insert
        // more data (the paper: "construction and queries may come in
        // any order").
        for (uint32_t b = 0; b < p.batches; ++b) {
            if (rng.chance(0.3)) {
                e.marker(0); // manual: more construction
                e.block(901, 14);
                uint64_t extra = p.records / 4 + rng.below(p.records / 2);
                for (uint64_t r = 0; r < extra; ++r) {
                    e.block(911, 14);
                    e.touch(heap, rng.below(heap.elements));
                    e.touch(index,
                            (r * 2654435761ULL) % index.elements);
                }
            }
            e.marker(1); // manual: query batch
            e.block(902, 14);
            uint64_t queries =
                p.queriesPerBatch / 2 + rng.below(p.queriesPerBatch);
            for (uint64_t q = 0; q < queries; ++q) {
                e.block(912, 16);
                uint64_t key = rng.below(p.records);
                e.touch(index,
                        (key * 2654435761ULL) % index.elements);
                e.touch(heap, key % heap.elements);
                e.touch(heap, (key + 1) % heap.elements);
            }
        }
        e.end();
    }

  private:
    Params
    build(const WorkloadInput &input, AddressSpace &as,
          std::vector<ArrayInfo> &arr) const
    {
        Params p = paramsFor(input);
        arr.push_back(as.allocate("HEAP", p.records));
        arr.push_back(as.allocate("INDEX", 1 << 16));
        arr.push_back(as.allocate("LOG", 1 << 12));
        return p;
    }
};

} // namespace

std::unique_ptr<Workload>
makeVortex()
{
    return std::make_unique<Vortex>();
}

} // namespace lpp::workloads
