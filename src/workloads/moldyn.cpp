/**
 * @file
 * MolDyn-like workload: molecular dynamics simulation (CHAOS).
 *
 * Per time step: a position/velocity update sweep, then a force
 * computation over the neighbor list. Every few steps the neighbor list
 * is rebuilt by per-particle-group searches whose lengths depend on the
 * (randomly drifting) particle density — the paper's example of uneven
 * phases: the automatic analysis marks each group search as its own
 * phase while the programmer marks the whole rebuild (low Table 6
 * precision), and the varying lengths collapse strict coverage and
 * relaxed accuracy (Table 2: 13.49% / 13.27%).
 */

#include <algorithm>
#include <cmath>

#include "support/random.hpp"
#include "workloads/emitter.hpp"
#include "workloads/registry.hpp"
#include "workloads/workload.hpp"

namespace lpp::workloads {

namespace {

struct Params
{
    uint64_t particles;
    uint32_t steps;
    uint32_t rebuildEvery;
    uint32_t groups; //!< particle groups per rebuild
};

Params
paramsFor(const WorkloadInput &in)
{
    Params p;
    p.particles = static_cast<uint64_t>(
        1200.0 * std::min(2.0, 0.9 + 0.1 * in.scale));
    p.steps = std::max<uint32_t>(
        8, static_cast<uint32_t>(std::lround(24.0 * in.scale)));
    p.rebuildEvery = 4;
    p.groups = 8;
    return p;
}

class MolDyn : public Workload
{
  public:
    std::string name() const override { return "moldyn"; }

    std::string
    description() const override
    {
        return "molecular dynamics simulation";
    }

    std::string source() const override { return "CHAOS"; }

    WorkloadInput trainInput() const override { return {61, 1.0}; }

    WorkloadInput refInput() const override { return {62, 8.0}; }

    std::vector<ArrayInfo>
    arrays(const WorkloadInput &input) const override
    {
        AddressSpace as;
        std::vector<ArrayInfo> v;
        build(input, as, v);
        return v;
    }

    void
    run(const WorkloadInput &input, trace::TraceSink &sink) const override
    {
        AddressSpace as;
        std::vector<ArrayInfo> arr;
        Params p = build(input, as, arr);
        const ArrayInfo &pos = arr[0], &vel = arr[1], &force = arr[2],
                        &neigh = arr[3];

        Emitter e(sink);
        Rng rng(input.seed);

        // Average neighbors per particle, redrawn per rebuild per
        // group: the density drift that makes phase lengths uneven.
        std::vector<uint64_t> group_density(p.groups, 20);
        uint64_t neigh_used = p.particles * 20;
        uint64_t window = std::max<uint64_t>(
            32, p.particles / p.steps);
        auto window_base = [&](uint32_t t, const ArrayInfo &a) {
            return (static_cast<uint64_t>(t) * window) %
                   (a.elements - window);
        };

        for (uint32_t t = 0; t < p.steps; ++t) {
            e.marker(0); // manual: time step

            if (t % p.rebuildEvery == 0) {
                e.marker(1); // manual: neighbor-list rebuild (whole)
                uint64_t per_group = p.particles / p.groups;
                neigh_used = 0;
                for (uint32_t g = 0; g < p.groups; ++g) {
                    group_density[g] = 12 + rng.below(20);
                    e.block(601, 14); // group search entry
                    for (uint64_t i = 0; i < per_group; ++i) {
                        uint64_t particle = g * per_group + i;
                        // Search a density-sized window around the
                        // particle.
                        uint64_t w = group_density[g];
                        for (uint64_t k = 0; k < w; ++k) {
                            e.block(611, 10);
                            e.touch(pos,
                                    (particle + k) % p.particles);
                            e.touch(neigh, neigh_used % neigh.elements);
                            ++neigh_used;
                        }
                    }
                }
            }

            e.block(602, 14); // force computation over neighbor list
            for (uint64_t i = 0; i < window; ++i) {
                e.block(621, 10); // boundary window over VEL (update)
                e.touch(vel, window_base(t, vel) + i);
            }
            for (uint64_t i = 0; i < neigh_used; ++i) {
                e.block(612, 12);
                e.touch(neigh, i % neigh.elements);
                e.touch(force, (i / 20) % p.particles);
            }
            // Per-step density fluctuation: the force phase length
            // drifts every step, so its predictions are rarely exact.
            neigh_used +=
                rng.below(p.particles / 2) - p.particles / 4;
            neigh_used = std::clamp<uint64_t>(
                neigh_used, p.particles * 10, p.particles * 30);

            e.block(603, 14); // position/velocity update
            for (uint64_t i = 0; i < window; ++i) {
                e.block(622, 10); // window over NEIGH (force)
                e.touch(neigh, window_base(t, neigh) + i);
            }
            for (uint64_t i = 0; i < p.particles; ++i) {
                e.block(613, 40);
                e.touch(pos, i);
                e.touch(vel, i);
                e.touch(force, i);
            }
        }
        e.end();
    }

  private:
    Params
    build(const WorkloadInput &input, AddressSpace &as,
          std::vector<ArrayInfo> &arr) const
    {
        Params p = paramsFor(input);
        arr.push_back(as.allocate("POS", p.particles));
        arr.push_back(as.allocate("VEL", p.particles));
        arr.push_back(as.allocate("FORCE", p.particles));
        arr.push_back(as.allocate("NEIGH", p.particles * 40));
        return p;
    }
};

} // namespace

std::unique_ptr<Workload>
makeMolDyn()
{
    return std::make_unique<MolDyn>();
}

} // namespace lpp::workloads
