/**
 * @file
 * Internal convenience wrapper for emitting workload events.
 */

#ifndef LPP_WORKLOADS_EMITTER_HPP
#define LPP_WORKLOADS_EMITTER_HPP

#include <cstdint>

#include "trace/sink.hpp"
#include "workloads/address_space.hpp"

namespace lpp::workloads {

/** Thin sugar over a TraceSink for workload implementations. */
class Emitter
{
  public:
    explicit Emitter(trace::TraceSink &sink_) : sink(sink_) {}

    /** Execute basic block `b` retiring `instrs` instructions. */
    void
    block(trace::BlockId b, uint32_t instrs)
    {
        sink.onBlock(b, instrs);
    }

    /** Access element i of an array. */
    void
    touch(const ArrayInfo &a, uint64_t i)
    {
        sink.onAccess(a.at(i));
    }

    /** Fire a manual (programmer) phase marker. */
    void marker(uint32_t id) { sink.onManualMarker(id); }

    /** Finish the execution. */
    void end() { sink.onEnd(); }

  private:
    trace::TraceSink &sink;
};

} // namespace lpp::workloads

#endif // LPP_WORKLOADS_EMITTER_HPP
