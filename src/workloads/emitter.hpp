/**
 * @file
 * Internal convenience wrapper for emitting workload events.
 *
 * The emitter buffers data accesses and delivers them through
 * TraceSink::onAccessBatch, amortizing the per-access virtual dispatch
 * that dominated trace replay. Ordering is preserved exactly: the
 * buffer is flushed before any non-access event (block, marker, end),
 * and the destructor flushes whatever remains, so a trace that stops
 * mid-batch still delivers every access — batching is invisible except
 * in cost.
 *
 * The emitter is a trace::BatchSource: when constructed directly over a
 * trace::ValidatingSink it registers itself, so the validator can prove
 * at every non-access event that nothing is still buffered (it catches
 * producers that bypass the emitter and talk to the sink directly).
 */

#ifndef LPP_WORKLOADS_EMITTER_HPP
#define LPP_WORKLOADS_EMITTER_HPP

#include <cstdint>
#include <vector>

#include "trace/sink.hpp"
#include "trace/validator.hpp"
#include "workloads/address_space.hpp"

namespace lpp::workloads {

/** Thin sugar over a TraceSink for workload implementations. */
class Emitter : public trace::BatchSource
{
  public:
    /** Addresses buffered before a forced flush. */
    static constexpr size_t batchCapacity = 4096;

    explicit Emitter(trace::TraceSink &sink_) : sink(sink_)
    {
        buffer.reserve(batchCapacity);
        if (auto *v = dynamic_cast<trace::ValidatingSink *>(&sink_)) {
            v->watch(this);
            validator = v;
        }
    }

    /** Flushes any tail accesses a workload buffered but never sent. */
    ~Emitter() override
    {
        flush();
        if (validator)
            validator->unwatch(this);
    }

    Emitter(const Emitter &) = delete;
    Emitter &operator=(const Emitter &) = delete;

    /** Execute basic block `b` retiring `instrs` instructions. */
    void
    block(trace::BlockId b, uint32_t instrs)
    {
        flush();
        sink.onBlock(b, instrs);
    }

    /** Access element i of an array. */
    void
    touch(const ArrayInfo &a, uint64_t i)
    {
        buffer.push_back(a.at(i));
        if (buffer.size() >= batchCapacity)
            flush();
    }

    /** Access a run of `count` consecutive elements starting at i. */
    void
    touchRun(const ArrayInfo &a, uint64_t i, uint64_t count)
    {
        for (uint64_t k = 0; k < count; ++k)
            touch(a, i + k);
    }

    /** Fire a manual (programmer) phase marker. */
    void
    marker(uint32_t id)
    {
        flush();
        sink.onManualMarker(id);
    }

    /** Finish the execution. */
    void
    end()
    {
        flush();
        sink.onEnd();
    }

    /** Deliver buffered accesses now. */
    void
    flush()
    {
        if (!buffer.empty()) {
            sink.onAccessBatch(buffer.data(), buffer.size());
            buffer.clear();
        }
    }

    /** @return accesses buffered but not yet delivered (BatchSource). */
    size_t pendingAccesses() const override { return buffer.size(); }

  private:
    trace::TraceSink &sink;
    trace::ValidatingSink *validator = nullptr;
    std::vector<trace::Addr> buffer;
};

} // namespace lpp::workloads

#endif // LPP_WORKLOADS_EMITTER_HPP
