/**
 * @file
 * Workloads generated from an affine loop-nest IR.
 *
 * A LoopProgramWorkload is described once — as a staticloc::LoopProgram
 * bound to allocated arrays — and everything else derives from that
 * single description: run() walks the IR through an Emitter to produce
 * the event stream, arrays() returns the allocations, and loopProgram()
 * hands the IR to the static analyzer. The static oracle
 * (core/static_oracle.hpp) discovers these workloads through the
 * StaticallyDescribed interface and predicts their locality without
 * running them.
 */

#ifndef LPP_WORKLOADS_STATIC_WORKLOAD_HPP
#define LPP_WORKLOADS_STATIC_WORKLOAD_HPP

#include <vector>

#include "staticloc/ir.hpp"
#include "workloads/workload.hpp"

namespace lpp::workloads {

/** Interface of workloads that carry an affine IR of their runs. */
class StaticallyDescribed
{
  public:
    virtual ~StaticallyDescribed() = default;

    /**
     * @return the IR of the run `input` generates; element identities
     *         (StaticArray::baseElement) match the addresses the run
     *         emits, so static and measured locality are comparable.
     */
    virtual staticloc::LoopProgram
    loopProgram(const WorkloadInput &input) const = 0;
};

/** A LoopProgram bound to the arrays a concrete run allocates. */
struct BuiltProgram
{
    staticloc::LoopProgram program;
    std::vector<ArrayInfo> arrays; //!< aligned with program.arrays
};

/**
 * Base class: implement build() and the metadata; run/arrays/
 * loopProgram are all derived from the one description.
 */
class LoopProgramWorkload : public Workload, public StaticallyDescribed
{
  public:
    std::vector<ArrayInfo>
    arrays(const WorkloadInput &input) const override
    {
        return build(input).arrays;
    }

    staticloc::LoopProgram
    loopProgram(const WorkloadInput &input) const override
    {
        return build(input).program;
    }

    void run(const WorkloadInput &input,
             trace::TraceSink &sink) const override;

  protected:
    /** Construct the IR + allocations for one input. Deterministic. */
    virtual BuiltProgram build(const WorkloadInput &input) const = 0;
};

/**
 * Bind a validated LoopProgram to page-aligned allocations: allocates
 * one array per StaticArray (filling in baseElement from the real
 * base address) and returns the pair. Helper for build()
 * implementations.
 */
BuiltProgram bindProgram(staticloc::LoopProgram program);

/** Emit the exact event stream of `built.program` into `sink`. */
void runProgram(const BuiltProgram &built, trace::TraceSink &sink);

} // namespace lpp::workloads

#endif // LPP_WORKLOADS_STATIC_WORKLOAD_HPP
