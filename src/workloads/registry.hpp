/**
 * @file
 * Workload registry: creation by name and the full benchmark suite.
 */

#ifndef LPP_WORKLOADS_REGISTRY_HPP
#define LPP_WORKLOADS_REGISTRY_HPP

#include <memory>
#include <string>
#include <vector>

#include "workloads/workload.hpp"

namespace lpp::workloads {

/** @return a workload by name, or nullptr for unknown names. */
std::unique_ptr<Workload> create(const std::string &name);

/** @return the names of every workload, in Table 1 order. */
std::vector<std::string> allNames();

/** @return the names of the seven prediction-amenable workloads. */
std::vector<std::string> predictableNames();

/**
 * @return the names of the affine workloads that carry a static IR
 *         (workloads/static_workload.hpp) for the zero-execution
 *         oracle. Kept out of allNames(): the paper's tables and their
 *         tests enumerate exactly the nine Table 1 programs.
 */
std::vector<std::string> staticNames();

} // namespace lpp::workloads

#endif // LPP_WORKLOADS_REGISTRY_HPP
