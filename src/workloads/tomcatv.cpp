/**
 * @file
 * Tomcatv-like workload: vectorized mesh generation (SPEC95 Fp).
 *
 * The structure the paper describes (Section 2.1): a sequence of time
 * steps, each with five substeps — preparing data, computing residuals,
 * solving two tridiagonal systems, and adding corrections. Each substep
 * sweeps its own grid arrays, so the working set changes abruptly at
 * every substep boundary. Two mechanisms make the memory behaviour
 * detectable and give the paper's Table 2 shape:
 *
 *  - every substep starts with a short sweep over a *rotating window*
 *    of the previous substep's array (boundary smoothing over the data
 *    the previous kernel just produced). A given datum falls in the
 *    window about once per run, so its reuse-distance sub-trace is flat
 *    (one cross-step reuse per time step) with one rare dip — exactly
 *    the abrupt change wavelet filtering keeps;
 *  - the correction substep carries a convergence-driven extra pass
 *    whose extent shrinks in rare jumps, so its length is inconsistent:
 *    strict prediction loses that coverage while relaxed accuracy stays
 *    near 100% (paper Table 2).
 */

#include <algorithm>
#include <cmath>

#include "support/random.hpp"
#include "workloads/emitter.hpp"
#include "workloads/registry.hpp"
#include "workloads/workload.hpp"

namespace lpp::workloads {

namespace {

struct Params
{
    uint64_t n;        //!< grid elements per array
    uint32_t steps;    //!< time steps
    uint32_t plateau;  //!< steps between convergence jumps
    uint64_t window;   //!< rotating boundary-window length
};

Params
paramsFor(const WorkloadInput &in)
{
    Params p;
    p.n = static_cast<uint64_t>(6000.0 *
                                std::min(1.5, 0.9 + 0.1 * in.scale));
    p.steps = std::max<uint32_t>(
        6, static_cast<uint32_t>(std::lround(30.0 * in.scale)));
    // Convergence jumps are rare but must occur during training too.
    p.plateau = std::max<uint32_t>(3, p.steps / 4);
    // One window visit per datum per run: advance == length == n/steps.
    p.window = std::max<uint64_t>(32, p.n / p.steps);
    return p;
}

class Tomcatv : public Workload
{
  public:
    std::string name() const override { return "tomcatv"; }

    std::string
    description() const override
    {
        return "vectorized mesh generation";
    }

    std::string source() const override { return "Spec95Fp"; }

    WorkloadInput trainInput() const override { return {11, 1.0}; }

    WorkloadInput refInput() const override { return {12, 8.0}; }

    std::vector<ArrayInfo>
    arrays(const WorkloadInput &input) const override
    {
        AddressSpace as;
        std::vector<ArrayInfo> v;
        build(input, as, v);
        return v;
    }

    void
    run(const WorkloadInput &input, trace::TraceSink &sink) const override
    {
        AddressSpace as;
        std::vector<ArrayInfo> arr;
        Params p = build(input, as, arr);
        const ArrayInfo &x = arr[0], &y = arr[1], &rx = arr[2],
                        &ry = arr[3], &d = arr[4], &dd = arr[5],
                        &aa = arr[6], &res = arr[7];

        Emitter e(sink);
        Rng rng(input.seed);

        // Correction extent over the residual array; shrinks in rare
        // convergence jumps.
        uint64_t extent = res.elements * 9 / 10;

        auto window_base = [&p](uint32_t t, const ArrayInfo &a) {
            return (static_cast<uint64_t>(t) * p.window) %
                   (a.elements - p.window);
        };

        for (uint32_t t = 0; t < p.steps; ++t) {
            e.marker(0); // manual: time step (substep 1)
            e.block(101, 14); // substep 1: prepare data (X, Y)
            for (uint64_t i = 0; i < p.window; ++i) {
                e.block(121, 10); // boundary window over AA (substep 5)
                e.touch(aa, window_base(t, aa) + i);
            }
            for (uint64_t i = 0; i < p.n; ++i) {
                e.block(111, 12);
                e.touch(x, i);
                e.touch(y, i);
            }

            e.block(102, 14); // substep 2: residuals (RX, RY)
            for (uint64_t i = 0; i < p.window; ++i) {
                e.block(122, 10); // window over X
                e.touch(x, window_base(t, x) + i);
            }
            for (uint32_t pass = 0; pass < 2; ++pass) {
                for (uint64_t i = 0; i < p.n; ++i) {
                    e.block(112, 12);
                    e.touch(rx, i);
                    e.touch(ry, i);
                }
            }

            e.marker(1); // manual: residual done (substep 3)
            e.block(103, 14); // substep 3: tridiagonal forward (D)
            for (uint64_t i = 0; i < p.window; ++i) {
                e.block(123, 10); // window over RX
                e.touch(rx, window_base(t, rx) + i);
            }
            for (uint32_t pass = 0; pass < 3; ++pass) {
                for (uint64_t i = 0; i < p.n; ++i) {
                    e.block(113, 10);
                    e.touch(d, i);
                }
            }

            e.marker(2); // manual: first solve done (substep 4)
            e.block(104, 14); // substep 4: tridiagonal backward (DD)
            for (uint64_t i = 0; i < p.window; ++i) {
                e.block(124, 10); // window over D
                e.touch(d, window_base(t, d) + i);
            }
            for (uint32_t pass = 0; pass < 3; ++pass) {
                for (uint64_t i = p.n; i > 0; --i) {
                    e.block(114, 10);
                    e.touch(dd, i - 1);
                    e.touch(ry, i - 1);
                }
            }

            e.block(105, 14); // substep 5: add corrections (AA + RES)
            for (uint64_t i = 0; i < p.window; ++i) {
                e.block(125, 10); // window over DD
                e.touch(dd, window_base(t, dd) + i);
            }
            for (uint64_t i = 0; i < p.n; ++i) {
                e.block(115, 10);
                e.touch(aa, i);
            }
            for (uint32_t pass = 0; pass < 4; ++pass) {
                for (uint64_t i = 0; i < 2048; ++i) {
                    e.block(117, 8); // cache-resident boundary kernel
                    e.touch(aa, i);
                }
            }
            // Convergence-driven residual smoothing over [0, extent).
            for (uint64_t i = 0; i < extent; ++i) {
                e.block(116, 10);
                e.touch(res, i);
            }
            if ((t + 1) % p.plateau == 0) {
                uint64_t drop =
                    res.elements / 64 + rng.below(res.elements / 128);
                extent = std::max(extent - drop, res.elements / 2);
            }
        }
        e.end();
    }

  private:
    Params
    build(const WorkloadInput &input, AddressSpace &as,
          std::vector<ArrayInfo> &arr) const
    {
        Params p = paramsFor(input);
        for (const char *name : {"X", "Y", "RX", "RY", "D", "DD", "AA"})
            arr.push_back(as.allocate(name, p.n));
        arr.push_back(as.allocate("RES", 2 * p.n));
        return p;
    }
};

} // namespace

std::unique_ptr<Workload>
makeTomcatv()
{
    return std::make_unique<Tomcatv>();
}

} // namespace lpp::workloads
