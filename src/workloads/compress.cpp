/**
 * @file
 * Compress-like workload: the UNIX compress utility shape (SPEC95 Int).
 *
 * The benchmark repeatedly compresses and decompresses a buffer. Each
 * cycle runs two long phases — compress (input buffer + dictionary
 * probing) and decompress (output buffer + dictionary) — plus a short
 * setup phase, giving the paper's 52 executions of 4 phases with
 * perfectly repeating lengths. Dictionary probes concentrate on a
 * per-cycle hot subset; a dictionary datum hot in one cycle and cold in
 * the next changes reuse behaviour abruptly at the cycle boundary,
 * which is what phase detection keys on.
 */

#include <algorithm>
#include <cmath>

#include "support/random.hpp"
#include "workloads/emitter.hpp"
#include "workloads/registry.hpp"
#include "workloads/workload.hpp"

namespace lpp::workloads {

namespace {

struct Params
{
    uint64_t bufLen;  //!< buffer elements per cycle
    uint64_t dictLen; //!< dictionary elements
    uint32_t cycles;  //!< compress/decompress cycles
};

Params
paramsFor(const WorkloadInput &in)
{
    Params p;
    p.bufLen = static_cast<uint64_t>(4500.0 * in.scale);
    p.dictLen = 1 << 14;
    p.cycles = 26;
    return p;
}

class Compress : public Workload
{
  public:
    std::string name() const override { return "compress"; }

    std::string
    description() const override
    {
        return "common UNIX compression utility";
    }

    std::string source() const override { return "Spec95Int"; }

    WorkloadInput trainInput() const override { return {51, 1.0}; }

    WorkloadInput refInput() const override { return {52, 40.0}; }

    std::vector<ArrayInfo>
    arrays(const WorkloadInput &input) const override
    {
        AddressSpace as;
        std::vector<ArrayInfo> v;
        build(input, as, v);
        return v;
    }

    void
    run(const WorkloadInput &input, trace::TraceSink &sink) const override
    {
        AddressSpace as;
        std::vector<ArrayInfo> arr;
        Params p = build(input, as, arr);
        const ArrayInfo &inbuf = arr[0], &outbuf = arr[1],
                        &dict = arr[2], &codes = arr[3],
                        &table = arr[4];

        Emitter e(sink);
        Rng rng(input.seed);

        uint64_t window = std::max<uint64_t>(
            32, codes.elements / p.cycles);
        auto window_base = [&](uint32_t c, const ArrayInfo &a,
                               uint64_t shift) {
            return (static_cast<uint64_t>(c) * window + shift) %
                   (a.elements - window);
        };

        for (uint32_t c = 0; c < p.cycles; ++c) {
            // Per-cycle hot dictionary region (data-dependent hashing).
            uint64_t hot_base = rng.below(p.dictLen / 2);
            uint64_t hot_len = p.dictLen / 8;

            e.marker(0); // manual: cycle setup (code tables)
            e.block(501, 14);
            for (uint64_t i = 0; i < codes.elements; ++i) {
                e.block(511, 8);
                e.touch(codes, i);
            }

            e.marker(1); // manual: compress
            e.block(502, 14);
            for (uint64_t i = 0; i < window; ++i) {
                e.block(521, 10); // window over TABLE (decompress)
                e.touch(table, window_base(c, table, 0) + i);
            }
            for (uint64_t i = 0; i < p.bufLen; ++i) {
                e.block(512, 14);
                e.touch(inbuf, i);
                // Two dictionary probes: one hot, one cold-ish.
                e.touch(dict, hot_base + (i * 31) % hot_len);
                e.touch(dict, (i * 97) % p.dictLen);
            }

            e.marker(2); // manual: decompress
            e.block(503, 14);
            for (uint64_t i = 0; i < window; ++i) {
                e.block(522, 10); // window over CODES (setup)
                e.touch(codes, window_base(c, codes, 0) + i);
            }
            for (uint64_t i = 0; i < p.bufLen; ++i) {
                e.block(513, 12);
                e.touch(outbuf, i);
                e.touch(dict, hot_base + (i * 13) % hot_len);
                e.touch(table, (i * 7) % table.elements);
            }

            e.marker(3); // manual: verify round-trip
            e.block(504, 14);
            for (uint64_t i = 0; i < window; ++i) {
                e.block(523, 10); // window over CODES, opposite phase
                e.touch(codes,
                        window_base(c, codes, codes.elements / 2) + i);
            }
            for (uint64_t i = 0; i < p.bufLen / 2; ++i) {
                e.block(514, 10);
                e.touch(inbuf, 2 * i);
                e.touch(outbuf, 2 * i);
            }
        }
        e.end();
    }

  private:
    Params
    build(const WorkloadInput &input, AddressSpace &as,
          std::vector<ArrayInfo> &arr) const
    {
        Params p = paramsFor(input);
        arr.push_back(as.allocate("INBUF", p.bufLen));
        arr.push_back(as.allocate("OUTBUF", p.bufLen));
        arr.push_back(as.allocate("DICT", p.dictLen));
        arr.push_back(as.allocate("CODES", 4096));
        arr.push_back(as.allocate("TABLE", 8192));
        return p;
    }
};

} // namespace

std::unique_ptr<Workload>
makeCompress()
{
    return std::make_unique<Compress>();
}

} // namespace lpp::workloads
