/**
 * @file
 * Workload interface: the synthetic-benchmark stand-in for the paper's
 * SPEC95/SPEC2K/CHAOS binaries.
 *
 * A workload is a deterministic program over named arrays, expressed as
 * basic blocks that issue memory accesses. Running one streams the same
 * events ATOM instrumentation produced on Alpha: basic-block executions
 * with instruction counts, data accesses with byte addresses, and
 * programmer-inserted manual markers (the Table 6 ground truth). Every
 * workload reproduces the memory-behaviour *structure* the paper
 * describes for its namesake — recurring working sets separated by
 * abrupt reuse changes, phase length scaling with input, and where the
 * paper says so (MolDyn, Gcc, Vortex), inconsistent phase behaviour.
 */

#ifndef LPP_WORKLOADS_WORKLOAD_HPP
#define LPP_WORKLOADS_WORKLOAD_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/sink.hpp"
#include "workloads/address_space.hpp"

namespace lpp::workloads {

/** Input of one run: everything that sizes and seeds the execution. */
struct WorkloadInput
{
    uint64_t seed = 1;  //!< seeds all data-dependent behaviour
    double scale = 1.0; //!< scales data sizes and iteration counts
};

/** Abstract benchmark program. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** @return the short name (e.g. "tomcatv"). */
    virtual std::string name() const = 0;

    /** @return the one-line description (paper Table 1). */
    virtual std::string description() const = 0;

    /** @return the suite the namesake came from (paper Table 1). */
    virtual std::string source() const = 0;

    /** @return the input used for phase detection (training). */
    virtual WorkloadInput trainInput() const = 0;

    /** @return the input used for phase prediction (reference). */
    virtual WorkloadInput refInput() const = 0;

    /** Run one full execution into `sink`. Deterministic per input. */
    virtual void run(const WorkloadInput &input,
                     trace::TraceSink &sink) const = 0;

    /** @return the arrays a run with `input` allocates, in order. */
    virtual std::vector<ArrayInfo>
    arrays(const WorkloadInput &input) const = 0;

    /**
     * Whether the paper found this program's phase behaviour consistent
     * enough for locality phase prediction (Gcc and Vortex are not).
     */
    virtual bool predictable() const { return true; }
};

} // namespace lpp::workloads

#endif // LPP_WORKLOADS_WORKLOAD_HPP
