/**
 * @file
 * Simulated address space: named array allocation with page alignment.
 */

#ifndef LPP_WORKLOADS_ADDRESS_SPACE_HPP
#define LPP_WORKLOADS_ADDRESS_SPACE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "trace/types.hpp"

namespace lpp::workloads {

/** Metadata of one allocated array. */
struct ArrayInfo
{
    std::string name;       //!< source-level array name
    trace::Addr base = 0;   //!< base byte address
    uint64_t elements = 0;  //!< element count
    uint32_t elemBytes = 8; //!< element size

    /** @return byte address of element i. */
    trace::Addr
    at(uint64_t i) const
    {
        return base + i * elemBytes;
    }

    /** @return one past the last byte. */
    trace::Addr end() const { return base + elements * elemBytes; }

    /** @return whether `addr` falls inside this array. */
    bool
    contains(trace::Addr addr) const
    {
        return addr >= base && addr < end();
    }
};

/**
 * Bump allocator over a simulated address space. Arrays are page
 * aligned and padded so distinct arrays never share a cache block.
 */
class AddressSpace
{
  public:
    /** @param base first address handed out. */
    explicit AddressSpace(trace::Addr base = 0x10000);

    /**
     * Allocate a named array.
     * @param name source-level name
     * @param elements element count
     * @param elem_bytes element size (default 8-byte words)
     */
    ArrayInfo allocate(const std::string &name, uint64_t elements,
                       uint32_t elem_bytes = 8);

    /** @return every allocation, in order. */
    const std::vector<ArrayInfo> &allArrays() const { return arrayList; }

    /** @return the allocation containing `addr`, or nullptr. */
    const ArrayInfo *find(trace::Addr addr) const;

  private:
    trace::Addr next;
    std::vector<ArrayInfo> arrayList;
};

} // namespace lpp::workloads

#endif // LPP_WORKLOADS_ADDRESS_SPACE_HPP
