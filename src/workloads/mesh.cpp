/**
 * @file
 * Mesh-like workload: dynamic unstructured-mesh simulation (CHAOS).
 *
 * Each smoothing iteration sweeps the edge list and indirectly accesses
 * the two endpoint nodes of every edge. The paper's Mesh is the one
 * program whose detection and prediction runs have the same length: the
 * prediction input is the same mesh with *sorted* edges, changing
 * locality but not phase structure. Every R iterations a fraction of
 * edges is rewired (the mesh is dynamic), which changes the reuse
 * behaviour of the affected node datums — the rare abrupt changes phase
 * detection needs.
 */

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "support/random.hpp"
#include "workloads/emitter.hpp"
#include "workloads/registry.hpp"
#include "workloads/workload.hpp"

namespace lpp::workloads {

namespace {

struct Params
{
    uint64_t nodes;
    uint64_t edges;
    uint32_t iterations;
    uint32_t rewireEvery;
    bool sortedEdges;
};

Params
paramsFor(const WorkloadInput &in)
{
    Params p;
    p.nodes = 3000;
    p.edges = 9000;
    p.iterations = 60;
    p.rewireEvery = 10;
    // The prediction input is the sorted-edge version of the same mesh.
    p.sortedEdges = in.scale > 1.0;
    return p;
}

class Mesh : public Workload
{
  public:
    std::string name() const override { return "mesh"; }

    std::string
    description() const override
    {
        return "dynamic mesh structure simulation";
    }

    std::string source() const override { return "CHAOS"; }

    WorkloadInput trainInput() const override { return {71, 1.0}; }

    WorkloadInput refInput() const override { return {71, 2.0}; }

    std::vector<ArrayInfo>
    arrays(const WorkloadInput &input) const override
    {
        AddressSpace as;
        std::vector<ArrayInfo> v;
        build(input, as, v);
        return v;
    }

    void
    run(const WorkloadInput &input, trace::TraceSink &sink) const override
    {
        AddressSpace as;
        std::vector<ArrayInfo> arr;
        Params p = build(input, as, arr);
        const ArrayInfo &nodes = arr[0], &edges = arr[1],
                        &edgeval = arr[2], &nodeval = arr[3];

        Emitter e(sink);
        // The mesh itself depends only on the seed, not on the input
        // variant: both runs use the same mesh.
        Rng mesh_rng(input.seed);

        // Endpoint tables (simulated indirection).
        std::vector<uint64_t> from(p.edges), to(p.edges);
        for (uint64_t i = 0; i < p.edges; ++i) {
            from[i] = mesh_rng.below(p.nodes);
            to[i] = mesh_rng.below(p.nodes);
        }
        std::vector<uint64_t> order(p.edges);
        std::iota(order.begin(), order.end(), 0);
        if (p.sortedEdges) {
            std::sort(order.begin(), order.end(),
                      [&](uint64_t a, uint64_t b) {
                          return from[a] < from[b];
                      });
        }

        uint64_t window = std::max<uint64_t>(
            32, p.nodes / p.iterations);
        auto window_base = [&](uint32_t it, const ArrayInfo &a) {
            return (static_cast<uint64_t>(it) * window) %
                   (a.elements - window);
        };

        for (uint32_t it = 0; it < p.iterations; ++it) {
            e.marker(0); // manual: smoothing iteration

            e.block(701, 14); // gather: edge sweep, indirect nodes
            for (uint64_t k = 0; k < window; ++k) {
                e.block(721, 10); // boundary window over NODEVAL
                e.touch(nodeval, window_base(it, nodeval) + k);
            }
            for (uint64_t k = 0; k < p.edges; ++k) {
                uint64_t ed = order[k];
                e.block(711, 14);
                e.touch(edges, ed);
                e.touch(nodes, from[ed]);
                e.touch(nodes, to[ed]);
                e.touch(edgeval, ed);
            }

            e.block(702, 14); // scatter: node relaxation
            for (uint64_t k = 0; k < window; ++k) {
                e.block(722, 10); // window over EDGEVAL (gather)
                e.touch(edgeval, window_base(it, edgeval) + k);
            }
            for (uint64_t i = 0; i < p.nodes; ++i) {
                e.block(712, 10);
                e.touch(nodes, i);
                e.touch(nodeval, i);
            }

            // Mesh-quality check over a fixed-size edge slice; every
            // rewireEvery-th iteration it also rewires the slice
            // (dynamic mesh). The slice length is constant so phase
            // lengths repeat exactly; only the *data* changes rarely.
            e.block(703, 14);
            uint64_t slice = p.edges / 100;
            uint64_t base = (static_cast<uint64_t>(it) * slice) %
                            (p.edges - slice);
            bool rewire = (it + 1) % p.rewireEvery == 0;
            for (uint64_t k = 0; k < slice; ++k) {
                uint64_t ed = base + k;
                if (rewire) {
                    from[ed] = mesh_rng.below(p.nodes);
                    to[ed] = mesh_rng.below(p.nodes);
                }
                e.block(713, 12);
                e.touch(edges, ed);
                e.touch(nodes, from[ed]);
            }
        }
        e.end();
    }

  private:
    Params
    build(const WorkloadInput &input, AddressSpace &as,
          std::vector<ArrayInfo> &arr) const
    {
        Params p = paramsFor(input);
        arr.push_back(as.allocate("NODES", p.nodes));
        arr.push_back(as.allocate("EDGES", p.edges));
        arr.push_back(as.allocate("EDGEVAL", p.edges));
        arr.push_back(as.allocate("NODEVAL", p.nodes));
        return p;
    }
};

} // namespace

std::unique_ptr<Workload>
makeMesh()
{
    return std::make_unique<Mesh>();
}

} // namespace lpp::workloads
