/**
 * @file
 * Applu-like workload: five coupled nonlinear PDEs via SSOR (SPEC2K Fp).
 *
 * Many short time steps, each with five substeps (rhs, lower-jacobian,
 * lower-solve, upper-jacobian, upper-solve) over per-substep grid
 * arrays — the paper's Applu has the largest leaf-phase count (645 in
 * detection) with the smallest leaf size. Each substep opens with a
 * rotating boundary window over the previous substep's array (the
 * detectable rare per-datum change). A small relaxation pass in rhs
 * shrinks in rare jumps, so strict prediction coverage stays high but
 * below 100% (paper: 98.89%).
 */

#include <algorithm>
#include <cmath>

#include "support/random.hpp"
#include "workloads/emitter.hpp"
#include "workloads/registry.hpp"
#include "workloads/workload.hpp"

namespace lpp::workloads {

namespace {

struct Params
{
    uint64_t n;
    uint32_t steps;
    uint32_t plateau;
    uint64_t window;
};

Params
paramsFor(const WorkloadInput &in)
{
    Params p;
    p.n = static_cast<uint64_t>(2500.0 *
                                std::min(1.3, 0.95 + 0.05 * in.scale));
    p.steps = std::max<uint32_t>(
        8, static_cast<uint32_t>(std::lround(40.0 * in.scale)));
    p.plateau = std::max<uint32_t>(4, p.steps / 5);
    p.window = std::max<uint64_t>(32, p.n / p.steps);
    return p;
}

class Applu : public Workload
{
  public:
    std::string name() const override { return "applu"; }

    std::string
    description() const override
    {
        return "solving five coupled nonlinear PDE's";
    }

    std::string source() const override { return "Spec2KFp"; }

    WorkloadInput trainInput() const override { return {31, 1.0}; }

    WorkloadInput refInput() const override { return {32, 20.0}; }

    std::vector<ArrayInfo>
    arrays(const WorkloadInput &input) const override
    {
        AddressSpace as;
        std::vector<ArrayInfo> v;
        build(input, as, v);
        return v;
    }

    void
    run(const WorkloadInput &input, trace::TraceSink &sink) const override
    {
        AddressSpace as;
        std::vector<ArrayInfo> arr;
        Params p = build(input, as, arr);
        const ArrayInfo &u = arr[0], &rsd = arr[1], &a = arr[2],
                        &b = arr[3], &c = arr[4], &d = arr[5],
                        &res = arr[6];

        Emitter e(sink);
        Rng rng(input.seed);
        uint64_t extent = res.elements * 3 / 4;

        auto window_base = [&p](uint32_t t, const ArrayInfo &ai) {
            return (static_cast<uint64_t>(t) * p.window) %
                   (ai.elements - p.window);
        };

        for (uint32_t t = 0; t < p.steps; ++t) {
            e.marker(0); // manual: SSOR iteration

            e.block(301, 14); // rhs (U, RSD)
            for (uint64_t i = 0; i < p.window; ++i) {
                e.block(321, 10); // window over D (buts)
                e.touch(d, window_base(t, d) + i);
            }
            for (uint64_t i = 0; i < p.n; ++i) {
                e.block(311, 12);
                e.touch(u, i);
                e.touch(rsd, i);
            }
            // Small relaxation pass with rare convergence jumps.
            for (uint64_t i = 0; i < extent; ++i) {
                e.block(316, 10);
                e.touch(res, i);
            }
            if ((t + 1) % p.plateau == 0) {
                extent = std::max(extent - (res.elements / 64 +
                                            rng.below(res.elements / 128)),
                                  res.elements / 2);
            }

            e.marker(1);
            e.block(302, 14); // jacld (A)
            for (uint64_t i = 0; i < p.window; ++i) {
                e.block(322, 10); // window over U
                e.touch(u, window_base(t, u) + i);
            }
            for (uint32_t pass = 0; pass < 2; ++pass) {
                for (uint64_t i = 0; i < p.n; ++i) {
                    e.block(312, 14);
                    e.touch(a, i);
                    e.touch(u, i);
                }
            }

            e.marker(2);
            e.block(303, 14); // blts (B, forward order)
            for (uint64_t i = 0; i < p.window; ++i) {
                e.block(323, 10); // window over A
                e.touch(a, window_base(t, a) + i);
            }
            for (uint32_t pass = 0; pass < 2; ++pass) {
                for (uint64_t i = 0; i < p.n; ++i) {
                    e.block(313, 12);
                    e.touch(b, i);
                    e.touch(a, i);
                    e.touch(rsd, i);
                }
            }

            e.marker(3);
            e.block(304, 14); // jacu (C, backward order)
            for (uint64_t i = 0; i < p.window; ++i) {
                e.block(324, 10); // window over B
                e.touch(b, window_base(t, b) + i);
            }
            for (uint32_t pass = 0; pass < 2; ++pass) {
                for (uint64_t i = p.n; i > 0; --i) {
                    e.block(314, 14);
                    e.touch(c, i - 1);
                    e.touch(b, i - 1);
                }
            }

            e.marker(4);
            e.block(305, 14); // buts (D, backward order)
            for (uint64_t i = 0; i < p.window; ++i) {
                e.block(325, 10); // window over C
                e.touch(c, window_base(t, c) + i);
            }
            for (uint32_t pass = 0; pass < 2; ++pass) {
                for (uint64_t i = p.n; i > 0; --i) {
                    e.block(315, 12);
                    e.touch(d, i - 1);
                    e.touch(c, i - 1);
                    e.touch(a, i - 1);
                    e.touch(rsd, i - 1);
                }
            }
        }
        e.end();
    }

  private:
    Params
    build(const WorkloadInput &input, AddressSpace &as,
          std::vector<ArrayInfo> &arr) const
    {
        Params p = paramsFor(input);
        for (const char *name : {"U", "RSD", "A", "B", "C", "D"})
            arr.push_back(as.allocate(name, p.n));
        arr.push_back(as.allocate("RES", p.n / 2));
        return p;
    }
};

} // namespace

std::unique_ptr<Workload>
makeApplu()
{
    return std::make_unique<Applu>();
}

} // namespace lpp::workloads
