/**
 * @file
 * Stencil3 workload: an in-place 3-point stencil with a reduction.
 *
 * Each time step smooths A through the overlapping window A[i], A[i+1],
 * A[i+2] (writing B[i]) and then reduces B. The overlapping references
 * put it outside the symbolic engine's lockstep-sweep class, but the
 * body rounds are perfectly periodic — the periodic engine simulates
 * the prologue plus three rounds and extrapolates, still exactly
 * (staticloc/predict.hpp).
 */

#include <algorithm>
#include <cmath>
#include <utility>

#include "workloads/registry.hpp"
#include "workloads/static_workload.hpp"

namespace lpp::workloads {

namespace {

struct Params
{
    uint64_t n;     //!< grid points
    uint32_t steps; //!< time steps (body repeats)
};

Params
paramsFor(const WorkloadInput &in)
{
    Params p;
    p.n = static_cast<uint64_t>(
        std::lround(2400.0 * std::min(1.6, 0.9 + 0.1 * in.scale)));
    p.steps = std::max<uint32_t>(
        8, static_cast<uint32_t>(std::lround(12.0 * in.scale)));
    return p;
}

class Stencil3 : public LoopProgramWorkload
{
  public:
    std::string name() const override { return "stencil3"; }

    std::string
    description() const override
    {
        return "in-place 3-point stencil with per-step reduction";
    }

    std::string source() const override { return "Affine"; }

    WorkloadInput trainInput() const override { return {41, 1.0}; }

    WorkloadInput refInput() const override { return {42, 4.0}; }

  protected:
    BuiltProgram
    build(const WorkloadInput &input) const override
    {
        using staticloc::AffineExpr;
        Params p = paramsFor(input);

        staticloc::LoopProgram prog;
        prog.name = "stencil3";
        prog.arrays = {{"A", p.n, 0}, {"B", p.n, 0}};
        prog.repeats = p.steps;

        staticloc::PhaseNest init_a{"initA", 0, 320, 12, {}};
        init_a.nest.extents = {p.n};
        init_a.nest.refs = {{0, AffineExpr::linear({1})}};

        staticloc::PhaseNest init_b{"initB", 1, 321, 12, {}};
        init_b.nest.extents = {p.n};
        init_b.nest.refs = {{1, AffineExpr::linear({1})}};

        staticloc::PhaseNest smooth{"smooth", 2, 322, 16, {}};
        smooth.nest.extents = {p.n - 2};
        smooth.nest.refs = {{0, AffineExpr::linear({1}, 0)},
                            {0, AffineExpr::linear({1}, 1)},
                            {0, AffineExpr::linear({1}, 2)},
                            {1, AffineExpr::linear({1})}};

        staticloc::PhaseNest reduce{"reduce", 3, 323, 10, {}};
        reduce.nest.extents = {p.n};
        reduce.nest.refs = {{1, AffineExpr::linear({1})}};

        prog.prologue = {std::move(init_a), std::move(init_b)};
        prog.body = {std::move(smooth), std::move(reduce)};
        return bindProgram(std::move(prog));
    }
};

} // namespace

std::unique_ptr<Workload>
makeStencil3()
{
    return std::make_unique<Stencil3>();
}

} // namespace lpp::workloads
