#include "workloads/registry.hpp"

namespace lpp::workloads {

// Factory functions defined in the per-workload translation units.
std::unique_ptr<Workload> makeFft();
std::unique_ptr<Workload> makeApplu();
std::unique_ptr<Workload> makeCompress();
std::unique_ptr<Workload> makeGcc();
std::unique_ptr<Workload> makeTomcatv();
std::unique_ptr<Workload> makeSwim();
std::unique_ptr<Workload> makeVortex();
std::unique_ptr<Workload> makeMesh();
std::unique_ptr<Workload> makeMolDyn();
std::unique_ptr<Workload> makeLoopnest();
std::unique_ptr<Workload> makeStencil3();
std::unique_ptr<Workload> makeMatmulTiled();

std::unique_ptr<Workload>
create(const std::string &name)
{
    if (name == "fft")
        return makeFft();
    if (name == "applu")
        return makeApplu();
    if (name == "compress")
        return makeCompress();
    if (name == "gcc")
        return makeGcc();
    if (name == "tomcatv")
        return makeTomcatv();
    if (name == "swim")
        return makeSwim();
    if (name == "vortex")
        return makeVortex();
    if (name == "mesh")
        return makeMesh();
    if (name == "moldyn")
        return makeMolDyn();
    if (name == "loopnest")
        return makeLoopnest();
    if (name == "stencil3")
        return makeStencil3();
    if (name == "matmul-tiled")
        return makeMatmulTiled();
    return nullptr;
}

std::vector<std::string>
allNames()
{
    return {"fft",  "applu",  "compress", "gcc",   "tomcatv",
            "swim", "vortex", "mesh",     "moldyn"};
}

std::vector<std::string>
predictableNames()
{
    return {"fft",  "applu", "compress", "tomcatv",
            "swim", "mesh",  "moldyn"};
}

std::vector<std::string>
staticNames()
{
    return {"loopnest", "stencil3", "matmul-tiled"};
}

} // namespace lpp::workloads
