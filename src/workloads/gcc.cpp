/**
 * @file
 * Gcc-like workload: per-function compilation (SPEC95 Int).
 *
 * The phase structure exists — parse, optimize, emit per input function
 * — but every phase's length is dictated by the size of the function
 * being compiled, drawn from a heavy-tailed distribution. The paper's
 * Fig 5: peaks in the sampled reuse trace correspond to input
 * functions, and "the exact phase length is unpredictable in general".
 */

#include <algorithm>
#include <cmath>

#include "support/random.hpp"
#include "workloads/emitter.hpp"
#include "workloads/registry.hpp"
#include "workloads/workload.hpp"

namespace lpp::workloads {

namespace {

struct Params
{
    uint32_t functions;
    uint64_t irLen;
    uint64_t symLen;
};

Params
paramsFor(const WorkloadInput &in)
{
    Params p;
    p.functions = std::max<uint32_t>(
        8, static_cast<uint32_t>(std::lround(40.0 * in.scale)));
    p.irLen = 1 << 16;
    p.symLen = 1 << 14;
    return p;
}

class Gcc : public Workload
{
  public:
    std::string name() const override { return "gcc"; }

    std::string
    description() const override
    {
        return "GNU C compiler 2.5.3";
    }

    std::string source() const override { return "Spec95Int"; }

    WorkloadInput trainInput() const override { return {81, 1.0}; }

    WorkloadInput refInput() const override { return {82, 6.0}; }

    bool predictable() const override { return false; }

    std::vector<ArrayInfo>
    arrays(const WorkloadInput &input) const override
    {
        AddressSpace as;
        std::vector<ArrayInfo> v;
        build(input, as, v);
        return v;
    }

    void
    run(const WorkloadInput &input, trace::TraceSink &sink) const override
    {
        AddressSpace as;
        std::vector<ArrayInfo> arr;
        Params p = build(input, as, arr);
        const ArrayInfo &tokens = arr[0], &ir = arr[1], &sym = arr[2],
                        &code = arr[3];

        Emitter e(sink);
        Rng rng(input.seed);

        for (uint32_t f = 0; f < p.functions; ++f) {
            // Heavy-tailed function size: mostly small, rare giants.
            double u = rng.uniform();
            uint64_t size = static_cast<uint64_t>(
                400.0 / std::pow(1.0 - u * 0.97, 0.8));
            size = std::min<uint64_t>(size, p.irLen);

            e.marker(0); // manual: next function
            e.block(801, 14); // parse
            for (uint64_t i = 0; i < size; ++i) {
                e.block(811, 12);
                e.touch(tokens, i % tokens.elements);
                e.touch(ir, i % p.irLen);
                e.touch(sym, (i * 17) % p.symLen);
            }

            e.block(802, 14); // optimize: repeated IR passes
            uint32_t pass_count = 2 + static_cast<uint32_t>(size / 4000);
            for (uint32_t pass = 0; pass < pass_count; ++pass) {
                for (uint64_t i = 0; i < size; ++i) {
                    e.block(812, 14);
                    e.touch(ir, i % p.irLen);
                    e.touch(ir, (i * 7919) % std::max<uint64_t>(size, 1));
                }
            }

            e.block(803, 14); // emit
            for (uint64_t i = 0; i < size; ++i) {
                e.block(813, 10);
                e.touch(ir, i % p.irLen);
                e.touch(code, i % code.elements);
            }
        }
        e.end();
    }

  private:
    Params
    build(const WorkloadInput &input, AddressSpace &as,
          std::vector<ArrayInfo> &arr) const
    {
        Params p = paramsFor(input);
        arr.push_back(as.allocate("TOKENS", 1 << 14));
        arr.push_back(as.allocate("IR", p.irLen));
        arr.push_back(as.allocate("SYM", p.symLen));
        arr.push_back(as.allocate("CODE", 1 << 14));
        return p;
    }
};

} // namespace

std::unique_ptr<Workload>
makeGcc()
{
    return std::make_unique<Gcc>();
}

} // namespace lpp::workloads
