#include "workloads/static_workload.hpp"

#include <utility>

#include "staticloc/walk.hpp"
#include "support/logging.hpp"
#include "trace/types.hpp"
#include "workloads/emitter.hpp"

namespace lpp::workloads {

BuiltProgram
bindProgram(staticloc::LoopProgram program)
{
    BuiltProgram built;
    AddressSpace as;
    built.arrays.reserve(program.arrays.size());
    for (staticloc::StaticArray &a : program.arrays) {
        ArrayInfo info = as.allocate(a.name, a.elements);
        // Page-aligned 8-byte words: the array's element ids under
        // trace::toElement() are base/elementBytes + index.
        LPP_REQUIRE(info.base % trace::elementBytes == 0,
                    "array '%s': base not element aligned",
                    a.name.c_str());
        a.baseElement = info.base / trace::elementBytes;
        built.arrays.push_back(std::move(info));
    }
    program.validate();
    built.program = std::move(program);
    return built;
}

void
runProgram(const BuiltProgram &built, trace::TraceSink &sink)
{
    Emitter e(sink);
    staticloc::walkProgram(
        built.program,
        [&](const staticloc::PhaseNest &ph, size_t) {
            e.marker(ph.marker);
        },
        [&](const staticloc::PhaseNest &ph) {
            e.block(ph.block, ph.instructions);
        },
        [&](const staticloc::PhaseNest &, const staticloc::ArrayRef &r,
            uint64_t idx) { e.touch(built.arrays[r.array], idx); });
    e.end();
}

void
LoopProgramWorkload::run(const WorkloadInput &input,
                         trace::TraceSink &sink) const
{
    runProgram(build(input), sink);
}

} // namespace lpp::workloads
