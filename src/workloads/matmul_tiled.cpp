/**
 * @file
 * Matmul-tiled workload: C += A * B with square tiling, three passes.
 *
 * The six-deep tiled nest (ii, kk, jj, i, k, j) revisits tiles in an
 * interleaved order no sweep formula or round extrapolation shortcut
 * covers at Auto settings (three passes is below the periodic engine's
 * threshold), so the static oracle exercises its exhaustive counting
 * engine: the whole iteration space is walked through a ReuseStack,
 * still with zero program executions.
 */

#include <algorithm>
#include <cmath>
#include <utility>

#include "workloads/registry.hpp"
#include "workloads/static_workload.hpp"

namespace lpp::workloads {

namespace {

constexpr uint64_t kTile = 8;

struct Params
{
    uint64_t m, k, p; //!< matrix dimensions, multiples of kTile
    uint32_t passes;  //!< body repeats
};

Params
paramsFor(const WorkloadInput &in)
{
    Params prm;
    uint64_t base = static_cast<uint64_t>(
        std::lround(4.0 * std::min(1.6, 0.9 + 0.1 * in.scale)));
    prm.m = prm.k = prm.p = kTile * base;
    prm.passes = 3;
    return prm;
}

class MatmulTiled : public LoopProgramWorkload
{
  public:
    std::string name() const override { return "matmul-tiled"; }

    std::string
    description() const override
    {
        return "tiled dense matrix multiply, three passes";
    }

    std::string source() const override { return "Affine"; }

    WorkloadInput trainInput() const override { return {51, 1.0}; }

    WorkloadInput refInput() const override { return {52, 4.0}; }

  protected:
    BuiltProgram
    build(const WorkloadInput &input) const override
    {
        using staticloc::AffineExpr;
        Params prm = paramsFor(input);
        const int64_t K = static_cast<int64_t>(prm.k);
        const int64_t P = static_cast<int64_t>(prm.p);
        const int64_t T = static_cast<int64_t>(kTile);

        staticloc::LoopProgram prog;
        prog.name = "matmul-tiled";
        prog.arrays = {{"A", prm.m * prm.k, 0},
                       {"B", prm.k * prm.p, 0},
                       {"C", prm.m * prm.p, 0}};
        prog.repeats = prm.passes;

        auto init = [](const char *nm, uint32_t marker,
                       trace::BlockId block, uint32_t array,
                       uint64_t elements) {
            staticloc::PhaseNest ph{nm, marker, block, 12, {}};
            ph.nest.extents = {elements};
            ph.nest.refs = {{array, AffineExpr::linear({1})}};
            return ph;
        };
        prog.prologue = {init("initA", 0, 330, 0, prm.m * prm.k),
                         init("initB", 1, 331, 1, prm.k * prm.p),
                         init("initC", 2, 332, 2, prm.m * prm.p)};

        // Loop order (ii, kk, jj, i, k, j); global indices are
        // i_g = ii*T + i, k_g = kk*T + k, j_g = jj*T + j, and the
        // references index row-major: A[i_g*K + k_g], B[k_g*P + j_g],
        // C[i_g*P + j_g].
        staticloc::PhaseNest tiles{"tiles", 3, 333, 18, {}};
        tiles.nest.extents = {prm.m / kTile, prm.k / kTile,
                              prm.p / kTile, kTile, kTile, kTile};
        tiles.nest.refs = {
            {0, AffineExpr::linear({T * K, T, 0, K, 1, 0})},
            {1, AffineExpr::linear({0, T * P, T, 0, P, 1})},
            {2, AffineExpr::linear({T * P, 0, T, P, 0, 1})}};
        prog.body = {std::move(tiles)};
        return bindProgram(std::move(prog));
    }
};

} // namespace

std::unique_ptr<Workload>
makeMatmulTiled()
{
    return std::make_unique<MatmulTiled>();
}

} // namespace lpp::workloads
