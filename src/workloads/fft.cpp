/**
 * @file
 * FFT workload: textbook radix-2 fast Fourier transform over a stream
 * of input frames.
 *
 * Each frame runs three phases: windowing, bit-reversal permutation,
 * and the log2(N) butterfly stages. The butterfly strides double per
 * stage, so locality varies widely *inside* the transform phase — the
 * paper notes FFT's "varied behavior" gives locality-phase prediction
 * its smallest cache-resizing win (Fig 6). Rotating boundary windows
 * over the twiddle/window tables provide the rare per-datum changes
 * detection needs; a decaying spectral tail in the windowing phase
 * makes a small part of the run inconsistent (strict coverage ~96%).
 */

#include <algorithm>
#include <bit>
#include <cmath>

#include "support/random.hpp"
#include "workloads/emitter.hpp"
#include "workloads/registry.hpp"
#include "workloads/workload.hpp"

namespace lpp::workloads {

namespace {

struct Params
{
    uint64_t n;      //!< FFT size (power of two)
    uint32_t frames; //!< input frames
    uint32_t plateau;
    uint64_t window;
};

Params
paramsFor(const WorkloadInput &in)
{
    Params p;
    p.n = in.scale > 3.0 ? 4096 : 2048;
    p.frames = std::max<uint32_t>(
        8, static_cast<uint32_t>(std::lround(24.0 * in.scale)));
    p.plateau = std::max<uint32_t>(4, p.frames / 5);
    p.window = std::max<uint64_t>(32, p.n / p.frames);
    return p;
}

class Fft : public Workload
{
  public:
    std::string name() const override { return "fft"; }

    std::string
    description() const override
    {
        return "fast Fourier transformation";
    }

    std::string source() const override { return "textbook"; }

    WorkloadInput trainInput() const override { return {41, 1.0}; }

    WorkloadInput refInput() const override { return {42, 5.0}; }

    std::vector<ArrayInfo>
    arrays(const WorkloadInput &input) const override
    {
        AddressSpace as;
        std::vector<ArrayInfo> v;
        build(input, as, v);
        return v;
    }

    void
    run(const WorkloadInput &input, trace::TraceSink &sink) const override
    {
        AddressSpace as;
        std::vector<ArrayInfo> arr;
        Params p = build(input, as, arr);
        const ArrayInfo &re = arr[0], &im = arr[1], &w = arr[2],
                        &win = arr[3];

        Emitter e(sink);
        Rng rng(input.seed);
        uint64_t tail = p.n * 3 / 4;
        auto stages = static_cast<uint32_t>(std::countr_zero(p.n));

        auto window_base = [&p](uint32_t f, const ArrayInfo &a,
                                uint64_t shift) {
            return (static_cast<uint64_t>(f) * p.window + shift) %
                   (a.elements - p.window);
        };

        for (uint32_t f = 0; f < p.frames; ++f) {
            e.marker(0); // manual: windowing
            e.block(401, 14);
            for (uint64_t i = 0; i < p.window; ++i) {
                e.block(421, 10); // boundary window over W (transform)
                e.touch(w, window_base(f, w, 0) + i);
            }
            for (uint64_t i = 0; i < p.n; ++i) {
                e.block(411, 10);
                e.touch(re, i);
                e.touch(win, i);
            }
            // Decaying spectral tail: rare jumps make this phase's
            // length inconsistent.
            for (uint64_t i = 0; i < tail; ++i) {
                e.block(416, 8);
                e.touch(im, i);
            }
            if ((f + 1) % p.plateau == 0)
                tail = std::max<uint64_t>(
                    tail - (p.n / 64 + rng.below(p.n / 128)),
                    p.n / 2);

            e.marker(1); // manual: bit reversal
            e.block(402, 14);
            for (uint64_t i = 0; i < p.window; ++i) {
                e.block(422, 10); // window over WIN (windowing)
                e.touch(win, window_base(f, win, 0) + i);
            }
            for (uint64_t i = 0; i < p.n; ++i) {
                uint64_t j = bitReverse(i, stages);
                e.block(412, 12);
                e.touch(re, i);
                e.touch(re, j);
                e.touch(im, j);
            }

            e.marker(2); // manual: butterfly stages
            e.block(403, 14);
            for (uint64_t i = 0; i < p.window; ++i) {
                e.block(423, 10); // window over WIN, opposite rotation
                e.touch(win,
                        window_base(f, win, win.elements / 2) + i);
            }
            for (uint32_t s = 0; s < stages; ++s) {
                uint64_t half = 1ULL << s;
                for (uint64_t k = 0; k < p.n / 2; ++k) {
                    if (k % 256 == 0)
                        e.block(404, 10); // butterfly chunk head
                    uint64_t grp = k / half;
                    uint64_t pos = k % half;
                    uint64_t top = grp * half * 2 + pos;
                    e.block(413, 8);
                    e.touch(re, top);
                    e.touch(re, top + half);
                    e.touch(im, top);
                    e.touch(im, top + half);
                    e.touch(w, pos * (p.n / (2 * half)) % w.elements);
                }
            }
        }
        e.end();
    }

  private:
    static uint64_t
    bitReverse(uint64_t v, uint32_t bits)
    {
        uint64_t r = 0;
        for (uint32_t i = 0; i < bits; ++i) {
            r = (r << 1) | (v & 1);
            v >>= 1;
        }
        return r;
    }

    Params
    build(const WorkloadInput &input, AddressSpace &as,
          std::vector<ArrayInfo> &arr) const
    {
        Params p = paramsFor(input);
        arr.push_back(as.allocate("RE", p.n));
        arr.push_back(as.allocate("IM", p.n));
        arr.push_back(as.allocate("W", p.n / 2));
        arr.push_back(as.allocate("WIN", p.n));
        return p;
    }
};

} // namespace

std::unique_ptr<Workload>
makeFft()
{
    return std::make_unique<Fft>();
}

} // namespace lpp::workloads
