/**
 * @file
 * Swim-like workload: shallow-water finite differences (SPEC95 Fp).
 *
 * Each time step has three substeps over 14 grid arrays. The access
 * structure mirrors the affinity the paper reports in Section 3.3:
 * substep 1 sweeps {u, v, p} (with the flux arrays), substep 2 sweeps
 * {u, v, p, unew, vnew, pnew}, and substep 3 runs three separate
 * smoothing loops over {u, uold, unew}, {v, vold, vnew} and
 * {p, pold, pnew} — so phase-based array regrouping beats a single
 * whole-program layout (Table 5). Each substep opens with a rotating
 * boundary window over another substep's private array (the detectable
 * rare per-datum change), and substep 3 carries a correction pass whose
 * extent is redrawn every few steps, making roughly a third of its
 * executions differ in length (the paper's ~90% relaxed accuracy).
 */

#include <algorithm>
#include <cmath>

#include "support/random.hpp"
#include "workloads/emitter.hpp"
#include "workloads/registry.hpp"
#include "workloads/workload.hpp"

namespace lpp::workloads {

namespace {

struct Params
{
    uint64_t n;
    uint32_t steps;
    uint32_t redraw; //!< steps between correction-extent redraws
    uint64_t window;
};

Params
paramsFor(const WorkloadInput &in)
{
    Params p;
    p.n = static_cast<uint64_t>(3000.0 *
                                std::min(1.6, 0.9 + 0.1 * in.scale));
    p.steps = std::max<uint32_t>(
        6, static_cast<uint32_t>(std::lround(30.0 * in.scale)));
    p.redraw = 3;
    p.window = std::max<uint64_t>(32, p.n / p.steps);
    return p;
}

class Swim : public Workload
{
  public:
    std::string name() const override { return "swim"; }

    std::string
    description() const override
    {
        return "finite difference approximations for shallow water "
               "equation";
    }

    std::string source() const override { return "Spec95Fp"; }

    WorkloadInput trainInput() const override { return {21, 1.0}; }

    WorkloadInput refInput() const override { return {22, 8.0}; }

    std::vector<ArrayInfo>
    arrays(const WorkloadInput &input) const override
    {
        AddressSpace as;
        std::vector<ArrayInfo> v;
        build(input, as, v);
        return v;
    }

    void
    run(const WorkloadInput &input, trace::TraceSink &sink) const override
    {
        AddressSpace as;
        std::vector<ArrayInfo> arr;
        Params p = build(input, as, arr);
        const ArrayInfo &u = arr[0], &v = arr[1], &pp = arr[2],
                        &unew = arr[3], &vnew = arr[4], &pnew = arr[5],
                        &uold = arr[6], &vold = arr[7], &pold = arr[8],
                        &cu = arr[9], &cv = arr[10], &z = arr[11],
                        &h = arr[12], &psi = arr[13];

        Emitter e(sink);
        Rng rng(input.seed);

        uint64_t extent = p.n / 2;

        auto window_base = [&p](uint32_t t, const ArrayInfo &a) {
            return (static_cast<uint64_t>(t) * p.window) %
                   (a.elements - p.window);
        };

        // Initialization (prologue): stream-function setup.
        for (uint64_t i = 0; i < p.n; ++i) {
            e.block(210, 10);
            e.touch(psi, i);
            e.touch(u, i);
        }

        for (uint32_t t = 0; t < p.steps; ++t) {
            e.marker(0); // manual: time step

            e.block(201, 14); // calc1: fluxes from {u, v, p}
            for (uint64_t i = 0; i < p.window; ++i) {
                e.block(221, 10); // boundary window over H (calc3)
                e.touch(h, window_base(t, h) + i);
            }
            for (uint64_t i = 0; i < p.n; ++i) {
                e.block(211, 14);
                e.touch(u, i);
                e.touch(v, i);
                e.touch(pp, i);
                e.touch(cu, i);
                e.touch(cv, i);
            }

            e.block(202, 14); // calc2: new state from old state
            for (uint64_t i = 0; i < p.window; ++i) {
                e.block(222, 10); // window over CU (calc1)
                e.touch(cu, window_base(t, cu) + i);
            }
            for (uint64_t i = 0; i < p.n; ++i) {
                e.block(212, 16);
                e.touch(u, i);
                e.touch(v, i);
                e.touch(pp, i);
                e.touch(unew, i);
                e.touch(vnew, i);
                e.touch(pnew, i);
            }

            e.block(203, 14); // calc3: time smoothing, three loops
            for (uint64_t i = 0; i < p.window; ++i) {
                e.block(223, 10); // window over CV (calc1)
                e.touch(cv, window_base(t, cv) + i);
            }
            for (uint64_t i = 0; i < p.n; ++i) {
                e.block(213, 12);
                e.touch(u, i);
                e.touch(uold, i);
                e.touch(unew, i);
            }
            for (uint64_t i = 0; i < p.n; ++i) {
                e.block(214, 12);
                e.touch(v, i);
                e.touch(vold, i);
                e.touch(vnew, i);
            }
            for (uint64_t i = 0; i < p.n; ++i) {
                e.block(215, 12);
                e.touch(pp, i);
                e.touch(pold, i);
                e.touch(pnew, i);
            }
            // Correction over a redrawn extent: calc3's length jumps at
            // every redraw.
            for (uint64_t i = 0; i < extent; ++i) {
                e.block(216, 10);
                e.touch(z, i);
                e.touch(h, i);
            }
            if ((t + 1) % p.redraw == 0)
                extent = p.n * 7 / 16 + rng.below(p.n / 8);
        }
        e.end();
    }

  private:
    Params
    build(const WorkloadInput &input, AddressSpace &as,
          std::vector<ArrayInfo> &arr) const
    {
        Params p = paramsFor(input);
        for (const char *name :
             {"U", "V", "P", "UNEW", "VNEW", "PNEW", "UOLD", "VOLD",
              "POLD", "CU", "CV", "Z", "H", "PSI"})
            arr.push_back(as.allocate(name, p.n));
        return p;
    }
};

} // namespace

std::unique_ptr<Workload>
makeSwim()
{
    return std::make_unique<Swim>();
}

} // namespace lpp::workloads
