#include "workloads/address_space.hpp"

#include "support/logging.hpp"

namespace lpp::workloads {

namespace {
constexpr trace::Addr pageBytes = 4096;
}

AddressSpace::AddressSpace(trace::Addr base) : next(base)
{
}

ArrayInfo
AddressSpace::allocate(const std::string &name, uint64_t elements,
                       uint32_t elem_bytes)
{
    LPP_REQUIRE(elements > 0, "empty array %s", name.c_str());
    ArrayInfo info;
    info.name = name;
    info.base = next;
    info.elements = elements;
    info.elemBytes = elem_bytes;

    trace::Addr bytes = elements * elem_bytes;
    next += (bytes + pageBytes - 1) / pageBytes * pageBytes;
    arrayList.push_back(info);
    return info;
}

const ArrayInfo *
AddressSpace::find(trace::Addr addr) const
{
    for (const auto &a : arrayList) {
        if (a.contains(addr))
            return &a;
    }
    return nullptr;
}

} // namespace lpp::workloads
