#include "trace/codec.hpp"

#include <algorithm>

#include "support/logging.hpp"
#include "trace/memory_trace.hpp"

namespace lpp::trace {

namespace {

/** Map a signed delta onto small unsigned values (zig-zag). */
inline uint64_t
zigzag(uint64_t value, uint64_t prev)
{
    int64_t d = static_cast<int64_t>(value - prev);
    return (static_cast<uint64_t>(d) << 1) ^
           static_cast<uint64_t>(d >> 63);
}

/** Inverse of zigzag(): recover the value from the coded delta. */
inline uint64_t
unzigzag(uint64_t coded, uint64_t prev)
{
    int64_t d = static_cast<int64_t>((coded >> 1) ^
                                     (~(coded & 1) + 1));
    return prev + static_cast<uint64_t>(d);
}

/**
 * Decode one varint from [*p, end). Returns false on truncation. The
 * caller's cursor advances past the consumed bytes on success.
 */
inline bool
readVarint(const uint8_t *&p, const uint8_t *end, uint64_t &v)
{
    uint64_t out = 0;
    unsigned shift = 0;
    while (p < end && shift < 64) {
        uint8_t byte = *p++;
        out |= static_cast<uint64_t>(byte & 0x7F) << shift;
        if ((byte & 0x80) == 0) {
            v = out;
            return true;
        }
        shift += 7;
    }
    return false;
}

inline void
writeVarint(std::vector<uint8_t> &out, uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<uint8_t>(v));
}

} // namespace

void
TraceEncoder::putVarint(uint64_t v)
{
    writeVarint(out, v);
}

void
TraceEncoder::putDelta(uint64_t value, uint64_t &prev)
{
    putVarint(zigzag(value, prev));
    prev = value;
}

void
TraceEncoder::onBlock(BlockId block, uint32_t instructions)
{
    out.push_back(static_cast<uint8_t>(TraceOp::Block));
    putDelta(block, prevBlock);
    putVarint(instructions);
    ++events;
}

void
TraceEncoder::onAccess(Addr addr)
{
    out.push_back(static_cast<uint8_t>(TraceOp::Access));
    putDelta(addr, prevAddr);
    ++events;
    ++accesses;
}

void
TraceEncoder::onAccessBatch(const Addr *addrs, size_t n)
{
    out.push_back(static_cast<uint8_t>(TraceOp::Batch));
    putVarint(n);
    // Worst case ten bytes per delta. Grow geometrically: reserving
    // just past size() per batch would force a full copy of the
    // payload on every batch — quadratic over the whole stream.
    if (out.capacity() - out.size() < 10 * n)
        out.reserve(std::max(out.capacity() * 2, out.size() + 10 * n));
    for (size_t i = 0; i < n; ++i)
        putDelta(addrs[i], prevAddr);
    ++events;
    accesses += n;
}

void
TraceEncoder::onManualMarker(uint32_t marker_id)
{
    out.push_back(static_cast<uint8_t>(TraceOp::Manual));
    putVarint(marker_id);
    ++events;
}

void
TraceEncoder::onPhaseMarker(PhaseId phase)
{
    out.push_back(static_cast<uint8_t>(TraceOp::Phase));
    putVarint(phase);
    ++events;
}

void
TraceEncoder::onEnd()
{
    out.push_back(static_cast<uint8_t>(TraceOp::End));
    ++events;
}

bool
decodeTrace(const uint8_t *data, size_t size, TraceSink &sink,
            uint64_t *events_out, uint64_t *accesses_out)
{
    const uint8_t *p = data;
    const uint8_t *end = data + size;
    uint64_t prevAddr = 0;
    uint64_t prevBlock = 0;
    uint64_t events = 0;
    uint64_t accesses = 0;
    std::vector<Addr> batch;

    while (p < end) {
        uint8_t op = *p++;
        switch (static_cast<TraceOp>(op)) {
          case TraceOp::Block: {
            uint64_t d = 0, instrs = 0;
            if (!readVarint(p, end, d) || !readVarint(p, end, instrs))
                return false;
            prevBlock = unzigzag(d, prevBlock);
            sink.onBlock(static_cast<BlockId>(prevBlock),
                         static_cast<uint32_t>(instrs));
            break;
          }
          case TraceOp::Access: {
            uint64_t d = 0;
            if (!readVarint(p, end, d))
                return false;
            prevAddr = unzigzag(d, prevAddr);
            sink.onAccess(prevAddr);
            ++accesses;
            break;
          }
          case TraceOp::Batch: {
            uint64_t n = 0;
            if (!readVarint(p, end, n))
                return false;
            // A batch cannot have more deltas than remaining bytes;
            // reject early so a corrupt length cannot force a huge
            // allocation.
            if (n > static_cast<uint64_t>(end - p))
                return false;
            batch.resize(static_cast<size_t>(n));
            Addr *dst = batch.data();
            size_t i = 0;
            // Unrolled fast path: while at least four worst-case
            // varints remain, decode four deltas without per-byte
            // bounds checks in readVarint's loop condition.
            while (i + 4 <= n &&
                   end - p >= 4 * 10) {
                for (int k = 0; k < 4; ++k) {
                    uint64_t coded = 0;
                    unsigned shift = 0;
                    uint8_t byte = 0x80;
                    while (byte & 0x80) {
                        // Ten bytes bound a 64-bit varint; a longer
                        // run is corruption, not data.
                        if (shift >= 70)
                            return false;
                        byte = *p++;
                        coded |=
                            static_cast<uint64_t>(byte & 0x7F) << shift;
                        shift += 7;
                    }
                    prevAddr = unzigzag(coded, prevAddr);
                    dst[i + static_cast<size_t>(k)] = prevAddr;
                }
                i += 4;
            }
            for (; i < n; ++i) {
                uint64_t coded = 0;
                if (!readVarint(p, end, coded))
                    return false;
                prevAddr = unzigzag(coded, prevAddr);
                dst[i] = prevAddr;
            }
            sink.onAccessBatch(dst, static_cast<size_t>(n));
            accesses += n;
            break;
          }
          case TraceOp::Manual: {
            uint64_t id = 0;
            if (!readVarint(p, end, id))
                return false;
            sink.onManualMarker(static_cast<uint32_t>(id));
            break;
          }
          case TraceOp::Phase: {
            uint64_t id = 0;
            if (!readVarint(p, end, id))
                return false;
            sink.onPhaseMarker(static_cast<PhaseId>(id));
            break;
          }
          case TraceOp::End:
            sink.onEnd();
            break;
          default:
            return false;
        }
        ++events;
    }
    if (events_out)
        *events_out = events;
    if (accesses_out)
        *accesses_out = accesses;
    return true;
}

std::vector<uint8_t>
encodeTrace(const MemoryTrace &trace)
{
    TraceEncoder enc;
    trace.replay(enc);
    return enc.take();
}

uint64_t
contentHash64(const uint8_t *data, size_t size)
{
    // FNV-1a over 8-byte lanes (tail bytes zero-padded), then a
    // mix64 finalizer so nearby payloads land far apart.
    uint64_t h = 0xcbf29ce484222325ULL ^ (size * 0x9E3779B97F4A7C15ULL);
    size_t i = 0;
    for (; i + 8 <= size; i += 8) {
        uint64_t lane = 0;
        for (int b = 0; b < 8; ++b)
            lane |= static_cast<uint64_t>(data[i + static_cast<size_t>(b)])
                    << (8 * b);
        h = (h ^ lane) * 0x100000001b3ULL;
    }
    uint64_t tail = 0;
    for (int b = 0; i < size; ++i, ++b)
        tail |= static_cast<uint64_t>(data[i]) << (8 * b);
    h = (h ^ tail) * 0x100000001b3ULL;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ULL;
    h ^= h >> 33;
    return h;
}

// Byte-level LZ section transform -----------------------------------

namespace {

constexpr size_t lzMinMatch = 4;
constexpr size_t lzMaxOffset = 65535;
constexpr uint32_t lzHashBits = 15;

inline uint32_t
lzHash(const uint8_t *p)
{
    uint32_t v = static_cast<uint32_t>(p[0]) |
                 (static_cast<uint32_t>(p[1]) << 8) |
                 (static_cast<uint32_t>(p[2]) << 16) |
                 (static_cast<uint32_t>(p[3]) << 24);
    return (v * 2654435761u) >> (32 - lzHashBits);
}

inline void
lzPutLength(std::vector<uint8_t> &out, size_t len)
{
    while (len >= 255) {
        out.push_back(255);
        len -= 255;
    }
    out.push_back(static_cast<uint8_t>(len));
}

inline bool
lzGetLength(const uint8_t *&p, const uint8_t *end, size_t &len)
{
    for (;;) {
        if (p >= end)
            return false;
        uint8_t b = *p++;
        len += b;
        if (b != 255)
            return true;
    }
}

} // namespace

size_t
lzPack(const uint8_t *src, size_t n, std::vector<uint8_t> &out)
{
    const size_t baseSize = out.size();
    if (n < lzMinMatch + 1) // nothing a match could cover
        return 0;

    std::vector<uint32_t> head(size_t{1} << lzHashBits, UINT32_MAX);
    size_t pos = 0;
    size_t anchor = 0;
    const size_t matchLimit = n - lzMinMatch;

    auto emit = [&](size_t literals, size_t matchLen, size_t offset) {
        size_t litToken = std::min<size_t>(literals, 15);
        size_t matToken =
            matchLen ? std::min<size_t>(matchLen - lzMinMatch, 15) : 0;
        out.push_back(
            static_cast<uint8_t>((litToken << 4) | matToken));
        if (litToken == 15)
            lzPutLength(out, literals - 15);
        out.insert(out.end(), src + anchor, src + anchor + literals);
        if (!matchLen)
            return;
        out.push_back(static_cast<uint8_t>(offset & 0xFF));
        out.push_back(static_cast<uint8_t>(offset >> 8));
        if (matToken == 15)
            lzPutLength(out, matchLen - lzMinMatch - 15);
    };

    while (pos <= matchLimit) {
        uint32_t h = lzHash(src + pos);
        size_t cand = head[h];
        head[h] = static_cast<uint32_t>(pos);
        if (cand != UINT32_MAX && pos - cand <= lzMaxOffset &&
            src[cand] == src[pos] && src[cand + 1] == src[pos + 1] &&
            src[cand + 2] == src[pos + 2] &&
            src[cand + 3] == src[pos + 3]) {
            size_t len = lzMinMatch;
            while (pos + len < n && src[cand + len] == src[pos + len])
                ++len;
            emit(pos - anchor, len, pos - cand);
            // Refresh a few anchors inside the match so the next
            // search can still find overlapping repeats.
            size_t stop = std::min(pos + len, matchLimit + 1);
            for (size_t q = pos + 1; q < stop; q += 7)
                head[lzHash(src + q)] = static_cast<uint32_t>(q);
            pos += len;
            anchor = pos;
        } else {
            ++pos;
        }
        if (out.size() - baseSize >= n) { // not shrinking; bail out
            out.resize(baseSize);
            return 0;
        }
    }
    // The decoder stops as soon as it has produced the full output, so
    // when the last match ends exactly at n there is no final literal
    // sequence to emit (an empty token would never be consumed).
    if (anchor < n)
        emit(n - anchor, 0, 0);
    size_t packed = out.size() - baseSize;
    if (packed >= n) {
        out.resize(baseSize);
        return 0;
    }
    return packed;
}

bool
lzUnpack(const uint8_t *src, size_t n, uint8_t *dst, size_t dst_bytes)
{
    const uint8_t *p = src;
    const uint8_t *end = src + n;
    size_t outPos = 0;
    while (outPos < dst_bytes) {
        if (p >= end)
            return false;
        uint8_t token = *p++;
        size_t literals = token >> 4;
        if (literals == 15 && !lzGetLength(p, end, literals))
            return false;
        if (literals > static_cast<size_t>(end - p) ||
            literals > dst_bytes - outPos)
            return false;
        std::copy(p, p + literals, dst + outPos);
        p += literals;
        outPos += literals;
        if (outPos == dst_bytes)
            break; // final sequence carries no match
        if (end - p < 2)
            return false;
        size_t offset = static_cast<size_t>(p[0]) |
                        (static_cast<size_t>(p[1]) << 8);
        p += 2;
        if (offset == 0 || offset > outPos)
            return false;
        size_t matchLen = (token & 0xF);
        if (matchLen == 15 && !lzGetLength(p, end, matchLen))
            return false;
        matchLen += lzMinMatch;
        if (matchLen > dst_bytes - outPos)
            return false;
        // Byte-by-byte: overlapping matches (offset < length) are the
        // run-length case and must replicate forward.
        const uint8_t *from = dst + outPos - offset;
        for (size_t i = 0; i < matchLen; ++i)
            dst[outPos + i] = from[i];
        outPos += matchLen;
    }
    return p == end && outPos == dst_bytes;
}

bool
unpackFrame(const FrameInfo &info, const uint8_t *payload,
            FrameSections &out)
{
    return unpackFrame(info, payload,
                       payload + info.storedEventBytes,
                       payload + info.storedEventBytes +
                           info.storedBitmapBytes,
                       out);
}

bool
unpackFrame(const FrameInfo &info, const uint8_t *events,
            const uint8_t *bitmap, const uint8_t *residue,
            FrameSections &out)
{
    const uint8_t *stored[3] = {events, bitmap, residue};
    const uint64_t storedBytes[3] = {info.storedEventBytes,
                                     info.storedBitmapBytes,
                                     info.storedResidueBytes};
    const uint64_t logical[3] = {info.eventBytes, info.bitmapBytes,
                                 info.residueBytes};
    const uint8_t *ptrs[3] = {nullptr, nullptr, nullptr};
    for (int s = 0; s < 3; ++s) {
        if (storedBytes[s] == logical[s]) {
            ptrs[s] = stored[s]; // raw: decode in place
        } else {
            if (storedBytes[s] > logical[s])
                return false;
            std::vector<uint8_t> &buf = out.scratch[s];
            buf.resize(static_cast<size_t>(logical[s]));
            if (!lzUnpack(stored[s],
                          static_cast<size_t>(storedBytes[s]),
                          buf.data(), buf.size()))
                return false;
            ptrs[s] = buf.data();
        }
    }
    out.events = ptrs[0];
    out.bitmap = ptrs[1];
    out.residue = ptrs[2];
    return true;
}

// Predictive frame codec (v2) ---------------------------------------

bool
PredictorConfig::valid() const
{
    return tableBits >= 1 && tableBits <= 24 && laneBits <= 16 &&
           historyDepth >= 1 &&
           historyDepth <= AddressPredictor::maxHistoryDepth;
}

AddressPredictor::AddressPredictor(const PredictorConfig &cfg)
    : laneCap((1u << cfg.laneBits) - 1), depth(cfg.historyDepth),
      indexShift(64 - cfg.tableBits)
{
    LPP_REQUIRE(cfg.valid(),
                "invalid predictor config (%u table bits, %u lane "
                "bits, depth %u)",
                cfg.tableBits, cfg.laneBits, cfg.historyDepth);
    table.resize(size_t{1} << cfg.tableBits);
}

size_t
AddressPredictor::index() const
{
    uint64_t lane = std::min<uint64_t>(ctxLane, laneCap);
    uint64_t h = (ctxBlock + 1) * 0x9E3779B97F4A7C15ULL;
    h ^= (lane + 1) * 0xC2B2AE3D27D4EB4FULL;
    h ^= h >> 29;
    return static_cast<size_t>(h >> indexShift);
}

void
AddressPredictor::reset(const FrameSeeds &seeds)
{
    // Epoch stamping makes the table reset O(1); a wrapped epoch must
    // rewrite the stamps once so stale entries cannot alias as fresh.
    if (++epoch == 0) {
        for (Entry &e : table)
            e.epoch = 0;
        epoch = 1;
    }
    prevAddr = seeds.prevAddr;
    ctxBlock = seeds.ctxBlock;
    ctxLane = seeds.ctxLane;
}

Addr
AddressPredictor::predict() const
{
    const Entry &e = table[index()];
    if (e.epoch != epoch)
        return prevAddr; // cold entry: v1 delta-chain fallback
    if (e.prevConf > e.conf) // cross-lane mode won the classification
        return prevAddr + static_cast<uint64_t>(e.prevDelta);
    if (e.conf == 0 || e.chosen >= e.filled)
        return e.last; // unclassified: last value
    return e.last + static_cast<uint64_t>(e.strides[e.chosen]);
}

void
AddressPredictor::update(Addr actual)
{
    Entry &e = table[index()];
    int64_t dPrev = static_cast<int64_t>(actual - prevAddr);
    if (e.epoch != epoch) {
        e = Entry{};
        e.epoch = epoch;
        e.last = actual;
        // Optimistically arm the cross-lane mode: a derived reference
        // (same delta from the preceding access every visit) then hits
        // from its second visit on.
        e.prevDelta = dPrev;
        e.prevConf = 1;
    } else {
        if (dPrev == e.prevDelta) {
            if (e.prevConf < 3)
                ++e.prevConf;
        } else if (e.prevConf > 0) {
            --e.prevConf;
        } else {
            e.prevDelta = dPrev;
        }
        int64_t d = static_cast<int64_t>(actual - e.last);
        int match = -1;
        for (uint32_t i = 0; i < e.filled; ++i) {
            if (e.strides[i] == d) {
                match = static_cast<int>(i);
                break;
            }
        }
        if (match >= 0) {
            // Front-pushing the stride below keeps slot `match`
            // holding the stride that follows d in any pattern of
            // period match+1, so `chosen` stays a valid oracle.
            e.chosen = static_cast<uint8_t>(match);
            if (e.conf < 3)
                ++e.conf;
        } else if (e.conf > 0) {
            --e.conf;
        }
        uint32_t top = std::min<uint32_t>(e.filled, depth - 1);
        for (uint32_t i = top; i > 0; --i)
            e.strides[i] = e.strides[i - 1];
        e.strides[0] = d;
        if (e.filled < depth)
            ++e.filled;
        e.last = actual;
    }
    prevAddr = actual;
    ++ctxLane;
}

FrameEncoder::FrameEncoder(const PredictorConfig &cfg) : predictor(cfg)
{
    predictor.reset(start);
}

void
FrameEncoder::putVarint(std::vector<uint8_t> &out, uint64_t v)
{
    writeVarint(out, v);
}

void
FrameEncoder::onBlock(BlockId block, uint32_t instructions)
{
    eventSec.push_back(static_cast<uint8_t>(TraceOp::Block));
    putVarint(eventSec, zigzag(block, prevBlock));
    prevBlock = block;
    putVarint(eventSec, instructions);
    predictor.observeBlock(block);
    ++eventCnt;
}

void
FrameEncoder::appendAccess(Addr addr)
{
    Addr pred = predictor.predict();
    bool hit = pred == addr;
    if ((bitCnt & 7) == 0)
        bitmapSec.push_back(0);
    if (hit)
        bitmapSec.back() |=
            static_cast<uint8_t>(1u << (bitCnt & 7));
    else
        putVarint(residueSec, zigzag(addr, pred));
    ++bitCnt;
    predictor.update(addr);
}

void
FrameEncoder::onAccess(Addr addr)
{
    eventSec.push_back(static_cast<uint8_t>(TraceOp::Access));
    appendAccess(addr);
    ++eventCnt;
    ++accessCnt;
}

void
FrameEncoder::onAccessBatch(const Addr *addrs, size_t n)
{
    eventSec.push_back(static_cast<uint8_t>(TraceOp::Batch));
    putVarint(eventSec, n);
    for (size_t i = 0; i < n; ++i)
        appendAccess(addrs[i]);
    ++eventCnt;
    accessCnt += n;
}

void
FrameEncoder::onManualMarker(uint32_t marker_id)
{
    eventSec.push_back(static_cast<uint8_t>(TraceOp::Manual));
    putVarint(eventSec, marker_id);
    ++eventCnt;
}

void
FrameEncoder::onPhaseMarker(PhaseId phase)
{
    eventSec.push_back(static_cast<uint8_t>(TraceOp::Phase));
    putVarint(eventSec, phase);
    ++eventCnt;
}

void
FrameEncoder::onEnd()
{
    eventSec.push_back(static_cast<uint8_t>(TraceOp::End));
    ++eventCnt;
}

void
FrameEncoder::fillInfo(FrameInfo &info) const
{
    info = FrameInfo{};
    info.events = eventCnt;
    info.accesses = accessCnt;
    info.eventBytes = eventSec.size();
    info.bitmapBytes = bitmapSec.size();
    info.residueBytes = residueSec.size();
    info.storedEventBytes = eventSec.size();
    info.storedBitmapBytes = bitmapSec.size();
    info.storedResidueBytes = residueSec.size();
    info.seeds = start;
}

void
FrameEncoder::materialize(FrameInfo &info,
                          std::vector<uint8_t> &payload) const
{
    fillInfo(info);
    payload.clear();
    payload.reserve(sectionBytes());
    const std::vector<uint8_t> *secs[3] = {&eventSec, &bitmapSec,
                                           &residueSec};
    uint64_t *storedSize[3] = {&info.storedEventBytes,
                               &info.storedBitmapBytes,
                               &info.storedResidueBytes};
    for (int s = 0; s < 3; ++s) {
        size_t packed =
            lzPack(secs[s]->data(), secs[s]->size(), payload);
        if (packed) {
            *storedSize[s] = packed;
        } else {
            payload.insert(payload.end(), secs[s]->begin(),
                           secs[s]->end());
            *storedSize[s] = secs[s]->size();
        }
    }
    info.payloadHash = contentHash64(payload.data(), payload.size());
}

void
FrameEncoder::seal(FrameInfo &info, std::vector<uint8_t> &payload)
{
    materialize(info, payload);
    eventSec.clear();
    eventSec.shrink_to_fit();
    bitmapSec.clear();
    bitmapSec.shrink_to_fit();
    residueSec.clear();
    residueSec.shrink_to_fit();
    eventCnt = 0;
    accessCnt = 0;
    bitCnt = 0;
    // The next frame inherits the current codec state as its seeds
    // and a cleared predictor table — the only state a frame needs
    // from its predecessors.
    start = predictor.seeds();
    start.prevBlock = prevBlock;
    predictor.reset(start);
}

void
FrameEncoder::restart()
{
    eventSec = {};
    bitmapSec = {};
    residueSec = {};
    eventCnt = 0;
    accessCnt = 0;
    bitCnt = 0;
    prevBlock = 0;
    start = FrameSeeds{};
    predictor.reset(start);
}

FrameDecoder::FrameDecoder(const PredictorConfig &cfg) : predictor(cfg)
{
}

void
FrameDecoder::begin(const FrameInfo &info, const uint8_t *events,
                    const uint8_t *bitmap, const uint8_t *residue)
{
    ev = events;
    evEnd = events + info.eventBytes;
    bm = bitmap;
    res = residue;
    resEnd = residue + info.residueBytes;
    bitAvail = info.bitmapBytes * 8;
    bitPos = 0;
    prevBlock = info.seeds.prevBlock;
    evTotal = info.events;
    accTotal = info.accesses;
    evDone = 0;
    accDone = 0;
    predictor.reset(info.seeds);
    // The bitmap must hold exactly one bit per access (plus padding
    // inside the last byte); anything else is a malformed frame.
    if (info.bitmapBytes != (info.accesses + 7) / 8) {
        evEnd = ev;
        evTotal = evDone + 1; // force the next pull into Error
    }
}

bool
FrameDecoder::readBit(bool &bit)
{
    if (bitPos >= bitAvail)
        return false;
    bit = ((bm[bitPos >> 3] >> (bitPos & 7)) & 1) != 0;
    ++bitPos;
    return true;
}

bool
FrameDecoder::decodeAddr(Addr &addr)
{
    bool hit = false;
    if (!readBit(hit))
        return false;
    Addr pred = predictor.predict();
    if (hit) {
        addr = pred;
    } else {
        uint64_t coded = 0;
        if (!readVarint(res, resEnd, coded))
            return false;
        addr = unzigzag(coded, pred);
    }
    predictor.update(addr);
    return true;
}

bool
FrameDecoder::decodeRun(Addr *dst, uint64_t n)
{
    uint64_t i = 0;
    while (i < n) {
        // 4-wide unrolled fast path: four consecutive hit bits inside
        // one bitmap byte decode as four predict/update steps with no
        // residue bytes and no per-bit cursor checks.
        if (i + 4 <= n && bitPos + 4 <= bitAvail &&
            (bitPos & 7) <= 4 &&
            ((bm[bitPos >> 3] >> (bitPos & 7)) & 0xFu) == 0xFu) {
            for (int k = 0; k < 4; ++k) {
                Addr a = predictor.predict();
                predictor.update(a);
                dst[i + static_cast<uint64_t>(k)] = a;
            }
            bitPos += 4;
            i += 4;
            continue;
        }
        if (!decodeAddr(dst[i]))
            return false;
        ++i;
    }
    return true;
}

FrameDecoder::Status
FrameDecoder::next(TraceSink *sink, std::vector<Addr> &scratch)
{
    if (evDone == evTotal) {
        // Every section must be fully consumed — leftover bytes mean
        // the frame directory and payload disagree.
        return (ev == evEnd && res == resEnd && accDone == accTotal)
                   ? Status::Done
                   : Status::Error;
    }
    if (ev >= evEnd)
        return Status::Error;
    uint8_t op = *ev++;
    switch (static_cast<TraceOp>(op)) {
      case TraceOp::Block: {
        uint64_t d = 0, instrs = 0;
        if (!readVarint(ev, evEnd, d) ||
            !readVarint(ev, evEnd, instrs))
            return Status::Error;
        prevBlock = unzigzag(d, prevBlock);
        predictor.observeBlock(static_cast<BlockId>(prevBlock));
        if (sink)
            sink->onBlock(static_cast<BlockId>(prevBlock),
                          static_cast<uint32_t>(instrs));
        break;
      }
      case TraceOp::Access: {
        Addr a = 0;
        if (accDone >= accTotal || !decodeAddr(a))
            return Status::Error;
        ++accDone;
        if (sink)
            sink->onAccess(a);
        break;
      }
      case TraceOp::Batch: {
        uint64_t n = 0;
        if (!readVarint(ev, evEnd, n))
            return Status::Error;
        // The frame directory bounds the batch: a corrupt length can
        // never allocate past the frame's declared access count.
        if (n > accTotal - accDone)
            return Status::Error;
        if (scratch.size() < n)
            scratch.resize(static_cast<size_t>(n));
        if (!decodeRun(scratch.data(), n))
            return Status::Error;
        accDone += n;
        if (sink)
            sink->onAccessBatch(scratch.data(),
                                static_cast<size_t>(n));
        break;
      }
      case TraceOp::Manual: {
        uint64_t id = 0;
        if (!readVarint(ev, evEnd, id))
            return Status::Error;
        if (sink)
            sink->onManualMarker(static_cast<uint32_t>(id));
        break;
      }
      case TraceOp::Phase: {
        uint64_t id = 0;
        if (!readVarint(ev, evEnd, id))
            return Status::Error;
        if (sink)
            sink->onPhaseMarker(static_cast<PhaseId>(id));
        break;
      }
      case TraceOp::End:
        if (sink)
            sink->onEnd();
        break;
      default:
        return Status::Error;
    }
    ++evDone;
    return Status::Event;
}

} // namespace lpp::trace
