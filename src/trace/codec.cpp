#include "trace/codec.hpp"

#include <algorithm>

#include "trace/memory_trace.hpp"

namespace lpp::trace {

namespace {

/** Map a signed delta onto small unsigned values (zig-zag). */
inline uint64_t
zigzag(uint64_t value, uint64_t prev)
{
    int64_t d = static_cast<int64_t>(value - prev);
    return (static_cast<uint64_t>(d) << 1) ^
           static_cast<uint64_t>(d >> 63);
}

/** Inverse of zigzag(): recover the value from the coded delta. */
inline uint64_t
unzigzag(uint64_t coded, uint64_t prev)
{
    int64_t d = static_cast<int64_t>((coded >> 1) ^
                                     (~(coded & 1) + 1));
    return prev + static_cast<uint64_t>(d);
}

/**
 * Decode one varint from [*p, end). Returns false on truncation. The
 * caller's cursor advances past the consumed bytes on success.
 */
inline bool
readVarint(const uint8_t *&p, const uint8_t *end, uint64_t &v)
{
    uint64_t out = 0;
    unsigned shift = 0;
    while (p < end && shift < 64) {
        uint8_t byte = *p++;
        out |= static_cast<uint64_t>(byte & 0x7F) << shift;
        if ((byte & 0x80) == 0) {
            v = out;
            return true;
        }
        shift += 7;
    }
    return false;
}

} // namespace

void
TraceEncoder::putVarint(uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<uint8_t>(v));
}

void
TraceEncoder::putDelta(uint64_t value, uint64_t &prev)
{
    putVarint(zigzag(value, prev));
    prev = value;
}

void
TraceEncoder::onBlock(BlockId block, uint32_t instructions)
{
    out.push_back(static_cast<uint8_t>(TraceOp::Block));
    putDelta(block, prevBlock);
    putVarint(instructions);
    ++events;
}

void
TraceEncoder::onAccess(Addr addr)
{
    out.push_back(static_cast<uint8_t>(TraceOp::Access));
    putDelta(addr, prevAddr);
    ++events;
    ++accesses;
}

void
TraceEncoder::onAccessBatch(const Addr *addrs, size_t n)
{
    out.push_back(static_cast<uint8_t>(TraceOp::Batch));
    putVarint(n);
    // Worst case ten bytes per delta. Grow geometrically: reserving
    // just past size() per batch would force a full copy of the
    // payload on every batch — quadratic over the whole stream.
    if (out.capacity() - out.size() < 10 * n)
        out.reserve(std::max(out.capacity() * 2, out.size() + 10 * n));
    for (size_t i = 0; i < n; ++i)
        putDelta(addrs[i], prevAddr);
    ++events;
    accesses += n;
}

void
TraceEncoder::onManualMarker(uint32_t marker_id)
{
    out.push_back(static_cast<uint8_t>(TraceOp::Manual));
    putVarint(marker_id);
    ++events;
}

void
TraceEncoder::onPhaseMarker(PhaseId phase)
{
    out.push_back(static_cast<uint8_t>(TraceOp::Phase));
    putVarint(phase);
    ++events;
}

void
TraceEncoder::onEnd()
{
    out.push_back(static_cast<uint8_t>(TraceOp::End));
    ++events;
}

bool
decodeTrace(const uint8_t *data, size_t size, TraceSink &sink,
            uint64_t *events_out, uint64_t *accesses_out)
{
    const uint8_t *p = data;
    const uint8_t *end = data + size;
    uint64_t prevAddr = 0;
    uint64_t prevBlock = 0;
    uint64_t events = 0;
    uint64_t accesses = 0;
    std::vector<Addr> batch;

    while (p < end) {
        uint8_t op = *p++;
        switch (static_cast<TraceOp>(op)) {
          case TraceOp::Block: {
            uint64_t d = 0, instrs = 0;
            if (!readVarint(p, end, d) || !readVarint(p, end, instrs))
                return false;
            prevBlock = unzigzag(d, prevBlock);
            sink.onBlock(static_cast<BlockId>(prevBlock),
                         static_cast<uint32_t>(instrs));
            break;
          }
          case TraceOp::Access: {
            uint64_t d = 0;
            if (!readVarint(p, end, d))
                return false;
            prevAddr = unzigzag(d, prevAddr);
            sink.onAccess(prevAddr);
            ++accesses;
            break;
          }
          case TraceOp::Batch: {
            uint64_t n = 0;
            if (!readVarint(p, end, n))
                return false;
            // A batch cannot have more deltas than remaining bytes;
            // reject early so a corrupt length cannot force a huge
            // allocation.
            if (n > static_cast<uint64_t>(end - p))
                return false;
            batch.resize(static_cast<size_t>(n));
            Addr *dst = batch.data();
            size_t i = 0;
            // Unrolled fast path: while at least four worst-case
            // varints remain, decode four deltas without per-byte
            // bounds checks in readVarint's loop condition.
            while (i + 4 <= n &&
                   end - p >= 4 * 10) {
                for (int k = 0; k < 4; ++k) {
                    uint64_t coded = 0;
                    unsigned shift = 0;
                    uint8_t byte = 0x80;
                    while (byte & 0x80) {
                        // Ten bytes bound a 64-bit varint; a longer
                        // run is corruption, not data.
                        if (shift >= 70)
                            return false;
                        byte = *p++;
                        coded |=
                            static_cast<uint64_t>(byte & 0x7F) << shift;
                        shift += 7;
                    }
                    prevAddr = unzigzag(coded, prevAddr);
                    dst[i + static_cast<size_t>(k)] = prevAddr;
                }
                i += 4;
            }
            for (; i < n; ++i) {
                uint64_t coded = 0;
                if (!readVarint(p, end, coded))
                    return false;
                prevAddr = unzigzag(coded, prevAddr);
                dst[i] = prevAddr;
            }
            sink.onAccessBatch(dst, static_cast<size_t>(n));
            accesses += n;
            break;
          }
          case TraceOp::Manual: {
            uint64_t id = 0;
            if (!readVarint(p, end, id))
                return false;
            sink.onManualMarker(static_cast<uint32_t>(id));
            break;
          }
          case TraceOp::Phase: {
            uint64_t id = 0;
            if (!readVarint(p, end, id))
                return false;
            sink.onPhaseMarker(static_cast<PhaseId>(id));
            break;
          }
          case TraceOp::End:
            sink.onEnd();
            break;
          default:
            return false;
        }
        ++events;
    }
    if (events_out)
        *events_out = events;
    if (accesses_out)
        *accesses_out = accesses;
    return true;
}

std::vector<uint8_t>
encodeTrace(const MemoryTrace &trace)
{
    TraceEncoder enc;
    trace.replay(enc);
    return enc.take();
}

uint64_t
contentHash64(const uint8_t *data, size_t size)
{
    // FNV-1a over 8-byte lanes (tail bytes zero-padded), then a
    // mix64 finalizer so nearby payloads land far apart.
    uint64_t h = 0xcbf29ce484222325ULL ^ (size * 0x9E3779B97F4A7C15ULL);
    size_t i = 0;
    for (; i + 8 <= size; i += 8) {
        uint64_t lane = 0;
        for (int b = 0; b < 8; ++b)
            lane |= static_cast<uint64_t>(data[i + static_cast<size_t>(b)])
                    << (8 * b);
        h = (h ^ lane) * 0x100000001b3ULL;
    }
    uint64_t tail = 0;
    for (int b = 0; i < size; ++i, ++b)
        tail |= static_cast<uint64_t>(data[i]) << (8 * b);
    h = (h ^ tail) * 0x100000001b3ULL;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ULL;
    h ^= h >> 33;
    return h;
}

} // namespace lpp::trace
