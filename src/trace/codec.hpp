/**
 * @file
 * Compact binary codecs for trace event streams.
 *
 * Two generations live here. The v1 codec delta-codes the address
 * stream (one running predecessor across single accesses and batches
 * alike), zig-zags the signed deltas, and varint-packs the result —
 * two or three bytes per access on a typical workload. It survives as
 * the canonical flat serialization the equivalence tests compare with
 * (encodeTrace of two streams is equal iff the streams are
 * bit-identical).
 *
 * The v2 *frame* codec adds a history-predictive stage. Workload
 * address streams are not just local, they are *predictable*: the same
 * static reference (block, operand slot) walks an affine sequence, so
 * a per-(block, lane) value predictor — a Value Prediction Table
 * holding the last address and a short stride history, classified by a
 * saturating-confidence table — guesses most addresses outright. The
 * encoder then spends one bitmap *bit* per predicted access and emits
 * varint residue only for mispredictions. Streams are cut into frames
 * of about a million accesses; each frame stores the codec seeds it
 * starts from and resets the predictor tables, so any frame decodes
 * independently of the others (random access for sharded replay)
 * while staying bit-exact end to end.
 *
 * A frame payload is three consecutive sections:
 *   events  — one opcode byte per event; Block carries
 *             zigzag(block delta) + varint(instructions), Batch
 *             carries varint(length), Manual/Phase carry varint(id).
 *             Access and Batch carry *no* address bytes.
 *   bitmap  — one bit per data access, LSB-first: 1 = the predictor's
 *             guess was the address, 0 = read a residue.
 *   residue — zigzag varint of (address − predicted) per 0-bit.
 * Both sides run the identical predictor in lockstep, so the decoder
 * reconstructs every address from the bit stream alone; the 4-wide
 * unrolled fast path turns four consecutive 1-bits into four
 * predict/update steps with no byte decoding at all.
 *
 * Sealing additionally runs each section through a byte-level LZ pass
 * (lzPack below). The event section is the big winner — workload
 * loops emit near-identical (Block, Batch) byte groups millions of
 * times — and a well-predicted stream's bitmap is runs of 0xFF bytes.
 * A section that does not shrink is stored raw; FrameInfo records both
 * the logical and the stored size per section, and stored == logical
 * means raw. Decoding unpacks into reused per-cursor buffers
 * (unpackFrame), so the bounded-replay working set stays one frame.
 *
 * Encoding preserves the stream exactly, including access-batch
 * boundaries; FrameDecoder is strict — any malformed byte stops the
 * decode with an error, never with out-of-bounds reads.
 */

#ifndef LPP_TRACE_CODEC_HPP
#define LPP_TRACE_CODEC_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/sink.hpp"
#include "trace/types.hpp"

namespace lpp::trace {

class StreamingTrace;
using MemoryTrace = StreamingTrace;

/** Event opcodes of the encoded stream (one byte each). */
enum class TraceOp : uint8_t
{
    Block = 0,  //!< zigzag(blockId delta), varint(instructions)
    Access = 1, //!< v1: zigzag(address delta); v2: no operands
    Batch = 2,  //!< v1: varint(n), n deltas; v2: varint(n) only
    Manual = 3, //!< varint(marker id)
    Phase = 4,  //!< varint(phase id)
    End = 5,    //!< no operands
};

/**
 * Sink that delta + varint encodes the stream it observes (v1 flat
 * codec). Feed it a live execution (or StreamingTrace::replay) and
 * take() the bytes.
 */
class TraceEncoder : public TraceSink
{
  public:
    void onBlock(BlockId block, uint32_t instructions) override;
    void onAccess(Addr addr) override;
    void onAccessBatch(const Addr *addrs, size_t n) override;
    void onManualMarker(uint32_t marker_id) override;
    void onPhaseMarker(PhaseId phase) override;
    void onEnd() override;

    /** @return the encoded payload so far. */
    const std::vector<uint8_t> &bytes() const { return out; }

    /** @return the encoded payload (moves it out). */
    std::vector<uint8_t> take() { return std::move(out); }

    /** @return events encoded (a batch counts as one event). */
    uint64_t eventCount() const { return events; }

    /** @return data accesses encoded. */
    uint64_t accessCount() const { return accesses; }

  private:
    void putVarint(uint64_t v);
    void putDelta(uint64_t value, uint64_t &prev);

    std::vector<uint8_t> out;
    uint64_t prevAddr = 0;
    uint64_t prevBlock = 0;
    uint64_t events = 0;
    uint64_t accesses = 0;
};

/**
 * Decode a v1 flat payload, re-delivering the stream into `sink` with
 * the original event order and batch boundaries. Strict: any malformed
 * byte (unknown opcode, truncated varint, truncated batch) aborts the
 * decode and returns false — the caller falls back to live execution.
 *
 * @param events_out   decoded event count (valid on success)
 * @param accesses_out decoded access count (valid on success)
 */
bool decodeTrace(const uint8_t *data, size_t size, TraceSink &sink,
                 uint64_t *events_out = nullptr,
                 uint64_t *accesses_out = nullptr);

/** Encode a recording with the v1 flat codec (replays it through a
 *  TraceEncoder). The canonical stream-equality serialization. */
std::vector<uint8_t> encodeTrace(const MemoryTrace &trace);

/**
 * 64-bit content hash (FNV-1a over 8-byte lanes with a finalizing
 * avalanche); verifies stored payloads against bit rot and truncation.
 */
uint64_t contentHash64(const uint8_t *data, size_t size);

// Byte-level LZ section transform -----------------------------------

/**
 * Greedy LZ with a 64 KiB window (hash-chained 4-byte anchors), in the
 * token-stream style of the LZ4 block format: a token byte splits into
 * a literal-run length and a match length (15 escapes to 255-extension
 * bytes), followed by the literals, a 2-byte little-endian match
 * offset, and nothing else — the decoder knows the exact output size
 * up front, so the final sequence simply omits the match.
 *
 * Appends the packed bytes to `out` and returns the packed size, or
 * returns 0 having left `out` untouched when packing would not shrink
 * the input (the caller stores such a section raw).
 */
size_t lzPack(const uint8_t *src, size_t n, std::vector<uint8_t> &out);

/**
 * Strict inverse of lzPack: unpack exactly `dst_bytes` bytes. Every
 * read and copy is bounds-checked; returns false on any malformed
 * token, offset past the produced prefix, or output-size mismatch —
 * never reads or writes out of bounds.
 */
bool lzUnpack(const uint8_t *src, size_t n, uint8_t *dst,
              size_t dst_bytes);

// Predictive frame codec (v2) ---------------------------------------

/** Geometry of the address predictor both codec sides run. */
struct PredictorConfig
{
    /** log2 of Value Prediction Table entries. */
    uint32_t tableBits = 14;

    /**
     * log2 of distinct predictor lanes per block: the i-th access
     * since the last block event selects lane min(i, 2^laneBits − 1),
     * so each static reference slot trains its own stride history and
     * long runs share a steady-state lane.
     */
    uint32_t laneBits = 6;

    /** Stride-history depth per entry (1..maxHistoryDepth). */
    uint32_t historyDepth = 4;

    bool
    operator==(const PredictorConfig &o) const
    {
        return tableBits == o.tableBits && laneBits == o.laneBits &&
               historyDepth == o.historyDepth;
    }

    /** @return whether the geometry is implementable. */
    bool valid() const;
};

/** Codec state a frame starts from, recorded per frame so any frame
 *  decodes without touching its predecessors. */
struct FrameSeeds
{
    uint64_t prevAddr = 0;  //!< delta-chain fallback predecessor
    uint64_t prevBlock = 0; //!< block-id delta chain
    uint64_t ctxBlock = 0;  //!< predictor block context
    uint64_t ctxLane = 0;   //!< accesses since the last block event

    bool
    operator==(const FrameSeeds &o) const
    {
        return prevAddr == o.prevAddr && prevBlock == o.prevBlock &&
               ctxBlock == o.ctxBlock && ctxLane == o.ctxLane;
    }
};

/** Frame directory entry: where the frame sits in the stream, how its
 *  payload splits into sections, and the hash guarding it on disk. */
struct FrameInfo
{
    uint64_t firstEvent = 0;  //!< global index of the first event
    uint64_t firstAccess = 0; //!< accesses recorded before the frame
    uint64_t events = 0;      //!< events in the frame (batch = one)
    uint64_t accesses = 0;    //!< data accesses in the frame
    uint64_t eventBytes = 0;  //!< logical section sizes, in order
    uint64_t bitmapBytes = 0;
    uint64_t residueBytes = 0;
    /** Bytes each section occupies in the payload: equal to the
     *  logical size when stored raw, smaller when LZ-packed. */
    uint64_t storedEventBytes = 0;
    uint64_t storedBitmapBytes = 0;
    uint64_t storedResidueBytes = 0;
    uint64_t payloadHash = 0; //!< contentHash64 of the stored payload
    FrameSeeds seeds;         //!< codec state at frame start

    /** @return stored payload size (what memory and disk hold). */
    uint64_t
    payloadBytes() const
    {
        return storedEventBytes + storedBitmapBytes +
               storedResidueBytes;
    }
};

/**
 * One frame's sections, unpacked and ready for FrameDecoder: pointers
 * into the payload for raw sections, into reused private buffers for
 * LZ-packed ones. Reuse one FrameSections across frames so a long
 * replay allocates its decode buffers once.
 */
struct FrameSections
{
    const uint8_t *events = nullptr;
    const uint8_t *bitmap = nullptr;
    const uint8_t *residue = nullptr;
    std::vector<uint8_t> scratch[3]; //!< backing for packed sections
};

/**
 * Resolve a frame's stored payload into decodable sections. `payload`
 * must hold info.payloadBytes() bytes. Returns false if an LZ-packed
 * section fails to unpack to its logical size (corrupt frame); the
 * caller decides whether that is a clean cache miss (file data) or an
 * invariant violation (in-memory data).
 */
bool unpackFrame(const FrameInfo &info, const uint8_t *payload,
                 FrameSections &out);

/** Same, but from three separately-stored section pointers (the
 *  in-memory frame views, whose open frame is not contiguous). */
bool unpackFrame(const FrameInfo &info, const uint8_t *events,
                 const uint8_t *bitmap, const uint8_t *residue,
                 FrameSections &out);

/**
 * The value predictor both codec sides run in lockstep: a Value
 * Prediction Table of (last address, stride-history ring) entries
 * keyed by (block context, access lane), classified by a 2-bit
 * saturating confidence counter per entry. Prediction is last-value
 * at low confidence and last + chosen-history-stride otherwise; a
 * cold entry falls back to the running previous address, which makes
 * the worst case exactly the v1 delta chain. The matched stride slot
 * is remembered as `chosen`, and because updates push the observed
 * stride to the ring's front, slot k keeps predicting stride patterns
 * of period k+1 (constant strides at k = 0, alternating pairs at
 * k = 1, ...).
 *
 * Each entry additionally classifies a *cross-lane* mode: the delta
 * from the immediately preceding access of the stream, whatever lane
 * it belonged to. Derived references — b[i] read right after a[i], or
 * x[k+1] right after x[k] — have a constant cross-lane delta even
 * when their own last-value stride is data-dependent random, so when
 * the cross-lane confidence beats the stride confidence the entry
 * predicts prevAddr + prevDelta instead.
 *
 * Determinism is the contract: predict() depends only on the stream
 * prefix already updated, so encoder and decoder agree bit for bit.
 */
class AddressPredictor
{
  public:
    static constexpr uint32_t maxHistoryDepth = 4;

    explicit AddressPredictor(const PredictorConfig &cfg);

    /** Clear every table entry and restart from `seeds` (O(1): entries
     *  are epoch-stamped, not rewritten). */
    void reset(const FrameSeeds &seeds);

    /** A block event: switch context and rewind the lane counter. */
    void
    observeBlock(BlockId block)
    {
        ctxBlock = block;
        ctxLane = 0;
    }

    /** @return the predicted next address (call before update()). */
    Addr predict() const;

    /** Train on the actual address and advance the lane. */
    void update(Addr actual);

    /** @return the current codec seeds (for sealing a frame). */
    FrameSeeds
    seeds() const
    {
        return FrameSeeds{prevAddr, 0, ctxBlock, ctxLane};
    }

  private:
    struct Entry
    {
        uint64_t last = 0;
        int64_t strides[maxHistoryDepth] = {};
        int64_t prevDelta = 0; //!< cross-lane: addr − preceding addr
        uint32_t epoch = 0;
        uint8_t filled = 0;
        uint8_t conf = 0;
        uint8_t chosen = 0;
        uint8_t prevConf = 0; //!< cross-lane mode confidence
    };

    size_t index() const;

    std::vector<Entry> table;
    uint32_t epoch = 1;
    uint32_t laneCap;
    uint32_t depth;
    uint32_t indexShift;
    uint64_t prevAddr = 0;
    uint64_t ctxBlock = 0;
    uint64_t ctxLane = 0;
};

/**
 * Builds one frame's three sections as events arrive. The owner
 * (StreamingTrace) decides when to seal; seal() emits the
 * concatenated payload plus its FrameInfo and resets the builder to
 * start the next frame from the current codec state.
 */
class FrameEncoder
{
  public:
    explicit FrameEncoder(const PredictorConfig &cfg);

    void onBlock(BlockId block, uint32_t instructions);
    void onAccess(Addr addr);
    void onAccessBatch(const Addr *addrs, size_t n);
    void onManualMarker(uint32_t marker_id);
    void onPhaseMarker(PhaseId phase);
    void onEnd();

    /** @return events appended to the open frame. */
    uint64_t events() const { return eventCnt; }

    /** @return data accesses appended to the open frame. */
    uint64_t accesses() const { return accessCnt; }

    /** @return whether the open frame holds no events. */
    bool empty() const { return eventCnt == 0; }

    /** @return bytes currently held by the open frame's sections. */
    size_t
    sectionBytes() const
    {
        return eventSec.size() + bitmapSec.size() + residueSec.size();
    }

    /** @return heap capacity of the builder, for memory accounting. */
    size_t
    capacityBytes() const
    {
        return eventSec.capacity() + bitmapSec.capacity() +
               residueSec.capacity();
    }

    /**
     * Close the open frame: fill `info` (section sizes, counts, seeds,
     * payload hash — the caller assigns the global offsets), move the
     * concatenated payload into `payload`, and reset for the next
     * frame, which inherits the current codec state as its seeds.
     */
    void seal(FrameInfo &info, std::vector<uint8_t> &payload);

    /** Describe the open frame without sealing it: fills `info` and
     *  copies the payload (used when persisting a live recording). */
    void materialize(FrameInfo &info,
                     std::vector<uint8_t> &payload) const;

    /** Section views for decoding the open frame in place. Invalidated
     *  by any subsequent append. */
    const std::vector<uint8_t> &eventSection() const { return eventSec; }
    const std::vector<uint8_t> &bitmapSection() const { return bitmapSec; }
    const std::vector<uint8_t> &residueSection() const
    {
        return residueSec;
    }

    /** @return the codec seeds the open frame started from. */
    const FrameSeeds &startSeeds() const { return start; }

    /** Drop all state and restart the stream from scratch. */
    void restart();

  private:
    void putVarint(std::vector<uint8_t> &out, uint64_t v);
    void appendAccess(Addr addr);
    void fillInfo(FrameInfo &info) const;

    AddressPredictor predictor;
    std::vector<uint8_t> eventSec;
    std::vector<uint8_t> bitmapSec;
    std::vector<uint8_t> residueSec;
    FrameSeeds start;
    uint64_t prevBlock = 0;
    uint64_t eventCnt = 0;
    uint64_t accessCnt = 0;
    uint64_t bitCnt = 0;
};

/**
 * Resumable decoder over one frame. Bind it to a frame's sections
 * with begin(), then pull events one at a time; pass a null sink to
 * skip events (codec state still advances — how a cursor seeks into
 * the middle of a frame). Strict and allocation-bounded: every read
 * is bounds-checked, a corrupt batch length cannot allocate more than
 * the frame's declared access count, and any inconsistency surfaces
 * as Error, never as undefined behavior.
 */
class FrameDecoder
{
  public:
    enum class Status
    {
        Event, //!< one event decoded (and delivered, if sink != null)
        Done,  //!< frame fully decoded and internally consistent
        Error, //!< malformed frame; stream state is unusable
    };

    explicit FrameDecoder(const PredictorConfig &cfg);

    /** Bind to a frame. The section pointers must stay valid until the
     *  frame is done; `info`'s counts bound every allocation. */
    void begin(const FrameInfo &info, const uint8_t *events,
               const uint8_t *bitmap, const uint8_t *residue);

    /** Decode the next event into `sink` (or skip it when null),
     *  buffering batch addresses in `scratch`. */
    Status next(TraceSink *sink, std::vector<Addr> &scratch);

    /** @return events decoded so far in this frame. */
    uint64_t eventsDecoded() const { return evDone; }

    /** @return accesses decoded so far in this frame. */
    uint64_t accessesDecoded() const { return accDone; }

  private:
    bool readBit(bool &bit);
    bool decodeAddr(Addr &addr);
    bool decodeRun(Addr *dst, uint64_t n);

    AddressPredictor predictor;
    const uint8_t *ev = nullptr, *evEnd = nullptr;
    const uint8_t *bm = nullptr;
    const uint8_t *res = nullptr, *resEnd = nullptr;
    uint64_t bitAvail = 0;
    uint64_t bitPos = 0;
    uint64_t prevBlock = 0;
    uint64_t evTotal = 0, accTotal = 0;
    uint64_t evDone = 0, accDone = 0;
};

} // namespace lpp::trace

#endif // LPP_TRACE_CODEC_HPP
