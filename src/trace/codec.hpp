/**
 * @file
 * Compact binary codec for trace event streams.
 *
 * A recorded execution (trace::MemoryTrace) stores eight raw bytes per
 * address, but workload address streams are strongly local: consecutive
 * accesses usually differ by one element or one row. The codec
 * therefore delta-codes the address stream (one running predecessor
 * across single accesses and batches alike), zig-zags the signed
 * deltas, and varint-packs the result, which shrinks a typical workload
 * trace to two or three bytes per access. Block ids are delta-coded the
 * same way against the previous block id.
 *
 * The encoding preserves the stream *exactly*, including access-batch
 * boundaries: a Batch event re-emerges as one onAccessBatch call of the
 * original length, a single Access as one onAccess call. Encoding via
 * TraceEncoder (a TraceSink) and decoding via decodeTrace() are exact
 * inverses, so record → encode → decode → replay is bit-identical to
 * the live stream — the property the execution plan's equivalence
 * tests pin down.
 *
 * decodeTrace() is the replay hot path: it decodes each batch into a
 * reused buffer with an unrolled varint loop and hands it straight to
 * TraceSink::onAccessBatch, so a cached trace replays at close to
 * memory bandwidth instead of at workload-simulation speed.
 */

#ifndef LPP_TRACE_CODEC_HPP
#define LPP_TRACE_CODEC_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/sink.hpp"
#include "trace/types.hpp"

namespace lpp::trace {

class MemoryTrace;

/** Event opcodes of the encoded stream (one byte each). */
enum class TraceOp : uint8_t
{
    Block = 0,  //!< zigzag(blockId delta), varint(instructions)
    Access = 1, //!< zigzag(address delta)
    Batch = 2,  //!< varint(n), n * zigzag(address delta)
    Manual = 3, //!< varint(marker id)
    Phase = 4,  //!< varint(phase id)
    End = 5,    //!< no operands
};

/**
 * Sink that delta + varint encodes the stream it observes. Feed it a
 * live execution (or MemoryTrace::replay) and take() the bytes.
 */
class TraceEncoder : public TraceSink
{
  public:
    void onBlock(BlockId block, uint32_t instructions) override;
    void onAccess(Addr addr) override;
    void onAccessBatch(const Addr *addrs, size_t n) override;
    void onManualMarker(uint32_t marker_id) override;
    void onPhaseMarker(PhaseId phase) override;
    void onEnd() override;

    /** @return the encoded payload so far. */
    const std::vector<uint8_t> &bytes() const { return out; }

    /** @return the encoded payload (moves it out). */
    std::vector<uint8_t> take() { return std::move(out); }

    /** @return events encoded (a batch counts as one event). */
    uint64_t eventCount() const { return events; }

    /** @return data accesses encoded. */
    uint64_t accessCount() const { return accesses; }

  private:
    void putVarint(uint64_t v);
    void putDelta(uint64_t value, uint64_t &prev);

    std::vector<uint8_t> out;
    uint64_t prevAddr = 0;
    uint64_t prevBlock = 0;
    uint64_t events = 0;
    uint64_t accesses = 0;
};

/**
 * Decode an encoded payload, re-delivering the stream into `sink` with
 * the original event order and batch boundaries. Strict: any malformed
 * byte (unknown opcode, truncated varint, truncated batch) aborts the
 * decode and returns false — the caller falls back to live execution.
 *
 * @param events_out   decoded event count (valid on success)
 * @param accesses_out decoded access count (valid on success)
 */
bool decodeTrace(const uint8_t *data, size_t size, TraceSink &sink,
                 uint64_t *events_out = nullptr,
                 uint64_t *accesses_out = nullptr);

/** Encode a recording (replays it through a TraceEncoder). */
std::vector<uint8_t> encodeTrace(const MemoryTrace &trace);

/**
 * 64-bit content hash (FNV-1a over 8-byte lanes with a finalizing
 * avalanche); verifies stored payloads against bit rot and truncation.
 */
uint64_t contentHash64(const uint8_t *data, size_t size);

} // namespace lpp::trace

#endif // LPP_TRACE_CODEC_HPP
