/**
 * @file
 * In-memory trace recorders used by the off-line analysis.
 */

#ifndef LPP_TRACE_RECORDER_HPP
#define LPP_TRACE_RECORDER_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/sink.hpp"
#include "trace/types.hpp"

namespace lpp::trace {

/**
 * Records the full data-access trace. Only used for small training runs
 * and unit tests; the production path samples instead (reuse module).
 */
class AccessRecorder : public TraceSink
{
  public:
    void onAccess(Addr addr) override { addrs.push_back(addr); }

    void
    onAccessBatch(const Addr *batch, size_t n) override
    {
        addrs.insert(addrs.end(), batch, batch + n);
    }

    /** @return the recorded address sequence. */
    const std::vector<Addr> &accesses() const { return addrs; }

    /** Release the recorded trace (moves it out). */
    std::vector<Addr> take() { return std::move(addrs); }

  private:
    std::vector<Addr> addrs;
};

/** One basic-block execution with its position on both logical clocks. */
struct BlockEvent
{
    BlockId block = 0;         //!< basic block identifier
    uint32_t instructions = 0; //!< instructions retired by this execution
    uint64_t accessTime = 0;   //!< data accesses before this block ran
    uint64_t instrTime = 0;    //!< instructions retired before this run
};

/**
 * Records the basic-block trace with both logical clocks, as needed by
 * marker selection (instruction positions) and by the correlation of
 * block positions against access-trace phase boundaries.
 */
class BlockRecorder : public TraceSink
{
  public:
    void onBlock(BlockId block, uint32_t instructions) override;
    void onAccess(Addr) override { ++accessClock; }

    void
    onAccessBatch(const Addr *, size_t n) override
    {
        accessClock += n;
    }

    /**
     * Append `other`'s recording as if its stream had been delivered
     * right after this one's: other's block events shift by this
     * recorder's current clocks, and both clocks advance by other's
     * totals. Merging per-chunk recorders in chunk order this way is
     * bit-identical to recording the unchunked stream.
     */
    void absorb(const BlockRecorder &other);

    /** Pre-size the block-event buffer (reserve-ahead hint). */
    void reserve(size_t block_hint) { blockEvents.reserve(block_hint); }

    /** @return the recorded block event sequence. */
    const std::vector<BlockEvent> &events() const { return blockEvents; }

    /** @return total instructions retired. */
    uint64_t totalInstructions() const { return instrClock; }

    /** @return total data accesses observed. */
    uint64_t totalAccesses() const { return accessClock; }

  private:
    std::vector<BlockEvent> blockEvents;
    uint64_t accessClock = 0;
    uint64_t instrClock = 0;
};

/**
 * Records the logical times (access counts) at which manual markers fire;
 * ground truth for the Table 6 recall/precision comparison.
 */
class ManualMarkerRecorder : public TraceSink
{
  public:
    void onAccess(Addr) override { ++accessClock; }

    void
    onAccessBatch(const Addr *, size_t n) override
    {
        accessClock += n;
    }

    void
    onManualMarker(uint32_t marker_id) override
    {
        markerTimes.push_back(accessClock);
        markerIds.push_back(marker_id);
    }

    /** @return access-clock timestamps of every manual marker firing. */
    const std::vector<uint64_t> &times() const { return markerTimes; }

    /** @return the marker id of each firing, aligned with times(). */
    const std::vector<uint32_t> &ids() const { return markerIds; }

  private:
    std::vector<uint64_t> markerTimes;
    std::vector<uint32_t> markerIds;
    uint64_t accessClock = 0;
};

} // namespace lpp::trace

#endif // LPP_TRACE_RECORDER_HPP
