#include "trace/validator.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <utility>

#include "support/logging.hpp"

namespace lpp::trace {

namespace {

/** snprintf into a std::string (messages are short). */
template <typename... Args>
std::string
format(const char *fmt, Args... args)
{
    char buf[192];
    std::snprintf(buf, sizeof(buf), fmt, args...);
    return buf;
}

} // namespace

ValidatingSink::ValidatingSink(TraceSink *downstream, ValidatorConfig cfg_)
    : next(downstream), cfg(cfg_)
{
}

void
ValidatingSink::allowRange(Addr lo, Addr hi)
{
    LPP_REQUIRE(lo < hi, "empty address range [%llu, %llu)",
                static_cast<unsigned long long>(lo),
                static_cast<unsigned long long>(hi));
    ranges.emplace_back(lo, hi);
    rangesSorted = false;
}

void
ValidatingSink::watch(const BatchSource *source)
{
    if (std::find(watched.begin(), watched.end(), source) == watched.end())
        watched.push_back(source);
}

void
ValidatingSink::unwatch(const BatchSource *source)
{
    watched.erase(std::remove(watched.begin(), watched.end(), source),
                  watched.end());
}

void
ValidatingSink::onBlock(BlockId block, uint32_t instructions)
{
    checkLive("onBlock");
    checkFlushed("onBlock");
    if (cfg.blockLimit != ValidatorConfig::noBlockLimit &&
        block >= cfg.blockLimit) {
        violate(Kind::BlockOutOfRange,
                format("block %u outside registered range [0, %u)", block,
                       cfg.blockLimit));
    }
    if (instructions < cfg.minBlockInstructions ||
        instructions > cfg.maxBlockInstructions) {
        violate(Kind::InstructionsOutOfRange,
                format("block %u retired %u instructions, outside [%u, %u]",
                       block, instructions, cfg.minBlockInstructions,
                       cfg.maxBlockInstructions));
    }
    ++events;
    if (next)
        next->onBlock(block, instructions);
}

void
ValidatingSink::onAccess(Addr addr)
{
    checkLive("onAccess");
    checkAddress(addr);
    ++events;
    if (next)
        next->onAccess(addr);
}

void
ValidatingSink::onAccessBatch(const Addr *addrs, size_t n)
{
    checkLive("onAccessBatch");
    for (size_t i = 0; i < n; ++i)
        checkAddress(addrs[i]);
    ++events;
    if (next)
        next->onAccessBatch(addrs, n);
}

void
ValidatingSink::onManualMarker(uint32_t marker_id)
{
    checkLive("onManualMarker");
    checkFlushed("onManualMarker");
    ++events;
    if (next)
        next->onManualMarker(marker_id);
}

void
ValidatingSink::onPhaseMarker(PhaseId phase)
{
    checkLive("onPhaseMarker");
    checkFlushed("onPhaseMarker");
    ++events;
    if (next)
        next->onPhaseMarker(phase);
}

void
ValidatingSink::onEnd()
{
    if (endSeen) {
        violate(Kind::DoubleEnd, "onEnd fired twice");
        ++events;
        return; // not forwarded: downstream saw a terminal end already
    }
    checkFlushed("onEnd");
    endSeen = true;
    ++events;
    if (next)
        next->onEnd();
}

uint64_t
ValidatingSink::countOf(Kind kind) const
{
    return counts[static_cast<size_t>(kind)];
}

std::string
ValidatingSink::reportText() const
{
    if (total == 0)
        return "trace protocol: clean (" + std::to_string(events) +
               " events)";
    std::string out = "trace protocol: " + std::to_string(total) +
                      " violation(s) in " + std::to_string(events) +
                      " events\n";
    for (const auto &v : recorded) {
        out += format("  [%s] event %" PRIu64 ": ", kindName(v.kind),
                      v.eventIndex);
        out += v.message;
        out += '\n';
    }
    if (total > recorded.size())
        out += format("  ... %" PRIu64 " more not recorded\n",
                      total - recorded.size());
    return out;
}

const char *
ValidatingSink::kindName(Kind kind)
{
    switch (kind) {
      case Kind::UnflushedBatch:
        return "unflushed-batch";
      case Kind::BlockOutOfRange:
        return "block-out-of-range";
      case Kind::InstructionsOutOfRange:
        return "instructions-out-of-range";
      case Kind::AddressOutOfRange:
        return "address-out-of-range";
      case Kind::EventAfterEnd:
        return "event-after-end";
      case Kind::DoubleEnd:
        return "double-end";
    }
    return "unknown";
}

void
ValidatingSink::checkFlushed(const char *event)
{
    for (const BatchSource *src : watched) {
        size_t pending = src->pendingAccesses();
        if (pending > 0) {
            violate(Kind::UnflushedBatch,
                    format("%s arrived with %zu buffered access(es) not "
                           "yet flushed",
                           event, pending));
        }
    }
}

void
ValidatingSink::checkLive(const char *event)
{
    if (endSeen)
        violate(Kind::EventAfterEnd,
                format("%s fired after onEnd", event));
}

void
ValidatingSink::checkAddress(Addr addr)
{
    if (ranges.empty())
        return;
    if (!rangesSorted) {
        std::sort(ranges.begin(), ranges.end());
        rangesSorted = true;
    }
    // First range starting after addr; the candidate is its predecessor.
    auto it = std::upper_bound(
        ranges.begin(), ranges.end(), addr,
        [](Addr a, const std::pair<Addr, Addr> &r) { return a < r.first; });
    if (it == ranges.begin() || addr >= (it - 1)->second) {
        violate(Kind::AddressOutOfRange,
                format("access to %#llx outside the declared address space",
                       static_cast<unsigned long long>(addr)));
    }
}

void
ValidatingSink::violate(Kind kind, std::string message)
{
    if (cfg.panicOnViolation) {
        panic("trace protocol violation [%s] at event %llu: %s",
              kindName(kind), static_cast<unsigned long long>(events),
              message.c_str());
    }
    ++counts[static_cast<size_t>(kind)];
    ++total;
    if (recorded.size() < cfg.maxRecorded)
        recorded.push_back(Violation{kind, events, std::move(message)});
}

} // namespace lpp::trace
