#include "trace/recorder.hpp"

namespace lpp::trace {

void
BlockRecorder::onBlock(BlockId block, uint32_t instructions)
{
    blockEvents.push_back(
        BlockEvent{block, instructions, accessClock, instrClock});
    instrClock += instructions;
}

void
BlockRecorder::absorb(const BlockRecorder &other)
{
    blockEvents.reserve(blockEvents.size() + other.blockEvents.size());
    for (const BlockEvent &e : other.blockEvents)
        blockEvents.push_back(BlockEvent{e.block, e.instructions,
                                         e.accessTime + accessClock,
                                         e.instrTime + instrClock});
    accessClock += other.accessClock;
    instrClock += other.instrClock;
}

} // namespace lpp::trace
