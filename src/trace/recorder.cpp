#include "trace/recorder.hpp"

namespace lpp::trace {

void
BlockRecorder::onBlock(BlockId block, uint32_t instructions)
{
    blockEvents.push_back(
        BlockEvent{block, instructions, accessClock, instrClock});
    instrClock += instructions;
}

} // namespace lpp::trace
