/**
 * @file
 * Text interchange format for event traces.
 *
 * The analysis consumes only TraceSink events, so any instrumentation
 * front end (a Pin tool, a Valgrind plugin, the paper's ATOM) can feed
 * it by dumping this line format and replaying the file:
 *
 *   # lpp-trace 1          header (required first line)
 *   B <block> <instrs>     basic block executed
 *   A <addr>               data access (hex with 0x, or decimal)
 *   M <marker>             manual (programmer) phase marker
 *   P <phase>              auto phase marker (from instrumented runs)
 *   E                      end of execution
 *
 * Lines starting with '#' after the header are comments. TraceWriter
 * produces the format; replayTraceFile() streams a file into any sink.
 */

#ifndef LPP_TRACE_TEXTIO_HPP
#define LPP_TRACE_TEXTIO_HPP

#include <cstdint>
#include <fstream>
#include <string>

#include "trace/sink.hpp"
#include "trace/types.hpp"

namespace lpp::trace {

/** Sink that serializes the event stream to the text format. */
class TraceWriter : public TraceSink
{
  public:
    /** Open `path` for writing (truncates). */
    explicit TraceWriter(const std::string &path);

    void onBlock(BlockId block, uint32_t instructions) override;
    void onAccess(Addr addr) override;
    void onAccessBatch(const Addr *addrs, size_t n) override;
    void onManualMarker(uint32_t marker_id) override;
    void onPhaseMarker(PhaseId phase) override;
    void onEnd() override;

    /** @return whether the file opened and all writes succeeded. */
    bool ok() const { return static_cast<bool>(out); }

    /** @return events written so far. */
    uint64_t eventCount() const { return events; }

  private:
    std::ofstream out;
    uint64_t events = 0;
};

/** Outcome of replaying a trace file. */
struct ReplayFileResult
{
    bool ok = false;          //!< parsed to the end without error
    uint64_t events = 0;      //!< events delivered
    uint64_t line = 0;        //!< line of the first error (ok==false)
    std::string error;        //!< human-readable error (ok==false)
};

/**
 * Stream a trace file into `sink`. Parsing stops at the first
 * malformed line; events before it have already been delivered.
 */
ReplayFileResult replayTraceFile(const std::string &path,
                                 TraceSink &sink);

} // namespace lpp::trace

#endif // LPP_TRACE_TEXTIO_HPP
