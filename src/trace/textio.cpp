#include "trace/textio.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace lpp::trace {

namespace {
constexpr const char *header = "# lpp-trace 1";
} // namespace

TraceWriter::TraceWriter(const std::string &path) : out(path)
{
    if (out)
        out << header << "\n";
}

void
TraceWriter::onBlock(BlockId block, uint32_t instructions)
{
    out << "B " << block << " " << instructions << "\n";
    ++events;
}

void
TraceWriter::onAccess(Addr addr)
{
    out << "A 0x" << std::hex << addr << std::dec << "\n";
    ++events;
}

void
TraceWriter::onAccessBatch(const Addr *addrs, size_t n)
{
    out << std::hex;
    for (size_t i = 0; i < n; ++i)
        out << "A 0x" << addrs[i] << "\n";
    out << std::dec;
    events += n;
}

void
TraceWriter::onManualMarker(uint32_t marker_id)
{
    out << "M " << marker_id << "\n";
    ++events;
}

void
TraceWriter::onPhaseMarker(PhaseId phase)
{
    out << "P " << phase << "\n";
    ++events;
}

void
TraceWriter::onEnd()
{
    out << "E\n";
    ++events;
    out.flush();
}

ReplayFileResult
replayTraceFile(const std::string &path, TraceSink &sink)
{
    ReplayFileResult result;
    std::ifstream in(path);
    if (!in) {
        result.error = "cannot open file";
        return result;
    }

    std::string line;
    if (!std::getline(in, line) || line != header) {
        result.line = 1;
        result.error = "missing 'lpp-trace 1' header";
        return result;
    }
    result.line = 1;

    auto fail = [&result](const char *msg) {
        result.error = msg;
        return result;
    };

    while (std::getline(in, line)) {
        ++result.line;
        if (line.empty() || line[0] == '#')
            continue;
        const char *s = line.c_str();
        char *end = nullptr;
        switch (s[0]) {
          case 'B': {
            uint64_t block = std::strtoull(s + 1, &end, 10);
            if (end == s + 1)
                return fail("malformed block id");
            uint64_t instrs = std::strtoull(end, &end, 10);
            if (*end != '\0' || block > 0xFFFFFFFFull ||
                instrs > 0xFFFFFFFFull)
                return fail("malformed block line");
            sink.onBlock(static_cast<BlockId>(block),
                         static_cast<uint32_t>(instrs));
            break;
          }
          case 'A': {
            uint64_t addr = std::strtoull(s + 1, &end, 0);
            if (end == s + 1 || *end != '\0')
                return fail("malformed access line");
            sink.onAccess(addr);
            break;
          }
          case 'M': {
            uint64_t id = std::strtoull(s + 1, &end, 10);
            if (end == s + 1 || *end != '\0' || id > 0xFFFFFFFFull)
                return fail("malformed marker line");
            sink.onManualMarker(static_cast<uint32_t>(id));
            break;
          }
          case 'P': {
            uint64_t id = std::strtoull(s + 1, &end, 10);
            if (end == s + 1 || *end != '\0' || id > 0xFFFFFFFFull)
                return fail("malformed phase line");
            sink.onPhaseMarker(static_cast<PhaseId>(id));
            break;
          }
          case 'E':
            if (line != "E")
                return fail("malformed end line");
            sink.onEnd();
            break;
          default:
            return fail("unknown record type");
        }
        ++result.events;
    }
    result.ok = true;
    return result;
}

} // namespace lpp::trace
