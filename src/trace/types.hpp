/**
 * @file
 * Fundamental types shared by the tracing framework.
 */

#ifndef LPP_TRACE_TYPES_HPP
#define LPP_TRACE_TYPES_HPP

#include <cstdint>

namespace lpp::trace {

/** Byte address in the simulated program's address space. */
using Addr = uint64_t;

/** Identifier of a basic block in the simulated program. */
using BlockId = uint32_t;

/** Identifier of a phase (leaf phase of the detected hierarchy). */
using PhaseId = uint32_t;

/** Granularity at which reuse distance treats data as one element. */
constexpr Addr elementBytes = 8;

/** Cache block size used throughout the evaluation (paper Section 3.2). */
constexpr Addr cacheBlockBytes = 64;

/** @return the element index containing a byte address. */
constexpr uint64_t
toElement(Addr addr)
{
    return addr / elementBytes;
}

/** @return the cache block index containing a byte address. */
constexpr uint64_t
toCacheBlock(Addr addr)
{
    return addr / cacheBlockBytes;
}

} // namespace lpp::trace

#endif // LPP_TRACE_TYPES_HPP
