/**
 * @file
 * Trace sinks: consumers of a simulated program's event stream.
 *
 * A running workload streams three kinds of events — basic-block
 * executions (with retired instruction counts), data accesses (byte
 * addresses), and programmer-inserted manual markers. This is exactly the
 * information the paper extracted with ATOM on Alpha; every analysis in
 * the library consumes it through the TraceSink interface, so the
 * synthetic workloads and a real instrumentation front end are
 * interchangeable.
 */

#ifndef LPP_TRACE_SINK_HPP
#define LPP_TRACE_SINK_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/types.hpp"

namespace lpp::trace {

/**
 * Interface for consumers of the execution event stream. All callbacks
 * have empty default implementations so sinks override only what they
 * need.
 */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /**
     * A basic block executed.
     * @param block the block's identifier
     * @param instructions instructions retired by this block execution
     */
    virtual void onBlock(BlockId block, uint32_t instructions)
    {
        (void)block;
        (void)instructions;
    }

    /** A data access to byte address `addr`. */
    virtual void onAccess(Addr addr) { (void)addr; }

    /**
     * A run of `n` consecutive data accesses. Semantically identical to
     * calling onAccess for each address in order; emitters batch
     * address runs so access-heavy sinks can override this and pay one
     * virtual dispatch per few thousand accesses instead of one per
     * access. The default forwards to onAccess, so sinks that don't
     * care observe exactly the per-access stream.
     */
    virtual void
    onAccessBatch(const Addr *addrs, size_t n)
    {
        for (size_t i = 0; i < n; ++i)
            onAccess(addrs[i]);
    }

    /**
     * A programmer-inserted (manual) phase marker fired. Used only as
     * ground truth for the manual-vs-automatic comparison (Table 6).
     */
    virtual void onManualMarker(uint32_t marker_id) { (void)marker_id; }

    /**
     * An automatically inserted phase marker fired. Only emitted by
     * Instrumenter (the binary-rewriting stand-in), never by workloads.
     */
    virtual void onPhaseMarker(PhaseId phase) { (void)phase; }

    /** The execution finished. */
    virtual void onEnd() {}
};

/** Forwards every event to a list of downstream sinks, in order. */
class FanoutSink : public TraceSink
{
  public:
    /** Append a downstream sink; not owned, must outlive the fanout. */
    void attach(TraceSink *sink) { sinks.push_back(sink); }

    void
    onBlock(BlockId block, uint32_t instructions) override
    {
        for (auto *s : sinks)
            s->onBlock(block, instructions);
    }

    void
    onAccess(Addr addr) override
    {
        for (auto *s : sinks)
            s->onAccess(addr);
    }

    void
    onAccessBatch(const Addr *addrs, size_t n) override
    {
        for (auto *s : sinks)
            s->onAccessBatch(addrs, n);
    }

    void
    onManualMarker(uint32_t marker_id) override
    {
        for (auto *s : sinks)
            s->onManualMarker(marker_id);
    }

    void
    onPhaseMarker(PhaseId phase) override
    {
        for (auto *s : sinks)
            s->onPhaseMarker(phase);
    }

    void
    onEnd() override
    {
        for (auto *s : sinks)
            s->onEnd();
    }

  private:
    std::vector<TraceSink *> sinks;
};

/**
 * Maintains the two logical clocks of an execution: the number of data
 * accesses (the paper's "logical time") and the number of retired
 * instructions.
 */
class ClockSink : public TraceSink
{
  public:
    void
    onBlock(BlockId, uint32_t instructions) override
    {
        instrs += instructions;
    }

    void onAccess(Addr) override { ++accs; }

    void onAccessBatch(const Addr *, size_t n) override { accs += n; }

    /** @return data accesses seen so far (logical time). */
    uint64_t accesses() const { return accs; }

    /** @return instructions retired so far. */
    uint64_t instructions() const { return instrs; }

  private:
    uint64_t accs = 0;
    uint64_t instrs = 0;
};

} // namespace lpp::trace

#endif // LPP_TRACE_SINK_HPP
