/**
 * @file
 * Runtime validator for the TraceSink stream protocol.
 *
 * Batched access delivery (workloads::Emitter) made the event-stream
 * contract subtle: a producer that buffers accesses but forgets to
 * flush before a block or marker event silently reorders the stream,
 * and the analyses downstream compute wrong phase boundaries instead
 * of crashing. ValidatingSink is a decorator that sits between a
 * producer and any downstream sink and enforces the contract:
 *
 *  - pending access batches are flushed before every non-access event
 *    (checked against registered BatchSource producers);
 *  - per-block instruction counts lie inside a configured band;
 *  - block IDs lie inside the workload's registered range;
 *  - access addresses fall inside the declared address space;
 *  - onEnd fires exactly once and is terminal.
 *
 * Violations are recorded (bounded) and optionally escalate to panic;
 * tests assert ok() after end-to-end runs of every workload.
 */

#ifndef LPP_TRACE_VALIDATOR_HPP
#define LPP_TRACE_VALIDATOR_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/sink.hpp"
#include "trace/types.hpp"

namespace lpp::trace {

/**
 * Producer-side view of unflushed batched accesses. Batching producers
 * (workloads::Emitter) implement this so a ValidatingSink can verify
 * that nothing is buffered when a non-access event arrives.
 */
class BatchSource
{
  public:
    virtual ~BatchSource() = default;

    /** @return accesses buffered but not yet delivered to the sink. */
    virtual size_t pendingAccesses() const = 0;
};

/** Tuning knobs for ValidatingSink. */
struct ValidatorConfig
{
    /** Sentinel: no block-ID limit configured. */
    static constexpr BlockId noBlockLimit = ~BlockId{0};

    /** Valid block IDs are [0, blockLimit); noBlockLimit disables. */
    BlockId blockLimit = noBlockLimit;

    /** Minimum instructions a block execution may retire. */
    uint32_t minBlockInstructions = 1;

    /** Maximum instructions a block execution may retire. */
    uint32_t maxBlockInstructions = 1u << 20;

    /** Panic on first violation instead of recording it. */
    bool panicOnViolation = false;

    /** Violations stored verbatim; later ones only counted. */
    size_t maxRecorded = 64;
};

/** Decorator that validates the event stream and forwards it. */
class ValidatingSink : public TraceSink
{
  public:
    /** Contract clause a violation offends. */
    enum class Kind
    {
        UnflushedBatch,        //!< non-access event with buffered accesses
        BlockOutOfRange,       //!< block ID outside the registered range
        InstructionsOutOfRange, //!< instruction count outside the band
        AddressOutOfRange,     //!< access outside the declared space
        EventAfterEnd,         //!< any event following onEnd
        DoubleEnd,             //!< second onEnd
    };

    /** One recorded contract violation. */
    struct Violation
    {
        Kind kind;            //!< offended clause
        uint64_t eventIndex;  //!< 0-based index of the offending event
        std::string message;  //!< human-readable description
    };

    /**
     * @param downstream sink receiving the (unmodified) stream; may be
     *        nullptr to validate without forwarding
     * @param cfg_ validation limits
     */
    explicit ValidatingSink(TraceSink *downstream = nullptr,
                            ValidatorConfig cfg_ = {});

    /**
     * Declare [lo, hi) as valid access addresses. With no declared
     * range every address is accepted; with at least one, any access
     * outside all of them is a violation.
     */
    void allowRange(Addr lo, Addr hi);

    /** Valid block IDs become [0, limit). */
    void setBlockLimit(BlockId limit) { cfg.blockLimit = limit; }

    /**
     * Register a batching producer to be checked for unflushed
     * accesses at every non-access event. workloads::Emitter registers
     * itself automatically when constructed over a ValidatingSink.
     */
    void watch(const BatchSource *source);

    /** Unregister a producer (its buffers are no longer checked). */
    void unwatch(const BatchSource *source);

    // TraceSink interface --------------------------------------------

    void onBlock(BlockId block, uint32_t instructions) override;
    void onAccess(Addr addr) override;
    void onAccessBatch(const Addr *addrs, size_t n) override;
    void onManualMarker(uint32_t marker_id) override;
    void onPhaseMarker(PhaseId phase) override;
    void onEnd() override;

    // Violation report API -------------------------------------------

    /** @return whether the stream has been contract-clean so far. */
    bool ok() const { return total == 0; }

    /** @return violations seen, including ones beyond maxRecorded. */
    uint64_t totalViolations() const { return total; }

    /** @return recorded violations (first cfg.maxRecorded). */
    const std::vector<Violation> &violations() const { return recorded; }

    /** @return violations of one kind. */
    uint64_t countOf(Kind kind) const;

    /** @return events observed (batch = one event). */
    uint64_t eventsSeen() const { return events; }

    /** @return whether onEnd has been observed. */
    bool ended() const { return endSeen; }

    /** @return a multi-line report of every recorded violation. */
    std::string reportText() const;

    /** @return short name of a violation kind. */
    static const char *kindName(Kind kind);

  private:
    void checkFlushed(const char *event);
    void checkLive(const char *event);
    void checkAddress(Addr addr);
    void violate(Kind kind, std::string message);

    TraceSink *next;
    ValidatorConfig cfg;
    std::vector<std::pair<Addr, Addr>> ranges; //!< sorted, disjoint
    bool rangesSorted = true;
    std::vector<const BatchSource *> watched;
    std::vector<Violation> recorded;
    uint64_t counts[6] = {};
    uint64_t total = 0;
    uint64_t events = 0;
    bool endSeen = false;
};

} // namespace lpp::trace

#endif // LPP_TRACE_VALIDATOR_HPP
