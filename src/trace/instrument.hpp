/**
 * @file
 * Marker instrumentation — the binary-rewriting stand-in.
 *
 * The paper's final off-line step rewrites the program binary so that a
 * chosen basic block fires a phase marker whenever it executes. Here the
 * same effect is achieved by interposing an Instrumenter between the
 * running workload and the downstream sinks: when a block in the marker
 * table executes, the Instrumenter injects an onPhaseMarker event before
 * forwarding the block. The observable semantics match rewriting exactly.
 */

#ifndef LPP_TRACE_INSTRUMENT_HPP
#define LPP_TRACE_INSTRUMENT_HPP

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "trace/sink.hpp"
#include "trace/types.hpp"

namespace lpp::trace {

/**
 * The set of markers to insert: which basic block announces which leaf
 * phase. Produced by phase::MarkerSelector; consumed by Instrumenter.
 */
class MarkerTable
{
  public:
    /** Map `block` to announce `phase`; a block marks at most one phase. */
    void set(BlockId block, PhaseId phase) { table[block] = phase; }

    /** @return pointer to the phase marked by `block`, or nullptr. */
    const PhaseId *
    find(BlockId block) const
    {
        auto it = table.find(block);
        return it == table.end() ? nullptr : &it->second;
    }

    /** @return number of marker blocks. */
    size_t size() const { return table.size(); }

    /** @return whether no markers are installed. */
    bool empty() const { return table.empty(); }

    /** @return all (block, phase) pairs, unordered. */
    std::vector<std::pair<BlockId, PhaseId>> entries() const;

  private:
    std::unordered_map<BlockId, PhaseId> table;
};

/**
 * Applies a MarkerTable to a live execution: forwards all events to the
 * downstream sink and injects onPhaseMarker(phase) immediately before a
 * marked block executes.
 */
class Instrumenter : public TraceSink
{
  public:
    /**
     * @param table marker table to apply (copied)
     * @param downstream sink receiving the instrumented stream; not owned
     */
    Instrumenter(MarkerTable table, TraceSink &downstream)
        : markers(std::move(table)), out(downstream)
    {}

    void onBlock(BlockId block, uint32_t instructions) override;
    void onAccess(Addr addr) override { out.onAccess(addr); }

    void
    onAccessBatch(const Addr *addrs, size_t n) override
    {
        out.onAccessBatch(addrs, n);
    }

    void
    onManualMarker(uint32_t marker_id) override
    {
        out.onManualMarker(marker_id);
    }

    void onEnd() override { out.onEnd(); }

    /** @return how many marker firings were injected so far. */
    uint64_t firings() const { return fired; }

  private:
    MarkerTable markers;
    TraceSink &out;
    uint64_t fired = 0;
};

/**
 * Records each phase-marker firing with its position on both clocks;
 * the run-time predictor and the evaluation harness consume this.
 */
struct MarkerFiring
{
    PhaseId phase;       //!< announced leaf phase
    uint64_t accessTime; //!< data accesses before the firing
    uint64_t instrTime;  //!< instructions retired before the firing
};

/** Collects marker firings together with the logical clocks. */
class MarkerFiringRecorder : public TraceSink
{
  public:
    void onBlock(BlockId, uint32_t instructions) override
    {
        instrClock += instructions;
    }

    void onAccess(Addr) override { ++accessClock; }

    void
    onAccessBatch(const Addr *, size_t n) override
    {
        accessClock += n;
    }

    void
    onPhaseMarker(PhaseId phase) override
    {
        firingList.push_back(MarkerFiring{phase, accessClock, instrClock});
    }

    void onEnd() override { ended = true; }

    /** @return all firings in execution order. */
    const std::vector<MarkerFiring> &firings() const { return firingList; }

    /** @return total instructions retired by the execution. */
    uint64_t totalInstructions() const { return instrClock; }

    /** @return total data accesses of the execution. */
    uint64_t totalAccesses() const { return accessClock; }

    /** @return whether onEnd was observed. */
    bool finished() const { return ended; }

  private:
    std::vector<MarkerFiring> firingList;
    uint64_t accessClock = 0;
    uint64_t instrClock = 0;
    bool ended = false;
};

} // namespace lpp::trace

#endif // LPP_TRACE_INSTRUMENT_HPP
