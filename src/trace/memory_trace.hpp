/**
 * @file
 * In-memory recording and exact replay of a trace event stream.
 *
 * The execution plan (core::ExecutionPlan) treats program executions as
 * the scarce resource: when a consumer needs the training stream *after*
 * the marker table exists (the instrumented training replay), re-running
 * the program would cost a third training execution. Instead the
 * sampling execution records its stream into a MemoryTrace, and the
 * later consumer replays the recording. Replay is exact: every event is
 * re-delivered in order, and access batches are re-delivered with their
 * original boundaries, so a replayed stream is indistinguishable from
 * the live one — bit for bit, including batching granularity.
 */

#ifndef LPP_TRACE_MEMORY_TRACE_HPP
#define LPP_TRACE_MEMORY_TRACE_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/sink.hpp"
#include "trace/types.hpp"

namespace lpp::trace {

/** Sink that records the full event stream for later exact replay. */
class MemoryTrace : public TraceSink
{
  public:
    MemoryTrace() = default;

    // Recording (sink interface) -------------------------------------

    void
    onBlock(BlockId block, uint32_t instructions) override
    {
        events.push_back({Kind::Block, block, instructions});
    }

    void
    onAccess(Addr addr) override
    {
        events.push_back({Kind::Access, 0, addrs.size()});
        addrs.push_back(addr);
    }

    void
    onAccessBatch(const Addr *batch, size_t n) override
    {
        events.push_back({Kind::Batch, static_cast<uint64_t>(n),
                          addrs.size()});
        addrs.insert(addrs.end(), batch, batch + n);
    }

    void
    onManualMarker(uint32_t marker_id) override
    {
        events.push_back({Kind::Manual, marker_id, 0});
    }

    void
    onPhaseMarker(PhaseId phase) override
    {
        events.push_back({Kind::Phase, phase, 0});
    }

    void onEnd() override { events.push_back({Kind::End, 0, 0}); }

    // Replay ---------------------------------------------------------

    /**
     * Re-deliver the recorded stream into `sink`, preserving event
     * order and the original access-batch boundaries exactly.
     */
    void replay(TraceSink &sink) const;

    // Introspection --------------------------------------------------

    /** @return recorded events (a batch counts as one event). */
    uint64_t eventCount() const { return events.size(); }

    /** @return recorded data accesses. */
    uint64_t accessCount() const { return addrs.size(); }

    /** @return whether nothing has been recorded. */
    bool empty() const { return events.empty(); }

    /** @return approximate heap footprint of the recording, in bytes. */
    size_t memoryBytes() const;

    /** Pre-size the recording buffers (reserve-ahead hint). */
    void reserve(size_t event_hint, size_t access_hint);

    /** Drop the recording and release its memory. */
    void clear();

  private:
    enum class Kind : uint8_t
    {
        Block,  //!< a = block id, b = instructions
        Access, //!< b = index into addrs (single-access delivery)
        Batch,  //!< a = length, b = start index into addrs
        Manual, //!< a = marker id
        Phase,  //!< a = phase id
        End,
    };

    struct Event
    {
        Kind kind;
        uint64_t a;
        uint64_t b;
    };

    std::vector<Event> events;
    std::vector<Addr> addrs;
};

} // namespace lpp::trace

#endif // LPP_TRACE_MEMORY_TRACE_HPP
