/**
 * @file
 * In-memory recording and exact replay of a trace event stream.
 *
 * The execution plan (core::ExecutionPlan) treats program executions as
 * the scarce resource: when a consumer needs the training stream *after*
 * the marker table exists (the instrumented training replay), re-running
 * the program would cost a third training execution. Instead the
 * sampling execution records its stream into a MemoryTrace, and the
 * later consumer replays the recording. Replay is exact: every event is
 * re-delivered in order, and access batches are re-delivered with their
 * original boundaries, so a replayed stream is indistinguishable from
 * the live one — bit for bit, including batching granularity.
 */

#ifndef LPP_TRACE_MEMORY_TRACE_HPP
#define LPP_TRACE_MEMORY_TRACE_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/sink.hpp"
#include "trace/types.hpp"

namespace lpp::trace {

/** Sink that records the full event stream for later exact replay. */
class MemoryTrace : public TraceSink
{
  public:
    MemoryTrace() = default;

    // Recording (sink interface) -------------------------------------

    void
    onBlock(BlockId block, uint32_t instructions) override
    {
        events.push_back({Kind::Block, block, instructions});
    }

    void
    onAccess(Addr addr) override
    {
        events.push_back({Kind::Access, 0, addrs.size()});
        addrs.push_back(addr);
    }

    void
    onAccessBatch(const Addr *batch, size_t n) override
    {
        events.push_back({Kind::Batch, static_cast<uint64_t>(n),
                          addrs.size()});
        addrs.insert(addrs.end(), batch, batch + n);
    }

    void
    onManualMarker(uint32_t marker_id) override
    {
        events.push_back({Kind::Manual, marker_id, 0});
    }

    void
    onPhaseMarker(PhaseId phase) override
    {
        events.push_back({Kind::Phase, phase, 0});
    }

    void onEnd() override { events.push_back({Kind::End, 0, 0}); }

    // Replay ---------------------------------------------------------

    /**
     * Re-deliver the recorded stream into `sink`, preserving event
     * order and the original access-batch boundaries exactly.
     */
    void replay(TraceSink &sink) const;

    /**
     * Contiguous slice of the recorded stream, for sharded replay.
     * Slices partition the event list, so replaying every chunk in
     * order through one sink is identical to replay().
     */
    struct ChunkRange
    {
        size_t firstEvent = 0;  //!< index of the first event
        size_t eventCount = 0;  //!< events in this chunk
        uint64_t firstAccess = 0; //!< accesses recorded before the chunk
        uint64_t accessCount = 0; //!< accesses delivered by the chunk
    };

    /**
     * Partition the recording into chunks of roughly `target_accesses`
     * data accesses each. Batches are never split (batch boundaries are
     * part of the exact-replay contract), so a chunk can exceed the
     * target by up to one batch. Always returns at least one chunk for
     * a non-empty recording, and the chunks cover every event: a
     * `target_accesses` of 0 is treated as 1, and one larger than the
     * recording yields a single chunk.
     */
    std::vector<ChunkRange> chunks(uint64_t target_accesses) const;

    /** Re-deliver exactly the events of `range` into `sink`. */
    void replayRange(TraceSink &sink, const ChunkRange &range) const;

    // Introspection --------------------------------------------------

    /** @return recorded events (a batch counts as one event). */
    uint64_t eventCount() const { return events.size(); }

    /** @return recorded data accesses. */
    uint64_t accessCount() const { return addrs.size(); }

    /** @return whether nothing has been recorded. */
    bool empty() const { return events.empty(); }

    /** @return approximate heap footprint of the recording, in bytes. */
    size_t memoryBytes() const;

    /** Pre-size the recording buffers (reserve-ahead hint). */
    void reserve(size_t event_hint, size_t access_hint);

    /** Drop the recording and release its memory. */
    void clear();

  private:
    enum class Kind : uint8_t
    {
        Block,  //!< a = block id, b = instructions
        Access, //!< b = index into addrs (single-access delivery)
        Batch,  //!< a = length, b = start index into addrs
        Manual, //!< a = marker id
        Phase,  //!< a = phase id
        End,
    };

    struct Event
    {
        Kind kind;
        uint64_t a;
        uint64_t b;
    };

    std::vector<Event> events;
    std::vector<Addr> addrs;
};

} // namespace lpp::trace

#endif // LPP_TRACE_MEMORY_TRACE_HPP
