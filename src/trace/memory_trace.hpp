/**
 * @file
 * Bounded-frame recording and exact streaming replay of a trace event
 * stream.
 *
 * The execution plan (core::ExecutionPlan) treats program executions as
 * the scarce resource: when a consumer needs the training stream *after*
 * the marker table exists (the instrumented training replay), re-running
 * the program would cost a third training execution. Instead the
 * sampling execution records its stream, and the later consumer replays
 * the recording. Replay is exact: every event is re-delivered in order,
 * and access batches are re-delivered with their original boundaries,
 * so a replayed stream is indistinguishable from the live one — bit for
 * bit, including batching granularity.
 *
 * Unlike the first-generation recorder, StreamingTrace never owns the
 * raw stream. Events are pushed straight through the predictive frame
 * codec (trace/codec.hpp) as they arrive, and the recording is a list
 * of *sealed frames* — independently decodable compressed spans of
 * about a frame-target's worth of accesses — plus one open frame still
 * being built. Replay decodes one frame at a time through a reused
 * scratch buffer (TraceCursor), so the working set of a replay is one
 * batch, not the trace: memory stays flat no matter how long the
 * recorded execution ran, and the resident encoding is typically an
 * order of magnitude smaller than the 8 raw bytes per address.
 *
 * The sharded consumers slice the stream with chunks()/replayRange(),
 * which are *views over the frame list*: a ChunkRange names event
 * indices, and a cursor seeks to the containing frame and skip-decodes
 * to the boundary. With the chunk target equal to the frame target
 * (both default 2^20 accesses) chunk boundaries coincide with frame
 * boundaries and seeks are free.
 */

#ifndef LPP_TRACE_MEMORY_TRACE_HPP
#define LPP_TRACE_MEMORY_TRACE_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/codec.hpp"
#include "trace/sink.hpp"
#include "trace/types.hpp"

namespace lpp::trace {

/** Sink that records the stream into compressed frames for later
 *  exact, bounded-memory replay. */
class StreamingTrace : public TraceSink
{
  public:
    /** Default data accesses per sealed frame. */
    static constexpr uint64_t defaultFrameTarget = 1u << 20;

    StreamingTrace() : StreamingTrace(PredictorConfig{}) {}

    explicit StreamingTrace(const PredictorConfig &cfg,
                            uint64_t frame_target = defaultFrameTarget);

    // Recording (sink interface) -------------------------------------

    void onBlock(BlockId block, uint32_t instructions) override;
    void onAccess(Addr addr) override;
    void onAccessBatch(const Addr *batch, size_t n) override;
    void onManualMarker(uint32_t marker_id) override;
    void onPhaseMarker(PhaseId phase) override;
    void onEnd() override;

    // Replay ---------------------------------------------------------

    /**
     * Re-deliver the recorded stream into `sink`, preserving event
     * order and the original access-batch boundaries exactly.
     */
    void replay(TraceSink &sink) const;

    /**
     * Contiguous slice of the recorded stream, for sharded replay.
     * Slices partition the event list, so replaying every chunk in
     * order through one sink is identical to replay().
     */
    struct ChunkRange
    {
        size_t firstEvent = 0;  //!< index of the first event
        size_t eventCount = 0;  //!< events in this chunk
        uint64_t firstAccess = 0; //!< accesses recorded before the chunk
        uint64_t accessCount = 0; //!< accesses delivered by the chunk
    };

    /**
     * Partition the recording into chunks of roughly `target_accesses`
     * data accesses each. Batches are never split (batch boundaries are
     * part of the exact-replay contract), so a chunk can exceed the
     * target by up to one batch. Always returns at least one chunk for
     * a non-empty recording, and the chunks cover every event: a
     * `target_accesses` of 0 is treated as 1, and one larger than the
     * recording yields a single chunk. Only the frames' event sections
     * are walked — no addresses are decoded.
     */
    std::vector<ChunkRange> chunks(uint64_t target_accesses) const;

    /** Re-deliver exactly the events of `range` into `sink` (a
     *  one-shot cursor; sharded workers keep their own TraceCursor). */
    void replayRange(TraceSink &sink, const ChunkRange &range) const;

    /**
     * Partition the recording at the given access clocks (ascending,
     * each <= accessCount()), returning cuts.size() + 1 consecutive
     * ranges [0, c0), [c0, c1), ..., [c_last, end). A cut places every
     * event whose *starting* access clock is at or past it into the
     * later range, so an access batch straddling a cut stays whole in
     * the earlier range and zero-access events (blocks, markers) at
     * exactly the cut clock open the later one — the rule that makes
     * phase-marker cuts land exactly, because emitters flush access
     * batches before block events. Duplicate cuts yield empty ranges.
     * Like chunks(), this walks only the event sections.
     */
    std::vector<ChunkRange>
    sliceAt(const std::vector<uint64_t> &access_cuts) const;

    // Introspection --------------------------------------------------

    /** @return recorded events (a batch counts as one event). */
    uint64_t eventCount() const { return totalEvents; }

    /** @return recorded data accesses. */
    uint64_t accessCount() const { return totalAccesses; }

    /** @return whether nothing has been recorded. */
    bool empty() const { return totalEvents == 0; }

    /** @return approximate heap footprint of the recording, in bytes. */
    size_t memoryBytes() const;

    /** @return compressed bytes of the recording (frame payloads). */
    uint64_t encodedBytes() const;

    /** @return bytes a raw address log would cost (8 per access) —
     *  the numerator of the reported compression ratio. */
    uint64_t rawBytes() const { return totalAccesses * sizeof(Addr); }

    /** Pre-size the recording buffers (soft reserve-ahead hint). */
    void reserve(size_t event_hint, size_t access_hint);

    /** Drop the recording and release its memory. */
    void clear();

    // Frame access (store + cursors) ---------------------------------

    /** One sealed frame: directory entry plus compressed payload. */
    struct Frame
    {
        FrameInfo info;
        std::vector<uint8_t> payload;
    };

    /** Borrowed view of one frame's *stored* sections, sealed or
     *  open: pointers address the bytes as held in memory, which may
     *  be LZ-packed (stored size < logical size in info). Run them
     *  through trace::unpackFrame before decoding. Invalidated by any
     *  subsequent append or clear(). */
    struct FrameView
    {
        FrameInfo info;
        const uint8_t *events = nullptr;
        const uint8_t *bitmap = nullptr;
        const uint8_t *residue = nullptr;
    };

    /** @return the predictor geometry this recording encodes with. */
    const PredictorConfig &predictorConfig() const { return cfg; }

    /** @return the frame-seal threshold, in accesses. */
    uint64_t frameTargetAccesses() const { return frameTarget; }

    /** Change the seal threshold (recording must be empty). */
    void setFrameTargetAccesses(uint64_t target_accesses);

    /** @return sealed frames (excludes the open frame). */
    size_t sealedFrameCount() const { return sealed.size(); }

    /** @return one sealed frame. */
    const Frame &sealedFrame(size_t i) const { return sealed[i]; }

    /** @return frames covering the stream, including the open one. */
    size_t frameCount() const;

    /** @return a borrowed view of frame `i` (sealed or open). */
    FrameView frameView(size_t i) const;

    /** Describe and copy out the open frame, if any (for persisting a
     *  live recording without mutating it). @return false when the
     *  open frame is empty. */
    bool materializeOpenFrame(FrameInfo &info,
                              std::vector<uint8_t> &payload) const;

    /**
     * Replace the recording with already-encoded frames (the
     * trace store's zero-decode load path). The frames must use this
     * trace's predictor geometry and carry consistent global offsets;
     * the totals are trusted as verified by the caller. An adopted
     * recording is replay-only.
     */
    void adoptFrames(std::vector<Frame> frames, uint64_t events,
                     uint64_t accesses);

  private:
    void sealNow();
    void maybeSeal();

    PredictorConfig cfg;
    uint64_t frameTarget = defaultFrameTarget;
    std::vector<Frame> sealed;
    FrameEncoder enc;
    uint64_t totalEvents = 0;
    uint64_t totalAccesses = 0;
    bool adopted = false;
};

/** The frame-backed recorder is the MemoryTrace of this codebase. */
// (Alias declared in trace/codec.hpp next to the forward declaration.)

/**
 * Stateful streaming reader over a StreamingTrace: binds one
 * FrameDecoder and one batch scratch buffer, and replays whole
 * recordings or ChunkRange slices by decoding one frame at a time.
 * Consecutive ranges replay without a reseek; anything else binary
 * searches the frame directory and skip-decodes to the boundary.
 * Sharded workers each own one cursor, so a wave of parallel chunk
 * replays holds exactly one decoded batch per worker — never a whole
 * trace.
 */
class TraceCursor
{
  public:
    explicit TraceCursor(const StreamingTrace &trace);

    /** Replay the whole recording into `sink`. */
    void replayAll(TraceSink &sink);

    /** Replay exactly the events of `range` into `sink`. */
    void replayRange(TraceSink &sink,
                     const StreamingTrace::ChunkRange &range);

  private:
    void bindFrame(size_t frame_index);
    void seek(uint64_t global_event);
    void step(TraceSink *sink);

    const StreamingTrace *trace;
    FrameDecoder dec;
    StreamingTrace::FrameView view;
    FrameSections sections; //!< reused unpack buffers across frames
    size_t frameIdx = 0;
    uint64_t pos = 0; //!< global index of the next event to decode
    bool bound = false;
    std::vector<Addr> scratch;
};

} // namespace lpp::trace

#endif // LPP_TRACE_MEMORY_TRACE_HPP
