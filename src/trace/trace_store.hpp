/**
 * @file
 * On-disk store of compressed execution traces: profile once, replay
 * everywhere.
 *
 * The paper's pipeline is profile-once, analyze-many — ATOM produced a
 * trace once and every analysis consumed the file. This store gives the
 * repo the same discipline across *processes*: the first execution of a
 * deterministic workload input records its event stream through the
 * predictive frame codec, and every later bench, sweep, or test
 * replays the file instead of re-simulating the program.
 *
 * An entry (format "LPT2") is a fixed header, the execution key, a
 * frame directory, and the concatenated frame payloads. The directory
 * mirrors trace::FrameInfo — per frame: stream offsets, section sizes,
 * codec seeds, and a payload hash — and is itself hash-guarded, so a
 * load verifies the directory once and each frame before trusting it.
 * Because frames are stored exactly as StreamingTrace holds them in
 * memory, load() adopts the bytes without decoding a single event, and
 * replay() streams the file one frame at a time through a reused
 * buffer — warm-start memory is one frame, not one trace.
 *
 * One entry per execution key (core::workloadKey renders
 * `name@s<seed>:x<scale>`), qualified by a caller-supplied content hash
 * of the workload's generator parameters, so a workload whose code or
 * array layout changed invalidates its own cache entries. Entries are
 * published with write-to-temporary + atomic rename, so concurrent
 * producers of the same key are safe (last writer wins with identical
 * bytes) and a crashed writer never leaves a half-written entry behind.
 * Loads verify the header (magic, version, key, params hash, predictor
 * geometry, sizes) before use and the directory and frame hashes
 * during adoption; any mismatch reads as a miss and the caller falls
 * back to live execution.
 *
 * The header also carries the precount statistics (access count,
 * distinct-element working set) the phase detector needs to size its
 * sampler, so a warm cache skips the precount pass entirely — the
 * "trace-derived counts" handoff of phase::PhaseDetector.
 */

#ifndef LPP_TRACE_TRACE_STORE_HPP
#define LPP_TRACE_TRACE_STORE_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "trace/sink.hpp"

namespace lpp::trace {

class StreamingTrace;

/** Derived per-stream statistics carried in a stored trace's header. */
struct StoredTraceStats
{
    bool valid = false;            //!< whether the fields below are set
    uint64_t distinctElements = 0; //!< working-set size in elements
};

/** What a header probe (TraceStore::lookup) learns about an entry. */
struct StoredTraceInfo
{
    std::string path;          //!< entry file
    uint64_t events = 0;       //!< recorded events (batch = one)
    uint64_t accesses = 0;     //!< recorded data accesses
    StoredTraceStats stats;    //!< precount handoff, when recorded
    uint64_t frames = 0;       //!< frames in the entry
    uint64_t payloadBytes = 0; //!< compressed payload size (all frames)
    uint64_t fileBytes = 0;    //!< total entry size on disk
};

/** Content-addressed cache of compressed traces under one directory. */
class TraceStore
{
  public:
    /** @param dir cache directory (created on first store). */
    explicit TraceStore(std::string dir);

    /** @return the cache directory. */
    const std::string &dir() const { return root; }

    /** @return the entry path for (key, params_hash). */
    std::string pathFor(const std::string &key,
                        uint64_t params_hash) const;

    /**
     * Header-verified probe: cheap (no payload read). Empty on a
     * missing entry or any header mismatch.
     */
    std::optional<StoredTraceInfo> lookup(const std::string &key,
                                          uint64_t params_hash) const;

    /**
     * Stream the entry straight into `sink`, one frame at a time,
     * preserving event order and batch boundaries exactly. Each
     * frame's hash is verified before any of its events is delivered,
     * and decoded counts are verified against the directory.
     *
     * @return false on miss, hash mismatch, or malformed payload — in
     *         which case nothing may be trusted and the caller must
     *         fall back to live execution. `sink` may have seen a
     *         partial stream only if a later frame was malformed
     *         (never for a simple miss).
     */
    bool replay(const std::string &key, uint64_t params_hash,
                TraceSink &sink) const;

    /**
     * Adopt the entry's frames into a recording for repeated replay.
     * Zero-decode: the directory and every frame hash are verified,
     * then the compressed bytes are moved in as-is. The entry's
     * predictor geometry must match `out`'s; a mismatch is a miss.
     */
    bool load(const std::string &key, uint64_t params_hash,
              StreamingTrace &out) const;

    /**
     * Publish a recording atomically: write header + key + frame
     * directory + payloads to a temporary in the same directory, then
     * rename over the final path. The open frame, if any, is
     * materialized as the entry's last frame.
     *
     * @return total bytes on disk, or 0 on any I/O failure (the cache
     *         is best-effort; failures never break the pipeline).
     */
    uint64_t store(const std::string &key, uint64_t params_hash,
                   const StreamingTrace &trace,
                   const StoredTraceStats &stats) const;

  private:
    std::string root;
};

} // namespace lpp::trace

#endif // LPP_TRACE_TRACE_STORE_HPP
