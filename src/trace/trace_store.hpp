/**
 * @file
 * On-disk store of compressed execution traces: profile once, replay
 * everywhere.
 *
 * The paper's pipeline is profile-once, analyze-many — ATOM produced a
 * trace once and every analysis consumed the file. This store gives the
 * repo the same discipline across *processes*: the first execution of a
 * deterministic workload input records its event stream, the codec
 * (trace/codec.hpp) compresses it, and every later bench, sweep, or
 * test replays the file instead of re-simulating the program.
 *
 * One entry per execution key (core::workloadKey renders
 * `name@s<seed>:x<scale>`), qualified by a caller-supplied content hash
 * of the workload's generator parameters, so a workload whose code or
 * array layout changed invalidates its own cache entries. Entries are
 * published with write-to-temporary + atomic rename, so concurrent
 * producers of the same key are safe (last writer wins with identical
 * bytes) and a crashed writer never leaves a half-written entry behind.
 * Loads verify the header (magic, version, key, params hash, sizes)
 * before use and the payload hash during decode; any mismatch reads as
 * a miss and the caller falls back to live execution.
 *
 * The header also carries the precount statistics (access count,
 * distinct-element working set) the phase detector needs to size its
 * sampler, so a warm cache skips the precount pass entirely — the
 * "trace-derived counts" handoff of phase::PhaseDetector.
 */

#ifndef LPP_TRACE_TRACE_STORE_HPP
#define LPP_TRACE_TRACE_STORE_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "trace/sink.hpp"

namespace lpp::trace {

class MemoryTrace;

/** Derived per-stream statistics carried in a stored trace's header. */
struct StoredTraceStats
{
    bool valid = false;            //!< whether the fields below are set
    uint64_t distinctElements = 0; //!< working-set size in elements
};

/** What a header probe (TraceStore::lookup) learns about an entry. */
struct StoredTraceInfo
{
    std::string path;          //!< entry file
    uint64_t events = 0;       //!< recorded events (batch = one)
    uint64_t accesses = 0;     //!< recorded data accesses
    StoredTraceStats stats;    //!< precount handoff, when recorded
    uint64_t payloadBytes = 0; //!< compressed payload size
    uint64_t fileBytes = 0;    //!< total entry size on disk
};

/** Content-addressed cache of compressed traces under one directory. */
class TraceStore
{
  public:
    /** @param dir cache directory (created on first store). */
    explicit TraceStore(std::string dir);

    /** @return the cache directory. */
    const std::string &dir() const { return root; }

    /** @return the entry path for (key, params_hash). */
    std::string pathFor(const std::string &key,
                        uint64_t params_hash) const;

    /**
     * Header-verified probe: cheap (no payload read). Empty on a
     * missing entry or any header mismatch.
     */
    std::optional<StoredTraceInfo> lookup(const std::string &key,
                                          uint64_t params_hash) const;

    /**
     * Decode the entry straight into `sink`, preserving event order
     * and batch boundaries exactly. The payload hash is verified
     * before any event is delivered; decoded event and access counts
     * are verified against the header afterwards.
     *
     * @return false on miss, hash mismatch, or malformed payload — in
     *         which case nothing may be trusted and the caller must
     *         fall back to live execution. `sink` may have seen a
     *         partial stream only if the payload itself was malformed
     *         past the hash check (never for a simple miss).
     */
    bool replay(const std::string &key, uint64_t params_hash,
                TraceSink &sink) const;

    /** Decode the entry into a recording for repeated replay. */
    bool load(const std::string &key, uint64_t params_hash,
              MemoryTrace &out) const;

    /**
     * Publish an already-encoded payload (trace::TraceEncoder output)
     * atomically: write to a temporary in the same directory, then
     * rename over the final path.
     *
     * @return total bytes on disk, or 0 on any I/O failure (the cache
     *         is best-effort; failures never break the pipeline).
     */
    uint64_t storeEncoded(const std::string &key, uint64_t params_hash,
                          const std::vector<uint8_t> &payload,
                          uint64_t events, uint64_t accesses,
                          const StoredTraceStats &stats) const;

    /** Encode and publish a recording (convenience over storeEncoded). */
    uint64_t store(const std::string &key, uint64_t params_hash,
                   const MemoryTrace &trace,
                   const StoredTraceStats &stats) const;

  private:
    std::string root;
};

} // namespace lpp::trace

#endif // LPP_TRACE_TRACE_STORE_HPP
