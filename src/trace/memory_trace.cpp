#include "trace/memory_trace.hpp"

#include <algorithm>

namespace lpp::trace {

void
MemoryTrace::replay(TraceSink &sink) const
{
    if (events.empty())
        return;
    replayRange(sink, ChunkRange{0, events.size(), 0, addrs.size()});
}

std::vector<MemoryTrace::ChunkRange>
MemoryTrace::chunks(uint64_t target_accesses) const
{
    std::vector<ChunkRange> out;
    if (events.empty())
        return out;
    target_accesses = std::max<uint64_t>(target_accesses, 1);
    ChunkRange cur;
    uint64_t accessesBefore = 0;
    for (size_t i = 0; i < events.size(); ++i) {
        const Event &e = events[i];
        uint64_t delivered = 0;
        if (e.kind == Kind::Access)
            delivered = 1;
        else if (e.kind == Kind::Batch)
            delivered = e.a;
        ++cur.eventCount;
        cur.accessCount += delivered;
        accessesBefore += delivered;
        if (cur.accessCount >= target_accesses && i + 1 < events.size()) {
            out.push_back(cur);
            cur = ChunkRange{i + 1, 0, accessesBefore, 0};
        }
    }
    if (cur.eventCount > 0)
        out.push_back(cur);
    return out;
}

void
MemoryTrace::replayRange(TraceSink &sink, const ChunkRange &range) const
{
    const Event *first = events.data() + range.firstEvent;
    const Event *last = first + range.eventCount;
    for (const Event *it = first; it != last; ++it) {
        const Event &e = *it;
        switch (e.kind) {
          case Kind::Block:
            sink.onBlock(static_cast<BlockId>(e.a),
                         static_cast<uint32_t>(e.b));
            break;
          case Kind::Access:
            sink.onAccess(addrs[e.b]);
            break;
          case Kind::Batch:
            sink.onAccessBatch(addrs.data() + e.b,
                               static_cast<size_t>(e.a));
            break;
          case Kind::Manual:
            sink.onManualMarker(static_cast<uint32_t>(e.a));
            break;
          case Kind::Phase:
            sink.onPhaseMarker(static_cast<PhaseId>(e.a));
            break;
          case Kind::End:
            sink.onEnd();
            break;
        }
    }
}

size_t
MemoryTrace::memoryBytes() const
{
    return events.capacity() * sizeof(Event) +
           addrs.capacity() * sizeof(Addr);
}

void
MemoryTrace::reserve(size_t event_hint, size_t access_hint)
{
    events.reserve(event_hint);
    addrs.reserve(access_hint);
}

void
MemoryTrace::clear()
{
    events = {};
    addrs = {};
}

} // namespace lpp::trace
