#include "trace/memory_trace.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace lpp::trace {

namespace {

/** Decode one varint from [*p, end); false on truncation. */
inline bool
readVarint(const uint8_t *&p, const uint8_t *end, uint64_t &v)
{
    uint64_t out = 0;
    unsigned shift = 0;
    while (p < end && shift < 64) {
        uint8_t byte = *p++;
        out |= static_cast<uint64_t>(byte & 0x7F) << shift;
        if ((byte & 0x80) == 0) {
            v = out;
            return true;
        }
        shift += 7;
    }
    return false;
}

/**
 * Walk one event of a frame's event section without decoding any
 * address: advances `p` past the event's bytes and reports how many
 * data accesses the event delivers. This is what makes chunks() an
 * index pass — it never touches the bitmap or residue sections.
 */
bool
scanEvent(const uint8_t *&p, const uint8_t *end, uint64_t &delivered)
{
    delivered = 0;
    if (p >= end)
        return false;
    uint64_t skip = 0;
    switch (static_cast<TraceOp>(*p++)) {
      case TraceOp::Block:
        return readVarint(p, end, skip) && readVarint(p, end, skip);
      case TraceOp::Access:
        delivered = 1;
        return true;
      case TraceOp::Batch:
        if (!readVarint(p, end, delivered))
            return false;
        return true;
      case TraceOp::Manual:
      case TraceOp::Phase:
        return readVarint(p, end, skip);
      case TraceOp::End:
        return true;
      default:
        return false;
    }
}

} // namespace

StreamingTrace::StreamingTrace(const PredictorConfig &cfg_,
                               uint64_t frame_target)
    : cfg(cfg_), frameTarget(std::max<uint64_t>(frame_target, 1)),
      enc(cfg_)
{
}

void
StreamingTrace::sealNow()
{
    Frame f;
    const uint64_t firstEvent = totalEvents - enc.events();
    const uint64_t firstAccess = totalAccesses - enc.accesses();
    enc.seal(f.info, f.payload);
    f.info.firstEvent = firstEvent;
    f.info.firstAccess = firstAccess;
    sealed.push_back(std::move(f));
}

void
StreamingTrace::maybeSeal()
{
    LPP_DCHECK(!adopted,
               "appending to a loaded (adopted) trace recording");
    if (enc.accesses() < frameTarget)
        return;
    // Lazy sealing — close the open frame only when the *next* event
    // arrives — keeps frame boundaries identical to the boundaries
    // chunks() computes for the same access target, and never leaves
    // an empty trailing frame.
    sealNow();
}

void
StreamingTrace::onBlock(BlockId block, uint32_t instructions)
{
    maybeSeal();
    enc.onBlock(block, instructions);
    ++totalEvents;
}

void
StreamingTrace::onAccess(Addr addr)
{
    maybeSeal();
    enc.onAccess(addr);
    ++totalEvents;
    ++totalAccesses;
}

void
StreamingTrace::onAccessBatch(const Addr *batch, size_t n)
{
    maybeSeal();
    enc.onAccessBatch(batch, n);
    ++totalEvents;
    totalAccesses += n;
}

void
StreamingTrace::onManualMarker(uint32_t marker_id)
{
    maybeSeal();
    enc.onManualMarker(marker_id);
    ++totalEvents;
}

void
StreamingTrace::onPhaseMarker(PhaseId phase)
{
    maybeSeal();
    enc.onPhaseMarker(phase);
    ++totalEvents;
}

void
StreamingTrace::onEnd()
{
    maybeSeal();
    enc.onEnd();
    ++totalEvents;
    // End closes the stream, so no later event will trigger the lazy
    // seal: close (and LZ-pack) the trailing frame here. A mid-stream
    // End just produces an extra frame boundary, which is always
    // legal.
    sealNow();
}

void
StreamingTrace::replay(TraceSink &sink) const
{
    if (empty())
        return;
    TraceCursor cursor(*this);
    cursor.replayAll(sink);
}

std::vector<StreamingTrace::ChunkRange>
StreamingTrace::chunks(uint64_t target_accesses) const
{
    std::vector<ChunkRange> out;
    if (totalEvents == 0)
        return out;
    target_accesses = std::max<uint64_t>(target_accesses, 1);
    ChunkRange cur;
    uint64_t accessesBefore = 0;
    uint64_t idx = 0;
    const size_t frames = frameCount();
    std::vector<uint8_t> unpacked; // reused when a section is LZ-packed
    for (size_t f = 0; f < frames; ++f) {
        FrameView v = frameView(f);
        const uint8_t *p = v.events;
        if (v.info.storedEventBytes != v.info.eventBytes) {
            unpacked.resize(static_cast<size_t>(v.info.eventBytes));
            LPP_REQUIRE(
                lzUnpack(v.events,
                         static_cast<size_t>(v.info.storedEventBytes),
                         unpacked.data(), unpacked.size()),
                "corrupt packed event section in frame %zu", f);
            p = unpacked.data();
        }
        const uint8_t *end = p + v.info.eventBytes;
        while (p < end) {
            uint64_t delivered = 0;
            LPP_REQUIRE(scanEvent(p, end, delivered),
                        "corrupt event section in frame %zu", f);
            ++cur.eventCount;
            cur.accessCount += delivered;
            accessesBefore += delivered;
            if (cur.accessCount >= target_accesses &&
                idx + 1 < totalEvents) {
                out.push_back(cur);
                cur = ChunkRange{static_cast<size_t>(idx + 1), 0,
                                 accessesBefore, 0};
            }
            ++idx;
        }
    }
    if (cur.eventCount > 0)
        out.push_back(cur);
    return out;
}

std::vector<StreamingTrace::ChunkRange>
StreamingTrace::sliceAt(const std::vector<uint64_t> &access_cuts) const
{
    std::vector<ChunkRange> out;
    out.reserve(access_cuts.size() + 1);
    for (size_t i = 0; i < access_cuts.size(); ++i) {
        LPP_REQUIRE(i == 0 || access_cuts[i - 1] <= access_cuts[i],
                    "slice cuts must be ascending");
        LPP_REQUIRE(access_cuts[i] <= totalAccesses,
                    "slice cut %llu past the recording's %llu accesses",
                    static_cast<unsigned long long>(access_cuts[i]),
                    static_cast<unsigned long long>(totalAccesses));
    }

    ChunkRange cur;
    uint64_t accessesBefore = 0;
    uint64_t idx = 0;
    size_t cutIdx = 0;
    const size_t frames = frameCount();
    std::vector<uint8_t> unpacked; // reused when a section is LZ-packed
    for (size_t f = 0; f < frames; ++f) {
        FrameView v = frameView(f);
        const uint8_t *p = v.events;
        if (v.info.storedEventBytes != v.info.eventBytes) {
            unpacked.resize(static_cast<size_t>(v.info.eventBytes));
            LPP_REQUIRE(
                lzUnpack(v.events,
                         static_cast<size_t>(v.info.storedEventBytes),
                         unpacked.data(), unpacked.size()),
                "corrupt packed event section in frame %zu", f);
            p = unpacked.data();
        }
        const uint8_t *end = p + v.info.eventBytes;
        while (p < end) {
            while (cutIdx < access_cuts.size() &&
                   accessesBefore >= access_cuts[cutIdx]) {
                out.push_back(cur);
                cur = ChunkRange{static_cast<size_t>(idx), 0,
                                 accessesBefore, 0};
                ++cutIdx;
            }
            uint64_t delivered = 0;
            LPP_REQUIRE(scanEvent(p, end, delivered),
                        "corrupt event section in frame %zu", f);
            ++cur.eventCount;
            cur.accessCount += delivered;
            accessesBefore += delivered;
            ++idx;
        }
    }
    // Cuts at (or past) the last event's clock close against the end
    // of the stream, producing trailing empty ranges.
    while (cutIdx < access_cuts.size()) {
        out.push_back(cur);
        cur = ChunkRange{static_cast<size_t>(idx), 0, accessesBefore, 0};
        ++cutIdx;
    }
    out.push_back(cur);
    return out;
}

void
StreamingTrace::replayRange(TraceSink &sink,
                            const ChunkRange &range) const
{
    if (range.eventCount == 0)
        return;
    TraceCursor cursor(*this);
    cursor.replayRange(sink, range);
}

size_t
StreamingTrace::memoryBytes() const
{
    size_t bytes = enc.capacityBytes();
    for (const Frame &f : sealed)
        bytes += f.payload.capacity() + sizeof(Frame);
    return bytes;
}

uint64_t
StreamingTrace::encodedBytes() const
{
    uint64_t bytes = enc.sectionBytes();
    for (const Frame &f : sealed)
        bytes += f.payload.size();
    return bytes;
}

void
StreamingTrace::reserve(size_t /*event_hint*/, size_t /*access_hint*/)
{
    // A soft hint only: the frame builder's sections grow
    // geometrically and are bounded by one frame, so there is nothing
    // trace-length-sized to pre-size any more.
}

void
StreamingTrace::clear()
{
    sealed = {};
    enc.restart();
    totalEvents = 0;
    totalAccesses = 0;
    adopted = false;
}

void
StreamingTrace::setFrameTargetAccesses(uint64_t target_accesses)
{
    LPP_REQUIRE(empty(),
                "frame target must be set before recording starts");
    frameTarget = std::max<uint64_t>(target_accesses, 1);
}

size_t
StreamingTrace::frameCount() const
{
    return sealed.size() + (enc.empty() ? 0 : 1);
}

StreamingTrace::FrameView
StreamingTrace::frameView(size_t i) const
{
    if (i < sealed.size()) {
        const Frame &f = sealed[i];
        FrameView v;
        v.info = f.info;
        v.events = f.payload.data();
        v.bitmap = v.events + f.info.storedEventBytes;
        v.residue = v.bitmap + f.info.storedBitmapBytes;
        return v;
    }
    LPP_REQUIRE(i == sealed.size() && !enc.empty(),
                "frame index %zu out of range", i);
    FrameView v;
    v.info.firstEvent = totalEvents - enc.events();
    v.info.firstAccess = totalAccesses - enc.accesses();
    v.info.events = enc.events();
    v.info.accesses = enc.accesses();
    v.info.eventBytes = enc.eventSection().size();
    v.info.bitmapBytes = enc.bitmapSection().size();
    v.info.residueBytes = enc.residueSection().size();
    // The open frame's sections are raw (only seal/materialize pack).
    v.info.storedEventBytes = v.info.eventBytes;
    v.info.storedBitmapBytes = v.info.bitmapBytes;
    v.info.storedResidueBytes = v.info.residueBytes;
    v.info.seeds = enc.startSeeds();
    v.events = enc.eventSection().data();
    v.bitmap = enc.bitmapSection().data();
    v.residue = enc.residueSection().data();
    return v;
}

bool
StreamingTrace::materializeOpenFrame(FrameInfo &info,
                                     std::vector<uint8_t> &payload) const
{
    if (enc.empty())
        return false;
    enc.materialize(info, payload);
    info.firstEvent = totalEvents - enc.events();
    info.firstAccess = totalAccesses - enc.accesses();
    return true;
}

void
StreamingTrace::adoptFrames(std::vector<Frame> frames, uint64_t events,
                            uint64_t accesses)
{
    clear();
    sealed = std::move(frames);
    totalEvents = events;
    totalAccesses = accesses;
    adopted = true;
}

// TraceCursor --------------------------------------------------------

TraceCursor::TraceCursor(const StreamingTrace &trace_)
    : trace(&trace_), dec(trace_.predictorConfig())
{
}

void
TraceCursor::bindFrame(size_t frame_index)
{
    frameIdx = frame_index;
    view = trace->frameView(frame_index);
    // In-memory frames came from our own encoder (or were hash-
    // verified by the store), so failing to unpack a section is an
    // invariant violation, not bad input.
    LPP_REQUIRE(unpackFrame(view.info, view.events, view.bitmap,
                            view.residue, sections),
                "corrupt packed section in frame %zu", frame_index);
    dec.begin(view.info, sections.events, sections.bitmap,
              sections.residue);
    bound = true;
}

void
TraceCursor::step(TraceSink *sink)
{
    for (;;) {
        FrameDecoder::Status st = dec.next(sink, scratch);
        if (st == FrameDecoder::Status::Event) {
            ++pos;
            return;
        }
        // In-memory frames were built by our own encoder (or hash-
        // verified by the store before adoption), so a decode error
        // here is a codec invariant violation, not bad input.
        LPP_REQUIRE(st == FrameDecoder::Status::Done,
                    "corrupt frame %zu in recorded trace", frameIdx);
        LPP_REQUIRE(frameIdx + 1 < trace->frameCount(),
                    "trace cursor stepped past the last frame");
        bindFrame(frameIdx + 1);
    }
}

void
TraceCursor::seek(uint64_t global_event)
{
    // Forward seek landing inside the currently bound frame: skip-
    // decode from the current position instead of rebinding, which
    // would re-unpack the frame and re-decode its whole prefix. This
    // is what makes a sorted walk of sampled ranges pay decode cost
    // proportional to the distance covered, not ranges × frame size.
    if (bound && global_event >= pos &&
        global_event < view.info.firstEvent + view.info.events) {
        while (pos < global_event)
            step(nullptr);
        return;
    }
    const size_t frames = trace->frameCount();
    LPP_REQUIRE(frames > 0, "seek in an empty trace");
    size_t lo = 0, hi = frames - 1;
    while (lo < hi) {
        size_t mid = lo + (hi - lo + 1) / 2;
        if (trace->frameView(mid).info.firstEvent <= global_event)
            lo = mid;
        else
            hi = mid - 1;
    }
    bindFrame(lo);
    pos = view.info.firstEvent;
    while (pos < global_event)
        step(nullptr);
}

void
TraceCursor::replayAll(TraceSink &sink)
{
    StreamingTrace::ChunkRange all;
    all.firstEvent = 0;
    all.eventCount = static_cast<size_t>(trace->eventCount());
    all.firstAccess = 0;
    all.accessCount = trace->accessCount();
    replayRange(sink, all);
}

void
TraceCursor::replayRange(TraceSink &sink,
                         const StreamingTrace::ChunkRange &range)
{
    if (range.eventCount == 0)
        return;
    LPP_REQUIRE(range.firstEvent + range.eventCount <=
                    trace->eventCount(),
                "chunk range [%zu, +%zu) exceeds the recording",
                range.firstEvent, range.eventCount);
    if (!bound || pos != range.firstEvent)
        seek(range.firstEvent);
    for (size_t i = 0; i < range.eventCount; ++i)
        step(&sink);
}

} // namespace lpp::trace
