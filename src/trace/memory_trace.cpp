#include "trace/memory_trace.hpp"

namespace lpp::trace {

void
MemoryTrace::replay(TraceSink &sink) const
{
    for (const Event &e : events) {
        switch (e.kind) {
          case Kind::Block:
            sink.onBlock(static_cast<BlockId>(e.a),
                         static_cast<uint32_t>(e.b));
            break;
          case Kind::Access:
            sink.onAccess(addrs[e.b]);
            break;
          case Kind::Batch:
            sink.onAccessBatch(addrs.data() + e.b,
                               static_cast<size_t>(e.a));
            break;
          case Kind::Manual:
            sink.onManualMarker(static_cast<uint32_t>(e.a));
            break;
          case Kind::Phase:
            sink.onPhaseMarker(static_cast<PhaseId>(e.a));
            break;
          case Kind::End:
            sink.onEnd();
            break;
        }
    }
}

size_t
MemoryTrace::memoryBytes() const
{
    return events.capacity() * sizeof(Event) +
           addrs.capacity() * sizeof(Addr);
}

void
MemoryTrace::reserve(size_t event_hint, size_t access_hint)
{
    events.reserve(event_hint);
    addrs.reserve(access_hint);
}

void
MemoryTrace::clear()
{
    events = {};
    addrs = {};
}

} // namespace lpp::trace
