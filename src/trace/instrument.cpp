#include "trace/instrument.hpp"

namespace lpp::trace {

std::vector<std::pair<BlockId, PhaseId>>
MarkerTable::entries() const
{
    std::vector<std::pair<BlockId, PhaseId>> out;
    out.reserve(table.size());
    for (const auto &kv : table)
        out.emplace_back(kv.first, kv.second);
    return out;
}

void
Instrumenter::onBlock(BlockId block, uint32_t instructions)
{
    if (const PhaseId *phase = markers.find(block)) {
        out.onPhaseMarker(*phase);
        ++fired;
    }
    out.onBlock(block, instructions);
}

} // namespace lpp::trace
