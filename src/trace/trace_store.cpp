#include "trace/trace_store.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "support/logging.hpp"
#include "trace/codec.hpp"
#include "trace/memory_trace.hpp"

namespace lpp::trace {

namespace {

constexpr uint32_t storeMagic = 0x3254504Cu; // "LPT2"
constexpr uint32_t storeVersion = 2;

/** Fixed-width little-endian header preceding key, directory, and
 *  frame payloads. */
struct EntryHeader
{
    uint32_t magic = storeMagic;
    uint32_t version = storeVersion;
    uint64_t paramsHash = 0;
    uint64_t eventCount = 0;
    uint64_t accessCount = 0;
    uint8_t hasStats = 0;
    uint64_t distinctElements = 0;
    uint8_t tableBits = 0; //!< predictor geometry the frames encode with
    uint8_t laneBits = 0;
    uint8_t historyDepth = 0;
    uint64_t frameCount = 0;
    uint64_t payloadBytes = 0; //!< concatenated frame payload bytes
    uint64_t indexHash = 0;    //!< contentHash64 of the directory bytes
    uint32_t keyBytes = 0;
};

constexpr size_t headerBytes =
    4 + 4 + 8 + 8 + 8 + 1 + 8 + 1 + 1 + 1 + 8 + 8 + 8 + 4;

/** One frame-directory entry: trace::FrameInfo, serialized flat. */
constexpr size_t indexEntryBytes = 15 * 8;

template <typename T>
void
put(std::vector<uint8_t> &out, T v)
{
    for (size_t b = 0; b < sizeof(T); ++b)
        out.push_back(static_cast<uint8_t>(
            static_cast<uint64_t>(v) >> (8 * b)));
}

template <typename T>
bool
get(const uint8_t *&p, const uint8_t *end, T &v)
{
    if (static_cast<size_t>(end - p) < sizeof(T))
        return false;
    uint64_t out = 0;
    for (size_t b = 0; b < sizeof(T); ++b)
        out |= static_cast<uint64_t>(p[b]) << (8 * b);
    v = static_cast<T>(out);
    p += sizeof(T);
    return true;
}

std::vector<uint8_t>
serializeHeader(const EntryHeader &h)
{
    std::vector<uint8_t> out;
    out.reserve(headerBytes);
    put(out, h.magic);
    put(out, h.version);
    put(out, h.paramsHash);
    put(out, h.eventCount);
    put(out, h.accessCount);
    put(out, h.hasStats);
    put(out, h.distinctElements);
    put(out, h.tableBits);
    put(out, h.laneBits);
    put(out, h.historyDepth);
    put(out, h.frameCount);
    put(out, h.payloadBytes);
    put(out, h.indexHash);
    put(out, h.keyBytes);
    return out;
}

bool
parseHeader(const uint8_t *data, size_t size, EntryHeader &h)
{
    const uint8_t *p = data;
    const uint8_t *end = data + size;
    return get(p, end, h.magic) && get(p, end, h.version) &&
           get(p, end, h.paramsHash) && get(p, end, h.eventCount) &&
           get(p, end, h.accessCount) && get(p, end, h.hasStats) &&
           get(p, end, h.distinctElements) &&
           get(p, end, h.tableBits) && get(p, end, h.laneBits) &&
           get(p, end, h.historyDepth) && get(p, end, h.frameCount) &&
           get(p, end, h.payloadBytes) && get(p, end, h.indexHash) &&
           get(p, end, h.keyBytes);
}

void
serializeIndexEntry(std::vector<uint8_t> &out, const FrameInfo &f)
{
    put(out, f.firstEvent);
    put(out, f.firstAccess);
    put(out, f.events);
    put(out, f.accesses);
    put(out, f.eventBytes);
    put(out, f.bitmapBytes);
    put(out, f.residueBytes);
    put(out, f.storedEventBytes);
    put(out, f.storedBitmapBytes);
    put(out, f.storedResidueBytes);
    put(out, f.payloadHash);
    put(out, f.seeds.prevAddr);
    put(out, f.seeds.prevBlock);
    put(out, f.seeds.ctxBlock);
    put(out, f.seeds.ctxLane);
}

bool
parseIndexEntry(const uint8_t *&p, const uint8_t *end, FrameInfo &f)
{
    return get(p, end, f.firstEvent) && get(p, end, f.firstAccess) &&
           get(p, end, f.events) && get(p, end, f.accesses) &&
           get(p, end, f.eventBytes) && get(p, end, f.bitmapBytes) &&
           get(p, end, f.residueBytes) &&
           get(p, end, f.storedEventBytes) &&
           get(p, end, f.storedBitmapBytes) &&
           get(p, end, f.storedResidueBytes) &&
           get(p, end, f.payloadHash) &&
           get(p, end, f.seeds.prevAddr) &&
           get(p, end, f.seeds.prevBlock) &&
           get(p, end, f.seeds.ctxBlock) &&
           get(p, end, f.seeds.ctxLane);
}

/** An open entry whose header, key, and size already verified. */
struct OpenEntry
{
    std::ifstream in;
    EntryHeader header;
    uint64_t fileBytes = 0;
};

/**
 * Open and header-verify one entry: magic, version, params hash, key,
 * geometry sanity, and exact on-disk size. The stream is left
 * positioned at the frame directory.
 */
bool
openEntry(const std::string &path, const std::string &key,
          uint64_t params_hash, OpenEntry &entry)
{
    entry.in.open(path, std::ios::binary);
    if (!entry.in)
        return false;

    std::vector<uint8_t> head(headerBytes);
    entry.in.read(reinterpret_cast<char *>(head.data()),
                  static_cast<std::streamsize>(head.size()));
    if (entry.in.gcount() != static_cast<std::streamsize>(head.size()))
        return false;
    EntryHeader &h = entry.header;
    if (!parseHeader(head.data(), head.size(), h))
        return false;
    if (h.magic != storeMagic || h.version != storeVersion ||
        h.paramsHash != params_hash || h.keyBytes != key.size() ||
        h.keyBytes > 4096)
        return false;
    PredictorConfig cfg{h.tableBits, h.laneBits, h.historyDepth};
    if (!cfg.valid())
        return false;

    std::string storedKey(h.keyBytes, '\0');
    entry.in.read(storedKey.data(),
                  static_cast<std::streamsize>(storedKey.size()));
    if (entry.in.gcount() !=
            static_cast<std::streamsize>(storedKey.size()) ||
        storedKey != key)
        return false;

    std::error_code ec;
    auto onDisk = std::filesystem::file_size(path, ec);
    if (ec || onDisk != headerBytes + h.keyBytes +
                            h.frameCount * indexEntryBytes +
                            h.payloadBytes)
        return false;
    entry.fileBytes = onDisk;
    return true;
}

/**
 * Read and verify the frame directory of an open entry: the directory
 * hash must match the header and the entries must tile the stream —
 * monotone offsets starting at zero, counts and payload sizes summing
 * to the header totals.
 */
bool
readIndex(OpenEntry &entry, std::vector<FrameInfo> &index)
{
    const EntryHeader &h = entry.header;
    std::vector<uint8_t> raw(
        static_cast<size_t>(h.frameCount * indexEntryBytes));
    entry.in.read(reinterpret_cast<char *>(raw.data()),
                  static_cast<std::streamsize>(raw.size()));
    if (entry.in.gcount() != static_cast<std::streamsize>(raw.size()))
        return false;
    if (contentHash64(raw.data(), raw.size()) != h.indexHash)
        return false;

    index.resize(static_cast<size_t>(h.frameCount));
    const uint8_t *p = raw.data();
    const uint8_t *end = raw.data() + raw.size();
    uint64_t events = 0, accesses = 0, payload = 0;
    for (FrameInfo &f : index) {
        if (!parseIndexEntry(p, end, f))
            return false;
        if (f.firstEvent != events || f.firstAccess != accesses ||
            f.events == 0)
            return false;
        // A stored section never exceeds its logical size (packing
        // that does not shrink is stored raw).
        if (f.storedEventBytes > f.eventBytes ||
            f.storedBitmapBytes > f.bitmapBytes ||
            f.storedResidueBytes > f.residueBytes)
            return false;
        events += f.events;
        accesses += f.accesses;
        payload += f.payloadBytes();
    }
    return events == h.eventCount && accesses == h.accessCount &&
           payload == h.payloadBytes;
}

/** Filesystem-safe rendering of an execution key. */
std::string
sanitizeKey(const std::string &key)
{
    std::string out;
    out.reserve(key.size());
    for (char c : key) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '.' || c == '-' ||
                  c == '_';
        out.push_back(ok ? c : '_');
    }
    return out;
}

/** Read one frame's payload into `payload` and verify its hash. */
bool
readFramePayload(OpenEntry &entry, const FrameInfo &f,
                 std::vector<uint8_t> &payload)
{
    payload.resize(static_cast<size_t>(f.payloadBytes()));
    entry.in.read(reinterpret_cast<char *>(payload.data()),
                  static_cast<std::streamsize>(payload.size()));
    if (entry.in.gcount() !=
        static_cast<std::streamsize>(payload.size()))
        return false;
    return contentHash64(payload.data(), payload.size()) ==
           f.payloadHash;
}

} // namespace

TraceStore::TraceStore(std::string dir) : root(std::move(dir))
{
    LPP_REQUIRE(!root.empty(), "trace store directory must be set");
}

std::string
TraceStore::pathFor(const std::string &key, uint64_t params_hash) const
{
    char suffix[32];
    std::snprintf(suffix, sizeof(suffix), "-%016llx.lpt",
                  static_cast<unsigned long long>(params_hash));
    return root + "/" + sanitizeKey(key) + suffix;
}

std::optional<StoredTraceInfo>
TraceStore::lookup(const std::string &key, uint64_t params_hash) const
{
    OpenEntry entry;
    StoredTraceInfo info;
    info.path = pathFor(key, params_hash);
    if (!openEntry(info.path, key, params_hash, entry))
        return std::nullopt;
    info.events = entry.header.eventCount;
    info.accesses = entry.header.accessCount;
    info.stats.valid = entry.header.hasStats != 0;
    info.stats.distinctElements = entry.header.distinctElements;
    info.frames = entry.header.frameCount;
    info.payloadBytes = entry.header.payloadBytes;
    info.fileBytes = entry.fileBytes;
    return info;
}

bool
TraceStore::replay(const std::string &key, uint64_t params_hash,
                   TraceSink &sink) const
{
    OpenEntry entry;
    const std::string path = pathFor(key, params_hash);
    if (!openEntry(path, key, params_hash, entry))
        return false;
    std::vector<FrameInfo> index;
    if (!readIndex(entry, index)) {
        warn("trace store: corrupt frame directory for '%s' (%s); "
             "falling back to live execution",
             key.c_str(), path.c_str());
        return false;
    }

    // Stream one frame at a time through reused buffers: peak memory
    // is one frame payload plus one decoded batch, independent of how
    // long the recorded execution ran.
    PredictorConfig cfg{entry.header.tableBits, entry.header.laneBits,
                        entry.header.historyDepth};
    FrameDecoder dec(cfg);
    std::vector<uint8_t> payload;
    FrameSections sections;
    std::vector<Addr> scratch;
    for (const FrameInfo &f : index) {
        if (!readFramePayload(entry, f, payload)) {
            warn("trace store: frame hash mismatch for '%s' (%s); "
                 "falling back to live execution",
                 key.c_str(), path.c_str());
            return false;
        }
        if (!unpackFrame(f, payload.data(), sections)) {
            warn("trace store: corrupt packed section for '%s' (%s); "
                 "falling back to live execution",
                 key.c_str(), path.c_str());
            return false;
        }
        dec.begin(f, sections.events, sections.bitmap,
                  sections.residue);
        for (;;) {
            FrameDecoder::Status st = dec.next(&sink, scratch);
            if (st == FrameDecoder::Status::Done)
                break;
            if (st == FrameDecoder::Status::Error)
                return false;
        }
    }
    return true;
}

bool
TraceStore::load(const std::string &key, uint64_t params_hash,
                 StreamingTrace &out) const
{
    OpenEntry entry;
    const std::string path = pathFor(key, params_hash);
    if (!openEntry(path, key, params_hash, entry))
        return false;

    // The entry's frames are adopted as-is; they must have been
    // encoded with the same predictor geometry the recording will
    // decode with. A geometry change simply invalidates the cache.
    PredictorConfig cfg{entry.header.tableBits, entry.header.laneBits,
                        entry.header.historyDepth};
    if (!(cfg == out.predictorConfig()))
        return false;

    std::vector<FrameInfo> index;
    if (!readIndex(entry, index))
        return false;

    std::vector<StreamingTrace::Frame> frames(index.size());
    for (size_t i = 0; i < index.size(); ++i) {
        frames[i].info = index[i];
        if (!readFramePayload(entry, index[i], frames[i].payload))
            return false;
    }
    out.adoptFrames(std::move(frames), entry.header.eventCount,
                    entry.header.accessCount);
    return true;
}

uint64_t
TraceStore::store(const std::string &key, uint64_t params_hash,
                  const StreamingTrace &trace,
                  const StoredTraceStats &stats) const
{
    std::error_code ec;
    std::filesystem::create_directories(root, ec);
    if (ec) {
        warn("trace store: cannot create '%s': %s", root.c_str(),
             ec.message().c_str());
        return 0;
    }

    // Assemble the frame directory: every sealed frame as-is, plus
    // the open frame materialized as the final one.
    std::vector<uint8_t> index;
    uint64_t frameCount = 0;
    uint64_t payloadBytes = 0;
    for (size_t i = 0; i < trace.sealedFrameCount(); ++i) {
        const StreamingTrace::Frame &f = trace.sealedFrame(i);
        serializeIndexEntry(index, f.info);
        ++frameCount;
        payloadBytes += f.payload.size();
    }
    FrameInfo openInfo;
    std::vector<uint8_t> openPayload;
    const bool hasOpen =
        trace.materializeOpenFrame(openInfo, openPayload);
    if (hasOpen) {
        serializeIndexEntry(index, openInfo);
        ++frameCount;
        payloadBytes += openPayload.size();
    }

    EntryHeader header;
    header.paramsHash = params_hash;
    header.eventCount = trace.eventCount();
    header.accessCount = trace.accessCount();
    header.hasStats = stats.valid ? 1 : 0;
    header.distinctElements = stats.valid ? stats.distinctElements : 0;
    const PredictorConfig &cfg = trace.predictorConfig();
    header.tableBits = static_cast<uint8_t>(cfg.tableBits);
    header.laneBits = static_cast<uint8_t>(cfg.laneBits);
    header.historyDepth = static_cast<uint8_t>(cfg.historyDepth);
    header.frameCount = frameCount;
    header.payloadBytes = payloadBytes;
    header.indexHash = contentHash64(index.data(), index.size());
    header.keyBytes = static_cast<uint32_t>(key.size());
    auto head = serializeHeader(header);

    // Unique temporary in the same directory so the final rename is
    // atomic; concurrent publishers of one key are both correct (they
    // write identical bytes) and last-rename-wins.
    static std::atomic<uint64_t> tmpCounter{0};
    const std::string path = pathFor(key, params_hash);
    char tmpSuffix[64];
    std::snprintf(tmpSuffix, sizeof(tmpSuffix), ".tmp.%ld.%llu",
                  static_cast<long>(::getpid()),
                  static_cast<unsigned long long>(
                      tmpCounter.fetch_add(1)));
    const std::string tmp = path + tmpSuffix;

    {
        std::ofstream outFile(tmp, std::ios::binary | std::ios::trunc);
        if (!outFile)
            return 0;
        outFile.write(reinterpret_cast<const char *>(head.data()),
                      static_cast<std::streamsize>(head.size()));
        outFile.write(key.data(),
                      static_cast<std::streamsize>(key.size()));
        outFile.write(reinterpret_cast<const char *>(index.data()),
                      static_cast<std::streamsize>(index.size()));
        for (size_t i = 0; i < trace.sealedFrameCount(); ++i) {
            const auto &payload = trace.sealedFrame(i).payload;
            outFile.write(
                reinterpret_cast<const char *>(payload.data()),
                static_cast<std::streamsize>(payload.size()));
        }
        if (hasOpen)
            outFile.write(
                reinterpret_cast<const char *>(openPayload.data()),
                static_cast<std::streamsize>(openPayload.size()));
        if (!outFile) {
            outFile.close();
            std::filesystem::remove(tmp, ec);
            return 0;
        }
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        warn("trace store: cannot publish '%s': %s", path.c_str(),
             ec.message().c_str());
        std::filesystem::remove(tmp, ec);
        return 0;
    }
    return head.size() + key.size() + index.size() + payloadBytes;
}

} // namespace lpp::trace
