#include "trace/trace_store.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "support/logging.hpp"
#include "trace/codec.hpp"
#include "trace/memory_trace.hpp"

namespace lpp::trace {

namespace {

constexpr uint32_t storeMagic = 0x3154504Cu; // "LPT1"
constexpr uint32_t storeVersion = 1;

/** Fixed-width little-endian header preceding key and payload. */
struct EntryHeader
{
    uint32_t magic = storeMagic;
    uint32_t version = storeVersion;
    uint64_t paramsHash = 0;
    uint64_t eventCount = 0;
    uint64_t accessCount = 0;
    uint8_t hasStats = 0;
    uint64_t distinctElements = 0;
    uint64_t payloadBytes = 0;
    uint64_t payloadHash = 0;
    uint32_t keyBytes = 0;
};

constexpr size_t headerBytes = 4 + 4 + 8 + 8 + 8 + 1 + 8 + 8 + 8 + 4;

template <typename T>
void
put(std::vector<uint8_t> &out, T v)
{
    for (size_t b = 0; b < sizeof(T); ++b)
        out.push_back(static_cast<uint8_t>(
            static_cast<uint64_t>(v) >> (8 * b)));
}

template <typename T>
bool
get(const uint8_t *&p, const uint8_t *end, T &v)
{
    if (static_cast<size_t>(end - p) < sizeof(T))
        return false;
    uint64_t out = 0;
    for (size_t b = 0; b < sizeof(T); ++b)
        out |= static_cast<uint64_t>(p[b]) << (8 * b);
    v = static_cast<T>(out);
    p += sizeof(T);
    return true;
}

std::vector<uint8_t>
serializeHeader(const EntryHeader &h)
{
    std::vector<uint8_t> out;
    out.reserve(headerBytes);
    put(out, h.magic);
    put(out, h.version);
    put(out, h.paramsHash);
    put(out, h.eventCount);
    put(out, h.accessCount);
    put(out, h.hasStats);
    put(out, h.distinctElements);
    put(out, h.payloadBytes);
    put(out, h.payloadHash);
    put(out, h.keyBytes);
    return out;
}

bool
parseHeader(const uint8_t *data, size_t size, EntryHeader &h)
{
    const uint8_t *p = data;
    const uint8_t *end = data + size;
    return get(p, end, h.magic) && get(p, end, h.version) &&
           get(p, end, h.paramsHash) && get(p, end, h.eventCount) &&
           get(p, end, h.accessCount) && get(p, end, h.hasStats) &&
           get(p, end, h.distinctElements) &&
           get(p, end, h.payloadBytes) && get(p, end, h.payloadHash) &&
           get(p, end, h.keyBytes);
}

/**
 * Read and header-verify one entry. On success fills `header` and, when
 * `payload` is non-null, the raw payload bytes (hash NOT yet checked).
 */
bool
readEntry(const std::string &path, const std::string &key,
          uint64_t params_hash, EntryHeader &header,
          std::vector<uint8_t> *payload, uint64_t *file_bytes)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;

    std::vector<uint8_t> head(headerBytes);
    in.read(reinterpret_cast<char *>(head.data()),
            static_cast<std::streamsize>(head.size()));
    if (in.gcount() != static_cast<std::streamsize>(head.size()))
        return false;
    if (!parseHeader(head.data(), head.size(), header))
        return false;
    if (header.magic != storeMagic || header.version != storeVersion ||
        header.paramsHash != params_hash ||
        header.keyBytes != key.size() ||
        header.keyBytes > 4096)
        return false;

    std::string storedKey(header.keyBytes, '\0');
    in.read(storedKey.data(),
            static_cast<std::streamsize>(storedKey.size()));
    if (in.gcount() != static_cast<std::streamsize>(storedKey.size()) ||
        storedKey != key)
        return false;

    std::error_code ec;
    auto onDisk = std::filesystem::file_size(path, ec);
    if (ec || onDisk != headerBytes + header.keyBytes +
                            header.payloadBytes)
        return false;
    if (file_bytes)
        *file_bytes = onDisk;

    if (payload) {
        payload->resize(static_cast<size_t>(header.payloadBytes));
        in.read(reinterpret_cast<char *>(payload->data()),
                static_cast<std::streamsize>(payload->size()));
        if (in.gcount() !=
            static_cast<std::streamsize>(payload->size()))
            return false;
    }
    return true;
}

/** Filesystem-safe rendering of an execution key. */
std::string
sanitizeKey(const std::string &key)
{
    std::string out;
    out.reserve(key.size());
    for (char c : key) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '.' || c == '-' ||
                  c == '_';
        out.push_back(ok ? c : '_');
    }
    return out;
}

} // namespace

TraceStore::TraceStore(std::string dir) : root(std::move(dir))
{
    LPP_REQUIRE(!root.empty(), "trace store directory must be set");
}

std::string
TraceStore::pathFor(const std::string &key, uint64_t params_hash) const
{
    char suffix[32];
    std::snprintf(suffix, sizeof(suffix), "-%016llx.lpt",
                  static_cast<unsigned long long>(params_hash));
    return root + "/" + sanitizeKey(key) + suffix;
}

std::optional<StoredTraceInfo>
TraceStore::lookup(const std::string &key, uint64_t params_hash) const
{
    EntryHeader header;
    StoredTraceInfo info;
    info.path = pathFor(key, params_hash);
    if (!readEntry(info.path, key, params_hash, header, nullptr,
                   &info.fileBytes))
        return std::nullopt;
    info.events = header.eventCount;
    info.accesses = header.accessCount;
    info.stats.valid = header.hasStats != 0;
    info.stats.distinctElements = header.distinctElements;
    info.payloadBytes = header.payloadBytes;
    return info;
}

bool
TraceStore::replay(const std::string &key, uint64_t params_hash,
                   TraceSink &sink) const
{
    EntryHeader header;
    std::vector<uint8_t> payload;
    const std::string path = pathFor(key, params_hash);
    if (!readEntry(path, key, params_hash, header, &payload, nullptr))
        return false;
    if (contentHash64(payload.data(), payload.size()) !=
        header.payloadHash) {
        warn("trace store: payload hash mismatch for '%s' (%s); "
             "falling back to live execution",
             key.c_str(), path.c_str());
        return false;
    }
    uint64_t events = 0, accesses = 0;
    if (!decodeTrace(payload.data(), payload.size(), sink, &events,
                     &accesses))
        return false;
    return events == header.eventCount &&
           accesses == header.accessCount;
}

bool
TraceStore::load(const std::string &key, uint64_t params_hash,
                 MemoryTrace &out) const
{
    auto info = lookup(key, params_hash);
    if (!info)
        return false;
    out.clear();
    out.reserve(static_cast<size_t>(info->events),
                static_cast<size_t>(info->accesses));
    if (!replay(key, params_hash, out)) {
        out.clear();
        return false;
    }
    return true;
}

uint64_t
TraceStore::storeEncoded(const std::string &key, uint64_t params_hash,
                         const std::vector<uint8_t> &payload,
                         uint64_t events, uint64_t accesses,
                         const StoredTraceStats &stats) const
{
    std::error_code ec;
    std::filesystem::create_directories(root, ec);
    if (ec) {
        warn("trace store: cannot create '%s': %s", root.c_str(),
             ec.message().c_str());
        return 0;
    }

    EntryHeader header;
    header.paramsHash = params_hash;
    header.eventCount = events;
    header.accessCount = accesses;
    header.hasStats = stats.valid ? 1 : 0;
    header.distinctElements = stats.valid ? stats.distinctElements : 0;
    header.payloadBytes = payload.size();
    header.payloadHash = contentHash64(payload.data(), payload.size());
    header.keyBytes = static_cast<uint32_t>(key.size());
    auto head = serializeHeader(header);

    // Unique temporary in the same directory so the final rename is
    // atomic; concurrent publishers of one key are both correct (they
    // write identical bytes) and last-rename-wins.
    static std::atomic<uint64_t> tmpCounter{0};
    const std::string path = pathFor(key, params_hash);
    char tmpSuffix[64];
    std::snprintf(tmpSuffix, sizeof(tmpSuffix), ".tmp.%ld.%llu",
                  static_cast<long>(::getpid()),
                  static_cast<unsigned long long>(
                      tmpCounter.fetch_add(1)));
    const std::string tmp = path + tmpSuffix;

    {
        std::ofstream outFile(tmp, std::ios::binary | std::ios::trunc);
        if (!outFile)
            return 0;
        outFile.write(reinterpret_cast<const char *>(head.data()),
                      static_cast<std::streamsize>(head.size()));
        outFile.write(key.data(),
                      static_cast<std::streamsize>(key.size()));
        outFile.write(reinterpret_cast<const char *>(payload.data()),
                      static_cast<std::streamsize>(payload.size()));
        if (!outFile) {
            outFile.close();
            std::filesystem::remove(tmp, ec);
            return 0;
        }
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        warn("trace store: cannot publish '%s': %s", path.c_str(),
             ec.message().c_str());
        std::filesystem::remove(tmp, ec);
        return 0;
    }
    return head.size() + key.size() + payload.size();
}

uint64_t
TraceStore::store(const std::string &key, uint64_t params_hash,
                  const MemoryTrace &trace,
                  const StoredTraceStats &stats) const
{
    TraceEncoder enc;
    trace.replay(enc);
    auto payload = enc.take();
    return storeEncoded(key, params_hash, payload, enc.eventCount(),
                        enc.accessCount(), stats);
}

} // namespace lpp::trace
