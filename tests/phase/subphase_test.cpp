#include <gtest/gtest.h>

#include "phase/marker_selection.hpp"

namespace {

using namespace lpp::phase;
using lpp::trace::BlockEvent;
using lpp::trace::BlockId;

/** Builds a block trace with running clocks. */
class TraceBuilder
{
  public:
    void
    block(BlockId b, uint32_t instrs, uint32_t accs = 0)
    {
        events.push_back(BlockEvent{b, instrs, accessClock, instrClock});
        instrClock += instrs;
        accessClock += accs;
    }

    void
    body(BlockId b, uint32_t n, uint32_t instrs = 10)
    {
        for (uint32_t i = 0; i < n; ++i)
            block(b, instrs);
    }

    std::vector<BlockEvent> events;
    uint64_t instrClock = 0;
    uint64_t accessClock = 0;
};

/**
 * Phase A contains two sub-kernels a1/a2 (2K instructions each, below
 * the 10K coarse threshold, above the fine one); phase B is flat.
 */
TraceBuilder
nestedProgram(int steps = 8)
{
    TraceBuilder tb;
    for (int s = 0; s < steps; ++s) {
        tb.block(100, 10); // phase A entry
        tb.block(110, 10); // sub-kernel a1 entry
        tb.body(1, 200);   // 2000 instructions
        tb.block(120, 10); // sub-kernel a2 entry
        tb.body(2, 300);   // 3000 instructions
        tb.block(200, 10); // phase B entry
        tb.body(3, 1200);  // 12000 instructions
    }
    return tb;
}

MarkerConfig
coarseCfg()
{
    MarkerConfig c;
    c.minPhaseInstructions = 5000;
    return c;
}

TEST(SubPhases, CoarseLevelFindsOnlyLargePhases)
{
    auto tb = nestedProgram();
    MarkerSelector sel(coarseCfg());
    auto out = sel.selectSubPhases(tb.events, tb.instrClock, 16, 4.0);
    // Coarse level: only B's 12K-instruction body leaves a >= 5K blank
    // region (the sub-kernel gaps are 2-3K each).
    EXPECT_GE(out.coarse.phases.size(), 1u);
    EXPECT_NE(out.coarse.table.find(200), nullptr);
    // Sub-kernels are never coarse phases (regions 2-3K < 5K).
    EXPECT_EQ(out.coarse.table.find(110), nullptr);
    EXPECT_EQ(out.coarse.table.find(120), nullptr);
}

TEST(SubPhases, FineLevelFindsSubKernels)
{
    auto tb = nestedProgram();
    MarkerSelector sel(coarseCfg());
    auto out = sel.selectSubPhases(tb.events, tb.instrClock, 16, 4.0);
    // Fine threshold 1250: the 2K/3K sub-kernel regions qualify.
    EXPECT_NE(out.fine.table.find(110), nullptr);
    EXPECT_NE(out.fine.table.find(120), nullptr);
    EXPECT_NE(out.fine.table.find(200), nullptr);
    EXPECT_GT(out.fine.phases.size(), out.coarse.phases.size());
}

TEST(SubPhases, ParentAttributionEnclosesSubKernels)
{
    auto tb = nestedProgram();
    MarkerSelector sel(coarseCfg());
    auto out = sel.selectSubPhases(tb.events, tb.instrClock, 16, 4.0);
    ASSERT_EQ(out.parentOf.size(), out.fine.phases.size());

    // Both sub-kernels must map to the same coarse parent (phase A's
    // span), and B's fine phase maps to B's coarse phase.
    const lpp::trace::PhaseId *fine_a1 = out.fine.table.find(110);
    const lpp::trace::PhaseId *fine_a2 = out.fine.table.find(120);
    const lpp::trace::PhaseId *fine_b = out.fine.table.find(200);
    const lpp::trace::PhaseId *coarse_b = out.coarse.table.find(200);
    ASSERT_NE(fine_a1, nullptr);
    ASSERT_NE(fine_a2, nullptr);
    ASSERT_NE(fine_b, nullptr);
    ASSERT_NE(coarse_b, nullptr);

    EXPECT_EQ(out.parentOf[*fine_a1], out.parentOf[*fine_a2]);
    EXPECT_EQ(out.parentOf[*fine_b], *coarse_b);
    EXPECT_NE(out.parentOf[*fine_a1], SubPhaseSelection::noParent);
}

TEST(SubPhases, FineExecutionsNestInsideCoarse)
{
    auto tb = nestedProgram();
    MarkerSelector sel(coarseCfg());
    auto out = sel.selectSubPhases(tb.events, tb.instrClock, 16, 4.0);
    // Every fine execution's span lies inside some coarse execution or
    // before the first coarse marker.
    for (const auto &fe : out.fine.executions) {
        bool inside = fe.startInstr <
                      out.coarse.executions.front().startInstr;
        for (const auto &ce : out.coarse.executions) {
            if (fe.startInstr >= ce.startInstr &&
                fe.startInstr < ce.endInstr)
                inside = true;
        }
        EXPECT_TRUE(inside) << "fine exec at " << fe.startInstr;
    }
}

TEST(SubPhasesDeathTest, RefinementMustExceedOne)
{
    MarkerSelector sel(coarseCfg());
    EXPECT_DEATH(sel.selectSubPhases({}, 0, 1, 1.0), "refinement");
}

TEST(IntersectSelections, KeepsCommonMarkersOnly)
{
    MarkerSelection a, b;
    a.table.set(100, 0);
    a.table.set(200, 1);
    a.table.set(300, 2);
    a.phases.resize(3);
    for (uint32_t i = 0; i < 3; ++i) {
        a.phases[i].id = i;
        a.phases[i].marker = 100 * (i + 1);
        a.phases[i].executions = 5;
    }
    b.table.set(100, 0);
    b.table.set(300, 1); // 200 missing in run 2

    auto merged = intersectSelections({a, b});
    EXPECT_EQ(merged.table.size(), 2u);
    ASSERT_NE(merged.table.find(100), nullptr);
    EXPECT_EQ(merged.table.find(200), nullptr);
    ASSERT_NE(merged.table.find(300), nullptr);
    // Dense renumbering in first-run order.
    EXPECT_EQ(*merged.table.find(100), 0u);
    EXPECT_EQ(*merged.table.find(300), 1u);
    ASSERT_EQ(merged.phases.size(), 2u);
    EXPECT_EQ(merged.phases[1].marker, 300u);
    EXPECT_EQ(merged.phases[1].id, 1u);
}

TEST(IntersectSelections, SingleRunIsIdentityModuloRenumbering)
{
    MarkerSelection a;
    a.table.set(7, 0);
    a.phases.resize(1);
    a.phases[0].marker = 7;
    auto merged = intersectSelections({a});
    EXPECT_EQ(merged.table.size(), 1u);
}

TEST(IntersectSelections, EmptyInput)
{
    auto merged = intersectSelections({});
    EXPECT_TRUE(merged.table.empty());
}

} // namespace
