#include <gtest/gtest.h>

#include <vector>

#include "phase/marker_selection.hpp"

namespace {

using namespace lpp::phase;
using lpp::trace::BlockEvent;
using lpp::trace::BlockId;

/** Builds a block trace with running clocks. */
class TraceBuilder
{
  public:
    /** One block execution of `instrs` instructions, `accs` accesses. */
    void
    block(BlockId b, uint32_t instrs, uint32_t accs = 0)
    {
        events.push_back(BlockEvent{b, instrs, accessClock, instrClock});
        instrClock += instrs;
        accessClock += accs;
    }

    /** `n` executions of a body block. */
    void
    body(BlockId b, uint32_t n, uint32_t instrs = 10, uint32_t accs = 4)
    {
        for (uint32_t i = 0; i < n; ++i)
            block(b, instrs, accs);
    }

    std::vector<BlockEvent> events;
    uint64_t instrClock = 0;
    uint64_t accessClock = 0;
};

MarkerConfig
cfg(uint64_t min_instr = 5000)
{
    MarkerConfig c;
    c.minPhaseInstructions = min_instr;
    return c;
}

/** A-B alternating program: entry blocks 100/200, bodies 1/2. */
TraceBuilder
alternatingProgram(int reps, uint32_t body_a = 1000,
                   uint32_t body_b = 800)
{
    TraceBuilder tb;
    for (int r = 0; r < reps; ++r) {
        tb.block(100, 10);
        tb.body(1, body_a);
        tb.block(200, 10);
        tb.body(2, body_b);
    }
    return tb;
}

TEST(MarkerSelection, EmptyTrace)
{
    MarkerSelector sel(cfg());
    auto out = sel.select({}, 0, 4);
    EXPECT_TRUE(out.table.empty());
    EXPECT_TRUE(out.phases.empty());
    EXPECT_TRUE(out.executions.empty());
}

TEST(MarkerSelection, FindsAlternatingPhases)
{
    auto tb = alternatingProgram(3);
    MarkerSelector sel(cfg());
    auto out = sel.select(tb.events, tb.instrClock, 6);

    EXPECT_EQ(out.candidateBlocks, 2u);
    EXPECT_EQ(out.regions, 6u);
    ASSERT_EQ(out.phases.size(), 2u);
    ASSERT_EQ(out.table.size(), 2u);
    ASSERT_NE(out.table.find(100), nullptr);
    ASSERT_NE(out.table.find(200), nullptr);
    EXPECT_NE(*out.table.find(100), *out.table.find(200));

    auto seq = out.sequence();
    ASSERT_EQ(seq.size(), 6u);
    for (size_t i = 0; i < seq.size(); ++i)
        EXPECT_EQ(seq[i], seq[i % 2]) << "alternation broken at " << i;
    EXPECT_NE(seq[0], seq[1]);
}

TEST(MarkerSelection, ExecutionLengthsMeasured)
{
    auto tb = alternatingProgram(3);
    MarkerSelector sel(cfg());
    auto out = sel.select(tb.events, tb.instrClock, 6);

    // Phase A spans its entry block + 1000 body blocks + nothing else
    // until marker B fires: 10 + 1000*10 = 10010 instructions.
    const PhaseInfo &a = out.phases[*out.table.find(100)];
    EXPECT_EQ(a.executions, 3u);
    EXPECT_EQ(a.minInstructions, 10010u);
    EXPECT_EQ(a.maxInstructions, 10010u);
    EXPECT_DOUBLE_EQ(a.meanInstructions, 10010.0);
    EXPECT_DOUBLE_EQ(a.markerQuality, 1.0);

    const PhaseInfo &b = out.phases[*out.table.find(200)];
    EXPECT_EQ(b.executions, 3u);
    EXPECT_EQ(b.minInstructions, 8010u);
}

TEST(MarkerSelection, FrequentBlocksNeverMark)
{
    auto tb = alternatingProgram(3);
    MarkerSelector sel(cfg());
    auto out = sel.select(tb.events, tb.instrClock, 6);
    EXPECT_EQ(out.table.find(1), nullptr);
    EXPECT_EQ(out.table.find(2), nullptr);
}

TEST(MarkerSelection, ShortRegionsIgnored)
{
    // Body of 100 instructions < threshold: no region, no phase.
    TraceBuilder tb;
    for (int r = 0; r < 4; ++r) {
        tb.block(100, 10);
        tb.body(1, 10); // 100 instructions only
    }
    MarkerSelector sel(cfg(5000));
    auto out = sel.select(tb.events, tb.instrClock, 4);
    EXPECT_EQ(out.regions, 0u);
    EXPECT_TRUE(out.table.empty());
}

TEST(MarkerSelection, SoundCapAdmitsRecurringPhaseHeads)
{
    // Block 300 runs 50 times — more than the 6 executions locality
    // detection reported — but each run precedes a 6000-instruction
    // region, and 50 is below the sound bound
    // total/minPhaseInstructions, so it still becomes a marker (the
    // detection count is a noisy underestimate on short runs).
    TraceBuilder tb;
    for (int r = 0; r < 50; ++r) {
        tb.block(300, 10);
        tb.body(1, 600);
    }
    MarkerSelector sel(cfg());
    auto out = sel.select(tb.events, tb.instrClock, 6);
    ASSERT_NE(out.table.find(300), nullptr);
    EXPECT_EQ(out.phases[*out.table.find(300)].executions, 50u);
    // The tight-loop body (30000 executions) stays excluded.
    EXPECT_EQ(out.table.find(1), nullptr);
}

TEST(MarkerSelection, TrailingRegionCounts)
{
    // A single phase at the end of the program, bounded by program exit.
    TraceBuilder tb;
    tb.block(100, 10);
    tb.body(1, 1000);
    MarkerSelector sel(cfg());
    auto out = sel.select(tb.events, tb.instrClock, 1);
    EXPECT_EQ(out.regions, 1u);
    ASSERT_EQ(out.executions.size(), 1u);
    EXPECT_EQ(out.executions[0].endInstr, tb.instrClock);
}

TEST(MarkerSelection, PrologueBeforeFirstMarkerUncovered)
{
    // 20K instructions of prologue before the first candidate block:
    // they belong to no phase execution.
    TraceBuilder tb;
    tb.body(1, 2000); // prologue body appears once per... 2000 times
    auto prologue_end = tb.instrClock;
    for (int r = 0; r < 3; ++r) {
        tb.block(100, 10);
        tb.body(2, 1000);
    }
    MarkerSelector sel(cfg());
    auto out = sel.select(tb.events, tb.instrClock, 3);
    ASSERT_FALSE(out.executions.empty());
    EXPECT_GE(out.executions.front().startInstr, prologue_end);
}

TEST(MarkerSelection, MarkerQualityBelowOneForSpuriousFirings)
{
    // Block 100 runs 4 times but only 3 precede long regions (the 4th
    // is followed immediately by block 200's phase).
    TraceBuilder tb;
    for (int r = 0; r < 3; ++r) {
        tb.block(100, 10);
        tb.body(1, 1000);
    }
    tb.block(100, 10); // spurious: no region follows before 200
    tb.block(200, 10);
    tb.body(2, 1000);
    MarkerSelector sel(cfg());
    auto out = sel.select(tb.events, tb.instrClock, 4);
    ASSERT_NE(out.table.find(100), nullptr);
    const PhaseInfo &a = out.phases[*out.table.find(100)];
    EXPECT_NEAR(a.markerQuality, 0.75, 1e-9);
    // The spurious firing still shows up as a (short) execution.
    EXPECT_EQ(a.executions, 4u);
}

TEST(MarkerSelection, AccessClockTracked)
{
    auto tb = alternatingProgram(2);
    MarkerSelector sel(cfg());
    auto out = sel.select(tb.events, tb.instrClock, 4);
    ASSERT_GE(out.executions.size(), 2u);
    // Phase A bodies perform 1000 * 4 accesses.
    EXPECT_EQ(out.executions[0].endAccess -
                  out.executions[0].startAccess,
              4000u);
}

TEST(MarkerSelection, UnderestimatedDetectionStillFindsMarkers)
{
    // Locality detection reports a single execution; the sound
    // instruction-budget bound keeps the real markers admissible.
    auto tb = alternatingProgram(3);
    MarkerSelector sel(cfg());
    auto out = sel.select(tb.events, tb.instrClock, 1);
    EXPECT_NE(out.table.find(100), nullptr);
    EXPECT_NE(out.table.find(200), nullptr);
    EXPECT_EQ(out.executions.size(), 6u);
}

TEST(MarkerSelection, BlocksAboveEveryBoundAreFiltered)
{
    // A block more frequent than both the detected count and the
    // instruction budget can mark nothing.
    auto tb = alternatingProgram(3);
    uint64_t budget = tb.instrClock / cfg().minPhaseInstructions;
    MarkerSelector sel(cfg());
    auto out = sel.select(tb.events, tb.instrClock, 2);
    for (const auto &info : out.phases) {
        EXPECT_LE(info.executions,
                  std::max<uint64_t>(budget, 2 * 2));
    }
    EXPECT_EQ(out.table.find(1), nullptr);
    EXPECT_EQ(out.table.find(2), nullptr);
}

} // namespace
