#include <gtest/gtest.h>

#include <vector>

#include "phase/detector.hpp"
#include "trace/recorder.hpp"

namespace {

using namespace lpp::phase;
using lpp::trace::Addr;
using lpp::trace::TraceSink;
using lpp::trace::elementBytes;

/**
 * Three-regime program (the Compress/Vortex shape): sweep array X for a
 * while, then X and Y interleaved, then Y only. Array elements change
 * their reuse behaviour exactly at the regime switches, which is what
 * the wavelet filter keys on.
 */
void
threeRegimeProgram(TraceSink &sink, uint64_t n = 1500, int passes = 24)
{
    auto sweep_x = [&](uint64_t i) {
        sink.onBlock(11, 8);
        sink.onAccess(i * elementBytes);
    };
    auto sweep_y = [&](uint64_t i) {
        sink.onBlock(12, 8);
        sink.onAccess((n + i) * elementBytes);
    };

    sink.onBlock(100, 12); // regime 1 entry
    for (int p = 0; p < passes; ++p)
        for (uint64_t i = 0; i < n; ++i)
            sweep_x(i);

    sink.onBlock(200, 12); // regime 2 entry
    for (int p = 0; p < passes; ++p) {
        for (uint64_t i = 0; i < n; ++i) {
            sweep_x(i);
            sweep_y(i);
        }
    }

    sink.onBlock(300, 12); // regime 3 entry
    for (int p = 0; p < passes; ++p)
        for (uint64_t i = 0; i < n; ++i)
            sweep_y(i);

    sink.onEnd();
}

DetectorConfig
testConfig()
{
    DetectorConfig cfg;
    cfg.sampler.targetSamples = 4000;
    cfg.sampler.initialQualification = 512;
    cfg.sampler.initialTemporal = 512;
    cfg.sampler.initialSpatial = 8;
    cfg.filter.family = lpp::wavelet::Family::Haar;
    cfg.marker.minPhaseInstructions = 10000;
    return cfg;
}

TEST(PhaseDetector, ThreeRegimesDetected)
{
    PhaseDetector det(testConfig());
    auto result = det.analyze(
        [](TraceSink &s) { threeRegimeProgram(s); });

    // The trace totals are recorded.
    EXPECT_GT(result.trainAccesses, 100000u);
    EXPECT_GT(result.trainInstructions, result.trainAccesses);
    EXPECT_GT(result.dataSamples, 10u);
    EXPECT_GT(result.accessSamples, 100u);

    // Locality analysis must find a small number of phases (the two
    // regime switches, possibly with minor noise).
    EXPECT_GE(result.partitionResult.phaseCount(), 2u);
    EXPECT_LE(result.partitionResult.phaseCount(), 8u);

    // Markers: the three regime entry blocks, each a distinct phase.
    ASSERT_EQ(result.selection.table.size(), 3u);
    EXPECT_NE(result.selection.table.find(100), nullptr);
    EXPECT_NE(result.selection.table.find(200), nullptr);
    EXPECT_NE(result.selection.table.find(300), nullptr);
    EXPECT_EQ(result.selection.executions.size(), 3u);
}

TEST(PhaseDetector, BoundaryTimesFallNearRegimeSwitches)
{
    uint64_t n = 1500;
    int passes = 24;
    PhaseDetector det(testConfig());
    auto result = det.analyze([&](TraceSink &s) {
        threeRegimeProgram(s, n, passes);
    });

    uint64_t switch1 = n * static_cast<uint64_t>(passes);
    uint64_t switch2 = switch1 + 2 * n * static_cast<uint64_t>(passes);
    uint64_t tolerance = 2 * n; // within one sweep pass

    bool near1 = false, near2 = false;
    for (uint64_t t : result.boundaryTimes) {
        if (t + tolerance >= switch1 && t <= switch1 + tolerance)
            near1 = true;
        if (t + tolerance >= switch2 && t <= switch2 + tolerance)
            near2 = true;
    }
    EXPECT_TRUE(near1) << "no boundary near first regime switch";
    EXPECT_TRUE(near2) << "no boundary near second regime switch";
}

TEST(PhaseDetector, MarkedExecutionLengthsMatchRegimes)
{
    uint64_t n = 1500;
    int passes = 24;
    PhaseDetector det(testConfig());
    auto result = det.analyze([&](TraceSink &s) {
        threeRegimeProgram(s, n, passes);
    });

    ASSERT_EQ(result.selection.executions.size(), 3u);
    uint64_t np = n * static_cast<uint64_t>(passes);
    // Regime instruction totals: entry 12 + 8 per access.
    EXPECT_NEAR(static_cast<double>(
                    result.selection.executions[0].endInstr -
                    result.selection.executions[0].startInstr),
                static_cast<double>(12 + 8 * np), 16.0);
    EXPECT_NEAR(static_cast<double>(
                    result.selection.executions[1].endInstr -
                    result.selection.executions[1].startInstr),
                static_cast<double>(12 + 8 * 2 * np), 16.0);
}

TEST(PhaseDetector, InstrumenterReplaysDetectedMarkers)
{
    PhaseDetector det(testConfig());
    auto result = det.analyze(
        [](TraceSink &s) { threeRegimeProgram(s); });

    lpp::trace::MarkerFiringRecorder rec;
    lpp::trace::Instrumenter inst(result.selection.table, rec);
    threeRegimeProgram(inst);

    ASSERT_EQ(rec.firings().size(), 3u);
    // Firing phases reproduce the detected training sequence.
    auto seq = result.selection.sequence();
    for (size_t i = 0; i < seq.size(); ++i)
        EXPECT_EQ(rec.firings()[i].phase, seq[i]);
}

TEST(PhaseDetector, UniformProgramYieldsNoMarkers)
{
    // One endless homogeneous sweep: no abrupt reuse changes, so no
    // boundary indicators survive filtering and no phase markers exist
    // (the paper's "some programs do not have predictable phases").
    DetectorConfig cfg = testConfig();
    PhaseDetector det(cfg);
    auto result = det.analyze([](TraceSink &s) {
        for (int p = 0; p < 40; ++p) {
            for (uint64_t i = 0; i < 2000; ++i) {
                s.onBlock(11, 8);
                s.onAccess(i * elementBytes);
            }
        }
        s.onEnd();
    });
    EXPECT_LE(result.partitionResult.phaseCount(), 2u);
    EXPECT_TRUE(result.selection.table.empty());
}

} // namespace
