#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "phase/partition.hpp"
#include "support/random.hpp"

namespace {

using namespace lpp::phase;
using lpp::reuse::SamplePoint;

std::vector<SamplePoint>
pointsFromIds(const std::vector<uint32_t> &ids, uint64_t dt = 100)
{
    std::vector<SamplePoint> pts;
    uint64_t t = 0;
    for (uint32_t id : ids) {
        pts.push_back(SamplePoint{t, 1000, id});
        t += dt;
    }
    return pts;
}

TEST(Partition, EmptyTrace)
{
    OptimalPartitioner part;
    auto p = part.partition({});
    EXPECT_TRUE(p.boundaries.empty());
    EXPECT_EQ(p.phaseCount(), 1u);
}

TEST(Partition, SinglePointIsOnePhase)
{
    OptimalPartitioner part;
    auto p = part.partition(pointsFromIds({0}));
    EXPECT_TRUE(p.boundaries.empty());
    EXPECT_DOUBLE_EQ(p.cost, 1.0);
}

TEST(Partition, DistinctIdsStayOnePhase)
{
    // No recurrences anywhere: a single phase costs 1, any split more.
    OptimalPartitioner part;
    auto p = part.partition(pointsFromIds({0, 1, 2, 3, 4}));
    EXPECT_TRUE(p.boundaries.empty());
    EXPECT_DOUBLE_EQ(p.cost, 1.0);
}

TEST(Partition, BoundaryClustersSplitCleanly)
{
    // Three boundary clusters (0 1 2 3)(0 1 2 3)(0 1 2 3): splitting is
    // strictly cheaper than merging once alpha*(m-1) > 1, so the optimal
    // partition cuts exactly at the cluster starts.
    OptimalPartitioner part;
    auto p = part.partition(
        pointsFromIds({0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3}));
    EXPECT_EQ(p.phaseCount(), 3u);
    ASSERT_EQ(p.boundaries.size(), 2u);
    // Path nodes are excluded from phase intervals, so optima can sit up
    // to two nodes before the exact cluster start; all are cost 3.
    EXPECT_GE(p.boundaries[0], 2u);
    EXPECT_LE(p.boundaries[0], 4u);
    EXPECT_GE(p.boundaries[1], 6u);
    EXPECT_LE(p.boundaries[1], 8u);
    EXPECT_DOUBLE_EQ(p.cost, 3.0);
}

TEST(Partition, AlphaZeroMergesEverything)
{
    PartitionConfig cfg;
    cfg.alpha = 0.0;
    OptimalPartitioner part(cfg);
    auto p = part.partition(
        pointsFromIds({0, 1, 2, 0, 1, 2, 0, 1, 2}));
    EXPECT_TRUE(p.boundaries.empty());
    EXPECT_DOUBLE_EQ(p.cost, 1.0);
}

TEST(Partition, AlphaOneForbidsReuseInPhase)
{
    PartitionConfig cfg;
    cfg.alpha = 1.0;
    OptimalPartitioner part(cfg);
    // 0 0 0: the optimal path uses the middle access as a boundary,
    // leaving one 0 in each phase interval and no reuse anywhere:
    // cost 2, strictly below the single-phase cost 1 + 1*2 = 3.
    auto p = part.partition(pointsFromIds({0, 0, 0}));
    EXPECT_DOUBLE_EQ(p.cost, 2.0);
    EXPECT_EQ(p.phaseCount(), 2u);
}

TEST(Partition, PaperExampleWeights)
{
    // "aceefgefbd": between c and b there are 3 recurrences (e twice,
    // f once), so the edge weight is 3*alpha + 1. Verify via the cost of
    // the forced two-phase partition of "ac|eefgefbd"... simpler: the
    // one-phase cost of "ceefgefb" is alpha*3 + 1.
    PartitionConfig cfg;
    cfg.alpha = 0.5;
    OptimalPartitioner part(cfg);
    // c e e f g e f b as ids: c=0 e=1 f=2 g=3 b=4
    auto whole = pointsFromIds({0, 1, 1, 2, 3, 1, 2, 4});
    // Force "one phase" by alpha=0 comparison is trivial; instead check
    // the optimal cost never exceeds the single-phase weight 1+0.5*3.
    auto p = part.partition(whole);
    EXPECT_LE(p.cost, 2.5);
    EXPECT_GT(p.cost, 0.0);
}

TEST(Partition, NoisyClusterStillSplits)
{
    // Clusters with one stray repeated datum inside a phase; alpha=0.5
    // tolerates the noise but still prefers the 3-way split.
    OptimalPartitioner part;
    auto p = part.partition(pointsFromIds(
        {0, 1, 2, 3, 1, 0, 1, 2, 3, 0, 1, 2, 3}));
    EXPECT_EQ(p.phaseCount(), 3u);
}

TEST(Partition, BoundaryTimesMapThroughSamplePoints)
{
    OptimalPartitioner part;
    auto pts = pointsFromIds({0, 1, 2, 3, 0, 1, 2, 3}, 50);
    auto times = part.boundaryTimes(pts);
    ASSERT_EQ(times.size(), 1u);
    // Boundary at node 3 or 4 (tied optima): time 150 or 200.
    EXPECT_GE(times[0], 150u);
    EXPECT_LE(times[0], 200u);
}

TEST(Partition, SubsamplingKeepsBoundaryStructure)
{
    // 4 clusters of 300 points each; maxNodes forces subsampling, yet
    // the partition must still find ~4 phases at roughly the right
    // positions.
    std::vector<uint32_t> ids;
    for (int c = 0; c < 4; ++c)
        for (uint32_t i = 0; i < 300; ++i)
            ids.push_back(i);
    PartitionConfig cfg;
    cfg.maxNodes = 200;
    OptimalPartitioner part(cfg);
    auto pts = pointsFromIds(ids);
    auto p = part.partition(pts);
    EXPECT_EQ(p.nodes, 200u);
    EXPECT_EQ(p.phaseCount(), 4u);
    for (size_t b : p.boundaries) {
        // All-distinct clusters admit several zero-recurrence optima
        // shifted by a few strides; boundaries must still land within
        // 10% of a true cluster start (multiples of 300).
        size_t mod = b % 300;
        EXPECT_TRUE(mod <= 30 || mod >= 270) << "boundary at " << b;
    }
}

class AlphaSweep : public ::testing::TestWithParam<double>
{};

TEST_P(AlphaSweep, MidRangeAlphasAgree)
{
    // The paper found partitions stable across alpha in [0.2, 0.8];
    // with 10-datum boundary clusters every alpha above 1/9 splits.
    std::vector<uint32_t> ids;
    for (int c = 0; c < 4; ++c)
        for (uint32_t i = 0; i < 10; ++i)
            ids.push_back(i);
    OptimalPartitioner part(PartitionConfig{GetParam(), 6000});
    auto p = part.partition(pointsFromIds(ids));
    EXPECT_EQ(p.phaseCount(), 4u);
}

INSTANTIATE_TEST_SUITE_P(PaperRange, AlphaSweep,
                         ::testing::Values(0.2, 0.35, 0.5, 0.65, 0.8));


/**
 * Exhaustive reference: enumerate every subset of nodes as the path and
 * take the cheapest, with the same interval semantics as the DP (path
 * nodes excluded from segments).
 */
double
bruteForceCost(const std::vector<uint32_t> &ids, double alpha)
{
    size_t n = ids.size();
    double best = 1e18;
    for (uint32_t mask = 0; mask < (1u << n); ++mask) {
        // Path: source, nodes in mask (ascending), sink.
        std::vector<size_t> cuts;
        for (size_t i = 0; i < n; ++i)
            if (mask & (1u << i))
                cuts.push_back(i);
        double cost = 0.0;
        size_t prev = 0; // first uncovered position
        std::vector<size_t> stops(cuts);
        stops.push_back(n);    // sink
        for (size_t stop : stops) {
            // Segment = positions [prev, stop), minus nothing (prev
            // starts after the previous path node).
            std::map<uint32_t, int> count;
            double r = 0.0;
            for (size_t k = prev; k < stop; ++k)
                if (++count[ids[k]] > 1)
                    r += 1.0;
            cost += alpha * r + 1.0;
            prev = stop + 1; // skip the path node itself
        }
        best = std::min(best, cost);
    }
    return best;
}

struct BruteParam
{
    uint64_t seed;
    double alpha;
};

class BruteForceSweep : public ::testing::TestWithParam<BruteParam>
{};

TEST_P(BruteForceSweep, DpMatchesExhaustiveOptimum)
{
    auto [seed, alpha] = GetParam();
    lpp::Rng rng(seed);
    std::vector<uint32_t> ids;
    size_t n = 8 + rng.below(5); // 8..12 nodes
    for (size_t i = 0; i < n; ++i)
        ids.push_back(static_cast<uint32_t>(rng.below(3)));

    OptimalPartitioner part(PartitionConfig{alpha, 6000});
    auto p = part.partition(pointsFromIds(ids));
    EXPECT_NEAR(p.cost, bruteForceCost(ids, alpha), 1e-9)
        << "seed " << seed << " alpha " << alpha;
}

INSTANTIATE_TEST_SUITE_P(
    RandomTraces, BruteForceSweep,
    ::testing::Values(BruteParam{1, 0.5}, BruteParam{2, 0.5},
                      BruteParam{3, 0.3}, BruteParam{4, 0.3},
                      BruteParam{5, 1.0}, BruteParam{6, 1.0},
                      BruteParam{7, 0.7}, BruteParam{8, 0.2}));

} // namespace
