#include <gtest/gtest.h>

#include "remap/affinity.hpp"
#include "workloads/address_space.hpp"

namespace {

using namespace lpp::remap;
using lpp::workloads::AddressSpace;
using lpp::workloads::ArrayInfo;

struct Fixture
{
    Fixture()
    {
        for (const char *n : {"A", "B", "C", "D"})
            arrays.push_back(as.allocate(n, 4096));
    }

    AddressSpace as;
    std::vector<ArrayInfo> arrays;
};

AffinityConfig
cfg(uint64_t min_accesses = 100)
{
    AffinityConfig c;
    c.minAccesses = min_accesses;
    return c;
}

TEST(Affinity, CoAccessedPairGroups)
{
    Fixture f;
    AffinityAnalyzer an(f.arrays, cfg());
    for (uint64_t i = 0; i < 2000; ++i) {
        an.onAccess(f.arrays[0].at(i));
        an.onAccess(f.arrays[1].at(i));
    }
    auto groups = an.globalGroups();
    ASSERT_EQ(groups.size(), 1u);
    EXPECT_EQ(groups[0].size(), 2u);
}

TEST(Affinity, SequentialPhasesDoNotGroup)
{
    Fixture f;
    AffinityAnalyzer an(f.arrays, cfg());
    for (uint64_t i = 0; i < 2000; ++i)
        an.onAccess(f.arrays[0].at(i));
    for (uint64_t i = 0; i < 2000; ++i)
        an.onAccess(f.arrays[1].at(i));
    EXPECT_TRUE(an.globalGroups().empty());
}

TEST(Affinity, RareInterleavingBelowThresholdIgnored)
{
    Fixture f;
    AffinityAnalyzer an(f.arrays, cfg());
    for (uint64_t i = 0; i < 2000; ++i) {
        an.onAccess(f.arrays[0].at(i % 4096));
        if (i % 40 == 0)
            an.onAccess(f.arrays[1].at(i % 4096)); // B sees A always;
                                                   // A sees B rarely
    }
    // co(A,B)/count(A) is low: not affine.
    EXPECT_TRUE(an.globalGroups().empty());
}

TEST(Affinity, PerPhaseGroupsDiffer)
{
    Fixture f;
    AffinityAnalyzer an(f.arrays, cfg());
    an.onPhaseMarker(0); // phase 0: A with B
    for (uint64_t i = 0; i < 2000; ++i) {
        an.onAccess(f.arrays[0].at(i));
        an.onAccess(f.arrays[1].at(i));
    }
    an.onPhaseMarker(1); // phase 1: A with C
    for (uint64_t i = 0; i < 2000; ++i) {
        an.onAccess(f.arrays[0].at(i));
        an.onAccess(f.arrays[2].at(i));
    }

    auto g0 = an.groupsForPhase(0);
    auto g1 = an.groupsForPhase(1);
    ASSERT_EQ(g0.size(), 1u);
    ASSERT_EQ(g1.size(), 1u);
    EXPECT_EQ(g0[0], (std::vector<uint32_t>{0, 1}));
    EXPECT_EQ(g1[0], (std::vector<uint32_t>{0, 2}));

    auto phases = an.phasesSeen();
    EXPECT_EQ(phases.size(), 2u);
}

TEST(Affinity, TriplesGroupTogether)
{
    Fixture f;
    AffinityAnalyzer an(f.arrays, cfg());
    for (uint64_t i = 0; i < 3000; ++i) {
        an.onAccess(f.arrays[0].at(i));
        an.onAccess(f.arrays[1].at(i));
        an.onAccess(f.arrays[2].at(i));
    }
    auto groups = an.globalGroups();
    ASSERT_EQ(groups.size(), 1u);
    EXPECT_EQ(groups[0].size(), 3u);
}

TEST(Affinity, TwoIndependentPairs)
{
    Fixture f;
    AffinityAnalyzer an(f.arrays, cfg());
    for (uint64_t i = 0; i < 1500; ++i) {
        an.onAccess(f.arrays[0].at(i));
        an.onAccess(f.arrays[1].at(i));
    }
    // Flush the window so the pairs do not bridge.
    for (uint64_t i = 0; i < 64; ++i)
        an.onAccess(f.arrays[3].at(i));
    for (uint64_t i = 0; i < 1500; ++i) {
        an.onAccess(f.arrays[2].at(i));
        an.onAccess(f.arrays[3].at(i));
    }
    auto groups = an.globalGroups();
    EXPECT_EQ(groups.size(), 2u);
}

TEST(Affinity, MinAccessesFiltersColdArrays)
{
    Fixture f;
    AffinityAnalyzer an(f.arrays, cfg(10000));
    for (uint64_t i = 0; i < 2000; ++i) {
        an.onAccess(f.arrays[0].at(i));
        an.onAccess(f.arrays[1].at(i));
    }
    EXPECT_TRUE(an.globalGroups().empty());
}

TEST(Affinity, UnknownAddressesIgnored)
{
    Fixture f;
    AffinityAnalyzer an(f.arrays, cfg());
    an.onAccess(1); // below every array
    SUCCEED();
}

} // namespace
