#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "remap/affinity.hpp"
#include "workloads/address_space.hpp"

namespace {

using namespace lpp::remap;
using lpp::workloads::AddressSpace;
using lpp::workloads::ArrayInfo;

struct Fixture
{
    Fixture()
    {
        for (const char *n : {"A", "B", "C", "D"})
            arrays.push_back(as.allocate(n, 4096));
    }

    AddressSpace as;
    std::vector<ArrayInfo> arrays;
};

AffinityConfig
cfg(uint64_t min_accesses = 100)
{
    AffinityConfig c;
    c.minAccesses = min_accesses;
    return c;
}

TEST(Affinity, CoAccessedPairGroups)
{
    Fixture f;
    AffinityAnalyzer an(f.arrays, cfg());
    for (uint64_t i = 0; i < 2000; ++i) {
        an.onAccess(f.arrays[0].at(i));
        an.onAccess(f.arrays[1].at(i));
    }
    auto groups = an.globalGroups();
    ASSERT_EQ(groups.size(), 1u);
    EXPECT_EQ(groups[0].size(), 2u);
}

TEST(Affinity, SequentialPhasesDoNotGroup)
{
    Fixture f;
    AffinityAnalyzer an(f.arrays, cfg());
    for (uint64_t i = 0; i < 2000; ++i)
        an.onAccess(f.arrays[0].at(i));
    for (uint64_t i = 0; i < 2000; ++i)
        an.onAccess(f.arrays[1].at(i));
    EXPECT_TRUE(an.globalGroups().empty());
}

TEST(Affinity, RareInterleavingBelowThresholdIgnored)
{
    Fixture f;
    AffinityAnalyzer an(f.arrays, cfg());
    for (uint64_t i = 0; i < 2000; ++i) {
        an.onAccess(f.arrays[0].at(i % 4096));
        if (i % 40 == 0)
            an.onAccess(f.arrays[1].at(i % 4096)); // B sees A always;
                                                   // A sees B rarely
    }
    // co(A,B)/count(A) is low: not affine.
    EXPECT_TRUE(an.globalGroups().empty());
}

TEST(Affinity, PerPhaseGroupsDiffer)
{
    Fixture f;
    AffinityAnalyzer an(f.arrays, cfg());
    an.onPhaseMarker(0); // phase 0: A with B
    for (uint64_t i = 0; i < 2000; ++i) {
        an.onAccess(f.arrays[0].at(i));
        an.onAccess(f.arrays[1].at(i));
    }
    an.onPhaseMarker(1); // phase 1: A with C
    for (uint64_t i = 0; i < 2000; ++i) {
        an.onAccess(f.arrays[0].at(i));
        an.onAccess(f.arrays[2].at(i));
    }

    auto g0 = an.groupsForPhase(0);
    auto g1 = an.groupsForPhase(1);
    ASSERT_EQ(g0.size(), 1u);
    ASSERT_EQ(g1.size(), 1u);
    EXPECT_EQ(g0[0], (std::vector<uint32_t>{0, 1}));
    EXPECT_EQ(g1[0], (std::vector<uint32_t>{0, 2}));

    auto phases = an.phasesSeen();
    EXPECT_EQ(phases.size(), 2u);
}

TEST(Affinity, TriplesGroupTogether)
{
    Fixture f;
    AffinityAnalyzer an(f.arrays, cfg());
    for (uint64_t i = 0; i < 3000; ++i) {
        an.onAccess(f.arrays[0].at(i));
        an.onAccess(f.arrays[1].at(i));
        an.onAccess(f.arrays[2].at(i));
    }
    auto groups = an.globalGroups();
    ASSERT_EQ(groups.size(), 1u);
    EXPECT_EQ(groups[0].size(), 3u);
}

TEST(Affinity, TwoIndependentPairs)
{
    Fixture f;
    AffinityAnalyzer an(f.arrays, cfg());
    for (uint64_t i = 0; i < 1500; ++i) {
        an.onAccess(f.arrays[0].at(i));
        an.onAccess(f.arrays[1].at(i));
    }
    // Flush the window so the pairs do not bridge.
    for (uint64_t i = 0; i < 64; ++i)
        an.onAccess(f.arrays[3].at(i));
    for (uint64_t i = 0; i < 1500; ++i) {
        an.onAccess(f.arrays[2].at(i));
        an.onAccess(f.arrays[3].at(i));
    }
    auto groups = an.globalGroups();
    EXPECT_EQ(groups.size(), 2u);
}

TEST(Affinity, MinAccessesFiltersColdArrays)
{
    Fixture f;
    AffinityAnalyzer an(f.arrays, cfg(10000));
    for (uint64_t i = 0; i < 2000; ++i) {
        an.onAccess(f.arrays[0].at(i));
        an.onAccess(f.arrays[1].at(i));
    }
    EXPECT_TRUE(an.globalGroups().empty());
}

TEST(Affinity, UnknownAddressesIgnored)
{
    Fixture f;
    AffinityAnalyzer an(f.arrays, cfg());
    an.onAccess(1); // below every array
    SUCCEED();
}

} // namespace

TEST(Affinity, BatchedDeliveryMatchesScalar)
{
    Fixture f;
    std::vector<lpp::trace::Addr> prologue, phase3;
    for (uint64_t i = 0; i < 1500; ++i) {
        prologue.push_back(f.arrays[0].at(i % 512));
        prologue.push_back(f.arrays[1].at(i % 512));
        prologue.push_back(0x4); // outside every array
    }
    for (uint64_t i = 0; i < 1500; ++i) {
        phase3.push_back(f.arrays[2].at(i % 512));
        phase3.push_back(f.arrays[3].at(i % 512));
    }

    AffinityAnalyzer one(f.arrays, cfg()), batched(f.arrays, cfg());
    for (auto a : prologue)
        one.onAccess(a);
    one.onPhaseMarker(3);
    for (auto a : phase3)
        one.onAccess(a);

    static const size_t sizes[] = {1, 7, 64, 3, 1000, 2, 4096, 13};
    auto deliver = [&](const std::vector<lpp::trace::Addr> &addrs) {
        size_t i = 0, s = 0;
        while (i < addrs.size()) {
            size_t take = std::min(sizes[s++ % 8], addrs.size() - i);
            batched.onAccessBatch(addrs.data() + i, take);
            i += take;
        }
    };
    deliver(prologue);
    batched.onPhaseMarker(3);
    deliver(phase3);

    EXPECT_EQ(one.phasesSeen(), batched.phasesSeen());
    EXPECT_EQ(one.globalGroups(), batched.globalGroups());
    EXPECT_EQ(one.groupsForPhase(3), batched.groupsForPhase(3));
    EXPECT_EQ(one.groupsForPhase(0xFFFFFFFFu),
              batched.groupsForPhase(0xFFFFFFFFu));
}
