#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cache/lru_cache.hpp"
#include "remap/regroup.hpp"
#include "trace/recorder.hpp"
#include "workloads/address_space.hpp"
#include "workloads/registry.hpp"

namespace {

using namespace lpp::remap;
using lpp::cache::CacheConfig;
using lpp::cache::LruCache;
using lpp::trace::AccessRecorder;
using lpp::workloads::AddressSpace;
using lpp::workloads::ArrayInfo;

struct Fixture
{
    Fixture()
    {
        for (const char *n : {"A", "B", "C"})
            arrays.push_back(as.allocate(n, 4096));
    }

    AddressSpace as;
    std::vector<ArrayInfo> arrays;
};

TEST(Remapper, IdentityWithoutGroups)
{
    Fixture f;
    AccessRecorder rec;
    Remapper remap(f.arrays, rec);
    remap.onAccess(f.arrays[0].at(7));
    remap.onAccess(0x4); // outside every array
    ASSERT_EQ(rec.accesses().size(), 2u);
    EXPECT_EQ(rec.accesses()[0], f.arrays[0].at(7));
    EXPECT_EQ(rec.accesses()[1], 0x4u);
    EXPECT_EQ(remap.remappedCount(), 0u);
}

TEST(Remapper, InterleavesGroupedArrays)
{
    Fixture f;
    AccessRecorder rec;
    Remapper remap(f.arrays, rec);
    remap.setGlobalGroups({{0, 1}});

    remap.onAccess(f.arrays[0].at(10)); // A[10] -> slot 0
    remap.onAccess(f.arrays[1].at(10)); // B[10] -> slot 1
    remap.onAccess(f.arrays[0].at(11));

    ASSERT_EQ(rec.accesses().size(), 3u);
    // A[10] and B[10] are adjacent elements in the shadow region.
    EXPECT_EQ(rec.accesses()[1] - rec.accesses()[0], 8u);
    // A[11] is one group stride (2 arrays * 8B) after A[10].
    EXPECT_EQ(rec.accesses()[2] - rec.accesses()[0], 16u);
    EXPECT_EQ(remap.remappedCount(), 3u);
}

TEST(Remapper, UngroupedArrayPassesThrough)
{
    Fixture f;
    AccessRecorder rec;
    Remapper remap(f.arrays, rec);
    remap.setGlobalGroups({{0, 1}});
    remap.onAccess(f.arrays[2].at(5));
    EXPECT_EQ(rec.accesses()[0], f.arrays[2].at(5));
}

TEST(Remapper, PhaseMarkersSwitchMappings)
{
    Fixture f;
    AccessRecorder rec;
    Remapper remap(f.arrays, rec);
    remap.setPhaseGroups(0, {{0, 1}});
    remap.setPhaseGroups(1, {{0, 2}});

    remap.onPhaseMarker(0);
    remap.onAccess(f.arrays[0].at(0));
    remap.onPhaseMarker(1);
    remap.onAccess(f.arrays[0].at(0));
    remap.onPhaseMarker(7); // unknown phase: global mapping (identity)
    remap.onAccess(f.arrays[0].at(0));

    ASSERT_EQ(rec.accesses().size(), 3u);
    EXPECT_NE(rec.accesses()[0], rec.accesses()[1])
        << "different phase mappings use different shadow regions";
    EXPECT_EQ(rec.accesses()[2], f.arrays[0].at(0));
}

TEST(Remapper, InterleavingHalvesMissesForCoAccessedStridedArrays)
{
    // Strided co-access of two arrays: separate layouts fetch two
    // blocks per element pair, the interleaved layout one — the
    // Impulse effect the paper exploits.
    Fixture f;
    auto run = [&](bool remapped) {
        LruCache cache(CacheConfig{512, 8, 64});
        Remapper remap(f.arrays, cache);
        if (remapped)
            remap.setGlobalGroups({{0, 1}});
        for (int pass = 0; pass < 2; ++pass) {
            for (uint64_t i = 0; i < 4096; i += 8) {
                remap.onAccess(f.arrays[0].at(i));
                remap.onAccess(f.arrays[1].at(i));
            }
        }
        return cache.misses();
    };
    uint64_t separate = run(false);
    uint64_t interleaved = run(true);
    EXPECT_LT(interleaved, separate * 3 / 4);
}

TEST(TimingModel, Seconds)
{
    TimingModel m{1.0, 50.0, 2.0};
    EXPECT_DOUBLE_EQ(m.seconds(2000000000, 0), 1.0);
    EXPECT_DOUBLE_EQ(m.seconds(0, 40000000), 1.0);
}

TEST(RemapExperimentResult, SpeedupMath)
{
    RemapExperiment ex;
    ex.originalTime = 2.0;
    ex.phaseTime = 1.6;
    ex.globalTime = 1.9;
    EXPECT_NEAR(ex.phaseSpeedup(), 0.25, 1e-12);
    EXPECT_NEAR(ex.globalSpeedup(), 0.0526, 1e-3);
}

} // namespace

/** Downstream sink that keeps addresses and counts batch calls. */
class BatchLog : public lpp::trace::TraceSink
{
  public:
    void onAccess(lpp::trace::Addr a) override { addrs.push_back(a); }

    void
    onAccessBatch(const lpp::trace::Addr *batch, size_t n) override
    {
        ++batchCalls;
        addrs.insert(addrs.end(), batch, batch + n);
    }

    std::vector<lpp::trace::Addr> addrs;
    uint64_t batchCalls = 0;
};

TEST(Remapper, BatchedDeliveryMatchesScalar)
{
    Fixture f;
    std::vector<lpp::trace::Addr> trace;
    for (uint64_t i = 0; i < 3000; ++i) {
        trace.push_back(f.arrays[0].at(i % 512));
        trace.push_back(f.arrays[1].at(i % 512));
        trace.push_back(0x4); // outside every array
    }

    AccessRecorder rec;
    Remapper one(f.arrays, rec);
    one.setGlobalGroups({{0, 1}});
    for (auto a : trace)
        one.onAccess(a);

    BatchLog log;
    Remapper batched(f.arrays, log);
    batched.setGlobalGroups({{0, 1}});
    static const size_t sizes[] = {1, 7, 64, 3, 1000, 2, 4096, 13};
    size_t i = 0, s = 0, batches = 0;
    while (i < trace.size()) {
        size_t take = std::min(sizes[s++ % 8], trace.size() - i);
        batched.onAccessBatch(trace.data() + i, take);
        i += take;
        ++batches;
    }

    EXPECT_EQ(rec.accesses(), log.addrs);
    EXPECT_EQ(one.remappedCount(), batched.remappedCount());
    // Each input batch reaches downstream as exactly one batch.
    EXPECT_EQ(log.batchCalls, batches);
}
