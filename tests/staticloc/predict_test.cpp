/**
 * @file
 * Static locality analyzer unit tests: the affine IR's arithmetic and
 * validation, engine applicability, and — the load-bearing property —
 * bit-identical histograms and schedules across all three prediction
 * engines on the statically described workloads.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "staticloc/ir.hpp"
#include "staticloc/predict.hpp"
#include "staticloc/walk.hpp"
#include "workloads/registry.hpp"
#include "workloads/static_workload.hpp"

namespace {

using namespace lpp;
using staticloc::AffineExpr;
using staticloc::LoopProgram;
using staticloc::Method;
using staticloc::Nest;
using staticloc::PhaseNest;
using staticloc::StaticArray;
using staticloc::StaticPrediction;

/** The bound affine IR of a statically described registry workload. */
LoopProgram
programOf(const std::string &name)
{
    auto w = workloads::create(name);
    EXPECT_NE(w, nullptr);
    auto *sd =
        dynamic_cast<const workloads::StaticallyDescribed *>(w.get());
    EXPECT_NE(sd, nullptr);
    return sd->loopProgram(w->trainInput());
}

bool
sameHistogram(const LogHistogram &a, const LogHistogram &b)
{
    if (a.infiniteCount() != b.infiniteCount() ||
        a.totalFinite() != b.totalFinite())
        return false;
    size_t bins = std::max(a.binCount(), b.binCount());
    for (size_t i = 0; i < bins; ++i)
        if (a.binValue(i) != b.binValue(i))
            return false;
    return true;
}

bool
sameSchedule(const StaticPrediction &a, const StaticPrediction &b)
{
    if (a.schedule.size() != b.schedule.size())
        return false;
    for (size_t i = 0; i < a.schedule.size(); ++i) {
        const auto &x = a.schedule[i];
        const auto &y = b.schedule[i];
        if (x.marker != y.marker || x.phaseIndex != y.phaseIndex ||
            x.startAccess != y.startAccess ||
            x.accesses != y.accesses || x.wssBefore != y.wssBefore)
            return false;
    }
    return true;
}

TEST(AffineExpr, EvaluatesAndBounds)
{
    // 5 + 3*i - 2*j over i in [0,4), j in [0,3).
    AffineExpr e = AffineExpr::linear({3, -2}, 5);
    EXPECT_EQ(e.at({0, 0}), 5);
    EXPECT_EQ(e.at({3, 2}), 5 + 9 - 4);
    EXPECT_EQ(e.minOver({4, 3}), 5 - 4); // i = 0, j = 2
    EXPECT_EQ(e.maxOver({4, 3}), 5 + 9); // i = 3, j = 0
    EXPECT_EQ(AffineExpr::constant(7).at({1, 2, 3}), 7);
    // Missing coefficients evaluate as zero.
    EXPECT_EQ(AffineExpr::linear({2}).at({3, 99}), 6);
}

TEST(LoopProgramDeathTest, ValidateRejectsOutOfBoundsRef)
{
    LoopProgram p;
    p.name = "bad";
    p.arrays.push_back(StaticArray{"A", 8, 0});
    PhaseNest ph;
    ph.name = "sweep";
    ph.nest.extents = {16}; // walks past the 8-element array
    ph.nest.refs.push_back({0, AffineExpr::linear({1})});
    p.prologue.push_back(ph);
    EXPECT_DEATH(p.validate(), "");
}

TEST(LoopProgramDeathTest, ValidateRejectsOverlappingArrays)
{
    LoopProgram p;
    p.name = "bad";
    p.arrays.push_back(StaticArray{"A", 8, 0});
    p.arrays.push_back(StaticArray{"B", 8, 4}); // overlaps A
    PhaseNest ph;
    ph.name = "sweep";
    ph.nest.extents = {8};
    ph.nest.refs.push_back({0, AffineExpr::linear({1})});
    p.prologue.push_back(ph);
    EXPECT_DEATH(p.validate(), "");
}

TEST(WalkNest, EnumeratesLexicographically)
{
    Nest n;
    n.extents = {2, 3};
    n.refs.push_back({0, AffineExpr::linear({3, 1})});
    std::vector<uint64_t> indices;
    staticloc::walkNest(
        n, [] {},
        [&](const staticloc::ArrayRef &, uint64_t idx) {
            indices.push_back(idx);
        });
    EXPECT_EQ(indices, (std::vector<uint64_t>{0, 1, 2, 3, 4, 5}));
}

TEST(SymbolicApplicable, AcceptsLockstepSweepsOnly)
{
    // loopnest: every nest is a unit-stride lockstep sweep.
    EXPECT_TRUE(staticloc::symbolicApplicable(programOf("loopnest")));
    // stencil3: A[i], A[i+1], A[i+2] overlap within the phase.
    EXPECT_FALSE(staticloc::symbolicApplicable(programOf("stencil3")));
    // matmul-tiled: coefficients are tile strides, not nest weights.
    EXPECT_FALSE(
        staticloc::symbolicApplicable(programOf("matmul-tiled")));
}

TEST(Predict, AutoSelectsStrongestEngine)
{
    EXPECT_EQ(staticloc::predict(programOf("loopnest")).method,
              Method::Symbolic);
    EXPECT_EQ(staticloc::predict(programOf("stencil3")).method,
              Method::Periodic);
    EXPECT_EQ(staticloc::predict(programOf("matmul-tiled")).method,
              Method::Counting);
}

TEST(Predict, SymbolicMatchesCountingBitForBit)
{
    LoopProgram p = programOf("loopnest");
    StaticPrediction sym = staticloc::predict(p, Method::Symbolic);
    StaticPrediction cnt = staticloc::predict(p, Method::Counting);
    EXPECT_TRUE(sameHistogram(sym.histogram, cnt.histogram));
    EXPECT_TRUE(sameSchedule(sym, cnt));
    EXPECT_EQ(sym.totalAccesses, cnt.totalAccesses);
    EXPECT_EQ(sym.distinctElements, cnt.distinctElements);
    EXPECT_TRUE(sym.exact);
}

TEST(Predict, PeriodicMatchesCountingBitForBit)
{
    for (const char *name : {"stencil3", "loopnest"}) {
        LoopProgram p = programOf(name);
        StaticPrediction per = staticloc::predict(p, Method::Periodic);
        StaticPrediction cnt = staticloc::predict(p, Method::Counting);
        EXPECT_TRUE(sameHistogram(per.histogram, cnt.histogram))
            << name;
        EXPECT_TRUE(sameSchedule(per, cnt)) << name;
        EXPECT_EQ(per.distinctElements, cnt.distinctElements) << name;
    }
}

TEST(Predict, ScheduleAndCurvesAreConsistent)
{
    LoopProgram p = programOf("stencil3");
    StaticPrediction pred = staticloc::predict(p);
    ASSERT_EQ(pred.schedule.size(), p.phaseExecutions());

    // The schedule tiles the access clock without gaps.
    uint64_t clock = 0;
    for (const auto &e : pred.schedule) {
        EXPECT_EQ(e.startAccess, clock);
        clock += e.accesses;
    }
    EXPECT_EQ(clock, pred.totalAccesses);
    EXPECT_EQ(clock, p.totalAccesses());

    // Boundary clocks are the entry clocks past the first execution.
    auto boundaries = pred.boundaryClocks();
    ASSERT_EQ(boundaries.size(), pred.schedule.size() - 1);
    for (size_t i = 0; i < boundaries.size(); ++i)
        EXPECT_EQ(boundaries[i], pred.schedule[i + 1].startAccess);

    // The WSS curve is monotone and ends at the whole-run footprint.
    auto wss = pred.wssCurve();
    ASSERT_EQ(wss.size(), pred.schedule.size() + 1);
    for (size_t i = 1; i < wss.size(); ++i) {
        EXPECT_GE(wss[i].first, wss[i - 1].first);
        EXPECT_GE(wss[i].second, wss[i - 1].second);
    }
    EXPECT_EQ(wss.back().second, pred.distinctElements);
}

TEST(PredictDeathTest, ExplicitSymbolicPanicsWhenNotApplicable)
{
    LoopProgram p = programOf("stencil3");
    EXPECT_DEATH(staticloc::predict(p, Method::Symbolic), "");
}

TEST(Predict, MethodNamesAreStable)
{
    EXPECT_STREQ(staticloc::methodName(Method::Auto), "auto");
    EXPECT_STREQ(staticloc::methodName(Method::Symbolic), "symbolic");
    EXPECT_STREQ(staticloc::methodName(Method::Periodic), "periodic");
    EXPECT_STREQ(staticloc::methodName(Method::Counting), "counting");
}

} // namespace
