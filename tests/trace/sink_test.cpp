#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "trace/sink.hpp"

namespace {

using namespace lpp::trace;

/** Records a readable log of every event for ordering assertions. */
class EventLog : public TraceSink
{
  public:
    void
    onBlock(BlockId b, uint32_t n) override
    {
        log.push_back("B" + std::to_string(b) + ":" + std::to_string(n));
    }

    void
    onAccess(Addr a) override
    {
        log.push_back("A" + std::to_string(a));
    }

    void
    onManualMarker(uint32_t m) override
    {
        log.push_back("M" + std::to_string(m));
    }

    void
    onPhaseMarker(PhaseId p) override
    {
        log.push_back("P" + std::to_string(p));
    }

    void onEnd() override { log.push_back("E"); }

    std::vector<std::string> log;
};

TEST(ClockSink, CountsBothClocks)
{
    ClockSink clock;
    clock.onBlock(1, 10);
    clock.onAccess(0x100);
    clock.onAccess(0x108);
    clock.onBlock(2, 5);
    EXPECT_EQ(clock.accesses(), 2u);
    EXPECT_EQ(clock.instructions(), 15u);
}

TEST(ClockSink, StartsAtZero)
{
    ClockSink clock;
    EXPECT_EQ(clock.accesses(), 0u);
    EXPECT_EQ(clock.instructions(), 0u);
}

TEST(FanoutSink, ForwardsAllEventsToAllSinks)
{
    EventLog a, b;
    FanoutSink fan;
    fan.attach(&a);
    fan.attach(&b);

    fan.onBlock(3, 7);
    fan.onAccess(0x40);
    fan.onManualMarker(1);
    fan.onPhaseMarker(2);
    fan.onEnd();

    std::vector<std::string> want = {"B3:7", "A64", "M1", "P2", "E"};
    EXPECT_EQ(a.log, want);
    EXPECT_EQ(b.log, want);
}

TEST(FanoutSink, EmptyFanoutIsSafe)
{
    FanoutSink fan;
    fan.onBlock(1, 1);
    fan.onAccess(8);
    fan.onEnd();
    SUCCEED();
}

TEST(TraceSink, DefaultImplementationsIgnoreEvents)
{
    TraceSink sink;
    sink.onBlock(1, 2);
    sink.onAccess(3);
    sink.onManualMarker(4);
    sink.onPhaseMarker(5);
    sink.onEnd();
    SUCCEED();
}

TEST(Types, ElementAndCacheBlockGranularity)
{
    EXPECT_EQ(toElement(0), 0u);
    EXPECT_EQ(toElement(7), 0u);
    EXPECT_EQ(toElement(8), 1u);
    EXPECT_EQ(toCacheBlock(63), 0u);
    EXPECT_EQ(toCacheBlock(64), 1u);
}

} // namespace
