#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "trace/textio.hpp"
#include "workloads/registry.hpp"

namespace {

using namespace lpp::trace;

class TextIoTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir = std::filesystem::temp_directory_path() /
              ("lpp_textio_" + std::to_string(::getpid()));
        std::filesystem::create_directories(dir);
    }

    void TearDown() override { std::filesystem::remove_all(dir); }

    std::string
    path(const std::string &name) const
    {
        return (dir / name).string();
    }

    void
    write(const std::string &name, const std::string &content)
    {
        std::ofstream f(path(name));
        f << content;
    }

    std::filesystem::path dir;
};

/** Records events as readable strings. */
class EventLog : public TraceSink
{
  public:
    void
    onBlock(BlockId b, uint32_t n) override
    {
        log.push_back("B" + std::to_string(b) + ":" + std::to_string(n));
    }

    void
    onAccess(Addr a) override
    {
        log.push_back("A" + std::to_string(a));
    }

    void
    onManualMarker(uint32_t m) override
    {
        log.push_back("M" + std::to_string(m));
    }

    void
    onPhaseMarker(PhaseId p) override
    {
        log.push_back("P" + std::to_string(p));
    }

    void onEnd() override { log.push_back("E"); }

    std::vector<std::string> log;
};

TEST_F(TextIoTest, RoundTripPreservesEveryEvent)
{
    std::string file = path("rt.trace");
    {
        TraceWriter w(file);
        ASSERT_TRUE(w.ok());
        w.onBlock(7, 12);
        w.onAccess(0xdeadbeef);
        w.onManualMarker(3);
        w.onPhaseMarker(1);
        w.onBlock(8, 4);
        w.onEnd();
        EXPECT_EQ(w.eventCount(), 6u);
    }

    EventLog log;
    auto r = replayTraceFile(file, log);
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.events, 6u);
    std::vector<std::string> want = {
        "B7:12", "A3735928559", "M3", "P1", "B8:4", "E"};
    EXPECT_EQ(log.log, want);
}

TEST_F(TextIoTest, WorkloadRoundTripPreservesClocks)
{
    auto w = lpp::workloads::create("compress");
    auto in = w->trainInput();
    std::string file = path("compress.trace");
    {
        TraceWriter writer(file);
        w->run(in, writer);
        ASSERT_TRUE(writer.ok());
    }

    ClockSink direct, replayed;
    w->run(in, direct);
    auto r = replayTraceFile(file, replayed);
    ASSERT_TRUE(r.ok) << r.error << " at line " << r.line;
    EXPECT_EQ(replayed.accesses(), direct.accesses());
    EXPECT_EQ(replayed.instructions(), direct.instructions());
}

TEST_F(TextIoTest, CommentsAndBlankLinesIgnored)
{
    write("c.trace", "# lpp-trace 1\n# comment\n\nB 1 2\nE\n");
    EventLog log;
    auto r = replayTraceFile(path("c.trace"), log);
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.events, 2u);
}

TEST_F(TextIoTest, DecimalAndHexAddresses)
{
    write("a.trace", "# lpp-trace 1\nA 0x40\nA 64\nE\n");
    EventLog log;
    auto r = replayTraceFile(path("a.trace"), log);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(log.log[0], log.log[1]);
}

TEST_F(TextIoTest, MissingHeaderFails)
{
    write("h.trace", "B 1 2\nE\n");
    EventLog log;
    auto r = replayTraceFile(path("h.trace"), log);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.line, 1u);
    EXPECT_TRUE(log.log.empty());
}

TEST_F(TextIoTest, MalformedLineStopsWithPosition)
{
    write("m.trace", "# lpp-trace 1\nB 1 2\nA zzz\nE\n");
    EventLog log;
    auto r = replayTraceFile(path("m.trace"), log);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.line, 3u);
    EXPECT_EQ(r.events, 1u) << "events before the error are delivered";
}

TEST_F(TextIoTest, UnknownRecordFails)
{
    write("u.trace", "# lpp-trace 1\nX 1\n");
    EventLog log;
    auto r = replayTraceFile(path("u.trace"), log);
    EXPECT_FALSE(r.ok);
}

TEST_F(TextIoTest, TrailingGarbageOnLineFails)
{
    write("t.trace", "# lpp-trace 1\nB 1 2 3\n");
    EventLog log;
    auto r = replayTraceFile(path("t.trace"), log);
    EXPECT_FALSE(r.ok);
}

TEST_F(TextIoTest, NonexistentFileFails)
{
    EventLog log;
    auto r = replayTraceFile(path("missing.trace"), log);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.error, "cannot open file");
}

} // namespace

TEST_F(TextIoTest, BatchedWritesMatchScalar)
{
    std::vector<Addr> addrs;
    for (uint64_t i = 0; i < 9000; ++i)
        addrs.push_back(0x1000 + i * 24);

    {
        TraceWriter one(path("one.trace"));
        one.onBlock(3, 40);
        for (Addr a : addrs)
            one.onAccess(a);
        one.onPhaseMarker(2);
        one.onEnd();
        ASSERT_TRUE(one.ok());

        TraceWriter batched(path("batched.trace"));
        batched.onBlock(3, 40);
        static const size_t sizes[] = {1, 7, 64, 3, 1000, 2, 4096, 13};
        size_t i = 0, s = 0;
        while (i < addrs.size()) {
            size_t take = std::min(sizes[s++ % 8], addrs.size() - i);
            batched.onAccessBatch(addrs.data() + i, take);
            i += take;
        }
        batched.onPhaseMarker(2);
        batched.onEnd();
        ASSERT_TRUE(batched.ok());
        EXPECT_EQ(one.eventCount(), batched.eventCount());
    }

    auto slurp = [this](const std::string &name) {
        std::ifstream f(path(name));
        return std::string(std::istreambuf_iterator<char>(f),
                           std::istreambuf_iterator<char>());
    };
    EXPECT_EQ(slurp("one.trace"), slurp("batched.trace"));
}
