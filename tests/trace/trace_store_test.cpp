/**
 * @file
 * Trace-store tests: atomic publication, header-verified lookup,
 * hash-verified replay, and miss semantics on every kind of mismatch
 * (params hash, key, corruption, truncation).
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <vector>

#include "trace/codec.hpp"
#include "trace/memory_trace.hpp"
#include "trace/trace_store.hpp"

namespace fs = std::filesystem;

namespace {

using lpp::trace::Addr;
using lpp::trace::MemoryTrace;
using lpp::trace::StoredTraceStats;
using lpp::trace::TraceStore;

class TraceStoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir = fs::temp_directory_path() /
              ("lpp_store_test_" + std::to_string(::getpid()) + "_" +
               ::testing::UnitTest::GetInstance()
                   ->current_test_info()
                   ->name());
        fs::remove_all(dir);
    }

    void TearDown() override { fs::remove_all(dir); }

    MemoryTrace
    sampleTrace() const
    {
        MemoryTrace t;
        t.onBlock(1, 10);
        std::vector<Addr> batch{0x1000, 0x1008, 0x1010, 0x0FF8};
        t.onAccessBatch(batch.data(), batch.size());
        t.onAccess(0x2000);
        t.onManualMarker(3);
        t.onEnd();
        return t;
    }

    fs::path dir;
};

TEST_F(TraceStoreTest, StoreThenLoadRoundTrips)
{
    TraceStore store(dir.string());
    auto t = sampleTrace();
    StoredTraceStats stats{true, 6};
    auto bytes = store.store("fft@s1:x1", 0xABCDull, t, stats);
    ASSERT_GT(bytes, 0u);

    auto info = store.lookup("fft@s1:x1", 0xABCDull);
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->events, t.eventCount());
    EXPECT_EQ(info->accesses, t.accessCount());
    EXPECT_TRUE(info->stats.valid);
    EXPECT_EQ(info->stats.distinctElements, 6u);
    EXPECT_EQ(info->fileBytes, bytes);
    EXPECT_GT(info->payloadBytes, 0u);
    EXPECT_TRUE(fs::exists(info->path));

    MemoryTrace loaded;
    ASSERT_TRUE(store.load("fft@s1:x1", 0xABCDull, loaded));
    EXPECT_EQ(loaded.eventCount(), t.eventCount());
    EXPECT_EQ(loaded.accessCount(), t.accessCount());

    // Replayed streams are bit-identical: re-encode both and compare.
    EXPECT_EQ(lpp::trace::encodeTrace(loaded),
              lpp::trace::encodeTrace(t));
}

TEST_F(TraceStoreTest, MissOnAbsentEntryKeyOrParamsMismatch)
{
    TraceStore store(dir.string());
    auto t = sampleTrace();
    EXPECT_FALSE(store.lookup("fft@s1:x1", 1).has_value());

    store.store("fft@s1:x1", 1, t, {});
    EXPECT_TRUE(store.lookup("fft@s1:x1", 1).has_value());
    // Different generator parameters: invalidated.
    EXPECT_FALSE(store.lookup("fft@s1:x1", 2).has_value());
    // Different key: separate entry.
    EXPECT_FALSE(store.lookup("fft@s2:x1", 1).has_value());

    MemoryTrace out;
    EXPECT_FALSE(store.load("fft@s1:x1", 2, out));
    EXPECT_TRUE(out.empty());
}

TEST_F(TraceStoreTest, DistinctKeysAndParamsCoexist)
{
    TraceStore store(dir.string());
    auto t = sampleTrace();
    MemoryTrace t2;
    t2.onAccess(0xAAAA);
    t2.onEnd();

    store.store("w@s1:x1", 1, t, {});
    store.store("w@s1:x1", 2, t2, {});
    store.store("w@s2:x1", 1, t2, {});

    MemoryTrace a, b;
    ASSERT_TRUE(store.load("w@s1:x1", 1, a));
    ASSERT_TRUE(store.load("w@s1:x1", 2, b));
    EXPECT_EQ(a.eventCount(), t.eventCount());
    EXPECT_EQ(b.eventCount(), t2.eventCount());
}

TEST_F(TraceStoreTest, CorruptPayloadReadsAsMiss)
{
    TraceStore store(dir.string());
    auto t = sampleTrace();
    store.store("w@s1:x1", 7, t, {});
    auto info = store.lookup("w@s1:x1", 7);
    ASSERT_TRUE(info.has_value());

    // Flip one payload byte in place (header intact): lookup still
    // succeeds (header-only) but load fails on the payload hash.
    {
        std::fstream f(info->path,
                       std::ios::in | std::ios::out | std::ios::binary);
        ASSERT_TRUE(f.good());
        f.seekp(static_cast<std::streamoff>(info->fileBytes - 1));
        char c = 0;
        f.seekg(static_cast<std::streamoff>(info->fileBytes - 1));
        f.read(&c, 1);
        c = static_cast<char>(c ^ 0x40);
        f.seekp(static_cast<std::streamoff>(info->fileBytes - 1));
        f.write(&c, 1);
    }
    EXPECT_TRUE(store.lookup("w@s1:x1", 7).has_value());
    MemoryTrace out;
    EXPECT_FALSE(store.load("w@s1:x1", 7, out));
    EXPECT_TRUE(out.empty());
}

TEST_F(TraceStoreTest, CorruptFrameDirectoryReadsAsMiss)
{
    TraceStore store(dir.string());
    store.store("w@s1:x1", 7, sampleTrace(), {});
    auto info = store.lookup("w@s1:x1", 7);
    ASSERT_TRUE(info.has_value());

    // Flip a byte in the frame directory (the region just before the
    // payloads): the header still parses, but the directory hash
    // mismatch turns load and replay into clean misses.
    {
        std::fstream f(info->path,
                       std::ios::in | std::ios::out | std::ios::binary);
        ASSERT_TRUE(f.good());
        auto at = static_cast<std::streamoff>(info->fileBytes -
                                              info->payloadBytes - 1);
        char c = 0;
        f.seekg(at);
        f.read(&c, 1);
        c = static_cast<char>(c ^ 0x04);
        f.seekp(at);
        f.write(&c, 1);
    }
    EXPECT_TRUE(store.lookup("w@s1:x1", 7).has_value());
    MemoryTrace out;
    EXPECT_FALSE(store.load("w@s1:x1", 7, out));
    EXPECT_TRUE(out.empty());
    MemoryTrace sink;
    EXPECT_FALSE(store.replay("w@s1:x1", 7, sink));
}

TEST_F(TraceStoreTest, TruncatedEntryReadsAsMiss)
{
    TraceStore store(dir.string());
    store.store("w@s1:x1", 7, sampleTrace(), {});
    auto info = store.lookup("w@s1:x1", 7);
    ASSERT_TRUE(info.has_value());
    fs::resize_file(info->path, info->fileBytes - 3);
    EXPECT_FALSE(store.lookup("w@s1:x1", 7).has_value());
    MemoryTrace out;
    EXPECT_FALSE(store.load("w@s1:x1", 7, out));
}

TEST_F(TraceStoreTest, PublicationLeavesNoTemporaries)
{
    TraceStore store(dir.string());
    for (int i = 0; i < 4; ++i)
        store.store("w@s1:x1", static_cast<uint64_t>(i), sampleTrace(),
                    {});
    size_t files = 0;
    for (const auto &e : fs::directory_iterator(dir)) {
        EXPECT_EQ(e.path().extension(), ".lpt") << e.path();
        ++files;
    }
    EXPECT_EQ(files, 4u);
}

TEST_F(TraceStoreTest, OverwriteReplacesEntryAtomically)
{
    TraceStore store(dir.string());
    auto t = sampleTrace();
    store.store("w@s1:x1", 1, t, {});
    MemoryTrace t2;
    t2.onAccess(1);
    t2.onAccess(2);
    t2.onEnd();
    store.store("w@s1:x1", 1, t2, StoredTraceStats{true, 2});

    auto info = store.lookup("w@s1:x1", 1);
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->events, t2.eventCount());
    EXPECT_TRUE(info->stats.valid);
    MemoryTrace out;
    ASSERT_TRUE(store.load("w@s1:x1", 1, out));
    EXPECT_EQ(lpp::trace::encodeTrace(out), lpp::trace::encodeTrace(t2));
}

TEST_F(TraceStoreTest, ReplayDeliversDirectlyIntoSink)
{
    TraceStore store(dir.string());
    auto t = sampleTrace();
    store.store("w@s1:x1", 1, t, {});

    MemoryTrace sink;
    ASSERT_TRUE(store.replay("w@s1:x1", 1, sink));
    EXPECT_EQ(lpp::trace::encodeTrace(sink), lpp::trace::encodeTrace(t));
    MemoryTrace sink2;
    EXPECT_FALSE(store.replay("w@s1:x1", 99, sink2));
}

} // namespace
