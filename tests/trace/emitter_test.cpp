/**
 * @file
 * Emitter lifetime tests: a trace that stops mid-batch must still
 * deliver every buffered access (the destructor flushes), and the
 * emitter's validator registration must come and go with its lifetime.
 */

#include <gtest/gtest.h>

#include <vector>

#include "trace/recorder.hpp"
#include "trace/validator.hpp"
#include "workloads/address_space.hpp"
#include "workloads/emitter.hpp"

namespace {

using lpp::trace::AccessRecorder;
using lpp::trace::ValidatingSink;
using lpp::workloads::AddressSpace;
using lpp::workloads::Emitter;

TEST(Emitter, DestructorFlushesTailAccesses)
{
    AddressSpace as;
    auto arr = as.allocate("a", 1024);
    AccessRecorder rec;
    {
        Emitter e(rec);
        // Fewer than batchCapacity accesses and no end(): the trace
        // stops mid-batch.
        for (uint64_t i = 0; i < 100; ++i)
            e.touch(arr, i);
        EXPECT_EQ(rec.accesses().size(), 0u) << "delivered too early";
    }
    ASSERT_EQ(rec.accesses().size(), 100u);
    for (uint64_t i = 0; i < 100; ++i)
        EXPECT_EQ(rec.accesses()[i], arr.at(i));
}

TEST(Emitter, DestructorFlushCrossesBatchBoundary)
{
    AddressSpace as;
    auto arr = as.allocate("a", 2 * Emitter::batchCapacity);
    AccessRecorder rec;
    {
        Emitter e(rec);
        // One full batch plus a partial tail.
        for (uint64_t i = 0; i < Emitter::batchCapacity + 7; ++i)
            e.touch(arr, i);
    }
    EXPECT_EQ(rec.accesses().size(), Emitter::batchCapacity + 7);
}

TEST(Emitter, EndedTraceLeavesNothingToFlush)
{
    AddressSpace as;
    auto arr = as.allocate("a", 64);
    AccessRecorder rec;
    {
        Emitter e(rec);
        for (uint64_t i = 0; i < 10; ++i)
            e.touch(arr, i);
        e.end();
        EXPECT_EQ(e.pendingAccesses(), 0u);
    }
    // The destructor added nothing after onEnd.
    EXPECT_EQ(rec.accesses().size(), 10u);
}

TEST(Emitter, RegistersWithValidatorForItsLifetime)
{
    AddressSpace as;
    auto arr = as.allocate("a", 64);
    ValidatingSink v;
    {
        Emitter e(v);
        e.touch(arr, 0);
        EXPECT_EQ(e.pendingAccesses(), 1u);
        // Destructor flushes the tail and unregisters.
    }
    // A direct event now sees no watched producer with pending data.
    v.onBlock(1, 5);
    v.onEnd();
    EXPECT_TRUE(v.ok()) << v.reportText();
}

} // namespace
