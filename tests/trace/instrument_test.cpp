#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "trace/instrument.hpp"

namespace {

using namespace lpp::trace;

class OrderLog : public TraceSink
{
  public:
    void
    onBlock(BlockId b, uint32_t) override
    {
        log.push_back("B" + std::to_string(b));
    }

    void
    onPhaseMarker(PhaseId p) override
    {
        log.push_back("P" + std::to_string(p));
    }

    void
    onAccess(Addr a) override
    {
        log.push_back("A" + std::to_string(a));
    }

    void onEnd() override { log.push_back("E"); }

    std::vector<std::string> log;
};

TEST(MarkerTable, FindAndSize)
{
    MarkerTable t;
    EXPECT_TRUE(t.empty());
    t.set(5, 1);
    t.set(9, 2);
    EXPECT_EQ(t.size(), 2u);
    ASSERT_NE(t.find(5), nullptr);
    EXPECT_EQ(*t.find(5), 1u);
    EXPECT_EQ(t.find(6), nullptr);
}

TEST(MarkerTable, LastSetWins)
{
    MarkerTable t;
    t.set(5, 1);
    t.set(5, 3);
    EXPECT_EQ(t.size(), 1u);
    EXPECT_EQ(*t.find(5), 3u);
}

TEST(MarkerTable, EntriesRoundTrip)
{
    MarkerTable t;
    t.set(1, 10);
    t.set(2, 20);
    auto e = t.entries();
    EXPECT_EQ(e.size(), 2u);
}

TEST(Instrumenter, InjectsMarkerBeforeMarkedBlock)
{
    MarkerTable t;
    t.set(7, 42);
    OrderLog log;
    Instrumenter inst(t, log);

    inst.onBlock(3, 1);
    inst.onAccess(8);
    inst.onBlock(7, 1);
    inst.onBlock(7, 1);
    inst.onEnd();

    std::vector<std::string> want = {"B3", "A8", "P42", "B7", "P42", "B7",
                                     "E"};
    EXPECT_EQ(log.log, want);
    EXPECT_EQ(inst.firings(), 2u);
}

TEST(Instrumenter, UnmarkedBlocksPassThrough)
{
    MarkerTable t;
    OrderLog log;
    Instrumenter inst(t, log);
    inst.onBlock(1, 1);
    EXPECT_EQ(log.log, std::vector<std::string>{"B1"});
    EXPECT_EQ(inst.firings(), 0u);
}

TEST(MarkerFiringRecorder, RecordsBothClockPositions)
{
    MarkerFiringRecorder rec;
    rec.onBlock(1, 10);
    rec.onAccess(8);
    rec.onPhaseMarker(3);
    rec.onBlock(2, 5);
    rec.onAccess(8);
    rec.onAccess(8);
    rec.onPhaseMarker(4);
    rec.onEnd();

    ASSERT_EQ(rec.firings().size(), 2u);
    EXPECT_EQ(rec.firings()[0].phase, 3u);
    EXPECT_EQ(rec.firings()[0].accessTime, 1u);
    EXPECT_EQ(rec.firings()[0].instrTime, 10u);
    EXPECT_EQ(rec.firings()[1].phase, 4u);
    EXPECT_EQ(rec.firings()[1].accessTime, 3u);
    EXPECT_EQ(rec.firings()[1].instrTime, 15u);
    EXPECT_EQ(rec.totalInstructions(), 15u);
    EXPECT_EQ(rec.totalAccesses(), 3u);
    EXPECT_TRUE(rec.finished());
}

TEST(Instrumenter, EndToEndWithFiringRecorder)
{
    MarkerTable t;
    t.set(100, 0);
    MarkerFiringRecorder rec;
    Instrumenter inst(t, rec);

    for (int step = 0; step < 3; ++step) {
        inst.onBlock(100, 2); // phase start
        for (int i = 0; i < 4; ++i) {
            inst.onBlock(101, 8);
            inst.onAccess(static_cast<Addr>(i * 8));
        }
    }
    inst.onEnd();

    ASSERT_EQ(rec.firings().size(), 3u);
    // Marker fires before its block's instructions are counted.
    EXPECT_EQ(rec.firings()[0].instrTime, 0u);
    EXPECT_EQ(rec.firings()[1].instrTime, 34u);
    EXPECT_EQ(rec.firings()[2].instrTime, 68u);
}

} // namespace
