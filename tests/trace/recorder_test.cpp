#include <gtest/gtest.h>

#include "trace/recorder.hpp"

namespace {

using namespace lpp::trace;

TEST(AccessRecorder, RecordsSequence)
{
    AccessRecorder rec;
    rec.onAccess(8);
    rec.onAccess(16);
    rec.onAccess(8);
    ASSERT_EQ(rec.accesses().size(), 3u);
    EXPECT_EQ(rec.accesses()[0], 8u);
    EXPECT_EQ(rec.accesses()[2], 8u);
}

TEST(AccessRecorder, TakeMovesTraceOut)
{
    AccessRecorder rec;
    rec.onAccess(1);
    auto trace = rec.take();
    EXPECT_EQ(trace.size(), 1u);
    EXPECT_TRUE(rec.accesses().empty());
}

TEST(BlockRecorder, RecordsClockPositions)
{
    BlockRecorder rec;
    rec.onBlock(10, 4);  // at access 0, instr 0
    rec.onAccess(0x100);
    rec.onAccess(0x108);
    rec.onBlock(11, 6);  // at access 2, instr 4
    rec.onAccess(0x110);
    rec.onBlock(10, 4);  // at access 3, instr 10

    ASSERT_EQ(rec.events().size(), 3u);
    EXPECT_EQ(rec.events()[0].block, 10u);
    EXPECT_EQ(rec.events()[0].accessTime, 0u);
    EXPECT_EQ(rec.events()[0].instrTime, 0u);
    EXPECT_EQ(rec.events()[1].block, 11u);
    EXPECT_EQ(rec.events()[1].accessTime, 2u);
    EXPECT_EQ(rec.events()[1].instrTime, 4u);
    EXPECT_EQ(rec.events()[2].accessTime, 3u);
    EXPECT_EQ(rec.events()[2].instrTime, 10u);

    EXPECT_EQ(rec.totalInstructions(), 14u);
    EXPECT_EQ(rec.totalAccesses(), 3u);
}

TEST(ManualMarkerRecorder, TimesInAccessClock)
{
    ManualMarkerRecorder rec;
    rec.onManualMarker(0);
    rec.onAccess(8);
    rec.onAccess(8);
    rec.onManualMarker(1);
    rec.onAccess(8);
    rec.onManualMarker(0);

    ASSERT_EQ(rec.times().size(), 3u);
    EXPECT_EQ(rec.times()[0], 0u);
    EXPECT_EQ(rec.times()[1], 2u);
    EXPECT_EQ(rec.times()[2], 3u);
    ASSERT_EQ(rec.ids().size(), 3u);
    EXPECT_EQ(rec.ids()[0], 0u);
    EXPECT_EQ(rec.ids()[1], 1u);
    EXPECT_EQ(rec.ids()[2], 0u);
}

} // namespace
