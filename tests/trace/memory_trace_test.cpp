/**
 * @file
 * MemoryTrace contract: replay must reproduce the recorded stream
 * exactly — same events, same order, same access-batch boundaries.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "support/random.hpp"
#include "trace/memory_trace.hpp"
#include "trace/sink.hpp"
#include "workloads/registry.hpp"

namespace {

using lpp::trace::Addr;

/** Records every delivery verbatim, including batch boundaries. */
class DeliveryLog : public lpp::trace::TraceSink
{
  public:
    void
    onBlock(lpp::trace::BlockId b, uint32_t instrs) override
    {
        log.push_back("B" + std::to_string(b) + ":" +
                      std::to_string(instrs));
    }

    void
    onAccess(Addr a) override
    {
        log.push_back("a" + std::to_string(a));
    }

    void
    onAccessBatch(const Addr *addrs, size_t n) override
    {
        std::string s = "batch" + std::to_string(n) + ":";
        for (size_t i = 0; i < n; ++i)
            s += std::to_string(addrs[i]) + ",";
        log.push_back(s);
    }

    void
    onManualMarker(uint32_t id) override
    {
        log.push_back("M" + std::to_string(id));
    }

    void
    onPhaseMarker(lpp::trace::PhaseId p) override
    {
        log.push_back("P" + std::to_string(p));
    }

    void onEnd() override { log.push_back("E"); }

    std::vector<std::string> log;
};

TEST(MemoryTrace, ReplayReproducesStreamExactly)
{
    lpp::trace::MemoryTrace trace;
    DeliveryLog direct;
    lpp::trace::FanoutSink both;
    both.attach(&trace);
    both.attach(&direct);

    lpp::Rng rng(7);
    std::vector<Addr> batch;
    for (int round = 0; round < 50; ++round) {
        both.onBlock(static_cast<uint32_t>(round), 10 + round);
        batch.clear();
        size_t n = 1 + rng.below(300);
        for (size_t i = 0; i < n; ++i)
            batch.push_back(rng.below(1 << 20) * 8);
        both.onAccessBatch(batch.data(), batch.size());
        both.onAccess(rng.below(1 << 20) * 8);
        if (round % 7 == 0)
            both.onManualMarker(static_cast<uint32_t>(round));
        if (round % 11 == 0)
            both.onPhaseMarker(static_cast<uint32_t>(round / 11));
    }
    both.onEnd();

    DeliveryLog replayed;
    trace.replay(replayed);
    EXPECT_EQ(replayed.log, direct.log);
    EXPECT_EQ(trace.eventCount(), direct.log.size());
}

TEST(MemoryTrace, RecordsRealWorkloadAndReplaysIdentically)
{
    auto w = lpp::workloads::create("gcc");
    ASSERT_NE(w, nullptr);
    auto in = w->trainInput();

    lpp::trace::MemoryTrace trace;
    DeliveryLog direct;
    lpp::trace::FanoutSink both;
    both.attach(&trace);
    both.attach(&direct);
    w->run(in, both);

    DeliveryLog replayed;
    trace.replay(replayed);
    EXPECT_EQ(replayed.log, direct.log);
    EXPECT_GT(trace.accessCount(), 1000u);
    EXPECT_GT(trace.memoryBytes(), 0u);
}

TEST(MemoryTrace, ReplayIsRepeatable)
{
    lpp::trace::MemoryTrace trace;
    Addr addrs[3] = {8, 16, 24};
    trace.onBlock(1, 5);
    trace.onAccessBatch(addrs, 3);
    trace.onEnd();

    DeliveryLog one, two;
    trace.replay(one);
    trace.replay(two);
    EXPECT_EQ(one.log, two.log);
}

TEST(MemoryTrace, ClearReleasesRecording)
{
    lpp::trace::MemoryTrace trace;
    Addr a = 8;
    trace.onAccessBatch(&a, 1);
    trace.onEnd();
    EXPECT_FALSE(trace.empty());
    trace.clear();
    EXPECT_TRUE(trace.empty());
    EXPECT_EQ(trace.eventCount(), 0u);
    EXPECT_EQ(trace.accessCount(), 0u);
    DeliveryLog log;
    trace.replay(log);
    EXPECT_TRUE(log.log.empty());
}

} // namespace
